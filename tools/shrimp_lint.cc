/**
 * @file
 * shrimp_lint: the repo's determinism & shard-safety contract,
 * enforced at source level.
 *
 * Everything this simulator promises — bit-identical digests across
 * shard counts, per-(seed,src,dst) fault streams, replayable
 * model-check counterexamples — dies quietly the moment someone reads
 * a wall clock in the event path, iterates an unordered container
 * into a digest, or parks mutable state at namespace scope where two
 * shard workers can both reach it. The runtime auditor (PR 2) catches
 * such bugs after they corrupt a run; this tool rejects them before
 * they compile into one.
 *
 * It is deliberately not a clang plugin: a small hand-rolled lexer
 * plus token-pattern rules means it builds and runs everywhere
 * tools/run_checks.sh does (no libclang on the box), in well under a
 * second for the whole tree. The price is heuristic scope tracking
 * rather than a real AST; the rules below document their blind spots.
 *
 * Rules (all severity error):
 *   D1  wall-clock read (`steady_clock`, `system_clock`, `time()`,
 *       `clock_gettime`, ...) outside the allowlisted observability
 *       set (sim/profiler, sim/trace_sink, bench/bench_common).
 *   D2  unseeded randomness: `rand`/`srand`/`random_device` anywhere;
 *       `mt19937`/`default_random_engine` constructed without a
 *       seed-like argument (something named *seed*, sim::Random, or
 *       SplitMix64).
 *   D3  iteration over `std::unordered_map`/`unordered_set` in a
 *       digest-affecting directory (src/sim, src/shrimp,
 *       src/workload, src/dma) without an order-insensitive
 *       annotation. Hash order is libstdc++-version- and
 *       pointer-dependent; it must never reach a digest.
 *   D4  pointer identity feeding ordering or hashing:
 *       `std::hash<T *>` and `reinterpret_cast<uintptr_t>`. Pointer
 *       values differ run to run under ASLR.
 *   S1  mutable namespace-scope / static-local / static-member state
 *       in src/sim or src/shrimp without a
 *       `// shrimp-lint: shard-safe(<reason>)` annotation. Shard
 *       workers run concurrently; cross-shard data must flow through
 *       SpscRing mailboxes, not globals.
 *   S2  event labels passed to EventQueue::schedule/scheduleIn must
 *       be string literals (the queue stores the pointer): an
 *       argument built from `.c_str()`, `std::string`, `to_string`,
 *       or `+` concatenation dangles once the temporary dies.
 *
 * Suppressions:
 *   // shrimp-lint: allow(D1) <reason>          one rule (or a comma
 *                                               list), reason required
 *   // shrimp-lint: shard-safe(<reason>)        alias for allow(S1)
 *   // shrimp-lint: order-insensitive(<reason>) alias for allow(D3)
 *
 * A standalone directive comment applies to the next line; a trailing
 * comment applies to its own line. A directive with a missing reason
 * or an unknown rule id is itself a finding (rule LINT), so
 * suppressions cannot rot silently.
 *
 * Baseline ratchet: --baseline=FILE names a committed JSON file of
 * grandfathered findings ({file, rule, count, reason}). Findings
 * covered by the baseline are reported as "baselined" and do not
 * fail; anything beyond the count fails; an entry whose file/rule has
 * FEWER findings than recorded is reported stale and fails, so the
 * baseline can only shrink.
 *
 * Exit status: 0 clean, 1 findings or stale baseline, 2 usage/IO.
 */

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "../tests/support/mini_json.hh"

namespace fs = std::filesystem;

namespace
{

// --------------------------------------------------------------- rules

struct RuleInfo
{
    const char *id;
    const char *summary;
    const char *hint;
};

const RuleInfo kRules[] = {
    {"D1", "wall-clock read in deterministic code",
     "route timing through sim/profiler or annotate: "
     "// shrimp-lint: allow(D1) <reason>"},
    {"D2", "unseeded randomness",
     "draw from sim::Random (SplitMix64) seeded by the run config"},
    {"D3", "iteration over an unordered container in digest-affecting "
           "code",
     "iterate a sorted copy / ordered container, or annotate the "
     "loop: // shrimp-lint: order-insensitive(<reason>)"},
    {"D4", "pointer identity feeding hashing or ordering",
     "key on a stable id (node, seq, tick) instead of an address"},
    {"S1", "mutable static/global state in the sharded core",
     "move it into per-shard state or annotate: "
     "// shrimp-lint: shard-safe(<reason>)"},
    {"S2", "event label is not a static string",
     "EventQueue stores the label pointer; pass a string literal or "
     "static const char*"},
    {"LINT", "malformed shrimp-lint directive",
     "write // shrimp-lint: allow(<RULE>) <reason> with a known rule "
     "id and a non-empty reason"},
};

bool
knownRule(const std::string &id)
{
    for (const auto &r : kRules)
        if (id == r.id)
            return true;
    return false;
}

const RuleInfo &
ruleInfo(const std::string &id)
{
    for (const auto &r : kRules)
        if (id == r.id)
            return r;
    return kRules[sizeof(kRules) / sizeof(kRules[0]) - 1];
}

struct Finding
{
    std::string file;
    int line = 0;
    std::string rule;
    std::string message;
};

// --------------------------------------------------------------- lexer

struct Tok
{
    enum Kind { Ident, Num, Str, CharLit, Punct } kind = Punct;
    std::string text;
    int line = 0;
};

/** One parsed `// shrimp-lint:` directive. */
struct Directive
{
    int line = 0;          ///< line the comment appears on
    bool standalone = false; ///< comment was the only thing on its line
    std::set<std::string> rules; ///< suppressed rule ids
    std::string reason;
    bool malformed = false;
    std::string error;
};

struct LexedFile
{
    std::vector<Tok> toks;
    std::vector<Directive> directives;
};

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/**
 * Parse the text of one `//` comment for a shrimp-lint directive.
 * Only line comments whose content *starts* with `shrimp-lint:` are
 * directives; prose that merely mentions the marker (doc blocks,
 * examples) is ignored.
 */
void
parseDirective(const std::string &comment, int line, bool standalone,
               std::vector<Directive> &out)
{
    std::size_t pos = 0;
    while (pos < comment.size()
           && (comment[pos] == '/' || comment[pos] == ' '
               || comment[pos] == '\t'))
        ++pos;
    if (comment.compare(pos, 12, "shrimp-lint:") != 0)
        return;
    Directive d;
    d.line = line;
    d.standalone = standalone;
    std::string rest = comment.substr(pos + 12);
    // trim leading whitespace
    rest.erase(0, rest.find_first_not_of(" \t"));

    auto fail = [&](const std::string &why) {
        d.malformed = true;
        d.error = why;
        out.push_back(d);
    };

    std::string verb;
    std::size_t i = 0;
    while (i < rest.size() && (identChar(rest[i]) || rest[i] == '-'))
        verb += rest[i++];
    if (i >= rest.size() || rest[i] != '(')
        return fail("expected allow(...), shard-safe(...) or "
                    "order-insensitive(...)");
    auto close = rest.find(')', i);
    if (close == std::string::npos)
        return fail("unterminated '('");
    std::string inner = rest.substr(i + 1, close - i - 1);
    std::string after = rest.substr(close + 1);
    after.erase(0, after.find_first_not_of(" \t"));
    while (!after.empty()
           && std::isspace(static_cast<unsigned char>(after.back())))
        after.pop_back();

    if (verb == "allow") {
        std::stringstream ss(inner);
        std::string id;
        while (std::getline(ss, id, ',')) {
            id.erase(0, id.find_first_not_of(" \t"));
            while (!id.empty() && std::isspace(
                       static_cast<unsigned char>(id.back())))
                id.pop_back();
            if (!knownRule(id) || id == "LINT")
                return fail("unknown rule id '" + id + "'");
            d.rules.insert(id);
        }
        if (d.rules.empty())
            return fail("allow() names no rule");
        if (after.empty())
            return fail("allow(" + inner + ") has no reason");
        d.reason = after;
    } else if (verb == "shard-safe") {
        if (inner.empty())
            return fail("shard-safe() has no reason");
        d.rules.insert("S1");
        d.reason = inner;
    } else if (verb == "order-insensitive") {
        if (inner.empty())
            return fail("order-insensitive() has no reason");
        d.rules.insert("D3");
        d.reason = inner;
    } else {
        return fail("unknown directive '" + verb + "'");
    }
    out.push_back(d);
}

/**
 * Lex C++ source into tokens, stripping comments and preprocessor
 * lines but harvesting shrimp-lint directives from comments.
 * `::` is lexed as a single punct token so rule patterns can tell
 * `std::time` from `obj.time`.
 */
LexedFile
lex(const std::string &src)
{
    LexedFile out;
    int line = 1;
    std::size_t i = 0;
    const std::size_t n = src.size();
    int toksOnLine = 0;

    auto newline = [&]() {
        ++line;
        toksOnLine = 0;
    };

    while (i < n) {
        char c = src[i];
        if (c == '\n') {
            newline();
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        // Preprocessor line (only when '#' starts the line's content).
        if (c == '#' && toksOnLine == 0) {
            while (i < n) {
                if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
                    newline();
                    i += 2;
                    continue;
                }
                if (src[i] == '\n')
                    break;
                ++i;
            }
            continue;
        }
        // Line comment.
        if (c == '/' && i + 1 < n && src[i + 1] == '/') {
            std::size_t end = src.find('\n', i);
            if (end == std::string::npos)
                end = n;
            parseDirective(src.substr(i, end - i), line,
                           toksOnLine == 0, out.directives);
            i = end;
            continue;
        }
        // Block comment (never a directive carrier: doc blocks quote
        // the annotation syntax as prose).
        if (c == '/' && i + 1 < n && src[i + 1] == '*') {
            i += 2;
            while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
                if (src[i] == '\n')
                    newline();
                ++i;
            }
            i = (i + 1 < n) ? i + 2 : n;
            continue;
        }
        // Raw string literal.
        if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
            std::size_t p = i + 2;
            std::string delim;
            while (p < n && src[p] != '(')
                delim += src[p++];
            std::string closer = ")" + delim + "\"";
            std::size_t end = src.find(closer, p);
            if (end == std::string::npos)
                end = n;
            else
                end += closer.size();
            for (std::size_t k = i; k < end && k < n; ++k)
                if (src[k] == '\n')
                    newline();
            out.toks.push_back({Tok::Str, "<raw>", line});
            ++toksOnLine;
            i = end;
            continue;
        }
        // String / char literal.
        if (c == '"' || c == '\'') {
            char quote = c;
            std::size_t start = i++;
            while (i < n && src[i] != quote) {
                if (src[i] == '\\')
                    ++i;
                if (i < n && src[i] == '\n')
                    newline();
                ++i;
            }
            ++i;
            out.toks.push_back({quote == '"' ? Tok::Str : Tok::CharLit,
                                src.substr(start, i - start), line});
            ++toksOnLine;
            continue;
        }
        // Identifier / keyword.
        if (identChar(c) && !std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t start = i;
            while (i < n && identChar(src[i]))
                ++i;
            out.toks.push_back(
                {Tok::Ident, src.substr(start, i - start), line});
            ++toksOnLine;
            continue;
        }
        // Number.
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t start = i;
            while (i < n
                   && (identChar(src[i]) || src[i] == '.'
                       || ((src[i] == '+' || src[i] == '-') && i > start
                           && (src[i - 1] == 'e' || src[i - 1] == 'E'))))
                ++i;
            out.toks.push_back(
                {Tok::Num, src.substr(start, i - start), line});
            ++toksOnLine;
            continue;
        }
        // '::' as one token; everything else single-char punct.
        if (c == ':' && i + 1 < n && src[i + 1] == ':') {
            out.toks.push_back({Tok::Punct, "::", line});
            ++toksOnLine;
            i += 2;
            continue;
        }
        out.toks.push_back({Tok::Punct, std::string(1, c), line});
        ++toksOnLine;
        ++i;
    }
    return out;
}

// ------------------------------------------------------- file scanning

struct Options
{
    fs::path root = ".";
    std::vector<std::string> paths;
    std::vector<std::string> digestDirs = {"src/sim", "src/shrimp",
                                           "src/workload", "src/dma"};
    std::vector<std::string> stateDirs = {"src/sim", "src/shrimp"};
    std::vector<std::string> wallclockAllow = {"src/sim/profiler",
                                               "src/sim/trace_sink",
                                               "bench/bench_common"};
    std::string baselinePath;
    std::string writeBaselinePath;
    bool json = false;
};

bool
pathUnder(const std::string &rel, const std::vector<std::string> &dirs)
{
    for (const auto &d : dirs) {
        if (d == "." || rel == d)
            return true;
        if (rel.size() > d.size() && rel.compare(0, d.size(), d) == 0
            && (rel[d.size()] == '/'
                || rel[d.size() - 1] == '/')) // dir given with slash
            return true;
        // Prefix match without requiring a trailing '/': lets the
        // allowlist name "src/sim/profiler" and cover profiler.cc/.hh.
        if (rel.compare(0, d.size(), d) == 0)
            return true;
    }
    return false;
}

struct SourceFile
{
    std::string rel;  ///< root-relative path, '/'-separated
    LexedFile lexed;
    bool digestDir = false;
    bool stateDir = false;
    bool wallclockAllowed = false;
};

/** Directive lookup: is (rule, line) suppressed in this file? */
class Suppressions
{
  public:
    explicit Suppressions(const std::vector<Directive> &dirs)
    {
        for (const auto &d : dirs) {
            if (d.malformed)
                continue;
            int target = d.standalone ? d.line + 1 : d.line;
            for (const auto &r : d.rules)
                covered_[{r, target}] = true;
        }
    }

    bool
    covers(const std::string &rule, int line) const
    {
        return covered_.count({rule, line}) > 0;
    }

  private:
    std::map<std::pair<std::string, int>, bool> covered_;
};

// ------------------------------------------------------- rule checkers

bool
isIdent(const std::vector<Tok> &t, std::size_t i, const char *s)
{
    return i < t.size() && t[i].kind == Tok::Ident && t[i].text == s;
}

bool
isPunct(const std::vector<Tok> &t, std::size_t i, const char *s)
{
    return i < t.size() && t[i].kind == Tok::Punct && t[i].text == s;
}

/** Index just past a balanced bracket run starting at t[i] == open. */
std::size_t
skipBalanced(const std::vector<Tok> &t, std::size_t i,
             const char *open, const char *close)
{
    int depth = 0;
    for (; i < t.size(); ++i) {
        if (t[i].kind == Tok::Punct && t[i].text == open)
            ++depth;
        else if (t[i].kind == Tok::Punct && t[i].text == close)
            if (--depth == 0)
                return i + 1;
    }
    return t.size();
}

/** Index just past a balanced <...> starting at t[i] == "<".
 *  Tolerates comparison '<' by bailing at ';' or '{'. */
std::size_t
skipAngles(const std::vector<Tok> &t, std::size_t i)
{
    int depth = 0;
    for (; i < t.size(); ++i) {
        if (t[i].kind != Tok::Punct)
            continue;
        if (t[i].text == "<")
            ++depth;
        else if (t[i].text == ">") {
            if (--depth == 0)
                return i + 1;
        } else if (t[i].text == ";" || t[i].text == "{") {
            return i; // not a template argument list after all
        }
    }
    return t.size();
}

void
checkWallClock(const SourceFile &f, const Suppressions &sup,
               std::vector<Finding> &out)
{
    if (f.wallclockAllowed)
        return;
    static const std::set<std::string> kAlways = {
        "steady_clock",  "system_clock", "high_resolution_clock",
        "gettimeofday",  "clock_gettime", "timespec_get",
        "ftime",         "localtime",     "gmtime",
        "mktime",
    };
    // `time` / `clock` only as a free call: `time(` or `std::time(`,
    // never `obj.time(...)` or a declaration `Tick time;`.
    const auto &t = f.lexed.toks;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != Tok::Ident)
            continue;
        bool hit = false;
        std::string what = t[i].text;
        if (kAlways.count(t[i].text)) {
            hit = true;
        } else if (t[i].text == "time" || t[i].text == "clock") {
            bool call = isPunct(t, i + 1, "(");
            bool member = i > 0
                          && (isPunct(t, i - 1, ".")
                              || isPunct(t, i - 1, ">")); // `->`
            if (call && !member) {
                // Exclude declarations `Tick time(Tick)`: an
                // identifier directly in front reads as a return
                // type — unless it is a statement keyword.
                bool declish =
                    i > 0 && t[i - 1].kind == Tok::Ident
                    && t[i - 1].text != "return"
                    && t[i - 1].text != "co_return"
                    && t[i - 1].text != "co_await"
                    && t[i - 1].text != "case"
                    && t[i - 1].text != "else";
                hit = !declish;
                what = t[i].text + "()";
            }
        }
        if (!hit || sup.covers("D1", t[i].line))
            continue;
        out.push_back({f.rel, t[i].line, "D1",
                       "wall-clock read (" + what
                           + ") in deterministic code"});
    }
}

void
checkRandomness(const SourceFile &f, const Suppressions &sup,
                std::vector<Finding> &out)
{
    const auto &t = f.lexed.toks;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != Tok::Ident)
            continue;
        const std::string &id = t[i].text;
        bool memberCall =
            i > 0 && (isPunct(t, i - 1, ".") || isPunct(t, i - 1, ">"));
        if ((id == "rand" || id == "srand") && isPunct(t, i + 1, "(")
            && !memberCall) {
            if (!sup.covers("D2", t[i].line))
                out.push_back({f.rel, t[i].line, "D2",
                               id + "() draws from global, "
                                    "non-reproducible state"});
            continue;
        }
        if (id == "random_device") {
            if (!sup.covers("D2", t[i].line))
                out.push_back({f.rel, t[i].line, "D2",
                               "std::random_device is nondeterministic "
                               "by design"});
            continue;
        }
        if (id == "mt19937" || id == "mt19937_64"
            || id == "default_random_engine" || id == "minstd_rand") {
            // Engine type: find what it is constructed from. A seed
            // is evidenced by an argument token naming *seed*,
            // SplitMix64, or sim::Random. A bare type mention
            // (parameter, reference, template argument) is fine.
            std::size_t j = i + 1;
            if (isPunct(t, j, "::")) // mt19937::result_type etc.
                continue;
            // optional declarator name
            while (j < t.size()
                   && (isPunct(t, j, "&") || isPunct(t, j, "*")))
                ++j;
            if (j < t.size() && t[j].kind == Tok::Ident)
                ++j;
            bool finding = false;
            if (isPunct(t, j, ";")) {
                finding = true; // default-constructed
            } else if (isPunct(t, j, "(") || isPunct(t, j, "{")
                       || isPunct(t, j, "=")) {
                const char *open = t[j].text == "{" ? "{" : "(";
                const char *close = t[j].text == "{" ? "}" : ")";
                std::size_t end;
                if (t[j].text == "=") {
                    end = j + 1;
                    while (end < t.size() && !isPunct(t, end, ";"))
                        ++end;
                } else {
                    end = skipBalanced(t, j, open, close);
                }
                bool seeded = false;
                for (std::size_t k = j; k < end; ++k) {
                    if (t[k].kind != Tok::Ident)
                        continue;
                    std::string low = t[k].text;
                    std::transform(low.begin(), low.end(), low.begin(),
                                   [](unsigned char ch) {
                                       return std::tolower(ch);
                                   });
                    if (low.find("seed") != std::string::npos
                        || t[k].text == "SplitMix64"
                        || t[k].text == "Random") {
                        seeded = true;
                        break;
                    }
                }
                finding = !seeded;
            }
            if (finding && !sup.covers("D2", t[i].line))
                out.push_back({f.rel, t[i].line, "D2",
                               id + " not fed from a SplitMix64/config "
                                    "seed"});
        }
    }
}

const std::set<std::string> kUnorderedTypes = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

/**
 * Pass A of D3: names of variables/members declared with an
 * unordered container type (or an alias of one), collected across the
 * whole scanned tree so a loop in span.cc sees a member declared in
 * span.hh.
 */
void
collectUnorderedNames(const std::vector<SourceFile> &files,
                      std::set<std::string> &names)
{
    std::set<std::string> aliases; // using X = std::unordered_map<...>
    for (const auto &f : files) {
        const auto &t = f.lexed.toks;
        for (std::size_t i = 0; i < t.size(); ++i) {
            if (t[i].kind != Tok::Ident
                || !kUnorderedTypes.count(t[i].text))
                continue;
            // `using Alias = ... unordered_map<...>` — look backwards
            // for the alias introduction on this statement.
            for (std::size_t b = i; b > 0; --b) {
                if (isPunct(t, b, ";") || isPunct(t, b, "{")
                    || isPunct(t, b, "}"))
                    break;
                if (isIdent(t, b, "using") && b + 1 < t.size()
                    && t[b + 1].kind == Tok::Ident) {
                    aliases.insert(t[b + 1].text);
                    break;
                }
            }
            std::size_t j = i + 1;
            if (isPunct(t, j, "<"))
                j = skipAngles(t, j);
            while (j < t.size()
                   && (isPunct(t, j, "&") || isPunct(t, j, "*")
                       || isIdent(t, j, "const")))
                ++j;
            if (j < t.size() && t[j].kind == Tok::Ident
                && (isPunct(t, j + 1, ";") || isPunct(t, j + 1, "=")
                    || isPunct(t, j + 1, "{") || isPunct(t, j + 1, "(")))
                names.insert(t[j].text);
        }
    }
    // Declarations through an alias.
    if (aliases.empty())
        return;
    for (const auto &f : files) {
        const auto &t = f.lexed.toks;
        for (std::size_t i = 0; i + 1 < t.size(); ++i) {
            if (t[i].kind != Tok::Ident || !aliases.count(t[i].text))
                continue;
            std::size_t j = i + 1;
            while (j < t.size()
                   && (isPunct(t, j, "&") || isPunct(t, j, "*")))
                ++j;
            if (j < t.size() && t[j].kind == Tok::Ident
                && (isPunct(t, j + 1, ";") || isPunct(t, j + 1, "=")
                    || isPunct(t, j + 1, "{")))
                names.insert(t[j].text);
        }
    }
}

void
checkUnorderedIteration(const SourceFile &f, const Suppressions &sup,
                        const std::set<std::string> &unorderedNames,
                        std::vector<Finding> &out)
{
    if (!f.digestDir)
        return;
    const auto &t = f.lexed.toks;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (!isIdent(t, i, "for") || !isPunct(t, i + 1, "("))
            continue;
        std::size_t end = skipBalanced(t, i + 1, "(", ")");
        // Range-for: a ':' at paren depth 1 ('::' is its own token).
        std::size_t colon = 0;
        int depth = 0;
        for (std::size_t k = i + 1; k < end; ++k) {
            if (t[k].kind != Tok::Punct)
                continue;
            if (t[k].text == "(")
                ++depth;
            else if (t[k].text == ")")
                --depth;
            else if (t[k].text == ":" && depth == 1) {
                colon = k;
                break;
            }
        }
        bool hit = false;
        std::string name;
        if (colon) {
            for (std::size_t k = colon + 1; k < end; ++k) {
                if (t[k].kind == Tok::Ident
                    && unorderedNames.count(t[k].text)) {
                    hit = true;
                    name = t[k].text;
                    break;
                }
            }
        } else {
            // Iterator loop: `for (auto it = m.begin(); ...)`.
            bool hasBegin = false, hasName = false;
            for (std::size_t k = i + 2; k < end; ++k) {
                if (t[k].kind != Tok::Ident)
                    continue;
                if (t[k].text == "begin" || t[k].text == "cbegin")
                    hasBegin = true;
                if (unorderedNames.count(t[k].text)) {
                    hasName = true;
                    name = t[k].text;
                }
            }
            hit = hasBegin && hasName;
        }
        if (hit && !sup.covers("D3", t[i].line)) {
            out.push_back({f.rel, t[i].line, "D3",
                           "iteration over unordered container '" + name
                               + "' can reach a digest in hash order"});
        }
    }
}

void
checkPointerOrdering(const SourceFile &f, const Suppressions &sup,
                     std::vector<Finding> &out)
{
    const auto &t = f.lexed.toks;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (isIdent(t, i, "hash") && isPunct(t, i + 1, "<")) {
            std::size_t end = skipAngles(t, i + 1);
            for (std::size_t k = i + 1; k < end; ++k) {
                if (isPunct(t, k, "*")) {
                    if (!sup.covers("D4", t[i].line))
                        out.push_back(
                            {f.rel, t[i].line, "D4",
                             "std::hash over a pointer type: hash "
                             "values differ across runs (ASLR)"});
                    break;
                }
            }
        }
        if (isIdent(t, i, "reinterpret_cast") && isPunct(t, i + 1, "<")) {
            std::size_t end = skipAngles(t, i + 1);
            for (std::size_t k = i + 1; k < end; ++k) {
                if (t[k].kind == Tok::Ident
                    && (t[k].text == "uintptr_t"
                        || t[k].text == "intptr_t")) {
                    if (!sup.covers("D4", t[i].line))
                        out.push_back(
                            {f.rel, t[i].line, "D4",
                             "pointer-to-integer cast: the value is "
                             "an address, unstable across runs"});
                    break;
                }
            }
        }
    }
}

/**
 * S1: heuristic scope tracker. Namespace scope (incl. anonymous
 * namespaces) flags any non-const variable; class scope flags
 * non-const `static` members; function bodies flag non-const
 * `static`/`thread_local` locals. Declarations whose statement
 * carries const/constexpr/constinit anywhere are treated as
 * immutable (so `static const char *` labels pass, by design —
 * see DESIGN.md §13 for the limitation).
 */
void
checkMutableStatics(const SourceFile &f, const Suppressions &sup,
                    std::vector<Finding> &out)
{
    if (!f.stateDir)
        return;
    const auto &t = f.lexed.toks;

    enum Scope { Namespace, Class, Function };
    std::vector<Scope> stack = {Namespace};

    static const std::set<std::string> kSkipStmt = {
        "using",  "typedef", "friend",   "static_assert",
        "extern", "public",  "private",  "protected",
        "return", "if",      "while",    "switch",
        "case",   "goto",    "operator", "concept",
        "requires"};

    auto constish = [&](std::size_t b, std::size_t e) {
        for (std::size_t k = b; k < e; ++k)
            if (isIdent(t, k, "const") || isIdent(t, k, "constexpr")
                || isIdent(t, k, "constinit")
                || isIdent(t, k, "consteval"))
                return true;
        return false;
    };
    auto functionish = [&](std::size_t b, std::size_t e) {
        // A '(' directly after an identifier, with no '=' first,
        // reads as a function declarator: `static Foo &instance();`
        for (std::size_t k = b; k < e; ++k) {
            if (isPunct(t, k, "="))
                return false;
            if (isPunct(t, k, "(") && k > b
                && t[k - 1].kind == Tok::Ident)
                return true;
            if (isIdent(t, k, "operator"))
                return true;
        }
        return false;
    };
    auto staticish = [&](std::size_t b, std::size_t e) {
        for (std::size_t k = b; k < e; ++k)
            if (isIdent(t, k, "static") || isIdent(t, k, "thread_local"))
                return true;
        return false;
    };
    auto hasDeclName = [&](std::size_t b, std::size_t e) {
        // At least two identifiers (type + name) or ident before = / {.
        int idents = 0;
        for (std::size_t k = b; k < e; ++k)
            if (t[k].kind == Tok::Ident && !isIdent(t, k, "inline")
                && !isIdent(t, k, "static")
                && !isIdent(t, k, "thread_local")
                && !isIdent(t, k, "mutable"))
                ++idents;
        return idents >= 2;
    };

    std::size_t i = 0;
    while (i < t.size()) {
        Scope cur = stack.back();
        if (isPunct(t, i, "}")) {
            if (stack.size() > 1)
                stack.pop_back();
            ++i;
            continue;
        }
        if (cur == Function) {
            // Only static-local declarations matter inside bodies.
            if (isPunct(t, i, "{")) {
                stack.push_back(Function);
                ++i;
                continue;
            }
            if ((isIdent(t, i, "static") || isIdent(t, i, "thread_local"))
                && !isIdent(t, i + 1, "const")
                && !isIdent(t, i + 1, "constexpr")) {
                std::size_t e = i;
                while (e < t.size() && !isPunct(t, e, ";")
                       && !isPunct(t, e, "{") && !isPunct(t, e, "}"))
                    ++e;
                if (isPunct(t, e, "{")) // brace init: scan to ';'
                    e = skipBalanced(t, e, "{", "}");
                if (!functionish(i, e) && !constish(i, e)
                    && hasDeclName(i, e)) {
                    if (!sup.covers("S1", t[i].line))
                        out.push_back(
                            {f.rel, t[i].line, "S1",
                             "mutable function-local static shared "
                             "across shard workers"});
                }
                i = e;
                continue;
            }
            ++i;
            continue;
        }

        // Namespace / class scope: parse one statement.
        std::size_t b = i;
        if (isIdent(t, i, "template")) {
            if (isPunct(t, i + 1, "<"))
                i = skipAngles(t, i + 1);
            else
                ++i;
            b = i;
        }
        if (isIdent(t, b, "namespace")) {
            std::size_t e = b;
            while (e < t.size() && !isPunct(t, e, "{")
                   && !isPunct(t, e, ";"))
                ++e;
            if (isPunct(t, e, "{"))
                stack.push_back(Namespace);
            i = e + 1;
            continue;
        }
        bool classish = false;
        {
            std::size_t e = b;
            bool sawParen = false;
            while (e < t.size() && !isPunct(t, e, "{")
                   && !isPunct(t, e, ";") && !isPunct(t, e, "}")
                   && !isPunct(t, e, "=")) {
                if (isPunct(t, e, "("))
                    sawParen = true;
                if ((isIdent(t, e, "class") || isIdent(t, e, "struct")
                     || isIdent(t, e, "union") || isIdent(t, e, "enum"))
                    && !sawParen)
                    classish = true;
                ++e;
            }
            if (classish && isPunct(t, e, "{")) {
                stack.push_back(Class);
                i = e + 1;
                continue;
            }
            if (classish && isPunct(t, e, ";")) {
                i = e + 1; // forward declaration
                continue;
            }
        }
        // Collect statement to ';', treating a '{' as either a
        // function body (push Function) or a brace initializer.
        std::size_t e = b;
        bool isVar = false;
        while (e < t.size()) {
            if (isPunct(t, e, ";"))
                break;
            if (isPunct(t, e, "}")) // enum body tail etc.
                break;
            if (isPunct(t, e, "(")) {
                e = skipBalanced(t, e, "(", ")");
                continue;
            }
            if (isPunct(t, e, "{")) {
                if (functionish(b, e)) {
                    stack.push_back(Function);
                    break;
                }
                e = skipBalanced(t, e, "{", "}");
                isVar = true; // brace-initialized variable
                continue;
            }
            ++e;
        }
        if (e < t.size() && isPunct(t, e, "{")) {
            i = e + 1;
            continue;
        }
        // Statement [b, e) ending at ';' or '}'.
        bool skip = false;
        for (const auto &kw : kSkipStmt)
            if (isIdent(t, b, kw.c_str()))
                skip = true;
        if (!skip && e > b && !functionish(b, e) && !constish(b, e)
            && hasDeclName(b, e)) {
            bool flag = cur == Namespace
                        || (cur == Class && staticish(b, e));
            (void)isVar;
            if (flag && !sup.covers("S1", t[b].line)) {
                out.push_back({f.rel, t[b].line, "S1",
                               cur == Namespace
                                   ? "mutable namespace-scope state "
                                     "reachable from every shard"
                                   : "mutable static data member "
                                     "shared across shard workers"});
            }
        }
        i = (e < t.size() && isPunct(t, e, ";")) ? e + 1 : e;
        if (i < t.size() && isPunct(t, i, "}")) {
            // leave '}' for the top of the loop to pop
        }
    }
}

void
checkEventLabels(const SourceFile &f, const Suppressions &sup,
                 std::vector<Finding> &out)
{
    const auto &t = f.lexed.toks;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (!(isIdent(t, i, "schedule") || isIdent(t, i, "scheduleIn"))
            || !isPunct(t, i + 1, "("))
            continue;
        std::size_t end = skipBalanced(t, i + 1, "(", ")");
        // Split top-level args.
        std::vector<std::pair<std::size_t, std::size_t>> args;
        int depth = 0;
        std::size_t argStart = i + 2;
        for (std::size_t k = i + 1; k < end; ++k) {
            if (t[k].kind != Tok::Punct)
                continue;
            if (t[k].text == "(" || t[k].text == "{"
                || t[k].text == "[")
                ++depth;
            else if (t[k].text == ")" || t[k].text == "}"
                     || t[k].text == "]") {
                if (--depth == 0) {
                    if (k > argStart)
                        args.emplace_back(argStart, k);
                    break;
                }
            } else if (t[k].text == "," && depth == 1) {
                args.emplace_back(argStart, k);
                argStart = k + 1;
            }
        }
        if (args.size() < 3)
            continue; // not the (when, name, fn) shape
        auto [lb, le] = args[1];
        bool bad = false;
        std::string why;
        int parenDepth = 0;
        for (std::size_t k = lb; k < le; ++k) {
            if (t[k].kind == Tok::Punct) {
                if (t[k].text == "(")
                    ++parenDepth;
                else if (t[k].text == ")")
                    --parenDepth;
                else if (t[k].text == "+" && parenDepth == 0) {
                    bad = true;
                    why = "label built by string concatenation";
                }
            }
            if (t[k].kind != Tok::Ident)
                continue;
            if (t[k].text == "c_str") {
                bad = true;
                why = "label points into a std::string that may die "
                      "before the event fires";
            } else if (t[k].text == "string" || t[k].text == "to_string"
                       || t[k].text == "format") {
                bad = true;
                why = "label is a temporary string";
            }
        }
        if (bad && !sup.covers("S2", t[lb].line))
            out.push_back({f.rel, t[lb].line, "S2", why});
    }
}

/** Malformed directives are findings themselves. */
void
checkDirectives(const SourceFile &f, std::vector<Finding> &out)
{
    for (const auto &d : f.lexed.directives)
        if (d.malformed)
            out.push_back({f.rel, d.line, "LINT", d.error});
}

// ------------------------------------------------------------ baseline

struct BaselineEntry
{
    std::string file;
    std::string rule;
    int count = 0;
    std::string reason;
};

bool
loadBaseline(const std::string &path, std::vector<BaselineEntry> &out,
             std::string &err)
{
    std::ifstream in(path);
    if (!in) {
        err = "cannot read baseline file: " + path;
        return false;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    minijson::Value root;
    std::string perr;
    if (!minijson::parse(ss.str(), root, &perr)) {
        err = "baseline parse error: " + perr;
        return false;
    }
    const minijson::Value *arr = root.find("findings");
    if (!arr || !arr->isArray()) {
        err = "baseline has no \"findings\" array";
        return false;
    }
    for (const auto &e : arr->array) {
        const minijson::Value *file = e.find("file");
        const minijson::Value *rule = e.find("rule");
        const minijson::Value *count = e.find("count");
        const minijson::Value *reason = e.find("reason");
        if (!file || !file->isString() || !rule || !rule->isString()
            || !count || !count->isNumber() || !reason
            || !reason->isString() || reason->str.empty()) {
            err = "baseline entry needs file, rule, count and a "
                  "non-empty reason";
            return false;
        }
        if (!knownRule(rule->str)) {
            err = "baseline names unknown rule '" + rule->str + "'";
            return false;
        }
        out.push_back({file->str, rule->str,
                       static_cast<int>(count->number), reason->str});
    }
    return true;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c & 0x1f);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

// ----------------------------------------------------------------- cli

void
usage(std::ostream &os)
{
    os << "usage: shrimp_lint [options] [paths...]\n"
          "\n"
          "Scans C++ sources for determinism & shard-safety contract\n"
          "violations. Paths are relative to --root and default to:\n"
          "src tools bench examples\n"
          "\n"
          "  --root=DIR             repo root (default: .)\n"
          "  --json                 machine-readable report on stdout\n"
          "  --baseline=FILE        grandfathered findings (ratchet)\n"
          "  --write-baseline=FILE  dump current findings as baseline\n"
          "  --digest-dir=P         override digest-affecting dirs\n"
          "  --state-dir=P          override S1 shard-state dirs\n"
          "  --wallclock-allow=P    override D1 allowlist\n"
          "  --list-rules           print the rule table and exit\n"
          "\n"
          "exit: 0 clean, 1 findings or stale baseline, 2 usage/IO\n";
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    bool digestOverride = false, stateOverride = false,
         allowOverride = false, listRules = false;

    for (int a = 1; a < argc; ++a) {
        std::string arg = argv[a];
        auto val = [&](const char *pfx) {
            return arg.substr(std::string(pfx).size());
        };
        if (arg == "--json") {
            opt.json = true;
        } else if (arg == "--list-rules") {
            listRules = true;
        } else if (arg.rfind("--root=", 0) == 0) {
            opt.root = val("--root=");
        } else if (arg.rfind("--baseline=", 0) == 0) {
            opt.baselinePath = val("--baseline=");
        } else if (arg.rfind("--write-baseline=", 0) == 0) {
            opt.writeBaselinePath = val("--write-baseline=");
        } else if (arg.rfind("--digest-dir=", 0) == 0) {
            if (!digestOverride)
                opt.digestDirs.clear();
            digestOverride = true;
            opt.digestDirs.push_back(val("--digest-dir="));
        } else if (arg.rfind("--state-dir=", 0) == 0) {
            if (!stateOverride)
                opt.stateDirs.clear();
            stateOverride = true;
            opt.stateDirs.push_back(val("--state-dir="));
        } else if (arg.rfind("--wallclock-allow=", 0) == 0) {
            if (!allowOverride)
                opt.wallclockAllow.clear();
            allowOverride = true;
            opt.wallclockAllow.push_back(val("--wallclock-allow="));
        } else if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else if (arg.rfind("--", 0) == 0) {
            std::cerr << "unknown option: " << arg << "\n";
            usage(std::cerr);
            return 2;
        } else {
            opt.paths.push_back(arg);
        }
    }

    if (listRules) {
        for (const auto &r : kRules) {
            std::cout << r.id << "  " << r.summary << "\n      "
                      << r.hint << "\n";
        }
        return 0;
    }

    if (opt.paths.empty())
        opt.paths = {"src", "tools", "bench", "examples"};

    // ------------------------------------------------ collect sources
    std::vector<SourceFile> files;
    std::error_code ec;
    for (const auto &p : opt.paths) {
        fs::path full = opt.root / p;
        std::vector<fs::path> found;
        if (fs::is_regular_file(full, ec)) {
            found.push_back(full);
        } else if (fs::is_directory(full, ec)) {
            for (auto it = fs::recursive_directory_iterator(full, ec);
                 it != fs::recursive_directory_iterator();
                 it.increment(ec)) {
                if (ec)
                    break;
                if (!it->is_regular_file())
                    continue;
                auto ext = it->path().extension().string();
                if (ext == ".cc" || ext == ".hh" || ext == ".cpp"
                    || ext == ".h")
                    found.push_back(it->path());
            }
        } else {
            std::cerr << "shrimp_lint: no such path: " << full.string()
                      << "\n";
            return 2;
        }
        for (auto &fp : found) {
            std::ifstream in(fp);
            if (!in) {
                std::cerr << "shrimp_lint: cannot read " << fp.string()
                          << "\n";
                return 2;
            }
            std::stringstream ss;
            ss << in.rdbuf();
            SourceFile sf;
            sf.rel = fs::relative(fp, opt.root, ec).generic_string();
            if (ec || sf.rel.empty() || sf.rel.rfind("..", 0) == 0)
                sf.rel = fp.generic_string();
            sf.lexed = lex(ss.str());
            sf.digestDir = pathUnder(sf.rel, opt.digestDirs);
            sf.stateDir = pathUnder(sf.rel, opt.stateDirs);
            sf.wallclockAllowed =
                pathUnder(sf.rel, opt.wallclockAllow);
            files.push_back(std::move(sf));
        }
    }
    std::sort(files.begin(), files.end(),
              [](const SourceFile &a, const SourceFile &b) {
                  return a.rel < b.rel;
              });

    // ------------------------------------------------------ run rules
    std::set<std::string> unorderedNames;
    collectUnorderedNames(files, unorderedNames);

    std::vector<Finding> findings;
    for (const auto &f : files) {
        Suppressions sup(f.lexed.directives);
        checkDirectives(f, findings);
        checkWallClock(f, sup, findings);
        checkRandomness(f, sup, findings);
        checkUnorderedIteration(f, sup, unorderedNames, findings);
        checkPointerOrdering(f, sup, findings);
        checkMutableStatics(f, sup, findings);
        checkEventLabels(f, sup, findings);
    }
    std::sort(findings.begin(), findings.end(),
              [](const Finding &a, const Finding &b) {
                  return std::tie(a.file, a.line, a.rule)
                         < std::tie(b.file, b.line, b.rule);
              });

    // --------------------------------------------------- baseline
    std::vector<BaselineEntry> baseline;
    if (!opt.baselinePath.empty()) {
        std::string err;
        if (!loadBaseline(opt.baselinePath, baseline, err)) {
            std::cerr << "shrimp_lint: " << err << "\n";
            return 2;
        }
    }

    std::map<std::pair<std::string, std::string>, int> byFileRule;
    for (const auto &f : findings)
        ++byFileRule[{f.file, f.rule}];

    struct Stale
    {
        BaselineEntry entry;
        int actual;
    };
    std::vector<Stale> stale;
    std::map<std::pair<std::string, std::string>, int> allowance;
    for (const auto &e : baseline) {
        int actual = 0;
        auto it = byFileRule.find({e.file, e.rule});
        if (it != byFileRule.end())
            actual = it->second;
        if (actual < e.count)
            stale.push_back({e, actual});
        allowance[{e.file, e.rule}] += e.count;
    }

    std::vector<Finding> fresh;   // fail the gate
    int baselined = 0;
    for (const auto &f : findings) {
        auto it = allowance.find({f.file, f.rule});
        if (it != allowance.end() && it->second > 0) {
            --it->second;
            ++baselined;
        } else {
            fresh.push_back(f);
        }
    }

    // ---------------------------------------------- write-baseline
    if (!opt.writeBaselinePath.empty()) {
        std::ofstream out(opt.writeBaselinePath);
        if (!out) {
            std::cerr << "shrimp_lint: cannot write "
                      << opt.writeBaselinePath << "\n";
            return 2;
        }
        out << "{\n  \"findings\": [";
        bool first = true;
        for (const auto &[key, count] : byFileRule) {
            out << (first ? "" : ",") << "\n    {\"file\": \""
                << jsonEscape(key.first) << "\", \"rule\": \""
                << key.second << "\", \"count\": " << count
                << ", \"reason\": \"TODO: justify or fix\"}";
            first = false;
        }
        out << "\n  ]\n}\n";
    }

    // -------------------------------------------------------- report
    bool failed = !fresh.empty() || !stale.empty();

    if (opt.json) {
        std::ostream &os = std::cout;
        os << "{\n  \"tool\": \"shrimp_lint\",\n  \"files_scanned\": "
           << files.size() << ",\n  \"findings\": [";
        bool first = true;
        for (const auto &f : fresh) {
            os << (first ? "" : ",")
               << "\n    {\"file\": \"" << jsonEscape(f.file)
               << "\", \"line\": " << f.line << ", \"rule\": \""
               << f.rule << "\", \"severity\": \"error\", "
               << "\"message\": \"" << jsonEscape(f.message)
               << "\", \"hint\": \"" << jsonEscape(ruleInfo(f.rule).hint)
               << "\"}";
            first = false;
        }
        os << "\n  ],\n  \"baselined\": " << baselined
           << ",\n  \"stale_baseline\": [";
        first = true;
        for (const auto &s : stale) {
            os << (first ? "" : ",")
               << "\n    {\"file\": \"" << jsonEscape(s.entry.file)
               << "\", \"rule\": \"" << s.entry.rule
               << "\", \"expected\": " << s.entry.count
               << ", \"actual\": " << s.actual << "}";
            first = false;
        }
        os << "\n  ],\n  \"counts\": {";
        std::map<std::string, int> counts;
        for (const auto &f : fresh)
            ++counts[f.rule];
        first = true;
        for (const auto &[rule, cnt] : counts) {
            os << (first ? "" : ", ") << "\"" << rule << "\": " << cnt;
            first = false;
        }
        os << "},\n  \"clean\": " << (failed ? "false" : "true")
           << "\n}\n";
    } else {
        for (const auto &f : fresh) {
            std::cout << f.file << ":" << f.line << ": [" << f.rule
                      << "] " << f.message << "\n    hint: "
                      << ruleInfo(f.rule).hint << "\n";
        }
        for (const auto &s : stale) {
            std::cout << "stale baseline entry: " << s.entry.file
                      << " [" << s.entry.rule << "] records "
                      << s.entry.count << " finding(s) but "
                      << s.actual
                      << " remain — shrink tools/lint_baseline.json\n";
        }
        std::cout << "shrimp_lint: " << files.size() << " files, "
                  << fresh.size() << " finding(s)";
        if (baselined)
            std::cout << ", " << baselined << " baselined";
        if (!stale.empty())
            std::cout << ", " << stale.size()
                      << " stale baseline entr"
                      << (stale.size() == 1 ? "y" : "ies");
        std::cout << (failed ? " — FAIL" : " — clean") << "\n";
    }

    return failed ? 1 : 0;
}
