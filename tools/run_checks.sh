#!/usr/bin/env bash
# End-to-end correctness gate, organised as named steps: sanitizer
# build + tests, the shrimp_lint determinism/shard-safety gate (with
# its injected-violation self-test), clang-tidy on changed files (when
# installed), the invariant model checker — the clean exploration plus
# the seeded I1/I2/net mutations that must produce counterexamples —
# the TSan concurrency suite, a lossy-ring chaos run, and the
# Release-build perf gates against the committed BENCH baselines.
#
# Usage: tools/run_checks.sh [build-dir]
#        tools/run_checks.sh --list
#
#   --list                       print the step names and exit
#   SHRIMP_ONLY=<step[,step]>    run only the named steps (from
#                                --list), e.g. SHRIMP_ONLY=lint or
#                                SHRIMP_ONLY=tsan,chaos. Steps build
#                                what they need on demand.
#   SHRIMP_TIDY_BASE=<git-ref>   diff base for clang-tidy (default:
#                                HEAD; use origin/main on a branch)
#   SHRIMP_CHECK_DEPTH=<n>       model-check DFS depth (default: 8)
#   SHRIMP_SKIP_SELFPERF=1       skip the self-perf smoke (e.g. on a
#                                loaded CI box where wall-clock
#                                numbers are meaningless)
#   SHRIMP_SKIP_TSAN=1           skip the ThreadSanitizer suite
#   SHRIMP_SKIP_MULTINODE=1      skip the sharded determinism +
#                                speedup gate
#   SHRIMP_SKIP_NETPERF=1        skip the transport perf gate (goodput
#                                under loss + hotspot-vs-permutation)
#   SHRIMP_SKIP_MESH=1           skip the mesh:4x4 legs inside the
#                                multinode and netperf gates (the
#                                crossbar legs still run)
#   SHRIMP_SKIP_PROFILE=1        skip the profiled-trace gate (trace
#                                validation + <= 5% profiler overhead)
#   SHRIMP_SKIP_WINDOWEFF=1      skip the window-efficiency gate
#                                (barrier plan+sync share <= 50% of
#                                the profiled 4-shard run)

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build-checks"
depth="${SHRIMP_CHECK_DEPTH:-8}"
tidy_base="${SHRIMP_TIDY_BASE:-HEAD}"

steps="build lint tidy model-clean model-i1 model-tcache model-net \
model-net-mutation ctest tsan chaos selfperf multinode netperf \
profile windoweff"

if [ "${1:-}" = "--list" ]; then
    for s in ${steps}; do
        echo "${s}"
    done
    exit 0
fi
if [ -n "${1:-}" ]; then
    build_dir="$1"
fi

# ---------------------------------------------------------- selection

should_run() {
    local name="$1"
    if [ -z "${SHRIMP_ONLY:-}" ]; then
        return 0
    fi
    case ",${SHRIMP_ONLY}," in
      *",${name},"*) return 0 ;;
      *) return 1 ;;
    esac
}

if [ -n "${SHRIMP_ONLY:-}" ]; then
    for want in $(echo "${SHRIMP_ONLY}" | tr ',' ' '); do
        case " ${steps} " in
          *" ${want} "*) ;;
          *)
            echo "unknown step '${want}' — tools/run_checks.sh --list" >&2
            exit 2
            ;;
        esac
    done
fi

# ------------------------------------------------- on-demand builders

sanitized_built=0
ensure_sanitized_build() {
    if [ "${sanitized_built}" = "1" ]; then
        return
    fi
    echo "== configure (ASan+UBSan, -Werror) =="
    cmake -B "${build_dir}" -S "${repo_root}" \
        -DSHRIMP_SANITIZE=address,undefined \
        -DSHRIMP_WERROR=ON \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo
    cmake --build "${build_dir}" -j "$(nproc)"
    sanitized_built=1
}

release_configured=0
ensure_release_target() {
    # $1..: targets to build in the shared Release dir.
    perf_dir="${build_dir}-selfperf"
    if [ "${release_configured}" = "0" ]; then
        cmake -B "${perf_dir}" -S "${repo_root}" \
            -DCMAKE_BUILD_TYPE=Release > /dev/null
        release_configured=1
    fi
    cmake --build "${perf_dir}" -j "$(nproc)" --target "$@" > /dev/null
}

# ---------------------------------------------------------------- lint

step_lint() {
    echo
    echo "== shrimp_lint: determinism & shard-safety contract =="
    ensure_release_target shrimp_lint
    lint="${perf_dir}/tools/shrimp_lint"
    "${lint}" --root="${repo_root}" \
        --baseline="${repo_root}/tools/lint_baseline.json"

    # Self-test: the gate must actually be able to fail. Inject a
    # wall-clock read into the sharded core and require a D1 report.
    inject="${perf_dir}/lint_injected"
    mkdir -p "${inject}/src/sim"
    {
        echo '#include <chrono>'
        echo 'long injected() {'
        echo '    return std::chrono::steady_clock::now()'
        echo '        .time_since_epoch().count();'
        echo '}'
    } > "${inject}/src/sim/injected_wallclock.cc"
    if "${lint}" --root="${inject}" src > "${perf_dir}/lint_inject.out" \
        2>&1
    then
        echo "ERROR: shrimp_lint missed an injected steady_clock read"
        cat "${perf_dir}/lint_inject.out"
        exit 1
    fi
    if ! grep -q "D1" "${perf_dir}/lint_inject.out"; then
        echo "ERROR: injected wall-clock failed without a D1 report:"
        cat "${perf_dir}/lint_inject.out"
        exit 1
    fi
    echo "injected violation detected, as expected"
}

# ---------------------------------------------------------------- tidy

step_tidy() {
    echo
    echo "== clang-tidy (changed files vs ${tidy_base}) =="
    if ! command -v clang-tidy > /dev/null 2>&1; then
        echo "clang-tidy not installed; skipping lint step"
        return
    fi
    ensure_sanitized_build
    # clang-tidy needs a compilation database.
    if [ ! -f "${build_dir}/compile_commands.json" ]; then
        cmake -B "${build_dir}" -S "${repo_root}" \
            -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
    fi
    changed="$(cd "${repo_root}" \
        && git diff --name-only --diff-filter=d "${tidy_base}" -- \
            'src/*.cc' 'tools/*.cc' 'bench/*.cc' 'examples/*.cc' \
        || true)"
    if [ -n "${changed}" ]; then
        (cd "${repo_root}" && echo "${changed}" \
            | xargs clang-tidy -p "${build_dir}" --quiet)
    else
        echo "no changed C++ sources vs ${tidy_base}; skipping"
    fi
}

# --------------------------------------------------------- model check

step_model_clean() {
    echo
    echo "== model check: clean exploration (depth=${depth}) =="
    ensure_sanitized_build
    "${build_dir}/tools/udma_model_check" --depth="${depth}"
}

step_model_i1() {
    echo
    echo "== model check: seeded I1 mutation must find a counterexample =="
    ensure_sanitized_build
    if "${build_dir}/tools/udma_model_check" --depth=4 \
            --mutate=no-inval-on-switch > "${build_dir}/mutation.out" 2>&1
    then
        echo "ERROR: the no-inval-on-switch mutation went undetected"
        exit 1
    fi
    if ! grep -q "I1" "${build_dir}/mutation.out"; then
        echo "ERROR: mutation run failed without an I1 counterexample:"
        cat "${build_dir}/mutation.out"
        exit 1
    fi
    grep "VIOLATION" "${build_dir}/mutation.out" || true
    echo "counterexample produced, as expected"
}

step_model_tcache() {
    echo
    echo "== model check: seeded tcache mutation must find an I2 counterexample =="
    ensure_sanitized_build
    if "${build_dir}/tools/udma_model_check" --depth=4 \
            --mutate=no-tcache-shootdown \
            > "${build_dir}/tcache_mutation.out" 2>&1
    then
        echo "ERROR: the no-tcache-shootdown mutation went undetected"
        exit 1
    fi
    if ! grep -q "stale proxy-translation-cache" \
            "${build_dir}/tcache_mutation.out"; then
        echo "ERROR: tcache mutation run failed without the stale-cache I2"
        echo "counterexample:"
        cat "${build_dir}/tcache_mutation.out"
        exit 1
    fi
    echo "counterexample produced, as expected"
}

step_model_net() {
    echo
    echo "== model check: lossy net with retransmission must stay clean =="
    ensure_sanitized_build
    "${build_dir}/tools/udma_model_check" --net=drop=0.2,corrupt=0.1,seed=1
}

step_model_net_mutation() {
    echo
    echo "== model check: no-retransmit mutation must lose a completion =="
    ensure_sanitized_build
    if "${build_dir}/tools/udma_model_check" \
            --net=drop=0.2,corrupt=0.1,seed=1 --mutate=no-retransmit \
            > "${build_dir}/net_mutation.out" 2>&1
    then
        echo "ERROR: the no-retransmit mutation went undetected"
        exit 1
    fi
    if ! grep -q "lost completion" "${build_dir}/net_mutation.out"; then
        echo "ERROR: no-retransmit run failed without a lost-completion"
        echo "trace:"
        cat "${build_dir}/net_mutation.out"
        exit 1
    fi
    grep "VIOLATION" "${build_dir}/net_mutation.out" || true
    echo "counterexample produced, as expected"
}

# --------------------------------------------------------------- tests

step_ctest() {
    echo
    echo "== ctest (sanitized) =="
    ensure_sanitized_build
    (cd "${build_dir}" && ctest --output-on-failure -j "$(nproc)")
}

step_tsan() {
    echo
    echo "== TSan: SPSC mailboxes + sharded engine + fault recovery =="
    if [ "${SHRIMP_SKIP_TSAN:-0}" = "1" ] && [ -z "${SHRIMP_ONLY:-}" ]
    then
        echo "SHRIMP_SKIP_TSAN=1; skipping"
        return
    fi
    tsan_dir="${build_dir}-tsan"
    cmake -B "${tsan_dir}" -S "${repo_root}" \
        -DSHRIMP_SANITIZE=thread \
        -DSHRIMP_WERROR=ON \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
    cmake --build "${tsan_dir}" -j "$(nproc)" \
        --target test_sim test_integration > /dev/null
    # The worker threads, barriers, and cross-shard mailboxes are the
    # only concurrency in the simulator; together with the NI
    # retransmission machinery running under shards (FaultRecovery*)
    # these filters cover all of it.
    "${tsan_dir}/tests/test_sim" --gtest_filter='Spsc*:Sharded*'
    "${tsan_dir}/tests/test_integration" \
        --gtest_filter='ShardDeterminism*:FaultRecovery*'
}

step_chaos() {
    echo
    echo "== chaos: lossy 8-node ring under ASan+UBSan =="
    ensure_sanitized_build
    # A high-rate drop/corrupt/duplicate/delay mix on the sanitized
    # build: the retransmit path, duplicate suppression, and checksum
    # rejection all run hot while ASan watches the buffers.
    # multinode_traffic itself exits 1 if the faulty run fails to
    # match its in-process fault-free reference (lost or duplicated
    # records) or if the shard counts disagree.
    "${build_dir}/bench/multinode_traffic" \
        --nodes=8 --shards=4 --records=32 \
        --faults=drop=0.10,corrupt=0.05,dup=0.05,delay=0.10,seed=3
}

# ---------------------------------------------------------- perf gates

step_selfperf() {
    echo
    echo "== self-perf smoke (Release, vs committed BENCH_selfperf.json) =="
    if [ "${SHRIMP_SKIP_SELFPERF:-0}" = "1" ] && [ -z "${SHRIMP_ONLY:-}" ]
    then
        echo "SHRIMP_SKIP_SELFPERF=1; skipping"
        return
    fi
    ensure_release_target selfperf_events
    # The harness exits 1 and prints SELF-PERF REGRESSION if
    # events/sec drops >20% below the committed baseline; set -e
    # stops the gate right there.
    "${perf_dir}/bench/selfperf_events" \
        --stats-json="${perf_dir}/BENCH_selfperf.json" \
        --check-against="${repo_root}/BENCH_selfperf.json" \
        --tolerance=0.20
}

step_multinode() {
    echo
    echo "== multinode gate (Release, vs committed BENCH_multinode.json) =="
    if [ "${SHRIMP_SKIP_MULTINODE:-0}" = "1" ] && [ -z "${SHRIMP_ONLY:-}" ]
    then
        echo "SHRIMP_SKIP_MULTINODE=1; skipping"
        return
    fi
    ensure_release_target multinode_traffic
    # Runs the 64-node ring on 1 shard and 4 shards: exits 1 if the
    # two runs are not bit-identical, if the simulated-time metrics
    # drift from the committed baseline, or (on hosts with >= 4
    # hardware threads) if the parallel speedup falls below 1.5x - 20%.
    "${perf_dir}/bench/multinode_traffic" \
        --nodes=64 --records=64 --record-bytes=4080 --shards=4 \
        --stats-json="${perf_dir}/BENCH_multinode.json" \
        --check-against="${repo_root}/BENCH_multinode.json" \
        --tolerance=0.20
    # Intermediate shard counts must stay bit-identical too: the
    # distance-aware horizons and canonical stamps may not depend on
    # how nodes fold onto shards. Small sizes keep the sweep cheap;
    # each invocation compares shards=1 against shards=N internally.
    for n in 2 3; do
        "${perf_dir}/bench/multinode_traffic" \
            --nodes=16 --records=16 --shards="${n}" > /dev/null
        echo "shards=${n} identity sweep: ok"
    done
    # The 256-node shape from the paper's scaling discussion: 8 shards
    # of 32 nodes, one record per node, digest-checked against the
    # sequential run inside the bench itself.
    "${perf_dir}/bench/multinode_traffic" \
        --nodes=256 --records=4 --record-bytes=1024 --shards=8 \
        > /dev/null
    echo "256-node/8-shard digest gate: ok"
    # Multi-hop leg: the 4x4 mesh exercises dimension-order routing,
    # per-direction link arbitration, and hop-by-hop forwarding under
    # shards. The bench compares shards=1 against shards=4 internally
    # (bit-identical digests) and the committed baseline pins the
    # simulated-time metrics so routing changes can't drift silently.
    if [ "${SHRIMP_SKIP_MESH:-0}" = "1" ]; then
        echo "SHRIMP_SKIP_MESH=1; skipping mesh leg"
    else
        "${perf_dir}/bench/multinode_traffic" \
            --nodes=16 --topo=mesh:4x4 --records=64 \
            --record-bytes=2048 --shards=4 \
            --stats-json="${perf_dir}/BENCH_multinode_mesh.json" \
            --check-against="${repo_root}/BENCH_multinode_mesh.json" \
            --tolerance=0.20
    fi
}

step_netperf() {
    echo
    echo "== netperf gate (Release: goodput under loss + hotspot) =="
    if [ "${SHRIMP_SKIP_NETPERF:-0}" = "1" ] && [ -z "${SHRIMP_ONLY:-}" ]
    then
        echo "SHRIMP_SKIP_NETPERF=1; skipping"
        return
    fi
    ensure_release_target multinode_traffic multinode_patterns
    # Selective repeat has to hold >= 90% of fault-free goodput on a
    # 16-node ring losing 5% of packets outright and corrupting
    # another 2%, without resending more than 2x the chunks the wire
    # actually ate. The bench exits 1 with NETPERF REGRESSION if
    # either bound breaks.
    "${perf_dir}/bench/multinode_traffic" \
        --nodes=16 --records=64 --record-bytes=4080 --shards=1 \
        --faults=drop=0.05,corrupt=0.02,seed=7 \
        --min-goodput=0.90 --max-retransmit-ratio=2.0 \
        --stats-json="${perf_dir}/BENCH_netperf.json"
    # Hotspot funnels 70% of three nodes' traffic into one receiver;
    # with SACK keeping every other flow's pipe full it must stay
    # within 25% of the permutation patterns' mean bandwidth. Gated at
    # 3 nodes: at 4+ every pattern is bus-bound, so the ratio would
    # measure the shared bus instead of the transport.
    "${perf_dir}/bench/multinode_patterns" \
        --nodes=3 --check-hotspot=0.25 \
        --stats-json="${perf_dir}/BENCH_netperf_patterns.json"
    # Mesh legs: the same loss mix has to recover across multi-hop
    # routes. Faults fire per traversed link, so drop=0.05 compounds
    # to ~25% end-to-end on the longest 6-hop routes — the stream
    # shape (many small records) keeps chunks flowing per flow so
    # dup-ack repair, not the RTO tail, does the recovering. The
    # hotspot gate re-enables at 16 nodes because the hot receiver —
    # not a shared bus — is the bottleneck again; on the mesh it
    # floors hotspot at 75% of the *per-receiver* permutation rate
    # (see multinode_patterns.cc).
    if [ "${SHRIMP_SKIP_MESH:-0}" = "1" ]; then
        echo "SHRIMP_SKIP_MESH=1; skipping mesh legs"
    else
        "${perf_dir}/bench/multinode_traffic" \
            --nodes=16 --topo=mesh:4x4 --records=256 \
            --record-bytes=2048 --shards=1 \
            --faults=drop=0.05,corrupt=0.02,seed=7 \
            --min-goodput=0.90 --max-retransmit-ratio=2.0 \
            --stats-json="${perf_dir}/BENCH_netperf_mesh.json"
        "${perf_dir}/bench/multinode_patterns" \
            --nodes=16 --topo=mesh:4x4 --check-hotspot=0.25 \
            --stats-json="${perf_dir}/BENCH_netperf_patterns_mesh.json"
    fi
}

step_profile() {
    echo
    echo "== profiled-trace gate (Release: trace validity + overhead) =="
    if [ "${SHRIMP_SKIP_PROFILE:-0}" = "1" ] && [ -z "${SHRIMP_ONLY:-}" ]
    then
        echo "SHRIMP_SKIP_PROFILE=1; skipping"
        return
    fi
    ensure_release_target multinode_traffic trace_validate

    # Best-of-two per mode damps scheduler noise; the profiler's cost
    # per window is a handful of clock reads and three lock-free trace
    # appends per worker. The bound is 10%, not 5%: on a host with
    # fewer cores than shards the workers serialize, so their per-round
    # profiling costs sum instead of overlapping — and the
    # distance-aware engine shrank the denominator ~3x at this config.
    # Full records (not 16) keep the measured region long enough that
    # single-core scheduler jitter stays below the bound.
    best_wall() {
        local profile_arg="$1" out="$2" best=""
        for _ in 1 2; do
            "${perf_dir}/bench/multinode_traffic" \
                --nodes=16 --shards=4 --records=64 \
                ${profile_arg} "--stats-json=${out}" > /dev/null
            local w
            w="$(grep -o '"wall_s_shards": [0-9.e-]*' "${out}" \
                | awk '{print $2}')"
            if [ -z "${best}" ] \
                || awk -v a="${w}" -v b="${best}" \
                    'BEGIN { exit !(a < b) }'; then
                best="${w}"
            fi
        done
        echo "${best}"
    }

    plain_wall="$(best_wall "" "${perf_dir}/BENCH_profile_off.json")"
    prof_wall="$(best_wall "--profile=${perf_dir}/trace.json" \
        "${perf_dir}/BENCH_profile_on.json")"

    "${perf_dir}/tools/trace_validate" "${perf_dir}/trace.json" \
        --min-events=100

    echo "profiled-trace gate: wall ${plain_wall}s plain vs" \
        "${prof_wall}s profiled"
    if ! awk -v p="${plain_wall}" -v q="${prof_wall}" \
            'BEGIN { exit !(q <= p * 1.10) }'; then
        # With fewer cores than shards the workers serialize, so their
        # per-round profiling costs sum on the critical path instead
        # of overlapping — the ratio stops measuring the profiler.
        # Same guard as the speedup floor and the windoweff gate.
        if [ "$(nproc)" -lt 4 ]; then
            echo "WARNING: profiling overhead above 10% on a" \
                "$(nproc)-core host — serialized workers; not a gate" \
                "failure"
        else
            echo "PROFILE REGRESSION: profiling overhead exceeds 10%" \
                "(${plain_wall}s -> ${prof_wall}s)"
            exit 1
        fi
    fi
}

step_windoweff() {
    echo
    echo "== window-efficiency gate (barrier share of the 4-shard run) =="
    if [ "${SHRIMP_SKIP_WINDOWEFF:-0}" = "1" ] && [ -z "${SHRIMP_ONLY:-}" ]
    then
        echo "SHRIMP_SKIP_WINDOWEFF=1; skipping"
        return
    fi
    # Four worker threads time-slicing fewer than four cores spend
    # most of their "barrier" time descheduled, which says nothing
    # about window quality — same guard the bench's speedup floor uses.
    if [ "$(nproc)" -lt 4 ]; then
        echo "WARNING: host has $(nproc) cores (< 4); barrier share" \
            "is dominated by preemption, not window planning; skipping"
        return
    fi
    ensure_release_target multinode_traffic
    out="${perf_dir}/BENCH_windoweff.json"
    "${perf_dir}/bench/multinode_traffic" \
        --nodes=16 --shards=4 --records=16 \
        --profile="${perf_dir}/windoweff_trace.json" \
        --stats-json="${out}" > /dev/null

    # The profiler block embedded in the stats JSON: totals_ns holds
    # the summed per-worker barrier_plan / barrier_sync nanoseconds;
    # the budget denominator is wall_ns x worker count.
    # [0-9][0-9]* (not *): the bench's top-level params block holds
    # string-valued copies of some keys ("shards": "4"), and a
    # zero-digit match would pick those up with an empty number.
    get_num() {
        grep -o "\"$1\": [0-9][0-9]*" "${out}" | head -1 \
            | awk '{print $2}'
    }
    plan_ns="$(get_num barrier_plan)"
    sync_ns="$(get_num barrier_sync)"
    wall_ns="$(get_num wall_ns)"
    shards="$(get_num shards)"
    if [ -z "${plan_ns}" ] || [ -z "${wall_ns}" ] || [ -z "${shards}" ]
    then
        echo "ERROR: could not parse the profile block out of ${out}"
        exit 1
    fi
    share="$(awk -v p="${plan_ns}" -v s="${sync_ns:-0}" \
        -v w="${wall_ns}" -v n="${shards}" \
        'BEGIN { printf "%.3f", (p + s) / (w * n) }')"
    echo "barrier plan+sync share: ${share} of wall" \
        "(plan=${plan_ns}ns sync=${sync_ns:-0}ns wall=${wall_ns}ns" \
        "x ${shards} workers)"
    if ! awk -v x="${share}" 'BEGIN { exit !(x <= 0.50) }'; then
        echo "WINDOW EFFICIENCY REGRESSION: barrier share ${share}" \
            "exceeds 0.50 — windows are too narrow or the barrier" \
            "got slower"
        exit 1
    fi
}

# ------------------------------------------------------------- driver

should_run build && ensure_sanitized_build
should_run lint && step_lint
should_run tidy && step_tidy
should_run model-clean && step_model_clean
should_run model-i1 && step_model_i1
should_run model-tcache && step_model_tcache
should_run model-net && step_model_net
should_run model-net-mutation && step_model_net_mutation
should_run ctest && step_ctest
should_run tsan && step_tsan
should_run chaos && step_chaos
should_run selfperf && step_selfperf
should_run multinode && step_multinode
should_run netperf && step_netperf
should_run profile && step_profile
should_run windoweff && step_windoweff

echo
if [ -n "${SHRIMP_ONLY:-}" ]; then
    echo "selected checks passed (SHRIMP_ONLY=${SHRIMP_ONLY})"
else
    echo "all checks passed"
fi
