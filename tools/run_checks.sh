#!/usr/bin/env bash
# End-to-end correctness gate: sanitizer build + tests, clang-tidy on
# changed files (when installed), and the invariant model checker —
# both the clean exploration and the seeded I1 mutation that must
# produce a counterexample.
#
# Usage: tools/run_checks.sh [build-dir]
#   SHRIMP_TIDY_BASE=<git-ref>   diff base for clang-tidy (default:
#                                HEAD; use origin/main on a branch)
#   SHRIMP_CHECK_DEPTH=<n>       model-check DFS depth (default: 8)

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build-checks}"
depth="${SHRIMP_CHECK_DEPTH:-8}"
tidy_base="${SHRIMP_TIDY_BASE:-HEAD}"

echo "== configure (ASan+UBSan, -Werror) =="
cmake -B "${build_dir}" -S "${repo_root}" \
    -DSHRIMP_SANITIZE=address,undefined \
    -DSHRIMP_WERROR=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${build_dir}" -j "$(nproc)"

echo
echo "== clang-tidy (changed files vs ${tidy_base}) =="
if command -v clang-tidy > /dev/null 2>&1; then
    # clang-tidy needs a compilation database.
    if [ ! -f "${build_dir}/compile_commands.json" ]; then
        cmake -B "${build_dir}" -S "${repo_root}" \
            -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
    fi
    changed="$(cd "${repo_root}" \
        && git diff --name-only --diff-filter=d "${tidy_base}" -- \
            'src/*.cc' 'tools/*.cc' 'bench/*.cc' 'examples/*.cc' \
        || true)"
    if [ -n "${changed}" ]; then
        (cd "${repo_root}" && echo "${changed}" \
            | xargs clang-tidy -p "${build_dir}" --quiet)
    else
        echo "no changed C++ sources vs ${tidy_base}; skipping"
    fi
else
    echo "clang-tidy not installed; skipping lint step"
fi

echo
echo "== model check: clean exploration (depth=${depth}) =="
"${build_dir}/tools/udma_model_check" --depth="${depth}"

echo
echo "== model check: seeded I1 mutation must find a counterexample =="
if "${build_dir}/tools/udma_model_check" --depth=4 \
        --mutate=no-inval-on-switch > "${build_dir}/mutation.out" 2>&1
then
    echo "ERROR: the no-inval-on-switch mutation went undetected"
    exit 1
fi
if ! grep -q "I1" "${build_dir}/mutation.out"; then
    echo "ERROR: mutation run failed without an I1 counterexample:"
    cat "${build_dir}/mutation.out"
    exit 1
fi
grep "VIOLATION" "${build_dir}/mutation.out" || true
echo "counterexample produced, as expected"

echo
echo "== ctest (sanitized) =="
(cd "${build_dir}" && ctest --output-on-failure -j "$(nproc)")

echo
echo "all checks passed"
