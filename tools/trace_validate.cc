/**
 * @file
 * Structural validator for the Perfetto trace-event JSON emitted by
 * sim::TraceSink (--profile=FILE). Used by the run_checks.sh profile
 * gate and the trace_export_smoke ctest, so a malformed trace fails
 * in CI instead of silently refusing to load in ui.perfetto.dev.
 *
 *   trace_validate <trace.json> [--min-events=N]
 *
 * Checks:
 *   - the file parses and has a non-empty "traceEvents" array;
 *   - every event carries a known "ph" (B, E, X, i, M);
 *   - B/E events balance per (pid, tid) track — depth never goes
 *     negative and every begin is eventually ended;
 *   - wall-clock timestamps are monotonically non-decreasing within
 *     each B/E track (TraceSink emits per-shard slices in order);
 *   - X events have a non-negative "dur", i events are marked
 *     thread-scoped (s == "t"), and every timestamp is >= 0;
 *   - every pid seen has a process_name metadata record and every
 *     (pid, tid) a thread_name record, so tracks are labelled.
 *
 * Exit status: 0 = valid; 1 = structural violation or unreadable;
 * 2 = usage error.
 */

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>

#include "../tests/support/mini_json.hh"

namespace
{

int failures = 0;

void
violation(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::fprintf(stderr, "trace_validate: ");
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
    va_end(ap);
    ++failures;
}

double
numberOr(const minijson::Value &ev, const char *key, double fallback)
{
    const minijson::Value *v = ev.find(key);
    return (v && v->isNumber()) ? v->number : fallback;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *path = nullptr;
    long min_events = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--min-events=", 13) == 0) {
            min_events = std::strtol(argv[i] + 13, nullptr, 10);
        } else if (!path) {
            path = argv[i];
        } else {
            std::fprintf(stderr, "usage: trace_validate <trace.json> "
                                 "[--min-events=N]\n");
            return 2;
        }
    }
    if (!path) {
        std::fprintf(stderr, "usage: trace_validate <trace.json> "
                             "[--min-events=N]\n");
        return 2;
    }

    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "trace_validate: cannot read %s\n", path);
        return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();

    minijson::Value doc;
    std::string err;
    if (!minijson::parse(ss.str(), doc, &err)) {
        std::fprintf(stderr, "trace_validate: %s: %s\n", path,
                     err.c_str());
        return 1;
    }

    const minijson::Value *events = doc.find("traceEvents");
    if (!events || !events->isArray()) {
        std::fprintf(stderr,
                     "trace_validate: %s: no traceEvents array\n",
                     path);
        return 1;
    }

    using Track = std::pair<long, long>; // (pid, tid)
    std::map<Track, long> depth;         // open B count per track
    std::map<Track, double> lastTs;      // last B/E timestamp seen
    std::set<long> pidsSeen;
    std::set<Track> tracksSeen;
    std::set<long> pidsNamed;
    std::set<Track> tracksNamed;
    long nPairs = 0, nComplete = 0, nInstant = 0, nMeta = 0;

    for (std::size_t i = 0; i < events->array.size(); ++i) {
        const minijson::Value &ev = events->array[i];
        if (!ev.isObject()) {
            violation("event %zu is not an object", i);
            continue;
        }
        const minijson::Value *ph = ev.find("ph");
        if (!ph || !ph->isString() || ph->str.size() != 1) {
            violation("event %zu has no single-char ph", i);
            continue;
        }
        const char kind = ph->str[0];
        const long pid = long(numberOr(ev, "pid", -1));
        const long tid = long(numberOr(ev, "tid", -1));

        if (kind == 'M') {
            ++nMeta;
            const minijson::Value *name = ev.find("name");
            const minijson::Value *arg = ev.path("args.name");
            if (!name || !name->isString() || !arg
                || !arg->isString()) {
                violation("metadata event %zu lacks args.name", i);
                continue;
            }
            if (name->str == "process_name")
                pidsNamed.insert(pid);
            else if (name->str == "thread_name")
                tracksNamed.insert({pid, tid});
            else
                violation("event %zu: unknown metadata '%s'", i,
                          name->str.c_str());
            continue;
        }

        const double ts = numberOr(ev, "ts", -1);
        if (pid < 0 || tid < 0 || ts < 0) {
            violation("event %zu (%c) lacks pid/tid/ts", i, kind);
            continue;
        }
        pidsSeen.insert(pid);
        tracksSeen.insert({pid, tid});

        switch (kind) {
          case 'B':
          case 'E': {
            Track tr{pid, tid};
            auto it = lastTs.find(tr);
            if (it != lastTs.end() && ts < it->second)
                violation("event %zu: ts %.3f goes backwards on "
                          "track %ld/%ld (last %.3f)",
                          i, ts, pid, tid, it->second);
            lastTs[tr] = ts;
            long &d = depth[tr];
            if (kind == 'B') {
                ++d;
            } else {
                if (--d < 0) {
                    violation("event %zu: E without B on track "
                              "%ld/%ld",
                              i, pid, tid);
                    d = 0;
                } else {
                    ++nPairs;
                }
            }
            break;
          }
          case 'X': {
            ++nComplete;
            const minijson::Value *dur = ev.find("dur");
            if (!dur || !dur->isNumber() || dur->number < 0)
                violation("event %zu: X without non-negative dur", i);
            break;
          }
          case 'i': {
            ++nInstant;
            const minijson::Value *s = ev.find("s");
            if (!s || !s->isString() || s->str != "t")
                violation("event %zu: instant not thread-scoped", i);
            break;
          }
          default:
            violation("event %zu: unknown ph '%c'", i, kind);
        }
    }

    for (const auto &[track, d] : depth) {
        if (d != 0)
            violation("track %ld/%ld ends with %ld unclosed B "
                      "slice(s)",
                      track.first, track.second, d);
    }
    for (long pid : pidsSeen) {
        if (!pidsNamed.count(pid))
            violation("pid %ld has events but no process_name", pid);
    }
    for (const auto &track : tracksSeen) {
        if (!tracksNamed.count(track))
            violation("track %ld/%ld has events but no thread_name",
                      track.first, track.second);
    }

    const long total = nPairs + nComplete + nInstant;
    if (total < min_events)
        violation("only %ld payload events (need >= %ld)", total,
                  min_events);

    if (failures) {
        std::fprintf(stderr,
                     "trace_validate: %s: %d violation(s)\n", path,
                     failures);
        return 1;
    }
    std::printf("trace_validate: %s ok — %ld wall slices, %ld sim "
                "slices, %ld instants, %ld metadata records across "
                "%zu tracks\n",
                path, nPairs, nComplete, nInstant, nMeta,
                tracksSeen.size());
    return 0;
}
