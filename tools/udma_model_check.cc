/**
 * @file
 * Schedule-exploring model checker for the Section 6 invariants.
 *
 * Drives a small, fixed world — one node, two UDMA frame-buffer
 * controllers, two parked processes each owning one dirty buffer page
 * and a mapped window on both devices — through bounded-depth DFS over
 * an enumerated action alphabet:
 *
 *   switch(pK)               context switch to pK (with the I1 Inval)
 *   store-dev-dest(pK,dJ)    STORE to pK's window on dJ: latches a
 *                            device-side DESTINATION (DestLoaded)
 *   load-mem-fire(pK,dJ)     LOAD from PROXY(buf[pK], dJ): fires a
 *                            mem->dev transfer if a dest is latched
 *   store-mem-dest(pK,dJ)    STORE to PROXY(buf[pK], dJ): latches a
 *                            memory-side DESTINATION (and exercises
 *                            the I3 proxy write-upgrade path)
 *   load-dev-fire(pK,dJ)     LOAD from pK's window on dJ: fires a
 *                            dev->mem transfer if a dest is latched
 *   remap(pK)                page buf[pK] out, then re-fault it in at
 *                            a (generally) different frame
 *   clean(pK)                page-daemon clean of buf[pK] (write-
 *                            protects its proxy mappings under I3)
 *   pageout                  evict one frame chosen by the clock hand
 *   complete                 run the event queue until no transfer is
 *                            in flight (delivering DMA completions)
 *
 * All actions except `complete` are synchronous and untimed, so a
 * prefix of actions is a deterministic replay recipe. After every
 * transition (and, via the kernel audit hooks, *inside* multi-step
 * transitions) the invariant auditor cross-checks the global state;
 * the first violation aborts the search and prints the action trace,
 * the violations, and the span ledger — everything needed to replay
 * with --replay=<trace> --trace=all.
 *
 * Visited states are hashed (FNV-1a over a canonical encoding that
 * renames frames in first-appearance order and abstracts time and
 * page contents) to prune revisits, so the DFS explores distinct
 * states rather than distinct schedules.
 *
 * Seeded mutations (--mutate=no-inval-on-switch etc.) disable exactly
 * one invariant-maintaining kernel action each, demonstrating that the
 * checker finds the corresponding counterexample.
 */

#include <cstdint>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <unordered_set>
#include <vector>

#include "check/monitor.hh"
#include "core/system.hh"
#include "shrimp/fault.hh"
#include "sim/flight_recorder.hh"
#include "sim/json.hh"
#include "sim/span.hh"
#include "sim/trace.hh"
#include "workload/ring.hh"

using namespace shrimp;

namespace
{

constexpr unsigned numProcs = 2;
constexpr unsigned numDevs = 2;

// --------------------------------------------------------------- actions

enum class ActionKind
{
    Switch,
    StoreDevDest,
    LoadMemFire,
    StoreMemDest,
    LoadDevFire,
    Remap,
    Clean,
    PageOut,
    Complete,
};

struct Action
{
    ActionKind kind;
    unsigned proc = 0;
    unsigned dev = 0;
    std::string name;
};

std::vector<Action>
actionAlphabet()
{
    std::vector<Action> out;
    auto add = [&](ActionKind k, unsigned p, unsigned d,
                   std::string name) {
        out.push_back(Action{k, p, d, std::move(name)});
    };
    for (unsigned p = 0; p < numProcs; ++p)
        add(ActionKind::Switch, p, 0,
            "switch(p" + std::to_string(p) + ")");
    for (unsigned p = 0; p < numProcs; ++p) {
        for (unsigned d = 0; d < numDevs; ++d) {
            std::string pd = "(p" + std::to_string(p) + ",d"
                             + std::to_string(d) + ")";
            add(ActionKind::StoreDevDest, p, d, "store-dev-dest" + pd);
            add(ActionKind::LoadMemFire, p, d, "load-mem-fire" + pd);
            add(ActionKind::StoreMemDest, p, d, "store-mem-dest" + pd);
            add(ActionKind::LoadDevFire, p, d, "load-dev-fire" + pd);
        }
    }
    for (unsigned p = 0; p < numProcs; ++p) {
        add(ActionKind::Remap, p, 0, "remap(p" + std::to_string(p) + ")");
        add(ActionKind::Clean, p, 0, "clean(p" + std::to_string(p) + ")");
    }
    add(ActionKind::PageOut, 0, 0, "pageout");
    add(ActionKind::Complete, 0, 0, "complete");
    return out;
}

// ---------------------------------------------------------------- world

/** One rebuilt-from-scratch instance of the checked system. */
struct World
{
    std::unique_ptr<core::System> sys;
    std::unique_ptr<audit::Monitor> monitor;
    Pid pids[numProcs] = {};
    Addr buf[numProcs] = {};
    Addr win[numProcs][numDevs] = {};

    os::Kernel &kernel() { return sys->node(0).kernel(); }

    os::Process &
    proc(unsigned p)
    {
        os::Process *pr = kernel().findProcess(pids[p]);
        SHRIMP_ASSERT(pr, "puppet process vanished");
        return *pr;
    }

    /** Index of the process owning the active address space (or -1). */
    int
    activeProc()
    {
        vm::PageTable *table = sys->node(0).mmu().activeTable();
        for (unsigned p = 0; p < numProcs; ++p) {
            if (table == &proc(p).pageTable())
                return int(p);
        }
        return -1;
    }

    bool
    transferring()
    {
        for (auto *c : kernel().controllers()) {
            if (c->state() == dma::UdmaController::State::Transferring)
                return true;
        }
        return false;
    }
};

std::unique_ptr<World>
makeWorld(const os::MutationKnobs &mutations)
{
    // The span registry is process-global; each world starts fresh.
    span::registry().clear();

    core::SystemConfig cfg;
    cfg.nodes = 1;
    cfg.node.memBytes = 1 << 20;
    for (unsigned d = 0; d < numDevs; ++d) {
        core::DeviceConfig fb;
        fb.kind = core::DeviceKind::FrameBuffer;
        fb.fbWidth = 256;
        fb.fbHeight = 256;
        cfg.node.devices.push_back(fb);
    }

    auto w = std::make_unique<World>();
    w->sys = std::make_unique<core::System>(cfg);
    os::Kernel &kernel = w->kernel();
    kernel.setMutations(mutations);

    // Each puppet allocates one buffer page, dirties it, maps a
    // one-page window on each device, and parks on a blocking syscall
    // so the scheduler never runs again: from here on the checker is
    // the only driver of the machine.
    for (unsigned p = 0; p < numProcs; ++p) {
        os::Process &pr = kernel.spawn(
            "puppet" + std::to_string(p),
            [w = w.get(), p](os::UserContext &ctx) -> sim::ProcTask {
                w->buf[p] =
                    co_await ctx.sysAllocMemory(ctx.pageBytes());
                co_await ctx.store(w->buf[p], 0x5A5A0000 + p);
                for (unsigned d = 0; d < numDevs; ++d) {
                    w->win[p][d] = co_await ctx.sysMapDeviceProxy(
                        d, 0, 1, true);
                }
                co_await ctx.syscall([](os::Kernel &, os::Process &,
                                        os::SyscallControl &sc) {
                    sc.blocks = true;
                });
            });
        w->pids[p] = pr.pid();
    }
    w->sys->run();

    for (unsigned p = 0; p < numProcs; ++p) {
        SHRIMP_ASSERT(w->proc(p).state() == os::ProcState::Blocked,
                      "puppet ", p, " failed to park");
        SHRIMP_ASSERT(w->buf[p] != 0 && w->win[p][0] != 0,
                      "puppet ", p, " setup incomplete");
    }

    // Auditing starts once the deterministic setup is done: the
    // monitor audits at every kernel event and DMA completion during
    // the exploration, catching mid-action violation windows.
    w->monitor = std::make_unique<audit::Monitor>(
        *w->sys, audit::Mode::EveryEvent, /*fail_fast=*/true);
    return w;
}

/**
 * Is the action enabled in this state? Enabledness is a pure function
 * of state, which keeps replay prefixes meaningful.
 */
bool
enabled(World &w, const Action &a)
{
    switch (a.kind) {
      case ActionKind::Switch:
        return w.activeProc() != int(a.proc);
      case ActionKind::StoreDevDest:
      case ActionKind::LoadMemFire:
      case ActionKind::StoreMemDest:
      case ActionKind::LoadDevFire:
      case ActionKind::Remap:
      case ActionKind::Clean:
        // User accesses need the process's address space active; the
        // kernel-side remap/clean are tied to the same gate to bound
        // the branching factor.
        return w.activeProc() == int(a.proc);
      case ActionKind::PageOut:
        return true;
      case ActionKind::Complete:
        return w.transferring();
    }
    return false;
}

/**
 * Apply one action. Returns false if the action turned out to be a
 * dead no-op (e.g. nothing evictable); violations surface as
 * audit::ViolationError from the monitor's fail-fast hooks or from
 * the caller's post-action sweep.
 */
bool
apply(World &w, const Action &a)
{
    os::Kernel &kernel = w.kernel();
    const std::uint32_t page = kernel.layout().pageBytes();
    Tick lat = 0;
    switch (a.kind) {
      case ActionKind::Switch:
        kernel.modelSwitchTo(w.proc(a.proc));
        return true;
      case ActionKind::StoreDevDest: {
        auto r = kernel.performUserAccess(
            w.proc(a.proc), w.win[a.proc][a.dev], true, page);
        return r.ok;
      }
      case ActionKind::LoadMemFire: {
        Addr va = kernel.layout().proxy(w.buf[a.proc], a.dev);
        auto r = kernel.performUserAccess(w.proc(a.proc), va, false);
        return r.ok;
      }
      case ActionKind::StoreMemDest: {
        Addr va = kernel.layout().proxy(w.buf[a.proc], a.dev);
        auto r = kernel.performUserAccess(w.proc(a.proc), va, true,
                                          page);
        return r.ok;
      }
      case ActionKind::LoadDevFire: {
        auto r = kernel.performUserAccess(w.proc(a.proc),
                                          w.win[a.proc][a.dev], false);
        return r.ok;
      }
      case ActionKind::Remap: {
        if (!kernel.evictPage(w.proc(a.proc), w.buf[a.proc], lat))
            return false;
        auto r = kernel.performUserAccess(w.proc(a.proc),
                                          w.buf[a.proc], false);
        return r.ok;
      }
      case ActionKind::Clean:
        return kernel.cleanPage(w.proc(a.proc), w.buf[a.proc], lat);
      case ActionKind::PageOut:
        return kernel.evictOneFrame(lat);
      case ActionKind::Complete: {
        sim::EventQueue &eq = w.sys->eq();
        eq.runUntil([&w] { return !w.transferring(); },
                    eq.now() + tickSec);
        return !w.transferring();
      }
    }
    return false;
}

// ---------------------------------------------------------- state hash

struct Fnv
{
    std::uint64_t h = 1469598103934665603ull;

    void
    mix(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 1099511628211ull;
        }
    }
};

/**
 * Hash the invariant-relevant machine state. Frames are renamed in
 * first-appearance order so states differing only in *which* physical
 * frame backs a page collapse; simulated time, page contents, and
 * span/stat counters are deliberately excluded.
 */
std::uint64_t
stateHash(World &w)
{
    Fnv f;
    os::Kernel &kernel = w.kernel();
    const vm::AddressLayout &layout = kernel.layout();

    std::map<Addr, std::uint64_t> canon;
    auto cid = [&](Addr frame_base) {
        auto [it, fresh] = canon.try_emplace(frame_base, canon.size());
        (void)fresh;
        return it->second;
    };

    f.mix(std::uint64_t(w.activeProc() + 1));
    for (unsigned p = 0; p < numProcs; ++p) {
        os::Process &pr = w.proc(p);
        f.mix(std::uint64_t(pr.state()));
        f.mix(pr.killed());
        pr.pageTable().forEach([&](std::uint64_t vpn, vm::Pte &pte) {
            f.mix(vpn);
            f.mix(std::uint64_t(pte.valid) | std::uint64_t(pte.writable) << 1
                  | std::uint64_t(pte.user) << 2
                  | std::uint64_t(pte.dirty) << 3
                  | std::uint64_t(pte.referenced) << 4);
            if (!pte.valid)
                return;
            vm::Decoded dec = layout.decode(pte.frameAddr);
            f.mix(std::uint64_t(dec.space));
            f.mix(dec.device);
            if (dec.space == vm::Space::DevProxy)
                f.mix(dec.offset);
            else
                f.mix(cid(layout.pageBase(dec.offset)));
        });
        f.mix(0x5eed);
    }

    std::uint64_t nframes = layout.memBytes() / layout.pageBytes();
    f.mix(kernel.clockHand());
    for (std::uint64_t frame = 0; frame < nframes; ++frame) {
        const auto &fi = kernel.frameInfo(frame);
        if (!fi.used || fi.pinCount == 0)
            continue;
        f.mix(cid(Addr(frame) * layout.pageBytes()));
        f.mix(fi.pinCount);
    }

    for (auto *c : kernel.controllers()) {
        f.mix(std::uint64_t(c->state()));
        f.mix(c->latchOwnerPid());
        Addr dest_page = 0;
        if (c->destLoadedPage(dest_page))
            f.mix(cid(dest_page) + 1);
        else
            f.mix(0);
        f.mix(c->queuedRequests());
        f.mix(c->queuedSystemRequests());
        for (const auto &[page_base, refs] : c->busyPages()) {
            f.mix(cid(page_base));
            f.mix(refs);
        }
        f.mix(0xc0de);
    }
    return f.h;
}

// ------------------------------------------------------------- checker

struct Options
{
    unsigned depth = 8;
    std::uint64_t maxStates = 200000;
    os::MutationKnobs mutations;
    std::vector<std::string> replay;
    /** `--net=<faultspec>`: check delivery under faults instead. */
    std::string netSpec;
    /** `--mutate=no-retransmit`: disable NI recovery in --net mode. */
    bool noRetransmit = false;
    /** `--mutate=no-fast-retransmit`: RTO-only recovery. */
    bool noFastRetransmit = false;
    /** `--mutate=sack-ignore`: sender discards the SACK bitmap. */
    bool ignoreSack = false;
    /** `--limit-us=N` (--net mode): completion deadline in simulated
     *  microseconds — recovery that only limps home after the
     *  deadline is a lost completion, which is how the RTO-only
     *  mutations above become visible counterexamples. 0 = none. */
    double limitUs = 0;
    /** `--records=N` / `--record-bytes=N` (--net mode): workload
     *  size. The deadline checks use a longer streaming run than the
     *  default, so steady-state recovery throughput (where SACK and
     *  fast retransmit earn their keep) dominates the tail. */
    unsigned records = 16;
    std::uint32_t recordBytes = 1024;
    /** `--nodes=N` (--net mode): ring size (default 2). */
    unsigned netNodes = 2;
    /** `--topo=SPEC` (--net mode): backplane wiring (default
     *  crossbar; `mesh:WxH` / `torus:WxH` must match --nodes). */
    sim::TopologyConfig netTopo;
    bool traceReplay = false;
    bool quiet = false;
    bool ok = true;
};

struct SearchStats
{
    std::uint64_t transitions = 0;
    std::uint64_t states = 0;
    std::uint64_t pruned = 0;
    std::uint64_t deadNoops = 0;
};

struct Counterexample
{
    std::vector<std::string> trace;
    std::vector<audit::Violation> violations;
};

/** Rebuild a world and replay an action prefix (no auditing errors
 *  expected: the prefix was already explored). */
std::unique_ptr<World>
replayPrefix(const Options &opt, const std::vector<const Action *> &prefix)
{
    auto w = makeWorld(opt.mutations);
    for (const Action *a : prefix)
        apply(*w, *a);
    return w;
}

/**
 * Apply @p a on top of @p prefix in a fresh world. Returns the world
 * on success; fills @p cex and returns nullptr on a violation.
 */
std::unique_ptr<World>
step(const Options &opt, const std::vector<const Action *> &prefix,
     const Action &a, bool &applied, Counterexample &cex)
{
    applied = false;
    auto traceOf = [&] {
        std::vector<std::string> t;
        for (const Action *pa : prefix)
            t.push_back(pa->name);
        t.push_back(a.name);
        return t;
    };
    std::unique_ptr<World> w;
    try {
        w = replayPrefix(opt, prefix);
        applied = apply(*w, a);
    } catch (const audit::ViolationError &e) {
        cex.trace = traceOf();
        cex.violations = e.violations();
        return nullptr;
    }
    if (!applied)
        return w;
    // Post-action sweep: some actions (a plain latch STORE, a clean)
    // cross no kernel hook point.
    std::vector<audit::Violation> found = audit::checkAll(*w->sys);
    if (!found.empty()) {
        cex.trace = traceOf();
        cex.violations = std::move(found);
        return nullptr;
    }
    return w;
}

/**
 * Bounded DFS over distinct states. Returns true if a counterexample
 * was found.
 */
bool
explore(const Options &opt, const std::vector<Action> &alphabet,
        SearchStats &stats, Counterexample &cex)
{
    std::unordered_set<std::uint64_t> seen;

    struct Frame
    {
        std::vector<const Action *> prefix;
    };
    std::vector<Frame> stack;

    {
        auto w0 = makeWorld(opt.mutations);
        std::vector<audit::Violation> found = audit::checkAll(*w0->sys);
        if (!found.empty()) {
            cex.violations = std::move(found);
            return true;
        }
        seen.insert(stateHash(*w0));
        stats.states = 1;
        stack.push_back(Frame{});
    }

    while (!stack.empty()) {
        Frame fr = std::move(stack.back());
        stack.pop_back();
        if (fr.prefix.size() >= opt.depth)
            continue;

        // Rebuild this node's world once to evaluate enabledness.
        auto base = replayPrefix(opt, fr.prefix);
        for (const Action &a : alphabet) {
            if (!enabled(*base, a))
                continue;
            ++stats.transitions;
            bool applied = false;
            auto w = step(opt, fr.prefix, a, applied, cex);
            if (!w)
                return true;
            if (!applied) {
                ++stats.deadNoops;
                continue;
            }
            std::uint64_t h = stateHash(*w);
            if (!seen.insert(h).second) {
                ++stats.pruned;
                continue;
            }
            ++stats.states;
            if (stats.states > opt.maxStates) {
                std::cerr << "model-check: state cap ("
                          << opt.maxStates
                          << ") hit; exploration truncated\n";
                return false;
            }
            Frame next;
            next.prefix = fr.prefix;
            next.prefix.push_back(&a);
            stack.push_back(std::move(next));
        }
    }
    return false;
}

// ------------------------------------------------------------- replay

const Action *
findAction(const std::vector<Action> &alphabet, const std::string &name)
{
    for (const Action &a : alphabet) {
        if (a.name == name)
            return &a;
    }
    return nullptr;
}

void
dumpSpans()
{
    sim::JsonWriter w(std::cerr);
    span::registry().dumpJson(w, /*includeSpans=*/true);
    w.finish();
    std::cerr << "\n";
}

/**
 * Re-run an action list step by step with per-step reporting (and
 * optionally full tracing): the counterexample replay path.
 * Returns true if a violation was reproduced.
 */
bool
replayTrace(const Options &opt, const std::vector<Action> &alphabet,
            const std::vector<std::string> &names)
{
    if (opt.traceReplay)
        trace::applySpec("all", &std::cerr);
    auto w = makeWorld(opt.mutations);
    bool violated = false;
    for (std::size_t i = 0; i < names.size(); ++i) {
        const Action *a = findAction(alphabet, names[i]);
        if (!a) {
            std::cerr << "replay: unknown action '" << names[i]
                      << "'\n";
            return false;
        }
        std::cerr << "  " << (i + 1) << ". " << a->name;
        if (!enabled(*w, *a)) {
            std::cerr << " [disabled]\n";
            continue;
        }
        std::vector<audit::Violation> found;
        try {
            bool applied = apply(*w, *a);
            std::cerr << (applied ? "" : " [no-op]") << "\n";
            found = audit::checkAll(*w->sys);
        } catch (const audit::ViolationError &e) {
            std::cerr << " [mid-action violation]\n";
            found = e.violations();
        }
        for (const auto &v : found)
            std::cerr << "     " << audit::describe(v) << "\n";
        if (!found.empty()) {
            violated = true;
            break;
        }
    }
    dumpSpans();
    if (opt.traceReplay)
        trace::applySpec("", nullptr);
    return violated;
}

// --------------------------------------------------------------- main

void
usage(std::ostream &os)
{
    os << "usage: udma_model_check [options]\n"
          "  --depth=N            DFS depth bound (default 8)\n"
          "  --max-states=N       distinct-state cap (default 200000)\n"
          "  --mutate=LIST        comma list of seeded mutations:\n"
          "                       no-inval-on-switch (I1),\n"
          "                       no-proxy-shootdown (I2),\n"
          "                       no-tcache-shootdown (I2),\n"
          "                       no-proxy-writeprotect (I3),\n"
          "                       no-i4-busy-check (I4),\n"
          "                       no-retransmit (with --net: NI never\n"
          "                       re-sends, lost chunks stay lost),\n"
          "                       no-fast-retransmit (with --net: SACK\n"
          "                       scoreboard never fires, RTO-only),\n"
          "                       sack-ignore (with --net: sender\n"
          "                       discards SACK bitmaps entirely)\n"
          "  --limit-us=N         with --net: completion deadline in\n"
          "                       simulated us (default: none)\n"
          "  --records=N          with --net: records per direction\n"
          "                       (default 16)\n"
          "  --record-bytes=N     with --net: record payload bytes\n"
          "                       (default 1024)\n"
          "  --nodes=N            with --net: ring size (default 2)\n"
          "  --topo=SPEC          with --net: backplane wiring\n"
          "                       (crossbar, mesh:WxH, torus:WxH;\n"
          "                       a grid must match --nodes)\n"
          "  --net=SPEC           check exactly-once delivery on an\n"
          "                       unreliable backplane instead\n"
          "                       (SPEC as in --faults=, e.g.\n"
          "                       drop=0.2,corrupt=0.1,seed=7)\n"
          "  --replay=LIST        comma list of actions to replay\n"
          "                       instead of exploring\n"
          "  --trace=all          full tracing during --replay\n"
          "  --list-actions       print the action alphabet\n"
          "  --quiet              suppress the exploration summary\n";
}

bool
parseMutations(const std::string &list, os::MutationKnobs &out,
               Options &opt)
{
    std::stringstream ss(list);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (item == "no-retransmit") {
            opt.noRetransmit = true;
        } else if (item == "no-fast-retransmit") {
            opt.noFastRetransmit = true;
        } else if (item == "sack-ignore") {
            opt.ignoreSack = true;
        } else if (item == "no-inval-on-switch") {
            out.skipInvalOnSwitch = true;
        } else if (item == "no-proxy-shootdown") {
            out.skipProxyShootdown = true;
        } else if (item == "no-tcache-shootdown") {
            out.skipTcacheShootdown = true;
        } else if (item == "no-proxy-writeprotect") {
            out.skipProxyWriteProtect = true;
        } else if (item == "no-i4-busy-check") {
            out.ignoreI4PageBusy = true;
        } else {
            std::cerr << "unknown mutation '" << item << "'\n";
            return false;
        }
    }
    return true;
}

std::vector<std::string>
splitList(const std::string &list)
{
    std::vector<std::string> out;
    std::stringstream ss(list);
    std::string item;
    while (std::getline(ss, item, ','))
        out.push_back(item);
    return out;
}

/**
 * --net mode: instead of the invariant DFS, run the ring workload on
 * an unreliable backplane (shrimp/fault.hh) and check the reliability
 * property: every record is delivered exactly once — no sender flow
 * retains unacknowledged chunks and every receiver finishes. With the
 * no-retransmit mutation the NI never re-sends, so the first dropped
 * chunk (or dropped ack) becomes a machine-readable lost-completion
 * trace and the check fails — demonstrating the recovery layer is
 * what makes the property hold, exactly like the I1-I4 mutations.
 */
int
runNetCheck(const Options &opt)
{
    net::FaultConfig fc;
    if (!net::parseFaultSpec(opt.netSpec, fc, &std::cerr)) {
        usage(std::cerr);
        return 2;
    }
    fc.disableRetransmit = fc.disableRetransmit || opt.noRetransmit;
    fc.disableFastRetransmit =
        fc.disableFastRetransmit || opt.noFastRetransmit;
    fc.ignoreSack = fc.ignoreSack || opt.ignoreSack;

    workload::RingConfig rc;
    rc.nodes = opt.netNodes;
    rc.topology = opt.netTopo;
    if (!rc.topology.flat() && rc.topology.gridNodes() != rc.nodes) {
        std::cerr << "--topo=" << rc.topology.describe() << " wires "
                  << rc.topology.gridNodes() << " nodes but --nodes="
                  << rc.nodes << "\n";
        return 2;
    }
    rc.records = opt.records;
    rc.recordBytes = opt.recordBytes;
    rc.shards = 1;
    // The deadline turns "recovery exists" into "recovery performs":
    // a mutation that only limps home on serial RTO expiries blows
    // the budget and surfaces as the same lost-completion trace a
    // truly dead flow would leave.
    rc.limit = opt.limitUs > 0 ? Tick(opt.limitUs * tickUs)
                               : Tick(5) * tickSec;
    rc.faults = fc;
    // Start the flight recorder from a clean slate so a violation dump
    // below shows only this run's tail of simulated events.
    sim::FlightRecorder::clearAll();
    workload::RingResult r = workload::runRing(rc);

    if (!opt.quiet) {
        std::cout << "net-check: " << rc.nodes << "-node ring on "
                  << rc.topology.describe() << ", " << rc.records
                  << " records, faults '" << opt.netSpec
                  << "'" << (fc.disableRetransmit
                                 ? " (retransmission disabled)"
                                 : "")
                  << (fc.disableFastRetransmit
                          ? " (fast retransmit disabled)"
                          : "")
                  << (fc.ignoreSack ? " (SACK ignored)" : "");
        if (opt.limitUs > 0)
            std::cout << " deadline " << opt.limitUs << " us";
        std::cout << "\n";
        std::cout << "net-check: links dropped " << r.faults.dropped
                  << ", corrupted " << r.faults.corrupted
                  << ", duplicated " << r.faults.duplicated
                  << ", delayed " << r.faults.delayed << "; NI resent "
                  << r.retransmits << " chunks over " << r.timeouts
                  << " timeouts\n";
    }

    if (r.nodesDone < rc.nodes || r.chunksUnacked > 0) {
        std::cout << "VIOLATION: lost completion — "
                  << (rc.nodes - r.nodesDone) << " of " << rc.nodes
                  << " receivers never finished";
        if (opt.limitUs > 0)
            std::cout << " by the " << opt.limitUs << " us deadline";
        std::cout << ", " << r.chunksUnacked
                  << " chunks never acknowledged:\n";
        for (const auto &f : r.lostFlows)
            std::cout << "  " << f << "\n";
        std::cout << "  (links dropped " << r.faults.dropped
                  << " data chunks; retransmission "
                  << (fc.disableRetransmit ? "disabled" : "enabled")
                  << ")\n";
        // Post-mortem: the queues died with the System inside runRing,
        // so this prints the graveyard snapshots of their final events.
        sim::FlightRecorder::dumpAll(std::cout);
        return 1;
    }
    std::cout << "net-check: all " << r.messagesDelivered
              << " messages delivered exactly once ("
              << r.rxDupDropped << " duplicates and "
              << r.rxCorruptDropped
              << " corrupt chunks discarded at receivers) in "
              << ticksToUs(r.simTicks) << " us of simulated time\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    bool list_actions = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--depth=", 0) == 0) {
            // std::stoul throws on garbage ("--depth=banana") and on
            // out-of-range values; turn both into a usage error
            // instead of an uncaught-exception abort.
            try {
                opt.depth = unsigned(std::stoul(arg.substr(8)));
            } catch (const std::exception &) {
                std::cerr << "--depth: want a number, got '"
                          << arg.substr(8) << "'\n";
                usage(std::cerr);
                return 2;
            }
        } else if (arg.rfind("--max-states=", 0) == 0) {
            try {
                opt.maxStates = std::stoull(arg.substr(13));
            } catch (const std::exception &) {
                std::cerr << "--max-states: want a number, got '"
                          << arg.substr(13) << "'\n";
                usage(std::cerr);
                return 2;
            }
        } else if (arg.rfind("--mutate=", 0) == 0) {
            if (!parseMutations(arg.substr(9), opt.mutations, opt))
                return 2;
        } else if (arg.rfind("--records=", 0) == 0) {
            try {
                opt.records = unsigned(std::stoul(arg.substr(10)));
            } catch (const std::exception &) {
                std::cerr << "--records: want a number, got '"
                          << arg.substr(10) << "'\n";
                usage(std::cerr);
                return 2;
            }
        } else if (arg.rfind("--record-bytes=", 0) == 0) {
            try {
                opt.recordBytes =
                    std::uint32_t(std::stoul(arg.substr(15)));
            } catch (const std::exception &) {
                std::cerr << "--record-bytes: want a number, got '"
                          << arg.substr(15) << "'\n";
                usage(std::cerr);
                return 2;
            }
        } else if (arg.rfind("--limit-us=", 0) == 0) {
            try {
                opt.limitUs = std::stod(arg.substr(11));
            } catch (const std::exception &) {
                std::cerr << "--limit-us: want a number, got '"
                          << arg.substr(11) << "'\n";
                usage(std::cerr);
                return 2;
            }
        } else if (arg.rfind("--nodes=", 0) == 0) {
            try {
                opt.netNodes = unsigned(std::stoul(arg.substr(8)));
            } catch (const std::exception &) {
                std::cerr << "--nodes: want a number, got '"
                          << arg.substr(8) << "'\n";
                usage(std::cerr);
                return 2;
            }
        } else if (arg.rfind("--topo=", 0) == 0) {
            if (!sim::parseTopologySpec(arg.substr(7), opt.netTopo,
                                        &std::cerr)) {
                usage(std::cerr);
                return 2;
            }
        } else if (arg.rfind("--net=", 0) == 0) {
            opt.netSpec = arg.substr(6);
        } else if (arg.rfind("--replay=", 0) == 0) {
            opt.replay = splitList(arg.substr(9));
        } else if (arg == "--trace=all") {
            opt.traceReplay = true;
        } else if (arg == "--list-actions") {
            list_actions = true;
        } else if (arg == "--quiet") {
            opt.quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else {
            std::cerr << "unknown option '" << arg << "'\n";
            usage(std::cerr);
            return 2;
        }
    }

    if (!opt.netSpec.empty())
        return runNetCheck(opt);

    const std::vector<Action> alphabet = actionAlphabet();
    if (list_actions) {
        for (const Action &a : alphabet)
            std::cout << a.name << "\n";
        return 0;
    }

    if (!opt.replay.empty()) {
        std::cerr << "replaying " << opt.replay.size() << " actions:\n";
        bool violated = replayTrace(opt, alphabet, opt.replay);
        return violated ? 1 : 0;
    }

    SearchStats stats;
    Counterexample cex;
    bool found = explore(opt, alphabet, stats, cex);

    if (found) {
        std::cout << "VIOLATION found after " << cex.trace.size()
                  << " actions:\n";
        for (std::size_t i = 0; i < cex.trace.size(); ++i)
            std::cout << "  " << (i + 1) << ". " << cex.trace[i]
                      << "\n";
        for (const auto &v : cex.violations)
            std::cout << "  " << audit::describe(v) << "\n";
        std::string replay;
        for (std::size_t i = 0; i < cex.trace.size(); ++i)
            replay += (i ? "," : "") + cex.trace[i];
        std::cout << "replay with: udma_model_check --replay=" << replay
                  << " --trace=all";
        if (opt.mutations.any())
            std::cout << " (plus the same --mutate= flags)";
        std::cout << "\n\ncounterexample replay:\n";
        replayTrace(opt, alphabet, cex.trace);
        return 1;
    }

    if (!opt.quiet) {
        std::cout << "model-check: depth=" << opt.depth << " states="
                  << stats.states << " transitions="
                  << stats.transitions << " pruned=" << stats.pruned
                  << " no-ops=" << stats.deadNoops
                  << " violations=0\n";
    }
    return 0;
}
