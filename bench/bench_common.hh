/**
 * @file
 * Shared harness code for the reproduction benchmarks: build a
 * two-node SHRIMP system, send one message of a given size, and
 * measure user-visible bandwidth exactly as the paper does (send
 * initiation at the sender to last-byte-visible at the receiver).
 */

#ifndef SHRIMP_BENCH_BENCH_COMMON_HH
#define SHRIMP_BENCH_BENCH_COMMON_HH

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "core/system.hh"
#include "core/udma_lib.hh"
#include "sim/json.hh"
#include "sim/profiler.hh"
#include "sim/span.hh"

namespace shrimp::bench
{

/** Result of one timed message. */
struct MessageTiming
{
    std::uint64_t bytes = 0;
    Tick sendStart = 0;      ///< sender begins user-level initiation
    Tick delivered = 0;      ///< last byte + completion visible
    std::uint64_t transfers = 0;
    // Sender-side controller statistics (UDMA runs only).
    std::uint64_t statusLoads = 0;
    std::uint64_t queueRefusals = 0;
    std::uint64_t invals = 0;
    // Whole-system kernel invariant counters (all nodes).
    std::uint64_t i1Invals = 0;
    std::uint64_t i2Shootdowns = 0;
    std::uint64_t i3DirtyFaults = 0;
    std::uint64_t contextSwitches = 0;

    double
    bandwidthBytesPerUs() const
    {
        Tick dt = delivered - sendStart;
        return dt == 0 ? 0.0 : double(bytes) / ticksToUs(dt);
    }

    double
    latencyUs() const
    {
        return delivered > sendStart ? ticksToUs(delivered - sendStart)
                                     : 0.0;
    }
};

/**
 * Machine-readable benchmark output (the BENCH_*.json format): name,
 * parameters, metrics, an end-to-end latency histogram, the kernel
 * invariant counters summed over every System the benchmark built,
 * and the span-registry summary. One report is active per process;
 * the time*Message helpers feed it automatically, and benchmarks that
 * build their own Systems call captureSystem() before the System
 * dies.
 *
 * Written only when the binary is invoked with `--stats-json=<path>`.
 */
class BenchReport
{
  public:
    BenchReport(std::string name, core::RunOptions opts)
        : name_(std::move(name)), opts_(std::move(opts))
    {
        active_ = this;
        // One experiment per process: start span accounting fresh.
        span::registry().clear();
    }

    ~BenchReport()
    {
        if (active_ == this)
            active_ = nullptr;
    }

    BenchReport(const BenchReport &) = delete;
    BenchReport &operator=(const BenchReport &) = delete;

    static BenchReport *active() { return active_; }

    void
    setParam(const std::string &key, const std::string &value)
    {
        params_.emplace_back(key, value);
    }

    void
    setParam(const std::string &key, double value)
    {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%g", value);
        params_.emplace_back(key, buf);
    }

    void
    addMetric(const std::string &key, double value)
    {
        metrics_.emplace_back(key, value);
    }

    /** Sample one end-to-end message latency. */
    void recordLatencyUs(double us) { latencyUs_.sample(us); }

    void
    recordTiming(const MessageTiming &t)
    {
        if (t.delivered > t.sendStart)
            recordLatencyUs(t.latencyUs());
    }

    /**
     * Accumulate a System's invariant counters; call once per System,
     * after the run, while it is still alive.
     */
    void
    captureSystem(core::System &sys)
    {
        for (unsigned i = 0; i < sys.nodeCount(); ++i) {
            auto &k = sys.node(i).kernel();
            i1Invals_ += k.i1Invals();
            i2Shootdowns_ += k.i2Shootdowns();
            i3DirtyFaults_ += k.i3DirtyFaults();
            contextSwitches_ += k.contextSwitches();
            for (auto *c : k.controllers()) {
                transfersStarted_ += c->transfersStarted();
                statusLoads_ += c->statusLoads();
                queueRefusals_ += c->queueRefusals();
                invalsApplied_ += c->invalsApplied();
                badLoads_ += c->badLoads();
            }
            if (auto *ni = sys.node(i).ni()) {
                messagesDelivered_ += ni->messagesDelivered();
                bytesDelivered_ += ni->bytesDelivered();
                // The NI samples per-message send-enqueue -> delivery
                // sim-time latency; fold it into the report histogram
                // (exact mean/min/max, bucket shape remapped at the
                // report's geometry).
                latencyUs_.merge(ni->deliveryLatency());
            }
        }
        ++systemsCaptured_;
    }

    /**
     * Attach a shard time-budget profiler whose summary becomes the
     * report's `profile` block. The profiler must outlive write().
     */
    void
    attachProfiler(const sim::ShardProfiler *profiler)
    {
        profiler_ = profiler;
    }

    /** Write the report to the --stats-json path (no-op without one). */
    void
    write() const
    {
        if (opts_.statsJsonPath.empty())
            return;
        std::ofstream out(opts_.statsJsonPath);
        if (!out) {
            std::cerr << "cannot write " << opts_.statsJsonPath << "\n";
            return;
        }
        sim::JsonWriter w(out);
        w.beginObject();
        w.field("name", name_);
        w.key("params");
        w.beginObject();
        for (const auto &[k, v] : params_)
            w.field(k, v);
        w.endObject();
        w.key("metrics");
        w.beginObject();
        for (const auto &[k, v] : metrics_)
            w.field(k, v);
        w.endObject();
        w.key("counters");
        w.beginObject();
        w.field("i1_invals", i1Invals_);
        w.field("i2_shootdowns", i2Shootdowns_);
        w.field("i3_dirty_faults", i3DirtyFaults_);
        w.field("context_switches", contextSwitches_);
        w.field("transfers_started", transfersStarted_);
        w.field("status_loads", statusLoads_);
        w.field("queue_refusals", queueRefusals_);
        w.field("invals_applied", invalsApplied_);
        w.field("bad_loads", badLoads_);
        w.field("messages_delivered", messagesDelivered_);
        w.field("bytes_delivered", bytesDelivered_);
        w.field("systems_captured", systemsCaptured_);
        w.endObject();
        w.key("histograms");
        w.beginObject();
        stats::JsonDumper d(w);
        d.histogram("latency_us", "", latencyUs_);
        w.endObject();
        if (profiler_) {
            w.key("profile");
            profiler_->dumpJson(w);
        }
        w.key("spans");
        span::registry().dumpJson(w, /*includeSpans=*/false);
        w.endObject();
        w.finish();
    }

  private:
    inline static BenchReport *active_ = nullptr;

    std::string name_;
    core::RunOptions opts_;
    std::vector<std::pair<std::string, std::string>> params_;
    std::vector<std::pair<std::string, double>> metrics_;
    /** End-to-end message latency; 64 us buckets, overflow beyond. */
    stats::Histogram latencyUs_{0, 4096, 64};
    std::uint64_t i1Invals_ = 0;
    std::uint64_t i2Shootdowns_ = 0;
    std::uint64_t i3DirtyFaults_ = 0;
    std::uint64_t contextSwitches_ = 0;
    std::uint64_t transfersStarted_ = 0;
    std::uint64_t statusLoads_ = 0;
    std::uint64_t queueRefusals_ = 0;
    std::uint64_t invalsApplied_ = 0;
    std::uint64_t badLoads_ = 0;
    std::uint64_t messagesDelivered_ = 0;
    std::uint64_t bytesDelivered_ = 0;
    std::uint64_t systemsCaptured_ = 0;
    const sim::ShardProfiler *profiler_ = nullptr;
};

/** Feed the active report (if any) from a finished System. */
inline void
captureSystem(core::System &sys)
{
    if (auto *r = BenchReport::active())
        r->captureSystem(sys);
}

/**
 * Send one @p bytes message over a fresh two-node UDMA system and
 * measure it. @p queue_depth configures the Section 7 hardware queue.
 */
inline MessageTiming
timeUdmaMessage(std::uint64_t bytes, const sim::MachineParams &params,
                std::uint32_t queue_depth = 0)
{
    core::SystemConfig cfg;
    cfg.nodes = 2;
    cfg.params = params;
    cfg.node.memBytes = 4 << 20;
    core::DeviceConfig ni;
    ni.kind = core::DeviceKind::ShrimpNi;
    ni.queueDepth = queue_depth;
    cfg.node.devices.push_back(ni);
    core::System sys(cfg);

    MessageTiming result;
    result.bytes = bytes;

    const std::uint32_t pb = params.pageBytes;
    std::uint64_t buf_pages = (bytes + pb - 1) / pb;

    struct Shared
    {
        std::vector<Addr> rxPages;
        bool exported = false;
    } shared;

    auto &recv = sys.node(1);
    recv.kernel().spawn(
        "receiver", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(buf_pages * pb);
            shared.rxPages =
                co_await core::sysExportRange(ctx, buf, buf_pages * pb);
            shared.exported = true;
        });

    recv.ni()->setDeliveryCallback([&](const net::Delivery &d) {
        result.delivered = d.deliveredTick;
    });

    auto &send = sys.node(0);
    send.kernel().spawn(
        "sender", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(buf_pages * pb);
            // Touch (dirty) every source page up front so the send
            // loop measures the steady state, as the paper's
            // microbenchmark does.
            for (std::uint64_t p = 0; p < buf_pages; ++p)
                co_await ctx.store(buf + p * pb, 0x1234);
            while (!shared.exported)
                co_await ctx.compute(500);
            Addr proxy = co_await core::sysMapRemoteRange(
                ctx, 0, *send.ni(), recv.id(), shared.rxPages);
            // Warm the proxy mappings for the source pages (first
            // touch takes a one-time proxy fault; the paper measures
            // the steady state).
            for (std::uint64_t p = 0; p < buf_pages; ++p)
                co_await ctx.load(ctx.proxyAddr(buf + p * pb, 0));

            result.sendStart = ctx.kernel().eq().now();
            result.transfers = co_await core::udmaTransfer(
                ctx, 0, proxy, buf, bytes, /*wait_completion=*/true);
        });

    sys.runUntilAllDone(Tick(60) * tickSec);
    sys.run(); // drain trailing delivery events
    if (auto *ctrl = send.controller(0)) {
        result.statusLoads = ctrl->statusLoads();
        result.queueRefusals = ctrl->queueRefusals();
        result.invals = ctrl->invalsApplied();
    }
    for (unsigned i = 0; i < sys.nodeCount(); ++i) {
        auto &k = sys.node(i).kernel();
        result.i1Invals += k.i1Invals();
        result.i2Shootdowns += k.i2Shootdowns();
        result.i3DirtyFaults += k.i3DirtyFaults();
        result.contextSwitches += k.contextSwitches();
    }
    captureSystem(sys);
    if (auto *r = BenchReport::active())
        r->recordTiming(result);
    return result;
}

/**
 * Same measurement over the memory-mapped FIFO NIC baseline (PIO,
 * Section 9): the sender writes words to the TX window, the receiver
 * polls RX_AVAIL, pops RX_DATA, and stores each word to memory.
 */
inline MessageTiming
timePioMessage(std::uint64_t bytes, const sim::MachineParams &params)
{
    core::SystemConfig cfg;
    cfg.nodes = 2;
    cfg.params = params;
    cfg.node.memBytes = 4 << 20;
    core::DeviceConfig nic;
    nic.kind = core::DeviceKind::FifoNic;
    cfg.node.devices.push_back(nic);
    core::System sys(cfg);

    MessageTiming result;
    result.bytes = bytes;
    const std::uint64_t words = (bytes + 7) / 8;
    bool receiver_ready = false;

    auto &recv = sys.node(1);
    recv.kernel().spawn(
        "pio-recv", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(bytes + 8);
            Addr win = co_await ctx.sysMapDeviceProxy(0, 0, 2, true);
            receiver_ready = true;
            std::uint64_t got = 0;
            while (got < words) {
                std::uint64_t avail = co_await ctx.load(
                    win + baseline::FifoNic::regRxAvail);
                for (std::uint64_t i = 0; i < avail && got < words;
                     ++i) {
                    std::uint64_t w = co_await ctx.load(
                        win + baseline::FifoNic::regRxData);
                    co_await ctx.store(buf + got * 8, w);
                    ++got;
                }
            }
            result.delivered = ctx.kernel().eq().now();
        });

    auto &send = sys.node(0);
    send.kernel().spawn(
        "pio-send", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(bytes + 8);
            co_await ctx.store(buf, 0x1234);
            Addr win = co_await ctx.sysMapDeviceProxy(0, 0, 2, true);
            while (!receiver_ready)
                co_await ctx.compute(500);
            result.sendStart = ctx.kernel().eq().now();
            co_await ctx.store(win + baseline::FifoNic::regDestNode,
                               recv.id());
            Addr txpage = win + ctx.pageBytes();
            std::uint64_t sent = 0;
            while (sent < words) {
                std::uint64_t space = co_await ctx.load(
                    win + baseline::FifoNic::regTxSpace);
                if (space == 0)
                    continue; // spin on the status register
                for (std::uint64_t i = 0; i < space && sent < words;
                     ++i) {
                    std::uint64_t w = co_await ctx.load(buf);
                    co_await ctx.store(txpage, w);
                    ++sent;
                }
            }
        });

    sys.runUntilAllDone(Tick(120) * tickSec);
    for (unsigned i = 0; i < sys.nodeCount(); ++i) {
        auto &k = sys.node(i).kernel();
        result.i1Invals += k.i1Invals();
        result.i2Shootdowns += k.i2Shootdowns();
        result.i3DirtyFaults += k.i3DirtyFaults();
        result.contextSwitches += k.contextSwitches();
    }
    captureSystem(sys);
    if (auto *r = BenchReport::active())
        r->recordTiming(result);
    return result;
}

/**
 * Same message over the SHRIMP NI but initiated through the
 * traditional kernel DMA driver (syscall + translate + pin +
 * descriptor + interrupt + unpin per page).
 */
inline MessageTiming
timeTraditionalNiMessage(std::uint64_t bytes,
                         const sim::MachineParams &params)
{
    core::SystemConfig cfg;
    cfg.nodes = 2;
    cfg.params = params;
    cfg.node.memBytes = 4 << 20;
    core::DeviceConfig ni;
    ni.kind = core::DeviceKind::ShrimpNi;
    ni.driver = core::DriverKind::Traditional;
    cfg.node.devices.push_back(ni);
    core::System sys(cfg);

    MessageTiming result;
    result.bytes = bytes;
    const std::uint32_t pb = params.pageBytes;
    std::uint64_t buf_pages = (bytes + pb - 1) / pb;

    struct Shared
    {
        std::vector<Addr> rxPages;
        bool exported = false;
    } shared;

    auto &recv = sys.node(1);
    recv.kernel().spawn(
        "receiver", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(buf_pages * pb);
            shared.rxPages =
                co_await core::sysExportRange(ctx, buf, buf_pages * pb);
            shared.exported = true;
        });
    recv.ni()->setDeliveryCallback([&](const net::Delivery &d) {
        result.delivered = d.deliveredTick;
    });

    auto &send = sys.node(0);
    auto *driver = send.tradDriver(0);
    send.kernel().spawn(
        "sender", [&, driver](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(buf_pages * pb);
            for (std::uint64_t p = 0; p < buf_pages; ++p)
                co_await ctx.store(buf + p * pb, 0x1234);
            while (!shared.exported)
                co_await ctx.compute(500);
            // Kernel control plane: program one NIPT entry per page.
            std::size_t first =
                send.ni()->nipt().allocateRun(shared.rxPages.size());
            for (std::size_t i = 0; i < shared.rxPages.size(); ++i) {
                send.ni()->nipt().set(first + i, recv.id(),
                                      shared.rxPages[i] / pb);
            }
            result.sendStart = ctx.kernel().eq().now();
            std::uint64_t left = bytes;
            std::uint64_t off = 0;
            while (left > 0) {
                std::uint32_t chunk =
                    std::uint32_t(std::min<std::uint64_t>(left, pb));
                Addr va = buf + off;
                Addr dev_off = (first + off / pb) * pb;
                std::uint64_t rc = co_await ctx.syscall(
                    [&, driver, va, dev_off, chunk](
                        os::Kernel &k, os::Process &pr,
                        os::SyscallControl &sc) {
                        driver->requestDma(
                            k, pr, sc, true, va, dev_off, chunk,
                            baseline::TraditionalDmaDriver::Mode::
                                PinPages);
                    });
                if (rc != 0)
                    fatal("traditional NI send failed rc=", rc);
                off += chunk;
                left -= chunk;
            }
        });

    sys.runUntilAllDone(Tick(120) * tickSec);
    sys.run();
    for (unsigned i = 0; i < sys.nodeCount(); ++i) {
        auto &k = sys.node(i).kernel();
        result.i1Invals += k.i1Invals();
        result.i2Shootdowns += k.i2Shootdowns();
        result.i3DirtyFaults += k.i3DirtyFaults();
        result.contextSwitches += k.contextSwitches();
    }
    captureSystem(sys);
    if (auto *r = BenchReport::active())
        r->recordTiming(result);
    return result;
}

} // namespace shrimp::bench

#endif // SHRIMP_BENCH_BENCH_COMMON_HH
