/**
 * @file
 * Shared harness code for the reproduction benchmarks: build a
 * two-node SHRIMP system, send one message of a given size, and
 * measure user-visible bandwidth exactly as the paper does (send
 * initiation at the sender to last-byte-visible at the receiver).
 */

#ifndef SHRIMP_BENCH_BENCH_COMMON_HH
#define SHRIMP_BENCH_BENCH_COMMON_HH

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/system.hh"
#include "core/udma_lib.hh"

namespace shrimp::bench
{

/** Result of one timed message. */
struct MessageTiming
{
    std::uint64_t bytes = 0;
    Tick sendStart = 0;      ///< sender begins user-level initiation
    Tick delivered = 0;      ///< last byte + completion visible
    std::uint64_t transfers = 0;
    // Sender-side controller statistics (UDMA runs only).
    std::uint64_t statusLoads = 0;
    std::uint64_t queueRefusals = 0;
    std::uint64_t invals = 0;

    double
    bandwidthBytesPerUs() const
    {
        Tick dt = delivered - sendStart;
        return dt == 0 ? 0.0 : double(bytes) / ticksToUs(dt);
    }
};

/**
 * Send one @p bytes message over a fresh two-node UDMA system and
 * measure it. @p queue_depth configures the Section 7 hardware queue.
 */
inline MessageTiming
timeUdmaMessage(std::uint64_t bytes, const sim::MachineParams &params,
                std::uint32_t queue_depth = 0)
{
    core::SystemConfig cfg;
    cfg.nodes = 2;
    cfg.params = params;
    cfg.node.memBytes = 4 << 20;
    core::DeviceConfig ni;
    ni.kind = core::DeviceKind::ShrimpNi;
    ni.queueDepth = queue_depth;
    cfg.node.devices.push_back(ni);
    core::System sys(cfg);

    MessageTiming result;
    result.bytes = bytes;

    const std::uint32_t pb = params.pageBytes;
    std::uint64_t buf_pages = (bytes + pb - 1) / pb;

    struct Shared
    {
        std::vector<Addr> rxPages;
        bool exported = false;
    } shared;

    auto &recv = sys.node(1);
    recv.kernel().spawn(
        "receiver", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(buf_pages * pb);
            shared.rxPages =
                co_await core::sysExportRange(ctx, buf, buf_pages * pb);
            shared.exported = true;
        });

    recv.ni()->setDeliveryCallback([&](const net::Delivery &d) {
        result.delivered = d.deliveredTick;
    });

    auto &send = sys.node(0);
    send.kernel().spawn(
        "sender", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(buf_pages * pb);
            // Touch (dirty) every source page up front so the send
            // loop measures the steady state, as the paper's
            // microbenchmark does.
            for (std::uint64_t p = 0; p < buf_pages; ++p)
                co_await ctx.store(buf + p * pb, 0x1234);
            while (!shared.exported)
                co_await ctx.compute(500);
            Addr proxy = co_await core::sysMapRemoteRange(
                ctx, 0, *send.ni(), recv.id(), shared.rxPages);
            // Warm the proxy mappings for the source pages (first
            // touch takes a one-time proxy fault; the paper measures
            // the steady state).
            for (std::uint64_t p = 0; p < buf_pages; ++p)
                co_await ctx.load(ctx.proxyAddr(buf + p * pb, 0));

            result.sendStart = ctx.kernel().eq().now();
            result.transfers = co_await core::udmaTransfer(
                ctx, 0, proxy, buf, bytes, /*wait_completion=*/true);
        });

    sys.runUntilAllDone(Tick(60) * tickSec);
    sys.run(); // drain trailing delivery events
    if (auto *ctrl = send.controller(0)) {
        result.statusLoads = ctrl->statusLoads();
        result.queueRefusals = ctrl->queueRefusals();
        result.invals = ctrl->invalsApplied();
    }
    return result;
}

/**
 * Same measurement over the memory-mapped FIFO NIC baseline (PIO,
 * Section 9): the sender writes words to the TX window, the receiver
 * polls RX_AVAIL, pops RX_DATA, and stores each word to memory.
 */
inline MessageTiming
timePioMessage(std::uint64_t bytes, const sim::MachineParams &params)
{
    core::SystemConfig cfg;
    cfg.nodes = 2;
    cfg.params = params;
    cfg.node.memBytes = 4 << 20;
    core::DeviceConfig nic;
    nic.kind = core::DeviceKind::FifoNic;
    cfg.node.devices.push_back(nic);
    core::System sys(cfg);

    MessageTiming result;
    result.bytes = bytes;
    const std::uint64_t words = (bytes + 7) / 8;
    bool receiver_ready = false;

    auto &recv = sys.node(1);
    recv.kernel().spawn(
        "pio-recv", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(bytes + 8);
            Addr win = co_await ctx.sysMapDeviceProxy(0, 0, 2, true);
            receiver_ready = true;
            std::uint64_t got = 0;
            while (got < words) {
                std::uint64_t avail = co_await ctx.load(
                    win + baseline::FifoNic::regRxAvail);
                for (std::uint64_t i = 0; i < avail && got < words;
                     ++i) {
                    std::uint64_t w = co_await ctx.load(
                        win + baseline::FifoNic::regRxData);
                    co_await ctx.store(buf + got * 8, w);
                    ++got;
                }
            }
            result.delivered = ctx.kernel().eq().now();
        });

    auto &send = sys.node(0);
    send.kernel().spawn(
        "pio-send", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(bytes + 8);
            co_await ctx.store(buf, 0x1234);
            Addr win = co_await ctx.sysMapDeviceProxy(0, 0, 2, true);
            while (!receiver_ready)
                co_await ctx.compute(500);
            result.sendStart = ctx.kernel().eq().now();
            co_await ctx.store(win + baseline::FifoNic::regDestNode,
                               recv.id());
            Addr txpage = win + ctx.pageBytes();
            std::uint64_t sent = 0;
            while (sent < words) {
                std::uint64_t space = co_await ctx.load(
                    win + baseline::FifoNic::regTxSpace);
                if (space == 0)
                    continue; // spin on the status register
                for (std::uint64_t i = 0; i < space && sent < words;
                     ++i) {
                    std::uint64_t w = co_await ctx.load(buf);
                    co_await ctx.store(txpage, w);
                    ++sent;
                }
            }
        });

    sys.runUntilAllDone(Tick(120) * tickSec);
    return result;
}

/**
 * Same message over the SHRIMP NI but initiated through the
 * traditional kernel DMA driver (syscall + translate + pin +
 * descriptor + interrupt + unpin per page).
 */
inline MessageTiming
timeTraditionalNiMessage(std::uint64_t bytes,
                         const sim::MachineParams &params)
{
    core::SystemConfig cfg;
    cfg.nodes = 2;
    cfg.params = params;
    cfg.node.memBytes = 4 << 20;
    core::DeviceConfig ni;
    ni.kind = core::DeviceKind::ShrimpNi;
    ni.driver = core::DriverKind::Traditional;
    cfg.node.devices.push_back(ni);
    core::System sys(cfg);

    MessageTiming result;
    result.bytes = bytes;
    const std::uint32_t pb = params.pageBytes;
    std::uint64_t buf_pages = (bytes + pb - 1) / pb;

    struct Shared
    {
        std::vector<Addr> rxPages;
        bool exported = false;
    } shared;

    auto &recv = sys.node(1);
    recv.kernel().spawn(
        "receiver", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(buf_pages * pb);
            shared.rxPages =
                co_await core::sysExportRange(ctx, buf, buf_pages * pb);
            shared.exported = true;
        });
    recv.ni()->setDeliveryCallback([&](const net::Delivery &d) {
        result.delivered = d.deliveredTick;
    });

    auto &send = sys.node(0);
    auto *driver = send.tradDriver(0);
    send.kernel().spawn(
        "sender", [&, driver](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(buf_pages * pb);
            for (std::uint64_t p = 0; p < buf_pages; ++p)
                co_await ctx.store(buf + p * pb, 0x1234);
            while (!shared.exported)
                co_await ctx.compute(500);
            // Kernel control plane: program one NIPT entry per page.
            std::size_t first =
                send.ni()->nipt().allocateRun(shared.rxPages.size());
            for (std::size_t i = 0; i < shared.rxPages.size(); ++i) {
                send.ni()->nipt().set(first + i, recv.id(),
                                      shared.rxPages[i] / pb);
            }
            result.sendStart = ctx.kernel().eq().now();
            std::uint64_t left = bytes;
            std::uint64_t off = 0;
            while (left > 0) {
                std::uint32_t chunk =
                    std::uint32_t(std::min<std::uint64_t>(left, pb));
                Addr va = buf + off;
                Addr dev_off = (first + off / pb) * pb;
                std::uint64_t rc = co_await ctx.syscall(
                    [&, driver, va, dev_off, chunk](
                        os::Kernel &k, os::Process &pr,
                        os::SyscallControl &sc) {
                        driver->requestDma(
                            k, pr, sc, true, va, dev_off, chunk,
                            baseline::TraditionalDmaDriver::Mode::
                                PinPages);
                    });
                if (rc != 0)
                    fatal("traditional NI send failed rc=", rc);
                off += chunk;
                left -= chunk;
            }
        });

    sys.runUntilAllDone(Tick(120) * tickSec);
    sys.run();
    return result;
}

} // namespace shrimp::bench

#endif // SHRIMP_BENCH_BENCH_COMMON_HH
