/**
 * @file
 * Cost of invariant I1's context-switch Inval.
 *
 * The kernel invalidates any partially-initiated (STORE-without-LOAD)
 * sequence on every context switch with a single STORE; a victimized
 * process simply retries (paper Sections 5/6, and the comparison with
 * Bershad's restartable atomic sequences in Section 9). This bench
 * runs a sender alongside compute-bound competitors while shrinking
 * the scheduler quantum, and reports the sender's achieved message
 * throughput, the number of context switches, hardware Invals applied,
 * and the extra initiation attempts (retries) the sender needed —
 * protection is preserved at every point; only throughput degrades.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/system.hh"
#include "core/udma_lib.hh"

using namespace shrimp;
using namespace shrimp::core;

namespace
{

struct RunResult
{
    double wall_us = 0;
    std::uint64_t switches = 0;
    std::uint64_t invals = 0;
    std::uint64_t transfers = 0;
    std::uint64_t initiations = 0; ///< user-level attempts
};

RunResult
run(double quantum_us, unsigned hogs, unsigned messages)
{
    sim::MachineParams params;
    params.quantumUs = quantum_us;

    SystemConfig cfg;
    cfg.nodes = 2;
    cfg.params = params;
    cfg.node.memBytes = 4 << 20;
    cfg.node.devices.push_back(DeviceConfig{});
    System sys(cfg);

    RunResult out;
    const std::uint32_t pb = params.pageBytes;

    struct Shared
    {
        std::vector<Addr> rxPages;
        bool exported = false;
        std::uint64_t delivered = 0;
    } shared;

    auto &recv = sys.node(1);
    recv.kernel().spawn(
        "receiver", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(pb);
            shared.rxPages = co_await sysExportRange(ctx, buf, pb);
            shared.exported = true;
        });
    recv.ni()->setDeliveryCallback(
        [&](const net::Delivery &) { ++shared.delivered; });

    auto &send = sys.node(0);
    bool sender_done = false;
    send.kernel().spawn(
        "sender", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(pb);
            co_await ctx.store(buf, 1);
            while (!shared.exported)
                co_await ctx.compute(500);
            Addr proxy = co_await sysMapRemoteRange(
                ctx, 0, *send.ni(), recv.id(), shared.rxPages);
            co_await ctx.load(ctx.proxyAddr(buf, 0));
            Tick t0 = ctx.kernel().eq().now();
            for (unsigned m = 0; m < messages; ++m) {
                co_await udmaTransfer(ctx, 0, proxy, buf, pb, true);
            }
            out.wall_us = ticksToUs(ctx.kernel().eq().now() - t0);
            sender_done = true;
        });

    // Compute-bound competitors sharing the sender's CPU.
    for (unsigned h = 0; h < hogs; ++h) {
        send.kernel().spawn(
            "hog", [&](os::UserContext &ctx) -> sim::ProcTask {
                while (!sender_done)
                    co_await ctx.compute(2000);
            });
    }

    sys.runUntilAllDone(Tick(300) * tickSec);
    sys.run();

    auto *ctrl = send.controller(0);
    out.switches = send.kernel().contextSwitches();
    out.invals = ctrl->invalsApplied();
    out.transfers = ctrl->transfersStarted();
    // Each user-level initiation attempt performs exactly one LOAD;
    // completion/wait polling also LOADs, so report attempts as the
    // paper's retry discussion frames them: transfers vs. Invals.
    out.initiations = ctrl->statusLoads();
    bench::captureSystem(sys);
    if (auto *r = bench::BenchReport::active())
        r->recordLatencyUs(out.wall_us / (messages ? messages : 1));
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    auto opts = parseRunOptions(argc, argv);
    if (!opts.ok)
        return 2;
    bench::BenchReport report("ablation_ctxswitch", opts);

    constexpr unsigned messages = 16;
    std::printf("# I1 ablation: sender + 3 compute hogs on one node, "
                "%u x 4 KB messages\n",
                messages);
    std::printf("%12s %12s %10s %10s %10s %12s\n", "quantum_us",
                "wall_us", "switches", "invals", "transfers",
                "status_lds");
    // The last two quanta are adversarial: shorter than the
    // two-reference initiation sequence itself, so switches land
    // *between* the STORE and the LOAD and the I1 Inval visibly fires.
    for (double q : {10000.0, 2000.0, 500.0, 200.0, 100.0, 50.0, 5.0,
                     2.0}) {
        auto r = run(q, 3, messages);
        std::printf("%12.0f %12.0f %10llu %10llu %10llu %12llu\n", q,
                    r.wall_us, (unsigned long long)r.switches,
                    (unsigned long long)r.invals,
                    (unsigned long long)r.transfers,
                    (unsigned long long)r.initiations);
    }
    std::printf("\n# Reading: transfers stays at %u (every message "
                "delivered) at every quantum. Invals that actually "
                "hit a half-initiated sequence are vanishingly rare "
                "even at adversarial 2 us quanta — empirical support "
                "for the paper's Section 9 argument that the blanket "
                "recovery STORE on every switch is cheaper than "
                "Bershad-style PC-range checks and costs essentially "
                "no retries. Small quanta can even *shorten* the "
                "sender's wall time: its DMA transfers overlap the "
                "hogs' compute while it is descheduled.\n",
                messages);
    report.setParam("messages", double(messages));
    report.setParam("hogs", 3.0);
    report.write();
    return 0;
}
