/**
 * @file
 * Host-time microbenchmarks (google-benchmark) of the simulator's hot
 * paths: the UDMA controller's initiation state machine, the status
 * word codec, the MMU/TLB, and the event queue. These guard the
 * simulator's own performance (the Fig-8 harness executes millions of
 * these operations) rather than reproducing a paper number.
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"
#include "bus/io_bus.hh"
#include "dev/stream_sink.hh"
#include "dma/status.hh"
#include "dma/udma_controller.hh"
#include "mem/physical_memory.hh"
#include "sim/event_queue.hh"
#include "sim/params.hh"
#include "vm/layout.hh"
#include "vm/mmu.hh"

using namespace shrimp;

namespace
{

struct ControllerFixture
{
    sim::EventQueue eq;
    sim::MachineParams params;
    vm::AddressLayout layout{1 << 20, 4096, 1};
    mem::PhysicalMemory memory{1 << 20, 4096};
    bus::IoBus bus{eq, params};
    dev::StreamSink sink;
    dma::UdmaController ctrl{eq,  params, layout, memory,
                             bus, sink,   0,      0};
};

} // namespace

static void
BM_StatusPackUnpack(benchmark::State &state)
{
    dma::Status st;
    st.transferring = true;
    st.remainingBytes = 4096;
    for (auto _ : state) {
        auto w = st.pack();
        benchmark::DoNotOptimize(dma::Status::unpack(w));
    }
}
BENCHMARK(BM_StatusPackUnpack);

static void
BM_UdmaInitiation(benchmark::State &state)
{
    ControllerFixture f;
    Addr dest = f.layout.devProxyBase(0) + 64;
    Addr src = f.layout.proxy(0x1000, 0);
    auto dest_dec = f.layout.decode(dest);
    auto src_dec = f.layout.decode(src);
    for (auto _ : state) {
        f.ctrl.proxyStore(dest_dec, dest, 256);
        benchmark::DoNotOptimize(f.ctrl.proxyLoad(src_dec, src));
        // Complete the transfer so the next iteration starts Idle.
        f.eq.run();
    }
}
BENCHMARK(BM_UdmaInitiation);

static void
BM_StatusLoadWhileIdle(benchmark::State &state)
{
    ControllerFixture f;
    Addr src = f.layout.proxy(0x1000, 0);
    auto src_dec = f.layout.decode(src);
    for (auto _ : state)
        benchmark::DoNotOptimize(f.ctrl.proxyLoad(src_dec, src));
}
BENCHMARK(BM_StatusLoadWhileIdle);

static void
BM_MmuTranslateHit(benchmark::State &state)
{
    vm::AddressLayout layout(1 << 20, 4096, 1);
    vm::Mmu mmu(layout);
    vm::PageTable pt;
    vm::Pte pte;
    pte.frameAddr = 0x3000;
    pte.valid = true;
    pte.writable = true;
    pt.install(5, pte);
    mmu.activate(&pt);
    (void)mmu.translate(5 * 4096 + 8, false); // warm the TLB
    for (auto _ : state)
        benchmark::DoNotOptimize(mmu.translate(5 * 4096 + 8, false));
}
BENCHMARK(BM_MmuTranslateHit);

static void
BM_EventScheduleRun(benchmark::State &state)
{
    sim::EventQueue eq;
    for (auto _ : state) {
        eq.scheduleIn(10, "bench", [] {});
        eq.run();
    }
}
BENCHMARK(BM_EventScheduleRun);

static void
BM_AddressDecode(benchmark::State &state)
{
    vm::AddressLayout layout(1 << 20, 4096, 4);
    Addr a = layout.devProxyBase(3) + 12345;
    for (auto _ : state)
        benchmark::DoNotOptimize(layout.decode(a));
}
BENCHMARK(BM_AddressDecode);

int
main(int argc, char **argv)
{
    // Strip --stats-json= / --trace= before google-benchmark parses
    // the remaining arguments.
    auto opts = core::parseRunOptions(argc, argv);
    if (!opts.ok)
        return 2;
    bench::BenchReport report("micro_udma", opts);

    // When a machine-readable report was requested, run a batch of
    // simulated 4 KB messages so the report carries a populated
    // latency histogram and the kernel invariant counters (the
    // google-benchmark loops below exercise host-time hot paths and
    // never build a full System).
    if (!opts.statsJsonPath.empty()) {
        sim::MachineParams params;
        constexpr unsigned messages = 16;
        for (unsigned i = 0; i < messages; ++i)
            bench::timeUdmaMessage(4096, params);
        report.setParam("report_messages", double(messages));
        report.setParam("report_message_bytes", 4096.0);
    }

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    report.write();
    return 0;
}
