/**
 * @file
 * Ablation of the Section 7 hardware request queue.
 *
 * "Queueing allows a user-level process to start multi-page transfers
 * with only two instructions per page in the best case." Without a
 * queue, the user's initiation of page k+1 spins until the engine
 * finishes page k; with a queue the initiations overlap the data
 * transfer entirely. We sweep the queue depth for a large multi-page
 * message and report achieved bandwidth, hardware-queue refusals, and
 * the number of status LOADs the sender issued (the spin cost).
 */

#include <cstdio>
#include <vector>

#include "bench_common.hh"

using namespace shrimp;

int
main(int argc, char **argv)
{
    auto opts = core::parseRunOptions(argc, argv);
    if (!opts.ok)
        return 2;
    bench::BenchReport report("ablation_queueing", opts);

    sim::MachineParams params;
    constexpr std::uint64_t msgBytes = 64 << 10;

    std::printf("# Section 7 queueing ablation, %llu-byte message "
                "(16 pages)\n",
                (unsigned long long)msgBytes);
    std::printf("%12s %12s %14s %14s\n", "queue_depth", "MB_per_s",
                "q_refusals", "status_loads");

    for (std::uint32_t depth : {0u, 1u, 2u, 4u, 8u, 16u}) {
        auto t = bench::timeUdmaMessage(msgBytes, params, depth);
        double bw = t.bandwidthBytesPerUs() * 1e6 / (1 << 20);
        std::printf("%12u %12.2f %14llu %14llu\n", depth, bw,
                    (unsigned long long)t.queueRefusals,
                    (unsigned long long)t.statusLoads);
    }

    std::printf("\n# Reading: depth 0 pays a two-reference initiation "
                "gap per page; any depth >= 1 hides it behind the "
                "running transfer (2 instructions per page, Section "
                "7). The gain is bounded by the I/O bus: the sender's "
                "completion-poll LOADs share EISA with the DMA bursts "
                "either way.\n");
    report.setParam("message_bytes", double(msgBytes));
    report.write();
    return 0;
}
