/**
 * @file
 * Automatic update vs deliberate update (paper Section 9 / [5]).
 *
 * Automatic update propagates individual snooped stores with no
 * initiation at all — ideal for fine-grain producer-consumer updates;
 * deliberate update amortizes one initiation over a whole block. This
 * bench measures, for N 8-byte updates scattered into a remote page:
 *
 *   - automatic: N ordinary stores (the board snoops and combines);
 *   - deliberate: N stores into a local buffer, then one UDMA send of
 *     the containing span.
 *
 * The crossover mirrors the PIO-vs-DMA one: word-granular wins small,
 * block DMA wins big — with the twist that automatic update needs no
 * second copy of the data and no explicit send at all.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/system.hh"
#include "core/udma_lib.hh"

using namespace shrimp;
using namespace shrimp::core;

namespace
{

struct Result
{
    double us = 0;
};

SystemConfig
niConfig()
{
    SystemConfig cfg;
    cfg.nodes = 2;
    cfg.node.memBytes = 4 << 20;
    cfg.node.devices.push_back(DeviceConfig{});
    return cfg;
}

/** Time until the receiver observes the last of @p words updates. */
Result
runAuto(unsigned words)
{
    System sys(niConfig());
    auto &send = sys.node(0);
    auto &recv = sys.node(1);
    Result res;

    struct Shared
    {
        std::vector<Addr> rxPages;
        bool exported = false;
    } shared;

    recv.kernel().spawn(
        "receiver", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(4096);
            shared.rxPages = co_await sysExportRange(ctx, buf, 4096);
            shared.exported = true;
            co_await pollWord(ctx, buf + (words - 1) * 8, words);
            res.us = ticksToUs(ctx.kernel().eq().now());
        });

    send.kernel().spawn(
        "sender", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(4096);
            while (!shared.exported)
                co_await ctx.compute(500);
            co_await sysMapAutoUpdate(ctx, *send.ni(), buf, recv.id(),
                                      shared.rxPages[0]);
            Tick t0 = ctx.kernel().eq().now();
            for (unsigned i = 0; i < words; ++i)
                co_await ctx.store(buf + i * 8, i + 1 == words
                                                    ? words
                                                    : i + 1);
            res.us -= ticksToUs(t0); // patched after run
        });

    sys.runUntilAllDone(Tick(60) * tickSec);
    sys.run();
    bench::captureSystem(sys);
    if (auto *r = bench::BenchReport::active())
        r->recordLatencyUs(res.us);
    return res;
}

Result
runDeliberate(unsigned words)
{
    System sys(niConfig());
    auto &send = sys.node(0);
    auto &recv = sys.node(1);
    Result res;

    struct Shared
    {
        std::vector<Addr> rxPages;
        bool exported = false;
    } shared;

    recv.kernel().spawn(
        "receiver", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(4096);
            shared.rxPages = co_await sysExportRange(ctx, buf, 4096);
            shared.exported = true;
            co_await pollWord(ctx, buf + (words - 1) * 8, words);
            res.us = ticksToUs(ctx.kernel().eq().now());
        });

    send.kernel().spawn(
        "sender", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(4096);
            co_await ctx.store(buf, 1); // warm/dirty
            while (!shared.exported)
                co_await ctx.compute(500);
            Addr proxy = co_await sysMapRemoteRange(
                ctx, 0, *send.ni(), recv.id(), shared.rxPages);
            co_await ctx.load(ctx.proxyAddr(buf, 0));
            Tick t0 = ctx.kernel().eq().now();
            for (unsigned i = 0; i < words; ++i)
                co_await ctx.store(buf + i * 8, i + 1 == words
                                                    ? words
                                                    : i + 1);
            co_await udmaTransfer(ctx, 0, proxy, buf, words * 8,
                                  true);
            res.us -= ticksToUs(t0);
        });

    sys.runUntilAllDone(Tick(60) * tickSec);
    sys.run();
    bench::captureSystem(sys);
    if (auto *r = bench::BenchReport::active())
        r->recordLatencyUs(res.us);
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    auto opts = parseRunOptions(argc, argv);
    if (!opts.ok)
        return 2;
    bench::BenchReport report("ablation_autoupdate", opts);

    std::printf("# Automatic update vs deliberate update: N 8-byte "
                "words to a remote page, time to last-word visibility "
                "at the receiver\n");
    std::printf("%8s %14s %16s\n", "words", "auto_us", "deliberate_us");
    for (unsigned words : {1u, 2u, 4u, 8u, 16u, 64u, 256u, 512u}) {
        auto a = runAuto(words);
        auto d = runDeliberate(words);
        std::printf("%8u %14.2f %16.2f\n", words, a.us, d.us);
    }
    std::printf("\n# Reading: automatic update wins for a handful of "
                "scattered words (no initiation, no second copy); "
                "deliberate update wins once the span is large enough "
                "that one engine burst beats per-word packets. This is "
                "why SHRIMP kept both strategies (Section 9).\n");
    report.write();
    return 0;
}
