/**
 * @file
 * Multi-node traffic (generalizing the paper's four-processor
 * prototype run): N nodes streaming records through user-level
 * msg::Channels — by default a ring (every node to its right
 * neighbour, demonstrating that each node's EISA bus, not the shared
 * backplane, is the bottleneck), or with --pattern=hotspot every
 * node streaming into node 0 (N-1 credit windows converging on one
 * receive FIFO — the congestion-control stress case).
 *
 * Doubles as the sharded-simulation-core benchmark. With --shards=N
 * (or auto) the same configuration is run twice, on one shard and on
 * N shards; the run fails loudly unless both produce bit-identical
 * simulated time and counters (workload::RingResult::digest), and the
 * host wall-clock ratio is reported as the parallel speedup.
 *
 * Output: BENCH_multinode.json via --stats-json=<path>. With
 * --check-against=<committed.json> the simulated-time metrics must
 * match the committed baseline exactly (they are deterministic), and
 * on hosts with >= 4 hardware threads the sharded speedup must clear
 * the 2x floor — the CI gate in tools/run_checks.sh.
 *
 * With --faults=<spec> (e.g. drop=0.05,corrupt=0.02) the same ring
 * runs over an unreliable backplane and becomes a goodput-under-loss
 * experiment: an in-process fault-free reference run must agree on
 * the payload data digest and delivery counts (every record delivered
 * exactly once despite drops/corruption), and the report grows
 * goodput, retransmit, and per-fault-kind metrics — including
 * retransmit_ratio, retransmits over actual wire losses, the
 * efficiency number the selective-repeat transport is gated on
 * (EXPERIMENTS.md). --min-goodput= and --max-retransmit-ratio= turn
 * those metrics into hard exit-code gates (tools/run_checks.sh's
 * netperf step).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>

#include "bench_common.hh"
#include "core/system.hh"
#include "sim/flight_recorder.hh"
#include "sim/profiler.hh"
#include "sim/trace_sink.hh"
#include "workload/ring.hh"

using namespace shrimp;
using namespace shrimp::core;

namespace
{

/**
 * Extract "key": <number> from a flat JSON file with a crude scan —
 * enough for the committed-baseline gate without a JSON parser
 * dependency in bench/. Tolerates a quoted value ("key": "4"), which
 * is how the report writes params.
 */
bool
scanJsonNumber(const std::string &text, const std::string &key,
               double &out)
{
    std::string needle = "\"" + key + "\":";
    auto pos = text.find(needle);
    if (pos == std::string::npos)
        return false;
    pos += needle.size();
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t'))
        ++pos;
    if (pos < text.size() && text[pos] == '"')
        ++pos;
    char *end = nullptr;
    out = std::strtod(text.c_str() + pos, &end);
    return end != text.c_str() + pos;
}

void
printRun(const char *label, const workload::RingResult &r)
{
    std::printf("%-10s %.2f MB/s aggregate, sim %.3f ms, "
                "%llu events, %llu bytes routed, %.3f s host",
                label, r.aggregateMbS, double(r.simTicks) / tickMs,
                (unsigned long long)r.simEvents,
                (unsigned long long)r.bytesRouted, r.hostSec);
    if (r.windows > 0) {
        std::printf(", %llu windows, %llu cross-posts",
                    (unsigned long long)r.windows,
                    (unsigned long long)r.crossPosts);
    }
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    auto opts = parseRunOptions(argc, argv);
    if (!opts.ok)
        return 2;

    workload::RingConfig cfg;
    std::string check_against;
    double tolerance = 0.20;
    double min_goodput = -1;
    double max_retransmit_ratio = -1;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--nodes=", 0) == 0) {
            cfg.nodes =
                unsigned(std::strtoul(arg.c_str() + 8, nullptr, 10));
        } else if (arg.rfind("--pattern=", 0) == 0) {
            std::string p = arg.substr(10);
            if (p == "hotspot") {
                cfg.hotspot = true;
            } else if (p != "ring") {
                std::fprintf(stderr,
                             "--pattern: want ring or hotspot, got "
                             "'%s'\n",
                             p.c_str());
                return 2;
            }
        } else if (arg.rfind("--min-goodput=", 0) == 0) {
            min_goodput = std::strtod(arg.c_str() + 14, nullptr);
        } else if (arg.rfind("--max-retransmit-ratio=", 0) == 0) {
            max_retransmit_ratio =
                std::strtod(arg.c_str() + 23, nullptr);
        } else if (arg.rfind("--records=", 0) == 0) {
            cfg.records =
                unsigned(std::strtoul(arg.c_str() + 10, nullptr, 10));
        } else if (arg.rfind("--record-bytes=", 0) == 0) {
            // Parse wide and range-check before narrowing: a value
            // past 2^32 must be rejected, not silently truncated into
            // a small (and wrong) record size.
            char *end = nullptr;
            unsigned long long v =
                std::strtoull(arg.c_str() + 15, &end, 10);
            if (end == arg.c_str() + 15 || *end != '\0' || v == 0
                || v > 4080) {
                std::fprintf(stderr,
                             "--record-bytes: want 1..4080 (one "
                             "channel slot), got '%s'\n",
                             arg.c_str() + 15);
                return 2;
            }
            cfg.recordBytes = std::uint32_t(v);
        } else if (arg.rfind("--check-against=", 0) == 0) {
            check_against = arg.substr(16);
        } else if (arg.rfind("--tolerance=", 0) == 0) {
            tolerance = std::strtod(arg.c_str() + 12, nullptr);
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            return 2;
        }
    }
    if (cfg.nodes < 2 || cfg.records == 0 || cfg.recordBytes == 0
        || cfg.recordBytes > 4080) {
        std::fprintf(stderr,
                     "want --nodes>=2, --records>=1, and "
                     "0 < --record-bytes <= 4080\n");
        return 2;
    }

    const unsigned shards = resolveShards(opts, cfg.nodes);
    // Honest parallelism accounting: the affinity mask (what this
    // process may actually use), not the machine's thread count.
    const unsigned host_cores = hostCoreCount();
    const unsigned host_hw_threads =
        std::max(1u, std::thread::hardware_concurrency());

    // Faults ride in from --faults= (parseRunOptions): the same spec
    // is applied to every timed run below, while the goodput
    // reference run further down explicitly clears it.
    cfg.faults = opts.faults;
    const bool faulty =
        opts.faults.specified && opts.faults.anyActive();

    // The wiring rides in from --topo= the same way (crossbar when
    // absent); the fault-free goodput reference keeps it too, so the
    // comparison isolates the faults, not the topology.
    cfg.topology = opts.topology;
    if (!cfg.topology.flat()
        && cfg.topology.gridNodes() != cfg.nodes) {
        std::fprintf(stderr,
                     "--topo=%s wires %u nodes but --nodes=%u\n",
                     cfg.topology.describe().c_str(),
                     cfg.topology.gridNodes(), cfg.nodes);
        return 2;
    }

    if ((min_goodput >= 0 || max_retransmit_ratio >= 0) && !faulty) {
        std::fprintf(stderr,
                     "--min-goodput/--max-retransmit-ratio need a "
                     "faulty run (--faults=...)\n");
        return 2;
    }

    bench::BenchReport report("multinode_traffic", opts);
    report.setParam("nodes", double(cfg.nodes));
    report.setParam("pattern", cfg.hotspot ? "hotspot" : "ring");
    report.setParam("records", double(cfg.records));
    report.setParam("record_bytes", double(cfg.recordBytes));
    report.setParam("topology", cfg.topology.describe());
    report.setParam("shards", double(shards));
    report.setParam("host_cores", double(host_cores));
    report.setParam("host_hw_threads", double(host_hw_threads));
    report.setParam("faulty", faulty ? 1 : 0);

    // --profile=FILE: time-budget profiler + Perfetto trace sink on
    // the measured (parallel) run. Observational only — the digests
    // below must not notice it.
    std::unique_ptr<sim::ShardProfiler> profiler;
    std::unique_ptr<sim::TraceSink> sink;
    if (!opts.profilePath.empty()) {
        profiler = std::make_unique<sim::ShardProfiler>(
            std::max(shards, 1u));
        sink = std::make_unique<sim::TraceSink>(std::max(shards, 1u));
        profiler->setTraceSink(sink.get());
        // Keep enough finished spans for useful sim-time tracks (the
        // default retention is sized for summaries, not traces).
        span::registry().setRetainLimit(1u << 16);
    }

    std::printf("# %u-node %s on %s, %u x %u B per link, user-level "
                "channels\n",
                cfg.nodes, cfg.hotspot ? "hotspot (all -> node 0)"
                                       : "ring",
                cfg.topology.describe().c_str(), cfg.records,
                cfg.recordBytes);
    if (faulty) {
        std::printf("# unreliable backplane: drop=%.3f corrupt=%.3f "
                    "dup=%.3f delay=%.3f (seed %llu)\n",
                    cfg.faults.dropProb, cfg.faults.corruptProb,
                    cfg.faults.dupProb, cfg.faults.delayProb,
                    (unsigned long long)cfg.faults.seed);
    }

    workload::RingResult result;
    double speedup = 0;
    bool identical = true;

    if (shards > 0) {
        // Reference run on one shard: same engine, same canonical
        // ordering, no parallelism.
        workload::RingConfig seq = cfg;
        seq.shards = 1;
        workload::RingResult r1 = workload::runRing(seq);
        printRun("shards=1:", r1);

        workload::RingConfig par = cfg;
        par.shards = shards;
        par.profiler = profiler.get();
        par.onSystemDone = [](core::System &sys) {
            bench::captureSystem(sys);
        };
        if (sink) {
            // Only the measured run's spans and fault events belong
            // in the trace.
            span::registry().clear();
            sim::TraceSink::setGlobal(sink.get());
        }
        result = workload::runRing(par);
        sim::TraceSink::setGlobal(nullptr);
        char label[32];
        std::snprintf(label, sizeof label, "shards=%u:", shards);
        printRun(label, result);

        identical = r1.digest == result.digest
                    && r1.simTicks == result.simTicks
                    && r1.simEvents == result.simEvents
                    && r1.bytesRouted == result.bytesRouted
                    && r1.bytesDelivered == result.bytesDelivered
                    && r1.retransmits == result.retransmits
                    && r1.timeouts == result.timeouts
                    && r1.dataDigest == result.dataDigest;
        if (!identical) {
            std::fprintf(
                stderr,
                "DETERMINISM VIOLATION: shards=1 vs shards=%u "
                "diverged:\n"
                "  digest        %016llx vs %016llx\n"
                "  sim_ticks     %llu vs %llu\n"
                "  sim_events    %llu vs %llu\n"
                "  bytes_routed  %llu vs %llu\n"
                "  bytes_deliv   %llu vs %llu\n"
                "  retransmits   %llu vs %llu\n"
                "  timeouts      %llu vs %llu\n"
                "  data_digest   %016llx vs %016llx\n",
                shards, (unsigned long long)r1.digest,
                (unsigned long long)result.digest,
                (unsigned long long)r1.simTicks,
                (unsigned long long)result.simTicks,
                (unsigned long long)r1.simEvents,
                (unsigned long long)result.simEvents,
                (unsigned long long)r1.bytesRouted,
                (unsigned long long)result.bytesRouted,
                (unsigned long long)r1.bytesDelivered,
                (unsigned long long)result.bytesDelivered,
                (unsigned long long)r1.retransmits,
                (unsigned long long)result.retransmits,
                (unsigned long long)r1.timeouts,
                (unsigned long long)result.timeouts,
                (unsigned long long)r1.dataDigest,
                (unsigned long long)result.dataDigest);
            // Post-mortem: the graveyard still holds both runs' last
            // events even though their Systems are gone.
            sim::FlightRecorder::dumpAll(std::cerr);
            return 1;
        }
        std::printf("determinism: shards=1 and shards=%u bit-identical "
                    "(digest %016llx)\n",
                    shards, (unsigned long long)result.digest);

        if (result.hostSec > 0)
            speedup = r1.hostSec / result.hostSec;
        std::printf("speedup: %.2fx on %u shards (%u host cores)\n",
                    speedup, shards, host_cores);
        report.addMetric("wall_s_seq", r1.hostSec);
        report.addMetric("wall_s_shards", result.hostSec);
        report.addMetric("speedup", speedup);
    } else {
        cfg.onSystemDone = [](core::System &sys) {
            bench::captureSystem(sys);
        };
        if (sink) {
            span::registry().clear();
            sim::TraceSink::setGlobal(sink.get());
        }
        result = workload::runRing(cfg);
        sim::TraceSink::setGlobal(nullptr);
        printRun("legacy:", result);
        report.addMetric("wall_s_seq", result.hostSec);
    }

    std::printf("aggregate: %.2f MB/s across %u concurrent links "
                "(backplane moved %llu bytes)\n",
                result.aggregateMbS, result.linksTotal,
                (unsigned long long)result.bytesRouted);
    if (cfg.hotspot) {
        std::printf("# All links share node 0's EISA drain: the "
                    "congestion window, not the wire, sets the "
                    "per-link rate.\n");
    } else {
        std::printf("# Each link runs near the single-link EISA-bound "
                    "rate: the backplane is not the bottleneck.\n");
    }

    if (faulty) {
        // Goodput under loss: re-run the identical configuration on a
        // healthy backplane and demand the faulty run delivered the
        // exact same bytes, exactly once.
        workload::RingConfig clean = cfg;
        clean.faults = net::FaultConfig{}; // runRing marks it specified
        clean.shards = shards > 0 ? shards : 0;
        workload::RingResult ref = workload::runRing(clean);
        printRun("fault-free:", ref);

        bool recovered = result.dataDigest == ref.dataDigest
                         && result.messagesDelivered
                                == ref.messagesDelivered
                         && result.bytesDelivered == ref.bytesDelivered
                         && result.linksDone == result.linksTotal
                         && result.chunksUnacked == 0;
        if (!recovered) {
            std::fprintf(
                stderr,
                "LOSS RECOVERY FAILURE: faulty run did not deliver "
                "every record exactly once:\n"
                "  data_digest   %016llx vs fault-free %016llx\n"
                "  msgs_deliv    %llu vs %llu\n"
                "  bytes_deliv   %llu vs %llu\n"
                "  links_done    %u of %u\n"
                "  chunks_unacked %llu\n",
                (unsigned long long)result.dataDigest,
                (unsigned long long)ref.dataDigest,
                (unsigned long long)result.messagesDelivered,
                (unsigned long long)ref.messagesDelivered,
                (unsigned long long)result.bytesDelivered,
                (unsigned long long)ref.bytesDelivered,
                result.linksDone, result.linksTotal,
                (unsigned long long)result.chunksUnacked);
            for (const auto &f : result.lostFlows)
                std::fprintf(stderr, "  lost: %s\n", f.c_str());
            sim::FlightRecorder::dumpAll(std::cerr);
            return 1;
        }
        double ratio = ref.aggregateMbS > 0
                           ? result.aggregateMbS / ref.aggregateMbS
                           : 0;
        std::printf(
            "loss recovery: all records delivered exactly once "
            "(data digest %016llx)\n",
            (unsigned long long)result.dataDigest);
        // Every drop (data or ack), corruption, and down-window kill
        // costs at least one retransmission to repair; the ratio of
        // retransmits to those actual wire losses is the transport's
        // efficiency number (go-back-N sat near 8, selective repeat
        // should sit near 1).
        std::uint64_t losses = result.faults.dropped
                               + result.faults.corrupted
                               + result.faults.downDropped;
        double rtx_ratio =
            double(result.retransmits) / double(std::max<std::uint64_t>(losses, 1));
        std::printf(
            "goodput under loss: %.2f MB/s vs %.2f MB/s fault-free "
            "(%.1f%%), %llu retransmits (%llu fast) over %llu "
            "timeouts; links dropped %llu, corrupted %llu, duplicated "
            "%llu, delayed %llu -> retransmit ratio %.2fx\n",
            result.aggregateMbS, ref.aggregateMbS, ratio * 100,
            (unsigned long long)result.retransmits,
            (unsigned long long)result.fastRetransmits,
            (unsigned long long)result.timeouts,
            (unsigned long long)result.faults.dropped,
            (unsigned long long)result.faults.corrupted,
            (unsigned long long)result.faults.duplicated,
            (unsigned long long)result.faults.delayed, rtx_ratio);
        report.addMetric("goodput_mb_s", result.aggregateMbS);
        report.addMetric("goodput_fault_free_mb_s", ref.aggregateMbS);
        report.addMetric("goodput_ratio", ratio);
        report.addMetric("retransmits", double(result.retransmits));
        report.addMetric("fast_retransmits",
                         double(result.fastRetransmits));
        report.addMetric("retransmit_ratio", rtx_ratio);
        report.addMetric("timeouts", double(result.timeouts));
        report.addMetric("fault_dropped", double(result.faults.dropped));
        report.addMetric("fault_corrupted",
                         double(result.faults.corrupted));
        report.addMetric("fault_duplicated",
                         double(result.faults.duplicated));
        report.addMetric("fault_delayed", double(result.faults.delayed));
        report.addMetric("rx_dup_dropped", double(result.rxDupDropped));
        report.addMetric("rx_corrupt_dropped",
                         double(result.rxCorruptDropped));
        report.addMetric("rx_ooo_buffered",
                         double(result.rxOooBuffered));
        report.addMetric("ecn_marked", double(result.ecnMarked));
        report.addMetric("cwnd_cuts", double(result.cwndCuts));
        // Rescue resends acked inside a round trip of firing were
        // wasted wire copies: the chunk was late, not lost. Surfaced
        // so the netperf baselines pin the count; drop-only fault
        // mixes (no reordering) should hold it at zero.
        report.addMetric("rescue_spurious",
                         double(result.rescueSpurious));
        if (result.rescueSpurious > 0)
            std::printf("spurious rescues: %llu resends fired for "
                        "chunks that were late, not lost\n",
                        (unsigned long long)result.rescueSpurious);

        // Hard regression gates for the netperf check step.
        if (min_goodput >= 0 && ratio < min_goodput) {
            std::fprintf(stderr,
                         "NETPERF REGRESSION: goodput ratio %.3f is "
                         "below the %.3f floor\n",
                         ratio, min_goodput);
            return 1;
        }
        if (max_retransmit_ratio >= 0
            && rtx_ratio > max_retransmit_ratio) {
            std::fprintf(stderr,
                         "NETPERF REGRESSION: retransmit ratio %.2fx "
                         "exceeds the %.2fx ceiling (%llu retransmits "
                         "for %llu wire losses)\n",
                         rtx_ratio, max_retransmit_ratio,
                         (unsigned long long)result.retransmits,
                         (unsigned long long)losses);
            return 1;
        }
    }

    char digest_hex[20];
    std::snprintf(digest_hex, sizeof digest_hex, "%016llx",
                  (unsigned long long)result.digest);
    report.setParam("digest", std::string(digest_hex));
    std::snprintf(digest_hex, sizeof digest_hex, "%016llx",
                  (unsigned long long)result.dataDigest);
    report.setParam("data_digest", std::string(digest_hex));
    report.addMetric("aggregate_mb_s", result.aggregateMbS);
    report.addMetric("sim_ticks", double(result.simTicks));
    report.addMetric("sim_events", double(result.simEvents));
    report.addMetric("bytes_routed", double(result.bytesRouted));
    report.addMetric("bytes_delivered", double(result.bytesDelivered));
    report.addMetric("messages_delivered",
                     double(result.messagesDelivered));
    report.addMetric("events_per_sec",
                     result.hostSec > 0
                         ? double(result.simEvents) / result.hostSec
                         : 0);
    report.addMetric("identical", identical ? 1 : 0);

    if (profiler) {
        if (shards > 0) {
            profiler->writeTable(std::cout);
            const double acct = profiler->accountedFraction();
            report.addMetric("profile_accounted_frac", acct);
            report.attachProfiler(profiler.get());
            if (acct < 0.95) {
                std::fprintf(stderr,
                             "PROFILE WARNING: buckets account for "
                             "only %.1f%% of parallel wall time\n",
                             acct * 100);
            }
        } else {
            std::printf("# --profile: legacy single-queue run — no "
                        "worker timelines, sim-time tracks only\n");
        }
        sink->addSpanTracks();
        if (!sink->writeFile(opts.profilePath))
            return 3;
        std::printf(
            "profile: %llu trace events -> %s (load in "
            "ui.perfetto.dev)\n",
            (unsigned long long)sink->eventCount(),
            opts.profilePath.c_str());
        if (sink->droppedSlices() > 0) {
            std::fprintf(stderr,
                         "PROFILE WARNING: %llu wall slices dropped "
                         "(per-shard cap)\n",
                         (unsigned long long)sink->droppedSlices());
        }
    }
    report.write();

    if (!check_against.empty()) {
        std::ifstream in(check_against);
        if (!in) {
            std::fprintf(stderr,
                         "MULTINODE GATE ERROR: cannot read baseline "
                         "%s\n",
                         check_against.c_str());
            return 3;
        }
        std::stringstream ss;
        ss << in.rdbuf();
        const std::string text = ss.str();

        // Simulated-time outputs are deterministic: they must match
        // the committed baseline exactly, not within a tolerance.
        struct ExactKey
        {
            const char *key;
            double have;
        } exact[] = {
            {"sim_ticks", double(result.simTicks)},
            {"sim_events", double(result.simEvents)},
            {"bytes_routed", double(result.bytesRouted)},
            {"bytes_delivered", double(result.bytesDelivered)},
            {"messages_delivered", double(result.messagesDelivered)},
        };
        for (const auto &e : exact) {
            double base = 0;
            if (!scanJsonNumber(text, e.key, base)) {
                std::fprintf(stderr,
                             "MULTINODE GATE ERROR: no %s in %s\n",
                             e.key, check_against.c_str());
                return 3;
            }
            if (base != e.have) {
                std::fprintf(stderr,
                             "MULTINODE REGRESSION: %s = %.0f differs "
                             "from committed baseline %.0f (%s)\n",
                             e.key, e.have, base,
                             check_against.c_str());
                return 1;
            }
        }
        std::printf("multinode gate: simulated-time metrics match the "
                    "committed baseline exactly\n");

        // The wall-clock speedup floor only means something with real
        // parallelism underneath (the determinism check above runs
        // everywhere regardless).
        if (shards >= 2 && host_cores >= 4) {
            double floor = 2.0 * (1.0 - tolerance);
            std::printf("multinode gate: speedup %.2fx vs floor "
                        "%.2fx on %u cores\n",
                        speedup, floor, host_cores);
            if (speedup < floor) {
                std::fprintf(stderr,
                             "MULTINODE REGRESSION: %.2fx speedup on "
                             "%u shards is below the %.2fx floor\n",
                             speedup, shards, floor);
                return 1;
            }
        } else if (shards >= 2) {
            // Not silent: a skipped floor means this gate proved
            // nothing about parallel performance.
            std::fprintf(stderr,
                         "MULTINODE GATE WARNING: speedup floor "
                         "SKIPPED — only %u host core(s) available "
                         "(need >= 4); parallel performance was NOT "
                         "verified\n",
                         host_cores);
        }
        double base_cores = 0;
        if (scanJsonNumber(text, "host_cores", base_cores)
            && base_cores < 4) {
            std::fprintf(stderr,
                         "MULTINODE GATE WARNING: committed baseline "
                         "was recorded on %.0f core(s); its wall-clock "
                         "numbers carry no speedup signal\n",
                         base_cores);
        }
    }
    return 0;
}
