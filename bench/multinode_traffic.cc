/**
 * @file
 * The four-processor prototype (paper Section 8: "At the time of this
 * writing, we have a four-processor prototype running").
 *
 * Four nodes in a ring; every node simultaneously streams messages to
 * its right neighbour through a user-level msg::Channel (deliberate-
 * update payloads, automatic-update credits). Reports per-node and
 * aggregate bandwidth — demonstrating that each node's EISA bus, not
 * the shared backplane, is the bottleneck, as on the real machine.
 */

#include <cstdio>
#include <vector>

#include "bench_common.hh"
#include "core/system.hh"
#include "msg/channel.hh"

using namespace shrimp;
using namespace shrimp::core;

int
main(int argc, char **argv)
{
    auto opts = parseRunOptions(argc, argv);
    if (!opts.ok)
        return 2;
    bench::BenchReport report("multinode_traffic", opts);

    constexpr unsigned nodes = 4;
    constexpr unsigned records = 64;
    constexpr std::uint32_t recordBytes = 4080; // one slot payload

    SystemConfig cfg;
    cfg.nodes = nodes;
    cfg.node.memBytes = 8 << 20;
    // Each node runs a sender and a receiver process on one CPU; a
    // fine quantum lets them pipeline instead of stalling ring-full
    // for whole scheduling quanta.
    cfg.params.quantumUs = 200.0;
    cfg.node.devices.push_back(DeviceConfig{});
    System sys(cfg);

    std::vector<msg::ChannelRendezvous> rv(nodes);
    std::vector<Tick> done(nodes, 0);
    Tick start_max = 0;
    std::vector<Tick> started(nodes, 0);

    for (unsigned n = 0; n < nodes; ++n) {
        auto *me = &sys.node(n);
        auto *right = &sys.node((n + 1) % nodes);

        // Receiver half: accept from the left neighbour.
        me->kernel().spawn(
            "recv" + std::to_string(n),
            [&, me, n](os::UserContext &ctx) -> sim::ProcTask {
                NodeId left = (n + nodes - 1) % nodes;
                msg::ReceiverChannel ch(ctx, 0, *me->ni(), left);
                if (!co_await ch.bind(rv[left]))
                    fatal("bind failed on node ", n);
                for (unsigned r = 0; r < records; ++r) {
                    std::uint32_t len = 0;
                    (void)co_await ch.recvZeroCopy(len);
                    co_await ch.ackLast();
                }
                done[n] = ctx.kernel().eq().now();
            });

        // Sender half: stream to the right neighbour.
        me->kernel().spawn(
            "send" + std::to_string(n),
            [&, me, right, n](os::UserContext &ctx) -> sim::ProcTask {
                msg::SenderChannel ch(ctx, 0, *me->ni(), right->id());
                if (!co_await ch.connect(rv[n]))
                    fatal("connect failed on node ", n);
                Addr buf = co_await ctx.sysAllocMemory(recordBytes);
                for (Addr off = 0; off < recordBytes; off += 4096)
                    co_await ctx.store(buf + off, n);
                started[n] = ctx.kernel().eq().now();
                for (unsigned r = 0; r < records; ++r)
                    co_await ch.send(buf, recordBytes);
            });
    }

    sys.runUntilAllDone(Tick(300) * tickSec);
    sys.run();

    std::printf("# 4-node ring, %u x %u B per link, user-level "
                "channels\n",
                records, recordBytes);
    std::printf("%6s %12s %12s\n", "node", "time_us", "MB_per_s");
    double aggregate = 0;
    for (unsigned n = 0; n < nodes; ++n)
        start_max = std::max(start_max, started[n]);
    for (unsigned n = 0; n < nodes; ++n) {
        double us = ticksToUs(done[n] - started[(n + nodes - 1)
                                                % nodes]);
        double mbs = records * double(recordBytes) / us * 1e6
                     / (1 << 20);
        aggregate += mbs;
        std::printf("%6u %12.0f %12.2f\n", n, us, mbs);
    }
    std::printf("aggregate: %.2f MB/s across %u concurrent links "
                "(backplane moved %llu bytes)\n",
                aggregate, nodes,
                (unsigned long long)sys.net().bytesRouted());
    std::printf("# Each link runs near the single-link EISA-bound "
                "rate: the backplane is not the bottleneck.\n");
    bench::captureSystem(sys);
    report.setParam("nodes", double(nodes));
    report.setParam("records", double(records));
    report.setParam("record_bytes", double(recordBytes));
    report.addMetric("aggregate_mb_s", aggregate);
    report.write();
    return 0;
}
