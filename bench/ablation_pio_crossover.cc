/**
 * @file
 * DMA vs PIO crossover (paper Section 9): "This [memory-mapped FIFO]
 * approach results in good latency for short messages. However, for
 * longer messages the DMA-based controller is preferable because it
 * makes use of the bus burst mode, which is much faster than
 * processor-generated single word transactions."
 *
 * Sweep the message size over both transports on the same machine and
 * report end-to-end latency and bandwidth; locate the crossover.
 */

#include <cstdio>
#include <vector>

#include "bench_common.hh"

using namespace shrimp;

int
main(int argc, char **argv)
{
    auto opts = core::parseRunOptions(argc, argv);
    if (!opts.ok)
        return 2;
    bench::BenchReport report("ablation_pio_crossover", opts);

    sim::MachineParams params;

    std::printf("# PIO (memory-mapped FIFO) vs UDMA (burst DMA), "
                "end-to-end one message\n");
    std::printf("%10s %14s %14s %12s %12s\n", "bytes", "pio_us",
                "udma_us", "pio_MB_s", "udma_MB_s");

    std::vector<std::uint64_t> sizes = {8,    16,   32,   64,   128,
                                        256,  512,  1024, 2048, 4096,
                                        8192, 16384};
    std::uint64_t crossover = 0;
    for (auto n : sizes) {
        auto pio = bench::timePioMessage(n, params);
        auto udma = bench::timeUdmaMessage(n, params);
        double pio_us = ticksToUs(pio.delivered - pio.sendStart);
        double udma_us = ticksToUs(udma.delivered - udma.sendStart);
        if (crossover == 0 && udma_us < pio_us)
            crossover = n;
        std::printf("%10llu %14.2f %14.2f %12.2f %12.2f\n",
                    (unsigned long long)n, pio_us, udma_us,
                    pio.bandwidthBytesPerUs() * 1e6 / (1 << 20),
                    udma.bandwidthBytesPerUs() * 1e6 / (1 << 20));
    }
    if (crossover) {
        std::printf("\n# burst-mode DMA overtakes PIO at ~%llu bytes; "
                    "PIO wins below (lower fixed cost), DMA above "
                    "(burst bandwidth).\n",
                    (unsigned long long)crossover);
    } else {
        std::printf("\n# no crossover observed in this sweep\n");
    }
    report.addMetric("crossover_bytes", double(crossover));
    report.write();
    return 0;
}
