/**
 * @file
 * Reproduces Figure 8 of the paper: "Bandwidth of deliberate update
 * UDMA transfers as a percentage of the maximum measured bandwidth on
 * the SHRIMP network interface", versus message size.
 *
 * Paper claims to check (shape, not absolute numbers):
 *  - rapid rise ("highlights the low cost of initiating UDMA
 *    transfers");
 *  - exceeds 50% of max at a message size of only 512 bytes;
 *  - the largest single transfer (a 4 KB page) achieves ~94% of max;
 *  - a slight dip just past 4 KB (cost of initiating and starting a
 *    second UDMA transfer);
 *  - the maximum is sustained for messages exceeding 8 KB.
 */

#include <cstdio>
#include <vector>

#include "bench_common.hh"

using namespace shrimp;

int
main(int argc, char **argv)
{
    auto opts = core::parseRunOptions(argc, argv);
    if (!opts.ok)
        return 2;
    bench::BenchReport report("fig8_bandwidth", opts);

    sim::MachineParams params;

    std::vector<std::uint64_t> sizes = {
        64,   128,  256,  512,  768,  1024, 1536, 2048,  3072,
        4096, 4160, 4608, 5120, 6144, 7168, 8192, 12288, 16384,
        24576, 32768, 65536,
    };

    // "Maximum measured bandwidth": measured at the largest size, as
    // on the real system where the plateau is reached past 8 KB.
    auto max_t = bench::timeUdmaMessage(sizes.back(), params);
    double max_bw = max_t.bandwidthBytesPerUs();

    std::printf("# Figure 8: deliberate-update UDMA bandwidth vs "
                "message size\n");
    std::printf("# max measured bandwidth = %.2f MB/s (at %llu bytes)\n",
                max_bw * 1e6 / (1 << 20),
                (unsigned long long)sizes.back());
    std::printf("%10s %12s %12s %10s %10s\n", "bytes", "time_us",
                "MB/s", "pct_max", "transfers");

    for (auto n : sizes) {
        auto t = bench::timeUdmaMessage(n, params);
        double bw = t.bandwidthBytesPerUs();
        std::printf("%10llu %12.2f %12.2f %9.1f%% %10llu\n",
                    (unsigned long long)n,
                    ticksToUs(t.delivered - t.sendStart),
                    bw * 1e6 / (1 << 20), 100.0 * bw / max_bw,
                    (unsigned long long)t.transfers);
    }

    std::printf("\n# Paper anchors: >50%% at 512 B; ~94%% at 4 KB; "
                "dip just past 4 KB; plateau past 8 KB.\n");

    report.setParam("max_bytes", double(sizes.back()));
    report.setParam("sizes", double(sizes.size()));
    report.addMetric("max_bandwidth_mb_s", max_bw * 1e6 / (1 << 20));
    report.write();
    return 0;
}
