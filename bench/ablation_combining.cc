/**
 * @file
 * Automatic-update write-combining window sweep.
 *
 * The snooper holds an open update packet for a short window so that
 * contiguous stores share one packet (header, NI processing, rx DMA
 * start). Too short a window degenerates to one packet per store;
 * too long adds latency to the *last* store's visibility. This
 * sweep shows both effects for a contiguous 64-word update burst.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/system.hh"
#include "core/udma_lib.hh"

using namespace shrimp;
using namespace shrimp::core;

namespace
{

struct Result
{
    double usToLastVisible = 0;
    std::uint64_t packets = 0;
    std::uint64_t combined = 0;
};

Result
run(double window_ns, unsigned words)
{
    SystemConfig cfg;
    cfg.nodes = 2;
    cfg.node.memBytes = 4 << 20;
    cfg.params.autoCombineWindowNs = window_ns;
    cfg.node.devices.push_back(DeviceConfig{});
    System sys(cfg);
    auto &send = sys.node(0);
    auto &recv = sys.node(1);

    struct Shared
    {
        std::vector<Addr> rxPages;
        bool exported = false;
    } shared;
    Result res;

    recv.kernel().spawn(
        "receiver", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(4096);
            shared.rxPages = co_await sysExportRange(ctx, buf, 4096);
            shared.exported = true;
            co_await pollWord(ctx, buf + (words - 1) * 8, words);
            res.usToLastVisible = ticksToUs(ctx.kernel().eq().now());
        });

    send.kernel().spawn(
        "sender", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(4096);
            while (!shared.exported)
                co_await ctx.compute(500);
            co_await sysMapAutoUpdate(ctx, *send.ni(), buf,
                                      recv.id(), shared.rxPages[0]);
            Tick t0 = ctx.kernel().eq().now();
            for (unsigned i = 0; i < words; ++i)
                co_await ctx.store(buf + i * 8,
                                   i + 1 == words ? words : i + 1);
            res.usToLastVisible -= ticksToUs(t0);
        });

    sys.runUntilAllDone(Tick(60) * tickSec);
    sys.run();
    res.packets = send.ni()->autoUpdatesSent();
    res.combined = send.ni()->autoUpdatesCombined();
    bench::captureSystem(sys);
    if (auto *r = bench::BenchReport::active())
        r->recordLatencyUs(res.usToLastVisible);
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    auto opts = parseRunOptions(argc, argv);
    if (!opts.ok)
        return 2;
    bench::BenchReport report("ablation_combining", opts);

    constexpr unsigned words = 64;
    std::printf("# Automatic-update combining-window sweep: %u "
                "contiguous 8-byte stores\n",
                words);
    std::printf("%12s %14s %10s %10s\n", "window_ns", "visible_us",
                "packets", "combined");
    for (double w : {0.0, 100.0, 500.0, 1500.0, 5000.0, 20000.0}) {
        auto r = run(w, words);
        std::printf("%12.0f %14.2f %10llu %10llu\n", w,
                    r.usToLastVisible,
                    (unsigned long long)r.packets,
                    (unsigned long long)r.combined);
    }
    std::printf("\n# Reading: a sub-microsecond window already folds "
                "the burst into a handful of packets (the stores "
                "arrive ~0.15 us apart); a very long window defers "
                "the final flush and shows up directly as last-word "
                "latency.\n");
    report.setParam("words", double(words));
    report.write();
    return 0;
}
