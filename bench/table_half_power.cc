/**
 * @file
 * Half-power point (N-1/2) table, derived from the paper's Figure 8
 * discussion: "The bandwidth exceeds 50% of the maximum measured at a
 * message size of only 512 bytes."
 *
 * We compute, for each transport on the same simulated machine, the
 * maximum bandwidth (64 KB messages) and the smallest message size
 * whose bandwidth reaches half of it:
 *
 *   - UDMA deliberate update (the paper's mechanism),
 *   - traditional kernel-initiated DMA to the same NI,
 *   - memory-mapped FIFO PIO (Section 9 baseline).
 */

#include <cstdio>
#include <functional>
#include <vector>

#include "bench_common.hh"

using namespace shrimp;

namespace
{

using Meter = std::function<bench::MessageTiming(std::uint64_t)>;

struct Row
{
    const char *name;
    double maxBw;
    std::uint64_t nHalf;
};

Row
measure(const char *name, const Meter &meter)
{
    double max_bw = meter(65536).bandwidthBytesPerUs();
    // Bandwidth is monotone in message size below the page size, so
    // binary-search the 64-byte-aligned half-power point.
    std::uint64_t lo = 64, hi = 65536;
    if (meter(lo).bandwidthBytesPerUs() >= max_bw / 2) {
        hi = lo;
    } else {
        while (hi - lo > 64) {
            std::uint64_t mid = (lo + hi) / 2 / 64 * 64;
            if (meter(mid).bandwidthBytesPerUs() >= max_bw / 2)
                hi = mid;
            else
                lo = mid;
        }
    }
    return Row{name, max_bw, hi};
}

} // namespace

int
main(int argc, char **argv)
{
    auto opts = core::parseRunOptions(argc, argv);
    if (!opts.ok)
        return 2;
    bench::BenchReport report("table_half_power", opts);

    sim::MachineParams params;

    std::vector<Row> rows;
    rows.push_back(measure("UDMA deliberate update", [&](std::uint64_t n) {
        return bench::timeUdmaMessage(n, params);
    }));
    rows.push_back(measure("traditional kernel DMA", [&](std::uint64_t n) {
        return bench::timeTraditionalNiMessage(n, params);
    }));
    rows.push_back(measure("memory-mapped FIFO PIO", [&](std::uint64_t n) {
        return bench::timePioMessage(n, params);
    }));

    std::printf("# Half-power message size per transport "
                "(same machine, same NI where applicable)\n");
    std::printf("%-26s %14s %16s\n", "transport", "max_MB_per_s",
                "N_half_bytes");
    for (const auto &r : rows) {
        std::printf("%-26s %14.2f %16llu\n", r.name,
                    r.maxBw * 1e6 / (1 << 20),
                    (unsigned long long)r.nHalf);
    }
    std::printf("\n# Paper anchor: UDMA exceeds 50%% of max at 512 "
                "bytes. The traditional driver here is an optimistic "
                "~1.3k-instruction kernel path; with a realistic 1995 "
                "message-layer path (21k instructions, see "
                "table_hippi_motivation) its half-power point moves "
                "into the hundreds of kilobytes. PIO reaches its "
                "(much lower) half-power bandwidth almost immediately."
                "\n");
    report.addMetric("udma_n_half_bytes", double(rows[0].nHalf));
    report.addMetric("udma_max_mb_s",
                     rows[0].maxBw * 1e6 / (1 << 20));
    report.write();
    return 0;
}
