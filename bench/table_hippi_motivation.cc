/**
 * @file
 * Reproduces the Introduction's motivating numbers: on the Paragon,
 * sending over a 100 MB/s HIPPI channel costs "more than 350
 * microseconds" of per-transfer overhead, so "with a data block size
 * of 1 Kbyte, the transfer rate achieved is only 2.7 MByte/sec, which
 * is less than 2% of the raw hardware bandwidth", and reaching
 * 80 MB/s "requires the data block size to be larger than 64 KBytes".
 *
 * We configure the traditional kernel-initiated driver with a 1995
 * message-layer software cost (~21k instructions ~ 350 us at 60 MHz)
 * over a 100 MB/s channel (StreamSink device), sweep the block size,
 * and print effective bandwidth — then the same sweep with UDMA
 * initiation on the identical channel.
 */

#include <cstdio>
#include <vector>

#include "bench_common.hh"
#include "core/system.hh"
#include "core/udma_lib.hh"

using namespace shrimp;
using namespace shrimp::core;

namespace
{

sim::MachineParams
hippiParams()
{
    sim::MachineParams p;
    p.eisaBurstBytesPerSec = 100e6; // the HIPPI channel
    p.dmaStartNs = 2000.0;
    // The Paragon's kernel + message-layer software path: ~21k
    // instructions ~= 350 us at 60 MHz (paper Section 1, [13]).
    p.syscallInstr = 3000;
    p.dmaDescriptorInstr = 16000;
    p.dmaTranslateInstrPerPage = 100;
    p.dmaPinInstrPerPage = 150;
    p.dmaUnpinInstrPerPage = 80;
    p.dmaInterruptInstr = 2000;
    return p;
}

SystemConfig
sinkConfig(const sim::MachineParams &p, DriverKind driver)
{
    SystemConfig cfg;
    cfg.nodes = 1;
    cfg.params = p;
    cfg.node.memBytes = 16 << 20;
    DeviceConfig d;
    d.kind = DeviceKind::StreamSink;
    d.driver = driver;
    cfg.node.devices.push_back(d);
    return cfg;
}

double
traditionalBw(std::uint64_t block)
{
    auto p = hippiParams();
    System sys(sinkConfig(p, DriverKind::Traditional));
    auto *driver = sys.node(0).tradDriver(0);
    double us = 0;
    sys.node(0).kernel().spawn(
        "send", [&, driver](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(block);
            for (Addr off = 0; off < block; off += 4096)
                co_await ctx.store(buf + off, 1);
            Tick t0 = ctx.kernel().eq().now();
            std::uint64_t rc = co_await ctx.syscall(
                [&, driver](os::Kernel &k, os::Process &pr,
                            os::SyscallControl &sc) {
                    driver->requestDma(
                        k, pr, sc, true, buf, 0,
                        std::uint32_t(block),
                        baseline::TraditionalDmaDriver::Mode::PinPages);
                });
            if (rc != 0)
                fatal("dma failed");
            us = ticksToUs(ctx.kernel().eq().now() - t0);
        });
    sys.runUntilAllDone();
    bench::captureSystem(sys);
    if (auto *r = bench::BenchReport::active())
        r->recordLatencyUs(us);
    return double(block) / us; // bytes/us == MB/s-ish (2^20 vs 1e6)
}

double
udmaBw(std::uint64_t block)
{
    auto p = hippiParams();
    System sys(sinkConfig(p, DriverKind::Udma));
    double us = 0;
    std::uint64_t pages = (block + 4095) / 4096;
    sys.node(0).kernel().spawn(
        "send", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(block);
            for (Addr off = 0; off < block; off += 4096)
                co_await ctx.store(buf + off, 1);
            Addr sink =
                co_await ctx.sysMapDeviceProxy(0, 0, pages, true);
            for (Addr off = 0; off < block; off += 4096)
                co_await ctx.load(ctx.proxyAddr(buf + off, 0));
            Tick t0 = ctx.kernel().eq().now();
            co_await udmaTransfer(ctx, 0, sink, buf, block, true);
            us = ticksToUs(ctx.kernel().eq().now() - t0);
        });
    sys.runUntilAllDone();
    bench::captureSystem(sys);
    if (auto *r = bench::BenchReport::active())
        r->recordLatencyUs(us);
    return double(block) / us;
}

} // namespace

int
main(int argc, char **argv)
{
    auto opts = parseRunOptions(argc, argv);
    if (!opts.ok)
        return 2;
    bench::BenchReport report("table_hippi_motivation", opts);

    std::printf("# Paragon/HIPPI motivation (paper Section 1): "
                "100 MB/s channel\n");
    std::printf("%12s %16s %16s\n", "block_bytes", "trad_MB_per_s",
                "udma_MB_per_s");
    std::vector<std::uint64_t> blocks = {
        256,       1024,      4096,       16384,      65536,
        131072,    262144,    524288,     1048576,   2097152,
    };
    double crossing80 = 0;
    for (auto b : blocks) {
        double tb = traditionalBw(b);
        double ub = udmaBw(b);
        if (crossing80 == 0 && tb >= 80.0)
            crossing80 = double(b);
        std::printf("%12llu %16.2f %16.2f\n", (unsigned long long)b, tb,
                    ub);
    }
    std::printf("\n# Paper anchors: trad ~2.7 MB/s at 1 KB "
                "(<2%% of raw); >64 KB needed to clear 80 MB/s.\n");
    if (crossing80 > 0) {
        std::printf("# traditional path first reaches 80 MB/s at "
                    "block size %.0f bytes (> 64 KB as claimed)\n",
                    crossing80);
    } else {
        std::printf("# traditional path did not reach 80 MB/s in this "
                    "sweep\n");
    }
    report.addMetric("trad_80mb_s_block_bytes", crossing80);
    report.write();
    return 0;
}
