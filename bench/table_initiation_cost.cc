/**
 * @file
 * Reproduces the paper's initiation-cost claims as a table:
 *
 *  - Section 8: "The time for a user process to initiate a DMA
 *    transfer is about 2.8 microseconds" (two-reference sequence plus
 *    the alignment check);
 *  - Sections 1/2: a traditional kernel-initiated DMA costs "hundreds,
 *    possibly thousands of CPU instructions" (syscall, translate, pin,
 *    descriptor, interrupt, unpin);
 *  - Section 10: "A single instruction suffices to check for
 *    completion of a transfer."
 *
 * Both mechanisms run against the same StreamSink device on the same
 * simulated node, so the difference is purely the initiation path.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/system.hh"
#include "core/udma_lib.hh"

using namespace shrimp;
using namespace shrimp::core;

namespace
{

SystemConfig
sinkConfig(DriverKind driver)
{
    SystemConfig cfg;
    cfg.nodes = 1;
    cfg.node.memBytes = 4 << 20;
    DeviceConfig d;
    d.kind = DeviceKind::StreamSink;
    d.driver = driver;
    cfg.node.devices.push_back(d);
    return cfg;
}

struct UdmaCosts
{
    double initiate_us = 0;
    double status_check_us = 0;
};

UdmaCosts
measureUdma()
{
    SystemConfig cfg = sinkConfig(DriverKind::Udma);
    System sys(cfg);
    UdmaCosts out;
    sys.node(0).kernel().spawn(
        "udma", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(4096);
            co_await ctx.store(buf, 1); // dirty the page
            Addr sinkva = co_await ctx.sysMapDeviceProxy(0, 0, 1, true);
            Addr proxy = ctx.proxyAddr(buf, 0);
            // Warm the proxy mappings and TLB entries (one-time
            // faults; the paper reports the steady state).
            co_await ctx.load(proxy);
            co_await ctx.load(sinkva);

            Tick t0 = ctx.kernel().eq().now();
            co_await udmaInitiate(ctx, sinkva, proxy, 64);
            Tick t1 = ctx.kernel().eq().now();
            out.initiate_us = ticksToUs(t1 - t0);

            // Completion check: repeat the LOAD (one instruction).
            Tick t2 = ctx.kernel().eq().now();
            co_await ctx.load(proxy);
            Tick t3 = ctx.kernel().eq().now();
            out.status_check_us = ticksToUs(t3 - t2);
        });
    sys.runUntilAllDone();
    bench::captureSystem(sys);
    return out;
}

/** End-to-end time of an n-byte transfer via the traditional driver. */
double
measureTraditional(std::uint32_t nbytes,
                   baseline::TraditionalDmaDriver::Mode mode)
{
    SystemConfig cfg = sinkConfig(DriverKind::Traditional);
    System sys(cfg);
    double us = 0;
    auto *driver = sys.node(0).tradDriver(0);
    sys.node(0).kernel().spawn(
        "trad", [&, driver](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(64 << 10);
            for (Addr off = 0; off < nbytes; off += 4096)
                co_await ctx.store(buf + off, 1); // fault pages in
            Tick t0 = ctx.kernel().eq().now();
            std::uint64_t rc = co_await ctx.syscall(
                [&, driver](os::Kernel &k, os::Process &p,
                            os::SyscallControl &sc) {
                    driver->requestDma(k, p, sc, true, buf, 0, nbytes,
                                       mode);
                });
            Tick t1 = ctx.kernel().eq().now();
            if (rc != baseline::TraditionalDmaDriver::resultOk)
                fatal("traditional DMA failed rc=", rc);
            us = ticksToUs(t1 - t0);
        });
    sys.runUntilAllDone();
    bench::captureSystem(sys);
    return us;
}

/** End-to-end time of an n-byte transfer via UDMA (for comparison). */
double
measureUdmaEndToEnd(std::uint32_t nbytes)
{
    SystemConfig cfg = sinkConfig(DriverKind::Udma);
    System sys(cfg);
    double us = 0;
    sys.node(0).kernel().spawn(
        "udma", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(64 << 10);
            for (Addr p = 0; p < nbytes; p += 4096)
                co_await ctx.store(buf + p, 1);
            Addr sinkva =
                co_await ctx.sysMapDeviceProxy(0, 0, 16, true);
            for (Addr p = 0; p < nbytes; p += 4096)
                co_await ctx.load(ctx.proxyAddr(buf + p, 0));
            Tick t0 = ctx.kernel().eq().now();
            co_await udmaTransfer(ctx, 0, sinkva, buf, nbytes, true);
            Tick t1 = ctx.kernel().eq().now();
            us = ticksToUs(t1 - t0);
        });
    sys.runUntilAllDone();
    bench::captureSystem(sys);
    if (auto *r = bench::BenchReport::active())
        r->recordLatencyUs(us);
    return us;
}

} // namespace

int
main(int argc, char **argv)
{
    auto opts = parseRunOptions(argc, argv);
    if (!opts.ok)
        return 2;
    bench::BenchReport report("table_initiation_cost", opts);

    sim::MachineParams p;

    auto udma = measureUdma();

    // Analytic instruction budget of the traditional path (1 page).
    auto trad_instr = [&](unsigned pages) {
        return p.syscallInstr + pages * p.dmaTranslateInstrPerPage
               + pages * p.dmaPinInstrPerPage + p.dmaDescriptorInstr
               + p.dmaInterruptInstr + pages * p.dmaUnpinInstrPerPage;
    };

    std::printf("# Initiation-cost table (paper Sections 1, 2, 8, 10)\n");
    std::printf("%-44s %12s %14s\n", "mechanism", "instr", "time_us");
    std::printf("%-44s %12s %14.2f\n",
                "UDMA initiation (2 refs + alignment check)",
                "2 + ~60", udma.initiate_us);
    std::printf("%-44s %12s %14.2f\n",
                "UDMA completion check (repeat the LOAD)", "1",
                udma.status_check_us);
    std::printf("%-44s %12u %14.2f\n",
                "traditional DMA, 1 page, pinning",
                trad_instr(1),
                measureTraditional(4096,
                    baseline::TraditionalDmaDriver::Mode::PinPages)
                    - ticksToUs(p.dmaStart() + p.eisaBurst(4096)));
    std::printf("%-44s %12u %14.2f\n",
                "traditional DMA, 4 pages, pinning",
                trad_instr(4),
                measureTraditional(16384,
                    baseline::TraditionalDmaDriver::Mode::PinPages)
                    - ticksToUs(p.dmaStart() + p.eisaBurst(16384)));
    std::printf("%-44s %12s %14.2f\n",
                "traditional DMA, 1 page, bounce-buffer copy", "copy",
                measureTraditional(4096,
                    baseline::TraditionalDmaDriver::Mode::BounceBuffer)
                    - ticksToUs(p.dmaStart() + p.eisaBurst(4096)));

    std::printf("\n# End-to-end 4 KB transfer to the same device:\n");
    std::printf("%-44s %27.2f\n", "UDMA (us)", measureUdmaEndToEnd(4096));
    std::printf("%-44s %27.2f\n", "traditional, pinning (us)",
                measureTraditional(
                    4096, baseline::TraditionalDmaDriver::Mode::PinPages));
    std::printf("\n# Paper anchors: UDMA initiation ~2.8 us; "
                "traditional costs hundreds-thousands of instructions.\n");
    report.addMetric("udma_initiate_us", udma.initiate_us);
    report.addMetric("udma_status_check_us", udma.status_check_us);
    report.write();
    return 0;
}
