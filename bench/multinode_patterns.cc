/**
 * @file
 * Traffic patterns on the prototype machine (default 4 nodes,
 * `--nodes=N` to scale): every node streams UDMA messages to
 * destinations drawn from a synthetic pattern, and the table shows
 * where the bottleneck sits. `--shards=N|auto` runs each pattern on
 * the sharded engine — page export and remote mapping happen under
 * `System::runSetup` (sequential canonical order, the only phase
 * that reads host state across nodes), so results are bit-identical
 * to the single-queue run.
 *
 * Expected architecture story (and the reason hotspot collapses):
 * each SHRIMP node's *receive path* is one EISA-class DMA engine at
 * ~23 MB/s. Permutation patterns (neighbor, transpose) keep every
 * receiver busy and scale; hotspot funnels most traffic into one
 * receiver whose bus then rate-limits the whole machine.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "core/system.hh"
#include "core/udma_lib.hh"
#include "workload/traffic.hh"

using namespace shrimp;
using namespace shrimp::core;
using namespace shrimp::workload;

namespace
{

struct PatternResult
{
    double wallUs = 0;
    double aggregateMBs = 0;
    std::uint64_t hotDelivered = 0;
};

PatternResult
runPattern(const TrafficConfig &tc, unsigned shards,
           const sim::TopologyConfig &topo)
{
    SystemConfig cfg;
    cfg.nodes = tc.nodes;
    cfg.shards = shards;
    cfg.node.memBytes = 8 << 20;
    cfg.params.quantumUs = 500.0;
    cfg.node.devices.push_back(DeviceConfig{});
    cfg.topology = topo;
    cfg.topology.specified = true;
    System sys(cfg);

    const std::uint32_t pb = cfg.params.pageBytes;
    const unsigned n = tc.nodes;

    // Every node exports one landing page per possible sender.
    // Host-shared, but written only under runSetup (sequential), then
    // read-only during the parallel data phase — race-free under
    // shards.
    struct NodeShare
    {
        std::vector<Addr> pagePerSender; // indexed by sender id
        bool exported = false;
    };
    std::vector<NodeShare> shares(n);
    unsigned exported_count = 0;
    unsigned mapped_count = 0;

    for (unsigned r = 0; r < n; ++r) {
        auto *node = &sys.node(r);
        node->kernel().spawn(
            "host" + std::to_string(r),
            [&, r, node](os::UserContext &ctx) -> sim::ProcTask {
                Addr buf = co_await ctx.sysAllocMemory(n * pb);
                auto pages =
                    co_await sysExportRange(ctx, buf, n * pb);
                shares[r].pagePerSender = pages;
                shares[r].exported = true;
                ++exported_count;

                // Sender phase: wait for everyone, map each
                // destination's landing page, then stream.
                while (exported_count < n)
                    co_await ctx.compute(500);
                std::vector<Addr> window(n, 0);
                for (unsigned d = 0; d < n; ++d) {
                    if (d == r)
                        continue;
                    std::vector<Addr> one(
                        1, shares[d].pagePerSender[r]);
                    window[d] = co_await sysMapRemoteRange(
                        ctx, 0, *node->ni(), d, std::move(one));
                    if (window[d] == 0)
                        fatal("map failed ", r, "->", d);
                }
                Addr src = co_await ctx.sysAllocMemory(pb);
                co_await ctx.store(src, r);
                co_await ctx.load(ctx.proxyAddr(src, 0)); // warm
                ++mapped_count;

                TrafficGenerator gen(tc, r);
                for (unsigned m = 0; m < tc.messagesPerNode; ++m) {
                    if (!gen.sendNow())
                        co_await ctx.compute(
                            tc.messageBytes / 4); // idle slot
                    NodeId d = gen.nextDestination();
                    co_await udmaTransfer(ctx, 0, window[d], src,
                                          tc.messageBytes, true);
                }
            });
    }

    // Export + remote mapping read host state across nodes: run them
    // sequentially in the canonical global order so the shard count
    // is invisible; the streaming phase that follows is node-local.
    sys.runSetup([&] { return mapped_count == n; },
                 Tick(600) * tickSec);

    Tick t0 = 0;
    sys.runUntilAllDone(Tick(600) * tickSec);
    sys.run();

    PatternResult res;
    res.wallUs = ticksToUs(sys.simNow() - t0);
    std::uint64_t total_bytes = 0;
    for (unsigned r = 0; r < n; ++r)
        total_bytes += sys.node(r).ni()->bytesDelivered();
    res.aggregateMBs =
        total_bytes / res.wallUs * 1e6 / (1 << 20);
    res.hotDelivered =
        sys.node(tc.hotspotNode).ni()->messagesDelivered();
    bench::captureSystem(sys);
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    auto opts = parseRunOptions(argc, argv);
    if (!opts.ok)
        return 2;
    bench::BenchReport report("multinode_patterns", opts);

    TrafficConfig base;
    base.nodes = 4;
    base.messageBytes = 4096;
    base.messagesPerNode = 24;
    base.seed = 7;

    // --check-hotspot=FRAC gates the funnel pattern against the
    // machine's permutation throughput: hotspot aggregate bandwidth
    // must reach (1 - FRAC) of the mean of nearest-neighbor and
    // transpose, or the run fails. The gate is meaningful only where
    // the receiver, not the shared bus, is the structural bottleneck:
    // on the crossbar that means small node counts (at 4+ nodes every
    // pattern is bus-bound and the ratio says nothing about the
    // transport); on a mesh/torus the hot node's own links and drain
    // are the bottleneck again at any scale, so the gate re-enables.
    double check_hotspot = -1.0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--nodes=", 0) == 0) {
            base.nodes =
                unsigned(std::strtoul(arg.c_str() + 8, nullptr, 10));
        } else if (arg.rfind("--check-hotspot=", 0) == 0) {
            check_hotspot = std::strtod(arg.c_str() + 16, nullptr);
            if (check_hotspot <= 0.0 || check_hotspot >= 1.0) {
                std::fprintf(stderr,
                             "--check-hotspot wants a fraction in "
                             "(0,1), got '%s'\n",
                             arg.c_str());
                return 2;
            }
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            return 2;
        }
    }
    if (base.nodes < 2) {
        std::fprintf(stderr, "want --nodes>=2\n");
        return 2;
    }
    const unsigned shards = resolveShards(opts, base.nodes);
    const sim::TopologyConfig topo = opts.topology;
    if (!topo.flat() && topo.gridNodes() != base.nodes) {
        std::fprintf(stderr,
                     "--topo=%s wires %u nodes but --nodes=%u\n",
                     topo.describe().c_str(), topo.gridNodes(),
                     base.nodes);
        return 2;
    }

    std::printf(
        "# Traffic patterns, %u nodes on %s, %u x %u B per node, "
        "%u shards\n",
        base.nodes, topo.describe().c_str(), base.messagesPerNode,
        base.messageBytes, shards);
    std::printf("%-18s %12s %14s %18s\n", "pattern", "wall_us",
                "aggregate_MB_s", "hot_node_msgs");

    double permutation_sum = 0;
    unsigned permutation_count = 0;
    double hotspot_mbs = 0;
    for (Pattern p :
         {Pattern::NearestNeighbor, Pattern::Transpose,
          Pattern::UniformRandom, Pattern::Hotspot, Pattern::Bursty,
          Pattern::Incast, Pattern::Bisection}) {
        TrafficConfig tc = base;
        tc.pattern = p;
        auto r = runPattern(tc, shards, topo);
        std::printf("%-18s %12.0f %14.2f %18llu\n", patternName(p),
                    r.wallUs, r.aggregateMBs,
                    (unsigned long long)r.hotDelivered);
        // Per-pattern bandwidth as a first-class metric so regression
        // tooling can diff BENCH JSONs pattern by pattern.
        std::string key = patternName(p);
        for (char &c : key)
            if (c == '-')
                c = '_';
        report.addMetric(key + "_mb_s", r.aggregateMBs);
        if (p == Pattern::NearestNeighbor || p == Pattern::Transpose) {
            permutation_sum += r.aggregateMBs;
            ++permutation_count;
        } else if (p == Pattern::Hotspot) {
            hotspot_mbs = r.aggregateMBs;
        }
    }

    std::printf("\n# Reading: permutation patterns scale with the "
                "node count (every receiver's EISA engine busy); "
                "hotspot serializes on the hot receiver's bus and "
                "drags aggregate bandwidth toward the single-link "
                "rate.\n");
    report.setParam("nodes", double(base.nodes));
    report.setParam("topology", topo.describe());
    report.setParam("message_bytes", double(base.messageBytes));
    report.setParam("messages_per_node", double(base.messagesPerNode));

    int rc = 0;
    // Topology-aware gate eligibility: the crossbar ratio is only a
    // transport signal while the hot receiver is the bottleneck
    // (nodes <= 3); on a mesh/torus it always is.
    const bool hotspot_gate_meaningful =
        !topo.flat() || base.nodes <= 3;
    if (check_hotspot > 0 && !hotspot_gate_meaningful) {
        std::printf(
            "\nhotspot gate: SKIPPED — %u-node crossbar is bus-bound "
            "on every pattern, so the hotspot/permutation ratio "
            "carries no transport signal (use --nodes=3 or a mesh "
            "topology)\n",
            base.nodes);
        check_hotspot = -1.0;
    }
    if (check_hotspot > 0 && permutation_count > 0) {
        const double permutation_mean =
            permutation_sum / permutation_count;
        // The reference the funnel is held against. On the small
        // crossbar the hot receiver carries a share comparable to
        // each permutation receiver, so the aggregate compares
        // directly. On a mesh/torus the hotspot aggregate is
        // structurally *one* receiver's drain while the permutation
        // aggregate is N receivers' — the honest floor is the
        // per-receiver permutation rate, which a congestion-collapsed
        // transport (retransmit storm crushing goodput) still falls
        // below while a healthy funnel clears it easily.
        const bool per_receiver = !topo.flat();
        const double reference =
            per_receiver ? permutation_mean / base.nodes
                         : permutation_mean;
        const double floor = (1.0 - check_hotspot) * reference;
        const double ratio =
            reference > 0 ? hotspot_mbs / reference : 0;
        report.addMetric("hotspot_vs_permutation", ratio);
        const char *ref_name = per_receiver
                                   ? "per-receiver permutation rate"
                                   : "permutation mean";
        if (hotspot_mbs < floor) {
            std::printf("\nNETPERF REGRESSION: hotspot %.2f MB/s is "
                        "below %.2f MB/s (%.0f%% of the %.2f MB/s "
                        "%s)\n",
                        hotspot_mbs, floor, 100 * (1 - check_hotspot),
                        reference, ref_name);
            rc = 1;
        } else {
            std::printf("\nhotspot gate: %.2f MB/s >= %.2f MB/s "
                        "(%.0f%% of the %.2f MB/s %s) -- ok\n",
                        hotspot_mbs, floor, 100 * (1 - check_hotspot),
                        reference, ref_name);
        }
    }
    report.write();
    return rc;
}
