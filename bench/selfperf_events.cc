/**
 * @file
 * Self-performance benchmark of the simulation core (host wall clock,
 * not simulated time): how fast does the simulator itself run?
 *
 * Two workloads:
 *
 *  1. "events" — the event-core microworkload: a mesh of
 *     self-rescheduling actors with mixed priorities plus a
 *     speculative-cancel stream (schedule + deschedule), the
 *     steady-state pattern every simulated component produces. This is
 *     the headline events/sec number: it isolates the scheduling fast
 *     path from model code.
 *
 *  2. "udma" — a saturating multi-node UDMA traffic mix: a 4-node
 *     ring streaming user-level channel records, exercising proxy
 *     faults, context switches, NI delivery and DMA completion events.
 *     Reports host ns per simulated event plus TLB and
 *     proxy-translation-cache hit rates.
 *
 * Output: BENCH_selfperf.json via --stats-json=<path>. With
 * --check-against=<committed.json> the run compares its events/sec
 * against the committed baseline and exits nonzero (loudly) on a
 * regression beyond --tolerance (default 0.20) — the CI self-perf
 * gate in tools/run_checks.sh.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "core/system.hh"
#include "msg/channel.hh"
#include "sim/random.hh"

using namespace shrimp;
using namespace shrimp::core;

namespace
{

double
hostSeconds(std::chrono::steady_clock::time_point t0,
            std::chrono::steady_clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

/** Results of the event-core microworkload. */
struct EventCoreResult
{
    std::uint64_t fired = 0;
    std::uint64_t cancels = 0;
    std::uint64_t compactions = 0;
    double hostSec = 0;
    double allocsPerEvent = 0;
    double heapFallbacksPerEvent = 0;

    double
    eventsPerSec() const
    {
        return hostSec > 0 ? double(fired) / hostSec : 0;
    }

    double
    nsPerEvent() const
    {
        return fired > 0 ? hostSec * 1e9 / double(fired) : 0;
    }
};

/**
 * The event-core microworkload: @p actors self-rescheduling callbacks
 * with a rotating priority mix; every firing also schedules a
 * speculative event and cancels the previous speculative one, so the
 * deschedule path (and the cancelled-entry compaction) is part of the
 * steady state being measured.
 */
EventCoreResult
runEventCore(std::uint64_t target_events, unsigned actors)
{
    sim::EventQueue eq;
    sim::Random rng(0xBEEF);

    EventCoreResult res;
    std::uint64_t fired = 0;
    std::vector<sim::EventHandle> speculative(actors);

    // Pre-computed pseudo-random delays: the workload should measure
    // the queue, not the PRNG.
    constexpr std::size_t delayMask = 1023;
    std::vector<Tick> delays(delayMask + 1);
    for (auto &d : delays)
        d = 1 + rng.below(5000);

    struct Actor
    {
        sim::EventQueue *eq;
        std::vector<Tick> *delays;
        std::vector<sim::EventHandle> *spec;
        std::uint64_t *fired;
        std::uint64_t *cancels;
        std::uint64_t target;
        unsigned idx;
        unsigned n;

        void
        fire()
        {
            ++*fired;
            if (*fired >= target)
                return;
            Tick d = (*delays)[(*fired + idx) & delayMask];
            // Re-arm this actor, alternating priority classes.
            auto self = *this;
            eq->scheduleIn(
                d, "selfperf.actor", [self]() mutable { self.fire(); },
                (*fired % 3 == 0)
                    ? sim::EventPriority::DeviceCompletion
                    : sim::EventPriority::Default);
            // Speculative event: cancel the previous one, park a new
            // one. Keeps a steady deschedule load on the queue.
            if ((*spec)[idx].valid()) {
                if (eq->deschedule((*spec)[idx]))
                    ++*cancels;
            }
            (*spec)[idx] = eq->scheduleIn(
                d + 100000, "selfperf.spec", [] {},
                sim::EventPriority::Stats);
        }
    };

    std::uint64_t cancels = 0;
    for (unsigned a = 0; a < actors; ++a) {
        Actor actor{&eq,    &delays, &speculative, &fired,
                    &cancels, target_events, a,       actors};
        eq.scheduleIn(1 + a, "selfperf.seed",
                      [actor]() mutable { actor.fire(); });
    }

    // Warm up to the workload's high-water mark so the measurement
    // covers the steady state: after this, the slab and heap are at
    // capacity and scheduling should allocate nothing at all.
    std::uint64_t warmup = target_events / 10;
    while (fired < warmup && eq.step()) {
    }
    std::uint64_t growths0 = eq.containerGrowths();
    std::uint64_t fallbacks0 = sim::EventCallback::heapFallbacks();
    std::uint64_t fired0 = fired;

    auto t0 = std::chrono::steady_clock::now();
    while (fired < target_events && eq.step()) {
    }
    auto t1 = std::chrono::steady_clock::now();

    std::uint64_t measured = fired - fired0;
    res.fired = measured; // events inside the timed (steady-state) region
    res.cancels = cancels;
    res.compactions = eq.compactions();
    res.hostSec = hostSeconds(t0, t1);
    if (measured > 0) {
        res.allocsPerEvent =
            double(eq.containerGrowths() - growths0) / double(measured);
        res.heapFallbacksPerEvent =
            double(sim::EventCallback::heapFallbacks() - fallbacks0)
            / double(measured);
    }
    return res;
}

/** Results of the multi-node UDMA traffic mix. */
struct UdmaMixResult
{
    std::uint64_t simEvents = 0;
    double hostSec = 0;
    double tlbHitRate = 0;
    double tcacheHitRate = 0;
    double aggregateMbs = 0;

    double
    eventsPerSec() const
    {
        return hostSec > 0 ? double(simEvents) / hostSec : 0;
    }

    double
    nsPerEvent() const
    {
        return simEvents > 0 ? hostSec * 1e9 / double(simEvents) : 0;
    }
};

/**
 * Saturating 4-node UDMA ring (user-level channels): every node
 * streams records to its right neighbour while receiving from the
 * left, with sender and receiver time-slicing one CPU per node.
 */
UdmaMixResult
runUdmaMix(unsigned records)
{
    constexpr unsigned nodes = 4;
    constexpr std::uint32_t recordBytes = 4080;

    SystemConfig cfg;
    cfg.nodes = nodes;
    cfg.node.memBytes = 8 << 20;
    cfg.params.quantumUs = 200.0;
    cfg.node.devices.push_back(DeviceConfig{});
    System sys(cfg);

    std::vector<msg::ChannelRendezvous> rv(nodes);
    std::vector<Tick> started(nodes, 0), done(nodes, 0);

    for (unsigned n = 0; n < nodes; ++n) {
        auto *me = &sys.node(n);
        auto *right = &sys.node((n + 1) % nodes);

        me->kernel().spawn(
            "recv" + std::to_string(n),
            [&, me, n](os::UserContext &ctx) -> sim::ProcTask {
                NodeId left = (n + nodes - 1) % nodes;
                msg::ReceiverChannel ch(ctx, 0, *me->ni(), left);
                if (!co_await ch.bind(rv[left]))
                    fatal("bind failed on node ", n);
                for (unsigned r = 0; r < records; ++r) {
                    std::uint32_t len = 0;
                    (void)co_await ch.recvZeroCopy(len);
                    co_await ch.ackLast();
                }
                done[n] = ctx.kernel().eq().now();
            });

        me->kernel().spawn(
            "send" + std::to_string(n),
            [&, me, right, n](os::UserContext &ctx) -> sim::ProcTask {
                msg::SenderChannel ch(ctx, 0, *me->ni(), right->id());
                if (!co_await ch.connect(rv[n]))
                    fatal("connect failed on node ", n);
                Addr buf = co_await ctx.sysAllocMemory(recordBytes);
                for (Addr off = 0; off < recordBytes; off += 4096)
                    co_await ctx.store(buf + off, n);
                started[n] = ctx.kernel().eq().now();
                for (unsigned r = 0; r < records; ++r)
                    co_await ch.send(buf, recordBytes);
            });
    }

    auto t0 = std::chrono::steady_clock::now();
    sys.runUntilAllDone(Tick(600) * tickSec);
    sys.run();
    auto t1 = std::chrono::steady_clock::now();

    UdmaMixResult res;
    res.simEvents = sys.eq().eventsExecuted();
    res.hostSec = hostSeconds(t0, t1);

    std::uint64_t tlb_hits = 0, tlb_misses = 0;
    for (unsigned n = 0; n < nodes; ++n) {
        const auto &tlb = sys.node(n).mmu().tlb();
        tlb_hits += tlb.hits();
        tlb_misses += tlb.misses();
    }
    if (tlb_hits + tlb_misses > 0) {
        res.tlbHitRate =
            double(tlb_hits) / double(tlb_hits + tlb_misses);
    }

    std::uint64_t tc_hits = 0, tc_misses = 0;
    for (unsigned n = 0; n < nodes; ++n) {
        const auto &tc = sys.node(n).kernel().proxyTcache();
        tc_hits += tc.hits();
        tc_misses += tc.misses();
    }
    if (tc_hits + tc_misses > 0) {
        res.tcacheHitRate =
            double(tc_hits) / double(tc_hits + tc_misses);
    }

    double aggregate = 0;
    for (unsigned n = 0; n < nodes; ++n) {
        Tick t_start = started[(n + nodes - 1) % nodes];
        if (done[n] > t_start && t_start > 0) {
            double us = ticksToUs(done[n] - t_start);
            aggregate +=
                records * double(recordBytes) / us * 1e6 / (1 << 20);
        }
    }
    res.aggregateMbs = aggregate;

    bench::captureSystem(sys);
    return res;
}

/**
 * Extract "key": <number> from a flat JSON file with a crude scan —
 * enough for the committed-baseline regression gate without a JSON
 * parser dependency in bench/.
 */
bool
scanJsonNumber(const std::string &text, const std::string &key,
               double &out)
{
    std::string needle = "\"" + key + "\":";
    auto pos = text.find(needle);
    if (pos == std::string::npos)
        return false;
    pos += needle.size();
    while (pos < text.size()
           && (text[pos] == ' ' || text[pos] == '\t'))
        ++pos;
    char *end = nullptr;
    out = std::strtod(text.c_str() + pos, &end);
    return end != text.c_str() + pos;
}

} // namespace

int
main(int argc, char **argv)
{
    auto opts = parseRunOptions(argc, argv);
    if (!opts.ok)
        return 2;

    std::uint64_t target_events = 2000000;
    unsigned actors = 64;
    unsigned records = 48;
    std::string check_against;
    double tolerance = 0.20;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--events=", 0) == 0) {
            target_events = std::strtoull(arg.c_str() + 9, nullptr, 10);
        } else if (arg.rfind("--records=", 0) == 0) {
            records = unsigned(std::strtoul(arg.c_str() + 10, nullptr,
                                            10));
        } else if (arg.rfind("--check-against=", 0) == 0) {
            check_against = arg.substr(16);
        } else if (arg.rfind("--tolerance=", 0) == 0) {
            tolerance = std::strtod(arg.c_str() + 12, nullptr);
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            return 2;
        }
    }

    bench::BenchReport report("selfperf_events", opts);
    report.setParam("target_events", double(target_events));
    report.setParam("actors", double(actors));
    report.setParam("records", double(records));

    std::printf("# simulation-core self-performance (host wall clock)\n");

    EventCoreResult ev = runEventCore(target_events, actors);
    std::printf("events-core: %llu events, %llu cancels, "
                "%llu compactions, %.3f s host, %.0f events/s, "
                "%.1f ns/event, %.6f allocs/event, "
                "%.6f heap-fallbacks/event\n",
                (unsigned long long)ev.fired,
                (unsigned long long)ev.cancels,
                (unsigned long long)ev.compactions, ev.hostSec,
                ev.eventsPerSec(), ev.nsPerEvent(), ev.allocsPerEvent,
                ev.heapFallbacksPerEvent);

    UdmaMixResult mix = runUdmaMix(records);
    std::printf("udma-mix: %llu sim events, %.3f s host, %.0f events/s,"
                " %.1f ns/event, tlb-hit %.3f, tcache-hit %.3f, "
                "%.1f MB/s aggregate\n",
                (unsigned long long)mix.simEvents, mix.hostSec,
                mix.eventsPerSec(), mix.nsPerEvent(), mix.tlbHitRate,
                mix.tcacheHitRate, mix.aggregateMbs);

    report.addMetric("events_per_sec", ev.eventsPerSec());
    report.addMetric("host_ns_per_event", ev.nsPerEvent());
    report.addMetric("cancels", double(ev.cancels));
    report.addMetric("allocs_per_event", ev.allocsPerEvent);
    report.addMetric("callback_heap_fallbacks_per_event",
                     ev.heapFallbacksPerEvent);
    report.addMetric("udma_events_per_sec", mix.eventsPerSec());
    report.addMetric("udma_host_ns_per_event", mix.nsPerEvent());
    report.addMetric("udma_sim_events", double(mix.simEvents));
    report.addMetric("tlb_hit_rate", mix.tlbHitRate);
    report.addMetric("tcache_hit_rate", mix.tcacheHitRate);
    report.addMetric("udma_aggregate_mb_s", mix.aggregateMbs);
    report.write();

    if (!check_against.empty()) {
        std::ifstream in(check_against);
        if (!in) {
            std::fprintf(stderr,
                         "SELF-PERF GATE ERROR: cannot read baseline "
                         "%s\n",
                         check_against.c_str());
            return 3;
        }
        std::stringstream ss;
        ss << in.rdbuf();
        double base = 0;
        if (!scanJsonNumber(ss.str(), "events_per_sec", base)
            || base <= 0) {
            std::fprintf(stderr,
                         "SELF-PERF GATE ERROR: no events_per_sec in "
                         "%s\n",
                         check_against.c_str());
            return 3;
        }
        double now = ev.eventsPerSec();
        double floor = base * (1.0 - tolerance);
        std::printf("self-perf gate: %.0f events/s vs committed "
                    "baseline %.0f (floor %.0f, tolerance %.0f%%)\n",
                    now, base, floor, tolerance * 100);
        if (now < floor) {
            std::fprintf(stderr,
                         "SELF-PERF REGRESSION: %.0f events/s is more "
                         "than %.0f%% below the committed baseline "
                         "%.0f events/s (%s)\n",
                         now, tolerance * 100, base,
                         check_against.c_str());
            return 1;
        }
    }
    return 0;
}
