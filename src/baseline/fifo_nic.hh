/**
 * @file
 * A memory-mapped FIFO network interface: the Section 9 baseline
 * ("the controller has no DMA capability. Instead, the host processor
 * communicates with the network interface by reading or writing
 * special memory locations that correspond to the FIFOs").
 *
 * The device window (protected by the ordinary VM system, exactly as
 * in the paper's related work) exposes:
 *
 *   page 0: control/status registers
 *     0x00  W  DEST_NODE     destination of subsequent TX words
 *     0x08  R  TX_SPACE      words free in the outgoing FIFO
 *     0x10  R  RX_AVAIL      words available in the incoming FIFO
 *     0x18  R  RX_DATA       pop one word (0 if empty)
 *   page 1+: TX data window — every STORE enqueues one word
 *
 * Each reference is an uncached I/O-bus transaction, so long messages
 * pay one bus word-cycle per word — which is why the DMA-based
 * controller wins for long messages (burst mode), the paper's point.
 *
 * Words are 64-bit (we model the PIO datapath as matching the CPU's
 * widest uncached store); the DMA-vs-PIO crossover is insensitive to
 * this choice since burst mode is several times faster either way.
 */

#ifndef SHRIMP_BASELINE_FIFO_NIC_HH
#define SHRIMP_BASELINE_FIFO_NIC_HH

#include <cstdint>
#include <deque>
#include <map>

#include "bus/io_bus.hh"
#include "sim/event_queue.hh"
#include "sim/params.hh"
#include "sim/stats.hh"
#include "vm/layout.hh"

namespace shrimp::baseline
{

class FifoNic;

/**
 * The fabric connecting FifoNics (same link model as SHRIMP's
 * Interconnect: per-source injection serialization plus routing
 * latency). On a mesh/torus wiring the routing latency scales with
 * the dimension-order hop count; the FIFO-NIC baseline only runs in
 * legacy single-queue mode, so it charges the whole route's latency
 * up front instead of modelling per-hop link arbitration.
 */
class FifoFabric
{
  public:
    FifoFabric(sim::EventQueue &eq, const sim::MachineParams &params,
               sim::TopologyConfig topo = {})
        : eq_(eq), params_(params), topo_(topo)
    {}

    void
    attach(NodeId node, FifoNic *nic)
    {
        SHRIMP_ASSERT(nics_.count(node) == 0, "node already attached");
        nics_[node] = nic;
    }

    FifoNic *
    nic(NodeId node) const
    {
        auto it = nics_.find(node);
        SHRIMP_ASSERT(it != nics_.end(), "no FIFO NIC for node ", node);
        return it->second;
    }

    Tick
    acquireLink(NodeId src, std::uint64_t bytes)
    {
        Tick &free_at = linkFreeAt_[src];
        Tick start = std::max(eq_.now(), free_at);
        free_at = start + params_.linkTransfer(bytes);
        return free_at;
    }

    Tick hopLatency() const { return params_.linkLatency(); }

    /** Routing latency of the whole src -> dst route (all hops). */
    Tick
    routeLatency(NodeId src, NodeId dst) const
    {
        return topo_.hops(src, dst) * params_.linkLatency();
    }

  private:
    sim::EventQueue &eq_;
    const sim::MachineParams &params_;
    const sim::TopologyConfig topo_;
    std::map<NodeId, FifoNic *> nics_;
    std::map<NodeId, Tick> linkFreeAt_;
};

/** One node's memory-mapped FIFO NIC. */
class FifoNic : public bus::ProxyClient
{
  public:
    static constexpr Addr regDestNode = 0x00;
    static constexpr Addr regTxSpace = 0x08;
    static constexpr Addr regRxAvail = 0x10;
    static constexpr Addr regRxData = 0x18;

    FifoNic(sim::EventQueue &eq, const sim::MachineParams &params,
            NodeId node, bus::IoBus &io_bus, FifoFabric &fabric,
            unsigned device_index, std::uint32_t page_bytes);

    NodeId node() const { return node_; }
    unsigned deviceIndex() const { return deviceIndex_; }

    /** Window size to register with the kernel (control + TX pages). */
    std::uint64_t proxyExtentBytes() const { return 16 * pageBytes_; }

    // ProxyClient interface.
    std::uint64_t proxyLoad(const vm::Decoded &decoded,
                            Addr paddr) override;
    void proxyStore(const vm::Decoded &decoded, Addr paddr,
                    std::int64_t value) override;

    /** Peer-facing: deliver one word into the incoming FIFO.
     *  @return false if the FIFO is full (sender must retry). */
    bool rxDeliver(std::uint64_t word);

    std::uint32_t rxFifoFree() const;

    std::uint64_t wordsSent() const
    {
        return std::uint64_t(txWordsStat_.value());
    }
    std::uint64_t wordsReceived() const
    {
        return std::uint64_t(rxWordsStat_.value());
    }

  private:
    void pump();

    std::uint32_t fifoWords() const
    {
        return params_.niFifoBytes / 8;
    }

    sim::EventQueue &eq_;
    const sim::MachineParams &params_;
    NodeId node_;
    FifoFabric &fabric_;
    unsigned deviceIndex_;
    std::uint32_t pageBytes_;

    NodeId destNode_ = 0;
    std::deque<std::uint64_t> txFifo_;
    std::deque<std::uint64_t> rxFifo_;
    bool pumpBusy_ = false;

    stats::Scalar txWordsStat_;
    stats::Scalar rxWordsStat_;
    stats::Scalar txOverflows_;
};

} // namespace shrimp::baseline

#endif // SHRIMP_BASELINE_FIFO_NIC_HH
