/**
 * @file
 * The traditional, kernel-initiated DMA baseline (paper Section 2).
 *
 * "A typical DMA transfer requires the following steps: [syscall;
 * translate + verify + pin + build descriptor + start; transfer;
 * interrupt + unpin + reschedule]" — this driver implements exactly
 * those steps on the simulator's primitives, charging the per-step
 * instruction costs from MachineParams, so its overhead is built from
 * the same substrate UDMA runs on.
 *
 * Two buffer-management modes, both from the paper's Section 2
 * discussion:
 *  - PinPages: translate and pin the user's own pages per transfer;
 *  - BounceBuffer: copy through pre-pinned kernel I/O buffers (the
 *    common alternative that trades copy cost for pin cost).
 */

#ifndef SHRIMP_BASELINE_TRADITIONAL_DMA_HH
#define SHRIMP_BASELINE_TRADITIONAL_DMA_HH

#include <cstdint>
#include <deque>

#include "dma/dma_engine.hh"
#include "os/kernel.hh"
#include "sim/stats.hh"

namespace shrimp::baseline
{

/** Kernel driver for one DMA device. */
class TraditionalDmaDriver
{
  public:
    enum class Mode
    {
        PinPages,
        BounceBuffer,
    };

    /** Result codes delivered as the syscall return value. */
    enum : std::uint64_t
    {
        resultOk = 0,
        resultBadRange = 1,
        resultDeviceError = 2,
    };

    TraditionalDmaDriver(sim::EventQueue &eq,
                         const sim::MachineParams &params,
                         mem::PhysicalMemory &memory, bus::IoBus &io_bus,
                         dma::UdmaDevice &device)
        : eq_(eq), params_(params),
          engine_(eq, params, memory, io_bus, device), device_(device)
    {}

    /**
     * The sys_dma syscall body. Call from a UserContext::syscall
     * lambda. On success the process blocks until the completion
     * interrupt; on failure the result code is returned immediately.
     */
    void requestDma(os::Kernel &kernel, os::Process &proc,
                    os::SyscallControl &sc, bool to_device, Addr va,
                    Addr dev_offset, std::uint32_t nbytes, Mode mode);

    const dma::DmaEngine &engine() const { return engine_; }

    std::uint64_t requestsCompleted() const
    {
        return std::uint64_t(completed_.value());
    }
    std::uint64_t interrupts() const
    {
        return std::uint64_t(interrupts_.value());
    }

  private:
    struct Request
    {
        os::Kernel *kernel = nullptr;
        os::Process *proc = nullptr;
        bool toDevice = true;
        Addr va = 0;
        Addr devOffset = 0;
        std::uint32_t nbytes = 0;
        Mode mode = Mode::PinPages;
        std::vector<dma::Segment> segments;
    };

    void startNext();
    void complete();

    sim::EventQueue &eq_;
    const sim::MachineParams &params_;
    dma::DmaEngine engine_;
    dma::UdmaDevice &device_;

    std::deque<Request> queue_;
    bool active_ = false;
    Request current_;

    stats::Scalar completed_;
    stats::Scalar interrupts_;
};

} // namespace shrimp::baseline

#endif // SHRIMP_BASELINE_TRADITIONAL_DMA_HH
