#include "baseline/traditional_dma.hh"

namespace shrimp::baseline
{

void
TraditionalDmaDriver::requestDma(os::Kernel &kernel, os::Process &proc,
                                 os::SyscallControl &sc, bool to_device,
                                 Addr va, Addr dev_offset,
                                 std::uint32_t nbytes, Mode mode)
{
    Tick lat = 0;

    // Step 2 (Section 2): translate the virtual addresses, verify the
    // user's permission, and build the transfer descriptor.
    std::vector<dma::Segment> segments;
    if (!kernel.buildDmaSegments(proc, va, nbytes, !to_device, segments,
                                 lat)) {
        sc.extraLatency = lat;
        sc.result = resultBadRange;
        return;
    }

    std::uint8_t err =
        device_.validateTransfer(to_device, dev_offset, nbytes);
    if (err != dma::device_error::none) {
        sc.extraLatency = lat;
        sc.result = resultDeviceError;
        return;
    }

    if (mode == Mode::PinPages) {
        if (!kernel.pinRange(proc, va, nbytes, lat)) {
            sc.extraLatency = lat;
            sc.result = resultBadRange;
            return;
        }
    } else {
        // Bounce-buffer mode: copy between the user pages and the
        // pre-pinned kernel I/O buffer. The copy is charged here; the
        // engine then reads the same bytes (the buffer is modelled as
        // aliasing the user frames — a pure timing substitution).
        double words = double(nbytes) / params_.busWordBytes;
        lat += params_.instrTicks(words * params_.dmaCopyInstrPerWord);
    }

    lat += params_.instrTicks(params_.dmaDescriptorInstr);

    Request req;
    req.kernel = &kernel;
    req.proc = &proc;
    req.toDevice = to_device;
    req.va = va;
    req.devOffset = dev_offset;
    req.nbytes = nbytes;
    req.mode = mode;
    req.segments = std::move(segments);

    sc.extraLatency = lat;
    sc.result = resultOk;
    sc.blocks = true;

    // The device is started once the kernel work above has elapsed.
    eq_.scheduleIn(lat, "tdma.enqueue", [this, req = std::move(req)] {
        queue_.push_back(std::move(req));
        startNext();
    });
}

void
TraditionalDmaDriver::startNext()
{
    if (active_ || queue_.empty())
        return;
    active_ = true;
    current_ = std::move(queue_.front());
    queue_.pop_front();

    dma::TransferDesc desc;
    desc.toDevice = current_.toDevice;
    desc.segments = current_.segments;
    desc.devOffset = current_.devOffset;
    desc.onComplete = [this] { complete(); };
    engine_.start(std::move(desc));
}

void
TraditionalDmaDriver::complete()
{
    // Step 4 (Section 2): completion interrupt, unpin, reschedule.
    ++interrupts_;
    Tick lat = params_.instrTicks(params_.dmaInterruptInstr);
    if (current_.mode == Mode::PinPages) {
        std::uint64_t pages =
            (current_.va % current_.kernel->layout().pageBytes()
             + current_.nbytes
             + current_.kernel->layout().pageBytes() - 1)
            / current_.kernel->layout().pageBytes();
        lat += params_.instrTicks(double(pages)
                                  * params_.dmaUnpinInstrPerPage);
    } else {
        // Bounce-buffer mode: a device->memory transfer must be
        // copied out to the user's pages now.
        if (!current_.toDevice) {
            double words =
                double(current_.nbytes) / params_.busWordBytes;
            lat += params_.instrTicks(words
                                      * params_.dmaCopyInstrPerWord);
        }
    }

    eq_.scheduleIn(lat, "tdma.interrupt", [this] {
        if (current_.mode == Mode::PinPages) {
            current_.kernel->unpinRange(*current_.proc, current_.va,
                                        current_.nbytes);
        }
        ++completed_;
        os::Process *proc = current_.proc;
        os::Kernel *kernel = current_.kernel;
        active_ = false;
        startNext();
        kernel->wakeWithResult(*proc, resultOk);
    });
}

} // namespace shrimp::baseline
