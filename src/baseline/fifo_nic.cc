#include "baseline/fifo_nic.hh"

namespace shrimp::baseline
{

FifoNic::FifoNic(sim::EventQueue &eq, const sim::MachineParams &params,
                 NodeId node, bus::IoBus &io_bus, FifoFabric &fabric,
                 unsigned device_index, std::uint32_t page_bytes)
    : eq_(eq), params_(params), node_(node), fabric_(fabric),
      deviceIndex_(device_index), pageBytes_(page_bytes)
{
    io_bus.attach(device_index, this);
    fabric.attach(node, this);
}

std::uint64_t
FifoNic::proxyLoad(const vm::Decoded &decoded, Addr paddr)
{
    (void)paddr;
    if (decoded.space != vm::Space::DevProxy)
        return 0; // the FIFO NIC has no memory proxy semantics
    if (decoded.offset >= pageBytes_)
        return 0; // loads from the TX window are meaningless

    switch (decoded.offset) {
      case regTxSpace:
        return fifoWords() - txFifo_.size();
      case regRxAvail:
        return rxFifo_.size();
      case regRxData: {
        if (rxFifo_.empty())
            return 0;
        std::uint64_t w = rxFifo_.front();
        rxFifo_.pop_front();
        ++rxWordsStat_;
        return w;
      }
      default:
        return 0;
    }
}

void
FifoNic::proxyStore(const vm::Decoded &decoded, Addr paddr,
                    std::int64_t value)
{
    (void)paddr;
    if (decoded.space != vm::Space::DevProxy)
        return;
    if (decoded.offset < pageBytes_) {
        // Control page.
        if (decoded.offset == regDestNode)
            destNode_ = NodeId(value);
        return;
    }
    // TX data window: enqueue one word. A store into a full FIFO is
    // dropped (and counted); correct software checks TX_SPACE first.
    if (txFifo_.size() >= fifoWords()) {
        ++txOverflows_;
        return;
    }
    txFifo_.push_back(std::uint64_t(value));
    ++txWordsStat_;
    pump();
}

std::uint32_t
FifoNic::rxFifoFree() const
{
    return fifoWords() - std::uint32_t(rxFifo_.size());
}

bool
FifoNic::rxDeliver(std::uint64_t word)
{
    if (rxFifo_.size() >= fifoWords())
        return false;
    rxFifo_.push_back(word);
    return true;
}

void
FifoNic::pump()
{
    if (pumpBusy_ || txFifo_.empty())
        return;
    FifoNic *peer = fabric_.nic(destNode_);
    // Drain up to 8 words per wire transaction.
    std::uint32_t n = std::uint32_t(
        std::min<std::size_t>({txFifo_.size(), 8, peer->rxFifoFree()}));
    if (n == 0) {
        // Receiver full: poll again after a hop delay.
        pumpBusy_ = true;
        eq_.scheduleIn(fabric_.hopLatency(), "fifonic.retry", [this] {
            pumpBusy_ = false;
            pump();
        });
        return;
    }
    std::vector<std::uint64_t> words(txFifo_.begin(),
                                     txFifo_.begin() + n);
    txFifo_.erase(txFifo_.begin(), txFifo_.begin() + n);
    Tick injected = fabric_.acquireLink(node_, n * 8ull);
    Tick arrival = injected + fabric_.routeLatency(node_, destNode_);
    pumpBusy_ = true;
    // With several senders the credit check can be stale by arrival
    // time; undelivered words wait at the ejection port and retry.
    struct Delivery
    {
        static void
        run(sim::EventQueue &eq, FifoNic *peer,
            std::vector<std::uint64_t> words, std::size_t idx)
        {
            while (idx < words.size() && peer->rxDeliver(words[idx]))
                ++idx;
            if (idx < words.size()) {
                eq.scheduleIn(
                    peer->fabric_.hopLatency(), "fifonic.redeliver",
                    [&eq, peer, words = std::move(words), idx]() mutable {
                        run(eq, peer, std::move(words), idx);
                    },
                    sim::EventPriority::DeviceCompletion);
            }
        }
    };
    eq_.schedule(arrival, "fifonic.deliver",
                 [this, peer, words = std::move(words)]() mutable {
                     Delivery::run(eq_, peer, std::move(words), 0);
                 },
                 sim::EventPriority::DeviceCompletion);
    eq_.schedule(injected, "fifonic.pump", [this] {
        pumpBusy_ = false;
        pump();
    });
}

} // namespace shrimp::baseline
