/**
 * @file
 * The memory management unit.
 *
 * Performs the virtual-to-physical translation and permission check on
 * every CPU memory reference — including references to proxy pages,
 * which is precisely how UDMA gets protection "for free" (paper
 * Section 4). Hardware-managed referenced/dirty bits are updated here.
 */

#ifndef SHRIMP_VM_MMU_HH
#define SHRIMP_VM_MMU_HH

#include <cstdint>

#include "vm/layout.hh"
#include "vm/page_table.hh"
#include "vm/tlb.hh"

namespace shrimp::vm
{

/** Why a translation failed. */
enum class Fault
{
    None,
    NotPresent, ///< no valid mapping for the page
    Protection, ///< write to a non-writable page (or user/kernel)
};

/** Result of a translation attempt. */
struct TranslateResult
{
    Fault fault = Fault::None;
    Addr paddr = 0;
    bool tlbHit = false;

    bool ok() const { return fault == Fault::None; }
};

/** Per-CPU MMU: TLB + walker over the active page table. */
class Mmu
{
  public:
    explicit Mmu(const AddressLayout &layout, std::size_t tlb_entries = 64)
        : layout_(layout), tlb_(tlb_entries)
    {}

    /** Switch address spaces (flushes the TLB, as on 90s x86). */
    void
    activate(PageTable *pt)
    {
        current_ = pt;
        tlb_.flushAll();
    }

    PageTable *activeTable() const { return current_; }

    /**
     * Translate a virtual address for a user access.
     *
     * Updates referenced/dirty bits on success; never mutates state on
     * a fault, so the access can be transparently retried after the
     * kernel repairs the mapping.
     */
    TranslateResult
    translate(Addr vaddr, bool is_write)
    {
        TranslateResult res;
        if (!current_) {
            res.fault = Fault::NotPresent;
            return res;
        }
        std::uint64_t vpn = layout_.pageOf(vaddr);
        Pte *pte = tlb_.lookup(vpn);
        res.tlbHit = pte != nullptr;
        if (!pte) {
            pte = current_->lookup(vpn);
            if (pte && pte->valid)
                tlb_.insert(vpn, pte);
        }
        if (!pte || !pte->valid) {
            res.fault = Fault::NotPresent;
            return res;
        }
        if (is_write && !pte->writable) {
            res.fault = Fault::Protection;
            return res;
        }
        pte->referenced = true;
        if (is_write)
            pte->dirty = true;
        res.paddr = pte->frameAddr + layout_.pageOffset(vaddr);
        return res;
    }

    /** Kernel-initiated single-page shootdown. */
    void invalidatePage(std::uint64_t vpn) { tlb_.invalidatePage(vpn); }

    /** Kernel-initiated full flush. */
    void flushTlb() { tlb_.flushAll(); }

    const AddressLayout &layout() const { return layout_; }
    const Tlb &tlb() const { return tlb_; }

  private:
    const AddressLayout &layout_;
    Tlb tlb_;
    PageTable *current_ = nullptr;
};

} // namespace shrimp::vm

#endif // SHRIMP_VM_MMU_HH
