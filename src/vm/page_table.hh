/**
 * @file
 * Per-process page table.
 *
 * Maps virtual page numbers to PTEs. PTEs live in node-based storage,
 * so Pte pointers stay valid across unrelated inserts; the TLB caches
 * Pte pointers and the kernel must invalidate the TLB before removing
 * or re-pointing an entry.
 */

#ifndef SHRIMP_VM_PAGE_TABLE_HH
#define SHRIMP_VM_PAGE_TABLE_HH

#include <cstdint>
#include <functional>
#include <map>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace shrimp::vm
{

/**
 * A page table entry. frameAddr is the physical base address of the
 * target page and may point into real memory, a memory proxy region,
 * or a device proxy region; the physical address map gives it meaning.
 */
struct Pte
{
    Addr frameAddr = 0;
    bool valid = false;
    bool writable = false;
    bool user = true;
    /** Hardware-managed: set by the MMU on any write through the PTE. */
    bool dirty = false;
    /** Hardware-managed: set by the MMU on any access; clock hand clears. */
    bool referenced = false;
};

/** One process's virtual-to-physical mapping. */
class PageTable
{
  public:
    /** Find the PTE for a virtual page; nullptr if none exists. */
    Pte *
    lookup(std::uint64_t vpn)
    {
        auto it = entries_.find(vpn);
        return it == entries_.end() ? nullptr : &it->second;
    }

    const Pte *
    lookup(std::uint64_t vpn) const
    {
        auto it = entries_.find(vpn);
        return it == entries_.end() ? nullptr : &it->second;
    }

    /**
     * Install (or overwrite) a mapping. Returns the stored PTE.
     * Caller is responsible for TLB shootdown when overwriting.
     */
    Pte &
    install(std::uint64_t vpn, const Pte &pte)
    {
        auto &slot = entries_[vpn];
        slot = pte;
        return slot;
    }

    /** Drop a mapping entirely. Caller handles TLB shootdown. */
    void remove(std::uint64_t vpn) { entries_.erase(vpn); }

    /** Number of installed entries. */
    std::size_t size() const { return entries_.size(); }

    /** Visit every (vpn, pte). The callback may mutate the PTE. */
    void
    forEach(const std::function<void(std::uint64_t, Pte &)> &fn)
    {
        for (auto &[vpn, pte] : entries_)
            fn(vpn, pte);
    }

  private:
    std::map<std::uint64_t, Pte> entries_;
};

} // namespace shrimp::vm

#endif // SHRIMP_VM_PAGE_TABLE_HH
