/**
 * @file
 * A small fully-associative TLB with LRU replacement.
 *
 * Caches Pte pointers into the active page table. The TLB is flushed
 * on context switch (no ASIDs, like the era's x86) and individual
 * pages are shot down by the kernel before it changes a mapping.
 */

#ifndef SHRIMP_VM_TLB_HH
#define SHRIMP_VM_TLB_HH

#include <cstdint>
#include <vector>

#include "sim/stats.hh"
#include "vm/page_table.hh"

namespace shrimp::vm
{

/** Translation lookaside buffer. */
class Tlb
{
  public:
    explicit Tlb(std::size_t entries = 64) : capacity_(entries) {}

    /** Look up a vpn; returns the cached PTE pointer or nullptr. */
    Pte *
    lookup(std::uint64_t vpn)
    {
        for (auto &e : slots_) {
            if (e.vpn == vpn) {
                e.lastUse = ++useClock_;
                ++hits_;
                return e.pte;
            }
        }
        ++misses_;
        return nullptr;
    }

    /** Insert a translation, evicting LRU if full. */
    void
    insert(std::uint64_t vpn, Pte *pte)
    {
        for (auto &e : slots_) {
            if (e.vpn == vpn) {
                e.pte = pte;
                e.lastUse = ++useClock_;
                return;
            }
        }
        if (slots_.size() < capacity_) {
            slots_.push_back({vpn, pte, ++useClock_});
            return;
        }
        auto victim = slots_.begin();
        for (auto it = slots_.begin(); it != slots_.end(); ++it) {
            if (it->lastUse < victim->lastUse)
                victim = it;
        }
        *victim = {vpn, pte, ++useClock_};
    }

    /** Shoot down one page. */
    void
    invalidatePage(std::uint64_t vpn)
    {
        for (auto it = slots_.begin(); it != slots_.end(); ++it) {
            if (it->vpn == vpn) {
                slots_.erase(it);
                return;
            }
        }
    }

    /** Full flush (context switch). */
    void flushAll() { slots_.clear(); }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::size_t entries() const { return slots_.size(); }

  private:
    struct Slot
    {
        std::uint64_t vpn;
        Pte *pte;
        std::uint64_t lastUse;
    };

    std::size_t capacity_;
    std::uint64_t useClock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::vector<Slot> slots_;
};

} // namespace shrimp::vm

#endif // SHRIMP_VM_TLB_HH
