/**
 * @file
 * The proxy-space address map (paper Figures 2 and 3).
 *
 * Both the virtual and the physical address space are carved into:
 *
 *   [0, memBytes)                      real memory
 *   memProxyBase(d) + [0, memBytes)    memory proxy space of device d
 *   devProxyBase(d) + [0, stride)      device proxy space of device d
 *
 * PROXY(a) = a + memProxyBase(d) is the paper's one-to-one association
 * between real addresses and memory-proxy addresses ("a fixed offset
 * from the real memory space" -- Section 5); PROXY^-1 subtracts it.
 *
 * Design note: the paper describes a single UDMA device and hence a
 * single memory proxy region. To support several UDMA devices on one
 * node without bus-snooping ambiguity, we give each device its own
 * (memory proxy, device proxy) region pair; the mechanism within a
 * pair is exactly the paper's.
 */

#ifndef SHRIMP_VM_LAYOUT_HH
#define SHRIMP_VM_LAYOUT_HH

#include <cstdint>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace shrimp::vm
{

/** Which architectural region an address falls in. */
enum class Space
{
    Memory,   ///< real memory
    MemProxy, ///< memory proxy space of some device
    DevProxy, ///< device proxy space of some device
    Invalid,  ///< unmapped hole
};

/** A decoded address. */
struct Decoded
{
    Space space = Space::Invalid;
    /** Device index for MemProxy/DevProxy spaces. */
    unsigned device = 0;
    /**
     * For MemProxy: the associated real address (PROXY^-1 applied).
     * For DevProxy: the offset within the device proxy window.
     * For Memory: the address itself.
     */
    Addr offset = 0;
};

/** The region map shared by virtual and physical address spaces. */
class AddressLayout
{
  public:
    /** Size of each region slot; also the max memory size. 1 GB. */
    static constexpr Addr regionStride = Addr(1) << 30;

    AddressLayout(std::uint64_t mem_bytes, std::uint32_t page_bytes,
                  unsigned max_devices)
        : memBytes_(mem_bytes), pageBytes_(page_bytes),
          maxDevices_(max_devices)
    {
        if (mem_bytes > regionStride)
            fatal("memory larger than the region stride");
        if (page_bytes == 0 || (page_bytes & (page_bytes - 1)) != 0)
            fatal("page size must be a power of two");
    }

    std::uint64_t memBytes() const { return memBytes_; }
    std::uint32_t pageBytes() const { return pageBytes_; }
    unsigned maxDevices() const { return maxDevices_; }

    /** Base of device @p d's memory proxy region. */
    Addr
    memProxyBase(unsigned d) const
    {
        SHRIMP_ASSERT(d < maxDevices_, "bad device index");
        return regionStride * (1 + 2 * Addr(d));
    }

    /** Base of device @p d's device proxy region. */
    Addr
    devProxyBase(unsigned d) const
    {
        SHRIMP_ASSERT(d < maxDevices_, "bad device index");
        return regionStride * (2 + 2 * Addr(d));
    }

    /** PROXY(): real address -> memory proxy address for device d. */
    Addr
    proxy(Addr real, unsigned d) const
    {
        SHRIMP_ASSERT(real < regionStride, "not a real address");
        return real + memProxyBase(d);
    }

    /** PROXY^-1(): memory proxy address -> real address. */
    Addr
    unproxy(Addr proxy_addr, unsigned d) const
    {
        Addr base = memProxyBase(d);
        SHRIMP_ASSERT(proxy_addr >= base &&
                          proxy_addr < base + regionStride,
                      "not in device's memory proxy region");
        return proxy_addr - base;
    }

    /** Classify an address (virtual or physical; the map is shared). */
    Decoded
    decode(Addr a) const
    {
        Decoded d;
        if (a < regionStride) {
            d.space = Space::Memory;
            d.offset = a;
            return d;
        }
        Addr slot = a / regionStride - 1;
        unsigned device = unsigned(slot / 2);
        if (device >= maxDevices_)
            return d; // Invalid
        d.device = device;
        d.offset = a % regionStride;
        d.space = (slot % 2 == 0) ? Space::MemProxy : Space::DevProxy;
        return d;
    }

    /** Page number of an address. */
    std::uint64_t pageOf(Addr a) const { return a / pageBytes_; }

    /** Offset within a page. */
    std::uint64_t pageOffset(Addr a) const { return a % pageBytes_; }

    /** Base address of the page containing @p a. */
    Addr pageBase(Addr a) const { return a - pageOffset(a); }

    /** Bytes from @p a to the end of its page. */
    std::uint64_t
    bytesToPageEnd(Addr a) const
    {
        return pageBytes_ - pageOffset(a);
    }

  private:
    std::uint64_t memBytes_;
    std::uint32_t pageBytes_;
    unsigned maxDevices_;
};

} // namespace shrimp::vm

#endif // SHRIMP_VM_LAYOUT_HH
