/**
 * @file
 * Deterministic pseudo-random numbers for workload generation.
 *
 * SplitMix64 core: tiny, fast, and identical across platforms so
 * experiments are exactly reproducible from a seed.
 */

#ifndef SHRIMP_SIM_RANDOM_HH
#define SHRIMP_SIM_RANDOM_HH

#include <cstdint>

#include "sim/logging.hh"

namespace shrimp::sim
{

/** A deterministic 64-bit PRNG (SplitMix64). */
class Random
{
  public:
    explicit Random(std::uint64_t seed = 0x5EED5EEDULL) : state_(seed) {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        SHRIMP_ASSERT(bound > 0, "Random::below(0)");
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    between(std::uint64_t lo, std::uint64_t hi)
    {
        SHRIMP_ASSERT(lo <= hi, "Random::between bad range");
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    unit()
    {
        return double(next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli draw with probability @p p. */
    bool chance(double p) { return unit() < p; }

  private:
    std::uint64_t state_;
};

} // namespace shrimp::sim

#endif // SHRIMP_SIM_RANDOM_HH
