#include "sim/event_queue.hh"

namespace shrimp::sim
{

EventQueue::~EventQueue()
{
    while (!heap_.empty()) {
        delete heap_.top();
        heap_.pop();
    }
}

EventHandle
EventQueue::schedule(Tick when, std::string name, std::function<void()> fn,
                     EventPriority prio)
{
    if (when < curTick_) {
        panic("event '", name, "' scheduled in the past: when=", when,
              " now=", curTick_);
    }
    auto *rec = new Record{when, static_cast<int>(prio), nextSeq_,
                           nextSeq_, std::move(name), std::move(fn), false};
    ++nextSeq_;
    heap_.push(rec);
    pendingById_.emplace(rec->id, rec);
    ++liveEvents_;
    return EventHandle(rec->id);
}

bool
EventQueue::deschedule(EventHandle handle)
{
    if (!handle.valid())
        return false;
    auto it = pendingById_.find(handle.id_);
    if (it == pendingById_.end())
        return false;
    it->second->cancelled = true;
    pendingById_.erase(it);
    --liveEvents_;
    return true;
}

EventQueue::Record *
EventQueue::popNext()
{
    while (!heap_.empty()) {
        Record *rec = heap_.top();
        heap_.pop();
        if (rec->cancelled) {
            delete rec;
            continue;
        }
        return rec;
    }
    return nullptr;
}

bool
EventQueue::step()
{
    Record *rec = popNext();
    if (!rec)
        return false;
    SHRIMP_ASSERT(rec->when >= curTick_, "time went backwards");
    curTick_ = rec->when;
    pendingById_.erase(rec->id);
    --liveEvents_;
    ++executed_;
    // Move the callback out so the record can be freed even if the
    // callback schedules further events.
    auto fn = std::move(rec->fn);
    delete rec;
    fn();
    return true;
}

Tick
EventQueue::run(Tick limit)
{
    while (liveEvents_ > 0) {
        // Peek: don't execute events beyond the limit.
        Record *rec = popNext();
        if (!rec)
            break;
        if (rec->when > limit) {
            // Put it back; it stays pending.
            heap_.push(rec);
            curTick_ = limit;
            return curTick_;
        }
        curTick_ = rec->when;
        pendingById_.erase(rec->id);
        --liveEvents_;
        ++executed_;
        auto fn = std::move(rec->fn);
        delete rec;
        fn();
    }
    return curTick_;
}

Tick
EventQueue::runUntil(const std::function<bool()> &pred, Tick limit)
{
    while (liveEvents_ > 0 && !pred()) {
        Record *rec = popNext();
        if (!rec)
            break;
        if (rec->when > limit) {
            heap_.push(rec);
            curTick_ = limit;
            return curTick_;
        }
        curTick_ = rec->when;
        pendingById_.erase(rec->id);
        --liveEvents_;
        ++executed_;
        auto fn = std::move(rec->fn);
        delete rec;
        fn();
    }
    return curTick_;
}

} // namespace shrimp::sim
