#include "sim/event_queue.hh"

#include <algorithm>

namespace shrimp::sim
{

EventHandle
EventQueue::scheduleStamped(Tick when, std::uint64_t stamp,
                            const char *name, EventCallback fn,
                            EventPriority prio)
{
    if (when < curTick_) {
        panic("event '", name ? name : "?",
              "' scheduled in the past: when=", when, " now=", curTick_);
    }

    std::uint32_t slot;
    if (!freeSlots_.empty()) {
        slot = freeSlots_.back();
        freeSlots_.pop_back();
    } else {
        slot = static_cast<std::uint32_t>(slots_.size());
        if (slots_.size() == slots_.capacity())
            ++containerGrowths_;
        slots_.emplace_back();
    }

    Record &rec = slots_[slot];
    rec.when = when;
    rec.seq = stamp;
    rec.name = name;
    rec.fn = std::move(fn);
    rec.prio = static_cast<std::int32_t>(prio);
    rec.inUse = true;

    if (heap_.size() == heap_.capacity())
        ++containerGrowths_;
    heap_.push_back(HeapEntry{rec.when, rec.seq, rec.prio, slot, rec.gen});
    std::push_heap(heap_.begin(), heap_.end(), After{});
    ++liveEvents_;
    return EventHandle(slot + 1, rec.gen);
}

bool
EventQueue::deschedule(EventHandle handle)
{
    if (!handle.valid())
        return false;
    const std::uint32_t slot = handle.slotPlus1_ - 1;
    if (slot >= slots_.size())
        return false;
    Record &rec = slots_[slot];
    if (!rec.inUse || rec.gen != handle.gen_)
        return false; // fired, cancelled, or recycled: detected no-op
    rec.fn.reset();
    freeSlot(slot);
    --liveEvents_;
    ++cancelled_;
    // The heap entry stays behind with a now-mismatched generation;
    // dropStale() discards it, or maybeCompact() sweeps it early.
    ++staleInHeap_;
    maybeCompact();
    return true;
}

void
EventQueue::freeSlot(std::uint32_t slot)
{
    Record &rec = slots_[slot];
    rec.inUse = false;
    rec.name = nullptr;
    ++rec.gen;
    if (freeSlots_.size() == freeSlots_.capacity())
        ++containerGrowths_;
    freeSlots_.push_back(slot);
}

void
EventQueue::dropStale()
{
    while (!heap_.empty() && stale(heap_.front())) {
        std::pop_heap(heap_.begin(), heap_.end(), After{});
        heap_.pop_back();
        SHRIMP_ASSERT(staleInHeap_ > 0, "stale-entry accounting underflow");
        --staleInHeap_;
    }
}

EventQueue::HeapEntry
EventQueue::popEntry()
{
    std::pop_heap(heap_.begin(), heap_.end(), After{});
    HeapEntry e = heap_.back();
    heap_.pop_back();
    return e;
}

void
EventQueue::maybeCompact()
{
    if (staleInHeap_ <= 64 || staleInHeap_ * 2 <= heap_.size())
        return;
    heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                               [this](const HeapEntry &e) {
                                   return stale(e);
                               }),
                heap_.end());
    std::make_heap(heap_.begin(), heap_.end(), After{});
    staleInHeap_ = 0;
    ++compactions_;
}

void
EventQueue::fire(const HeapEntry &e)
{
    Record &rec = slots_[e.slot];
    SHRIMP_ASSERT(rec.when >= curTick_, "time went backwards");
    curTick_ = rec.when;
    lastFired_ = rec.when;
    flight_.record(rec.when, rec.name, rec.prio);
    // Move the callback out so the slot can be recycled even if the
    // callback schedules further events.
    EventCallback fn = std::move(rec.fn);
    rec.fn.reset();
    freeSlot(e.slot);
    --liveEvents_;
    ++executed_;
    fn();
}

std::pair<Tick, std::int32_t>
EventQueue::nextEventKey()
{
    dropStale();
    if (heap_.empty())
        return {maxTick, 0};
    return {heap_.front().when, heap_.front().prio};
}

bool
EventQueue::step()
{
    dropStale();
    if (heap_.empty())
        return false;
    fire(popEntry());
    return true;
}

Tick
EventQueue::run(Tick limit)
{
    while (liveEvents_ > 0) {
        dropStale();
        if (heap_.empty())
            break;
        if (heap_.front().when > limit) {
            // The front event stays pending; time advances to the limit.
            curTick_ = limit;
            return curTick_;
        }
        fire(popEntry());
    }
    return curTick_;
}

Tick
EventQueue::runUntil(const std::function<bool()> &pred, Tick limit)
{
    while (liveEvents_ > 0 && !pred()) {
        dropStale();
        if (heap_.empty())
            break;
        if (heap_.front().when > limit) {
            curTick_ = limit;
            return curTick_;
        }
        fire(popEntry());
    }
    return curTick_;
}

} // namespace shrimp::sim
