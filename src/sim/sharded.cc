#include "sim/sharded.hh"

#include <algorithm>
#include <utility>

#include "sim/profiler.hh"

namespace shrimp::sim
{

ShardedEngine::ShardedEngine(unsigned nodes, unsigned shards,
                             Tick lookahead)
    : shards_(std::min(std::max(shards, 1u), std::max(nodes, 1u))),
      lookahead_(std::max<Tick>(lookahead, 1))
{
    SHRIMP_ASSERT(nodes > 0, "engine needs at least one node");
    queues_.reserve(nodes);
    for (unsigned n = 0; n < nodes; ++n) {
        queues_.push_back(std::make_unique<EventQueue>());
        queues_.back()->setFlightLabel("node" + std::to_string(n));
    }
    shardNodes_.resize(shards_);
    for (unsigned n = 0; n < nodes; ++n)
        shardNodes_[n % shards_].push_back(n);
    boxes_.reserve(std::size_t(shards_) * shards_);
    for (unsigned i = 0; i < shards_ * shards_; ++i)
        boxes_.push_back(std::make_unique<Mailbox>());
    drainBuf_.resize(shards_);
}

ShardedEngine::~ShardedEngine() = default;

void
ShardedEngine::post(NodeId src, NodeId dst, Tick when, const char *name,
                    EventCallback fn, EventPriority prio)
{
    SHRIMP_ASSERT(src < nodeCount() && dst < nodeCount(),
                  "post outside the machine");
    if (src == dst) {
        // Self-sends never leave the shard; scheduling directly keeps
        // them at their natural latency with no canonicality cost (a
        // node's own queue order is shard-count independent already).
        queues_[src]->schedule(when, name, std::move(fn), prio);
        return;
    }
    SHRIMP_ASSERT(when >= queues_[src]->now() + lookahead_,
                  "cross-node post inside the lookahead window");
    Mailbox &mb = box(shardOf(src), shardOf(dst));
    CrossMsg m{when, std::int32_t(prio), src, dst, name, std::move(fn)};
    if (!mb.spill.empty() || !mb.ring.tryPush(std::move(m)))
        mb.spill.push_back(std::move(m));
    ++mb.posted;
}

Tick
ShardedEngine::minNextEvent()
{
    Tick next = maxTick;
    for (auto &q : queues_)
        next = std::min(next, q->nextEventTick());
    return next;
}

Tick
ShardedEngine::windowEndFor(Tick start, Tick limit) const
{
    // Inclusive window [start, start + lookahead - 1], clamped to the
    // run limit without overflowing near maxTick.
    if (limit - start < lookahead_ - 1)
        return limit;
    return start + (lookahead_ - 1);
}

std::size_t
ShardedEngine::drainShard(unsigned dst_shard)
{
    auto &batch = drainBuf_[dst_shard];
    for (unsigned src = 0; src < shards_; ++src) {
        Mailbox &mb = box(src, dst_shard);
        CrossMsg m;
        while (mb.ring.tryPop(m))
            batch.push_back(std::move(m));
        for (auto &spilled : mb.spill)
            batch.push_back(std::move(spilled));
        mb.spill.clear();
    }
    // Canonical delivery order: (tick, priority, source node); the
    // stable sort preserves each source's FIFO order, so the per-queue
    // insertion sequence — and hence the (tick, priority, sequence)
    // execution order — does not depend on how nodes map to shards.
    std::stable_sort(batch.begin(), batch.end(),
                     [](const CrossMsg &a, const CrossMsg &b) {
                         if (a.when != b.when)
                             return a.when < b.when;
                         if (a.prio != b.prio)
                             return a.prio < b.prio;
                         return a.src < b.src;
                     });
    for (auto &m : batch) {
        queues_[m.dst]->schedule(m.when, m.name, std::move(m.fn),
                                 EventPriority(m.prio));
    }
    const std::size_t delivered = batch.size();
    batch.clear();
    return delivered;
}

void
ShardedEngine::drainAll()
{
    for (unsigned s = 0; s < shards_; ++s)
        drainShard(s);
}

void
ShardedEngine::planWindow()
{
    if (ctrl_.error) {
        ctrl_.done = true;
        return;
    }
    try {
        if (barrierHook_)
            barrierHook_();
        if (ctrl_.pred && (*ctrl_.pred)()) {
            ctrl_.done = true;
            return;
        }
    } catch (...) {
        ctrl_.error = std::current_exception();
        ctrl_.done = true;
        return;
    }
    Tick next = minNextEvent();
    if (next == maxTick || next > ctrl_.limit) {
        ctrl_.done = true;
        return;
    }
    // A gap between the previous window's end and the next event means
    // the engine skipped empty windows in one hop — worth counting:
    // lots of skips at 1-tick lookahead is the signature of a
    // barrier-bound run.
    if (profiler_ && ctrl_.haveWindow && next > ctrl_.windowEnd + 1)
        profiler_->noteWindowSkip();
    ctrl_.windowEnd = windowEndFor(next, ctrl_.limit);
    ctrl_.haveWindow = true;
    ++windows_;
}

void
ShardedEngine::noteError()
{
    std::lock_guard<std::mutex> g(errMu_);
    if (!ctrl_.error)
        ctrl_.error = std::current_exception();
}

void
ShardedEngine::workerBody(unsigned worker, unsigned workers)
{
    // Profiling (when attached and running) chains one clock read per
    // phase transition, so the five buckets tile this thread's wall
    // time with no gaps; see profiler.hh.
    ShardProfiler *prof =
        (profiler_ && profiler_->running()) ? profiler_ : nullptr;
    std::uint64_t t = prof ? prof->nowNs() : 0;
    auto executedHere = [&]() {
        std::uint64_t n = 0;
        for (unsigned s = worker; s < shards_; s += workers)
            for (NodeId node : shardNodes_[s])
                n += queues_[node]->eventsExecuted();
        return n;
    };
    for (;;) {
        // Completion plans the next window with every worker parked.
        planBarrier_->arriveAndWait();
        if (prof) {
            const std::uint64_t n = prof->nowNs();
            prof->notePlan(worker, t, n);
            t = n;
        }
        if (ctrl_.done)
            return;
        const std::uint64_t before = prof ? executedHere() : 0;
        try {
            for (unsigned s = worker; s < shards_; s += workers) {
                for (NodeId n : shardNodes_[s])
                    queues_[n]->run(ctrl_.windowEnd);
            }
        } catch (...) {
            noteError();
        }
        if (prof) {
            const std::uint64_t n = prof->nowNs();
            prof->noteExecute(worker, t, n, executedHere() - before);
            t = n;
        }
        syncBarrier_->arriveAndWait();
        if (prof) {
            const std::uint64_t n = prof->nowNs();
            prof->noteSync(worker, t, n);
            t = n;
        }
        std::size_t drained = 0;
        try {
            for (unsigned s = worker; s < shards_; s += workers)
                drained += drainShard(s);
        } catch (...) {
            noteError();
        }
        if (prof) {
            const std::uint64_t n = prof->nowNs();
            prof->noteDrain(worker, t, n, drained);
            t = n;
        }
    }
}

Tick
ShardedEngine::runWindows(const std::function<bool()> *pred, Tick limit)
{
    // Mailboxes may hold messages from a previous partial run (e.g. a
    // runSetup that stopped mid-window); deliver them first so the
    // window plan sees every pending event.
    drainAll();
    ctrl_ = Control{};
    ctrl_.limit = limit;
    ctrl_.pred = pred;
    const unsigned workers = shards_;
    planBarrier_ =
        std::make_unique<SpinBarrier>(workers, [this] { planWindow(); });
    syncBarrier_ = std::make_unique<SpinBarrier>(workers);
    std::vector<std::thread> threads;
    threads.reserve(workers - 1);
    for (unsigned w = 1; w < workers; ++w)
        threads.emplace_back([this, w, workers] {
            workerBody(w, workers);
        });
    workerBody(0, workers);
    for (auto &t : threads)
        t.join();
    planBarrier_.reset();
    syncBarrier_.reset();
    if (ctrl_.error)
        std::rethrow_exception(ctrl_.error);
    return now();
}

Tick
ShardedEngine::run(Tick limit)
{
    return runWindows(nullptr, limit);
}

Tick
ShardedEngine::runUntil(const std::function<bool()> &pred, Tick limit)
{
    return runWindows(&pred, limit);
}

Tick
ShardedEngine::runSetup(const std::function<bool()> &pred, Tick limit)
{
    drainAll();
    for (;;) {
        if (barrierHook_)
            barrierHook_();
        if (pred())
            break;
        Tick next = minNextEvent();
        if (next == maxTick || next > limit)
            break;
        const Tick window_end = windowEndFor(next, limit);
        ++windows_;
        bool stop = false;
        for (;;) {
            // Step the globally earliest event by (tick, priority,
            // node) — a canonical interleaving that cannot depend on
            // the shard count, so host-shared rendezvous state read
            // during setup observes the same history under any
            // --shards value.
            EventQueue *best = nullptr;
            std::pair<Tick, std::int32_t> best_key{maxTick, 0};
            for (NodeId n = 0; n < nodeCount(); ++n) {
                auto key = queues_[n]->nextEventKey();
                if (key.first > window_end)
                    continue;
                if (!best || key < best_key) {
                    best = queues_[n].get();
                    best_key = key;
                }
            }
            if (!best)
                break;
            best->step();
            if (pred()) {
                stop = true;
                break;
            }
        }
        drainAll();
        if (stop)
            break;
    }
    return now();
}

Tick
ShardedEngine::now() const
{
    Tick t = 0;
    for (const auto &q : queues_)
        t = std::max(t, q->now());
    return t;
}

std::uint64_t
ShardedEngine::eventsExecuted() const
{
    std::uint64_t n = 0;
    for (const auto &q : queues_)
        n += q->eventsExecuted();
    return n;
}

std::uint64_t
ShardedEngine::pendingEvents() const
{
    std::uint64_t n = 0;
    for (const auto &q : queues_)
        n += q->pendingEvents();
    return n;
}

std::uint64_t
ShardedEngine::crossPosts() const
{
    std::uint64_t n = 0;
    for (const auto &b : boxes_)
        n += b->posted;
    return n;
}

} // namespace shrimp::sim
