#include "sim/sharded.hh"

#include <algorithm>
#include <utility>

#include "sim/profiler.hh"

namespace shrimp::sim
{

ShardedEngine::ShardedEngine(unsigned nodes, unsigned shards,
                             Tick lookahead)
    : ShardedEngine(nodes, shards,
                    PairLookahead([lookahead](NodeId, NodeId) {
                        return std::max<Tick>(lookahead, 1);
                    }))
{}

ShardedEngine::ShardedEngine(unsigned nodes, unsigned shards,
                             const PairLookahead &la)
    : shards_(std::min(std::max(shards, 1u), std::max(nodes, 1u)))
{
    SHRIMP_ASSERT(nodes > 0, "engine needs at least one node");
    SHRIMP_ASSERT(la, "engine needs a lookahead function");
    queues_.reserve(nodes);
    for (unsigned n = 0; n < nodes; ++n) {
        queues_.push_back(std::make_unique<EventQueue>());
        queues_.back()->setFlightLabel("node" + std::to_string(n));
        // Brand the queue's stamps with its node id: ties at equal
        // (tick, priority) then execute in (source node, per-source
        // order) regardless of which shard drained the message when.
        queues_.back()->setStampSource(n);
    }

    shardStates_.resize(shards_);
    nodeShardIdx_.resize(nodes, 0);
    for (unsigned n = 0; n < nodes; ++n)
        shardStates_[n % shards_].nodes.push_back(n);
    for (unsigned s = 0; s < shards_; ++s) {
        ShardState &st = shardStates_[s];
        st.queues.reserve(st.nodes.size());
        for (std::size_t i = 0; i < st.nodes.size(); ++i) {
            nodeShardIdx_[st.nodes[i]] = std::uint32_t(i);
            st.queues.push_back(queues_[st.nodes[i]].get());
        }
        st.keys.assign(st.queues.size(), {maxTick, 0});
        st.postedMin.assign(shards_, maxTick);
    }

    boxes_.reserve(std::size_t(shards_) * shards_);
    for (unsigned i = 0; i < shards_ * shards_; ++i)
        boxes_.push_back(std::make_unique<Mailbox>());

    // Fold the per-node-pair floors into the shard-pair matrix: the
    // matrix entry must hold for *every* (src, dst) node pair mapped
    // onto it, so it takes the minimum. The per-pair floor itself is
    // clamped to one tick — a zero-lookahead channel cannot be
    // windowed, only serialized.
    pairL_.assign(std::size_t(shards_) * shards_, maxTick);
    minLookahead_ = maxTick;
    for (unsigned src = 0; src < nodes; ++src) {
        for (unsigned dst = 0; dst < nodes; ++dst) {
            if (src == dst)
                continue;
            const Tick l = std::max<Tick>(1, la(src, dst));
            Tick &cell =
                pairL_[std::size_t(shardOf(src)) * shards_ + shardOf(dst)];
            cell = std::min(cell, l);
            minLookahead_ = std::min(minLookahead_, l);
        }
    }
    if (minLookahead_ == maxTick)
        minLookahead_ = 1; // single node: no pairs, value unused
    nextEvent_.resize(shards_, maxTick);
}

ShardedEngine::~ShardedEngine() = default;

void
ShardedEngine::post(NodeId src, NodeId dst, Tick when, const char *name,
                    EventCallback fn, EventPriority prio)
{
    SHRIMP_ASSERT(src < nodeCount() && dst < nodeCount(),
                  "post outside the machine");
    if (src == dst) {
        // Self-sends never leave the queue; scheduling directly keeps
        // them at their natural latency with no canonicality cost (a
        // node's own queue order is shard-count independent already).
        queues_[src]->schedule(when, name, std::move(fn), prio);
        return;
    }
    const unsigned ss = shardOf(src);
    const unsigned ds = shardOf(dst);
    SHRIMP_ASSERT(when >= queues_[src]->now() + pairLookahead(ss, ds),
                  "cross-node post inside the shard-pair (", ss, " -> ",
                  ds, ") lookahead window");
    // The stamp is allocated on the *source* queue now, so the message
    // carries its canonical tie-break key no matter when it is drained.
    const std::uint64_t stamp = queues_[src]->allocStamp();
    ShardState &st = shardStates_[ss];
    if (ss == ds) {
        // Same shard: deliver directly. The merged min-selection loop
        // executes this shard's queues in global (tick, priority)
        // order, so an event landing at least one tick in the future
        // is picked up at its exact time with no mailbox hop and —
        // crucially — without clamping any window: the shard-pair
        // diagonal never constrains the horizon.
        queues_[dst]->scheduleStamped(when, stamp, name, std::move(fn),
                                      prio);
        ++st.directPosts;
        auto &key = st.keys[nodeShardIdx_[dst]];
        const std::pair<Tick, std::int32_t> nk{when, std::int32_t(prio)};
        if (nk < key)
            key = nk;
        return;
    }
    Mailbox &mb = box(ss, ds);
    CrossMsg m{when, std::int32_t(prio), stamp, src, dst, name,
               std::move(fn)};
    if (!mb.ring.tryPush(std::move(m)))
        mb.spill[ctrl_.parity].push_back(std::move(m));
    ++mb.posted;
    // Publish the promise: the earliest tick shard ds may receive from
    // us this round. The next barrier folds it into ds's horizon.
    if (when < st.postedMin[ds])
        st.postedMin[ds] = when;
}

Tick
ShardedEngine::windowEndFor(Tick start, Tick limit) const
{
    // Inclusive window [start, start + lookahead - 1], clamped to the
    // run limit without overflowing near maxTick.
    if (limit - start < minLookahead_ - 1)
        return limit;
    return start + (minLookahead_ - 1);
}

std::size_t
ShardedEngine::drainShard(unsigned dst_shard, bool both)
{
    ShardState &st = shardStates_[dst_shard];
    auto &batch = st.drainBuf;
    for (unsigned src = 0; src < shards_; ++src) {
        Mailbox &mb = box(src, dst_shard);
        const std::size_t before = batch.size();
        CrossMsg m;
        while (mb.ring.tryPop(m))
            batch.push_back(std::move(m));
        // Only the *previous* round's spill is safe to touch while
        // producers run (they write spill[parity]); the sequential
        // entry drain takes both.
        auto takeSpill = [&](std::vector<CrossMsg> &spill) {
            for (auto &spilled : spill)
                batch.push_back(std::move(spilled));
            spill.clear();
        };
        takeSpill(mb.spill[ctrl_.parity ^ 1]);
        if (both)
            takeSpill(mb.spill[ctrl_.parity]);
        mb.delivered += batch.size() - before;
    }
    // Canonical delivery order: (tick, priority, stamp). The stamp is
    // (source node, per-source counter), so the insertion sequence —
    // and hence the (tick, priority, stamp) execution order — does not
    // depend on how nodes map to shards or how drains were batched.
    std::stable_sort(batch.begin(), batch.end(),
                     [](const CrossMsg &a, const CrossMsg &b) {
                         if (a.when != b.when)
                             return a.when < b.when;
                         if (a.prio != b.prio)
                             return a.prio < b.prio;
                         return a.stamp < b.stamp;
                     });
    for (auto &m : batch) {
        queues_[m.dst]->scheduleStamped(m.when, m.stamp, m.name,
                                        std::move(m.fn),
                                        EventPriority(m.prio));
    }
    const std::size_t delivered = batch.size();
    batch.clear();
    return delivered;
}

void
ShardedEngine::drainAll()
{
    for (unsigned s = 0; s < shards_; ++s)
        drainShard(s, /*both=*/true);
}

void
ShardedEngine::planRound()
{
    if (ctrl_.error) {
        ctrl_.done = true;
        return;
    }
    try {
        if (barrierHook_)
            barrierHook_();
        if (ctrl_.pred && (*ctrl_.pred)()) {
            ctrl_.done = true;
            return;
        }
    } catch (...) {
        ctrl_.error = std::current_exception();
        ctrl_.done = true;
        return;
    }
    // Earliest possible next event per shard: its own queues' minimum
    // plus every promise staged toward it this round. (A message both
    // promised and already drained may be counted twice; both copies
    // carry the same tick, so the minimum is merely conservative.)
    Tick global_next = maxTick;
    for (unsigned d = 0; d < shards_; ++d)
        nextEvent_[d] = shardStates_[d].localNext;
    for (unsigned s = 0; s < shards_; ++s) {
        const ShardState &st = shardStates_[s];
        for (unsigned d = 0; d < shards_; ++d)
            nextEvent_[d] = std::min(nextEvent_[d], st.postedMin[d]);
    }
    for (unsigned d = 0; d < shards_; ++d)
        global_next = std::min(global_next, nextEvent_[d]);
    if (global_next == maxTick || global_next > ctrl_.limit) {
        ctrl_.done = true;
        return;
    }
    // Relax to the LBTS fixpoint: an apparently idle shard can still
    // be *woken* by a peer's message and reflect one back, so each
    // shard's earliest possible event is bounded through every path of
    // the lookahead matrix, not just its own queues. Uniform matrices
    // converge in one extra pass; the loop is capped by the longest
    // acyclic path anyway.
    for (bool changed = true; changed;) {
        changed = false;
        for (unsigned s = 0; s < shards_; ++s) {
            if (nextEvent_[s] == maxTick)
                continue;
            for (unsigned d = 0; d < shards_; ++d) {
                if (d == s)
                    continue;
                const Tick l = pairL_[std::size_t(s) * shards_ + d];
                if (nextEvent_[s] >= maxTick - l)
                    continue;
                const Tick reach = nextEvent_[s] + l;
                if (reach < nextEvent_[d]) {
                    nextEvent_[d] = reach;
                    changed = true;
                }
            }
        }
    }
    // Promise-based horizons: shard d may run to one tick short of the
    // earliest event any *other* shard could still send it. A shard
    // whose peers are far in the future (or reachable only by a long
    // round trip through itself) runs a correspondingly wide window —
    // hundreds of lookaheads when traffic is sparse — and the shard
    // holding the global minimum always gets windowEnd >= that event,
    // so every round makes progress.
    Tick max_end = 0;
    for (unsigned d = 0; d < shards_; ++d) {
        Tick h = maxTick;
        for (unsigned s = 0; s < shards_; ++s) {
            if (s == d || nextEvent_[s] == maxTick)
                continue;
            const Tick l = pairL_[std::size_t(s) * shards_ + d];
            const Tick reach = (nextEvent_[s] >= maxTick - l)
                                   ? maxTick
                                   : nextEvent_[s] + l;
            h = std::min(h, reach);
        }
        Tick end = (h == maxTick) ? maxTick : h - 1;
        end = std::min(end, ctrl_.limit);
        shardStates_[d].windowEnd = end;
        max_end = std::max(max_end, end);
        if (profiler_) {
            // Window width in ticks of actual work: 0 when the shard
            // has nothing to run this round.
            Tick width = 0;
            if (nextEvent_[d] <= end) {
                width = end - nextEvent_[d];
                if (width != maxTick)
                    ++width;
            }
            profiler_->noteWindowWidth(width);
        }
    }
    // A gap between the previous round's widest horizon and the next
    // event means the engine hopped over empty time in one plan — the
    // signature of a decoupled phase.
    if (profiler_ && ctrl_.haveWindow && global_next > ctrl_.prevMaxEnd
        && global_next - ctrl_.prevMaxEnd > 1)
        profiler_->noteWindowSkip();
    ctrl_.prevMaxEnd = max_end;
    ctrl_.haveWindow = true;
    // Flip the spill parity: producers of the coming round write the
    // other vector, freeing this round's for its consumer.
    ctrl_.parity ^= 1u;
    ++windows_;
}

void
ShardedEngine::executeShard(unsigned s)
{
    ShardState &st = shardStates_[s];
    const Tick end = st.windowEnd;
    if (st.queues.size() == 1) {
        // Single node: the queue's own run loop is the fast path (no
        // same-shard cross traffic can exist).
        st.queues[0]->run(end);
        return;
    }
    // Merged min-selection over the shard's queues: execute in global
    // (tick, priority) order so a direct same-shard delivery one tick
    // out is observed at its exact time. Keys are cached and kept
    // exact — refreshed after each step, min-lowered by post() on
    // direct delivery.
    const std::size_t n = st.queues.size();
    for (std::size_t i = 0; i < n; ++i)
        st.keys[i] = st.queues[i]->nextEventKey();
    for (;;) {
        std::size_t best = n;
        for (std::size_t i = 0; i < n; ++i) {
            if (st.keys[i].first > end)
                continue;
            if (best == n || st.keys[i] < st.keys[best])
                best = i;
        }
        // The empty-queue sentinel (maxTick) passes the window filter
        // when the horizon itself is maxTick — nothing to run then.
        if (best == n || st.keys[best].first == maxTick)
            break;
        st.queues[best]->step();
        st.keys[best] = st.queues[best]->nextEventKey();
    }
}

void
ShardedEngine::noteError()
{
    std::lock_guard<std::mutex> g(errMu_);
    if (!ctrl_.error)
        ctrl_.error = std::current_exception();
}

void
ShardedEngine::workerBody(unsigned worker)
{
    // One round: barrier (completion plans every shard's window) ->
    // drain own inbox -> execute own window -> publish the promises
    // for the next plan. Profiling (when attached and running) chains
    // one clock read per phase transition so the buckets tile this
    // thread's wall time with no gaps; the fused barrier wait lands in
    // the plan bucket (there is no separate sync barrier any more).
    ShardProfiler *prof =
        (profiler_ && profiler_->running()) ? profiler_ : nullptr;
    std::uint64_t t = prof ? prof->nowNs() : 0;
    ShardState &st = shardStates_[worker];
    auto executedHere = [&]() {
        std::uint64_t n = 0;
        for (EventQueue *q : st.queues)
            n += q->eventsExecuted();
        return n;
    };
    for (;;) {
        barrier_->arriveAndWait();
        if (prof) {
            const std::uint64_t n = prof->nowNs();
            prof->notePlan(worker, t, n);
            t = n;
        }
        if (ctrl_.done)
            return;
        // The promises published last round were consumed by the plan
        // we just crossed; start the new round's accounting.
        std::fill(st.postedMin.begin(), st.postedMin.end(), maxTick);
        std::size_t drained = 0;
        try {
            drained = drainShard(worker, /*both=*/false);
        } catch (...) {
            noteError();
        }
        if (prof) {
            const std::uint64_t n = prof->nowNs();
            prof->noteDrain(worker, t, n, drained);
            t = n;
        }
        const std::uint64_t before = prof ? executedHere() : 0;
        try {
            executeShard(worker);
        } catch (...) {
            noteError();
        }
        // Publish this shard's earliest pending tick for the next
        // plan; the barrier provides the happens-before edge.
        Tick local_next = maxTick;
        for (EventQueue *q : st.queues)
            local_next = std::min(local_next, q->nextEventTick());
        st.localNext = local_next;
        if (prof) {
            const std::uint64_t n = prof->nowNs();
            prof->noteExecute(worker, t, n, executedHere() - before);
            t = n;
        }
    }
}

Tick
ShardedEngine::runWindows(const std::function<bool()> *pred, Tick limit)
{
    // Mailboxes may hold messages from a previous partial run (e.g. a
    // runSetup that stopped mid-window); deliver them first so the
    // first plan sees every pending event.
    drainAll();
    ctrl_ = Control{};
    ctrl_.limit = limit;
    ctrl_.pred = pred;
    for (unsigned s = 0; s < shards_; ++s) {
        ShardState &st = shardStates_[s];
        Tick local_next = maxTick;
        for (EventQueue *q : st.queues)
            local_next = std::min(local_next, q->nextEventTick());
        st.localNext = local_next;
        std::fill(st.postedMin.begin(), st.postedMin.end(), maxTick);
    }
    const unsigned workers = shards_;
    barrier_ =
        std::make_unique<SpinBarrier>(workers, [this] { planRound(); });
    std::vector<std::thread> threads;
    threads.reserve(workers - 1);
    for (unsigned w = 1; w < workers; ++w)
        threads.emplace_back([this, w] { workerBody(w); });
    workerBody(0);
    for (auto &t : threads)
        t.join();
    const std::uint64_t spins = barrier_->spinWakes();
    const std::uint64_t sleeps = barrier_->futexSleeps();
    barSpinWakes_ += spins;
    barSleeps_ += sleeps;
    if (profiler_ && profiler_->running())
        profiler_->addBarrierWaits(spins, sleeps);
    barrier_.reset();
    if (ctrl_.error)
        std::rethrow_exception(ctrl_.error);
    return now();
}

Tick
ShardedEngine::run(Tick limit)
{
    return runWindows(nullptr, limit);
}

Tick
ShardedEngine::runUntil(const std::function<bool()> &pred, Tick limit)
{
    return runWindows(&pred, limit);
}

Tick
ShardedEngine::runSetup(const std::function<bool()> &pred, Tick limit)
{
    drainAll();
    for (;;) {
        if (barrierHook_)
            barrierHook_();
        if (pred())
            break;
        Tick next = maxTick;
        for (auto &q : queues_)
            next = std::min(next, q->nextEventTick());
        if (next == maxTick || next > limit)
            break;
        const Tick window_end = windowEndFor(next, limit);
        ++windows_;
        bool stop = false;
        for (;;) {
            // Step the globally earliest event by (tick, priority,
            // node) — a canonical interleaving that cannot depend on
            // the shard count, so host-shared rendezvous state read
            // during setup observes the same history under any
            // --shards value.
            EventQueue *best = nullptr;
            std::pair<Tick, std::int32_t> best_key{maxTick, 0};
            for (NodeId n = 0; n < nodeCount(); ++n) {
                auto key = queues_[n]->nextEventKey();
                if (key.first > window_end)
                    continue;
                if (!best || key < best_key) {
                    best = queues_[n].get();
                    best_key = key;
                }
            }
            if (!best)
                break;
            best->step();
            if (pred()) {
                stop = true;
                break;
            }
        }
        drainAll();
        if (stop)
            break;
    }
    return now();
}

Tick
ShardedEngine::now() const
{
    // Max over *fired* ticks, not queue clocks: run(limit) parks an
    // idle queue's clock at its window end, which depends on how the
    // windows were shaped; the last fired tick does not.
    Tick t = 0;
    for (const auto &q : queues_)
        t = std::max(t, q->lastFiredTick());
    return t;
}

std::uint64_t
ShardedEngine::eventsExecuted() const
{
    std::uint64_t n = 0;
    for (const auto &q : queues_)
        n += q->eventsExecuted();
    return n;
}

std::uint64_t
ShardedEngine::pendingEvents() const
{
    std::uint64_t n = 0;
    for (const auto &q : queues_)
        n += q->pendingEvents();
    for (const auto &b : boxes_)
        n += b->posted - b->delivered;
    return n;
}

std::uint64_t
ShardedEngine::crossPosts() const
{
    std::uint64_t n = 0;
    for (const auto &b : boxes_)
        n += b->posted;
    for (const auto &st : shardStates_)
        n += st.directPosts;
    return n;
}

} // namespace shrimp::sim
