/**
 * @file
 * Wall-clock time-budget profiler for the sharded engine.
 *
 * Answers the question the ROADMAP's scaling work is blocked on: where
 * does parallel wall time actually go? Each worker's window lifecycle
 * is split into five buckets —
 *
 *   execute       running a window's events (>=1 event fired)
 *   idle          an execute phase that fired zero events on this
 *                 shard (the wall cost of conservative window skew)
 *   barrier_plan  waiting at the round barrier (includes the one
 *                 thread that runs planRound in the completion). The
 *                 engine fuses plan and sync into this single
 *                 barrier, so barrier_sync is retained only for
 *                 schema stability and reads ~0.
 *   barrier_sync  legacy post-execute sync barrier (see above)
 *   drain         draining cross-shard mailboxes into the queues
 *
 * — accumulated lock-free in one cache-line-aligned slot per worker
 * (worker == shard in the current engine). The engine notes phase
 * boundaries with a single chained clock read per transition, so the
 * buckets tile the worker's wall time gap-free; the accounted
 * fraction (bucket sum / shards x run wall) is itself a health check
 * the bench asserts at >= 95%.
 *
 * Occupancy counters ride along: events executed per window (an idle
 * window is one that executed none), messages drained per barrier and
 * the max drain batch, skipped-window runs noted by the planner when
 * consecutive windows are not adjacent in sim time, a log2 histogram
 * of planned per-shard window widths (bucket 0 = rounds where the
 * shard had nothing to run — the direct readout of how much the
 * promise-based horizons widen windows beyond the static lookahead),
 * and the engine's adaptive-barrier outcomes (waits resolved by
 * spinning vs. futex sleeps).
 *
 * The profiler only observes: attaching it changes no sim-visible
 * state, so digests and sim-time metrics are identical with and
 * without --profile (the overhead gate in run_checks.sh bounds the
 * wall-clock cost instead).
 *
 * When a TraceSink is attached, every noted phase also becomes a
 * wall-clock slice on the worker's Perfetto track.
 */

#ifndef SHRIMP_SIM_PROFILER_HH
#define SHRIMP_SIM_PROFILER_HH

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <ostream>
#include <vector>

#include "sim/types.hh"

namespace shrimp::sim
{

class JsonWriter;
class TraceSink;

class ShardProfiler
{
  public:
    /** Per-worker bucket totals (nanoseconds) and occupancy. */
    struct Slot
    {
        std::uint64_t executeNs = 0;
        std::uint64_t idleNs = 0;
        std::uint64_t planNs = 0;
        std::uint64_t syncNs = 0;
        std::uint64_t drainNs = 0;
        std::uint64_t windows = 0;      ///< execute phases entered
        std::uint64_t idleWindows = 0;  ///< ... that fired no events
        std::uint64_t events = 0;       ///< events fired in windows
        std::uint64_t drained = 0;      ///< cross-shard msgs drained
        std::uint64_t maxDrainBatch = 0;

        std::uint64_t
        accountedNs() const
        {
            return executeNs + idleNs + planNs + syncNs + drainNs;
        }
    };

    explicit ShardProfiler(unsigned shards);

    ShardProfiler(const ShardProfiler &) = delete;
    ShardProfiler &operator=(const ShardProfiler &) = delete;

    unsigned shards() const { return unsigned(slots_.size()); }

    /** Nanoseconds since beginRun (monotonic). */
    std::uint64_t
    nowNs() const
    {
        return std::uint64_t(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - origin_)
                .count());
    }

    /**
     * Start the measured region: zero the slots and the clock. The
     * engine only records while running, so setup phases outside
     * beginRun/endRun never pollute the budget.
     */
    void beginRun();

    /** End the measured region, fixing the run's wall time. */
    void endRun();

    bool running() const { return running_; }

    /** Run wall time (beginRun -> endRun), nanoseconds. */
    std::uint64_t wallNs() const { return wallNs_; }

    // ------------------------------------------ engine note points
    // All notes take profiler-relative timestamps from nowNs() so the
    // caller can chain one clock read across phase boundaries. Each
    // slot is written only by its own worker thread between the
    // barriers; the joins at the end of runWindows publish the slots
    // to the reader.
    void notePlan(unsigned worker, std::uint64_t t0, std::uint64_t t1);
    void noteExecute(unsigned worker, std::uint64_t t0, std::uint64_t t1,
                     std::uint64_t events_fired);
    void noteSync(unsigned worker, std::uint64_t t0, std::uint64_t t1);
    void noteDrain(unsigned worker, std::uint64_t t0, std::uint64_t t1,
                   std::uint64_t drained);

    /** Planner saw a sim-time gap between consecutive windows (the
     *  next event lies beyond the previous window's end + 1). Called
     *  from the barrier completion: serialized, but possibly from a
     *  different thread each window, hence the relaxed atomic. */
    void
    noteWindowSkip()
    {
        skippedRuns_.fetch_add(1, std::memory_order_relaxed);
    }

    /** Log2 window-width histogram buckets: [0] counts rounds where a
     *  shard had nothing to run; bucket k >= 1 counts planned widths
     *  in [2^(k-1), 2^k) ticks; the last bucket absorbs the rest. */
    static constexpr unsigned widthBuckets = 65;

    /** Planner computed a per-shard window of @p width ticks (0 =
     *  the shard was idle this round). Called from the barrier
     *  completion — serialized, but possibly from a different thread
     *  each round, hence the relaxed atomics. */
    void
    noteWindowWidth(Tick width)
    {
        const unsigned b =
            width == 0
                ? 0u
                : std::min<unsigned>(widthBuckets - 1,
                                     std::bit_width(std::uint64_t(width)));
        widthHist_[b].fetch_add(1, std::memory_order_relaxed);
    }

    /** Accumulate the engine's adaptive-barrier outcomes for a run
     *  (called once per runWindows, after the joins). */
    void
    addBarrierWaits(std::uint64_t spin_wakes, std::uint64_t futex_sleeps)
    {
        barSpinWakes_.fetch_add(spin_wakes, std::memory_order_relaxed);
        barSleeps_.fetch_add(futex_sleeps, std::memory_order_relaxed);
    }

    /** Mirror every noted phase into @p sink as wall slices. */
    void setTraceSink(TraceSink *sink) { sink_ = sink; }

    // ------------------------------------------------------ results
    const Slot &slot(unsigned worker) const { return slots_[worker].s; }

    /** Sum of all workers' buckets and occupancy counters. */
    Slot totals() const;

    std::uint64_t
    skippedWindowRuns() const
    {
        return skippedRuns_.load(std::memory_order_relaxed);
    }

    /** Count in window-width histogram bucket @p i (see widthBuckets). */
    std::uint64_t
    windowWidthBucket(unsigned i) const
    {
        return widthHist_[i].load(std::memory_order_relaxed);
    }

    /** Barrier waits resolved while spinning, this run. */
    std::uint64_t
    barrierSpinWakes() const
    {
        return barSpinWakes_.load(std::memory_order_relaxed);
    }

    /** Barrier waits that fell back to a futex sleep, this run. */
    std::uint64_t
    barrierFutexSleeps() const
    {
        return barSleeps_.load(std::memory_order_relaxed);
    }

    /**
     * Fraction of total parallel wall time (shards x wallNs) the five
     * buckets account for; the profiler's own self-check. 0 when the
     * run had no measured wall time.
     */
    double accountedFraction() const;

    /** Human-readable per-shard time-budget table. */
    void writeTable(std::ostream &os) const;

    /** The bench-JSON `profile` block (one complete JSON object). */
    void dumpJson(JsonWriter &w) const;

  private:
    /** Cache-line isolation: each worker owns one padded slot. */
    struct alignas(64) PaddedSlot
    {
        Slot s;
    };

    std::vector<PaddedSlot> slots_;
    std::chrono::steady_clock::time_point origin_;
    std::uint64_t wallNs_ = 0;
    bool running_ = false;
    std::atomic<std::uint64_t> skippedRuns_{0};
    std::array<std::atomic<std::uint64_t>, widthBuckets> widthHist_{};
    std::atomic<std::uint64_t> barSpinWakes_{0};
    std::atomic<std::uint64_t> barSleeps_{0};
    TraceSink *sink_ = nullptr;
};

} // namespace shrimp::sim

#endif // SHRIMP_SIM_PROFILER_HH
