#include "sim/logging.hh"

#include <cstdio>

namespace shrimp
{

namespace
{
bool verboseFlag = false;
}

void
setLogVerbose(bool verbose)
{
    verboseFlag = verbose;
}

bool
logVerbose()
{
    return verboseFlag;
}

namespace logging_detail
{

void
emit(const char *level, const std::string &msg)
{
    const bool always =
        level[0] == 'p' || level[0] == 'f'; // panic / fatal
    if (!always && !verboseFlag)
        return;
    std::fprintf(stderr, "%s: %s\n", level, msg.c_str());
}

} // namespace logging_detail
} // namespace shrimp
