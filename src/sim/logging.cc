#include "sim/logging.hh"

#include <cstdio>
#include <iostream>

#include "sim/flight_recorder.hh"

namespace shrimp
{

namespace
{
// shrimp-lint: shard-safe(set once at startup from the CLI, read-only while workers run)
bool verboseFlag = false;
}

void
setLogVerbose(bool verbose)
{
    verboseFlag = verbose;
}

bool
logVerbose()
{
    return verboseFlag;
}

namespace logging_detail
{

void
emit(const char *level, const std::string &msg)
{
    const bool always =
        level[0] == 'p' || level[0] == 'f'; // panic / fatal
    if (!always && !verboseFlag)
        return;
    std::fprintf(stderr, "%s: %s\n", level, msg.c_str());
    // A panic is a simulator bug: give the post-mortem its context
    // before the exception unwinds the evidence (opt-in; tests that
    // assert on panics keep their output clean).
    if (level[0] == 'p' && sim::FlightRecorder::dumpOnPanic())
        sim::FlightRecorder::dumpAll(std::cerr);
}

} // namespace logging_detail
} // namespace shrimp
