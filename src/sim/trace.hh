/**
 * @file
 * A gem5-flavoured debug-trace facility: per-category trace points
 * that cost one branch when disabled and emit
 * `tick: component: message` lines when enabled.
 *
 * Like gem5's DTRACE, the enable mask and sink are global to the
 * process (a simulator runs one experiment at a time); tests that
 * capture traces set the sink to a stringstream and restore it.
 */

#ifndef SHRIMP_SIM_TRACE_HH
#define SHRIMP_SIM_TRACE_HH

#include <ostream>
#include <sstream>
#include <string>

#include "sim/types.hh"

namespace shrimp::trace
{

/** Trace categories, one bit each. */
enum class Category : unsigned
{
    Dma = 0,
    Vm,
    Os,
    Ni,
    Bus,
    Xfer,
    NetFault,
    NumCategories,
};

/** Human-readable category tag. */
const char *categoryName(Category c);

/** Enable/disable one category. */
void enable(Category c);
void disable(Category c);
void disableAll();

/** Is this category currently traced (and a sink installed)? */
bool enabled(Category c);

/** The raw enable bitmask (for save/restore). */
unsigned enabledMask();
void setEnabledMask(unsigned mask);

/**
 * Enable categories from a comma-separated spec ("dma,xfer" or "all")
 * and install the sink. Returns false (leaving state untouched) if the
 * spec names an unknown category. Used by SHRIMP_TRACE env parsing and
 * the bench `--trace=` option.
 */
bool applySpec(const std::string &spec, std::ostream *os);

/** Install the output stream (nullptr silences everything). */
void setSink(std::ostream *os);
std::ostream *sink();

namespace detail
{

void emitPrefix(std::ostream &os, Tick now, Category c);

inline void
put(std::ostream &)
{
}

template <typename T, typename... Rest>
void
put(std::ostream &os, const T &first, const Rest &...rest)
{
    os << first;
    put(os, rest...);
}

} // namespace detail

/** Emit one trace line if the category is enabled. */
template <typename... Args>
void
log(Tick now, Category c, const Args &...args)
{
    if (!enabled(c))
        return;
    std::ostream &os = *sink();
    detail::emitPrefix(os, now, c);
    detail::put(os, args...);
    os << '\n';
}

/**
 * RAII capture helper for tests: redirects the sink to an internal
 * stringstream and enables the given categories for its lifetime.
 * Nestable: the destructor restores both the previous sink and the
 * previous enable mask.
 */
class Capture
{
  public:
    explicit Capture(std::initializer_list<Category> cats)
    {
        prevSink_ = sink();
        prevMask_ = enabledMask();
        setSink(&buf_);
        disableAll();
        for (auto c : cats)
            enable(c);
    }

    ~Capture()
    {
        setEnabledMask(prevMask_);
        setSink(prevSink_);
    }

    Capture(const Capture &) = delete;
    Capture &operator=(const Capture &) = delete;

    std::string text() const { return buf_.str(); }

    bool
    contains(const std::string &needle) const
    {
        return buf_.str().find(needle) != std::string::npos;
    }

  private:
    std::ostringstream buf_;
    std::ostream *prevSink_ = nullptr;
    unsigned prevMask_ = 0;
};

} // namespace shrimp::trace

#endif // SHRIMP_SIM_TRACE_HH
