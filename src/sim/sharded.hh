/**
 * @file
 * The sharded simulation core: one EventQueue per node, executed in
 * conservative time windows (Chandy-Misra-style) by a pool of worker
 * threads, one shard of nodes per worker.
 *
 * The synchronization horizon is the interconnect's minimum cross-node
 * latency: any event one node schedules on another is at least
 * `lookahead` ticks in the future (the backplane hop latency — see
 * DESIGN.md §10 for the derivation from MachineParams). Windows are
 * [start, start + lookahead - 1], so everything a node posts from
 * inside a window lands strictly in a later window and nodes can
 * execute a window's events concurrently with no intra-window
 * communication at all.
 *
 * Cross-node messages travel through per-(source shard, destination
 * shard) SPSC mailboxes, drained at the window barrier into the
 * destination queues in a canonical order — stable-sorted by
 * (tick, priority, source node), with the stable sort preserving each
 * source's FIFO order. That rule makes the drained insertion order —
 * and with it every queue's (tick, priority, sequence) execution
 * order — independent of the shard count, which is what makes
 * `--shards=1` and `--shards=N` bit-identical in sim time.
 *
 * Barriers are also where the world is quiescent, so the invariant
 * auditor's hook and the stop predicate run in the barrier completion
 * step, on exactly one thread, with every worker parked.
 */

#ifndef SHRIMP_SIM_SHARDED_HH
#define SHRIMP_SIM_SHARDED_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/spsc.hh"
#include "sim/types.hh"

namespace shrimp::sim
{

class ShardProfiler;

/**
 * Where a component posts an event destined for (possibly) another
 * node. The sharded engine implements this with mailboxes; components
 * constructed without a router fall back to scheduling on their own
 * queue, which is exactly the legacy single-queue behaviour.
 */
class NodeRouter
{
  public:
    virtual ~NodeRouter() = default;

    /**
     * Schedule @p fn at absolute tick @p when on node @p dst's queue.
     * Must be called from the shard currently executing @p src, and —
     * when src != dst — with `when >= now(src) + lookahead` so the
     * event cannot land inside the current window.
     */
    virtual void post(NodeId src, NodeId dst, Tick when,
                      const char *name, EventCallback fn,
                      EventPriority prio) = 0;
};

/**
 * A spinning barrier with a completion callback: the last thread to
 * arrive runs the completion (with every other participant parked),
 * then releases the phase. Spins briefly and falls back to
 * atomic::wait, keeping the common microsecond-scale window
 * turnaround off the futex path.
 */
class SpinBarrier
{
  public:
    explicit SpinBarrier(unsigned parties,
                         std::function<void()> completion = {})
        : parties_(parties), completion_(std::move(completion))
    {}

    void
    arriveAndWait()
    {
        const std::uint64_t phase =
            phase_.load(std::memory_order_acquire);
        if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1
                == parties_) {
            arrived_.store(0, std::memory_order_relaxed);
            if (completion_)
                completion_();
            phase_.store(phase + 1, std::memory_order_release);
            phase_.notify_all();
            return;
        }
        for (int spin = 0; spin < 4096; ++spin) {
            if (phase_.load(std::memory_order_acquire) != phase)
                return;
        }
        while (phase_.load(std::memory_order_acquire) == phase)
            phase_.wait(phase, std::memory_order_acquire);
    }

  private:
    const unsigned parties_;
    std::function<void()> completion_;
    std::atomic<unsigned> arrived_{0};
    std::atomic<std::uint64_t> phase_{0};
};

/**
 * The engine: per-node queues, shard-of-nodes worker partitioning,
 * mailboxes, and the windowed run loop.
 *
 * Two run modes:
 *  - run()/runUntil(): the parallel data-phase loop. Within a window
 *    each node's queue executes independently, so node state must not
 *    be read across nodes except through post(). The stop predicate
 *    is evaluated at window barriers.
 *  - runSetup(): a sequential phase for workload setup that *does*
 *    rendezvous through host-shared state (e.g. msg::Channel's
 *    export/import flags). All queues are interleaved in one global
 *    canonical (tick, priority, node) order on the calling thread, so
 *    cross-node host reads are both race-free and shard-count
 *    independent; the predicate is checked after every event.
 */
class ShardedEngine : public NodeRouter
{
  public:
    ShardedEngine(unsigned nodes, unsigned shards, Tick lookahead);
    ~ShardedEngine() override;

    ShardedEngine(const ShardedEngine &) = delete;
    ShardedEngine &operator=(const ShardedEngine &) = delete;

    unsigned nodeCount() const { return unsigned(queues_.size()); }
    unsigned shardCount() const { return shards_; }
    unsigned shardOf(NodeId node) const { return node % shards_; }
    Tick lookahead() const { return lookahead_; }

    EventQueue &
    queue(NodeId node)
    {
        return *queues_.at(node);
    }

    // --------------------------------------------- NodeRouter
    void post(NodeId src, NodeId dst, Tick when, const char *name,
              EventCallback fn, EventPriority prio) override;

    // --------------------------------------------- run loop
    /** Parallel windowed run until every queue drains or @p limit. */
    Tick run(Tick limit = maxTick);

    /**
     * Parallel windowed run; @p pred is evaluated in the barrier
     * completion (all workers parked) and stops the run when true.
     */
    Tick runUntil(const std::function<bool()> &pred,
                  Tick limit = maxTick);

    /** Sequential canonical-order run (see class comment). */
    Tick runSetup(const std::function<bool()> &pred,
                  Tick limit = maxTick);

    /**
     * Invoked in the barrier completion step before each window (and
     * once before the run finishes), where every shard is quiescent:
     * the natural audit point.
     */
    void setBarrierHook(std::function<void()> hook)
    {
        barrierHook_ = std::move(hook);
    }

    /**
     * Attach a time-budget profiler. Workers note their window
     * lifecycle phases into it while it is running() (see
     * profiler.hh); detach with nullptr. Observational only — the
     * sim-visible execution is identical with or without it.
     */
    void setProfiler(ShardProfiler *profiler) { profiler_ = profiler; }

    // --------------------------------------------- merged views
    /** Max of the per-node clocks (the global sim time). */
    Tick now() const;

    /** Sum of per-queue executed-event counts. */
    std::uint64_t eventsExecuted() const;

    /** Sum of per-queue pending events (mailboxes are drained and
     *  therefore empty whenever the engine is not running). */
    std::uint64_t pendingEvents() const;

    /** Cross-node messages routed through mailboxes. */
    std::uint64_t crossPosts() const;

    /** Conservative windows executed (both run modes). */
    std::uint64_t windows() const { return windows_; }

  private:
    struct CrossMsg
    {
        Tick when = 0;
        std::int32_t prio = 0;
        NodeId src = 0;
        NodeId dst = 0;
        const char *name = nullptr;
        EventCallback fn;
    };

    /**
     * One (source shard -> destination shard) channel. The ring is
     * the lock-free fast path; when it fills, the producer spills to
     * a plain vector that the consumer only reads after a barrier
     * (which provides the happens-before edge). `posted` is owned by
     * the producer and summed on demand, so the cross-post counter
     * needs no shared atomics.
     */
    struct Mailbox
    {
        SpscRing<CrossMsg> ring{1024};
        std::vector<CrossMsg> spill;
        std::uint64_t posted = 0;
    };

    struct Control
    {
        Tick limit = maxTick;
        const std::function<bool()> *pred = nullptr;
        Tick windowEnd = 0;
        bool done = false;
        /** True once a first window has been planned this run (the
         *  planner uses windowEnd of the previous window to detect
         *  skipped-ahead gaps for the profiler). */
        bool haveWindow = false;
        std::exception_ptr error;
    };

    Mailbox &
    box(unsigned src_shard, unsigned dst_shard)
    {
        return *boxes_[src_shard * shards_ + dst_shard];
    }

    /** Earliest pending event tick across all queues. */
    Tick minNextEvent();

    /** Windows are inclusive: [start, start + lookahead - 1]. */
    Tick windowEndFor(Tick start, Tick limit) const;

    /** Pop + spill-drain every mailbox bound for @p dst_shard and
     *  schedule the messages in canonical order.
     *  @return Number of messages delivered. */
    std::size_t drainShard(unsigned dst_shard);

    /** Sequential full drain (entry to either run mode). */
    void drainAll();

    /** Barrier completion: audit hook, predicate, next window. */
    void planWindow();

    void workerBody(unsigned worker, unsigned workers);
    void noteError();

    Tick runWindows(const std::function<bool()> *pred, Tick limit);

    const unsigned shards_;
    const Tick lookahead_;
    std::vector<std::unique_ptr<EventQueue>> queues_;
    /** shardNodes_[s]: the nodes shard s executes, ascending. */
    std::vector<std::vector<NodeId>> shardNodes_;
    std::vector<std::unique_ptr<Mailbox>> boxes_;
    /** Per-destination-shard drain scratch (reused across windows). */
    std::vector<std::vector<CrossMsg>> drainBuf_;

    std::function<void()> barrierHook_;
    ShardProfiler *profiler_ = nullptr;
    std::uint64_t windows_ = 0;

    Control ctrl_;
    std::mutex errMu_;
    std::unique_ptr<SpinBarrier> planBarrier_;
    std::unique_ptr<SpinBarrier> syncBarrier_;
};

} // namespace shrimp::sim

#endif // SHRIMP_SIM_SHARDED_HH
