/**
 * @file
 * The sharded simulation core: one EventQueue per node, executed in
 * distance-aware conservative time windows (Chandy-Misra-style) by a
 * pool of worker threads, one shard of nodes per worker.
 *
 * Synchronization is driven by two inputs instead of one global
 * horizon:
 *
 *  - A per-(source shard, destination shard) *lookahead matrix*,
 *    derived from the interconnect's minimum real delivery latency
 *    (`Interconnect::minDeliveryLatency`: header serialization on the
 *    injection link plus the routing hop — see DESIGN.md §10). Any
 *    event node s schedules on node d lands at least
 *    `pairLookahead(shard(s), shard(d))` ticks past s's clock.
 *
 *  - Per-round *promises*: at every barrier each shard publishes its
 *    earliest possible next event (its queues' minimum pending tick,
 *    plus a per-destination minimum over the cross-posts it staged
 *    this round). The planner computes each shard's safe horizon as
 *
 *        H[d] = min over s != d of (nextEvent[s] + pairLookahead[s][d])
 *
 *    and shard d executes the inclusive window [.., H[d] - 1]. A
 *    shard whose peers are idle or far in the future runs a huge
 *    window — up to the limit in one hop — instead of lock-stepping
 *    at the static lookahead like the original global-window scheme.
 *
 * One barrier per round: the plan runs in the barrier's completion
 * step (every worker parked), and each worker then drains its inbox
 * and executes its window — there is no separate post-execute sync
 * barrier. A shard holding several nodes executes them with a merged
 * (tick, priority, node) min-selection loop, so same-shard cross-node
 * posts are delivered directly into the destination queue without
 * clamping anyone's horizon.
 *
 * Cross-shard messages travel through per-(source shard, destination
 * shard) SPSC mailboxes and carry a canonical *stamp* allocated from
 * the originating node's queue at post() time
 * (see EventQueue::allocStamp). Queues order ties by that stamp, so
 * the execution order at equal (tick, priority) is (source node,
 * per-source order) no matter when a message was drained — which is
 * what makes `--shards=1` and `--shards=N` bit-identical in sim time.
 *
 * Barriers are also where the world is quiescent, so the invariant
 * auditor's hook and the stop predicate run in the barrier completion
 * step, on exactly one thread, with every worker parked.
 */

#ifndef SHRIMP_SIM_SHARDED_HH
#define SHRIMP_SIM_SHARDED_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/spsc.hh"
#include "sim/types.hh"

namespace shrimp::sim
{

class ShardProfiler;

/**
 * Where a component posts an event destined for (possibly) another
 * node. The sharded engine implements this with mailboxes; components
 * constructed without a router fall back to scheduling on their own
 * queue, which is exactly the legacy single-queue behaviour.
 */
class NodeRouter
{
  public:
    virtual ~NodeRouter() = default;

    /**
     * Schedule @p fn at absolute tick @p when on node @p dst's queue.
     * Must be called from the shard currently executing @p src, and —
     * when src != dst — with
     * `when >= now(src) + pairLookahead(shard(src), shard(dst))` so
     * the event cannot land inside any window the destination may be
     * executing.
     */
    virtual void post(NodeId src, NodeId dst, Tick when,
                      const char *name, EventCallback fn,
                      EventPriority prio) = 0;
};

/**
 * A spinning barrier with a completion callback: the last thread to
 * arrive runs the completion (with every other participant parked),
 * then releases the phase.
 *
 * The spin budget adapts: a waiter that spins out and has to
 * futex-sleep halves the budget (down to spinFloor), one that is
 * released while still spinning nudges it back up (to spinCap), so a
 * run whose rounds turn over in microseconds stays off the futex
 * while an oversubscribed host stops burning cycles. Both outcomes
 * are counted — the profiler exports them so barrier behaviour is
 * observable, not guessed.
 */
class SpinBarrier
{
  public:
    static constexpr int spinCap = 4096;
    static constexpr int spinFloor = 64;

    explicit SpinBarrier(unsigned parties,
                         std::function<void()> completion = {})
        : parties_(parties), completion_(std::move(completion))
    {}

    void
    arriveAndWait()
    {
        const std::uint64_t phase =
            phase_.load(std::memory_order_acquire);
        if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1
                == parties_) {
            arrived_.store(0, std::memory_order_relaxed);
            if (completion_)
                completion_();
            phase_.store(phase + 1, std::memory_order_release);
            phase_.notify_all();
            return;
        }
        const int budget = spinBudget_.load(std::memory_order_relaxed);
        for (int spin = 0; spin < budget; ++spin) {
            if (phase_.load(std::memory_order_acquire) != phase) {
                spinWakes_.fetch_add(1, std::memory_order_relaxed);
                if (budget < spinCap) {
                    spinBudget_.store(
                        std::min(spinCap, budget + budget / 4 + 1),
                        std::memory_order_relaxed);
                }
                return;
            }
        }
        spinBudget_.store(std::max(spinFloor, budget / 2),
                          std::memory_order_relaxed);
        futexSleeps_.fetch_add(1, std::memory_order_relaxed);
        while (phase_.load(std::memory_order_acquire) == phase)
            phase_.wait(phase, std::memory_order_acquire);
    }

    /** Waits released while still spinning (no futex involved). */
    std::uint64_t
    spinWakes() const
    {
        return spinWakes_.load(std::memory_order_relaxed);
    }

    /** Waits that exhausted the spin budget and slept on the futex. */
    std::uint64_t
    futexSleeps() const
    {
        return futexSleeps_.load(std::memory_order_relaxed);
    }

    /** Current adaptive spin budget (observability/tests). */
    int
    spinBudget() const
    {
        return spinBudget_.load(std::memory_order_relaxed);
    }

  private:
    const unsigned parties_;
    std::function<void()> completion_;
    std::atomic<unsigned> arrived_{0};
    std::atomic<std::uint64_t> phase_{0};
    std::atomic<int> spinBudget_{spinCap};
    std::atomic<std::uint64_t> spinWakes_{0};
    std::atomic<std::uint64_t> futexSleeps_{0};
};

/**
 * The engine: per-node queues, shard-of-nodes worker partitioning,
 * mailboxes, and the windowed run loop.
 *
 * Two run modes:
 *  - run()/runUntil(): the parallel data-phase loop. Within a window
 *    each node's queue executes independently, so node state must not
 *    be read across nodes except through post(). The stop predicate
 *    is evaluated at window barriers — note that a shard decoupled
 *    from all cross-traffic may execute all the way to the limit in
 *    one window, so the predicate's granularity is the window, not
 *    the event.
 *  - runSetup(): a sequential phase for workload setup that *does*
 *    rendezvous through host-shared state (e.g. msg::Channel's
 *    export/import flags). All queues are interleaved in one global
 *    canonical (tick, priority, node) order on the calling thread, so
 *    cross-node host reads are both race-free and shard-count
 *    independent; the predicate is checked after every event.
 */
class ShardedEngine : public NodeRouter
{
  public:
    /** Minimum delivery latency from node @p src to node @p dst. */
    using PairLookahead = std::function<Tick(NodeId src, NodeId dst)>;

    /** Uniform lookahead (floored at 1 tick) between any node pair. */
    ShardedEngine(unsigned nodes, unsigned shards, Tick lookahead);

    /**
     * Distance-aware lookahead: @p la is queried once per ordered
     * node pair at construction and folded into a per-(src shard,
     * dst shard) matrix of minima.
     */
    ShardedEngine(unsigned nodes, unsigned shards,
                  const PairLookahead &la);

    ~ShardedEngine() override;

    ShardedEngine(const ShardedEngine &) = delete;
    ShardedEngine &operator=(const ShardedEngine &) = delete;

    unsigned nodeCount() const { return unsigned(queues_.size()); }
    unsigned shardCount() const { return shards_; }
    unsigned shardOf(NodeId node) const { return node % shards_; }

    /** The smallest entry of the lookahead matrix (also the uniform
     *  window width runSetup uses). */
    Tick lookahead() const { return minLookahead_; }

    /** The (src shard, dst shard) lookahead floor: no post from a
     *  node of @p src_shard may land on a node of @p dst_shard less
     *  than this far past the poster's clock. */
    Tick
    pairLookahead(unsigned src_shard, unsigned dst_shard) const
    {
        return pairL_[std::size_t(src_shard) * shards_ + dst_shard];
    }

    EventQueue &
    queue(NodeId node)
    {
        return *queues_.at(node);
    }

    // --------------------------------------------- NodeRouter
    void post(NodeId src, NodeId dst, Tick when, const char *name,
              EventCallback fn, EventPriority prio) override;

    // --------------------------------------------- run loop
    /** Parallel windowed run until every queue drains or @p limit. */
    Tick run(Tick limit = maxTick);

    /**
     * Parallel windowed run; @p pred is evaluated in the barrier
     * completion (all workers parked) and stops the run when true.
     */
    Tick runUntil(const std::function<bool()> &pred,
                  Tick limit = maxTick);

    /** Sequential canonical-order run (see class comment). */
    Tick runSetup(const std::function<bool()> &pred,
                  Tick limit = maxTick);

    /**
     * Invoked in the barrier completion step before each window (and
     * once before the run finishes), where every shard is quiescent:
     * the natural audit point.
     */
    void setBarrierHook(std::function<void()> hook)
    {
        barrierHook_ = std::move(hook);
    }

    /**
     * Attach a time-budget profiler. Workers note their window
     * lifecycle phases into it while it is running() (see
     * profiler.hh); detach with nullptr. Observational only — the
     * sim-visible execution is identical with or without it.
     */
    void setProfiler(ShardProfiler *profiler) { profiler_ = profiler; }

    // --------------------------------------------- merged views
    /**
     * Global sim time: the max over per-node *last fired* ticks. The
     * fired tick — unlike EventQueue::now(), which run(limit) parks
     * at the window end even when the stretch was empty — does not
     * depend on how windows were shaped, so this value is canonical
     * across shard counts.
     */
    Tick now() const;

    /** Sum of per-queue executed-event counts. */
    std::uint64_t eventsExecuted() const;

    /**
     * Pending events: the per-queue counts plus any cross-shard
     * messages still staged in mailboxes (posted but not yet drained
     * — a run stopped at a predicate can leave some staged; they are
     * delivered at the next run's entry). Exact when the engine is
     * not running.
     */
    std::uint64_t pendingEvents() const;

    /** Cross-node posts (src != dst): mailbox messages plus
     *  same-shard direct deliveries. Shard-count invariant. */
    std::uint64_t crossPosts() const;

    /** Conservative windows executed (both run modes). */
    std::uint64_t windows() const { return windows_; }

    /** Barrier waits resolved by spinning / by futex sleep, summed
     *  over all runs since construction. */
    std::uint64_t barrierSpinWakes() const { return barSpinWakes_; }
    std::uint64_t barrierFutexSleeps() const { return barSleeps_; }

  private:
    struct CrossMsg
    {
        Tick when = 0;
        std::int32_t prio = 0;
        /** Canonical tie-break key, allocated on the source queue at
         *  post() time (EventQueue::allocStamp). */
        std::uint64_t stamp = 0;
        NodeId src = 0;
        NodeId dst = 0;
        const char *name = nullptr;
        EventCallback fn;
    };

    /**
     * One (source shard -> destination shard) channel. The ring is
     * the lock-free fast path. Overflow spills into one of two plain
     * vectors, selected by the round parity: the producer writes
     * spill[parity] while the consumer drains spill[parity ^ 1] —
     * always the previous round's overflow, published by the barrier
     * in between — so the fused-barrier round (drain concurrent with
     * the producers' execution) never has two threads on one vector.
     * `posted` is owned by the producer, `delivered` by the consumer;
     * both are summed on demand when the world is quiescent.
     */
    struct Mailbox
    {
        SpscRing<CrossMsg> ring{1024};
        std::vector<CrossMsg> spill[2];
        std::uint64_t posted = 0;
        std::uint64_t delivered = 0;
    };

    /**
     * Per-shard working state, one cache line set per shard (the
     * alignment keeps one shard's hot fields — cached keys, promise
     * row, counters — off every other shard's lines; the window loop
     * touches these every event).
     *
     * Ownership: the shard's own worker writes everything during its
     * round; `windowEnd` is written by the barrier completion (all
     * workers parked) and read by the owner; `localNext` and
     * `postedMin` are written by the owner and read by the completion.
     * The barrier provides the happens-before edges in both
     * directions, so none of it needs atomics.
     */
    struct alignas(64) ShardState
    {
        /** Earliest pending tick across this shard's queues,
         *  published at the end of each round. */
        Tick localNext = maxTick;
        /** This round's inclusive execution horizon (completion). */
        Tick windowEnd = 0;
        /** postedMin[d]: earliest cross-post staged toward shard d
         *  this round — the shard's promise to its peers. */
        std::vector<Tick> postedMin;
        /** The nodes this shard executes, ascending. */
        std::vector<NodeId> nodes;
        /** queues[i] == engine queue of nodes[i]. */
        std::vector<EventQueue *> queues;
        /** Cached (tick, prio) next-event keys for the merged
         *  min-selection loop; post() lowers the destination's entry
         *  on same-shard direct delivery. */
        std::vector<std::pair<Tick, std::int32_t>> keys;
        /** Drain scratch, reused (capacity persists) across rounds. */
        std::vector<CrossMsg> drainBuf;
        /** Same-shard cross-node posts delivered directly. */
        std::uint64_t directPosts = 0;
    };

    struct Control
    {
        Tick limit = maxTick;
        const std::function<bool()> *pred = nullptr;
        bool done = false;
        /** Which spill vector producers write this round. */
        unsigned parity = 0;
        /** True once a first window has been planned this run. */
        bool haveWindow = false;
        /** Max shard horizon of the previous round (skip detection). */
        Tick prevMaxEnd = 0;
        std::exception_ptr error;
    };

    Mailbox &
    box(unsigned src_shard, unsigned dst_shard)
    {
        return *boxes_[src_shard * shards_ + dst_shard];
    }

    /** Shared constructor body. */
    void init(unsigned nodes, const PairLookahead &la);

    /** Uniform runSetup windows: [start, start + lookahead() - 1]. */
    Tick windowEndFor(Tick start, Tick limit) const;

    /**
     * Pop every mailbox bound for @p dst_shard — the ring plus the
     * previous round's spill (both spills when @p both, the
     * sequential entry drain) — and schedule the messages,
     * stable-sorted by (tick, priority, stamp), into the destination
     * queues. @return Number of messages delivered.
     */
    std::size_t drainShard(unsigned dst_shard, bool both);

    /** Sequential full drain (entry to either run mode). */
    void drainAll();

    /** Barrier completion: audit hook, predicate, promise-based
     *  per-shard horizons for the next round. */
    void planRound();

    /** Execute shard @p s's queues up to its windowEnd: the single
     *  queue directly, several via the merged min-selection loop. */
    void executeShard(unsigned s);

    void workerBody(unsigned worker);
    void noteError();

    Tick runWindows(const std::function<bool()> *pred, Tick limit);

    const unsigned shards_;
    /** Min of pairL_ (runSetup window width; lookahead() accessor). */
    Tick minLookahead_ = 1;
    /** Shard-pair lookahead matrix, row-major [src * shards_ + dst]:
     *  min over the member node pairs of the per-node-pair floor. */
    std::vector<Tick> pairL_;
    std::vector<std::unique_ptr<EventQueue>> queues_;
    /** Index of each node within its shard's queues/keys vectors. */
    std::vector<std::uint32_t> nodeShardIdx_;
    std::vector<ShardState> shardStates_;
    std::vector<std::unique_ptr<Mailbox>> boxes_;
    /** Completion scratch: per-shard earliest possible next event. */
    std::vector<Tick> nextEvent_;

    std::function<void()> barrierHook_;
    ShardProfiler *profiler_ = nullptr;
    std::uint64_t windows_ = 0;
    std::uint64_t barSpinWakes_ = 0;
    std::uint64_t barSleeps_ = 0;

    Control ctrl_;
    std::mutex errMu_;
    std::unique_ptr<SpinBarrier> barrier_;
};

} // namespace shrimp::sim

#endif // SHRIMP_SIM_SHARDED_HH
