/**
 * @file
 * A bounded flight recorder of recently fired sim events.
 *
 * Every EventQueue owns one FlightRecorder; fire() records (tick,
 * label, priority) into a fixed 128-entry ring — four plain stores and
 * one relaxed atomic load per event, cheap enough to stay on by
 * default. When an invariant gate trips (panic/assert, audit
 * violation, model-check counterexample, bench digest mismatch), the
 * process can dump every recorder's recent history and turn a bare
 * exit code into a post-mortem: the last ~128 events each node
 * executed, in order.
 *
 * Recorders register themselves in a process-global registry. Because
 * post-mortems often outlive the System that produced them (the bench
 * detects a digest mismatch after its runRing helper has destroyed
 * the System), a destroyed recorder snapshots its ring into a bounded
 * graveyard (newest 64 snapshots) that dumpAll() also prints.
 *
 * Thread-safety: record() is called only by the shard thread that owns
 * the queue. dumpAll() takes the registry mutex, but reading a live
 * ring while its owner is still executing is intentionally racy — the
 * dump paths run on failure, when the interesting threads have either
 * thrown or joined, and a best-effort tail beats no tail. dumpOnPanic
 * defaults to off so tests that assert on panics stay quiet; the CLI
 * front-ends opt in.
 */

#ifndef SHRIMP_SIM_FLIGHT_RECORDER_HH
#define SHRIMP_SIM_FLIGHT_RECORDER_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>

#include "sim/types.hh"

namespace shrimp::sim
{

class FlightRecorder
{
  public:
    static constexpr std::uint64_t capacity = 128;

    FlightRecorder();
    ~FlightRecorder();

    FlightRecorder(const FlightRecorder &) = delete;
    FlightRecorder &operator=(const FlightRecorder &) = delete;

    /** Identifies this recorder in dumps (e.g. "node3"). */
    void setLabel(std::string label);
    const std::string &label() const { return label_; }

    /** Record one fired event. Owner-thread only; ~4 stores. */
    void
    record(Tick when, const char *name, std::int32_t prio)
    {
        if (!enabled_.load(std::memory_order_relaxed))
            return;
        Entry &e = ring_[head_ % capacity];
        e.when = when;
        e.name = name;
        e.prio = prio;
        ++head_;
    }

    /** Events recorded over this recorder's lifetime. */
    std::uint64_t recorded() const { return head_; }

    // ------------------------------------------------ process-global
    /** Recording on/off (default on). */
    static bool
    enabled()
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    static void
    setEnabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }

    /** Should panic() dump the recorders? Default off (tests that
     *  assert on panics stay quiet); CLI front-ends opt in. */
    static bool
    dumpOnPanic()
    {
        return dumpOnPanic_.load(std::memory_order_relaxed);
    }

    static void
    setDumpOnPanic(bool on)
    {
        dumpOnPanic_.store(on, std::memory_order_relaxed);
    }

    /**
     * Dump every live recorder's ring (oldest first) plus the
     * graveyard snapshots of recently destroyed recorders. Best
     * effort: see the file comment on the benign race.
     */
    static void dumpAll(std::ostream &os);

    /** Forget all history: graveyard and live rings. Call between
     *  independent runs in one process (e.g. model-check restarts). */
    static void clearAll();

  private:
    struct Entry
    {
        Tick when = 0;
        const char *name = nullptr;
        std::int32_t prio = 0;
    };

    void dumpRing(std::ostream &os) const;

    std::string label_ = "queue";
    std::array<Entry, capacity> ring_{};
    std::uint64_t head_ = 0;

    // shrimp-lint: shard-safe(process-wide enable flags, atomic, never feed sim state or digests)
    inline static std::atomic<bool> enabled_{true};
    // shrimp-lint: shard-safe(process-wide enable flags, atomic, never feed sim state or digests)
    inline static std::atomic<bool> dumpOnPanic_{false};
};

} // namespace shrimp::sim

#endif // SHRIMP_SIM_FLIGHT_RECORDER_HH
