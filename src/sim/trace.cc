#include "sim/trace.hh"

namespace shrimp::trace
{

namespace
{
unsigned enabledMask = 0;
std::ostream *sinkPtr = nullptr;
} // namespace

const char *
categoryName(Category c)
{
    switch (c) {
      case Category::Dma:
        return "dma";
      case Category::Vm:
        return "vm";
      case Category::Os:
        return "os";
      case Category::Ni:
        return "ni";
      case Category::Bus:
        return "bus";
      default:
        return "?";
    }
}

void
enable(Category c)
{
    enabledMask |= 1u << unsigned(c);
}

void
disable(Category c)
{
    enabledMask &= ~(1u << unsigned(c));
}

void
disableAll()
{
    enabledMask = 0;
}

bool
enabled(Category c)
{
    return sinkPtr && (enabledMask & (1u << unsigned(c)));
}

void
setSink(std::ostream *os)
{
    sinkPtr = os;
}

std::ostream *
sink()
{
    return sinkPtr;
}

namespace detail
{

void
emitPrefix(std::ostream &os, Tick now, Category c)
{
    os << now << ": " << categoryName(c) << ": ";
}

} // namespace detail
} // namespace shrimp::trace
