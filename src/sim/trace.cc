#include "sim/trace.hh"

namespace shrimp::trace
{

namespace
{
// shrimp-lint: shard-safe(configured once before the run starts, read-only while workers run)
unsigned gEnabledMask = 0;
// shrimp-lint: shard-safe(installed once before the run starts; sharded runs coerce tracing off)
std::ostream *sinkPtr = nullptr;
} // namespace

const char *
categoryName(Category c)
{
    switch (c) {
      case Category::Dma:
        return "dma";
      case Category::Vm:
        return "vm";
      case Category::Os:
        return "os";
      case Category::Ni:
        return "ni";
      case Category::Bus:
        return "bus";
      case Category::Xfer:
        return "xfer";
      case Category::NetFault:
        return "net.fault";
      default:
        return "?";
    }
}

void
enable(Category c)
{
    gEnabledMask |= 1u << unsigned(c);
}

void
disable(Category c)
{
    gEnabledMask &= ~(1u << unsigned(c));
}

void
disableAll()
{
    gEnabledMask = 0;
}

bool
enabled(Category c)
{
    return sinkPtr && (gEnabledMask & (1u << unsigned(c)));
}

unsigned
enabledMask()
{
    return gEnabledMask;
}

void
setEnabledMask(unsigned mask)
{
    gEnabledMask = mask;
}

bool
applySpec(const std::string &spec, std::ostream *os)
{
    unsigned mask = 0;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        auto comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string tok = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (tok.empty())
            continue;
        if (tok == "all") {
            mask = ~0u;
            continue;
        }
        bool found = false;
        for (unsigned i = 0; i < unsigned(Category::NumCategories); ++i) {
            if (tok == categoryName(Category(i))) {
                mask |= 1u << i;
                found = true;
                break;
            }
        }
        if (!found)
            return false;
    }
    gEnabledMask = mask;
    setSink(os);
    return true;
}

void
setSink(std::ostream *os)
{
    sinkPtr = os;
}

std::ostream *
sink()
{
    return sinkPtr;
}

namespace detail
{

void
emitPrefix(std::ostream &os, Tick now, Category c)
{
    os << now << ": " << categoryName(c) << ": ";
}

} // namespace detail
} // namespace shrimp::trace
