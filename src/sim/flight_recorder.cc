#include "sim/flight_recorder.hh"

#include <algorithm>
#include <deque>
#include <mutex>
#include <vector>

namespace shrimp::sim
{

namespace
{

/** A destroyed recorder's preserved history. */
struct Snapshot
{
    std::string label;
    std::vector<std::pair<Tick, std::string>> tail; ///< oldest first
    std::uint64_t recorded = 0;
};

constexpr std::size_t graveyardLimit = 64;

struct Registry
{
    std::mutex mu;
    std::vector<FlightRecorder *> live;
    std::deque<Snapshot> graveyard;
};

Registry &
registry()
{
    // shrimp-lint: shard-safe(process-global live-recorder list; every access takes r.mu)
    static Registry r;
    return r;
}

} // namespace

FlightRecorder::FlightRecorder()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> g(r.mu);
    r.live.push_back(this);
}

FlightRecorder::~FlightRecorder()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> g(r.mu);
    r.live.erase(std::remove(r.live.begin(), r.live.end(), this),
                 r.live.end());
    if (head_ == 0)
        return;
    Snapshot snap;
    snap.label = label_;
    snap.recorded = head_;
    const std::uint64_t n = std::min(head_, capacity);
    for (std::uint64_t i = head_ - n; i < head_; ++i) {
        const Entry &e = ring_[i % capacity];
        snap.tail.emplace_back(
            e.when, std::string(e.name ? e.name : "?") + " prio="
                        + std::to_string(e.prio));
    }
    r.graveyard.push_back(std::move(snap));
    while (r.graveyard.size() > graveyardLimit)
        r.graveyard.pop_front();
}

void
FlightRecorder::setLabel(std::string label)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> g(r.mu);
    label_ = std::move(label);
}

void
FlightRecorder::dumpRing(std::ostream &os) const
{
    const std::uint64_t n = std::min(head_, capacity);
    os << "  " << label_ << ": " << head_ << " events recorded; last "
       << n << ":\n";
    for (std::uint64_t i = head_ - n; i < head_; ++i) {
        const Entry &e = ring_[i % capacity];
        os << "    [" << i << "] t=" << e.when << " prio=" << e.prio
           << " " << (e.name ? e.name : "?") << "\n";
    }
}

void
FlightRecorder::dumpAll(std::ostream &os)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> g(r.mu);
    os << "== flight recorder: recent sim events per queue ==\n";
    bool any = false;
    for (const FlightRecorder *fr : r.live) {
        if (fr->head_ == 0)
            continue;
        any = true;
        fr->dumpRing(os);
    }
    for (const Snapshot &s : r.graveyard) {
        any = true;
        os << "  " << s.label << " (destroyed): " << s.recorded
           << " events recorded; last " << s.tail.size() << ":\n";
        std::uint64_t idx = s.recorded - s.tail.size();
        for (const auto &[when, what] : s.tail) {
            os << "    [" << idx++ << "] t=" << when << " " << what
               << "\n";
        }
    }
    if (!any)
        os << "  (no recorded events)\n";
}

void
FlightRecorder::clearAll()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> g(r.mu);
    r.graveyard.clear();
    for (FlightRecorder *fr : r.live)
        fr->head_ = 0;
}

} // namespace shrimp::sim
