/**
 * @file
 * The discrete-event simulation core: a single global-per-System event
 * queue ordered by (tick, priority, insertion sequence).
 *
 * All timing in the simulator is expressed by scheduling callbacks on
 * this queue. Components never busy-wait; they schedule their next
 * action and return.
 */

#ifndef SHRIMP_SIM_EVENT_QUEUE_HH
#define SHRIMP_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace shrimp::sim
{

/**
 * Event priorities; lower numeric value runs first at the same tick.
 * Device completions run before CPU resumption so that software
 * observes hardware state changes that logically precede it.
 */
enum class EventPriority : int
{
    DeviceCompletion = 0,
    Default = 50,
    CpuResume = 60,
    Stats = 90,
};

/**
 * A handle to a scheduled event, usable to deschedule it. Handles are
 * cheap value types; descheduling an already-fired or already
 * descheduled event is a checked error.
 */
class EventHandle
{
  public:
    EventHandle() = default;

    bool valid() const { return id_ != 0; }

  private:
    friend class EventQueue;
    explicit EventHandle(std::uint64_t id) : id_(id) {}
    std::uint64_t id_ = 0;
};

/**
 * The event queue. Holds the current simulated time and a priority
 * queue of pending callbacks.
 */
class EventQueue
{
  public:
    EventQueue() = default;
    ~EventQueue();
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return curTick_; }

    /**
     * Schedule a callback at an absolute tick.
     *
     * @param when Absolute tick; must be >= now().
     * @param name Debug label for the event.
     * @param fn Callback invoked when the event fires.
     * @param prio Intra-tick ordering class.
     * @return Handle that can cancel the event before it fires.
     */
    EventHandle schedule(Tick when, std::string name,
                         std::function<void()> fn,
                         EventPriority prio = EventPriority::Default);

    /** Schedule a callback @p delay ticks in the future. */
    EventHandle
    scheduleIn(Tick delay, std::string name, std::function<void()> fn,
               EventPriority prio = EventPriority::Default)
    {
        return schedule(curTick_ + delay, std::move(name), std::move(fn),
                        prio);
    }

    /**
     * Cancel a pending event. Returns true if the event was pending
     * and is now cancelled; false if it had already fired or was
     * already cancelled.
     */
    bool deschedule(EventHandle handle);

    /** True if no events remain. */
    bool empty() const { return liveEvents_ == 0; }

    /** Number of pending (non-cancelled) events. */
    std::size_t pendingEvents() const { return liveEvents_; }

    /**
     * Run until the queue drains or @p limit ticks is reached.
     * @return The tick at which execution stopped.
     */
    Tick run(Tick limit = maxTick);

    /**
     * Run until @p pred returns true (checked after each event) or the
     * queue drains or the limit is hit.
     */
    Tick runUntil(const std::function<bool()> &pred, Tick limit = maxTick);

    /** Execute exactly one event, if any. Returns false if empty. */
    bool step();

    /** Total events executed over the queue's lifetime. */
    std::uint64_t eventsExecuted() const { return executed_; }

  private:
    struct Record
    {
        Tick when;
        int prio;
        std::uint64_t seq;
        std::uint64_t id;
        std::string name;
        std::function<void()> fn;
        bool cancelled = false;
    };

    struct Compare
    {
        bool
        operator()(const Record *a, const Record *b) const
        {
            if (a->when != b->when)
                return a->when > b->when;
            if (a->prio != b->prio)
                return a->prio > b->prio;
            return a->seq > b->seq;
        }
    };

    Record *popNext();

    Tick curTick_ = 0;
    std::uint64_t nextSeq_ = 1;
    std::uint64_t executed_ = 0;
    std::size_t liveEvents_ = 0;
    std::priority_queue<Record *, std::vector<Record *>, Compare> heap_;
    // id -> live record, for deschedule.
    std::unordered_map<std::uint64_t, Record *> pendingById_;
};

} // namespace shrimp::sim

#endif // SHRIMP_SIM_EVENT_QUEUE_HH
