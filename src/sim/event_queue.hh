/**
 * @file
 * The discrete-event simulation core: a single global-per-System event
 * queue ordered by (tick, priority, stamp).
 *
 * The stamp is the intra-(tick, priority) tie-break. A legacy shared
 * queue stamps events with a plain insertion counter, which reproduces
 * classic insertion-order FIFO semantics. Under the sharded engine
 * (sim/sharded.hh) every queue is given a stamp source id — its node —
 * and stamps become (source node << stampSeqBits) | per-source counter:
 * a *canonical* key assigned when the originating node decides to
 * schedule the event, not when the message happens to be drained into
 * the destination queue. Ties therefore execute in (source node,
 * per-source order), independent of shard count, mailbox batching, or
 * window boundaries — the property the engine's bit-identical
 * `--shards=1` vs `--shards=N` guarantee rests on.
 *
 * All timing in the simulator is expressed by scheduling callbacks on
 * this queue. Components never busy-wait; they schedule their next
 * action and return.
 *
 * The scheduling fast path is allocation-free and hash-free in the
 * steady state:
 *
 *  - Event records live in a slab with an explicit free list; firing
 *    or cancelling an event recycles its slot instead of touching the
 *    heap allocator.
 *  - Handles are generation-tagged slab indices, so deschedule() is a
 *    direct array probe (no id map) and a handle to a fired or
 *    recycled event is detected as stale, never dereferenced.
 *  - Event labels are static strings (`const char *`): callers pass
 *    string literals and no per-event std::string is ever built.
 *  - Callbacks are stored in EventCallback's inline small-buffer;
 *    only captures larger than EventCallback::inlineBytes fall back
 *    to the heap (counted, so benches can assert the steady state
 *    allocates nothing).
 *
 * Cancelled events leave a stale entry in the binary heap (detected by
 * generation mismatch); when stale entries exceed half the heap the
 * queue compacts, bounding both memory and comparator work under
 * cancel-heavy workloads.
 */

#ifndef SHRIMP_SIM_EVENT_QUEUE_HH
#define SHRIMP_SIM_EVENT_QUEUE_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/flight_recorder.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace shrimp::sim
{

/**
 * Event priorities; lower numeric value runs first at the same tick.
 * Device completions run before CPU resumption so that software
 * observes hardware state changes that logically precede it.
 */
enum class EventPriority : int
{
    DeviceCompletion = 0,
    Default = 50,
    CpuResume = 60,
    Stats = 90,
};

/**
 * Type-erased `void()` callback with small-buffer-optimized inline
 * storage. Callables up to inlineBytes that are nothrow-movable are
 * stored in place; larger ones fall back to one heap allocation,
 * counted in heapFallbacks() so the fast path can prove it never
 * pays it.
 */
class EventCallback
{
  public:
    /** Inline capture budget; sized for the simulator's largest hot
     *  lambda (the kernel's cpu.op completion). */
    static constexpr std::size_t inlineBytes = 64;

    EventCallback() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventCallback>
                  && std::is_invocable_r_v<void, std::decay_t<F> &>>>
    EventCallback(F &&f) // NOLINT(google-explicit-constructor)
    {
        emplace(std::forward<F>(f));
    }

    EventCallback(EventCallback &&other) noexcept { moveFrom(other); }

    EventCallback &
    operator=(EventCallback &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    EventCallback(const EventCallback &) = delete;
    EventCallback &operator=(const EventCallback &) = delete;

    ~EventCallback() { reset(); }

    explicit operator bool() const { return ops_ != nullptr; }

    void
    operator()()
    {
        SHRIMP_ASSERT(ops_, "invoking an empty EventCallback");
        ops_->invoke(buf_);
    }

    /** Destroy the stored callable (no-op when empty). */
    void
    reset()
    {
        if (ops_) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

    /** Process-wide count of captures too large for inline storage. */
    static std::uint64_t
    heapFallbacks()
    {
        return heapFallbacks_.load(std::memory_order_relaxed);
    }

  private:
    struct Ops
    {
        void (*invoke)(void *);
        /** Move construct into dst from src, destroying src. */
        void (*moveTo)(void *src, void *dst);
        void (*destroy)(void *);
    };

    template <typename F>
    struct InlineOps
    {
        static F *
        self(void *p)
        {
            return std::launder(reinterpret_cast<F *>(p));
        }

        static void invoke(void *p) { (*self(p))(); }

        static void
        moveTo(void *src, void *dst)
        {
            F *s = self(src);
            ::new (dst) F(std::move(*s));
            s->~F();
        }

        static void destroy(void *p) { self(p)->~F(); }

        static constexpr Ops ops{invoke, moveTo, destroy};
    };

    template <typename F>
    struct HeapOps
    {
        static F *
        ptr(void *p)
        {
            F *f = nullptr;
            std::memcpy(&f, p, sizeof f);
            return f;
        }

        static void invoke(void *p) { (*ptr(p))(); }

        static void
        moveTo(void *src, void *dst)
        {
            std::memcpy(dst, src, sizeof(F *));
        }

        static void destroy(void *p) { delete ptr(p); }

        static constexpr Ops ops{invoke, moveTo, destroy};
    };

    void
    moveFrom(EventCallback &other) noexcept
    {
        ops_ = other.ops_;
        if (ops_) {
            ops_->moveTo(other.buf_, buf_);
            other.ops_ = nullptr;
        }
    }

    template <typename F>
    void
    emplace(F &&f)
    {
        using D = std::decay_t<F>;
        if constexpr (sizeof(D) <= inlineBytes
                      && alignof(D) <= alignof(std::max_align_t)
                      && std::is_nothrow_move_constructible_v<D>) {
            ::new (static_cast<void *>(buf_)) D(std::forward<F>(f));
            ops_ = &InlineOps<D>::ops;
        } else {
            D *heap = new D(std::forward<F>(f));
            std::memcpy(buf_, &heap, sizeof heap);
            ops_ = &HeapOps<D>::ops;
            // Relaxed: a plain counter read after the run; sharded
            // workers bump it concurrently.
            heapFallbacks_.fetch_add(1, std::memory_order_relaxed);
        }
    }

    alignas(std::max_align_t) unsigned char buf_[inlineBytes];
    const Ops *ops_ = nullptr;

    // shrimp-lint: shard-safe(monotonic diagnostics counter, relaxed atomic, never read by sim logic)
    inline static std::atomic<std::uint64_t> heapFallbacks_{0};
};

/**
 * A handle to a scheduled event, usable to deschedule it. Handles are
 * cheap value types: a slab index plus the slot's generation at
 * scheduling time. Descheduling an already-fired, already-cancelled,
 * or recycled event is detected by the generation tag and reported as
 * a no-op (deschedule returns false) — never a use-after-free.
 */
class EventHandle
{
  public:
    EventHandle() = default;

    bool valid() const { return slotPlus1_ != 0; }

  private:
    friend class EventQueue;
    EventHandle(std::uint32_t slot_plus_1, std::uint32_t gen)
        : slotPlus1_(slot_plus_1), gen_(gen)
    {}
    std::uint32_t slotPlus1_ = 0;
    std::uint32_t gen_ = 0;
};

/**
 * The event queue. Holds the current simulated time, the event-record
 * slab, and a binary min-heap of (tick, priority, sequence) entries
 * referencing slab slots.
 */
class EventQueue
{
  public:
    EventQueue() = default;
    ~EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return curTick_; }

    /**
     * Tick of the most recently fired event (0 before any fired).
     * Unlike now(), this never advances past events: run(limit) moves
     * now() to the limit even when the stretch was empty, which is
     * window-shape dependent under the sharded engine, while the last
     * fired tick is canonical — the engine's merged clock uses it.
     */
    Tick lastFiredTick() const { return lastFired_; }

    /** Per-source sequence bits in a stamp; the high bits carry the
     *  stamp source id (the owning node under the sharded engine). */
    static constexpr unsigned stampSeqBits = 44;

    /**
     * Brand this queue's stamps with an originating-source id (the
     * node id + engine convention). Must be set before any event is
     * scheduled; the default source 0 reproduces the legacy
     * plain-counter insertion order.
     */
    void
    setStampSource(std::uint32_t id)
    {
        SHRIMP_ASSERT(nextSeq_ == 1, "stamp source set after events");
        stampBase_ = std::uint64_t(id) << stampSeqBits;
    }

    /**
     * Allocate the next canonical stamp for an event originating on
     * this queue's node. The sharded engine calls this at post() time
     * so a cross-node message carries its tie-break key with it.
     */
    std::uint64_t
    allocStamp()
    {
        SHRIMP_ASSERT(nextSeq_ < (std::uint64_t(1) << stampSeqBits),
                      "per-source stamp space exhausted");
        return stampBase_ | nextSeq_++;
    }

    /**
     * Schedule a callback at an absolute tick.
     *
     * @param when Absolute tick; must be >= now().
     * @param name Static debug label (string literal); the queue
     *             stores the pointer, never copies the text.
     * @param fn Callback invoked when the event fires.
     * @param prio Intra-tick ordering class.
     * @return Handle that can cancel the event before it fires.
     */
    EventHandle
    schedule(Tick when, const char *name, EventCallback fn,
             EventPriority prio = EventPriority::Default)
    {
        return scheduleStamped(when, allocStamp(), name, std::move(fn),
                               prio);
    }

    /**
     * Schedule with a caller-provided stamp — the sharded engine's
     * delivery path for cross-node messages, whose stamp was allocated
     * on the *originating* node's queue at post() time.
     */
    EventHandle scheduleStamped(Tick when, std::uint64_t stamp,
                                const char *name, EventCallback fn,
                                EventPriority prio =
                                    EventPriority::Default);

    /** Schedule a callback @p delay ticks in the future. */
    EventHandle
    scheduleIn(Tick delay, const char *name, EventCallback fn,
               EventPriority prio = EventPriority::Default)
    {
        return schedule(curTick_ + delay, name, std::move(fn), prio);
    }

    /**
     * Cancel a pending event. Returns true if the event was pending
     * and is now cancelled; false if it had already fired, was
     * already cancelled, or the slot has been recycled.
     */
    bool deschedule(EventHandle handle);

    /** True if no events remain. */
    bool empty() const { return liveEvents_ == 0; }

    /**
     * Tick of the earliest pending event (maxTick when none); drops
     * stale cancelled entries first. The sharded engine uses this to
     * plan conservative windows.
     */
    Tick nextEventTick() { return nextEventKey().first; }

    /** (tick, priority) of the earliest pending event;
     *  (maxTick, 0) when the queue is empty. */
    std::pair<Tick, std::int32_t> nextEventKey();

    /** Number of pending (non-cancelled) events. */
    std::size_t pendingEvents() const { return liveEvents_; }

    /**
     * Run until the queue drains or @p limit ticks is reached.
     * @return The tick at which execution stopped.
     */
    Tick run(Tick limit = maxTick);

    /**
     * Run until @p pred returns true (checked after each event) or the
     * queue drains or the limit is hit.
     */
    Tick runUntil(const std::function<bool()> &pred, Tick limit = maxTick);

    /** Execute exactly one event, if any. Returns false if empty. */
    bool step();

    /** Total events executed over the queue's lifetime. */
    std::uint64_t eventsExecuted() const { return executed_; }

    // ------------------------------------------- self-perf counters
    /** Events cancelled over the queue's lifetime. */
    std::uint64_t eventsCancelled() const { return cancelled_; }

    /** Stale-entry heap compactions performed. */
    std::uint64_t compactions() const { return compactions_; }

    /**
     * Container-growth allocations on the scheduling path (slab, heap
     * and free-list growth). Flat in the steady state: once the slab
     * and heap reach the workload's high-water mark, scheduling
     * allocates nothing.
     */
    std::uint64_t containerGrowths() const { return containerGrowths_; }

    /** Heap entries currently held, including stale (cancelled) ones. */
    std::size_t heapEntries() const { return heap_.size(); }

    /** Slab capacity in event records (the high-water mark). */
    std::size_t slabSlots() const { return slots_.size(); }

    /** Name this queue's flight recorder in post-mortem dumps. */
    void setFlightLabel(std::string label)
    {
        flight_.setLabel(std::move(label));
    }

    /** The per-queue ring of recently fired events. */
    const FlightRecorder &flightRecorder() const { return flight_; }

  private:
    /** One slab slot: a (possibly recycled) event record. */
    struct Record
    {
        Tick when = 0;
        /** Canonical stamp: (source id << stampSeqBits) | counter. */
        std::uint64_t seq = 0;
        const char *name = nullptr;
        EventCallback fn;
        std::uint32_t gen = 0;
        std::int32_t prio = 0;
        bool inUse = false;
    };

    /** Heap entry: ordering keys + slab reference; cancelled events
     *  are detected by a generation mismatch with the slot. */
    struct HeapEntry
    {
        Tick when;
        std::uint64_t seq;
        std::int32_t prio;
        std::uint32_t slot;
        std::uint32_t gen;
    };

    /** "Greater" over (when, prio, seq): std::push_heap et al. build
     *  a max-heap, so this puts the earliest event at the front. */
    struct After
    {
        bool
        operator()(const HeapEntry &a, const HeapEntry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.prio != b.prio)
                return a.prio > b.prio;
            return a.seq > b.seq;
        }
    };

    bool stale(const HeapEntry &e) const
    {
        return slots_[e.slot].gen != e.gen;
    }

    /** Pop stale (cancelled) entries off the top of the heap. */
    void dropStale();

    /** Pop the front heap entry (must not be empty). */
    HeapEntry popEntry();

    /** Release a slot back to the free list, bumping its generation. */
    void freeSlot(std::uint32_t slot);

    /** Fire the event referenced by a (valid) heap entry. */
    void fire(const HeapEntry &e);

    /** Rebuild the heap without stale entries when they dominate. */
    void maybeCompact();

    Tick curTick_ = 0;
    Tick lastFired_ = 0;
    std::uint64_t nextSeq_ = 1;
    /** High stamp bits: the queue's source id (see setStampSource). */
    std::uint64_t stampBase_ = 0;
    std::uint64_t executed_ = 0;
    std::uint64_t cancelled_ = 0;
    std::uint64_t compactions_ = 0;
    std::uint64_t containerGrowths_ = 0;
    std::size_t liveEvents_ = 0;
    std::size_t staleInHeap_ = 0;
    std::vector<Record> slots_;
    std::vector<std::uint32_t> freeSlots_;
    std::vector<HeapEntry> heap_;
    FlightRecorder flight_;
};

} // namespace shrimp::sim

#endif // SHRIMP_SIM_EVENT_QUEUE_HH
