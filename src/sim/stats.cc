#include "sim/stats.hh"

#include "sim/json.hh"

namespace shrimp::stats
{

// --- TextDumper ---

void
TextDumper::beginGroup(const std::string &fullName)
{
    group_ = fullName;
}

void
TextDumper::scalar(const std::string &name, const std::string &desc,
                   const Scalar &s)
{
    os_ << group_ << '.' << name << ' ' << s.value();
    if (!desc.empty())
        os_ << "   # " << desc;
    os_ << '\n';
}

void
TextDumper::average(const std::string &name, const std::string &desc,
                    const Average &a)
{
    os_ << group_ << '.' << name << "::mean " << a.mean()
        << "  ::count " << a.count() << "  ::min " << a.min()
        << "  ::max " << a.max();
    if (!desc.empty())
        os_ << "   # " << desc;
    os_ << '\n';
}

void
TextDumper::histogram(const std::string &name, const std::string &desc,
                      const Histogram &h)
{
    const Average &a = h.summary();
    os_ << group_ << '.' << name << "::mean " << a.mean()
        << "  ::count " << a.count() << "  ::min " << a.min()
        << "  ::max " << a.max() << "  ::underflows " << h.underflows()
        << "  ::overflows " << h.overflows();
    if (!desc.empty())
        os_ << "   # " << desc;
    os_ << '\n';
    // Only non-empty buckets, one line each, gem5 style.
    for (std::size_t i = 0; i < h.buckets(); ++i) {
        if (h.bucket(i) == 0)
            continue;
        os_ << group_ << '.' << name << "::" << h.bucketLo(i) << '-'
            << (h.bucketLo(i) + h.bucketWidth()) << ' ' << h.bucket(i)
            << '\n';
    }
}

void
TextDumper::distribution(const std::string &name, const std::string &desc,
                         const Distribution &d)
{
    os_ << group_ << '.' << name << "::samples " << d.total();
    if (!desc.empty())
        os_ << "   # " << desc;
    os_ << '\n';
    for (const auto &[key, count] : d.counts()) {
        os_ << group_ << '.' << name << "::" << key << ' ' << count
            << '\n';
    }
}

void
TextDumper::formula(const std::string &name, const std::string &desc,
                    const Formula &f)
{
    os_ << group_ << '.' << name << ' ' << f.value();
    if (!desc.empty())
        os_ << "   # " << desc;
    os_ << '\n';
}

// --- JsonDumper ---

void
JsonDumper::beginGroup(const std::string &fullName)
{
    w_.key(fullName);
    w_.beginObject();
}

void
JsonDumper::endGroup()
{
    w_.endObject();
}

void
JsonDumper::scalar(const std::string &name, const std::string &,
                   const Scalar &s)
{
    w_.field(name, s.value());
}

void
JsonDumper::average(const std::string &name, const std::string &,
                    const Average &a)
{
    w_.key(name);
    w_.beginObject();
    w_.field("mean", a.mean());
    w_.field("count", a.count());
    w_.field("min", a.min());
    w_.field("max", a.max());
    w_.endObject();
}

void
JsonDumper::histogram(const std::string &name, const std::string &,
                      const Histogram &h)
{
    const Average &a = h.summary();
    w_.key(name);
    w_.beginObject();
    w_.field("type", "histogram");
    w_.field("mean", a.mean());
    w_.field("count", a.count());
    w_.field("min", a.min());
    w_.field("max", a.max());
    w_.field("lo", h.lo());
    w_.field("hi", h.hi());
    w_.field("bucket_width", h.bucketWidth());
    w_.field("underflows", h.underflows());
    w_.field("overflows", h.overflows());
    w_.key("buckets");
    w_.beginArray();
    for (std::size_t i = 0; i < h.buckets(); ++i)
        w_.value(h.bucket(i));
    w_.endArray();
    w_.endObject();
}

void
JsonDumper::distribution(const std::string &name, const std::string &,
                         const Distribution &d)
{
    w_.key(name);
    w_.beginObject();
    w_.field("type", "distribution");
    w_.field("samples", d.total());
    w_.key("counts");
    w_.beginObject();
    for (const auto &[key, count] : d.counts())
        w_.field(std::to_string(key), count);
    w_.endObject();
    w_.endObject();
}

void
JsonDumper::formula(const std::string &name, const std::string &,
                    const Formula &f)
{
    w_.field(name, f.value());
}

// --- StatGroup ---

void
StatGroup::accept(StatVisitor &v, const std::string &prefix) const
{
    v.beginGroup(prefix + name_);
    for (const auto &e : scalars_)
        v.scalar(e.name, e.desc, *e.stat);
    for (const auto &e : averages_)
        v.average(e.name, e.desc, *e.stat);
    for (const auto &e : histograms_)
        v.histogram(e.name, e.desc, *e.stat);
    for (const auto &e : distributions_)
        v.distribution(e.name, e.desc, *e.stat);
    for (const auto &e : formulas_)
        v.formula(e.name, e.desc, *e.stat);
    v.endGroup();
}

void
StatGroup::dump(std::ostream &os, const std::string &prefix) const
{
    TextDumper d(os);
    accept(d, prefix);
}

void
StatGroup::dumpJson(std::ostream &os) const
{
    sim::JsonWriter w(os);
    // Wrap the single group in an object so the dumper's
    // `"name": { ... }` member is valid at top level.
    w.beginObject();
    JsonDumper d(w);
    accept(d);
    w.endObject();
    w.finish();
}

} // namespace shrimp::stats
