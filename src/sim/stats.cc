#include "sim/stats.hh"

#include <iomanip>

namespace shrimp::stats
{

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &e : scalars_) {
        os << name_ << '.' << e.name << ' ' << e.stat->value();
        if (!e.desc.empty())
            os << "   # " << e.desc;
        os << '\n';
    }
    for (const auto &e : averages_) {
        os << name_ << '.' << e.name << "::mean " << e.stat->mean()
           << "  ::count " << e.stat->count() << "  ::min "
           << e.stat->min() << "  ::max " << e.stat->max();
        if (!e.desc.empty())
            os << "   # " << e.desc;
        os << '\n';
    }
}

} // namespace shrimp::stats
