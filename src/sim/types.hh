/**
 * @file
 * Fundamental simulator-wide types: simulated time, addresses, sizes.
 */

#ifndef SHRIMP_SIM_TYPES_HH
#define SHRIMP_SIM_TYPES_HH

#include <cstdint>

namespace shrimp
{

/**
 * Simulated time in picoseconds. Picosecond resolution lets us express
 * a 60 MHz CPU cycle (16667 ps), EISA bus cycles (120 ns) and
 * interconnect flit times exactly without rounding drift.
 */
using Tick = std::uint64_t;

/** The largest representable tick, used as "never". */
constexpr Tick maxTick = ~Tick(0);

/** Ticks per common time units. */
constexpr Tick tickPs = 1;
constexpr Tick tickNs = 1000;
constexpr Tick tickUs = 1000 * 1000;
constexpr Tick tickMs = Tick(1000) * 1000 * 1000;
constexpr Tick tickSec = Tick(1000) * 1000 * 1000 * 1000;

/**
 * A simulated address. Both virtual and physical addresses use this
 * type; the vm::AddressLayout class decides how the bits are carved
 * into memory, memory-proxy and device-proxy regions.
 */
using Addr = std::uint64_t;

/** Node identifier in the multicomputer. */
using NodeId = std::uint32_t;

/** Process identifier within a node. */
using Pid = std::uint32_t;

/** An invalid/unassigned pid (kernel context). */
constexpr Pid invalidPid = ~Pid(0);

/** Convert seconds (double) to ticks. */
constexpr Tick
secondsToTicks(double s)
{
    return Tick(s * double(tickSec));
}

/** Convert ticks to seconds (double). */
constexpr double
ticksToSeconds(Tick t)
{
    return double(t) / double(tickSec);
}

/** Convert ticks to microseconds (double), handy for reports. */
constexpr double
ticksToUs(Tick t)
{
    return double(t) / double(tickUs);
}

} // namespace shrimp

#endif // SHRIMP_SIM_TYPES_HH
