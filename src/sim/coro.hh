/**
 * @file
 * Coroutine plumbing for simulated software.
 *
 * User programs and kernel daemons in the simulator are written as
 * C++20 coroutines returning ProcTask. Every simulated operation
 * (memory reference, computation, syscall) is an awaitable supplied by
 * the OS layer; awaiting it suspends the coroutine, schedules the
 * operation's completion on the event queue, and the scheduler resumes
 * the coroutine when the simulated CPU gets back to it. This gives an
 * honest interleaving model: context switches can happen between any
 * two operations — exactly the window the paper's invariant I1 is
 * about.
 */

#ifndef SHRIMP_SIM_CORO_HH
#define SHRIMP_SIM_CORO_HH

#include <coroutine>
#include <exception>
#include <functional>
#include <utility>

#include "sim/logging.hh"

namespace shrimp::sim
{

/**
 * A fire-and-forget coroutine representing a simulated thread of
 * control. The owner starts it with resume() and is notified of
 * completion through the onDone callback; exceptions thrown inside the
 * coroutine are captured and rethrown by rethrowIfFailed() so test
 * failures inside simulated programs surface in the host test harness.
 */
class ProcTask
{
  public:
    struct promise_type
    {
        std::exception_ptr exception;
        std::function<void()> onDone;

        ProcTask
        get_return_object()
        {
            return ProcTask(
                std::coroutine_handle<promise_type>::from_promise(*this));
        }

        std::suspend_always initial_suspend() noexcept { return {}; }

        struct FinalAwaiter
        {
            bool await_ready() noexcept { return false; }

            void
            await_suspend(
                std::coroutine_handle<promise_type> h) noexcept
            {
                auto &p = h.promise();
                if (p.onDone)
                    p.onDone();
            }

            void await_resume() noexcept {}
        };

        FinalAwaiter final_suspend() noexcept { return {}; }
        void return_void() {}

        void
        unhandled_exception()
        {
            exception = std::current_exception();
        }
    };

    ProcTask() = default;

    explicit ProcTask(std::coroutine_handle<promise_type> h) : handle_(h) {}

    ProcTask(const ProcTask &) = delete;
    ProcTask &operator=(const ProcTask &) = delete;

    ProcTask(ProcTask &&other) noexcept
        : handle_(std::exchange(other.handle_, nullptr))
    {}

    ProcTask &
    operator=(ProcTask &&other) noexcept
    {
        if (this != &other) {
            destroy();
            handle_ = std::exchange(other.handle_, nullptr);
        }
        return *this;
    }

    ~ProcTask() { destroy(); }

    /** True if a coroutine is attached. */
    bool valid() const { return bool(handle_); }

    /** True once the coroutine body has finished. */
    bool done() const { return handle_ && handle_.done(); }

    /**
     * Resume the coroutine (also used for the initial start, since
     * initial_suspend is suspend_always).
     */
    void
    resume()
    {
        SHRIMP_ASSERT(handle_ && !handle_.done(),
                      "resuming an invalid or finished task");
        handle_.resume();
    }

    /** Install the completion callback. Must precede the first resume. */
    void
    setOnDone(std::function<void()> fn)
    {
        SHRIMP_ASSERT(handle_, "no coroutine attached");
        handle_.promise().onDone = std::move(fn);
    }

    /** Rethrow any exception the coroutine body terminated with. */
    void
    rethrowIfFailed() const
    {
        if (handle_ && handle_.done() && handle_.promise().exception)
            std::rethrow_exception(handle_.promise().exception);
    }

  private:
    void
    destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = nullptr;
        }
    }

    std::coroutine_handle<promise_type> handle_;
};

/**
 * An awaitable sub-coroutine returning T. Lets simulated software be
 * factored into helper routines (e.g. the user-level UDMA library's
 * initiate-with-retry recipe) that themselves await simulated
 * operations. Completion hands control back to the awaiting coroutine
 * via symmetric transfer.
 */
template <typename T>
class Task
{
  public:
    struct promise_type
    {
        T value{};
        std::exception_ptr exception;
        std::coroutine_handle<> continuation;

        Task
        get_return_object()
        {
            return Task(
                std::coroutine_handle<promise_type>::from_promise(*this));
        }

        std::suspend_always initial_suspend() noexcept { return {}; }

        struct FinalAwaiter
        {
            bool await_ready() noexcept { return false; }

            std::coroutine_handle<>
            await_suspend(std::coroutine_handle<promise_type> h) noexcept
            {
                auto cont = h.promise().continuation;
                return cont ? cont : std::noop_coroutine();
            }

            void await_resume() noexcept {}
        };

        FinalAwaiter final_suspend() noexcept { return {}; }

        void return_value(T v) { value = std::move(v); }

        void
        unhandled_exception()
        {
            exception = std::current_exception();
        }
    };

    Task() = default;
    explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    Task(Task &&other) noexcept
        : handle_(std::exchange(other.handle_, nullptr))
    {}

    Task &
    operator=(Task &&other) noexcept
    {
        if (this != &other) {
            if (handle_)
                handle_.destroy();
            handle_ = std::exchange(other.handle_, nullptr);
        }
        return *this;
    }

    ~Task()
    {
        if (handle_)
            handle_.destroy();
    }

    bool await_ready() const noexcept { return false; }

    std::coroutine_handle<>
    await_suspend(std::coroutine_handle<> awaiting) noexcept
    {
        handle_.promise().continuation = awaiting;
        return handle_;
    }

    T
    await_resume()
    {
        if (handle_.promise().exception)
            std::rethrow_exception(handle_.promise().exception);
        return std::move(handle_.promise().value);
    }

  private:
    std::coroutine_handle<promise_type> handle_;
};

/** Task specialization for void-returning helper routines. */
template <>
class Task<void>
{
  public:
    struct promise_type
    {
        std::exception_ptr exception;
        std::coroutine_handle<> continuation;

        Task
        get_return_object()
        {
            return Task(
                std::coroutine_handle<promise_type>::from_promise(*this));
        }

        std::suspend_always initial_suspend() noexcept { return {}; }

        struct FinalAwaiter
        {
            bool await_ready() noexcept { return false; }

            std::coroutine_handle<>
            await_suspend(std::coroutine_handle<promise_type> h) noexcept
            {
                auto cont = h.promise().continuation;
                return cont ? cont : std::noop_coroutine();
            }

            void await_resume() noexcept {}
        };

        FinalAwaiter final_suspend() noexcept { return {}; }
        void return_void() {}

        void
        unhandled_exception()
        {
            exception = std::current_exception();
        }
    };

    Task() = default;
    explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    Task(Task &&other) noexcept
        : handle_(std::exchange(other.handle_, nullptr))
    {}

    Task &
    operator=(Task &&other) noexcept
    {
        if (this != &other) {
            if (handle_)
                handle_.destroy();
            handle_ = std::exchange(other.handle_, nullptr);
        }
        return *this;
    }

    ~Task()
    {
        if (handle_)
            handle_.destroy();
    }

    bool await_ready() const noexcept { return false; }

    std::coroutine_handle<>
    await_suspend(std::coroutine_handle<> awaiting) noexcept
    {
        handle_.promise().continuation = awaiting;
        return handle_;
    }

    void
    await_resume()
    {
        if (handle_.promise().exception)
            std::rethrow_exception(handle_.promise().exception);
    }

  private:
    std::coroutine_handle<promise_type> handle_;
};

} // namespace shrimp::sim

#endif // SHRIMP_SIM_CORO_HH
