/**
 * @file
 * Error and status reporting, following the gem5 convention:
 *
 *  - panic():  something happened that should never happen regardless
 *              of what the user does, i.e. a simulator bug. Throws
 *              PanicError (so tests can assert on it) after printing.
 *  - fatal():  the simulation cannot continue due to a user error
 *              (bad configuration, invalid arguments). Throws
 *              FatalError.
 *  - warn():   possibly-incorrect behaviour worth flagging.
 *  - inform(): normal operating status.
 */

#ifndef SHRIMP_SIM_LOGGING_HH
#define SHRIMP_SIM_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace shrimp
{

/** Thrown by panic(): an internal simulator invariant was violated. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Thrown by fatal(): the user asked for something unsupportable. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

namespace logging_detail
{

void emit(const char *level, const std::string &msg);

inline void
format(std::ostringstream &os)
{
    (void)os;
}

template <typename T, typename... Rest>
void
format(std::ostringstream &os, const T &first, const Rest &...rest)
{
    os << first;
    format(os, rest...);
}

template <typename... Args>
std::string
formatString(const Args &...args)
{
    std::ostringstream os;
    format(os, args...);
    return os.str();
}

} // namespace logging_detail

/** Report a simulator bug and abort the simulation via exception. */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    auto msg = logging_detail::formatString(args...);
    logging_detail::emit("panic", msg);
    throw PanicError(msg);
}

/** Report an unrecoverable user error via exception. */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    auto msg = logging_detail::formatString(args...);
    logging_detail::emit("fatal", msg);
    throw FatalError(msg);
}

/** Report suspicious but survivable behaviour. */
template <typename... Args>
void
warn(const Args &...args)
{
    logging_detail::emit("warn", logging_detail::formatString(args...));
}

/** Report normal status. Suppressed unless verbose logging is on. */
template <typename... Args>
void
inform(const Args &...args)
{
    logging_detail::emit("info", logging_detail::formatString(args...));
}

/** Enable/disable warn()/inform() output (panic/fatal always print). */
void setLogVerbose(bool verbose);
bool logVerbose();

/** panic() unless the condition holds. */
#define SHRIMP_ASSERT(cond, ...)                                          \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::shrimp::panic("assertion '", #cond, "' failed: ",           \
                            ##__VA_ARGS__);                               \
        }                                                                 \
    } while (0)

} // namespace shrimp

#endif // SHRIMP_SIM_LOGGING_HH
