/**
 * @file
 * A bounded single-producer/single-consumer lock-free ring.
 *
 * This is the cross-shard mailbox primitive of the sharded simulation
 * core (sim/sharded.hh): exactly one producer thread calls tryPush and
 * exactly one consumer thread calls tryPop. Synchronization is two
 * monotonic counters with acquire/release ordering — the producer owns
 * tail_, the consumer owns head_, and each reads the other's counter
 * with acquire to observe the slots it publishes/releases.
 *
 * Capacity is rounded up to a power of two so the index math is a
 * mask. A full ring refuses the push (the engine spills to a plain
 * vector that only crosses threads under a barrier).
 */

#ifndef SHRIMP_SIM_SPSC_HH
#define SHRIMP_SIM_SPSC_HH

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

#include "sim/logging.hh"

namespace shrimp::sim
{

template <typename T>
class SpscRing
{
  public:
    explicit SpscRing(std::size_t min_capacity)
    {
        SHRIMP_ASSERT(min_capacity > 0, "zero-capacity ring");
        std::size_t cap = 1;
        while (cap < min_capacity)
            cap <<= 1;
        slots_.resize(cap);
        mask_ = cap - 1;
    }

    SpscRing(const SpscRing &) = delete;
    SpscRing &operator=(const SpscRing &) = delete;

    std::size_t capacity() const { return slots_.size(); }

    /** Producer side. False (and @p v untouched) when full. */
    bool
    tryPush(T &&v)
    {
        const std::size_t t = tail_.load(std::memory_order_relaxed);
        if (t - head_.load(std::memory_order_acquire) == slots_.size())
            return false;
        slots_[t & mask_] = std::move(v);
        tail_.store(t + 1, std::memory_order_release);
        return true;
    }

    /** Consumer side. False when empty. */
    bool
    tryPop(T &out)
    {
        const std::size_t h = head_.load(std::memory_order_relaxed);
        if (tail_.load(std::memory_order_acquire) == h)
            return false;
        out = std::move(slots_[h & mask_]);
        // Reset the slot: a moved-from T may still own resources
        // (captured lambda state, heap buffers), and leaving it in
        // the ring would keep them alive until the slot is reused —
        // or forever, for a ring that drains and then idles.
        slots_[h & mask_] = T{};
        head_.store(h + 1, std::memory_order_release);
        return true;
    }

    /** Consumer-side view (racy as a predicate; exact under a
     *  barrier, which is the only place the engine relies on it). */
    bool
    empty() const
    {
        return tail_.load(std::memory_order_acquire)
               == head_.load(std::memory_order_acquire);
    }

    std::size_t
    size() const
    {
        return tail_.load(std::memory_order_acquire)
               - head_.load(std::memory_order_acquire);
    }

  private:
    std::vector<T> slots_;
    std::size_t mask_ = 0;
    /** Consumer cursor on its own cache line. */
    alignas(64) std::atomic<std::size_t> head_{0};
    /** Producer cursor on its own cache line. */
    alignas(64) std::atomic<std::size_t> tail_{0};
};

} // namespace shrimp::sim

#endif // SHRIMP_SIM_SPSC_HH
