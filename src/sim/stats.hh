/**
 * @file
 * A small gem5-flavoured statistics package.
 *
 * Components own named statistics (scalars, averages, histograms,
 * distributions by key, derived formulas) registered in a StatGroup; a
 * System can dump every group to a stream at the end of a run, either
 * as text or as JSON via the visitor interface. Stats never affect
 * simulated behaviour.
 *
 * Naming convention: a stat's full name is `component.metric`
 * (e.g. `kernel.i1_invals`, `engine.xfer_us`); System adds a
 * `nodeN.` prefix when dumping per-node groups.
 */

#ifndef SHRIMP_SIM_STATS_HH
#define SHRIMP_SIM_STATS_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace shrimp::sim { class JsonWriter; }

namespace shrimp::stats
{

/** A monotonically accumulated scalar (count or sum). */
class Scalar
{
  public:
    Scalar &operator++() { ++value_; return *this; }
    Scalar &operator+=(double v) { value_ += v; return *this; }
    void reset() { value_ = 0; }
    double value() const { return value_; }

  private:
    double value_ = 0;
};

/** Mean/min/max over observed samples. */
class Average
{
  public:
    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
        min_ = count_ == 1 ? v : std::min(min_, v);
        max_ = count_ == 1 ? v : std::max(max_, v);
    }

    void
    reset()
    {
        sum_ = 0;
        count_ = 0;
        min_ = 0;
        max_ = 0;
    }

    /** Fold another Average's samples into this one (exact). */
    void
    merge(const Average &other)
    {
        if (other.count_ == 0)
            return;
        if (count_ == 0) {
            *this = other;
            return;
        }
        sum_ += other.sum_;
        count_ += other.count_;
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / double(count_) : 0.0; }
    double min() const { return min_; }
    double max() const { return max_; }

  private:
    double sum_ = 0;
    std::uint64_t count_ = 0;
    double min_ = 0;
    double max_ = 0;
};

/** Fixed-bucket histogram over [lo, hi) with uniform bucket width. */
class Histogram
{
  public:
    Histogram() : Histogram(0, 1, 1) {}

    Histogram(double lo, double hi, std::size_t buckets)
        : lo_(lo), hi_(hi), buckets_(std::max<std::size_t>(buckets, 1)),
          counts_(buckets_ + 2, 0)
    {}

    void
    sample(double v)
    {
        stats_.sample(v);
        if (v < lo_) {
            ++counts_.front();
        } else if (v >= hi_) {
            ++counts_.back();
        } else {
            auto idx = std::size_t((v - lo_) / (hi_ - lo_) * buckets_);
            ++counts_[1 + std::min(idx, buckets_ - 1)];
        }
    }

    void
    reset()
    {
        stats_.reset();
        std::fill(counts_.begin(), counts_.end(), 0);
    }

    /**
     * Fold another histogram's population into this one. The summary
     * (count/sum/min/max) merge is exact; bucket counts are remapped
     * by source-bucket midpoint when the geometries differ, so shape
     * is approximate at the target's resolution. Source underflows
     * stay underflows; source overflows overflow unless the target
     * range extends beyond the source's.
     */
    void
    merge(const Histogram &other)
    {
        stats_.merge(other.stats_);
        counts_.front() += other.counts_.front();
        for (std::size_t i = 0; i < other.buckets_; ++i) {
            const std::uint64_t n = other.counts_[1 + i];
            if (n == 0)
                continue;
            addCount(other.bucketLo(i) + other.bucketWidth() / 2, n);
        }
        if (other.counts_.back() > 0) {
            if (other.hi_ >= hi_)
                counts_.back() += other.counts_.back();
            else
                addCount(other.hi_, other.counts_.back());
        }
    }

    const Average &summary() const { return stats_; }
    std::uint64_t underflows() const { return counts_.front(); }
    std::uint64_t overflows() const { return counts_.back(); }

    std::uint64_t
    bucket(std::size_t i) const
    {
        return counts_.at(i + 1);
    }

    std::size_t buckets() const { return buckets_; }
    double bucketLo(std::size_t i) const
    {
        return lo_ + (hi_ - lo_) * double(i) / double(buckets_);
    }

    double lo() const { return lo_; }
    double hi() const { return hi_; }
    double bucketWidth() const { return (hi_ - lo_) / double(buckets_); }

  private:
    /** Bucket-count bump without touching the summary (merge path). */
    void
    addCount(double v, std::uint64_t n)
    {
        if (v < lo_) {
            counts_.front() += n;
        } else if (v >= hi_) {
            counts_.back() += n;
        } else {
            auto idx = std::size_t((v - lo_) / (hi_ - lo_) * buckets_);
            counts_[1 + std::min(idx, buckets_ - 1)] += n;
        }
    }

    double lo_;
    double hi_;
    std::size_t buckets_;
    std::vector<std::uint64_t> counts_;
    Average stats_;
};

/** Sparse per-key event counts (e.g. queue depth at dispatch). */
class Distribution
{
  public:
    void
    sample(std::int64_t key, std::uint64_t n = 1)
    {
        counts_[key] += n;
        total_ += n;
    }

    void
    reset()
    {
        counts_.clear();
        total_ = 0;
    }

    std::uint64_t total() const { return total_; }
    const std::map<std::int64_t, std::uint64_t> &counts() const
    {
        return counts_;
    }

  private:
    std::map<std::int64_t, std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

/**
 * A derived stat evaluated at dump time from other stats
 * (e.g. bytes moved / busy time = bandwidth).
 */
class Formula
{
  public:
    Formula() = default;
    explicit Formula(std::function<double()> fn) : fn_(std::move(fn)) {}

    Formula &
    operator=(std::function<double()> fn)
    {
        fn_ = std::move(fn);
        return *this;
    }

    double value() const { return fn_ ? fn_() : 0.0; }

  private:
    std::function<double()> fn_;
};

/**
 * Visitor over a StatGroup's registered stats. beginGroup receives the
 * group's full dotted name (including any dump prefix); per-stat hooks
 * receive the short metric name. Stats are visited in registration
 * order, scalars first, then averages, histograms, distributions, and
 * formulas last.
 */
class StatVisitor
{
  public:
    virtual ~StatVisitor() = default;

    virtual void beginGroup(const std::string &fullName) { (void)fullName; }
    virtual void endGroup() {}

    virtual void scalar(const std::string &name, const std::string &desc,
                        const Scalar &s) = 0;
    virtual void average(const std::string &name, const std::string &desc,
                         const Average &a) = 0;
    virtual void histogram(const std::string &name, const std::string &desc,
                           const Histogram &h) = 0;
    virtual void distribution(const std::string &name,
                              const std::string &desc,
                              const Distribution &d) = 0;
    virtual void formula(const std::string &name, const std::string &desc,
                         const Formula &f) = 0;
};

/** Prints `group.metric value` lines, gem5-dump style. */
class TextDumper : public StatVisitor
{
  public:
    explicit TextDumper(std::ostream &os) : os_(os) {}

    void beginGroup(const std::string &fullName) override;
    void scalar(const std::string &name, const std::string &desc,
                const Scalar &s) override;
    void average(const std::string &name, const std::string &desc,
                 const Average &a) override;
    void histogram(const std::string &name, const std::string &desc,
                   const Histogram &h) override;
    void distribution(const std::string &name, const std::string &desc,
                      const Distribution &d) override;
    void formula(const std::string &name, const std::string &desc,
                 const Formula &f) override;

  private:
    std::ostream &os_;
    std::string group_;
};

/**
 * Writes each group as a JSON object keyed by its full name. The
 * caller owns the surrounding JsonWriter and must already be inside an
 * object; one `"group": { "metric": ... }` member is emitted per
 * visited group. Scalars and formulas become numbers; averages,
 * histograms, and distributions become objects (histograms carry a
 * `buckets` array plus the bucket geometry).
 */
class JsonDumper : public StatVisitor
{
  public:
    explicit JsonDumper(sim::JsonWriter &w) : w_(w) {}

    void beginGroup(const std::string &fullName) override;
    void endGroup() override;
    void scalar(const std::string &name, const std::string &desc,
                const Scalar &s) override;
    void average(const std::string &name, const std::string &desc,
                 const Average &a) override;
    void histogram(const std::string &name, const std::string &desc,
                   const Histogram &h) override;
    void distribution(const std::string &name, const std::string &desc,
                      const Distribution &d) override;
    void formula(const std::string &name, const std::string &desc,
                 const Formula &f) override;

  private:
    sim::JsonWriter &w_;
};

/**
 * A named collection of statistics. Components hold one of these and
 * register their stats in it; registration stores pointers, so stats
 * must outlive the group (the normal case: both are members of the
 * same component).
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    void
    addScalar(const std::string &name, const Scalar *s,
              const std::string &desc = {})
    {
        scalars_.push_back({name, desc, s});
    }

    void
    addAverage(const std::string &name, const Average *a,
               const std::string &desc = {})
    {
        averages_.push_back({name, desc, a});
    }

    void
    addHistogram(const std::string &name, const Histogram *h,
                 const std::string &desc = {})
    {
        histograms_.push_back({name, desc, h});
    }

    void
    addDistribution(const std::string &name, const Distribution *d,
                    const std::string &desc = {})
    {
        distributions_.push_back({name, desc, d});
    }

    void
    addFormula(const std::string &name, const Formula *f,
               const std::string &desc = {})
    {
        formulas_.push_back({name, desc, f});
    }

    const std::string &name() const { return name_; }

    /** Visit every registered stat; prefix is prepended to the name. */
    void accept(StatVisitor &v, const std::string &prefix = {}) const;

    /** Print all registered stats, one per line, gem5-dump style. */
    void dump(std::ostream &os, const std::string &prefix = {}) const;

    /** Write this group's stats as one standalone JSON object. */
    void dumpJson(std::ostream &os) const;

  private:
    template <typename T>
    struct Entry
    {
        std::string name;
        std::string desc;
        const T *stat;
    };

    std::string name_;
    std::vector<Entry<Scalar>> scalars_;
    std::vector<Entry<Average>> averages_;
    std::vector<Entry<Histogram>> histograms_;
    std::vector<Entry<Distribution>> distributions_;
    std::vector<Entry<Formula>> formulas_;
};

} // namespace shrimp::stats

#endif // SHRIMP_SIM_STATS_HH
