/**
 * @file
 * A small gem5-flavoured statistics package.
 *
 * Components own named statistics (scalars, averages, histograms,
 * distributions by key) registered in a StatGroup; a System can dump
 * every group to a stream at the end of a run. Stats never affect
 * simulated behaviour.
 */

#ifndef SHRIMP_SIM_STATS_HH
#define SHRIMP_SIM_STATS_HH

#include <algorithm>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace shrimp::stats
{

/** A monotonically accumulated scalar (count or sum). */
class Scalar
{
  public:
    Scalar &operator++() { ++value_; return *this; }
    Scalar &operator+=(double v) { value_ += v; return *this; }
    void reset() { value_ = 0; }
    double value() const { return value_; }

  private:
    double value_ = 0;
};

/** Mean/min/max over observed samples. */
class Average
{
  public:
    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
        min_ = count_ == 1 ? v : std::min(min_, v);
        max_ = count_ == 1 ? v : std::max(max_, v);
    }

    void
    reset()
    {
        sum_ = 0;
        count_ = 0;
        min_ = 0;
        max_ = 0;
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / double(count_) : 0.0; }
    double min() const { return min_; }
    double max() const { return max_; }

  private:
    double sum_ = 0;
    std::uint64_t count_ = 0;
    double min_ = 0;
    double max_ = 0;
};

/** Fixed-bucket histogram over [lo, hi) with uniform bucket width. */
class Histogram
{
  public:
    Histogram() : Histogram(0, 1, 1) {}

    Histogram(double lo, double hi, std::size_t buckets)
        : lo_(lo), hi_(hi), buckets_(std::max<std::size_t>(buckets, 1)),
          counts_(buckets_ + 2, 0)
    {}

    void
    sample(double v)
    {
        stats_.sample(v);
        if (v < lo_) {
            ++counts_.front();
        } else if (v >= hi_) {
            ++counts_.back();
        } else {
            auto idx = std::size_t((v - lo_) / (hi_ - lo_) * buckets_);
            ++counts_[1 + std::min(idx, buckets_ - 1)];
        }
    }

    void
    reset()
    {
        stats_.reset();
        std::fill(counts_.begin(), counts_.end(), 0);
    }

    const Average &summary() const { return stats_; }
    std::uint64_t underflows() const { return counts_.front(); }
    std::uint64_t overflows() const { return counts_.back(); }

    std::uint64_t
    bucket(std::size_t i) const
    {
        return counts_.at(i + 1);
    }

    std::size_t buckets() const { return buckets_; }
    double bucketLo(std::size_t i) const
    {
        return lo_ + (hi_ - lo_) * double(i) / double(buckets_);
    }

  private:
    double lo_;
    double hi_;
    std::size_t buckets_;
    std::vector<std::uint64_t> counts_;
    Average stats_;
};

/**
 * A named collection of statistics. Components hold one of these and
 * register their stats in it; registration stores pointers, so stats
 * must outlive the group (the normal case: both are members of the
 * same component).
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    void
    addScalar(const std::string &name, const Scalar *s,
              const std::string &desc = {})
    {
        scalars_.push_back({name, desc, s});
    }

    void
    addAverage(const std::string &name, const Average *a,
               const std::string &desc = {})
    {
        averages_.push_back({name, desc, a});
    }

    const std::string &name() const { return name_; }

    /** Print all registered stats, one per line, gem5-dump style. */
    void dump(std::ostream &os) const;

  private:
    template <typename T>
    struct Entry
    {
        std::string name;
        std::string desc;
        const T *stat;
    };

    std::string name_;
    std::vector<Entry<Scalar>> scalars_;
    std::vector<Entry<Average>> averages_;
};

} // namespace shrimp::stats

#endif // SHRIMP_SIM_STATS_HH
