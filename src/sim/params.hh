/**
 * @file
 * Machine timing parameters.
 *
 * One struct holds every latency and bandwidth constant in the
 * simulated machine, with defaults calibrated to the 1995/96 SHRIMP
 * prototype described in the paper: 60 MHz Pentium Xpress PC nodes, an
 * EISA expansion bus carrying the network interface, and an Intel
 * Paragon routing backplane. Experiments override individual fields.
 *
 * Calibration anchors from the paper's text:
 *  - two-reference UDMA initiation plus alignment check: ~2.8 us,
 *  - EISA burst DMA: ~23 MB/s sustained (SHRIMP's measured peak),
 *  - traditional DMA initiation: hundreds to thousands of
 *    instructions (syscall, translate, pin, descriptor, interrupt,
 *    unpin),
 *  - Paragon HIPPI: >350 us per-transfer overhead on a 100 MB/s
 *    channel.
 */

#ifndef SHRIMP_SIM_PARAMS_HH
#define SHRIMP_SIM_PARAMS_HH

#include <cstdint>

#include "sim/types.hh"

namespace shrimp::sim
{

/** All timing/size knobs for one simulated machine (all nodes alike). */
struct MachineParams
{
    // ------------------------------------------------------------- CPU
    /** CPU clock (Hz). Pentium 60. */
    double cpuFreqHz = 60e6;

    /** Average cycles retired per simulated "instruction". */
    double cyclesPerInstr = 1.0;

    // ---------------------------------------------------------- memory
    /** Virtual memory page size (bytes). */
    std::uint32_t pageBytes = 4096;

    /** Cache-missing main-memory reference latency (ns). */
    double memAccessNs = 150.0;

    /** Extra cycles for a hardware page-table walk on a TLB miss. */
    std::uint32_t tlbMissCycles = 24;

    /**
     * Uncached I/O-space reference latency (ns): CPU cycle across the
     * Xpress host bridge onto EISA and back. Each of the two UDMA
     * initiation references pays this.
     */
    double ioAccessNs = 900.0;

    /**
     * Instructions of user code around the two-reference initiation
     * (the paper's "check data alignment with regard to page
     * boundaries"). 60 instructions at 60 MHz ~= 1 us, which together
     * with two 0.9 us I/O references reproduces the paper's 2.8 us.
     */
    std::uint32_t udmaInitiateSoftwareInstr = 60;

    // ------------------------------------------------------------- bus
    /** EISA burst-mode DMA bandwidth (bytes/s). SHRIMP measured peak. */
    double eisaBurstBytesPerSec = 23e6;

    /** EISA single-word (non-burst) transaction latency (ns). */
    double eisaWordNs = 900.0;

    /** Bytes moved per burst beat (EISA is 32-bit). */
    std::uint32_t busWordBytes = 4;

    /** DMA engine start latency: setup + first bus arbitration (ns). */
    double dmaStartNs = 4000.0;

    // ------------------------------------------------ network interface
    /** NIPT lookup + packet header construction (ns). */
    double niptLookupNs = 2500.0;

    /** Outgoing/incoming FIFO capacity (bytes). */
    std::uint32_t niFifoBytes = 8192;

    /** Packet header size on the wire (bytes). */
    std::uint32_t niHeaderBytes = 16;

    /** Receive-side EISA DMA logic start latency (ns). */
    double rxDmaStartNs = 3000.0;

    /** Automatic-update write-combining window (ns): how long the
     *  board holds an open update packet for contiguous successors. */
    double autoCombineWindowNs = 1500.0;

    /** Receive-side completion visibility (flag lands in memory, ns). */
    double rxCompletionNs = 1000.0;

    /**
     * Initial sender-side retransmit timeout (us). Re-armed afresh on
     * every cumulative-ack advance, so on a healthy link the timer
     * never fires: fault-free runs pay no retransmissions. Doubled on
     * each expiry up to niRetryTimeoutMaxUs (capped exponential
     * backoff).
     */
    double niRetryTimeoutUs = 200.0;

    /** Retransmit-backoff ceiling (us). */
    double niRetryTimeoutMaxUs = 3200.0;

    /**
     * Floor for the RTT-adaptive retransmit timeout (us). Once the
     * sender has SRTT/RTTVAR samples the RTO tracks srtt + 4*rttvar,
     * but never below this — a spuriously small variance must not
     * turn one delayed ack into a retransmit storm.
     */
    double niRtoMinUs = 50.0;

    // ----------------------------------------------------- interconnect
    /** Backplane link bandwidth (bytes/s). Paragon mesh class. */
    double linkBytesPerSec = 200e6;

    /** Per-hop routing latency (ns). */
    double linkLatencyNs = 1000.0;

    // ------------------------------------------------- operating system
    /** Scheduler quantum (us). */
    double quantumUs = 10000.0;

    /** Context-switch instructions (save/restore, dispatch). */
    std::uint32_t contextSwitchInstr = 200;

    /** Syscall trap entry + exit instructions. */
    std::uint32_t syscallInstr = 300;

    /** Kernel page-fault handling instructions (excluding any I/O). */
    std::uint32_t pageFaultInstr = 350;

    /** Backing-store (swap disk) access latency for one page (us). */
    double swapPageUs = 12000.0;

    /** Data-disk access latency (seek + rotation) per request (us). */
    double diskAccessUs = 9000.0;

    // ------------------------------------ traditional DMA baseline costs
    /** Per-page virtual->physical translate + permission check. */
    std::uint32_t dmaTranslateInstrPerPage = 150;

    /** Per-page pin (and the matching unpin) page-table updates. */
    std::uint32_t dmaPinInstrPerPage = 250;
    std::uint32_t dmaUnpinInstrPerPage = 150;

    /** DMA descriptor construction. */
    std::uint32_t dmaDescriptorInstr = 100;

    /** Completion interrupt service (dispatch + handler + return). */
    std::uint32_t dmaInterruptInstr = 400;

    /** Copy cost for bounce-buffer mode (instructions per word moved). */
    double dmaCopyInstrPerWord = 1.5;

    // -------------------------------------------------- derived helpers
    /** One CPU cycle in ticks. */
    Tick
    cpuCycle() const
    {
        return Tick(double(tickSec) / cpuFreqHz);
    }

    /** Ticks to retire @p n instructions. */
    Tick
    instrTicks(double n) const
    {
        return Tick(n * cyclesPerInstr * double(cpuCycle()));
    }

    /** Ticks for an uncached memory reference. */
    Tick memAccess() const { return Tick(memAccessNs * tickNs); }

    /** Ticks for an uncached I/O-space reference. */
    Tick ioAccess() const { return Tick(ioAccessNs * tickNs); }

    /** Ticks to move @p bytes in EISA burst mode. */
    Tick
    eisaBurst(std::uint64_t bytes) const
    {
        return Tick(double(bytes) / eisaBurstBytesPerSec
                    * double(tickSec));
    }

    /** Ticks to move @p bytes across one backplane link. */
    Tick
    linkTransfer(std::uint64_t bytes) const
    {
        return Tick(double(bytes) / linkBytesPerSec * double(tickSec));
    }

    Tick dmaStart() const { return Tick(dmaStartNs * tickNs); }
    Tick niptLookup() const { return Tick(niptLookupNs * tickNs); }
    Tick rxDmaStart() const { return Tick(rxDmaStartNs * tickNs); }
    Tick autoCombineWindow() const
    {
        return Tick(autoCombineWindowNs * tickNs);
    }
    Tick rxCompletion() const { return Tick(rxCompletionNs * tickNs); }
    Tick niRetryTimeout() const
    {
        return Tick(niRetryTimeoutUs * tickUs);
    }
    Tick niRetryTimeoutMax() const
    {
        return Tick(niRetryTimeoutMaxUs * tickUs);
    }
    Tick niRtoMin() const { return Tick(niRtoMinUs * tickUs); }
    Tick linkLatency() const { return Tick(linkLatencyNs * tickNs); }
    Tick quantum() const { return Tick(quantumUs * tickUs); }
    Tick swapPage() const { return Tick(swapPageUs * tickUs); }
    Tick diskAccess() const { return Tick(diskAccessUs * tickUs); }
    Tick eisaWord() const { return Tick(eisaWordNs * tickNs); }
};

} // namespace shrimp::sim

#endif // SHRIMP_SIM_PARAMS_HH
