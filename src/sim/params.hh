/**
 * @file
 * Machine timing parameters.
 *
 * One struct holds every latency and bandwidth constant in the
 * simulated machine, with defaults calibrated to the 1995/96 SHRIMP
 * prototype described in the paper: 60 MHz Pentium Xpress PC nodes, an
 * EISA expansion bus carrying the network interface, and an Intel
 * Paragon routing backplane. Experiments override individual fields.
 *
 * Calibration anchors from the paper's text:
 *  - two-reference UDMA initiation plus alignment check: ~2.8 us,
 *  - EISA burst DMA: ~23 MB/s sustained (SHRIMP's measured peak),
 *  - traditional DMA initiation: hundreds to thousands of
 *    instructions (syscall, translate, pin, descriptor, interrupt,
 *    unpin),
 *  - Paragon HIPPI: >350 us per-transfer overhead on a 100 MB/s
 *    channel.
 */

#ifndef SHRIMP_SIM_PARAMS_HH
#define SHRIMP_SIM_PARAMS_HH

#include <cstdint>
#include <cstdlib>
#include <ostream>
#include <string>

#include "sim/types.hh"

namespace shrimp::sim
{

/**
 * How the backplane wires the nodes together. The default crossbar is
 * distance-uniform (every pair one hop apart, each node serializing
 * its traffic onto a dedicated injection link); a 2D mesh or torus
 * routes packets dimension-order (X then Y) across shared physical
 * links, so latency and contention scale with distance — the shape of
 * the Paragon backplane the SHRIMP prototype actually rode.
 *
 * Nodes map onto the grid row-major: node = y * dimX + x. The struct
 * owns the pure routing arithmetic (distance, next hop) so the
 * Interconnect, the FIFO-NIC baseline fabric, and the tests all agree
 * on the path a packet takes.
 */
struct TopologyConfig
{
    enum class Kind
    {
        Crossbar,
        Mesh,
        Torus,
    };

    Kind kind = Kind::Crossbar;
    /** Grid dimensions (mesh/torus only; node = y * dimX + x). */
    unsigned dimX = 0;
    unsigned dimY = 0;
    /** True once a spec was parsed or a caller filled the struct
     *  deliberately; lets an explicit config override the SHRIMP_TOPO
     *  environment default in core::System. */
    bool specified = false;

    bool flat() const { return kind == Kind::Crossbar; }

    /** Nodes the grid wires (0 = any, for the crossbar). */
    unsigned
    gridNodes() const
    {
        return flat() ? 0 : dimX * dimY;
    }

    std::string
    describe() const
    {
        switch (kind) {
          case Kind::Mesh:
            return "mesh:" + std::to_string(dimX) + "x"
                   + std::to_string(dimY);
          case Kind::Torus:
            return "torus:" + std::to_string(dimX) + "x"
                   + std::to_string(dimY);
          case Kind::Crossbar:
          default:
            return "crossbar";
        }
    }

    /**
     * Hops a packet from @p src to @p dst traverses under
     * dimension-order routing; 1 for the crossbar (and for src == dst,
     * so the one-hop delivery floor survives degenerate self-sends).
     */
    unsigned
    hops(NodeId src, NodeId dst) const
    {
        if (flat() || src == dst)
            return 1;
        const unsigned d = axisDist(src % dimX, dst % dimX, dimX)
                           + axisDist(src / dimX, dst / dimX, dimY);
        return d == 0 ? 1 : d;
    }

    /**
     * The next node on the dimension-order (X-then-Y) route toward
     * @p dst. The crossbar delivers in one hop, so the next hop *is*
     * the destination. On the torus each axis walks the shorter way
     * around; an exact half-ring tie breaks toward +X/+Y, so the path
     * is a pure function of (src, dst) — per-flow FIFO order needs
     * every chunk of a flow on the same links.
     */
    NodeId
    nextHop(NodeId from, NodeId dst) const
    {
        if (flat() || from == dst)
            return dst;
        const unsigned x = unsigned(from) % dimX;
        const unsigned y = unsigned(from) / dimX;
        const unsigned dx = unsigned(dst) % dimX;
        const unsigned dy = unsigned(dst) / dimX;
        if (x != dx)
            return NodeId(y * dimX + axisStep(x, dx, dimX));
        return NodeId(axisStep(y, dy, dimY) * dimX + x);
    }

  private:
    unsigned
    axisDist(unsigned a, unsigned b, unsigned dim) const
    {
        const unsigned d = a > b ? a - b : b - a;
        if (kind != Kind::Torus)
            return d;
        return d < dim - d ? d : dim - d;
    }

    /** One dimension-order step from @p a toward @p b along an axis
     *  of @p dim slots (wrapping on the torus). */
    unsigned
    axisStep(unsigned a, unsigned b, unsigned dim) const
    {
        if (kind != Kind::Torus)
            return a < b ? a + 1 : a - 1;
        const unsigned fwd = b >= a ? b - a : b + dim - a;
        // Shorter way around; the half-ring tie goes forward (+).
        if (fwd <= dim - fwd)
            return (a + 1) % dim;
        return (a + dim - 1) % dim;
    }
};

/**
 * Parse a topology spec into @p out:
 *
 *   crossbar          the flat default
 *   mesh:WxH          2D mesh, W columns by H rows, row-major ids
 *   torus:WxH         same grid with wraparound links
 *
 * Returns false (and explains on @p err, if given) on a malformed
 * spec. The node-count match (W*H == nodes) is the System's job: the
 * parser does not know the machine size.
 */
inline bool
parseTopologySpec(const std::string &spec, TopologyConfig &out,
                  std::ostream *err)
{
    auto fail = [&](const char *why) {
        if (err)
            *err << "topology spec '" << spec << "': " << why << "\n";
        return false;
    };
    if (spec == "crossbar") {
        out.kind = TopologyConfig::Kind::Crossbar;
        out.dimX = out.dimY = 0;
        out.specified = true;
        return true;
    }
    TopologyConfig::Kind kind;
    std::string dims;
    if (spec.rfind("mesh:", 0) == 0) {
        kind = TopologyConfig::Kind::Mesh;
        dims = spec.substr(5);
    } else if (spec.rfind("torus:", 0) == 0) {
        kind = TopologyConfig::Kind::Torus;
        dims = spec.substr(6);
    } else {
        return fail("want crossbar, mesh:WxH or torus:WxH");
    }
    const std::size_t x = dims.find('x');
    if (x == std::string::npos || x == 0 || x + 1 >= dims.size())
        return fail("dimensions want WxH");
    char *end = nullptr;
    const unsigned long w = std::strtoul(dims.c_str(), &end, 10);
    if (!end || *end != 'x')
        return fail("bad width");
    const unsigned long h = std::strtoul(end + 1, &end, 10);
    if (!end || *end != '\0')
        return fail("bad height");
    if (w < 1 || h < 1 || w * h < 2)
        return fail("want at least a 2-node grid");
    out.kind = kind;
    out.dimX = unsigned(w);
    out.dimY = unsigned(h);
    out.specified = true;
    return true;
}

/** All timing/size knobs for one simulated machine (all nodes alike). */
struct MachineParams
{
    // ------------------------------------------------------------- CPU
    /** CPU clock (Hz). Pentium 60. */
    double cpuFreqHz = 60e6;

    /** Average cycles retired per simulated "instruction". */
    double cyclesPerInstr = 1.0;

    // ---------------------------------------------------------- memory
    /** Virtual memory page size (bytes). */
    std::uint32_t pageBytes = 4096;

    /** Cache-missing main-memory reference latency (ns). */
    double memAccessNs = 150.0;

    /** Extra cycles for a hardware page-table walk on a TLB miss. */
    std::uint32_t tlbMissCycles = 24;

    /**
     * Uncached I/O-space reference latency (ns): CPU cycle across the
     * Xpress host bridge onto EISA and back. Each of the two UDMA
     * initiation references pays this.
     */
    double ioAccessNs = 900.0;

    /**
     * Instructions of user code around the two-reference initiation
     * (the paper's "check data alignment with regard to page
     * boundaries"). 60 instructions at 60 MHz ~= 1 us, which together
     * with two 0.9 us I/O references reproduces the paper's 2.8 us.
     */
    std::uint32_t udmaInitiateSoftwareInstr = 60;

    // ------------------------------------------------------------- bus
    /** EISA burst-mode DMA bandwidth (bytes/s). SHRIMP measured peak. */
    double eisaBurstBytesPerSec = 23e6;

    /** EISA single-word (non-burst) transaction latency (ns). */
    double eisaWordNs = 900.0;

    /** Bytes moved per burst beat (EISA is 32-bit). */
    std::uint32_t busWordBytes = 4;

    /** DMA engine start latency: setup + first bus arbitration (ns). */
    double dmaStartNs = 4000.0;

    // ------------------------------------------------ network interface
    /** NIPT lookup + packet header construction (ns). */
    double niptLookupNs = 2500.0;

    /** Outgoing/incoming FIFO capacity (bytes). */
    std::uint32_t niFifoBytes = 8192;

    /** Packet header size on the wire (bytes). */
    std::uint32_t niHeaderBytes = 16;

    /** Receive-side EISA DMA logic start latency (ns). */
    double rxDmaStartNs = 3000.0;

    /** Automatic-update write-combining window (ns): how long the
     *  board holds an open update packet for contiguous successors. */
    double autoCombineWindowNs = 1500.0;

    /** Receive-side completion visibility (flag lands in memory, ns). */
    double rxCompletionNs = 1000.0;

    /**
     * Initial sender-side retransmit timeout (us). Re-armed afresh on
     * every cumulative-ack advance, so on a healthy link the timer
     * never fires: fault-free runs pay no retransmissions. Doubled on
     * each expiry up to niRetryTimeoutMaxUs (capped exponential
     * backoff).
     */
    double niRetryTimeoutUs = 200.0;

    /** Retransmit-backoff ceiling (us). */
    double niRetryTimeoutMaxUs = 3200.0;

    /**
     * Floor for the RTT-adaptive retransmit timeout (us). Once the
     * sender has SRTT/RTTVAR samples the RTO tracks srtt + 4*rttvar,
     * but never below this — a spuriously small variance must not
     * turn one delayed ack into a retransmit storm.
     */
    double niRtoMinUs = 50.0;

    // ----------------------------------------------------- interconnect
    /** Backplane link bandwidth (bytes/s). Paragon mesh class. */
    double linkBytesPerSec = 200e6;

    /** Per-hop routing latency (ns). */
    double linkLatencyNs = 1000.0;

    // ------------------------------------------------- operating system
    /** Scheduler quantum (us). */
    double quantumUs = 10000.0;

    /** Context-switch instructions (save/restore, dispatch). */
    std::uint32_t contextSwitchInstr = 200;

    /** Syscall trap entry + exit instructions. */
    std::uint32_t syscallInstr = 300;

    /** Kernel page-fault handling instructions (excluding any I/O). */
    std::uint32_t pageFaultInstr = 350;

    /** Backing-store (swap disk) access latency for one page (us). */
    double swapPageUs = 12000.0;

    /** Data-disk access latency (seek + rotation) per request (us). */
    double diskAccessUs = 9000.0;

    // ------------------------------------ traditional DMA baseline costs
    /** Per-page virtual->physical translate + permission check. */
    std::uint32_t dmaTranslateInstrPerPage = 150;

    /** Per-page pin (and the matching unpin) page-table updates. */
    std::uint32_t dmaPinInstrPerPage = 250;
    std::uint32_t dmaUnpinInstrPerPage = 150;

    /** DMA descriptor construction. */
    std::uint32_t dmaDescriptorInstr = 100;

    /** Completion interrupt service (dispatch + handler + return). */
    std::uint32_t dmaInterruptInstr = 400;

    /** Copy cost for bounce-buffer mode (instructions per word moved). */
    double dmaCopyInstrPerWord = 1.5;

    // -------------------------------------------------- derived helpers
    /** One CPU cycle in ticks. */
    Tick
    cpuCycle() const
    {
        return Tick(double(tickSec) / cpuFreqHz);
    }

    /** Ticks to retire @p n instructions. */
    Tick
    instrTicks(double n) const
    {
        return Tick(n * cyclesPerInstr * double(cpuCycle()));
    }

    /** Ticks for an uncached memory reference. */
    Tick memAccess() const { return Tick(memAccessNs * tickNs); }

    /** Ticks for an uncached I/O-space reference. */
    Tick ioAccess() const { return Tick(ioAccessNs * tickNs); }

    /** Ticks to move @p bytes in EISA burst mode. */
    Tick
    eisaBurst(std::uint64_t bytes) const
    {
        return Tick(double(bytes) / eisaBurstBytesPerSec
                    * double(tickSec));
    }

    /** Ticks to move @p bytes across one backplane link. */
    Tick
    linkTransfer(std::uint64_t bytes) const
    {
        return Tick(double(bytes) / linkBytesPerSec * double(tickSec));
    }

    Tick dmaStart() const { return Tick(dmaStartNs * tickNs); }
    Tick niptLookup() const { return Tick(niptLookupNs * tickNs); }
    Tick rxDmaStart() const { return Tick(rxDmaStartNs * tickNs); }
    Tick autoCombineWindow() const
    {
        return Tick(autoCombineWindowNs * tickNs);
    }
    Tick rxCompletion() const { return Tick(rxCompletionNs * tickNs); }
    Tick niRetryTimeout() const
    {
        return Tick(niRetryTimeoutUs * tickUs);
    }
    Tick niRetryTimeoutMax() const
    {
        return Tick(niRetryTimeoutMaxUs * tickUs);
    }
    Tick niRtoMin() const { return Tick(niRtoMinUs * tickUs); }
    Tick linkLatency() const { return Tick(linkLatencyNs * tickNs); }
    Tick quantum() const { return Tick(quantumUs * tickUs); }
    Tick swapPage() const { return Tick(swapPageUs * tickUs); }
    Tick diskAccess() const { return Tick(diskAccessUs * tickUs); }
    Tick eisaWord() const { return Tick(eisaWordNs * tickNs); }
};

} // namespace shrimp::sim

#endif // SHRIMP_SIM_PARAMS_HH
