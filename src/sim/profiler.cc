#include "sim/profiler.hh"

#include <algorithm>
#include <cstdio>

#include "sim/json.hh"
#include "sim/trace_sink.hh"

namespace shrimp::sim
{

ShardProfiler::ShardProfiler(unsigned shards)
    : slots_(std::max(shards, 1u)),
      origin_(std::chrono::steady_clock::now())
{
}

void
ShardProfiler::beginRun()
{
    for (auto &p : slots_)
        p.s = Slot{};
    skippedRuns_.store(0, std::memory_order_relaxed);
    for (auto &b : widthHist_)
        b.store(0, std::memory_order_relaxed);
    barSpinWakes_.store(0, std::memory_order_relaxed);
    barSleeps_.store(0, std::memory_order_relaxed);
    wallNs_ = 0;
    origin_ = std::chrono::steady_clock::now();
    running_ = true;
}

void
ShardProfiler::endRun()
{
    running_ = false;
    wallNs_ = nowNs();
}

void
ShardProfiler::notePlan(unsigned worker, std::uint64_t t0,
                        std::uint64_t t1)
{
    slots_[worker].s.planNs += t1 - t0;
    if (sink_)
        sink_->workerSlice(worker, "barrier.plan", t0, t1);
}

void
ShardProfiler::noteExecute(unsigned worker, std::uint64_t t0,
                           std::uint64_t t1, std::uint64_t events_fired)
{
    Slot &s = slots_[worker].s;
    ++s.windows;
    s.events += events_fired;
    const bool idle = events_fired == 0;
    if (idle) {
        ++s.idleWindows;
        s.idleNs += t1 - t0;
    } else {
        s.executeNs += t1 - t0;
    }
    if (sink_)
        sink_->workerSlice(worker, idle ? "idle" : "execute", t0, t1);
}

void
ShardProfiler::noteSync(unsigned worker, std::uint64_t t0,
                        std::uint64_t t1)
{
    slots_[worker].s.syncNs += t1 - t0;
    if (sink_)
        sink_->workerSlice(worker, "barrier.sync", t0, t1);
}

void
ShardProfiler::noteDrain(unsigned worker, std::uint64_t t0,
                         std::uint64_t t1, std::uint64_t drained)
{
    Slot &s = slots_[worker].s;
    s.drainNs += t1 - t0;
    s.drained += drained;
    s.maxDrainBatch = std::max(s.maxDrainBatch, drained);
    if (sink_)
        sink_->workerSlice(worker, "drain", t0, t1);
}

ShardProfiler::Slot
ShardProfiler::totals() const
{
    Slot t;
    for (const auto &p : slots_) {
        t.executeNs += p.s.executeNs;
        t.idleNs += p.s.idleNs;
        t.planNs += p.s.planNs;
        t.syncNs += p.s.syncNs;
        t.drainNs += p.s.drainNs;
        t.windows += p.s.windows;
        t.idleWindows += p.s.idleWindows;
        t.events += p.s.events;
        t.drained += p.s.drained;
        t.maxDrainBatch = std::max(t.maxDrainBatch, p.s.maxDrainBatch);
    }
    return t;
}

double
ShardProfiler::accountedFraction() const
{
    if (wallNs_ == 0)
        return 0;
    const double denom = double(wallNs_) * double(slots_.size());
    return double(totals().accountedNs()) / denom;
}

void
ShardProfiler::writeTable(std::ostream &os) const
{
    const double wall = double(std::max<std::uint64_t>(wallNs_, 1));
    auto pct = [wall](std::uint64_t ns) { return 100.0 * double(ns) / wall; };

    os << "-- shard time budget (parallel phase, wall "
       << wallNs_ / 1000000.0 << " ms) --\n";
    char line[256];
    std::snprintf(line, sizeof line,
                  "%-6s %9s %9s %9s %9s %9s %7s %9s %10s %9s\n", "shard",
                  "execute%", "plan%", "sync%", "drain%", "idle%",
                  "acct%", "windows", "events", "drained");
    os << line;
    for (unsigned i = 0; i < slots_.size(); ++i) {
        const Slot &s = slots_[i].s;
        std::snprintf(line, sizeof line,
                      "%-6u %8.1f%% %8.1f%% %8.1f%% %8.1f%% %8.1f%% "
                      "%6.1f%% %9llu %10llu %9llu\n",
                      i, pct(s.executeNs), pct(s.planNs), pct(s.syncNs),
                      pct(s.drainNs), pct(s.idleNs), pct(s.accountedNs()),
                      (unsigned long long)s.windows,
                      (unsigned long long)s.events,
                      (unsigned long long)s.drained);
        os << line;
    }
    const Slot t = totals();
    std::snprintf(line, sizeof line,
                  "%-6s %8.1f%% %8.1f%% %8.1f%% %8.1f%% %8.1f%% %6.1f%% "
                  "%9llu %10llu %9llu\n",
                  "all",
                  pct(t.executeNs) / slots_.size(),
                  pct(t.planNs) / slots_.size(),
                  pct(t.syncNs) / slots_.size(),
                  pct(t.drainNs) / slots_.size(),
                  pct(t.idleNs) / slots_.size(),
                  100.0 * accountedFraction(),
                  (unsigned long long)t.windows,
                  (unsigned long long)t.events,
                  (unsigned long long)t.drained);
    os << line;
    os << "skipped-window runs: " << skippedWindowRuns()
       << "; idle windows: " << t.idleWindows << " of " << t.windows
       << "\n";
    os << "barrier waits: " << barrierSpinWakes() << " spin, "
       << barrierFutexSleeps() << " futex-sleep\n";
    os << "window widths (ticks, log2): idle=" << windowWidthBucket(0);
    for (unsigned i = 1; i < widthBuckets; ++i) {
        const std::uint64_t n = windowWidthBucket(i);
        if (n != 0)
            os << " 2^" << (i - 1) << "=" << n;
    }
    os << "\n";
}

void
ShardProfiler::dumpJson(JsonWriter &w) const
{
    const Slot t = totals();
    w.beginObject();
    w.field("shards", unsigned(slots_.size()));
    w.field("wall_ns", wallNs_);
    w.field("accounted_frac", accountedFraction());
    w.field("skipped_window_runs", skippedWindowRuns());
    w.field("barrier_spin_wakes", barrierSpinWakes());
    w.field("barrier_futex_sleeps", barrierFutexSleeps());
    w.key("window_width_log2");
    w.beginArray();
    for (unsigned i = 0; i < widthBuckets; ++i)
        w.value(windowWidthBucket(i));
    w.endArray();
    w.key("totals_ns");
    w.beginObject();
    w.field("execute", t.executeNs);
    w.field("barrier_plan", t.planNs);
    w.field("barrier_sync", t.syncNs);
    w.field("drain", t.drainNs);
    w.field("idle", t.idleNs);
    w.endObject();
    w.key("per_shard");
    w.beginArray();
    for (unsigned i = 0; i < slots_.size(); ++i) {
        const Slot &s = slots_[i].s;
        w.beginObject();
        w.field("shard", i);
        w.field("execute_ns", s.executeNs);
        w.field("barrier_plan_ns", s.planNs);
        w.field("barrier_sync_ns", s.syncNs);
        w.field("drain_ns", s.drainNs);
        w.field("idle_ns", s.idleNs);
        w.field("windows", s.windows);
        w.field("idle_windows", s.idleWindows);
        w.field("events", s.events);
        w.field("drained", s.drained);
        w.field("max_drain_batch", s.maxDrainBatch);
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

} // namespace shrimp::sim
