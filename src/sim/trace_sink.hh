/**
 * @file
 * Chrome/Perfetto trace-event JSON export.
 *
 * A TraceSink collects trace events in two clock domains and writes
 * them as one trace-event-format document that ui.perfetto.dev (or
 * chrome://tracing) loads directly:
 *
 *  - Wall-clock worker timelines (pid 1): one track per shard worker
 *    thread, with "execute" / "idle" / "barrier.plan" /
 *    "barrier.sync" / "drain" slices emitted by the ShardProfiler.
 *    Timestamps are host nanoseconds since the profiler was created,
 *    written in microseconds as the format requires.
 *  - Sim-time tracks (pid 2 and 3): transfer-lifecycle spans pulled
 *    from span::Registry (one track per owner, e.g. "node0.udma0",
 *    complete "X" events) and network fault / retransmission instants
 *    fed by the NI ("node3.net" tracks). Timestamps are simulated
 *    microseconds (ticksToUs).
 *
 * The two domains share one file but not one clock; Perfetto shows
 * them as separate processes, which is exactly the right mental model
 * (see DESIGN.md §12).
 *
 * Thread-safety contract: workerSlice is lock-free — each shard
 * appends to its own preallocated row, mirroring the engine's
 * shard-private ownership. simInstant may be called from any worker
 * (fault events are rare) and takes a mutex. addSpanTracks and
 * write/writeFile are post-run, single-threaded.
 *
 * A process-global instance pointer (setGlobal) lets the NI emit
 * sim-domain instants without plumbing a sink reference through every
 * layer — the same one-experiment-per-process rationale as the trace
 * and span facilities.
 */

#ifndef SHRIMP_SIM_TRACE_SINK_HH
#define SHRIMP_SIM_TRACE_SINK_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace shrimp::sim
{

class TraceSink
{
  public:
    /** @param shards Number of wall-clock worker tracks (tid 0..N-1). */
    explicit TraceSink(unsigned shards);

    TraceSink(const TraceSink &) = delete;
    TraceSink &operator=(const TraceSink &) = delete;

    unsigned shards() const { return unsigned(rows_.size()); }

    /**
     * One wall-clock slice on shard @p shard's track (B/E pair in the
     * output). @p begin_ns / @p end_ns are profiler-relative host
     * nanoseconds, non-decreasing per shard. Lock-free per shard;
     * silently counted as dropped past the per-shard cap.
     */
    void workerSlice(unsigned shard, const char *name,
                     std::uint64_t begin_ns, std::uint64_t end_ns);

    /**
     * One sim-time instant on the named track (e.g. "node2.net"),
     * with up to two small numeric args. Mutex-guarded; intended for
     * rare events (fault decisions, retransmit timeouts).
     */
    void simInstant(const std::string &track, const char *name, Tick at,
                    const char *k0 = nullptr, std::uint64_t v0 = 0,
                    const char *k1 = nullptr, std::uint64_t v1 = 0);

    /**
     * One sim-time complete ("X") slice on the named track — used for
     * transfer spans. @p end must be >= @p start.
     */
    void simSlice(const std::string &track, const char *name, Tick start,
                  Tick end, const char *k0 = nullptr, std::uint64_t v0 = 0,
                  const char *k1 = nullptr, std::uint64_t v1 = 0);

    /**
     * Turn every retained span in span::registry() into an "X" slice
     * on a per-owner sim-time track (category "span", args id/bytes,
     * name = terminal outcome). Call after the run, before write().
     */
    void addSpanTracks();

    /** Total events collected so far (wall slices count as two). */
    std::uint64_t eventCount() const;

    /** Wall slices discarded because a shard row hit its cap. */
    std::uint64_t droppedSlices() const;

    /** Write the complete trace-event JSON document. */
    void write(std::ostream &os) const;

    /** write() to @p path; false (with a stderr note) on I/O failure. */
    bool writeFile(const std::string &path) const;

    // ----------------------------------------- global sim-domain hook
    /** The installed process-global sink (nullptr: tracing off). */
    static TraceSink *global()
    {
        return global_.load(std::memory_order_acquire);
    }

    /** Install/remove the process-global sink (nullptr to remove). */
    static void setGlobal(TraceSink *sink)
    {
        global_.store(sink, std::memory_order_release);
    }

  private:
    struct WallSlice
    {
        const char *name;
        std::uint64_t beginNs;
        std::uint64_t endNs;
    };

    struct Row
    {
        std::vector<WallSlice> slices;
        std::uint64_t dropped = 0;
    };

    struct SimEvent
    {
        std::string track;
        const char *name;
        Tick start;
        Tick end;     ///< == start for instants
        bool instant;
        const char *k0;
        std::uint64_t v0;
        const char *k1;
        std::uint64_t v1;
    };

    /** Per-shard wall-slice cap; keeps a runaway run bounded (~24 MB
     *  of slice records per shard) while never truncating the window
     *  counts any realistic bench produces. */
    static constexpr std::size_t maxSlicesPerShard = 1u << 20;

    std::vector<Row> rows_;
    mutable std::mutex simMu_;
    std::vector<SimEvent> simEvents_;

    // shrimp-lint: shard-safe(acquire/release hook pointer, installed before workers start; sink serializes internally)
    inline static std::atomic<TraceSink *> global_{nullptr};
};

} // namespace shrimp::sim

#endif // SHRIMP_SIM_TRACE_SINK_HH
