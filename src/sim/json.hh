/**
 * @file
 * A minimal streaming JSON writer.
 *
 * Used by the stats package's dumpJson, the span registry, and the
 * benchmark result files. Emits pretty-printed, strictly valid JSON:
 * keys in the order they are written (callers rely on this for stable,
 * diffable output), strings escaped, and non-finite doubles emitted as
 * 0 (JSON has no NaN/Inf).
 */

#ifndef SHRIMP_SIM_JSON_HH
#define SHRIMP_SIM_JSON_HH

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string_view>
#include <vector>

#include "sim/logging.hh"

namespace shrimp::sim
{

class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os_(os) {}

    JsonWriter(const JsonWriter &) = delete;
    JsonWriter &operator=(const JsonWriter &) = delete;

    void
    beginObject()
    {
        beforeValue();
        os_ << '{';
        stack_.push_back(Frame{true, false});
    }

    void
    endObject()
    {
        SHRIMP_ASSERT(!stack_.empty() && stack_.back().isObject,
                      "endObject outside an object");
        bool had = stack_.back().hasItems;
        stack_.pop_back();
        if (had) {
            os_ << '\n';
            indent();
        }
        os_ << '}';
    }

    void
    beginArray()
    {
        beforeValue();
        os_ << '[';
        stack_.push_back(Frame{false, false});
    }

    void
    endArray()
    {
        SHRIMP_ASSERT(!stack_.empty() && !stack_.back().isObject,
                      "endArray outside an array");
        bool had = stack_.back().hasItems;
        stack_.pop_back();
        if (had) {
            os_ << '\n';
            indent();
        }
        os_ << ']';
    }

    /** Write an object key; the next value call supplies its value. */
    void
    key(std::string_view k)
    {
        SHRIMP_ASSERT(!stack_.empty() && stack_.back().isObject,
                      "key outside an object");
        SHRIMP_ASSERT(!keyPending_, "two keys in a row");
        comma();
        writeString(k);
        os_ << ": ";
        keyPending_ = true;
    }

    void
    value(std::string_view v)
    {
        beforeValue();
        writeString(v);
    }

    void
    value(const char *v)
    {
        value(std::string_view(v));
    }

    void
    value(bool v)
    {
        beforeValue();
        os_ << (v ? "true" : "false");
    }

    void
    value(double v)
    {
        beforeValue();
        if (!std::isfinite(v)) {
            os_ << 0;
            return;
        }
        if (v == std::int64_t(v)
                && std::abs(v) < 9.0e15) {
            os_ << std::int64_t(v);
            return;
        }
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.9g", v);
        os_ << buf;
    }

    void
    value(std::uint64_t v)
    {
        beforeValue();
        os_ << v;
    }

    void
    value(std::int64_t v)
    {
        beforeValue();
        os_ << v;
    }

    void value(int v) { value(std::int64_t(v)); }
    void value(unsigned v) { value(std::uint64_t(v)); }

    // Key + value conveniences.
    template <typename T>
    void
    field(std::string_view k, const T &v)
    {
        key(k);
        value(v);
    }

    /** Finish the document (top-level value must be closed). */
    void
    finish()
    {
        SHRIMP_ASSERT(stack_.empty(), "unclosed JSON container");
        os_ << '\n';
    }

  private:
    struct Frame
    {
        bool isObject = false;
        bool hasItems = false;
    };

    void
    indent()
    {
        for (std::size_t i = 0; i < stack_.size(); ++i)
            os_ << "  ";
    }

    void
    comma()
    {
        if (stack_.back().hasItems)
            os_ << ',';
        stack_.back().hasItems = true;
        os_ << '\n';
        indent();
    }

    /** Handle separators for a value in the current context. */
    void
    beforeValue()
    {
        if (keyPending_) {
            keyPending_ = false;
            return;
        }
        if (!stack_.empty()) {
            SHRIMP_ASSERT(!stack_.back().isObject,
                          "object member without a key");
            comma();
        }
    }

    void
    writeString(std::string_view s)
    {
        os_ << '"';
        for (char c : s) {
            switch (c) {
              case '"':
                os_ << "\\\"";
                break;
              case '\\':
                os_ << "\\\\";
                break;
              case '\n':
                os_ << "\\n";
                break;
              case '\t':
                os_ << "\\t";
                break;
              case '\r':
                os_ << "\\r";
                break;
              default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x",
                                  unsigned(static_cast<unsigned char>(c)));
                    os_ << buf;
                } else {
                    os_ << c;
                }
            }
        }
        os_ << '"';
    }

    std::ostream &os_;
    std::vector<Frame> stack_;
    bool keyPending_ = false;
};

} // namespace shrimp::sim

#endif // SHRIMP_SIM_JSON_HH
