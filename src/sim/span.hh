/**
 * @file
 * Transfer-lifecycle spans.
 *
 * Every UDMA transfer attempt gets a monotonically increasing id at
 * the moment its destination is latched (the DestLoaded STORE); the
 * span then records the tick of each phase transition — latch, start
 * of transfer (the initiating LOAD), and terminal outcome (completion,
 * Inval abort, BadLoad, device error, engine abort, or replacement by
 * a later latch). Spans live in a process-global registry, mirroring
 * the trace facility's rationale: one simulator process runs one
 * experiment. Each transition also emits a trace point under
 * trace::Category::Xfer.
 *
 * The registry retains a bounded window of closed spans for
 * inspection and keeps aggregate counts for the full run; tests and
 * benches call clear() between experiments.
 */

#ifndef SHRIMP_SIM_SPAN_HH
#define SHRIMP_SIM_SPAN_HH

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>

#include "sim/types.hh"

namespace shrimp::sim { class JsonWriter; }

namespace shrimp::span
{

/** Terminal (or current) state of a transfer span. */
enum class Outcome : unsigned
{
    Active = 0,     ///< latched or transferring, not yet closed
    Completed,      ///< engine finished moving every byte
    Inval,          ///< latched destination cleared by an Inval event
    BadLoad,        ///< initiating LOAD from the same proxy space
    DeviceError,    ///< controller rejected the transfer at validation
    Aborted,        ///< in-flight transfer cancelled (engine abort)
    Replaced,       ///< latch overwritten by a newer DestLoaded STORE
    NumOutcomes,
};

const char *outcomeName(Outcome o);

struct Span
{
    std::uint64_t id = 0;
    std::string owner;              ///< e.g. "node0.udma0"
    std::uint64_t bytes = 0;        ///< latched byte count
    bool toDevice = false;          ///< direction, known once started
    Tick latched = 0;               ///< DestLoaded STORE tick
    Tick started = 0;               ///< initiating LOAD tick (0: never)
    Tick ended = 0;                 ///< close tick (0: still active)
    Outcome outcome = Outcome::Active;

    bool active() const { return outcome == Outcome::Active; }

    /** Latch-to-close latency in microseconds (0 while active). */
    double
    totalUs() const
    {
        return active() ? 0.0 : ticksToUs(ended - latched);
    }
};

/** Aggregate per-run span accounting. */
struct Summary
{
    std::uint64_t opened = 0;
    std::uint64_t active = 0;
    std::uint64_t bytesCompleted = 0;
    std::uint64_t outcomes[unsigned(Outcome::NumOutcomes)] = {};

    std::uint64_t
    count(Outcome o) const
    {
        return outcomes[unsigned(o)];
    }
};

class Registry
{
  public:
    static Registry &instance();

    /** Open a span at the DestLoaded latch; returns its id (>= 1). */
    std::uint64_t open(Tick now, const std::string &owner,
                       std::uint64_t bytes);

    /**
     * Mark the initiating LOAD: the span enters Transferring. A
     * non-zero @p bytes updates the byte count (the hardware clamps
     * the latched count at page/device boundaries at initiation).
     */
    void start(Tick now, std::uint64_t id, bool toDevice,
               std::uint64_t bytes = 0);

    /** Close a span with its terminal outcome. Unknown ids ignored. */
    void close(Tick now, std::uint64_t id, Outcome outcome);

    /** Find a span (active or retained); nullptr if evicted/unknown. */
    const Span *find(std::uint64_t id) const;

    Summary summary() const;

    /** Closed spans, oldest first, bounded by the retain limit.
     *  Call only while no simulation is running. */
    const std::deque<Span> &retained() const { return retained_; }

    std::size_t
    activeCount() const
    {
        std::lock_guard<std::mutex> g(mu_);
        return active_.size();
    }

    /** Cap on retained closed spans (aggregates are unaffected). */
    void
    setRetainLimit(std::size_t n)
    {
        std::lock_guard<std::mutex> g(mu_);
        retainLimit_ = n;
        trim();
    }

    /** Drop all spans and aggregates (tests / between experiments). */
    void clear();

    /**
     * Write `{ "opened": ..., "outcomes": {...}, "spans": [...] }`.
     * With includeSpans false only the aggregate summary is written
     * (the shape benches embed in their result files).
     */
    void dumpJson(sim::JsonWriter &w, bool includeSpans = true) const;

  private:
    Registry() = default;
    void trim();

    /**
     * The registry is process-global while sharded workers open and
     * close spans concurrently; the mutex keeps the aggregates exact.
     * Span *ids* are still assigned in thread arrival order, so they
     * are not part of the bit-identical determinism contract (the
     * summary counts are).
     */
    mutable std::mutex mu_;
    std::uint64_t nextId_ = 1;
    Summary summary_;
    // Keyed lookups and size() only — never iterated (shrimp_lint D3:
    // hash order must not reach dumpJson; retained_ is the ordered
    // view that does).
    std::unordered_map<std::uint64_t, Span> active_;
    std::deque<Span> retained_;
    std::size_t retainLimit_ = 256;
};

/** Shorthand for Registry::instance(). */
Registry &registry();

} // namespace shrimp::span

#endif // SHRIMP_SIM_SPAN_HH
