#include "sim/span.hh"

#include "sim/json.hh"
#include "sim/trace.hh"

namespace shrimp::span
{

const char *
outcomeName(Outcome o)
{
    switch (o) {
      case Outcome::Active:
        return "active";
      case Outcome::Completed:
        return "completed";
      case Outcome::Inval:
        return "inval";
      case Outcome::BadLoad:
        return "bad_load";
      case Outcome::DeviceError:
        return "device_error";
      case Outcome::Aborted:
        return "aborted";
      case Outcome::Replaced:
        return "replaced";
      default:
        return "?";
    }
}

Registry &
Registry::instance()
{
    // shrimp-lint: shard-safe(process-global registry by design; every mutator takes mu_)
    static Registry r;
    return r;
}

Registry &
registry()
{
    return Registry::instance();
}

std::uint64_t
Registry::open(Tick now, const std::string &owner, std::uint64_t bytes)
{
    std::lock_guard<std::mutex> g(mu_);
    std::uint64_t id = nextId_++;
    Span s;
    s.id = id;
    s.owner = owner;
    s.bytes = bytes;
    s.latched = now;
    active_.emplace(id, std::move(s));
    ++summary_.opened;
    trace::log(now, trace::Category::Xfer, owner, ": xfer#", id,
               " latched bytes=", bytes);
    return id;
}

void
Registry::start(Tick now, std::uint64_t id, bool toDevice,
                std::uint64_t bytes)
{
    std::lock_guard<std::mutex> g(mu_);
    auto it = active_.find(id);
    if (it == active_.end())
        return;
    it->second.started = now;
    it->second.toDevice = toDevice;
    if (bytes)
        it->second.bytes = bytes;
    trace::log(now, trace::Category::Xfer, it->second.owner, ": xfer#",
               id, " transferring ", toDevice ? "mem->dev" : "dev->mem",
               " bytes=", it->second.bytes);
}

void
Registry::close(Tick now, std::uint64_t id, Outcome outcome)
{
    std::lock_guard<std::mutex> g(mu_);
    auto it = active_.find(id);
    if (it == active_.end())
        return;
    Span s = std::move(it->second);
    active_.erase(it);
    s.ended = now;
    s.outcome = outcome;
    ++summary_.outcomes[unsigned(outcome)];
    if (outcome == Outcome::Completed)
        summary_.bytesCompleted += s.bytes;
    trace::log(now, trace::Category::Xfer, s.owner, ": xfer#", id, ' ',
               outcomeName(outcome), " bytes=", s.bytes, " total_us=",
               s.totalUs());
    retained_.push_back(std::move(s));
    trim();
}

const Span *
Registry::find(std::uint64_t id) const
{
    std::lock_guard<std::mutex> g(mu_);
    auto it = active_.find(id);
    if (it != active_.end())
        return &it->second;
    for (const auto &s : retained_) {
        if (s.id == id)
            return &s;
    }
    return nullptr;
}

Summary
Registry::summary() const
{
    std::lock_guard<std::mutex> g(mu_);
    Summary s = summary_;
    s.active = active_.size();
    return s;
}

void
Registry::clear()
{
    std::lock_guard<std::mutex> g(mu_);
    nextId_ = 1;
    summary_ = Summary{};
    active_.clear();
    retained_.clear();
}

void
Registry::trim()
{
    while (retained_.size() > retainLimit_)
        retained_.pop_front();
}

void
Registry::dumpJson(sim::JsonWriter &w, bool includeSpans) const
{
    Summary s = summary();
    w.beginObject();
    w.field("opened", s.opened);
    w.field("active", s.active);
    w.field("bytes_completed", s.bytesCompleted);
    w.key("outcomes");
    w.beginObject();
    // Skip Active: live spans are reported by the `active` count.
    for (unsigned i = 1; i < unsigned(Outcome::NumOutcomes); ++i)
        w.field(outcomeName(Outcome(i)), s.outcomes[i]);
    w.endObject();
    if (includeSpans) {
        w.key("spans");
        w.beginArray();
        for (const auto &sp : retained_) {
            w.beginObject();
            w.field("id", sp.id);
            w.field("owner", sp.owner);
            w.field("bytes", sp.bytes);
            w.field("outcome", outcomeName(sp.outcome));
            w.field("to_device", sp.toDevice);
            w.field("latched_ps", sp.latched);
            w.field("started_ps", sp.started);
            w.field("ended_ps", sp.ended);
            w.field("total_us", sp.totalUs());
            w.endObject();
        }
        w.endArray();
    }
    w.endObject();
}

} // namespace shrimp::span
