#include "sim/trace_sink.hh"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>

#include "sim/span.hh"

namespace shrimp::sim
{

namespace
{

/** Escape for a JSON string literal (labels are plain ASCII, but the
 *  writer must never emit invalid JSON whatever it is handed). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c & 0x1f);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** One compact trace-event line. ts/dur are microseconds. */
void
emitEvent(std::ostream &os, bool &first, char ph, unsigned pid,
          unsigned tid, double ts_us, const char *name, const char *cat,
          double dur_us = -1, const char *k0 = nullptr,
          std::uint64_t v0 = 0, const char *k1 = nullptr,
          std::uint64_t v1 = 0)
{
    if (!first)
        os << ",\n";
    first = false;
    char head[256];
    std::snprintf(head, sizeof head,
                  "{\"ph\":\"%c\",\"pid\":%u,\"tid\":%u,\"ts\":%.3f",
                  ph, pid, tid, ts_us);
    os << head;
    if (dur_us >= 0) {
        char dur[64];
        std::snprintf(dur, sizeof dur, ",\"dur\":%.3f", dur_us);
        os << dur;
    }
    os << ",\"name\":\"" << jsonEscape(name ? name : "?")
       << "\",\"cat\":\"" << cat << "\"";
    if (ph == 'i')
        os << ",\"s\":\"t\"";
    if (k0) {
        os << ",\"args\":{\"" << jsonEscape(k0) << "\":" << v0;
        if (k1)
            os << ",\"" << jsonEscape(k1) << "\":" << v1;
        os << "}";
    }
    os << "}";
}

/** Thread-name metadata record. */
void
emitThreadName(std::ostream &os, bool &first, unsigned pid, unsigned tid,
               const std::string &name)
{
    if (!first)
        os << ",\n";
    first = false;
    os << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
       << jsonEscape(name) << "\"}}";
}

void
emitProcessName(std::ostream &os, bool &first, unsigned pid,
                const std::string &name)
{
    if (!first)
        os << ",\n";
    first = false;
    os << "{\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\""
       << jsonEscape(name) << "\"}}";
}

constexpr unsigned pidWall = 1; ///< wall-clock worker timelines
constexpr unsigned pidSpan = 2; ///< sim-time transfer spans
constexpr unsigned pidNet = 3;  ///< sim-time network fault instants

} // namespace

TraceSink::TraceSink(unsigned shards) : rows_(std::max(shards, 1u)) {}

void
TraceSink::workerSlice(unsigned shard, const char *name,
                       std::uint64_t begin_ns, std::uint64_t end_ns)
{
    if (shard >= rows_.size())
        return;
    Row &row = rows_[shard];
    if (row.slices.size() >= maxSlicesPerShard) {
        ++row.dropped;
        return;
    }
    row.slices.push_back(WallSlice{name, begin_ns, end_ns});
}

void
TraceSink::simInstant(const std::string &track, const char *name, Tick at,
                      const char *k0, std::uint64_t v0, const char *k1,
                      std::uint64_t v1)
{
    std::lock_guard<std::mutex> g(simMu_);
    simEvents_.push_back(
        SimEvent{track, name, at, at, true, k0, v0, k1, v1});
}

void
TraceSink::simSlice(const std::string &track, const char *name, Tick start,
                    Tick end, const char *k0, std::uint64_t v0,
                    const char *k1, std::uint64_t v1)
{
    std::lock_guard<std::mutex> g(simMu_);
    simEvents_.push_back(SimEvent{track, name, start,
                                  std::max(start, end), false, k0, v0,
                                  k1, v1});
}

void
TraceSink::addSpanTracks()
{
    // Post-run: the registry's retained deque is stable.
    for (const span::Span &s : span::registry().retained()) {
        simSlice(s.owner, span::outcomeName(s.outcome), s.latched,
                 s.ended, "id", s.id, "bytes", s.bytes);
    }
}

std::uint64_t
TraceSink::eventCount() const
{
    std::uint64_t n = 0;
    for (const Row &r : rows_)
        n += 2 * r.slices.size();
    std::lock_guard<std::mutex> g(simMu_);
    return n + simEvents_.size();
}

std::uint64_t
TraceSink::droppedSlices() const
{
    std::uint64_t n = 0;
    for (const Row &r : rows_)
        n += r.dropped;
    return n;
}

void
TraceSink::write(std::ostream &os) const
{
    os << "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
    bool first = true;

    emitProcessName(os, first, pidWall, "shard workers (wall clock)");
    emitProcessName(os, first, pidSpan, "transfer spans (sim time)");
    emitProcessName(os, first, pidNet, "network faults (sim time)");
    for (unsigned s = 0; s < rows_.size(); ++s) {
        emitThreadName(os, first, pidWall, s,
                       "shard" + std::to_string(s));
    }

    // Sim-domain tracks: tids in first-appearance order per pid.
    std::map<std::string, unsigned> spanTids;
    std::map<std::string, unsigned> netTids;
    {
        std::lock_guard<std::mutex> g(simMu_);
        for (const SimEvent &e : simEvents_) {
            auto &tids = e.instant ? netTids : spanTids;
            auto [it, inserted] =
                tids.emplace(e.track, unsigned(tids.size()));
            if (inserted) {
                emitThreadName(os, first,
                               e.instant ? pidNet : pidSpan,
                               it->second, e.track);
            }
        }

        for (const SimEvent &e : simEvents_) {
            if (e.instant) {
                emitEvent(os, first, 'i', pidNet, netTids[e.track],
                          ticksToUs(e.start), e.name, "net", -1, e.k0,
                          e.v0, e.k1, e.v1);
            } else {
                emitEvent(os, first, 'X', pidSpan, spanTids[e.track],
                          ticksToUs(e.start), e.name, "span",
                          ticksToUs(e.end - e.start), e.k0, e.v0,
                          e.k1, e.v1);
            }
        }
    }

    for (unsigned s = 0; s < rows_.size(); ++s) {
        for (const WallSlice &sl : rows_[s].slices) {
            emitEvent(os, first, 'B', pidWall, s,
                      double(sl.beginNs) / 1000.0, sl.name, "worker");
            emitEvent(os, first, 'E', pidWall, s,
                      double(sl.endNs) / 1000.0, sl.name, "worker");
        }
    }

    os << "\n]\n}\n";
}

bool
TraceSink::writeFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out) {
        std::cerr << "trace: cannot write " << path << "\n";
        return false;
    }
    write(out);
    return bool(out);
}

} // namespace shrimp::sim
