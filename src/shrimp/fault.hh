/**
 * @file
 * Per-link fault injection for the SHRIMP backplane.
 *
 * The interconnect itself never loses data in the prototype, but the
 * protection argument (Section 6) and the recovery machinery layered
 * on the NI (shrimp/network_interface.hh) are only interesting against
 * a network that misbehaves. The FaultModel decides, per transmitted
 * chunk, whether the link delivers, drops, corrupts, duplicates, or
 * delays it — plus scheduled link-down and link-degraded windows.
 *
 * Determinism: every *physical link* owns its own SplitMix64 stream
 * seeded from (seed, linkSrc, linkDst) — the NI calls decide() with
 * the endpoints of the link actually being traversed, which on the
 * crossbar is the (src, dst) endpoint pair and on a mesh/torus is each
 * (node, nextHop) leg of the dimension-order route. A decision for a
 * link is drawn only by the shard executing the link's owner
 * (transmitting node), in that node's event order — which the sharded
 * engine already keeps shard-count invariant — so `--shards=1` and
 * `--shards=N` see the same fault sequence and stay bit-identical.
 *
 * Thread-safety mirrors Interconnect's counters: the per-source slots
 * are sized at attach time (single-threaded System construction) and
 * each is only ever touched by the shard executing that source node;
 * totals() merges them when the world is quiescent.
 */

#ifndef SHRIMP_SHRIMP_FAULT_HH
#define SHRIMP_SHRIMP_FAULT_HH

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "sim/params.hh"
#include "sim/random.hh"
#include "sim/types.hh"

namespace shrimp::net
{

/** A scheduled per-link state window (ticks, inclusive start). On a
 *  mesh/torus the pair names a *physical link* (adjacent nodes); a
 *  non-adjacent pair only matches crossbar traffic. */
struct LinkWindow
{
    NodeId src = 0;
    NodeId dst = 0;
    Tick from = 0;
    Tick to = maxTick;
};

/** Everything `--faults=<spec>` can say. */
struct FaultConfig
{
    /**
     * True once a spec (even "off") was parsed or a caller filled the
     * struct deliberately; lets an explicit config override the
     * SHRIMP_FAULTS environment default in core::System.
     */
    bool specified = false;

    // Per-chunk probabilities, evaluated in this order from a single
    // uniform draw (so their sum must stay <= 1).
    double dropProb = 0;
    double corruptProb = 0;
    double dupProb = 0;
    double delayProb = 0;

    /** Extra latency a Delay outcome adds (microseconds). */
    double delayUs = 20.0;

    /** Additional drop probability inside a degraded window. */
    double degradedDropProb = 0.25;

    /** Stream seed (`seed=` in the spec). */
    std::uint64_t seed = 1;

    /**
     * Model-checker mutation: the NI never arms its retransmit timer,
     * so any dropped chunk becomes a lost completion.
     */
    bool disableRetransmit = false;

    /**
     * Model-checker mutation: the sender's SACK scoreboard never fires
     * fast retransmit, so every loss must wait out the full RTO — with
     * a tight run deadline this manifests as a lost completion.
     */
    bool disableFastRetransmit = false;

    /**
     * Model-checker mutation: the sender discards the SACK bitmap
     * (and the dup-ack signal derived from it), so selective repeat
     * degrades to pure cumulative-ack + RTO recovery.
     */
    bool ignoreSack = false;

    /** Links that are dead for a window (`down=S-D@FROM-TOus`). */
    std::vector<LinkWindow> downWindows;
    /** Links with boosted drop for a window (`degrade=S-D@FROM-TO`). */
    std::vector<LinkWindow> degradedWindows;

    bool
    anyActive() const
    {
        return dropProb > 0 || corruptProb > 0 || dupProb > 0
               || delayProb > 0 || !downWindows.empty()
               || !degradedWindows.empty();
    }
};

/**
 * Parse a comma-separated fault spec into @p out:
 *
 *   drop=P,corrupt=P,dup=P,delay=P   per-chunk probabilities
 *   delay-us=N                       extra latency per Delay outcome
 *   degrade-drop=P                   extra drop inside degraded windows
 *   seed=N                           PRNG stream seed
 *   down=S-D@F-T                     link S->D down from F to T (us)
 *   degrade=S-D@F-T                  link S->D degraded from F to T
 *   no-retransmit                    disable NI retransmission
 *   no-fast-retransmit               disable SACK fast retransmit
 *   sack-ignore                      sender discards SACK bitmaps
 *   off                              explicitly no faults
 *
 * Returns false (diagnostic on @p err, @p out untouched) on a
 * malformed spec.
 */
bool parseFaultSpec(const std::string &spec, FaultConfig &out,
                    std::ostream *err);

/** What the link does to one chunk. */
enum class FaultAction
{
    Deliver,
    Drop,
    Corrupt,
    Duplicate,
    Delay,
};

struct FaultDecision
{
    FaultAction action = FaultAction::Deliver;
    /** Extra arrival latency (Delay only). */
    Tick extraDelay = 0;
    /** Extra raw draw (Corrupt only: picks the flipped byte). */
    std::uint64_t aux = 0;
};

/** Per-source fault counters (shard-local, merged on read). */
struct FaultCounters
{
    std::uint64_t decisions = 0;
    std::uint64_t dropped = 0;
    std::uint64_t corrupted = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t delayed = 0;
    std::uint64_t downDropped = 0;

    void
    add(const FaultCounters &o)
    {
        decisions += o.decisions;
        dropped += o.dropped;
        corrupted += o.corrupted;
        duplicated += o.duplicated;
        delayed += o.delayed;
        downDropped += o.downDropped;
    }
};

/** The per-link fault model hanging off shrimp::Interconnect. */
class FaultModel
{
  public:
    /** Install a configuration (single-threaded, before the run). */
    void
    configure(const FaultConfig &cfg)
    {
        cfg_ = cfg;
        active_ = cfg.anyActive();
        for (auto &s : perSrc_) {
            if (s)
                *s = PerSrc();
        }
    }

    const FaultConfig &config() const { return cfg_; }

    /** Anything to do at all? (The NI fast path checks this once.) */
    bool active() const { return active_; }

    /** Size the per-source slot (Interconnect::attach time). */
    void
    grow(NodeId src)
    {
        if (src >= perSrc_.size())
            perSrc_.resize(src + 1);
        if (!perSrc_[src])
            perSrc_[src] = std::make_unique<PerSrc>();
    }

    /**
     * Decide the fate of one chunk node @p src transmits onto its
     * physical link toward @p dst at @p now — @p dst is the *next
     * hop*, not the final destination, so multi-hop routes draw one
     * decision per traversed link. Control messages (acks) only see
     * Drop and Delay: corrupting an ack is indistinguishable from
     * dropping it, and duplicating one is a no-op, so the model keeps
     * their stream consumption minimal. Self-sends are exempt (there
     * is no link). Only the shard executing @p src may call this.
     */
    FaultDecision decide(NodeId src, NodeId dst, Tick now,
                         bool control);

    /** Merged counters; exact when the shards are quiescent. */
    FaultCounters
    totals() const
    {
        FaultCounters t;
        for (const auto &s : perSrc_) {
            if (s)
                t.add(s->counters);
        }
        return t;
    }

  private:
    struct PerSrc
    {
        /** One stream per destination, grown by the owning shard. */
        std::vector<sim::Random> perDst;
        std::vector<bool> seeded;
        FaultCounters counters;
    };

    sim::Random &streamFor(NodeId src, NodeId dst);
    bool inWindow(const std::vector<LinkWindow> &ws, NodeId src,
                  NodeId dst, Tick now) const;

    FaultConfig cfg_;
    bool active_ = false;
    std::vector<std::unique_ptr<PerSrc>> perSrc_;
};

} // namespace shrimp::net

#endif // SHRIMP_SHRIMP_FAULT_HH
