/**
 * @file
 * The routing backplane connecting SHRIMP nodes (the prototype used an
 * Intel Paragon routing backplane).
 *
 * Modelled as a crossbar: each node has a dedicated injection link
 * that serializes its own traffic at linkBytesPerSec, plus a fixed
 * per-hop routing latency. This is deliberately faster than the EISA
 * bus on either end, as in the real system, so the network itself is
 * rarely the bottleneck.
 *
 * All per-node state (the NI table, link-busy horizon, byte counters)
 * lives in dense vectors indexed by NodeId — nodes are 0..N-1, so an
 * injection costs one array access, not a tree lookup. Under the
 * sharded engine (sim/sharded.hh) a node's injection link is only
 * ever touched by the shard executing that node, so each slot is
 * naturally shard-local: the byte counters are exact with no shared
 * atomics, and bytesRouted() merges them when the world is quiescent
 * (window barriers or after the run).
 */

#ifndef SHRIMP_SHRIMP_INTERCONNECT_HH
#define SHRIMP_SHRIMP_INTERCONNECT_HH

#include <cstdint>
#include <vector>

#include "shrimp/fault.hh"
#include "sim/event_queue.hh"
#include "sim/params.hh"
#include "sim/types.hh"

namespace shrimp::net
{

class NetworkInterface;

/** The backplane. */
class Interconnect
{
  public:
    Interconnect(sim::EventQueue &eq, const sim::MachineParams &params)
        : eq_(eq), params_(params)
    {}

    /**
     * Register a node's NI. Also the moment the per-node slots are
     * sized: attach happens during (single-threaded) System
     * construction, so no vector ever grows while shards run.
     */
    void
    attach(NodeId node, NetworkInterface *ni)
    {
        SHRIMP_ASSERT(ni, "null NI");
        grow(node);
        faults_.grow(node);
        SHRIMP_ASSERT(!nis_[node], "node already attached");
        nis_[node] = ni;
    }

    /** The NI of a node (checked). */
    NetworkInterface *
    ni(NodeId node) const
    {
        SHRIMP_ASSERT(node < nis_.size() && nis_[node],
                      "no NI for node ", node);
        return nis_[node];
    }

    bool
    hasNode(NodeId node) const
    {
        return node < nis_.size() && nis_[node] != nullptr;
    }

    /**
     * Occupy node @p src's injection link for @p bytes starting no
     * earlier than @p now; returns the tick at which the last byte
     * has been injected. Only the shard executing @p src may call
     * this (its link and byte slots are that shard's state).
     */
    Tick
    acquireLink(NodeId src, std::uint64_t bytes, Tick now)
    {
        grow(src);
        Tick start = std::max(now, linkFreeAt_[src]);
        linkFreeAt_[src] = start + params_.linkTransfer(bytes);
        linkBytes_[src] += bytes;
        return linkFreeAt_[src];
    }

    /** Legacy single-queue convenience: "now" is the shared clock. */
    Tick
    acquireLink(NodeId src, std::uint64_t bytes)
    {
        return acquireLink(src, bytes, eq_.now());
    }

    /** Routing latency from injection to ejection. */
    Tick hopLatency() const { return params_.linkLatency(); }

    /**
     * Lower bound on the delivery delay of *any* packet from @p src
     * to @p dst: even the smallest packet (a bare header — the ack)
     * serializes niHeaderBytes onto the source's injection link and
     * then takes the routing hop. The sharded engine sizes its
     * per-(src, dst)-shard lookahead matrix from this query, so it is
     * a hard contract: every cross-node post the NI makes must land
     * at least this far in the sender's future. The crossbar is
     * distance-uniform; the (src, dst) signature is what a mesh or
     * multi-hop topology would key its answer on.
     */
    Tick
    minDeliveryLatency(NodeId src, NodeId dst) const
    {
        (void)src;
        (void)dst;
        return params_.linkTransfer(params_.niHeaderBytes)
               + hopLatency();
    }

    /**
     * Install a fault configuration (single-threaded, before the
     * run). The per-source slots were sized during attach.
     */
    void setFaults(const FaultConfig &cfg) { faults_.configure(cfg); }

    /** The per-link fault model (NIs consult it on every launch). */
    FaultModel &faults() { return faults_; }
    const FaultModel &faults() const { return faults_; }

    /** Total bytes injected, merged over the per-source counters.
     *  Exact when the shards are quiescent (barriers / post-run). */
    std::uint64_t
    bytesRouted() const
    {
        std::uint64_t total = 0;
        for (std::uint64_t b : linkBytes_)
            total += b;
        return total;
    }

  private:
    void
    grow(NodeId node)
    {
        if (node < nis_.size())
            return;
        nis_.resize(node + 1, nullptr);
        linkFreeAt_.resize(node + 1, 0);
        linkBytes_.resize(node + 1, 0);
    }

    sim::EventQueue &eq_;
    const sim::MachineParams &params_;
    std::vector<NetworkInterface *> nis_;
    std::vector<Tick> linkFreeAt_;
    /** Per-source injected bytes (shard-local, merged on read). */
    std::vector<std::uint64_t> linkBytes_;
    FaultModel faults_;
};

} // namespace shrimp::net

#endif // SHRIMP_SHRIMP_INTERCONNECT_HH
