/**
 * @file
 * The routing backplane connecting SHRIMP nodes (the prototype used an
 * Intel Paragon routing backplane — a 2D mesh).
 *
 * The wiring is pluggable (sim::TopologyConfig): the default crossbar
 * gives each node a dedicated injection link that serializes its own
 * traffic at linkBytesPerSec plus one fixed routing hop; a 2D mesh or
 * torus routes packets dimension-order (X then Y) across per-direction
 * physical links, charging the hop latency and the link serialization
 * at every hop. Either way the network is deliberately faster than the
 * EISA bus on each end, as in the real system, so for most patterns it
 * is not the bottleneck — but on the mesh, bisection-limited patterns
 * (incast, adversarial permutations) now contend on shared links.
 *
 * Link ownership is what keeps the model shard-safe: every physical
 * link belongs to the node transmitting onto it (the crossbar's
 * injection link, or one of a mesh node's four outgoing direction
 * links), and multi-hop packets are *forwarded hop by hop* — the NI of
 * each intermediate node re-launches the packet onto its own outgoing
 * link from its own shard (network_interface.cc). No shard ever
 * touches another node's link horizon, so arbitration on shared mesh
 * links is resolved in each owner's canonical event order and stays
 * bit-identical across shard counts. Backpressure surfaces as delayed
 * injection: a busy link pushes the chunk's departure (and every later
 * hop) into the future.
 *
 * All per-node state (the NI table, link-busy horizons, byte counters)
 * lives in dense vectors indexed by NodeId and sized only in attach()
 * — attach happens during single-threaded System construction, so no
 * vector ever grows while shards run. acquireLink() asserts the node
 * was attached instead of resizing (a mid-run grow would be a data
 * race under shards). Each link slot is only ever touched by the shard
 * executing its owner, so the byte counters are exact with no shared
 * atomics, and bytesRouted() merges them when the world is quiescent
 * (window barriers or after the run).
 */

#ifndef SHRIMP_SHRIMP_INTERCONNECT_HH
#define SHRIMP_SHRIMP_INTERCONNECT_HH

#include <cstdint>
#include <vector>

#include "shrimp/fault.hh"
#include "sim/event_queue.hh"
#include "sim/params.hh"
#include "sim/types.hh"

namespace shrimp::net
{

class NetworkInterface;

/** The backplane. */
class Interconnect
{
  public:
    Interconnect(sim::EventQueue &eq, const sim::MachineParams &params,
                 sim::TopologyConfig topo = {})
        : eq_(eq), params_(params), topo_(topo),
          linksPerNode_(topo.flat() ? 1 : 4)
    {}

    /** The wiring this backplane was built with. */
    const sim::TopologyConfig &topology() const { return topo_; }

    /**
     * Register a node's NI. Also the *only* moment the per-node slots
     * are sized: attach happens during (single-threaded) System
     * construction, so no vector ever grows while shards run.
     */
    void
    attach(NodeId node, NetworkInterface *ni)
    {
        SHRIMP_ASSERT(ni, "null NI");
        SHRIMP_ASSERT(topo_.flat() || node < topo_.gridNodes(),
                      "node ", node, " is outside the ",
                      topo_.describe(), " grid");
        grow(node);
        faults_.grow(node);
        SHRIMP_ASSERT(!nis_[node], "node already attached");
        nis_[node] = ni;
    }

    /** The NI of a node (checked). */
    NetworkInterface *
    ni(NodeId node) const
    {
        SHRIMP_ASSERT(node < nis_.size() && nis_[node],
                      "no NI for node ", node);
        return nis_[node];
    }

    bool
    hasNode(NodeId node) const
    {
        return node < nis_.size() && nis_[node] != nullptr;
    }

    /** Hops a packet from @p src to @p dst traverses (>= 1). */
    unsigned
    hops(NodeId src, NodeId dst) const
    {
        return topo_.hops(src, dst);
    }

    /** The next node on the dimension-order route toward @p dst
     *  (the destination itself on the crossbar). */
    NodeId
    nextHop(NodeId from, NodeId dst) const
    {
        return topo_.nextHop(from, dst);
    }

    /**
     * Occupy node @p from's physical link toward @p towards (its
     * dedicated injection link on the crossbar; the outgoing
     * direction link of the dimension-order route on a mesh/torus)
     * for @p bytes starting no earlier than @p now; returns the tick
     * at which the last byte has left the node. Only the shard
     * executing @p from may call this — its link slots are that
     * shard's state, which is why acquireLink *asserts* attachment
     * instead of growing: resizing the shared vectors mid-run would
     * race with every other shard.
     */
    Tick
    acquireLink(NodeId from, NodeId towards, std::uint64_t bytes,
                Tick now)
    {
        const std::size_t slot = linkSlot(from, towards);
        Tick start = std::max(now, linkFreeAt_[slot]);
        linkFreeAt_[slot] = start + params_.linkTransfer(bytes);
        linkBytes_[slot] += bytes;
        return linkFreeAt_[slot];
    }

    /** Legacy single-queue convenience: "now" is the shared clock and
     *  the link is the crossbar injection link (direction 0). */
    Tick
    acquireLink(NodeId src, std::uint64_t bytes)
    {
        return acquireLink(src, src, bytes, eq_.now());
    }

    /** Routing latency of one hop, injection to ejection. */
    Tick hopLatency() const { return params_.linkLatency(); }

    /**
     * Lower bound on the delivery delay of *any* packet from @p src
     * to @p dst: even the smallest packet (a bare header — the ack)
     * serializes niHeaderBytes onto a physical link and pays the
     * routing latency at *every* hop of the dimension-order route, so
     * the floor scales with distance. The sharded engine sizes its
     * per-(src, dst)-shard lookahead matrix from this query, so it is
     * a hard contract: every cross-node post the NI makes must land
     * at least this far in the sender's future. Multi-hop forwarding
     * keeps the contract per hop (each forward posts one single-hop
     * floor ahead), and the floors compose along the route.
     */
    Tick
    minDeliveryLatency(NodeId src, NodeId dst) const
    {
        return hops(src, dst)
               * (params_.linkTransfer(params_.niHeaderBytes)
                  + hopLatency());
    }

    /**
     * Install a fault configuration (single-threaded, before the
     * run). The per-source slots were sized during attach.
     */
    void setFaults(const FaultConfig &cfg) { faults_.configure(cfg); }

    /** The per-physical-link fault model (NIs consult it on every
     *  launch and at every forwarding hop). */
    FaultModel &faults() { return faults_; }
    const FaultModel &faults() const { return faults_; }

    /** Total bytes put on physical links, merged over the per-link
     *  counters — a multi-hop chunk counts once per hop, so on a mesh
     *  this measures real link occupancy, not goodput. Exact when the
     *  shards are quiescent (barriers / post-run). */
    std::uint64_t
    bytesRouted() const
    {
        std::uint64_t total = 0;
        for (std::uint64_t b : linkBytes_)
            total += b;
        return total;
    }

  private:
    /** Size the per-node slots (attach-time only; see attach()). */
    void
    grow(NodeId node)
    {
        if (node < nis_.size())
            return;
        nis_.resize(node + 1, nullptr);
        linkFreeAt_.resize((node + 1) * linksPerNode_, 0);
        linkBytes_.resize((node + 1) * linksPerNode_, 0);
    }

    /**
     * The dense index of node @p from's link toward @p towards.
     * Crossbar: the single injection link. Mesh/torus: one of the
     * four direction links (-X, +X, -Y, +Y); a degenerate self-send
     * shares slot 0. Asserts @p from was attached — the slots are
     * sized in attach() only.
     */
    std::size_t
    linkSlot(NodeId from, NodeId towards) const
    {
        SHRIMP_ASSERT(from < nis_.size() && nis_[from],
                      "acquireLink from unattached node ", from,
                      " (links are sized in attach() only)");
        if (linksPerNode_ == 1)
            return from;
        unsigned dir = 0;
        if (towards != from) {
            const unsigned x = unsigned(from) % topo_.dimX;
            const unsigned tx = unsigned(towards) % topo_.dimX;
            if (tx != x) {
                // +X wrap steps look like tx < x; classify by the
                // non-wrapping neighbour relation instead.
                dir = (tx == x + 1 || (x == topo_.dimX - 1 && tx == 0))
                          ? 1
                          : 0;
            } else {
                const unsigned y = unsigned(from) / topo_.dimX;
                const unsigned ty = unsigned(towards) / topo_.dimX;
                dir = (ty == y + 1 || (y == topo_.dimY - 1 && ty == 0))
                          ? 3
                          : 2;
            }
        }
        return std::size_t(from) * linksPerNode_ + dir;
    }

    sim::EventQueue &eq_;
    const sim::MachineParams &params_;
    const sim::TopologyConfig topo_;
    /** Physical links a node transmits onto (1 crossbar, 4 mesh). */
    const unsigned linksPerNode_;
    std::vector<NetworkInterface *> nis_;
    /** Busy horizon per physical link ([node * linksPerNode + dir]),
     *  each touched only by the shard executing its owner. */
    std::vector<Tick> linkFreeAt_;
    /** Per-physical-link transmitted bytes (shard-local, merged on
     *  read). */
    std::vector<std::uint64_t> linkBytes_;
    FaultModel faults_;
};

} // namespace shrimp::net

#endif // SHRIMP_SHRIMP_INTERCONNECT_HH
