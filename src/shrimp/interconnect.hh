/**
 * @file
 * The routing backplane connecting SHRIMP nodes (the prototype used an
 * Intel Paragon routing backplane).
 *
 * Modelled as a crossbar: each node has a dedicated injection link
 * that serializes its own traffic at linkBytesPerSec, plus a fixed
 * per-hop routing latency. This is deliberately faster than the EISA
 * bus on either end, as in the real system, so the network itself is
 * rarely the bottleneck.
 */

#ifndef SHRIMP_SHRIMP_INTERCONNECT_HH
#define SHRIMP_SHRIMP_INTERCONNECT_HH

#include <cstdint>
#include <map>

#include "sim/event_queue.hh"
#include "sim/params.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace shrimp::net
{

class NetworkInterface;

/** The backplane. */
class Interconnect
{
  public:
    Interconnect(sim::EventQueue &eq, const sim::MachineParams &params)
        : eq_(eq), params_(params)
    {}

    /** Register a node's NI. */
    void
    attach(NodeId node, NetworkInterface *ni)
    {
        SHRIMP_ASSERT(ni, "null NI");
        SHRIMP_ASSERT(nis_.count(node) == 0, "node already attached");
        nis_[node] = ni;
    }

    /** The NI of a node (checked). */
    NetworkInterface *
    ni(NodeId node) const
    {
        auto it = nis_.find(node);
        SHRIMP_ASSERT(it != nis_.end(), "no NI for node ", node);
        return it->second;
    }

    bool hasNode(NodeId node) const { return nis_.count(node) != 0; }

    /**
     * Occupy node @p src's injection link for @p bytes; returns the
     * tick at which the last byte has been injected.
     */
    Tick
    acquireLink(NodeId src, std::uint64_t bytes)
    {
        Tick &free_at = linkFreeAt_[src];
        Tick start = std::max(eq_.now(), free_at);
        free_at = start + params_.linkTransfer(bytes);
        bytes_ += double(bytes);
        return free_at;
    }

    /** Routing latency from injection to ejection. */
    Tick hopLatency() const { return params_.linkLatency(); }

    std::uint64_t bytesRouted() const
    {
        return std::uint64_t(bytes_.value());
    }

  private:
    sim::EventQueue &eq_;
    const sim::MachineParams &params_;
    std::map<NodeId, NetworkInterface *> nis_;
    std::map<NodeId, Tick> linkFreeAt_;
    stats::Scalar bytes_;
};

} // namespace shrimp::net

#endif // SHRIMP_SHRIMP_INTERCONNECT_HH
