/**
 * @file
 * The SHRIMP network interface board (paper Section 8, Figure 6).
 *
 * Send side ("deliberate update"): the board is a UDMA device. The
 * UDMA engine streams outgoing message data from memory into the
 * outgoing FIFO; the board looks up the destination (remote node +
 * remote physical page) in the NIPT from the device proxy address,
 * builds a packet header, and launches the packet onto the backplane
 * cut-through as bytes become available.
 *
 * Receive side: arriving packet data is deposited directly into
 * physical memory by the receive-side EISA DMA logic, which shares the
 * receiving node's I/O bus. Delivery of the last byte of a message is
 * observable through an optional callback (benchmarks) and by polling
 * memory (user programs), just like the real system.
 *
 * Reliability (selective repeat): the backplane may misbehave
 * (shrimp/fault.hh), so each chunk carries an FNV-1a checksummed
 * header with a per-flow sequence number. The receiver discards
 * corrupt chunks, deduplicates, *buffers* out-of-order chunks in a
 * per-source resequencing buffer (bounded by the sender's 64-seq
 * window), and returns a cumulative ack + 64-bit SACK bitmap one hop
 * after its EISA DMA drains a chunk — plus an immediate duplicate ack
 * whenever a chunk lands past a gap, so the sender learns about holes
 * without waiting for a timer. The sender keeps every unacknowledged
 * chunk in a board-side retransmit buffer, marks chunks the bitmap
 * names as received, and re-sends only the missing ones: a hole with
 * three or more SACKed chunks above it is retransmitted immediately
 * (fast retransmit, RFC 6675 style); everything else waits for the
 * RTO, which tracks a Jacobson SRTT/RTTVAR estimate (Karn's rule:
 * retransmitted chunks never feed it) instead of the fixed ladder.
 * After an RTO the sender resends one chunk and then repairs the rest
 * of the window ack-clocked, never re-flooding it blind. On a healthy
 * link no timer fires and the ack doubles as the credit return, so
 * the fault-free fast path is unchanged in shape.
 *
 * Flow control is credit-based and entirely sender-side: each sender
 * holds a credit window per destination, sized to the receiver's
 * incoming FIFO. Launching a chunk consumes credits; the cumulative
 * ack releases them once the receiver's EISA DMA has drained the
 * chunk. A slow receiver therefore backpressures the sender's
 * outgoing FIFO and, through it, the UDMA engine — without the sender
 * ever reading receiver state synchronously, which is what lets nodes
 * run on separate simulation shards (sim/sharded.hh). Layered under
 * the credits sits an AIMD congestion window (transport.hh): the pump
 * keeps outstanding bytes below min(cwnd, credits); cwnd opens at the
 * full credit size, halves when loss is detected or when an ack
 * arrives ECN-marked (the receiver's FIFO was overcommitted by
 * converging senders), collapses to one chunk on RTO, and recovers by
 * slow start then additive increase. Hot receivers thus shed load
 * smoothly instead of collapsing under retransmit storms.
 *
 * All cross-node traffic (chunk deliveries and acks) is posted
 * through an optional sim::NodeRouter at >= one hop in the future
 * (delayed or duplicated chunks land even later, never earlier, so
 * the sharded engine's lookahead rule holds under faults); without a
 * router (direct construction in tests, or the legacy single-queue
 * System) the NI schedules on its own queue, which is the same thing
 * when that queue is shared.
 *
 * On a mesh/torus topology (sim::TopologyConfig) packets are
 * forwarded hop by hop along the dimension-order route: every
 * intermediate node's NI re-launches the chunk (or ack) onto its own
 * outgoing link, arbitrating that physical link from its own shard
 * and consulting the fault model for that specific link. Each forward
 * is itself a cross-node post one single-hop floor in the future, so
 * the per-hop lookahead contract composes into the distance-scaled
 * Interconnect::minDeliveryLatency the sharded engine builds its
 * matrix from. Dimension-order routing keeps every chunk of a flow on
 * the same links, preserving per-flow FIFO order on a healthy wire —
 * but per-chunk Delay faults still reorder within a link, which is
 * why the rescue-retransmit rule waits out a round trip before
 * treating post-resend SACKs as proof of loss (rescueSpurious counts
 * the rescues that evidence later contradicted).
 */

#ifndef SHRIMP_SHRIMP_NETWORK_INTERFACE_HH
#define SHRIMP_SHRIMP_NETWORK_INTERFACE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "bus/io_bus.hh"
#include "dma/status.hh"
#include "dma/udma_device.hh"
#include "mem/physical_memory.hh"
#include "shrimp/interconnect.hh"
#include "shrimp/nipt.hh"
#include "shrimp/transport.hh"
#include "sim/event_queue.hh"
#include "sim/params.hh"
#include "sim/stats.hh"

namespace shrimp::sim
{
class NodeRouter;
} // namespace shrimp::sim

namespace shrimp::net
{

/** Delivery notification (used by benchmarks and tests). */
struct Delivery
{
    NodeId srcNode = 0;
    Addr dstPhysAddr = 0;
    std::uint32_t bytes = 0;
    /** Tick at which the sender's engine began the transfer. */
    Tick senderStartTick = 0;
    /** Tick at which the last byte became visible in memory. */
    Tick deliveredTick = 0;
};

/**
 * The simulated wire header of one chunk. Every field is covered by
 * the checksum together with the payload, so any corruption en route
 * is detected at the receiver.
 */
struct ChunkHeader
{
    NodeId src = 0;
    std::uint64_t seq = 0;
    Addr dstAddr = 0;
    bool msgStart = false;
    bool msgEnd = false;
    Tick senderStart = 0;
    std::uint64_t checksum = 0;
};

/** FNV-1a over the header fields and the payload bytes. */
std::uint64_t chunkChecksum(NodeId src, std::uint64_t seq,
                            Addr dst_addr, bool msg_start, bool msg_end,
                            const std::uint8_t *data, std::size_t len);

/** Debug/trace view of one sender flow (model checker, tests). */
struct TxFlowDebug
{
    NodeId dst = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t cumAcked = 0;
    std::uint64_t unackedChunks = 0;
    std::uint64_t unackedBytes = 0;
    /** Chunks the receiver has SACKed but not yet drained. */
    std::uint64_t sackedChunks = 0;
    /** Consecutive acks seen with no cumulative progress. */
    std::uint64_t dupAcks = 0;
    std::uint32_t cwnd = 0;
    std::uint32_t ssthresh = 0;
    /** Smoothed RTT (0 before the first sample) and current RTO. */
    double srttUs = 0;
    double rtoUs = 0;
    /** Ack-clocked RTO recovery is repairing the window. */
    bool inRecovery = false;
    /** Contiguous [first, last] runs of SACKed seqs in the window. */
    std::vector<std::pair<std::uint64_t, std::uint64_t>> sackRanges;
};

/** One node's SHRIMP NI. */
class NetworkInterface : public dma::UdmaDevice
{
  public:
    NetworkInterface(sim::EventQueue &eq,
                     const sim::MachineParams &params, NodeId node,
                     mem::PhysicalMemory &memory, bus::IoBus &io_bus,
                     Interconnect &net, std::uint32_t page_bytes);

    NodeId node() const { return node_; }
    Nipt &nipt() { return nipt_; }
    const Nipt &nipt() const { return nipt_; }

    /**
     * Route cross-node deliveries and acks through the sharded
     * engine's mailboxes (core::System wires this when built with
     * shards). Without a router they are scheduled directly on this
     * NI's own event queue.
     */
    void setRouter(sim::NodeRouter *router) { router_ = router; }

    // --------------------------------- automatic update (Section 9)
    /**
     * Bind a local physical page to a remote page for automatic
     * update: the board snoops ordinary stores to the page and
     * propagates them to the remote node ("the automatic update
     * transfer strategy described in [5], which still relies upon
     * fixed mappings between source and destination pages").
     */
    void mapAutoUpdate(Addr local_page_base, NodeId dst_node,
                       std::uint64_t dst_page);

    /** Remove an automatic-update binding. */
    void unmapAutoUpdate(Addr local_page_base);

    /** True if the page has an automatic-update binding. */
    bool autoUpdateBound(Addr local_page_base) const;

    /**
     * Bus snooper: called by the node for every memory store. If the
     * written page is bound, the (address, value) update enters the
     * outgoing FIFO — combined with a contiguous predecessor when
     * possible, as the SHRIMP board's update-combining hardware does.
     * @return true if the store was captured for propagation.
     */
    bool snoopStore(Addr paddr, std::uint64_t value);

    /** Flush the write-combining buffer immediately (also fired by
     *  the combining-window timer). */
    void flushAutoUpdates();

    std::uint64_t autoUpdatesSent() const
    {
        return std::uint64_t(autoSent_.value());
    }
    std::uint64_t autoUpdatesCombined() const
    {
        return std::uint64_t(autoCombined_.value());
    }

    /** Benchmarks: called at each complete message delivery. */
    void
    setDeliveryCallback(std::function<void(const Delivery &)> cb)
    {
        onDelivery_ = std::move(cb);
    }

    std::uint64_t messagesSent() const
    {
        return std::uint64_t(sent_.value());
    }
    std::uint64_t messagesDelivered() const
    {
        return std::uint64_t(delivered_.value());
    }
    std::uint64_t bytesDelivered() const
    {
        return std::uint64_t(rxBytes_.value());
    }
    Tick lastDeliveryTick() const { return lastDelivery_; }

    // ------------------------------------------ reliability counters
    /** Chunks re-sent (fast retransmit + RTO recovery together). */
    std::uint64_t retransmits() const
    {
        return std::uint64_t(retransmits_.value());
    }
    /** Chunks re-sent by the SACK-scoreboard fast-retransmit path
     *  (a subset of retransmits()). */
    std::uint64_t fastRetransmits() const
    {
        return std::uint64_t(fastRetransmits_.value());
    }
    /** Retransmit-timer expiries. */
    std::uint64_t timeouts() const
    {
        return std::uint64_t(timeouts_.value());
    }
    /** Acks (cumulative + duplicate) this node sent as a receiver. */
    std::uint64_t acksSent() const
    {
        return std::uint64_t(acksSent_.value());
    }
    /** Chunks discarded as already-received duplicates. */
    std::uint64_t rxDuplicatesDropped() const
    {
        return std::uint64_t(rxDupDropped_.value());
    }
    /** Chunks discarded on a checksum mismatch. */
    std::uint64_t rxCorruptDropped() const
    {
        return std::uint64_t(rxCorruptDropped_.value());
    }
    /** Chunks that arrived past a gap and were resequenced. */
    std::uint64_t rxOutOfOrderBuffered() const
    {
        return std::uint64_t(rxOooBuffered_.value());
    }
    /** Acks this node sent with the ECN (FIFO overcommit) mark. */
    std::uint64_t ecnMarked() const
    {
        return std::uint64_t(ecnMarked_.value());
    }
    /** Times a sender flow halved its congestion window. */
    std::uint64_t cwndCuts() const
    {
        return std::uint64_t(cwndCuts_.value());
    }
    /** Rescue retransmits later proven unnecessary: the chunk was
     *  SACKed (or cum-acked) sooner than the rescue copy could even
     *  have completed a round trip, so the ack answered an earlier
     *  copy that was merely reordered, not lost. */
    std::uint64_t rescueSpurious() const
    {
        return std::uint64_t(rescueSpurious_.value());
    }

    /**
     * Digest of everything this node's receive DMA deposited in
     * memory: per-source FNV-1a over the payload bytes in sequence
     * order, folded over sources in ascending id. Chunk boundaries
     * are excluded, so a fault-free run and a faulty run that
     * recovered every byte produce the same digest.
     */
    std::uint64_t rxDataDigest() const;

    /** Sender-flow snapshots (lost-completion traces, tests). */
    std::vector<TxFlowDebug> txFlowDebug() const;

    /** Sender-start to last-byte delivery latencies (us). */
    const stats::Histogram &deliveryLatency() const
    {
        return deliveryUs_;
    }

    /** The NI's registered stats ("ni.*"). */
    const stats::StatGroup &statGroup() const { return statGroup_; }

    // ------------------------------------------- UdmaDevice interface
    std::string deviceName() const override { return "shrimp-ni"; }

    std::uint8_t validateTransfer(bool to_device, Addr dev_offset,
                                  std::uint32_t nbytes) override;
    std::uint64_t deviceBoundary(Addr dev_offset) const override;
    std::uint32_t pushCapacity(Addr dev_offset,
                               std::uint32_t want) override;
    void devicePush(Addr dev_offset, const std::uint8_t *data,
                    std::uint32_t len) override;
    std::uint32_t pullAvailable(Addr dev_offset,
                                std::uint32_t want) override;
    void devicePull(Addr dev_offset, std::uint8_t *out,
                    std::uint32_t len) override;
    void setEngineWakeup(std::function<void()> wakeup) override;
    void transferStarting(bool to_device, Addr dev_offset,
                          std::uint32_t nbytes) override;
    void transferFinished(bool to_device, Addr dev_offset,
                          std::uint32_t nbytes) override;
    Tick startLatency(bool to_device, Addr dev_offset) const override;
    std::uint64_t proxyExtentBytes() const override;
    bool allowProxyMap(std::uint64_t first_page, std::uint64_t n_pages,
                       bool writable) const override;

    // ------------------------------------ receive side (peer-facing)
    // Both entry points run on *this* node's shard: peers never call
    // them synchronously, they post events through the router.

    /** A chunk arrives from the backplane. */
    void rxDeliver(const ChunkHeader &h, std::vector<std::uint8_t> data);

    /**
     * A chunk in transit toward @p dst arrives at this intermediate
     * node (mesh/torus multi-hop): re-launch it onto this node's
     * outgoing link on the dimension-order route. Runs on this node's
     * shard, so the link arbitration and the per-link fault draw are
     * canonically ordered.
     */
    void forwardChunk(NodeId dst, const ChunkHeader &h,
                      std::vector<std::uint8_t> data);

    /** An ack in transit toward flow sender @p dst arrives at this
     *  intermediate node: re-launch it (control path) likewise. */
    void forwardAck(NodeId dst, NodeId origin, AckInfo ack);

    /**
     * An acknowledgment from node @p dst: `ack.cum` says its receive
     * DMA has drained every chunk of ours below that sequence number
     * (releasing those chunks' credits and retransmit-buffer slots),
     * the SACK bitmap names chunks received past the gap, and the ECN
     * mark reports receive-FIFO overcommit. Drives the SACK
     * scoreboard, the RTT estimator, and the congestion window.
     */
    void rxAck(NodeId dst, AckInfo ack);

  private:
    struct TxMessage
    {
        NodeId dstNode = 0;
        Addr dstBase = 0;
        std::uint32_t total = 0;
        std::uint32_t pushed = 0;
        std::uint32_t launched = 0;
        Tick startTick = 0;
        std::vector<std::uint8_t> data;
    };

    /** One unacknowledged chunk in the board's retransmit buffer. */
    struct TxChunk
    {
        std::uint64_t seq = 0;
        Addr dstAddr = 0;
        bool msgStart = false;
        bool msgEnd = false;
        Tick senderStart = 0;
        std::uint64_t checksum = 0;
        /** First-transmission tick (RTT sampling; Karn's rule). */
        Tick firstSent = 0;
        /** SACK scoreboard: the receiver holds this chunk. */
        bool sacked = false;
        /** Already resent since the last RTO epoch began. */
        bool epochResent = false;
        /** TxFlow::sackSerial at the last resend: once three more
         *  SACK marks land while this chunk stays unSACKed, the
         *  resend itself probably got lost and the scoreboard may
         *  rescue-retransmit it without waiting for the RTO. The
         *  serial alone is not proof — per-chunk Delay faults reorder
         *  chunks within one link — so the rescue also waits out a
         *  round trip from lastResend (see fastRetransmitPass). */
        std::uint64_t resendSerial = 0;
        /** Tick of the most recent resend (any recovery path). */
        Tick lastResend = 0;
        /** This chunk's latest resend was a rescue retransmit; the
         *  tick lets the scoreboard recognize a spurious rescue when
         *  an ack answers an earlier copy first. */
        bool rescued = false;
        Tick rescueTick = 0;
        /** Ever retransmitted (disqualifies its RTT sample). */
        bool rexmitted = false;
        std::vector<std::uint8_t> data;
    };

    /** Per-destination sender state (window, seq, retransmit). */
    struct TxFlow
    {
        std::uint32_t credits = 0;
        bool inited = false;
        std::uint64_t nextSeq = 0;
        std::uint64_t cumAcked = 0;
        std::deque<TxChunk> unacked;
        sim::EventHandle retryEvent;
        Tick retryTimeout = 0;
        RttEstimator rtt;
        CongestionWindow cwnd;
        /** Acks seen with no cumulative progress while data is out. */
        std::uint64_t dupAcks = 0;
        /** Monotone count of chunks newly SACKed on this flow — the
         *  evidence clock the rescue-retransmit rule compares
         *  TxChunk::resendSerial against. */
        std::uint64_t sackSerial = 0;
        /** Ack-clocked repair after an RTO runs until cumAcked
         *  reaches this (the nextSeq at expiry). */
        std::uint64_t recoveryPoint = 0;
        bool inRtoRecovery = false;
        /** cwnd cuts are rate-limited to one per flight: no new cut
         *  until the cum ack passes the nextSeq of the last cut. */
        std::uint64_t lastCwndCutSeq = 0;
    };

    struct RxChunk
    {
        NodeId src = 0;
        std::uint64_t seq = 0;
        Addr dstAddr = 0;
        std::vector<std::uint8_t> data;
        bool msgStart = false;
        bool msgEnd = false;
        Tick senderStart = 0;
    };

    /** Per-source receiver state (dedup, resequencing, digest). */
    struct RxFlow
    {
        /** Next in-order sequence number (everything below arrived). */
        std::uint64_t expected = 0;
        /** Chunks fully drained into memory (the cumulative ack). */
        std::uint64_t drained = 0;
        /** FNV-1a over drained payload bytes, in sequence order. */
        std::uint64_t dataDigest = 0x6368756e6b646967ull;
        bool touched = false;
        /**
         * Resequencing buffer: chunks received past a gap, keyed by
         * seq. Bounded by the sender's sackWindow (64 chunks): the
         * sender never launches past cumAcked + 64, and cumAcked
         * never exceeds our drain watermark.
         */
        std::map<std::uint64_t, RxChunk> ooo;
    };

    void pump();
    void rxPump();

    std::uint32_t txFifoFree() const;

    /** Sender flow toward @p dst (grown on first use). */
    TxFlow &flowFor(NodeId dst);
    /** Receiver flow from @p src (grown on first use). */
    RxFlow &rxFlowFor(NodeId src);

    /**
     * Put one chunk on the wire toward @p dst: retransmit accounting
     * plus the first launchChunk hop. Returns the injection-complete
     * tick.
     */
    Tick transmit(NodeId dst, const TxChunk &chunk, bool retransmit);

    /**
     * One hop of a chunk's route toward @p dst: occupies this node's
     * outgoing physical link, consults that link's fault stream, and
     * posts either the delivery (last hop) or the next forward.
     * Returns the injection-complete tick. Shared by the sender's
     * transmit() and every intermediate forwardChunk().
     */
    Tick launchChunk(NodeId dst, const ChunkHeader &h,
                     std::vector<std::uint8_t> payload);

    /** One hop of an ack's route toward flow sender @p dst (control
     *  path: the link may drop or delay it, never corrupt). */
    void launchAck(NodeId dst, NodeId origin, AckInfo ack);

    /** The smallest possible send->ack round trip toward @p dst: the
     *  distance-scaled delivery floor both ways. An ack that lands
     *  sooner than this after a resend cannot be answering it. */
    Tick wireRoundTripFloor(NodeId dst) const;

    /** Arm the per-flow retransmit timer if it is not running. */
    void armRetry(NodeId dst, TxFlow &flow);
    /** Timer expiry: resend the first hole, enter ack-clocked
     *  recovery, collapse cwnd, back off, re-arm. */
    void onRetryTimeout(NodeId dst);

    /**
     * SACK scoreboard pass: fast-retransmit every hole with >= 3
     * SACKed chunks above it that was not already resent this epoch.
     * Returns true if anything was resent (a loss signal for cwnd).
     */
    bool fastRetransmitPass(NodeId dst, TxFlow &flow);

    /** Halve cwnd, at most once per flight (loss or ECN signal). */
    void cutWindow(TxFlow &flow);

    /** Bytes in flight toward this flow's destination. */
    std::uint32_t inflightBytes(const TxFlow &flow) const;

    /** Post the ack (cum + SACK + ECN) for @p src (fault-exposed). */
    void sendAck(NodeId src);

    /** Post an event to @p dst through the router (or locally). */
    void postToNode(NodeId dst, Tick when, const char *name,
                    sim::EventCallback fn);

    sim::EventQueue &eq_;
    const sim::MachineParams &params_;
    sim::NodeRouter *router_ = nullptr;
    NodeId node_;
    mem::PhysicalMemory &memory_;
    bus::IoBus &ioBus_;
    Interconnect &net_;
    std::uint32_t pageBytes_;

    Nipt nipt_;
    std::function<void()> engineWakeup_;
    std::function<void(const Delivery &)> onDelivery_;

    struct AutoUpdateEntry
    {
        NodeId dstNode = 0;
        std::uint64_t dstPage = 0;
    };
    std::map<Addr, AutoUpdateEntry> autoTable_;

    /** The write-combining buffer: one open update packet. */
    struct PendingAuto
    {
        bool valid = false;
        NodeId dstNode = 0;
        Addr dstBase = 0;
        std::vector<std::uint8_t> data;
    };
    PendingAuto pendingAuto_;
    sim::EventHandle autoFlushEvent_;
    stats::Scalar autoSent_;
    stats::Scalar autoCombined_;

    // Transmit state.
    std::deque<TxMessage> txq_;
    /** The message the UDMA engine is currently filling. References
     *  into a deque stay valid across push/pop of other elements. */
    TxMessage *engineMsg_ = nullptr;
    std::uint32_t txFifoBytes_ = 0;
    bool pumpBusy_ = false;
    static constexpr std::uint32_t pumpChunkBytes = 256;
    /** Sender flows, indexed by destination NodeId. */
    std::vector<TxFlow> txFlows_;

    // Receive state.
    std::deque<RxChunk> rxChunks_;
    /** Incoming-FIFO occupancy. Per-destination sender windows may
     *  transiently overcommit it when several nodes converge on one
     *  receiver (bounded by N x niFifoBytes), like virtual-channel
     *  buffering; the EISA drain rate, not the FIFO, is the
     *  bottleneck either way. */
    std::uint32_t rxFifoBytes_ = 0;
    bool rxDmaBusy_ = false;
    /** Receiver flows, indexed by source NodeId. */
    std::vector<RxFlow> rxFlows_;

    stats::Scalar sent_;
    stats::Scalar delivered_;
    stats::Scalar rxBytes_;
    stats::Scalar retransmits_;
    stats::Scalar fastRetransmits_;
    stats::Scalar timeouts_;
    stats::Scalar acksSent_;
    stats::Scalar rxDupDropped_;
    stats::Scalar rxCorruptDropped_;
    stats::Scalar rxOooBuffered_;
    stats::Scalar ecnMarked_;
    stats::Scalar cwndCuts_;
    stats::Scalar rescueSpurious_;
    /** Sender engine start to last byte in memory, microseconds. */
    stats::Histogram deliveryUs_{0, 1024, 32};
    stats::StatGroup statGroup_{"ni"};
    Tick lastDelivery_ = 0;
};

} // namespace shrimp::net

#endif // SHRIMP_SHRIMP_NETWORK_INTERFACE_HH
