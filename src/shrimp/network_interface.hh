/**
 * @file
 * The SHRIMP network interface board (paper Section 8, Figure 6).
 *
 * Send side ("deliberate update"): the board is a UDMA device. The
 * UDMA engine streams outgoing message data from memory into the
 * outgoing FIFO; the board looks up the destination (remote node +
 * remote physical page) in the NIPT from the device proxy address,
 * builds a packet header, and launches the packet onto the backplane
 * cut-through as bytes become available.
 *
 * Receive side: arriving packet data is deposited directly into
 * physical memory by the receive-side EISA DMA logic, which shares the
 * receiving node's I/O bus. Delivery of the last byte of a message is
 * observable through an optional callback (benchmarks) and by polling
 * memory (user programs), just like the real system.
 *
 * Flow control is credit-based: a sender launches a chunk only after
 * reserving space in the receiver's incoming FIFO, so a slow receiver
 * backpressures the sender's outgoing FIFO and, through it, the UDMA
 * engine.
 */

#ifndef SHRIMP_SHRIMP_NETWORK_INTERFACE_HH
#define SHRIMP_SHRIMP_NETWORK_INTERFACE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "bus/io_bus.hh"
#include "dma/status.hh"
#include "dma/udma_device.hh"
#include "mem/physical_memory.hh"
#include "shrimp/interconnect.hh"
#include "shrimp/nipt.hh"
#include "sim/event_queue.hh"
#include "sim/params.hh"
#include "sim/stats.hh"

namespace shrimp::net
{

/** Delivery notification (used by benchmarks and tests). */
struct Delivery
{
    NodeId srcNode = 0;
    Addr dstPhysAddr = 0;
    std::uint32_t bytes = 0;
    /** Tick at which the sender's engine began the transfer. */
    Tick senderStartTick = 0;
    /** Tick at which the last byte became visible in memory. */
    Tick deliveredTick = 0;
};

/** One node's SHRIMP NI. */
class NetworkInterface : public dma::UdmaDevice
{
  public:
    NetworkInterface(sim::EventQueue &eq,
                     const sim::MachineParams &params, NodeId node,
                     mem::PhysicalMemory &memory, bus::IoBus &io_bus,
                     Interconnect &net, std::uint32_t page_bytes);

    NodeId node() const { return node_; }
    Nipt &nipt() { return nipt_; }
    const Nipt &nipt() const { return nipt_; }

    // --------------------------------- automatic update (Section 9)
    /**
     * Bind a local physical page to a remote page for automatic
     * update: the board snoops ordinary stores to the page and
     * propagates them to the remote node ("the automatic update
     * transfer strategy described in [5], which still relies upon
     * fixed mappings between source and destination pages").
     */
    void mapAutoUpdate(Addr local_page_base, NodeId dst_node,
                       std::uint64_t dst_page);

    /** Remove an automatic-update binding. */
    void unmapAutoUpdate(Addr local_page_base);

    /** True if the page has an automatic-update binding. */
    bool autoUpdateBound(Addr local_page_base) const;

    /**
     * Bus snooper: called by the node for every memory store. If the
     * written page is bound, the (address, value) update enters the
     * outgoing FIFO — combined with a contiguous predecessor when
     * possible, as the SHRIMP board's update-combining hardware does.
     * @return true if the store was captured for propagation.
     */
    bool snoopStore(Addr paddr, std::uint64_t value);

    /** Flush the write-combining buffer immediately (also fired by
     *  the combining-window timer). */
    void flushAutoUpdates();

    std::uint64_t autoUpdatesSent() const
    {
        return std::uint64_t(autoSent_.value());
    }
    std::uint64_t autoUpdatesCombined() const
    {
        return std::uint64_t(autoCombined_.value());
    }

    /** Benchmarks: called at each complete message delivery. */
    void
    setDeliveryCallback(std::function<void(const Delivery &)> cb)
    {
        onDelivery_ = std::move(cb);
    }

    std::uint64_t messagesSent() const
    {
        return std::uint64_t(sent_.value());
    }
    std::uint64_t messagesDelivered() const
    {
        return std::uint64_t(delivered_.value());
    }
    std::uint64_t bytesDelivered() const
    {
        return std::uint64_t(rxBytes_.value());
    }
    Tick lastDeliveryTick() const { return lastDelivery_; }

    /** Sender-start to last-byte delivery latencies (us). */
    const stats::Histogram &deliveryLatency() const
    {
        return deliveryUs_;
    }

    /** The NI's registered stats ("ni.*"). */
    const stats::StatGroup &statGroup() const { return statGroup_; }

    // ------------------------------------------- UdmaDevice interface
    std::string deviceName() const override { return "shrimp-ni"; }

    std::uint8_t validateTransfer(bool to_device, Addr dev_offset,
                                  std::uint32_t nbytes) override;
    std::uint64_t deviceBoundary(Addr dev_offset) const override;
    std::uint32_t pushCapacity(Addr dev_offset,
                               std::uint32_t want) override;
    void devicePush(Addr dev_offset, const std::uint8_t *data,
                    std::uint32_t len) override;
    std::uint32_t pullAvailable(Addr dev_offset,
                                std::uint32_t want) override;
    void devicePull(Addr dev_offset, std::uint8_t *out,
                    std::uint32_t len) override;
    void setEngineWakeup(std::function<void()> wakeup) override;
    void transferStarting(bool to_device, Addr dev_offset,
                          std::uint32_t nbytes) override;
    void transferFinished(bool to_device, Addr dev_offset,
                          std::uint32_t nbytes) override;
    Tick startLatency(bool to_device, Addr dev_offset) const override;
    std::uint64_t proxyExtentBytes() const override;
    bool allowProxyMap(std::uint64_t first_page, std::uint64_t n_pages,
                       bool writable) const override;

    // ------------------------------------ receive side (peer-facing)
    /** Free space in the incoming FIFO not yet reserved by senders. */
    std::uint32_t rxFifoFree() const;

    /** Reserve incoming FIFO space before launching a chunk. */
    void rxReserve(std::uint32_t bytes);

    /** A chunk arrives from the backplane. */
    void rxDeliver(NodeId src, Addr dst_addr,
                   std::vector<std::uint8_t> data, bool msg_start,
                   bool msg_end, Tick sender_start);

    /** Register to be poked when incoming FIFO space frees up. */
    void addCreditWaiter(std::function<void()> fn);

  private:
    struct TxMessage
    {
        NodeId dstNode = 0;
        Addr dstBase = 0;
        std::uint32_t total = 0;
        std::uint32_t pushed = 0;
        std::uint32_t launched = 0;
        Tick startTick = 0;
        std::vector<std::uint8_t> data;
    };

    struct RxChunk
    {
        NodeId src = 0;
        Addr dstAddr = 0;
        std::vector<std::uint8_t> data;
        bool msgStart = false;
        bool msgEnd = false;
        Tick senderStart = 0;
    };

    void pump();
    void rxPump();
    void grantCredits();

    std::uint32_t txFifoFree() const;

    sim::EventQueue &eq_;
    const sim::MachineParams &params_;
    NodeId node_;
    mem::PhysicalMemory &memory_;
    bus::IoBus &ioBus_;
    Interconnect &net_;
    std::uint32_t pageBytes_;

    Nipt nipt_;
    std::function<void()> engineWakeup_;
    std::function<void(const Delivery &)> onDelivery_;

    struct AutoUpdateEntry
    {
        NodeId dstNode = 0;
        std::uint64_t dstPage = 0;
    };
    std::map<Addr, AutoUpdateEntry> autoTable_;

    /** The write-combining buffer: one open update packet. */
    struct PendingAuto
    {
        bool valid = false;
        NodeId dstNode = 0;
        Addr dstBase = 0;
        std::vector<std::uint8_t> data;
    };
    PendingAuto pendingAuto_;
    sim::EventHandle autoFlushEvent_;
    stats::Scalar autoSent_;
    stats::Scalar autoCombined_;

    // Transmit state.
    std::deque<TxMessage> txq_;
    /** The message the UDMA engine is currently filling. References
     *  into a deque stay valid across push/pop of other elements. */
    TxMessage *engineMsg_ = nullptr;
    std::uint32_t txFifoBytes_ = 0;
    bool pumpBusy_ = false;
    static constexpr std::uint32_t pumpChunkBytes = 256;

    // Receive state.
    std::deque<RxChunk> rxChunks_;
    std::uint32_t rxFifoBytes_ = 0;
    std::uint32_t rxReserved_ = 0;
    bool rxDmaBusy_ = false;
    std::vector<std::function<void()>> creditWaiters_;

    stats::Scalar sent_;
    stats::Scalar delivered_;
    stats::Scalar rxBytes_;
    /** Sender engine start to last byte in memory, microseconds. */
    stats::Histogram deliveryUs_{0, 1024, 32};
    stats::StatGroup statGroup_{"ni"};
    Tick lastDelivery_ = 0;
};

} // namespace shrimp::net

#endif // SHRIMP_SHRIMP_NETWORK_INTERFACE_HH
