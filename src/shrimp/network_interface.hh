/**
 * @file
 * The SHRIMP network interface board (paper Section 8, Figure 6).
 *
 * Send side ("deliberate update"): the board is a UDMA device. The
 * UDMA engine streams outgoing message data from memory into the
 * outgoing FIFO; the board looks up the destination (remote node +
 * remote physical page) in the NIPT from the device proxy address,
 * builds a packet header, and launches the packet onto the backplane
 * cut-through as bytes become available.
 *
 * Receive side: arriving packet data is deposited directly into
 * physical memory by the receive-side EISA DMA logic, which shares the
 * receiving node's I/O bus. Delivery of the last byte of a message is
 * observable through an optional callback (benchmarks) and by polling
 * memory (user programs), just like the real system.
 *
 * Flow control is credit-based and entirely sender-side: each sender
 * holds a credit window per destination, sized to the receiver's
 * incoming FIFO. Launching a chunk consumes credits; the receiver's
 * EISA DMA returns them in a credit message one backplane hop after
 * it drains the chunk into memory. A slow receiver therefore
 * backpressures the sender's outgoing FIFO and, through it, the UDMA
 * engine — without the sender ever reading receiver state
 * synchronously, which is what lets nodes run on separate simulation
 * shards (sim/sharded.hh).
 *
 * All cross-node traffic (chunk deliveries and credit returns) is
 * posted through an optional sim::NodeRouter at >= one hop in the
 * future; without a router (direct construction in tests, or the
 * legacy single-queue System) the NI schedules on its own queue,
 * which is the same thing when that queue is shared.
 */

#ifndef SHRIMP_SHRIMP_NETWORK_INTERFACE_HH
#define SHRIMP_SHRIMP_NETWORK_INTERFACE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "bus/io_bus.hh"
#include "dma/status.hh"
#include "dma/udma_device.hh"
#include "mem/physical_memory.hh"
#include "shrimp/interconnect.hh"
#include "shrimp/nipt.hh"
#include "sim/event_queue.hh"
#include "sim/params.hh"
#include "sim/stats.hh"

namespace shrimp::sim
{
class NodeRouter;
} // namespace shrimp::sim

namespace shrimp::net
{

/** Delivery notification (used by benchmarks and tests). */
struct Delivery
{
    NodeId srcNode = 0;
    Addr dstPhysAddr = 0;
    std::uint32_t bytes = 0;
    /** Tick at which the sender's engine began the transfer. */
    Tick senderStartTick = 0;
    /** Tick at which the last byte became visible in memory. */
    Tick deliveredTick = 0;
};

/** One node's SHRIMP NI. */
class NetworkInterface : public dma::UdmaDevice
{
  public:
    NetworkInterface(sim::EventQueue &eq,
                     const sim::MachineParams &params, NodeId node,
                     mem::PhysicalMemory &memory, bus::IoBus &io_bus,
                     Interconnect &net, std::uint32_t page_bytes);

    NodeId node() const { return node_; }
    Nipt &nipt() { return nipt_; }
    const Nipt &nipt() const { return nipt_; }

    /**
     * Route cross-node deliveries and credit returns through the
     * sharded engine's mailboxes (core::System wires this when built
     * with shards). Without a router they are scheduled directly on
     * this NI's own event queue.
     */
    void setRouter(sim::NodeRouter *router) { router_ = router; }

    // --------------------------------- automatic update (Section 9)
    /**
     * Bind a local physical page to a remote page for automatic
     * update: the board snoops ordinary stores to the page and
     * propagates them to the remote node ("the automatic update
     * transfer strategy described in [5], which still relies upon
     * fixed mappings between source and destination pages").
     */
    void mapAutoUpdate(Addr local_page_base, NodeId dst_node,
                       std::uint64_t dst_page);

    /** Remove an automatic-update binding. */
    void unmapAutoUpdate(Addr local_page_base);

    /** True if the page has an automatic-update binding. */
    bool autoUpdateBound(Addr local_page_base) const;

    /**
     * Bus snooper: called by the node for every memory store. If the
     * written page is bound, the (address, value) update enters the
     * outgoing FIFO — combined with a contiguous predecessor when
     * possible, as the SHRIMP board's update-combining hardware does.
     * @return true if the store was captured for propagation.
     */
    bool snoopStore(Addr paddr, std::uint64_t value);

    /** Flush the write-combining buffer immediately (also fired by
     *  the combining-window timer). */
    void flushAutoUpdates();

    std::uint64_t autoUpdatesSent() const
    {
        return std::uint64_t(autoSent_.value());
    }
    std::uint64_t autoUpdatesCombined() const
    {
        return std::uint64_t(autoCombined_.value());
    }

    /** Benchmarks: called at each complete message delivery. */
    void
    setDeliveryCallback(std::function<void(const Delivery &)> cb)
    {
        onDelivery_ = std::move(cb);
    }

    std::uint64_t messagesSent() const
    {
        return std::uint64_t(sent_.value());
    }
    std::uint64_t messagesDelivered() const
    {
        return std::uint64_t(delivered_.value());
    }
    std::uint64_t bytesDelivered() const
    {
        return std::uint64_t(rxBytes_.value());
    }
    Tick lastDeliveryTick() const { return lastDelivery_; }

    /** Sender-start to last-byte delivery latencies (us). */
    const stats::Histogram &deliveryLatency() const
    {
        return deliveryUs_;
    }

    /** The NI's registered stats ("ni.*"). */
    const stats::StatGroup &statGroup() const { return statGroup_; }

    // ------------------------------------------- UdmaDevice interface
    std::string deviceName() const override { return "shrimp-ni"; }

    std::uint8_t validateTransfer(bool to_device, Addr dev_offset,
                                  std::uint32_t nbytes) override;
    std::uint64_t deviceBoundary(Addr dev_offset) const override;
    std::uint32_t pushCapacity(Addr dev_offset,
                               std::uint32_t want) override;
    void devicePush(Addr dev_offset, const std::uint8_t *data,
                    std::uint32_t len) override;
    std::uint32_t pullAvailable(Addr dev_offset,
                                std::uint32_t want) override;
    void devicePull(Addr dev_offset, std::uint8_t *out,
                    std::uint32_t len) override;
    void setEngineWakeup(std::function<void()> wakeup) override;
    void transferStarting(bool to_device, Addr dev_offset,
                          std::uint32_t nbytes) override;
    void transferFinished(bool to_device, Addr dev_offset,
                          std::uint32_t nbytes) override;
    Tick startLatency(bool to_device, Addr dev_offset) const override;
    std::uint64_t proxyExtentBytes() const override;
    bool allowProxyMap(std::uint64_t first_page, std::uint64_t n_pages,
                       bool writable) const override;

    // ------------------------------------ receive side (peer-facing)
    // Both entry points run on *this* node's shard: peers never call
    // them synchronously, they post events through the router.

    /** A chunk arrives from the backplane. */
    void rxDeliver(NodeId src, Addr dst_addr,
                   std::vector<std::uint8_t> data, bool msg_start,
                   bool msg_end, Tick sender_start);

    /**
     * A credit message from node @p dst: the receiver's DMA drained
     * @p bytes of ours, so our send window toward it regrows.
     */
    void creditReturn(NodeId dst, std::uint32_t bytes);

  private:
    struct TxMessage
    {
        NodeId dstNode = 0;
        Addr dstBase = 0;
        std::uint32_t total = 0;
        std::uint32_t pushed = 0;
        std::uint32_t launched = 0;
        Tick startTick = 0;
        std::vector<std::uint8_t> data;
    };

    struct RxChunk
    {
        NodeId src = 0;
        Addr dstAddr = 0;
        std::vector<std::uint8_t> data;
        bool msgStart = false;
        bool msgEnd = false;
        Tick senderStart = 0;
    };

    void pump();
    void rxPump();

    std::uint32_t txFifoFree() const;

    /** Remaining send window toward @p dst (grown on first use). */
    std::uint32_t &creditsFor(NodeId dst);

    /** Post an event to @p dst through the router (or locally). */
    void postToNode(NodeId dst, Tick when, const char *name,
                    sim::EventCallback fn);

    sim::EventQueue &eq_;
    const sim::MachineParams &params_;
    sim::NodeRouter *router_ = nullptr;
    NodeId node_;
    mem::PhysicalMemory &memory_;
    bus::IoBus &ioBus_;
    Interconnect &net_;
    std::uint32_t pageBytes_;

    Nipt nipt_;
    std::function<void()> engineWakeup_;
    std::function<void(const Delivery &)> onDelivery_;

    struct AutoUpdateEntry
    {
        NodeId dstNode = 0;
        std::uint64_t dstPage = 0;
    };
    std::map<Addr, AutoUpdateEntry> autoTable_;

    /** The write-combining buffer: one open update packet. */
    struct PendingAuto
    {
        bool valid = false;
        NodeId dstNode = 0;
        Addr dstBase = 0;
        std::vector<std::uint8_t> data;
    };
    PendingAuto pendingAuto_;
    sim::EventHandle autoFlushEvent_;
    stats::Scalar autoSent_;
    stats::Scalar autoCombined_;

    // Transmit state.
    std::deque<TxMessage> txq_;
    /** The message the UDMA engine is currently filling. References
     *  into a deque stay valid across push/pop of other elements. */
    TxMessage *engineMsg_ = nullptr;
    std::uint32_t txFifoBytes_ = 0;
    bool pumpBusy_ = false;
    static constexpr std::uint32_t pumpChunkBytes = 256;
    /** Sender-side credit window per destination node; starts at the
     *  peer's FIFO size, shrinks at launch, regrows on creditReturn.
     *  Indexed by NodeId, grown on demand. */
    std::vector<std::uint32_t> txCredits_;

    // Receive state.
    std::deque<RxChunk> rxChunks_;
    /** Incoming-FIFO occupancy. Per-destination sender windows may
     *  transiently overcommit it when several nodes converge on one
     *  receiver (bounded by N x niFifoBytes), like virtual-channel
     *  buffering; the EISA drain rate, not the FIFO, is the
     *  bottleneck either way. */
    std::uint32_t rxFifoBytes_ = 0;
    bool rxDmaBusy_ = false;

    stats::Scalar sent_;
    stats::Scalar delivered_;
    stats::Scalar rxBytes_;
    /** Sender engine start to last byte in memory, microseconds. */
    stats::Histogram deliveryUs_{0, 1024, 32};
    stats::StatGroup statGroup_{"ni"};
    Tick lastDelivery_ = 0;
};

} // namespace shrimp::net

#endif // SHRIMP_SHRIMP_NETWORK_INTERFACE_HH
