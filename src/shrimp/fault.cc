#include "shrimp/fault.hh"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <string>

#include "sim/logging.hh"

namespace shrimp::net
{

namespace
{

bool
parseProb(const std::string &v, double &out)
{
    if (v.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    double d = std::strtod(v.c_str(), &end);
    if (errno != 0 || end != v.c_str() + v.size())
        return false;
    if (d < 0.0 || d > 1.0)
        return false;
    out = d;
    return true;
}

bool
parseU64(const std::string &v, std::uint64_t &out)
{
    if (v.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    unsigned long long n = std::strtoull(v.c_str(), &end, 10);
    if (errno != 0 || end != v.c_str() + v.size())
        return false;
    out = n;
    return true;
}

bool
parsePositive(const std::string &v, double &out)
{
    if (v.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    double d = std::strtod(v.c_str(), &end);
    if (errno != 0 || end != v.c_str() + v.size() || d < 0.0)
        return false;
    out = d;
    return true;
}

/** "S-D@F-T": link S->D, window [F us, T us]. */
bool
parseWindow(const std::string &v, LinkWindow &out)
{
    auto dash = v.find('-');
    auto at = v.find('@');
    if (dash == std::string::npos || at == std::string::npos
        || dash > at)
        return false;
    std::uint64_t src = 0;
    std::uint64_t dst = 0;
    if (!parseU64(v.substr(0, dash), src)
        || !parseU64(v.substr(dash + 1, at - dash - 1), dst))
        return false;
    std::string range = v.substr(at + 1);
    auto rdash = range.find('-');
    if (rdash == std::string::npos)
        return false;
    double from_us = 0;
    double to_us = 0;
    if (!parsePositive(range.substr(0, rdash), from_us)
        || !parsePositive(range.substr(rdash + 1), to_us)
        || to_us < from_us)
        return false;
    out.src = NodeId(src);
    out.dst = NodeId(dst);
    out.from = Tick(from_us * tickUs);
    out.to = Tick(to_us * tickUs);
    return true;
}

} // namespace

bool
parseFaultSpec(const std::string &spec, FaultConfig &out,
               std::ostream *err)
{
    FaultConfig cfg;
    cfg.specified = true;

    auto fail = [&](const std::string &tok) {
        if (err) {
            *err << "--faults: bad token '" << tok
                 << "' (want drop=P, corrupt=P, dup=P, delay=P, "
                    "delay-us=N, degrade-drop=P, seed=N, "
                    "down=S-D@F-T, degrade=S-D@F-T, no-retransmit, "
                    "no-fast-retransmit, sack-ignore or off)\n";
        }
        return false;
    };

    std::size_t pos = 0;
    while (pos <= spec.size()) {
        auto comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string tok = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (tok.empty())
            continue;
        if (tok == "off")
            continue;
        if (tok == "no-retransmit") {
            cfg.disableRetransmit = true;
            continue;
        }
        if (tok == "no-fast-retransmit") {
            cfg.disableFastRetransmit = true;
            continue;
        }
        if (tok == "sack-ignore") {
            cfg.ignoreSack = true;
            continue;
        }
        auto eq = tok.find('=');
        if (eq == std::string::npos)
            return fail(tok);
        std::string key = tok.substr(0, eq);
        std::string val = tok.substr(eq + 1);
        bool ok = false;
        if (key == "drop") {
            ok = parseProb(val, cfg.dropProb);
        } else if (key == "corrupt") {
            ok = parseProb(val, cfg.corruptProb);
        } else if (key == "dup") {
            ok = parseProb(val, cfg.dupProb);
        } else if (key == "delay") {
            ok = parseProb(val, cfg.delayProb);
        } else if (key == "delay-us") {
            ok = parsePositive(val, cfg.delayUs);
        } else if (key == "degrade-drop") {
            ok = parseProb(val, cfg.degradedDropProb);
        } else if (key == "seed") {
            ok = parseU64(val, cfg.seed);
        } else if (key == "down") {
            LinkWindow w;
            ok = parseWindow(val, w);
            if (ok)
                cfg.downWindows.push_back(w);
        } else if (key == "degrade") {
            LinkWindow w;
            ok = parseWindow(val, w);
            if (ok)
                cfg.degradedWindows.push_back(w);
        }
        if (!ok)
            return fail(tok);
    }
    if (cfg.dropProb + cfg.corruptProb + cfg.dupProb + cfg.delayProb
        > 1.0) {
        if (err)
            *err << "--faults: drop+corrupt+dup+delay must be <= 1\n";
        return false;
    }
    out = cfg;
    return true;
}

sim::Random &
FaultModel::streamFor(NodeId src, NodeId dst)
{
    SHRIMP_ASSERT(src < perSrc_.size() && perSrc_[src],
                  "fault stream for unattached node ", src);
    PerSrc &s = *perSrc_[src];
    if (dst >= s.perDst.size()) {
        s.perDst.resize(dst + 1, sim::Random(0));
        s.seeded.resize(dst + 1, false);
    }
    if (!s.seeded[dst]) {
        // SplitMix the (seed, src, dst) triple into one stream seed so
        // every ordered link pair draws independently.
        std::uint64_t z = cfg_.seed;
        z ^= (std::uint64_t(src) + 1) * 0x9E3779B97F4A7C15ull;
        z ^= (std::uint64_t(dst) + 1) * 0xBF58476D1CE4E5B9ull;
        s.perDst[dst] = sim::Random(z);
        s.seeded[dst] = true;
    }
    return s.perDst[dst];
}

bool
FaultModel::inWindow(const std::vector<LinkWindow> &ws, NodeId src,
                     NodeId dst, Tick now) const
{
    for (const LinkWindow &w : ws) {
        if (w.src == src && w.dst == dst && now >= w.from
            && now <= w.to)
            return true;
    }
    return false;
}

FaultDecision
FaultModel::decide(NodeId src, NodeId dst, Tick now, bool control)
{
    FaultDecision d;
    if (!active_ || src == dst)
        return d;

    PerSrc &s = *perSrc_[src];
    ++s.counters.decisions;

    if (inWindow(cfg_.downWindows, src, dst, now)) {
        ++s.counters.downDropped;
        d.action = FaultAction::Drop;
        return d;
    }

    double drop = cfg_.dropProb;
    if (inWindow(cfg_.degradedWindows, src, dst, now))
        drop = std::min(1.0, drop + cfg_.degradedDropProb);

    sim::Random &r = streamFor(src, dst);
    double u = r.unit();
    if (control) {
        // Acks: Corrupt would be detected and discarded (== Drop) and
        // Duplicate is idempotent, so only Drop and Delay matter.
        if (u < drop) {
            ++s.counters.dropped;
            d.action = FaultAction::Drop;
        } else if (u < drop + cfg_.delayProb) {
            ++s.counters.delayed;
            d.action = FaultAction::Delay;
            d.extraDelay = Tick(cfg_.delayUs * tickUs);
        }
        return d;
    }
    if (u < drop) {
        ++s.counters.dropped;
        d.action = FaultAction::Drop;
    } else if (u < drop + cfg_.corruptProb) {
        ++s.counters.corrupted;
        d.action = FaultAction::Corrupt;
        d.aux = r.next();
    } else if (u < drop + cfg_.corruptProb + cfg_.dupProb) {
        ++s.counters.duplicated;
        d.action = FaultAction::Duplicate;
    } else if (u < drop + cfg_.corruptProb + cfg_.dupProb
                       + cfg_.delayProb) {
        ++s.counters.delayed;
        d.action = FaultAction::Delay;
        d.extraDelay = Tick(cfg_.delayUs * tickUs);
    }
    return d;
}

} // namespace shrimp::net
