/**
 * @file
 * Transport-layer primitives for the SHRIMP NI's selective-repeat
 * recovery path: the SACK bitmap carried by every acknowledgment, the
 * Jacobson/Karn RTT estimator behind the adaptive retransmit timeout,
 * and the AIMD congestion window layered on the per-destination
 * credit scheme.
 *
 * These are pure, event-queue-free value types so the unit tests can
 * exercise the encode/decode round trip, the estimator convergence,
 * and the slow-start/halving state machine without building a
 * two-node world. The NetworkInterface owns one RttEstimator and one
 * CongestionWindow per sender flow.
 *
 * Determinism: everything here is arithmetic on values the owning
 * shard already holds — no clocks, no randomness, no cross-node
 * reads — so the sharded engine's bit-identity contract is preserved
 * by construction.
 */

#ifndef SHRIMP_SHRIMP_TRANSPORT_HH
#define SHRIMP_SHRIMP_TRANSPORT_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace shrimp::net
{

/**
 * Width of the SACK bitmap (and therefore the sender's sequence
 * window): an ack describes receipt of seqs [cum, cum + sackWindow).
 * The sender never launches a chunk more than sackWindow sequence
 * numbers past its cumulative ack, so every in-flight chunk is
 * representable in the bitmap of any ack that can name it.
 */
constexpr unsigned sackWindow = 64;

/**
 * The acknowledgment a receiver posts back to a sender. `cum` is the
 * drain watermark (every chunk below it has left the incoming FIFO
 * through the EISA DMA — it doubles as the credit return, as before);
 * bit i of `sack` says seq `cum + i` has been *received* (buffered or
 * queued for drain) even though it has not been drained yet; `ecn`
 * is the congestion-experienced mark: the receiver's incoming FIFO
 * was overcommitted beyond its nominal capacity when the ack left,
 * i.e. several senders' credit windows converged on this node.
 */
struct AckInfo
{
    std::uint64_t cum = 0;
    std::uint64_t sack = 0;
    bool ecn = false;
};

/**
 * Encode the SACK bitmap: bit i set iff `cum + i` appears in
 * @p received (any order, duplicates tolerated) or is below
 * @p in_order_below (the receiver's `expected` watermark — everything
 * under it was accepted in order and is draining). Seqs outside
 * [cum, cum + sackWindow) are ignored.
 */
inline std::uint64_t
sackEncode(std::uint64_t cum, std::uint64_t in_order_below,
           const std::vector<std::uint64_t> &received)
{
    std::uint64_t bits = 0;
    for (unsigned i = 0; i < sackWindow; ++i) {
        if (cum + i < in_order_below)
            bits |= std::uint64_t(1) << i;
    }
    for (std::uint64_t s : received) {
        if (s >= cum && s < cum + sackWindow)
            bits |= std::uint64_t(1) << (s - cum);
    }
    return bits;
}

/** Decode a bitmap back into the seqs it names (ascending). */
inline std::vector<std::uint64_t>
sackDecode(std::uint64_t cum, std::uint64_t bits)
{
    std::vector<std::uint64_t> out;
    for (unsigned i = 0; i < sackWindow; ++i) {
        if (bits & (std::uint64_t(1) << i))
            out.push_back(cum + i);
    }
    return out;
}

/**
 * Jacobson SRTT/RTTVAR estimator (RFC 6298 constants) in simulation
 * ticks. Karn's rule is the caller's job: never feed a sample taken
 * from a retransmitted chunk.
 */
struct RttEstimator
{
    Tick srtt = 0;
    Tick rttvar = 0;
    bool valid = false;

    void
    sample(Tick rtt)
    {
        if (!valid) {
            srtt = rtt;
            rttvar = rtt / 2;
            valid = true;
            return;
        }
        // The EWMA steps are signed: a sample below the current
        // estimate must pull it *down*, and with Tick unsigned the
        // wrap of (rtt - srtt) does not survive the division.
        Tick err = rtt > srtt ? rtt - srtt : srtt - rtt;
        // rttvar = 3/4 rttvar + 1/4 |err|
        rttvar = Tick(std::int64_t(rttvar) +
                      (std::int64_t(err) - std::int64_t(rttvar)) / 4);
        // srtt = 7/8 srtt + 1/8 rtt
        srtt = Tick(std::int64_t(srtt) +
                    (std::int64_t(rtt) - std::int64_t(srtt)) / 8);
    }

    /**
     * The retransmit timeout this estimate implies: srtt + 4 rttvar,
     * clamped into [@p min_rto, @p max_rto]. Before the first sample
     * the caller should use its configured initial timeout instead.
     */
    Tick
    rto(Tick min_rto, Tick max_rto) const
    {
        Tick t = srtt + 4 * rttvar;
        if (t < min_rto)
            t = min_rto;
        if (t > max_rto)
            t = max_rto;
        return t;
    }
};

/**
 * AIMD congestion window in bytes, layered under the credit window:
 * the pump launches a new chunk only while outstanding bytes stay
 * below min(cwnd, credits). The window opens at the full credit size
 * (ssthresh likewise), so a healthy flow behaves exactly like the
 * pre-congestion-control NI — SHRIMP's backplane is a known-small
 * machine room network, not an internet path, and a single flow
 * cannot overrun the receiver its credits were sized for. Slow start
 * only engages *after* a loss or ECN signal shrinks the window.
 */
struct CongestionWindow
{
    std::uint32_t cwnd = 0;
    std::uint32_t ssthresh = 0;
    /** Full-size chunk bytes (the additive-increase quantum). */
    std::uint32_t chunk = 0;
    /** Credit capacity (the ceiling cwnd can recover to). */
    std::uint32_t cap = 0;

    void
    init(std::uint32_t chunk_bytes, std::uint32_t credit_bytes)
    {
        chunk = chunk_bytes;
        cap = credit_bytes;
        cwnd = credit_bytes;
        ssthresh = credit_bytes;
    }

    /** Cumulative ack advanced by @p acked_bytes: grow the window —
     *  exponentially below ssthresh (slow start), linearly above. */
    void
    onAck(std::uint32_t acked_bytes)
    {
        if (cwnd < ssthresh) {
            std::uint32_t room = ssthresh - cwnd;
            cwnd += acked_bytes < room ? acked_bytes : room;
        } else if (cwnd < cap) {
            // Additive increase: one chunk per cwnd of acked data.
            std::uint64_t inc =
                std::uint64_t(chunk) * acked_bytes / (cwnd ? cwnd : 1);
            cwnd += std::uint32_t(inc < 1 ? 1 : inc);
        }
        if (cwnd > cap)
            cwnd = cap;
    }

    /** Loss detected by fast retransmit, or an ECN-marked ack:
     *  multiplicative decrease to half the bytes in flight. */
    void
    onLoss(std::uint32_t inflight_bytes)
    {
        std::uint32_t floor = 2 * chunk;
        ssthresh = inflight_bytes / 2;
        if (ssthresh < floor)
            ssthresh = floor;
        cwnd = ssthresh;
    }

    /** Retransmit timeout: collapse to two chunks and slow-start
     *  back toward half the pre-loss flight size. Two, not TCP's
     *  one: the early-retransmit scoreboard needs at least one
     *  companion chunk in flight to SACK, or the next loss in the
     *  collapsed window can only be found by another RTO and the
     *  window never climbs out. */
    void
    onRto(std::uint32_t inflight_bytes)
    {
        std::uint32_t floor = 2 * chunk;
        ssthresh = inflight_bytes / 2;
        if (ssthresh < floor)
            ssthresh = floor;
        cwnd = 2 * chunk;
    }

    bool inSlowStart() const { return cwnd < ssthresh; }
};

} // namespace shrimp::net

#endif // SHRIMP_SHRIMP_TRANSPORT_HH
