#include "shrimp/network_interface.hh"

#include <algorithm>
#include <cstring>

#include "sim/sharded.hh"
#include "sim/trace.hh"

namespace shrimp::net
{

NetworkInterface::NetworkInterface(sim::EventQueue &eq,
                                   const sim::MachineParams &params,
                                   NodeId node,
                                   mem::PhysicalMemory &memory,
                                   bus::IoBus &io_bus, Interconnect &net,
                                   std::uint32_t page_bytes)
    : eq_(eq), params_(params), node_(node), memory_(memory),
      ioBus_(io_bus), net_(net), pageBytes_(page_bytes)
{
    net_.attach(node, this);

    statGroup_.addScalar("messagesSent", &sent_,
                         "messages launched onto the backplane");
    statGroup_.addScalar("messagesDelivered", &delivered_,
                         "complete messages deposited in memory");
    statGroup_.addScalar("bytesDelivered", &rxBytes_,
                         "payload bytes deposited in memory");
    statGroup_.addScalar("autoUpdatesSent", &autoSent_,
                         "automatic-update packets sent");
    statGroup_.addScalar("autoUpdatesCombined", &autoCombined_,
                         "stores merged by update combining");
    statGroup_.addHistogram("delivery_us", &deliveryUs_,
                            "sender start to last byte visible (us)");
}

// --------------------------------------------------------------------
// UdmaDevice interface (the transmit side)
// --------------------------------------------------------------------

std::uint8_t
NetworkInterface::validateTransfer(bool to_device, Addr dev_offset,
                                   std::uint32_t nbytes)
{
    using namespace dma;
    // Deliberate update is memory -> network only; the receive path
    // has its own DMA logic (so invariant I3 is unnecessary here, as
    // the paper notes in Section 8).
    if (!to_device)
        return device_error::direction;
    // "...outgoing message data aligned on 4-byte boundaries..."
    if (dev_offset % 4 != 0 || nbytes % 4 != 0)
        return device_error::alignment;
    std::size_t idx = (dev_offset / pageBytes_) & (Nipt::numEntries - 1);
    if (!nipt_.get(idx).valid)
        return device_error::range;
    return device_error::none;
}

std::uint64_t
NetworkInterface::deviceBoundary(Addr dev_offset) const
{
    // Each NIPT entry names one remote page; a transfer cannot cross
    // into the next proxy page.
    return pageBytes_ - dev_offset % pageBytes_;
}

Tick
NetworkInterface::startLatency(bool to_device, Addr dev_offset) const
{
    (void)to_device;
    (void)dev_offset;
    // NIPT lookup and packet header construction.
    return params_.niptLookup();
}

void
NetworkInterface::transferStarting(bool to_device, Addr dev_offset,
                                   std::uint32_t nbytes)
{
    SHRIMP_ASSERT(to_device, "NI receive transfers are not UDMA");
    std::size_t idx = (dev_offset / pageBytes_) & (Nipt::numEntries - 1);
    const NiptEntry &e = nipt_.get(idx);
    SHRIMP_ASSERT(e.valid, "transfer started against invalid NIPT entry");

    TxMessage msg;
    msg.dstNode = e.dstNode;
    msg.dstBase = e.dstPage * pageBytes_ + dev_offset % pageBytes_;
    msg.total = nbytes;
    msg.startTick = eq_.now();
    msg.data.reserve(nbytes);
    txq_.push_back(std::move(msg));
    SHRIMP_ASSERT(!engineMsg_, "engine already has an open message");
    engineMsg_ = &txq_.back();
    ++sent_;
    trace::log(eq_.now(), trace::Category::Ni, "node ", node_,
               " deliberate update: ", nbytes, " B -> node ",
               e.dstNode, " paddr ", engineMsg_->dstBase);
}

void
NetworkInterface::transferFinished(bool to_device, Addr dev_offset,
                                   std::uint32_t nbytes)
{
    (void)to_device;
    (void)dev_offset;
    (void)nbytes;
    if (engineMsg_ && engineMsg_->pushed < engineMsg_->total) {
        // Aborted transfer: truncate the open message so the pump can
        // retire what was already pushed instead of waiting forever.
        engineMsg_->total = engineMsg_->pushed;
        pump();
    }
    engineMsg_ = nullptr;
}

std::uint32_t
NetworkInterface::txFifoFree() const
{
    // The automatic-update snooper may transiently overshoot the
    // FIFO (its small staging queue backpressures the memory bus on
    // the real board); clamp so the engine sees zero capacity then.
    return params_.niFifoBytes > txFifoBytes_
               ? params_.niFifoBytes - txFifoBytes_
               : 0;
}

// --------------------------------------------------------------------
// Automatic update (Section 9): snooped stores propagate directly
// --------------------------------------------------------------------

void
NetworkInterface::mapAutoUpdate(Addr local_page_base, NodeId dst_node,
                                std::uint64_t dst_page)
{
    SHRIMP_ASSERT(local_page_base % pageBytes_ == 0,
                  "binding must be page-aligned");
    autoTable_[local_page_base] = AutoUpdateEntry{dst_node, dst_page};
}

void
NetworkInterface::unmapAutoUpdate(Addr local_page_base)
{
    autoTable_.erase(local_page_base);
}

bool
NetworkInterface::autoUpdateBound(Addr local_page_base) const
{
    return autoTable_.count(local_page_base) != 0;
}

bool
NetworkInterface::snoopStore(Addr paddr, std::uint64_t value)
{
    Addr page = paddr - paddr % pageBytes_;
    auto it = autoTable_.find(page);
    if (it == autoTable_.end())
        return false;

    Addr dst_addr =
        it->second.dstPage * pageBytes_ + paddr % pageBytes_;
    std::uint8_t bytes[8];
    std::memcpy(bytes, &value, 8);

    // Write combining: append to the open packet while successive
    // stores stay contiguous (and the packet stays small).
    if (pendingAuto_.valid
            && pendingAuto_.dstNode == it->second.dstNode
            && pendingAuto_.dstBase + pendingAuto_.data.size()
                   == dst_addr
            && pendingAuto_.data.size() < 504) {
        pendingAuto_.data.insert(pendingAuto_.data.end(), bytes,
                                 bytes + 8);
        ++autoCombined_;
        return true;
    }

    // Non-contiguous (or no open packet): flush and open a new one.
    flushAutoUpdates();
    pendingAuto_.valid = true;
    pendingAuto_.dstNode = it->second.dstNode;
    pendingAuto_.dstBase = dst_addr;
    pendingAuto_.data.assign(bytes, bytes + 8);
    autoFlushEvent_ = eq_.scheduleIn(
        params_.autoCombineWindow(), "ni.autoflush",
        [this] {
            autoFlushEvent_ = sim::EventHandle();
            flushAutoUpdates();
        },
        sim::EventPriority::DeviceCompletion);
    return true;
}

void
NetworkInterface::flushAutoUpdates()
{
    if (!pendingAuto_.valid)
        return;
    if (autoFlushEvent_.valid()) {
        eq_.deschedule(autoFlushEvent_);
        autoFlushEvent_ = sim::EventHandle();
    }
    TxMessage msg;
    msg.dstNode = pendingAuto_.dstNode;
    msg.dstBase = pendingAuto_.dstBase;
    msg.total = std::uint32_t(pendingAuto_.data.size());
    msg.pushed = msg.total;
    msg.startTick = eq_.now();
    msg.data = std::move(pendingAuto_.data);
    txFifoBytes_ += msg.total;
    txq_.push_back(std::move(msg));
    pendingAuto_ = PendingAuto();
    ++autoSent_;
    ++sent_;
    trace::log(eq_.now(), trace::Category::Ni, "node ", node_,
               " automatic update packet flushed");
    pump();
}

std::uint32_t
NetworkInterface::pushCapacity(Addr dev_offset, std::uint32_t want)
{
    (void)dev_offset;
    return std::min(want, txFifoFree());
}

void
NetworkInterface::devicePush(Addr dev_offset, const std::uint8_t *data,
                             std::uint32_t len)
{
    (void)dev_offset;
    // Push into the engine's own message: automatic-update packets
    // may have been appended to the queue in the meantime.
    SHRIMP_ASSERT(engineMsg_, "push with no open message");
    TxMessage &msg = *engineMsg_;
    SHRIMP_ASSERT(msg.pushed + len <= msg.total, "push overflow");
    SHRIMP_ASSERT(len <= txFifoFree(), "outgoing FIFO overflow");
    msg.data.insert(msg.data.end(), data, data + len);
    msg.pushed += len;
    txFifoBytes_ += len;
    pump();
}

std::uint32_t
NetworkInterface::pullAvailable(Addr dev_offset, std::uint32_t want)
{
    (void)dev_offset;
    (void)want;
    panic("SHRIMP NI is not a UDMA source device");
}

void
NetworkInterface::devicePull(Addr dev_offset, std::uint8_t *out,
                             std::uint32_t len)
{
    (void)dev_offset;
    (void)out;
    (void)len;
    panic("SHRIMP NI is not a UDMA source device");
}

void
NetworkInterface::setEngineWakeup(std::function<void()> wakeup)
{
    engineWakeup_ = std::move(wakeup);
}

std::uint64_t
NetworkInterface::proxyExtentBytes() const
{
    return std::uint64_t(Nipt::numEntries) * pageBytes_;
}

bool
NetworkInterface::allowProxyMap(std::uint64_t first_page,
                                std::uint64_t n_pages,
                                bool writable) const
{
    // Outgoing proxy pages are write-only in spirit; we require the
    // mapping to be writable (a read-only send page is useless) and
    // every named NIPT entry to be programmed.
    (void)writable;
    for (std::uint64_t i = 0; i < n_pages; ++i) {
        if (!nipt_.get(std::size_t(first_page + i)).valid)
            return false;
    }
    return true;
}

// --------------------------------------------------------------------
// Packet pump: outgoing FIFO -> backplane (cut-through)
// --------------------------------------------------------------------

std::uint32_t &
NetworkInterface::creditsFor(NodeId dst)
{
    if (dst >= txCredits_.size())
        txCredits_.resize(dst + 1, params_.niFifoBytes);
    return txCredits_[dst];
}

void
NetworkInterface::postToNode(NodeId dst, Tick when, const char *name,
                             sim::EventCallback fn)
{
    if (router_) {
        router_->post(node_, dst, when, name, std::move(fn),
                      sim::EventPriority::DeviceCompletion);
    } else {
        eq_.schedule(when, name, std::move(fn),
                     sim::EventPriority::DeviceCompletion);
    }
}

void
NetworkInterface::pump()
{
    if (pumpBusy_)
        return;
    // Retire fully-launched messages from the front.
    while (!txq_.empty()
           && txq_.front().launched == txq_.front().total) {
        SHRIMP_ASSERT(engineMsg_ != &txq_.front(),
                      "retiring the engine's open message");
        txq_.pop_front();
    }
    if (txq_.empty())
        return;
    // Launch from the oldest message that has bytes ready. A message
    // the engine has not started filling yet (pushed == 0) may be
    // overtaken by ready packets behind it (e.g. automatic updates),
    // which keeps the FIFO draining while the engine winds up; chunks
    // *within* a message always go in order.
    TxMessage *msgp = nullptr;
    for (auto &m : txq_) {
        if (m.pushed > m.launched) {
            msgp = &m;
            break;
        }
        if (m.pushed > 0 && m.launched < m.total)
            return; // partially sent, awaiting more engine pushes
    }
    if (!msgp)
        return; // nothing ready yet
    TxMessage &msg = *msgp;
    std::uint32_t avail = msg.pushed - msg.launched;
    std::uint32_t q = std::min(avail, pumpChunkBytes);

    // Sender-side credit window: launching consumes credits; the
    // receiver's DMA returns them one hop after draining the chunk
    // (creditReturn re-pumps). No receiver state is read here.
    std::uint32_t &credits = creditsFor(msg.dstNode);
    if (credits < q)
        return;
    credits -= q;

    bool msg_start = msg.launched == 0;
    bool msg_end = msg.launched + q == msg.total;
    std::uint64_t wire_bytes =
        q + (msg_start ? params_.niHeaderBytes : 0);
    Tick injected = net_.acquireLink(node_, wire_bytes, eq_.now());
    Tick arrival = injected + net_.hopLatency();

    std::vector<std::uint8_t> payload(
        msg.data.begin() + msg.launched,
        msg.data.begin() + msg.launched + q);
    Addr dst_addr = msg.dstBase + msg.launched;
    NodeId src = node_;
    Tick sender_start = msg.startTick;

    pumpBusy_ = true;
    // The peer pointer is only dereferenced when the event fires, on
    // the destination node's own shard.
    NetworkInterface *peer = net_.ni(msg.dstNode);
    postToNode(
        msg.dstNode, arrival, "ni.deliver",
        [peer, src, dst_addr, payload = std::move(payload), msg_start,
         msg_end, sender_start]() mutable {
            peer->rxDeliver(src, dst_addr, std::move(payload),
                            msg_start, msg_end, sender_start);
        });

    eq_.schedule(
        injected, "ni.pump",
        [this, q, msgp] {
            pumpBusy_ = false;
            SHRIMP_ASSERT(txFifoBytes_ >= q, "tx FIFO underflow");
            txFifoBytes_ -= q;
            // Deque references stay valid across push/pop of other
            // elements, and this message cannot be retired while it
            // has unlaunched bytes.
            msgp->launched += q;
            if (engineWakeup_)
                engineWakeup_(); // outgoing FIFO space freed
            pump();
        },
        sim::EventPriority::DeviceCompletion);
}

// --------------------------------------------------------------------
// Receive side: backplane -> incoming FIFO -> EISA DMA -> memory
// --------------------------------------------------------------------

void
NetworkInterface::creditReturn(NodeId dst, std::uint32_t bytes)
{
    std::uint32_t &credits = creditsFor(dst);
    credits += bytes;
    SHRIMP_ASSERT(credits <= params_.niFifoBytes,
                  "credit window overflow toward node ", dst);
    // A chunk may be stalled on this window; re-evaluate (idempotent,
    // returns immediately when the pump is mid-flight or idle).
    pump();
}

void
NetworkInterface::rxDeliver(NodeId src, Addr dst_addr,
                            std::vector<std::uint8_t> data,
                            bool msg_start, bool msg_end,
                            Tick sender_start)
{
    auto len = std::uint32_t(data.size());
    rxFifoBytes_ += len;
    rxChunks_.push_back(RxChunk{src, dst_addr, std::move(data),
                                msg_start, msg_end, sender_start});
    rxPump();
}

void
NetworkInterface::rxPump()
{
    if (rxDmaBusy_ || rxChunks_.empty())
        return;
    const RxChunk &c = rxChunks_.front();
    auto len = std::uint32_t(c.data.size());

    // Receive-side EISA DMA logic: start latency on each new packet,
    // then burst the chunk across the receiving node's I/O bus.
    Tick earliest = eq_.now() + (c.msgStart ? params_.rxDmaStart() : 0);
    Tick done = ioBus_.burstTransferAt(earliest, len);

    rxDmaBusy_ = true;
    eq_.schedule(
        done, "ni.rxdma",
        [this, len] {
            RxChunk chunk = std::move(rxChunks_.front());
            rxChunks_.pop_front();
            memory_.writeBytes(chunk.dstAddr, chunk.data.data(), len);
            rxBytes_ += double(len);
            SHRIMP_ASSERT(rxFifoBytes_ >= len, "rx FIFO underflow");
            rxFifoBytes_ -= len;
            rxDmaBusy_ = false;
            // Return the credits to the sender's window, one
            // backplane hop away (self-sends included, so the
            // accounting is uniform).
            NetworkInterface *sender = net_.ni(chunk.src);
            postToNode(chunk.src, eq_.now() + net_.hopLatency(),
                       "ni.credit",
                       [sender, me = node_, len] {
                           sender->creditReturn(me, len);
                       });
            if (chunk.msgEnd) {
                // The completion flag/word becomes visible a little
                // after the data (write buffers, ordering).
                Tick when = eq_.now() + params_.rxCompletion();
                Delivery d;
                d.srcNode = chunk.src;
                d.dstPhysAddr = chunk.dstAddr + len;
                d.bytes = 0; // filled by callback users if needed
                d.senderStartTick = chunk.senderStart;
                d.deliveredTick = when;
                eq_.schedule(
                    when, "ni.delivered",
                    [this, d] {
                        ++delivered_;
                        lastDelivery_ = eq_.now();
                        deliveryUs_.sample(
                            ticksToUs(eq_.now() - d.senderStartTick));
                        trace::log(eq_.now(), trace::Category::Ni,
                                   "node ", node_,
                                   " delivery complete from node ",
                                   d.srcNode);
                        if (onDelivery_)
                            onDelivery_(d);
                    },
                    sim::EventPriority::DeviceCompletion);
            }
            rxPump();
        },
        sim::EventPriority::DeviceCompletion);
}

} // namespace shrimp::net
