#include "shrimp/network_interface.hh"

#include <algorithm>
#include <cstring>

#include "sim/sharded.hh"
#include "sim/trace.hh"
#include "sim/trace_sink.hh"

namespace shrimp::net
{

namespace
{

/** Sim-time instant on this node's "nodeN.net" Perfetto track (no-op
 *  unless a --profile trace sink is installed). */
inline void
netInstant(NodeId src, const char *what, Tick at, NodeId dst,
           std::uint64_t seq)
{
    if (sim::TraceSink *sink = sim::TraceSink::global()) {
        sink->simInstant("node" + std::to_string(src) + ".net", what,
                         at, "dst", dst, "seq", seq);
    }
}

constexpr std::uint64_t fnvBasis = 14695981039346656037ull;
constexpr std::uint64_t fnvPrime = 1099511628211ull;

inline void
fnvByte(std::uint64_t &h, std::uint8_t b)
{
    h ^= b;
    h *= fnvPrime;
}

inline void
fnvU64(std::uint64_t &h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        fnvByte(h, std::uint8_t(v >> (8 * i)));
}

} // namespace

std::uint64_t
chunkChecksum(NodeId src, std::uint64_t seq, Addr dst_addr,
              bool msg_start, bool msg_end, const std::uint8_t *data,
              std::size_t len)
{
    std::uint64_t h = fnvBasis;
    fnvU64(h, src);
    fnvU64(h, seq);
    fnvU64(h, dst_addr);
    fnvByte(h, msg_start ? 1 : 0);
    fnvByte(h, msg_end ? 1 : 0);
    fnvU64(h, len);
    for (std::size_t i = 0; i < len; ++i)
        fnvByte(h, data[i]);
    return h;
}

NetworkInterface::NetworkInterface(sim::EventQueue &eq,
                                   const sim::MachineParams &params,
                                   NodeId node,
                                   mem::PhysicalMemory &memory,
                                   bus::IoBus &io_bus, Interconnect &net,
                                   std::uint32_t page_bytes)
    : eq_(eq), params_(params), node_(node), memory_(memory),
      ioBus_(io_bus), net_(net), pageBytes_(page_bytes)
{
    net_.attach(node, this);

    statGroup_.addScalar("messagesSent", &sent_,
                         "messages launched onto the backplane");
    statGroup_.addScalar("messagesDelivered", &delivered_,
                         "complete messages deposited in memory");
    statGroup_.addScalar("bytesDelivered", &rxBytes_,
                         "payload bytes deposited in memory");
    statGroup_.addScalar("autoUpdatesSent", &autoSent_,
                         "automatic-update packets sent");
    statGroup_.addScalar("autoUpdatesCombined", &autoCombined_,
                         "stores merged by update combining");
    statGroup_.addScalar("retransmits", &retransmits_,
                         "chunks re-sent (fast retransmit + RTO)");
    statGroup_.addScalar("fastRetransmits", &fastRetransmits_,
                         "chunks re-sent by SACK fast retransmit");
    statGroup_.addScalar("timeouts", &timeouts_,
                         "retransmit-timer expiries");
    statGroup_.addScalar("acksSent", &acksSent_,
                         "acknowledgments sent (cumulative + dup)");
    statGroup_.addScalar("rxDupDropped", &rxDupDropped_,
                         "duplicate chunks discarded at the receiver");
    statGroup_.addScalar("rxCorruptDropped", &rxCorruptDropped_,
                         "checksum-mismatch chunks discarded");
    statGroup_.addScalar("rxOooBuffered", &rxOooBuffered_,
                         "chunks resequenced after arriving past a gap");
    statGroup_.addScalar("ecnMarked", &ecnMarked_,
                         "acks sent carrying the ECN overcommit mark");
    statGroup_.addScalar("cwndCuts", &cwndCuts_,
                         "congestion-window halvings (loss or ECN)");
    statGroup_.addScalar("rescueSpurious", &rescueSpurious_,
                         "rescue retransmits proven unnecessary");
    statGroup_.addHistogram("delivery_us", &deliveryUs_,
                            "sender start to last byte visible (us)");
}

// --------------------------------------------------------------------
// UdmaDevice interface (the transmit side)
// --------------------------------------------------------------------

std::uint8_t
NetworkInterface::validateTransfer(bool to_device, Addr dev_offset,
                                   std::uint32_t nbytes)
{
    using namespace dma;
    // Deliberate update is memory -> network only; the receive path
    // has its own DMA logic (so invariant I3 is unnecessary here, as
    // the paper notes in Section 8).
    if (!to_device)
        return device_error::direction;
    // "...outgoing message data aligned on 4-byte boundaries..."
    if (dev_offset % 4 != 0 || nbytes % 4 != 0)
        return device_error::alignment;
    std::size_t idx = (dev_offset / pageBytes_) & (Nipt::numEntries - 1);
    if (!nipt_.get(idx).valid)
        return device_error::range;
    return device_error::none;
}

std::uint64_t
NetworkInterface::deviceBoundary(Addr dev_offset) const
{
    // Each NIPT entry names one remote page; a transfer cannot cross
    // into the next proxy page.
    return pageBytes_ - dev_offset % pageBytes_;
}

Tick
NetworkInterface::startLatency(bool to_device, Addr dev_offset) const
{
    (void)to_device;
    (void)dev_offset;
    // NIPT lookup and packet header construction.
    return params_.niptLookup();
}

void
NetworkInterface::transferStarting(bool to_device, Addr dev_offset,
                                   std::uint32_t nbytes)
{
    SHRIMP_ASSERT(to_device, "NI receive transfers are not UDMA");
    std::size_t idx = (dev_offset / pageBytes_) & (Nipt::numEntries - 1);
    const NiptEntry &e = nipt_.get(idx);
    SHRIMP_ASSERT(e.valid, "transfer started against invalid NIPT entry");

    TxMessage msg;
    msg.dstNode = e.dstNode;
    msg.dstBase = e.dstPage * pageBytes_ + dev_offset % pageBytes_;
    msg.total = nbytes;
    msg.startTick = eq_.now();
    msg.data.reserve(nbytes);
    txq_.push_back(std::move(msg));
    SHRIMP_ASSERT(!engineMsg_, "engine already has an open message");
    engineMsg_ = &txq_.back();
    ++sent_;
    trace::log(eq_.now(), trace::Category::Ni, "node ", node_,
               " deliberate update: ", nbytes, " B -> node ",
               e.dstNode, " paddr ", engineMsg_->dstBase);
}

void
NetworkInterface::transferFinished(bool to_device, Addr dev_offset,
                                   std::uint32_t nbytes)
{
    (void)to_device;
    (void)dev_offset;
    (void)nbytes;
    if (engineMsg_ && engineMsg_->pushed < engineMsg_->total) {
        // Aborted transfer: truncate the open message so the pump can
        // retire what was already pushed instead of waiting forever.
        engineMsg_->total = engineMsg_->pushed;
        pump();
    }
    engineMsg_ = nullptr;
}

std::uint32_t
NetworkInterface::txFifoFree() const
{
    // The automatic-update snooper may transiently overshoot the
    // FIFO (its small staging queue backpressures the memory bus on
    // the real board); clamp so the engine sees zero capacity then.
    return params_.niFifoBytes > txFifoBytes_
               ? params_.niFifoBytes - txFifoBytes_
               : 0;
}

// --------------------------------------------------------------------
// Automatic update (Section 9): snooped stores propagate directly
// --------------------------------------------------------------------

void
NetworkInterface::mapAutoUpdate(Addr local_page_base, NodeId dst_node,
                                std::uint64_t dst_page)
{
    SHRIMP_ASSERT(local_page_base % pageBytes_ == 0,
                  "binding must be page-aligned");
    autoTable_[local_page_base] = AutoUpdateEntry{dst_node, dst_page};
}

void
NetworkInterface::unmapAutoUpdate(Addr local_page_base)
{
    autoTable_.erase(local_page_base);
}

bool
NetworkInterface::autoUpdateBound(Addr local_page_base) const
{
    return autoTable_.count(local_page_base) != 0;
}

bool
NetworkInterface::snoopStore(Addr paddr, std::uint64_t value)
{
    Addr page = paddr - paddr % pageBytes_;
    auto it = autoTable_.find(page);
    if (it == autoTable_.end())
        return false;

    Addr dst_addr =
        it->second.dstPage * pageBytes_ + paddr % pageBytes_;
    std::uint8_t bytes[8];
    std::memcpy(bytes, &value, 8);

    // Write combining: append to the open packet while successive
    // stores stay contiguous (and the packet stays small).
    if (pendingAuto_.valid
            && pendingAuto_.dstNode == it->second.dstNode
            && pendingAuto_.dstBase + pendingAuto_.data.size()
                   == dst_addr
            && pendingAuto_.data.size() < 504) {
        pendingAuto_.data.insert(pendingAuto_.data.end(), bytes,
                                 bytes + 8);
        ++autoCombined_;
        return true;
    }

    // Non-contiguous (or no open packet): flush and open a new one.
    flushAutoUpdates();
    pendingAuto_.valid = true;
    pendingAuto_.dstNode = it->second.dstNode;
    pendingAuto_.dstBase = dst_addr;
    pendingAuto_.data.assign(bytes, bytes + 8);
    autoFlushEvent_ = eq_.scheduleIn(
        params_.autoCombineWindow(), "ni.autoflush",
        [this] {
            autoFlushEvent_ = sim::EventHandle();
            flushAutoUpdates();
        },
        sim::EventPriority::DeviceCompletion);
    return true;
}

void
NetworkInterface::flushAutoUpdates()
{
    if (!pendingAuto_.valid)
        return;
    if (autoFlushEvent_.valid()) {
        eq_.deschedule(autoFlushEvent_);
        autoFlushEvent_ = sim::EventHandle();
    }
    TxMessage msg;
    msg.dstNode = pendingAuto_.dstNode;
    msg.dstBase = pendingAuto_.dstBase;
    msg.total = std::uint32_t(pendingAuto_.data.size());
    msg.pushed = msg.total;
    msg.startTick = eq_.now();
    msg.data = std::move(pendingAuto_.data);
    // Control packets enter unconditionally, even into a near-full
    // FIFO: they are tiny, the channel-layer credit protocol bounds
    // how many can be outstanding, and snoopStore reuses pendingAuto_
    // immediately after this call, so deferring would lose them. The
    // engine's data path is the one throttled by pushCapacity().
    txFifoBytes_ += msg.total;
    txq_.push_back(std::move(msg));
    pendingAuto_ = PendingAuto();
    ++autoSent_;
    ++sent_;
    trace::log(eq_.now(), trace::Category::Ni, "node ", node_,
               " automatic update packet flushed");
    pump();
}

std::uint32_t
NetworkInterface::pushCapacity(Addr dev_offset, std::uint32_t want)
{
    (void)dev_offset;
    return std::min(want, txFifoFree());
}

void
NetworkInterface::devicePush(Addr dev_offset, const std::uint8_t *data,
                             std::uint32_t len)
{
    (void)dev_offset;
    // Push into the engine's own message: automatic-update packets
    // may have been appended to the queue in the meantime.
    SHRIMP_ASSERT(engineMsg_, "push with no open message");
    TxMessage &msg = *engineMsg_;
    SHRIMP_ASSERT(msg.pushed + len <= msg.total, "push overflow");
    // This burst's capacity was granted at pushCapacity() time, one
    // bus-burst latency ago; an automatic-update packet may have
    // claimed FIFO space in that window (it can happen whenever the
    // FIFO runs near-full, e.g. a flow-credit stall on a faulty
    // backplane). Real hardware would have wait-stated the burst's
    // words into the draining FIFO, so accept the transient
    // overshoot: txFifoFree() clamps at zero and keeps the *next*
    // capacity grant honest.
    msg.data.insert(msg.data.end(), data, data + len);
    msg.pushed += len;
    txFifoBytes_ += len;
    pump();
}

std::uint32_t
NetworkInterface::pullAvailable(Addr dev_offset, std::uint32_t want)
{
    (void)dev_offset;
    (void)want;
    panic("SHRIMP NI is not a UDMA source device");
}

void
NetworkInterface::devicePull(Addr dev_offset, std::uint8_t *out,
                             std::uint32_t len)
{
    (void)dev_offset;
    (void)out;
    (void)len;
    panic("SHRIMP NI is not a UDMA source device");
}

void
NetworkInterface::setEngineWakeup(std::function<void()> wakeup)
{
    engineWakeup_ = std::move(wakeup);
}

std::uint64_t
NetworkInterface::proxyExtentBytes() const
{
    return std::uint64_t(Nipt::numEntries) * pageBytes_;
}

bool
NetworkInterface::allowProxyMap(std::uint64_t first_page,
                                std::uint64_t n_pages,
                                bool writable) const
{
    // Outgoing proxy pages are write-only in spirit; we require the
    // mapping to be writable (a read-only send page is useless) and
    // every named NIPT entry to be programmed.
    (void)writable;
    for (std::uint64_t i = 0; i < n_pages; ++i) {
        if (!nipt_.get(std::size_t(first_page + i)).valid)
            return false;
    }
    return true;
}

// --------------------------------------------------------------------
// Packet pump: outgoing FIFO -> backplane (cut-through)
// --------------------------------------------------------------------

NetworkInterface::TxFlow &
NetworkInterface::flowFor(NodeId dst)
{
    if (dst >= txFlows_.size())
        txFlows_.resize(dst + 1);
    TxFlow &f = txFlows_[dst];
    if (!f.inited) {
        f.credits = params_.niFifoBytes;
        f.retryTimeout = params_.niRetryTimeout();
        f.cwnd.init(pumpChunkBytes, params_.niFifoBytes);
        f.inited = true;
    }
    return f;
}

NetworkInterface::RxFlow &
NetworkInterface::rxFlowFor(NodeId src)
{
    if (src >= rxFlows_.size())
        rxFlows_.resize(src + 1);
    return rxFlows_[src];
}

void
NetworkInterface::postToNode(NodeId dst, Tick when, const char *name,
                             sim::EventCallback fn)
{
    if (router_) {
        router_->post(node_, dst, when, name, std::move(fn),
                      sim::EventPriority::DeviceCompletion);
    } else {
        eq_.schedule(when, name, std::move(fn),
                     sim::EventPriority::DeviceCompletion);
    }
}

Tick
NetworkInterface::transmit(NodeId dst, const TxChunk &chunk,
                           bool retransmit)
{
    if (retransmit) {
        ++retransmits_;
        netInstant(node_, "retransmit", eq_.now(), dst, chunk.seq);
    }

    // Every chunk carries its own header on the wire (the sequence
    // number and checksum travel with each packet, not only the
    // message-opening one).
    ChunkHeader h;
    h.src = node_;
    h.seq = chunk.seq;
    h.dstAddr = chunk.dstAddr;
    h.msgStart = chunk.msgStart;
    h.msgEnd = chunk.msgEnd;
    h.senderStart = chunk.senderStart;
    h.checksum = chunk.checksum;

    // The retransmit buffer keeps the pristine payload; the wire copy
    // is what the fault model may mangle.
    return launchChunk(dst, h, chunk.data);
}

void
NetworkInterface::forwardChunk(NodeId dst, const ChunkHeader &h,
                               std::vector<std::uint8_t> data)
{
    launchChunk(dst, h, std::move(data));
}

Tick
NetworkInterface::launchChunk(NodeId dst, const ChunkHeader &h,
                              std::vector<std::uint8_t> payload)
{
    std::uint64_t wire_bytes = payload.size() + params_.niHeaderBytes;
    // One hop of the dimension-order route: this node's own outgoing
    // link (the destination itself on the crossbar). The link horizon
    // and the fault stream both belong to this node's shard.
    const NodeId hop = net_.nextHop(node_, dst);
    Tick injected = net_.acquireLink(node_, hop, wire_bytes, eq_.now());
    Tick arrival = injected + net_.hopLatency();

    // Posts either the final delivery or the next forwarding hop; the
    // peer pointer is only dereferenced when the event fires, on that
    // node's own shard.
    NetworkInterface *peer = net_.ni(hop);
    auto handoff = [&](Tick when, std::vector<std::uint8_t> bytes) {
        if (hop == dst) {
            postToNode(dst, when, "ni.deliver",
                       [peer, h, bytes = std::move(bytes)]() mutable {
                           peer->rxDeliver(h, std::move(bytes));
                       });
        } else {
            postToNode(hop, when, "ni.fwd",
                       [peer, dst, h,
                        bytes = std::move(bytes)]() mutable {
                           peer->forwardChunk(dst, h, std::move(bytes));
                       });
        }
    };

    // Faults are decided per physical link: each hop draws from the
    // stream of the link it is about to traverse, so a multi-hop
    // chunk is exposed once per link — exactly like the real wires.
    FaultDecision fd =
        net_.faults().decide(node_, hop, eq_.now(), /*control=*/false);
    switch (fd.action) {
      case FaultAction::Drop:
        // The link was occupied, but nothing arrives at the far end.
        trace::log(eq_.now(), trace::Category::NetFault, "node ",
                   node_, " -> ", hop, " seq ", h.seq,
                   " dropped on the wire");
        netInstant(node_, "drop", eq_.now(), hop, h.seq);
        return injected;
      case FaultAction::Corrupt:
        if (!payload.empty())
            payload[fd.aux % payload.size()] ^= 0xFF;
        trace::log(eq_.now(), trace::Category::NetFault, "node ",
                   node_, " -> ", hop, " seq ", h.seq,
                   " corrupted on the wire");
        netInstant(node_, "corrupt", eq_.now(), hop, h.seq);
        break;
      case FaultAction::Duplicate: {
        // The copy takes one extra hop, so it still satisfies the
        // sharded lookahead rule and arrives after the original.
        std::vector<std::uint8_t> copy = payload;
        trace::log(eq_.now(), trace::Category::NetFault, "node ",
                   node_, " -> ", hop, " seq ", h.seq,
                   " duplicated on the wire");
        netInstant(node_, "duplicate", eq_.now(), hop, h.seq);
        handoff(arrival + net_.hopLatency(), std::move(copy));
        break;
      }
      case FaultAction::Delay:
        trace::log(eq_.now(), trace::Category::NetFault, "node ",
                   node_, " -> ", hop, " seq ", h.seq, " delayed ",
                   fd.extraDelay, " ticks");
        netInstant(node_, "delay", eq_.now(), hop, h.seq);
        arrival += fd.extraDelay;
        break;
      case FaultAction::Deliver:
        break;
    }

    handoff(arrival, std::move(payload));
    return injected;
}

Tick
NetworkInterface::wireRoundTripFloor(NodeId dst) const
{
    return net_.minDeliveryLatency(node_, dst)
           + net_.minDeliveryLatency(dst, node_);
}

void
NetworkInterface::armRetry(NodeId dst, TxFlow &flow)
{
    if (net_.faults().config().disableRetransmit)
        return;
    if (flow.retryEvent.valid() || flow.unacked.empty())
        return;
    flow.retryEvent = eq_.scheduleIn(
        flow.retryTimeout, "ni.rto", [this, dst] { onRetryTimeout(dst); },
        sim::EventPriority::DeviceCompletion);
}

std::uint32_t
NetworkInterface::inflightBytes(const TxFlow &flow) const
{
    // Credits consumed but not yet returned are exactly the bytes the
    // receiver has not drained — the flight size, with no separate
    // counter to keep in sync.
    return params_.niFifoBytes - flow.credits;
}

void
NetworkInterface::cutWindow(TxFlow &flow)
{
    // One multiplicative decrease per flight: further loss/ECN
    // signals from the same window carry no new information.
    if (flow.cumAcked < flow.lastCwndCutSeq)
        return;
    flow.cwnd.onLoss(inflightBytes(flow));
    flow.lastCwndCutSeq = flow.nextSeq;
    ++cwndCuts_;
}

bool
NetworkInterface::fastRetransmitPass(NodeId dst, TxFlow &flow)
{
    // `no-retransmit` kills every recovery path, not just the timer —
    // otherwise the scoreboard would quietly heal the holes and the
    // mutation would prove nothing.
    const FaultConfig &fcfg = net_.faults().config();
    if (fcfg.disableFastRetransmit || fcfg.disableRetransmit)
        return false;
    // RFC 6675's DupThresh rule applied per chunk: a hole with three
    // or more SACKed chunks above it is considered lost rather than
    // reordered, and is resent without waiting for the RTO. One
    // backward sweep counts SACKed chunks above each hole; resends go
    // out in ascending sequence order.
    //
    // Two refinements keep the RTO a genuine last resort:
    //  - Early retransmit (RFC 5827): when the window is too small to
    //    ever produce three duplicate acks, the threshold drops to
    //    outstanding-1 (floor 1) — otherwise every loss in a
    //    post-collapse window stalls a full RTO and the window never
    //    recovers.
    //  - Rescue retransmit: once three more SACK marks land after a
    //    chunk was resent while it stays unSACKed, the resend was
    //    probably lost and may go again. "Probably", not certainly:
    //    per-chunk Delay faults reorder chunks within one link (and
    //    any future adaptive routing would too), so post-resend SACKs
    //    can belong to chunks that merely overtook a delayed copy.
    //    The rescue therefore also waits out one full round trip
    //    (the distance-scaled wire floor, or SRTT once measured)
    //    since the resend before treating the serials as proof —
    //    inside that horizon no ack could be answering the resend
    //    yet, so firing early can only duplicate. Rescues the
    //    scoreboard later contradicts are counted in rescueSpurious.
    constexpr unsigned dupThresh = 3;
    const unsigned thresh = std::min<std::size_t>(
        dupThresh,
        std::max<std::size_t>(1, flow.unacked.size() - 1));
    Tick rescueQuiet = wireRoundTripFloor(dst);
    if (flow.rtt.valid && flow.rtt.srtt > rescueQuiet)
        rescueQuiet = flow.rtt.srtt;
    struct Hole
    {
        std::size_t idx;
        bool rescue;
    };
    std::vector<Hole> holes;
    unsigned sackedAbove = 0;
    for (std::size_t i = flow.unacked.size(); i-- > 0;) {
        const TxChunk &c = flow.unacked[i];
        if (c.sacked) {
            ++sackedAbove;
            continue;
        }
        if (sackedAbove < thresh)
            continue;
        if (!c.epochResent) {
            holes.push_back({i, false});
        } else if (flow.sackSerial - c.resendSerial >= dupThresh
                   && eq_.now() >= c.lastResend + rescueQuiet) {
            holes.push_back({i, true});
        }
    }
    for (auto it = holes.rbegin(); it != holes.rend(); ++it) {
        TxChunk &c = flow.unacked[it->idx];
        c.epochResent = true;
        c.rexmitted = true;
        c.resendSerial = flow.sackSerial;
        c.lastResend = eq_.now();
        if (it->rescue) {
            c.rescued = true;
            c.rescueTick = eq_.now();
        }
        ++fastRetransmits_;
        netInstant(node_, "fastrtx", eq_.now(), dst, c.seq);
        trace::log(eq_.now(), trace::Category::NetFault, "node ",
                   node_, " fast retransmit seq ", c.seq,
                   " toward node ", dst);
        transmit(dst, c, /*retransmit=*/true);
    }
    return !holes.empty();
}

void
NetworkInterface::onRetryTimeout(NodeId dst)
{
    TxFlow &flow = flowFor(dst);
    flow.retryEvent = sim::EventHandle();
    if (flow.unacked.empty())
        return;
    ++timeouts_;
    netInstant(node_, "rto", eq_.now(), dst, flow.unacked.front().seq);
    bool any_unsacked = false;
    for (const TxChunk &c : flow.unacked)
        if (!c.sacked) {
            any_unsacked = true;
            break;
        }
    if (!any_unsacked) {
        // Every chunk is SACKed but the cumulative acks that would
        // return the credits were lost and the flow has gone silent.
        // No data is missing, so nothing is "lost": poke the receiver
        // with the oldest chunk (it dup-drops and re-acks the current
        // cum) without collapsing the window.
        TxChunk &c = flow.unacked.front();
        c.rexmitted = true;
        c.lastResend = eq_.now();
        transmit(dst, c, /*retransmit=*/true);
        flow.retryTimeout =
            std::min(flow.retryTimeout * 2, params_.niRetryTimeoutMax());
        armRetry(dst, flow);
        return;
    }
    trace::log(eq_.now(), trace::Category::NetFault, "node ", node_,
               " retransmit timeout toward node ", dst,
               ": resending first hole past seq ",
               flow.unacked.front().seq);
    // New epoch: every hole becomes eligible for one more resend.
    for (TxChunk &c : flow.unacked)
        c.epochResent = false;
    // Selective repeat: resend only the first chunk the receiver does
    // not hold. The rest of the window is repaired ack-clocked in
    // rxAck as the cumulative ack climbs toward the recovery point —
    // never re-flooded blind like go-back-N did.
    for (TxChunk &c : flow.unacked) {
        if (c.sacked)
            continue;
        c.epochResent = true;
        c.rexmitted = true;
        c.resendSerial = flow.sackSerial;
        c.lastResend = eq_.now();
        transmit(dst, c, /*retransmit=*/true);
        break;
    }
    flow.inRtoRecovery = true;
    flow.recoveryPoint = flow.nextSeq;
    flow.cwnd.onRto(inflightBytes(flow));
    flow.lastCwndCutSeq = flow.nextSeq;
    ++cwndCuts_;
    // Capped exponential backoff.
    flow.retryTimeout =
        std::min(flow.retryTimeout * 2, params_.niRetryTimeoutMax());
    armRetry(dst, flow);
}

void
NetworkInterface::pump()
{
    if (pumpBusy_)
        return;
    // Retire fully-launched messages from the front.
    while (!txq_.empty()
           && txq_.front().launched == txq_.front().total) {
        SHRIMP_ASSERT(engineMsg_ != &txq_.front(),
                      "retiring the engine's open message");
        txq_.pop_front();
    }
    if (txq_.empty())
        return;
    // Launch from the oldest message that has bytes ready. A message
    // the engine has not started filling yet (pushed == 0) may be
    // overtaken by ready packets behind it (e.g. automatic updates),
    // which keeps the FIFO draining while the engine winds up; chunks
    // *within* a message always go in order.
    TxMessage *msgp = nullptr;
    for (auto &m : txq_) {
        if (m.pushed > m.launched) {
            msgp = &m;
            break;
        }
        if (m.pushed > 0 && m.launched < m.total)
            return; // partially sent, awaiting more engine pushes
    }
    if (!msgp)
        return; // nothing ready yet
    TxMessage &msg = *msgp;
    std::uint32_t avail = msg.pushed - msg.launched;
    std::uint32_t q = std::min(avail, pumpChunkBytes);

    // Sender-side credit window: launching consumes credits; the
    // receiver's cumulative ack returns them once its DMA drains the
    // chunk (rxAck re-pumps). Retransmissions re-send chunks that
    // already hold credits, so they never consume more.
    TxFlow &flow = flowFor(msg.dstNode);
    if (flow.credits < q)
        return;
    // Congestion window: the effective window is min(cwnd, credits) —
    // bytes in flight (credits consumed, not yet returned) plus this
    // chunk must fit under cwnd too. rxAck re-pumps as cwnd reopens.
    if (inflightBytes(flow) + q > flow.cwnd.cwnd)
        return;
    // Sequence window: never launch a chunk the 64-bit SACK bitmap of
    // a future ack could not name (and whose arrival the receiver's
    // resequencing buffer is not bounded for).
    if (flow.nextSeq >= flow.cumAcked + sackWindow)
        return;
    flow.credits -= q;

    bool msg_start = msg.launched == 0;
    bool msg_end = msg.launched + q == msg.total;

    TxChunk chunk;
    chunk.seq = flow.nextSeq++;
    chunk.dstAddr = msg.dstBase + msg.launched;
    chunk.msgStart = msg_start;
    chunk.msgEnd = msg_end;
    chunk.senderStart = msg.startTick;
    chunk.firstSent = eq_.now();
    chunk.data.assign(msg.data.begin() + msg.launched,
                      msg.data.begin() + msg.launched + q);
    chunk.checksum =
        chunkChecksum(node_, chunk.seq, chunk.dstAddr, msg_start,
                      msg_end, chunk.data.data(), chunk.data.size());
    flow.unacked.push_back(std::move(chunk));

    Tick injected =
        transmit(msg.dstNode, flow.unacked.back(), /*retransmit=*/false);
    armRetry(msg.dstNode, flow);

    pumpBusy_ = true;
    eq_.schedule(
        injected, "ni.pump",
        [this, q, msgp] {
            pumpBusy_ = false;
            SHRIMP_ASSERT(txFifoBytes_ >= q, "tx FIFO underflow");
            txFifoBytes_ -= q;
            // Deque references stay valid across push/pop of other
            // elements, and this message cannot be retired while it
            // has unlaunched bytes.
            msgp->launched += q;
            if (engineWakeup_)
                engineWakeup_(); // outgoing FIFO space freed
            pump();
        },
        sim::EventPriority::DeviceCompletion);
}

// --------------------------------------------------------------------
// Receive side: backplane -> incoming FIFO -> EISA DMA -> memory
// --------------------------------------------------------------------

void
NetworkInterface::rxAck(NodeId dst, AckInfo ack)
{
    TxFlow &flow = flowFor(dst);
    if (ack.cum < flow.cumAcked)
        return; // reordered stale ack: a newer one already arrived

    const FaultConfig &fcfg = net_.faults().config();

    // Apply the SACK bitmap first (sticky scoreboard: the bits are
    // anchored to this ack's own cum, and a bit only ever marks a
    // chunk received — a reordered ack can never un-SACK anything).
    // A chunk's first SACK mark is also the RTT sample: the receiver
    // acks every arrival, so send -> SACK measures the wire round
    // trip the loss-detection clock should run on, not the incoming
    // FIFO's drain sojourn that send -> cumulative-ack would measure.
    // Karn's rule still applies: a retransmitted chunk's mark is
    // ambiguous (which copy arrived?) and is never sampled.
    if (ack.sack != 0 && !fcfg.ignoreSack) {
        Tick rtt_sent = 0;
        bool have_rtt = false;
        for (TxChunk &c : flow.unacked) {
            if (c.sacked || c.seq < ack.cum)
                continue;
            std::uint64_t off = c.seq - ack.cum;
            if (off < sackWindow && (ack.sack >> off) & 1) {
                c.sacked = true;
                ++flow.sackSerial;
                // A SACK landing before the rescue copy could even
                // have completed a round trip was answering an
                // *earlier* copy — the rescue was spurious (the
                // "lost" resend had merely been overtaken, e.g. by a
                // per-chunk delay fault).
                if (c.rescued) {
                    if (eq_.now()
                        < c.rescueTick + wireRoundTripFloor(dst))
                        ++rescueSpurious_;
                    c.rescued = false;
                }
                if (!c.rexmitted) {
                    rtt_sent = c.firstSent;
                    have_rtt = true;
                }
            }
        }
        if (have_rtt)
            flow.rtt.sample(eq_.now() - rtt_sent);
    }

    if (ack.cum == flow.cumAcked) {
        if (!flow.unacked.empty())
            ++flow.dupAcks; // receiver alive but stuck on a hole
    } else {
        flow.dupAcks = 0;
        std::uint32_t acked_bytes = 0;
        std::uint64_t acked_chunks = 0;
        while (!flow.unacked.empty()
               && flow.unacked.front().seq < ack.cum) {
            TxChunk &c = flow.unacked.front();
            // Same spurious-rescue evidence as the SACK path: a
            // cumulative ack covering a rescued chunk inside the
            // rescue's own round trip was answering an earlier copy.
            if (c.rescued && !c.sacked
                && eq_.now() < c.rescueTick + wireRoundTripFloor(dst))
                ++rescueSpurious_;
            flow.credits += std::uint32_t(c.data.size());
            acked_bytes += std::uint32_t(c.data.size());
            ++acked_chunks;
            flow.unacked.pop_front();
        }
        flow.cumAcked = ack.cum;
        SHRIMP_ASSERT(flow.credits <= params_.niFifoBytes,
                      "credit window overflow toward node ", dst);
        flow.cwnd.onAck(acked_bytes);
        // Ack-clocked RTO repair: each cumulative advance pays for
        // resending (newly acked + 1) not-yet-resent holes below the
        // recovery point — the whole lost window heals in about one
        // RTT per cwnd instead of one chunk per RTO.
        if (flow.inRtoRecovery) {
            if (flow.cumAcked >= flow.recoveryPoint) {
                flow.inRtoRecovery = false;
            } else {
                std::uint64_t budget = acked_chunks + 1;
                for (TxChunk &c : flow.unacked) {
                    if (budget == 0 || c.seq >= flow.recoveryPoint)
                        break;
                    if (c.sacked || c.epochResent)
                        continue;
                    c.epochResent = true;
                    c.rexmitted = true;
                    c.resendSerial = flow.sackSerial;
                    c.lastResend = eq_.now();
                    transmit(dst, c, /*retransmit=*/true);
                    --budget;
                }
            }
        }
    }

    // Every ack is liveness evidence: the retry timer is an
    // ack-silence detector, so it restarts from the adaptive estimate
    // (srtt + 4 rttvar, clamped) on any ack, duplicate or not. While
    // evidence keeps flowing, the SACK scoreboard repairs holes; the
    // timer only has to catch the flow going silent.
    if (flow.retryEvent.valid()) {
        eq_.deschedule(flow.retryEvent);
        flow.retryEvent = sim::EventHandle();
    }
    flow.retryTimeout =
        flow.rtt.valid ? flow.rtt.rto(params_.niRtoMin(),
                                      params_.niRetryTimeoutMax())
                       : params_.niRetryTimeout();
    armRetry(dst, flow);

    // The scoreboard runs on every ack — dup acks carry fresh SACK
    // bits even without cumulative progress. A fired fast retransmit
    // repairs the hole but does not halve the window: the per-dest
    // credit window already bounds the flight at one receive FIFO, so
    // an isolated wire loss is line noise, not congestion — halving
    // on it caps goodput near 40% at the 7% combined loss rate this
    // transport is specified against. The two genuine congestion
    // signals both cut: an ECN-marked ack (receive FIFO overcommitted
    // by converging senders) here, and a retransmit timeout (the flow
    // went silent) in onRetryTimeout.
    fastRetransmitPass(dst, flow);
    if (ack.ecn)
        cutWindow(flow);

    // A chunk may be stalled on the credit/cwnd/seq window;
    // re-evaluate (idempotent, returns immediately when the pump is
    // mid-flight or idle).
    pump();
}

void
NetworkInterface::sendAck(NodeId src)
{
    RxFlow &flow = rxFlowFor(src);
    ++acksSent_;

    AckInfo ack;
    ack.cum = flow.drained;
    std::vector<std::uint64_t> held;
    held.reserve(flow.ooo.size());
    for (const auto &kv : flow.ooo)
        held.push_back(kv.first);
    ack.sack = sackEncode(flow.drained, flow.expected, held);
    // ECN-style congestion mark: several senders' credit windows have
    // converged on this node and overcommitted the incoming FIFO
    // beyond its nominal capacity. Purely local state, so the mark is
    // deterministic under sharding.
    ack.ecn = rxFifoBytes_ > params_.niFifoBytes;
    if (ack.ecn)
        ++ecnMarked_;

    launchAck(src, node_, ack);
}

void
NetworkInterface::forwardAck(NodeId dst, NodeId origin, AckInfo ack)
{
    launchAck(dst, origin, ack);
}

void
NetworkInterface::launchAck(NodeId dst, NodeId origin, AckInfo ack)
{
    // Acks ride the reverse route's control path: at every hop the
    // traversed link's fault stream may drop or delay them (a lost
    // ack is recovered by the sender's timer), but never corrupts or
    // duplicates control messages.
    const NodeId hop = net_.nextHop(node_, dst);
    FaultDecision fd =
        net_.faults().decide(node_, hop, eq_.now(), /*control=*/true);
    if (fd.action == FaultAction::Drop) {
        trace::log(eq_.now(), trace::Category::NetFault, "node ",
                   node_, " ack to node ", dst, " (cum ", ack.cum,
                   ") dropped");
        return;
    }
    // An ack is a real control packet — header plus the 8-byte SACK
    // word — so it serializes on this node's outgoing link
    // (contending with its own data traffic) before taking the hop.
    // Being strictly larger than a bare header, every hop still
    // respects the single-hop slice of Interconnect::
    // minDeliveryLatency — the floor the sharded engine's lookahead
    // matrix is derived from.
    Tick injected = net_.acquireLink(
        node_, hop, params_.niHeaderBytes + sizeof(ack.sack),
        eq_.now());
    Tick when = injected + net_.hopLatency() + fd.extraDelay;
    NetworkInterface *peer = net_.ni(hop);
    if (hop == dst) {
        postToNode(dst, when, "ni.ack",
                   [peer, origin, ack] { peer->rxAck(origin, ack); });
    } else {
        postToNode(hop, when, "ni.ack.fwd",
                   [peer, dst, origin, ack] {
                       peer->forwardAck(dst, origin, ack);
                   });
    }
}

void
NetworkInterface::rxDeliver(const ChunkHeader &h,
                            std::vector<std::uint8_t> data)
{
    std::uint64_t want =
        chunkChecksum(h.src, h.seq, h.dstAddr, h.msgStart, h.msgEnd,
                      data.data(), data.size());
    if (want != h.checksum) {
        ++rxCorruptDropped_;
        trace::log(eq_.now(), trace::Category::NetFault, "node ",
                   node_, " discarding corrupt chunk seq ", h.seq,
                   " from node ", h.src);
        return; // no ack: the sender's timer recovers it
    }
    RxFlow &flow = rxFlowFor(h.src);
    if (h.seq < flow.expected || flow.ooo.count(h.seq) != 0) {
        // Already held (duplicate or retransmission overlap). Re-ack
        // so a sender whose ack was lost makes progress — and hands
        // it the current SACK view while we are at it.
        ++rxDupDropped_;
        sendAck(h.src);
        return;
    }
    // The sender never launches past cumAcked + sackWindow and its
    // cumAcked never exceeds our drain watermark, so every arrival
    // fits the resequencing window by construction.
    SHRIMP_ASSERT(h.seq < flow.drained + sackWindow,
                  "chunk past the SACK window from node ", h.src);
    auto len = std::uint32_t(data.size());
    rxFifoBytes_ += len;
    if (h.seq > flow.expected) {
        // Past a gap (an earlier chunk is missing): park it in the
        // resequencing buffer and send an immediate duplicate ack so
        // the sender's scoreboard learns about the hole without
        // waiting for a timer.
        ++rxOooBuffered_;
        trace::log(eq_.now(), trace::Category::NetFault, "node ",
                   node_, " buffering out-of-order chunk seq ", h.seq,
                   " from node ", h.src, " (expected ", flow.expected,
                   ")");
        flow.ooo.emplace(h.seq,
                         RxChunk{h.src, h.seq, h.dstAddr,
                                 std::move(data), h.msgStart, h.msgEnd,
                                 h.senderStart});
        sendAck(h.src);
        return;
    }
    // In order: accept it, then release everything the buffer holds
    // contiguously behind it.
    flow.expected = h.seq + 1;
    rxChunks_.push_back(RxChunk{h.src, h.seq, h.dstAddr,
                                std::move(data), h.msgStart, h.msgEnd,
                                h.senderStart});
    auto it = flow.ooo.begin();
    while (it != flow.ooo.end() && it->first == flow.expected) {
        flow.expected = it->first + 1;
        rxChunks_.push_back(std::move(it->second));
        it = flow.ooo.erase(it);
    }
    // Ack the arrival itself (the SACK bits cover [drained, expected)
    // so the sender sees the chunk land now), not just the eventual
    // drain: loss evidence and the sender's silence clock must run at
    // wire speed, not at the incoming FIFO's EISA drain rate.
    sendAck(h.src);
    rxPump();
}

void
NetworkInterface::rxPump()
{
    if (rxDmaBusy_ || rxChunks_.empty())
        return;
    const RxChunk &c = rxChunks_.front();
    auto len = std::uint32_t(c.data.size());

    // Receive-side EISA DMA logic: start latency on each new packet,
    // then burst the chunk across the receiving node's I/O bus.
    Tick earliest = eq_.now() + (c.msgStart ? params_.rxDmaStart() : 0);
    Tick done = ioBus_.burstTransferAt(earliest, len);

    rxDmaBusy_ = true;
    eq_.schedule(
        done, "ni.rxdma",
        [this, len] {
            RxChunk chunk = std::move(rxChunks_.front());
            rxChunks_.pop_front();
            memory_.writeBytes(chunk.dstAddr, chunk.data.data(), len);
            rxBytes_ += double(len);
            RxFlow &flow = rxFlowFor(chunk.src);
            for (std::uint8_t b : chunk.data)
                fnvByte(flow.dataDigest, b);
            flow.touched = true;
            flow.drained = chunk.seq + 1;
            SHRIMP_ASSERT(rxFifoBytes_ >= len, "rx FIFO underflow");
            rxFifoBytes_ -= len;
            rxDmaBusy_ = false;
            // The cumulative ack doubles as the credit return: it
            // tells the sender this chunk left the incoming FIFO
            // (self-sends included, so the accounting is uniform).
            sendAck(chunk.src);
            if (chunk.msgEnd) {
                // The completion flag/word becomes visible a little
                // after the data (write buffers, ordering).
                Tick when = eq_.now() + params_.rxCompletion();
                Delivery d;
                d.srcNode = chunk.src;
                d.dstPhysAddr = chunk.dstAddr + len;
                d.bytes = 0; // filled by callback users if needed
                d.senderStartTick = chunk.senderStart;
                d.deliveredTick = when;
                eq_.schedule(
                    when, "ni.delivered",
                    [this, d] {
                        ++delivered_;
                        lastDelivery_ = eq_.now();
                        deliveryUs_.sample(
                            ticksToUs(eq_.now() - d.senderStartTick));
                        trace::log(eq_.now(), trace::Category::Ni,
                                   "node ", node_,
                                   " delivery complete from node ",
                                   d.srcNode);
                        if (onDelivery_)
                            onDelivery_(d);
                    },
                    sim::EventPriority::DeviceCompletion);
            }
            rxPump();
        },
        sim::EventPriority::DeviceCompletion);
}

std::uint64_t
NetworkInterface::rxDataDigest() const
{
    std::uint64_t h = fnvBasis;
    for (NodeId s = 0; s < rxFlows_.size(); ++s) {
        const RxFlow &f = rxFlows_[s];
        if (!f.touched)
            continue;
        fnvU64(h, s);
        fnvU64(h, f.drained);
        fnvU64(h, f.dataDigest);
    }
    return h;
}

std::vector<TxFlowDebug>
NetworkInterface::txFlowDebug() const
{
    std::vector<TxFlowDebug> out;
    for (NodeId d = 0; d < txFlows_.size(); ++d) {
        const TxFlow &f = txFlows_[d];
        if (!f.inited)
            continue;
        TxFlowDebug dbg;
        dbg.dst = d;
        dbg.nextSeq = f.nextSeq;
        dbg.cumAcked = f.cumAcked;
        dbg.unackedChunks = f.unacked.size();
        dbg.dupAcks = f.dupAcks;
        dbg.cwnd = f.cwnd.cwnd;
        dbg.ssthresh = f.cwnd.ssthresh;
        dbg.srttUs = f.rtt.valid ? ticksToUs(f.rtt.srtt) : 0;
        dbg.rtoUs = ticksToUs(f.retryTimeout);
        dbg.inRecovery = f.inRtoRecovery;
        for (const TxChunk &c : f.unacked) {
            dbg.unackedBytes += c.data.size();
            if (!c.sacked)
                continue;
            ++dbg.sackedChunks;
            if (!dbg.sackRanges.empty()
                && dbg.sackRanges.back().second + 1 == c.seq) {
                dbg.sackRanges.back().second = c.seq;
            } else {
                dbg.sackRanges.emplace_back(c.seq, c.seq);
            }
        }
        out.push_back(dbg);
    }
    return out;
}

} // namespace shrimp::net
