/**
 * @file
 * The Network Interface Page Table (paper Section 8).
 *
 * "All potential message destinations are stored in the Network
 * Interface Page Table (NIPT), each entry of which specifies a remote
 * node and a physical memory page on that node. ... Since the NIPT is
 * indexed with 15 bits, it can hold 32K different destination pages."
 *
 * A device proxy address on the SHRIMP NI is (proxy page number,
 * offset); the low 15 bits of the page number index this table.
 */

#ifndef SHRIMP_SHRIMP_NIPT_HH
#define SHRIMP_SHRIMP_NIPT_HH

#include <cstdint>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace shrimp::net
{

/** One NIPT entry: a remote destination page. */
struct NiptEntry
{
    bool valid = false;
    NodeId dstNode = 0;
    /** Physical page number on the destination node. */
    std::uint64_t dstPage = 0;
};

/** The 32K-entry table on the NI board. */
class Nipt
{
  public:
    static constexpr std::size_t indexBits = 15;
    static constexpr std::size_t numEntries = std::size_t(1) << indexBits;

    Nipt() : table_(numEntries) {}

    const NiptEntry &
    get(std::size_t idx) const
    {
        return table_.at(idx & (numEntries - 1));
    }

    /** Kernel control plane: program an entry. */
    void
    set(std::size_t idx, NodeId node, std::uint64_t dst_page)
    {
        auto &e = table_.at(idx);
        e.valid = true;
        e.dstNode = node;
        e.dstPage = dst_page;
    }

    /** Kernel control plane: revoke an entry. */
    void
    clear(std::size_t idx)
    {
        table_.at(idx) = NiptEntry();
    }

    /** Allocate the lowest free entry; returns numEntries if full. */
    std::size_t
    allocate()
    {
        for (std::size_t i = nextHint_; i < numEntries; ++i) {
            if (!table_[i].valid) {
                nextHint_ = i + 1;
                return i;
            }
        }
        for (std::size_t i = 0; i < nextHint_; ++i) {
            if (!table_[i].valid) {
                nextHint_ = i + 1;
                return i;
            }
        }
        return numEntries;
    }

    /**
     * Allocate @p n consecutive free entries (sender proxy pages for a
     * contiguous remote buffer must be contiguous in the window).
     * Returns the first index, or numEntries if no run exists.
     */
    std::size_t
    allocateRun(std::size_t n)
    {
        if (n == 0 || n > numEntries)
            return numEntries;
        std::size_t run = 0;
        for (std::size_t i = 0; i < numEntries; ++i) {
            run = table_[i].valid ? 0 : run + 1;
            if (run == n)
                return i + 1 - n;
        }
        return numEntries;
    }

    std::size_t
    validEntries() const
    {
        std::size_t n = 0;
        for (const auto &e : table_)
            n += e.valid ? 1 : 0;
        return n;
    }

  private:
    std::vector<NiptEntry> table_;
    std::size_t nextHint_ = 0;
};

} // namespace shrimp::net

#endif // SHRIMP_SHRIMP_NIPT_HH
