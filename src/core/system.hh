/**
 * @file
 * The public entry point: build a SHRIMP multicomputer.
 *
 * A System owns the event queue, the backplane interconnect, and N
 * identical nodes. Each node is a Pentium-Xpress-class PC: physical
 * memory, MMU, I/O (EISA) bus, a kernel, and a configurable set of
 * devices, each fronted either by a UDMA controller (the paper's
 * mechanism) or by the traditional kernel-initiated DMA driver (the
 * baseline), or — for the FIFO-NIC baseline — by a plain memory-mapped
 * interface.
 *
 * Typical use:
 *
 *   core::SystemConfig cfg;
 *   cfg.nodes = 2;
 *   cfg.node.devices.push_back({core::DeviceKind::ShrimpNi});
 *   core::System sys(cfg);
 *   sys.node(0).kernel().spawn("sender", ...);
 *   sys.runUntilAllDone();
 */

#ifndef SHRIMP_CORE_SYSTEM_HH
#define SHRIMP_CORE_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "baseline/fifo_nic.hh"
#include "baseline/traditional_dma.hh"
#include "bus/io_bus.hh"
#include "dev/disk.hh"
#include "dev/frame_buffer.hh"
#include "dev/stream_sink.hh"
#include "dma/udma_controller.hh"
#include "mem/physical_memory.hh"
#include "os/kernel.hh"
#include "shrimp/interconnect.hh"
#include "shrimp/network_interface.hh"
#include "sim/event_queue.hh"
#include "sim/params.hh"
#include "sim/sharded.hh"
#include "vm/layout.hh"
#include "vm/mmu.hh"

namespace shrimp::audit
{
class Monitor;
} // namespace shrimp::audit

namespace shrimp::core
{

/** The kinds of devices a node can carry. */
enum class DeviceKind
{
    ShrimpNi,    ///< the SHRIMP network interface (Section 8)
    FrameBuffer, ///< graphics frame buffer
    Disk,        ///< block storage
    StreamSink,  ///< HIPPI-class channel endpoint (benchmarks)
    FifoNic,     ///< memory-mapped FIFO NIC baseline (Section 9)
};

/** How a DMA-capable device is driven. */
enum class DriverKind
{
    Udma,        ///< UDMA controller (the paper's mechanism)
    Traditional, ///< kernel-initiated DMA baseline
};

/** One device slot. */
struct DeviceConfig
{
    DeviceKind kind = DeviceKind::ShrimpNi;
    DriverKind driver = DriverKind::Udma;
    /** Section 7 hardware queue depth (0 = basic UDMA). */
    std::uint32_t queueDepth = 0;
    // Device-specific knobs.
    std::uint32_t fbWidth = 640;
    std::uint32_t fbHeight = 480;
    std::uint64_t diskBytes = std::uint64_t(16) << 20;
    std::uint64_t sinkBytes = std::uint64_t(1) << 30;
};

/** Per-node configuration (all nodes identical). */
struct NodeConfig
{
    std::uint64_t memBytes = std::uint64_t(16) << 20;
    std::vector<DeviceConfig> devices;
};

/** Whole-machine configuration. */
struct SystemConfig
{
    unsigned nodes = 1;
    /**
     * Simulation shards (worker threads). 0 = the legacy single
     * shared event queue. N > 0 builds one EventQueue per node and
     * runs them on min(N, nodes) workers in conservative time windows
     * (sim/sharded.hh); `--shards=1` and `--shards=N` produce
     * bit-identical simulated time and counters.
     */
    unsigned shards = 0;
    sim::MachineParams params;
    /**
     * Backplane wiring (sim::TopologyConfig): crossbar by default, 2D
     * mesh/torus via `--topo=mesh:4x4` or SHRIMP_TOPO. Mirrors the
     * faults precedence: when topology.specified is false the System
     * falls back to the SHRIMP_TOPO environment variable or a
     * `--topo=` spec seen by parseRunOptions; a deliberately filled
     * config wins over both. A non-flat grid must match `nodes`
     * exactly (fatal otherwise).
     */
    sim::TopologyConfig topology;
    NodeConfig node;
    /**
     * Backplane fault injection (shrimp/fault.hh). When
     * faults.specified is false the System falls back to the
     * SHRIMP_FAULTS environment variable or a `--faults=` spec seen
     * by parseRunOptions; a deliberately filled config (specified ==
     * true, even "off") wins over both.
     */
    net::FaultConfig faults;
};

class System;

/** One node of the multicomputer. */
class Node
{
  public:
    /** @param eq The node's event queue: the System's shared queue in
     *  legacy mode, this node's own queue under the sharded engine. */
    Node(System &sys, NodeId id, const SystemConfig &cfg,
         sim::EventQueue &eq);
    ~Node();

    Node(const Node &) = delete;
    Node &operator=(const Node &) = delete;

    NodeId id() const { return id_; }
    mem::PhysicalMemory &memory() { return *memory_; }
    bus::IoBus &ioBus() { return *ioBus_; }
    vm::Mmu &mmu() { return *mmu_; }
    os::Kernel &kernel() { return *kernel_; }

    /** The first SHRIMP NI on the node (nullptr if none). */
    net::NetworkInterface *ni() { return ni_; }
    dev::FrameBuffer *frameBuffer() { return fb_; }
    dev::Disk *disk() { return disk_; }
    dev::StreamSink *streamSink() { return sink_; }
    baseline::FifoNic *fifoNic() { return fifoNic_.get(); }

    /** UDMA controller for device slot @p device (nullptr if that
     *  slot uses another driver). */
    dma::UdmaController *controller(unsigned device);

    /** Traditional driver for slot @p device (nullptr otherwise). */
    baseline::TraditionalDmaDriver *tradDriver(unsigned device);

    /** Device slot index of the first device of @p kind (or -1). */
    int deviceIndexOf(DeviceKind kind) const;

  private:
    NodeId id_;
    std::unique_ptr<mem::PhysicalMemory> memory_;
    std::unique_ptr<bus::IoBus> ioBus_;
    std::unique_ptr<vm::Mmu> mmu_;
    std::unique_ptr<os::Kernel> kernel_;

    std::vector<std::unique_ptr<dma::UdmaDevice>> devices_;
    std::vector<std::unique_ptr<dma::UdmaController>> controllers_;
    std::vector<std::unique_ptr<baseline::TraditionalDmaDriver>>
        drivers_;
    std::vector<DeviceKind> slotKinds_;
    std::unique_ptr<baseline::FifoNic> fifoNic_;

    net::NetworkInterface *ni_ = nullptr;
    dev::FrameBuffer *fb_ = nullptr;
    dev::Disk *disk_ = nullptr;
    dev::StreamSink *sink_ = nullptr;
};

/** The whole multicomputer. */
class System
{
  public:
    explicit System(const SystemConfig &cfg);
    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /** The legacy shared queue (also the setup/host clock). Sharded
     *  components must use nodeEq() instead. */
    sim::EventQueue &eq() { return eq_; }

    /** The queue node @p i's components schedule on: its own queue
     *  under the sharded engine, the shared queue otherwise. */
    sim::EventQueue &
    nodeEq(NodeId i)
    {
        return engine_ ? engine_->queue(i) : eq_;
    }

    /** The sharded engine (nullptr in legacy single-queue mode). */
    sim::ShardedEngine *engine() { return engine_.get(); }

    const sim::MachineParams &params() const { return cfg_.params; }
    const vm::AddressLayout &layout() const { return layout_; }
    net::Interconnect &net() { return net_; }
    baseline::FifoFabric &fifoFabric() { return fifoFabric_; }

    unsigned nodeCount() const { return unsigned(nodes_.size()); }
    Node &node(unsigned i) { return *nodes_.at(i); }

    /** Global simulated time: max of the per-node clocks when
     *  sharded, the shared queue's clock otherwise. */
    Tick simNow() const { return engine_ ? engine_->now() : eq_.now(); }

    /** Total events executed across all queues. */
    std::uint64_t
    simEvents() const
    {
        return engine_ ? engine_->eventsExecuted()
                       : eq_.eventsExecuted();
    }

    /** Run the event loop up to @p limit. */
    Tick
    run(Tick limit = maxTick)
    {
        return engine_ ? engine_->run(limit) : eq_.run(limit);
    }

    /**
     * Run until @p pred returns true, or all queues drain, or
     * @p limit. Sharded: the predicate is evaluated at window
     * barriers with every worker parked, so it may read any state.
     */
    Tick
    runUntil(const std::function<bool()> &pred, Tick limit = maxTick)
    {
        return engine_ ? engine_->runUntil(pred, limit)
                       : eq_.runUntil(pred, limit);
    }

    /**
     * Sequential phase for workload setup that rendezvouses through
     * host-shared state (e.g. msg::Channel export/import): events of
     * all nodes are interleaved in one canonical global order on the
     * calling thread and @p pred is checked after every event.
     * Identical to runUntil in legacy mode.
     */
    Tick
    runSetup(const std::function<bool()> &pred, Tick limit = maxTick)
    {
        return engine_ ? engine_->runSetup(pred, limit)
                       : eq_.runUntil(pred, limit);
    }

    /**
     * Run until every process on every node is done (or @p limit).
     * Rethrows any exception a process body terminated with.
     */
    Tick runUntilAllDone(Tick limit = maxTick);

    /**
     * Dump every component's statistics, gem5-style (one
     * `nodeN.component.stat value` line each), to @p os.
     */
    void dumpStats(std::ostream &os);

    /**
     * Dump the same statistics as one JSON document:
     * `{ "sim": {...}, "net": {...}, "nodes": [ {...}, ... ],
     *    "spans": {...} }`, each node carrying its component groups
     * ("kernel", "bus", "udmaN", "udmaN.engine", "ni", ...).
     */
    void dumpStatsJson(std::ostream &os);

    /**
     * Turn on continuous invariant auditing (check/monitor.hh):
     * "on-switch" audits at context switches, "every-event" at every
     * kernel event and DMA completion, "at-barrier" at sharded window
     * barriers, "off" detaches. Under the sharded engine every
     * non-off mode is coerced to at-barrier — the only point where
     * all shards are quiescent. Returns false on an unknown spec.
     * With @p fail_fast the monitor throws audit::ViolationError at
     * the first violation.
     */
    bool enableAudit(const std::string &spec, bool fail_fast = false);

    /** The active monitor (nullptr when auditing is off). */
    audit::Monitor *auditMonitor() { return auditor_.get(); }

  private:
    SystemConfig cfg_;
    sim::EventQueue eq_;
    /** Declared before nodes_: node components hold references into
     *  its per-node queues. */
    std::unique_ptr<sim::ShardedEngine> engine_;
    vm::AddressLayout layout_;
    /** Resolved wiring (cfg / SHRIMP_TOPO / --topo): declared before
     *  the fabrics, which capture it by value at construction. */
    sim::TopologyConfig topo_;
    net::Interconnect net_;
    baseline::FifoFabric fifoFabric_;
    std::vector<std::unique_ptr<Node>> nodes_;
    /** Declared after nodes_: must detach from live kernels first. */
    std::unique_ptr<audit::Monitor> auditor_;
};

/**
 * Options shared by every example and bench main: `--stats-json=<path>`
 * selects a machine-readable result file and `--trace=<cats>` enables
 * trace categories ("dma,vm,os,ni,bus,xfer,net.fault" or "all") on
 * stderr.
 */
struct RunOptions
{
    std::string statsJsonPath; ///< empty: no JSON dump requested
    std::string traceSpec;     ///< empty: tracing unchanged
    std::string auditSpec;     ///< empty: invariant auditing off
    std::string profilePath;   ///< `--profile=<file>`: Perfetto trace
    unsigned shards = 0;       ///< `--shards=N` (0: legacy queue)
    bool shardsAuto = false;   ///< `--shards=auto` was given
    net::FaultConfig faults;   ///< `--faults=<spec>` (shrimp/fault.hh)
    sim::TopologyConfig topology; ///< `--topo=<spec>` (sim/params.hh)
    bool ok = true;            ///< false: a malformed option was seen
};

/**
 * Parse and strip `--stats-json=` / `--trace=` / `--audit=` /
 * `--shards=` / `--faults=` / `--topo=` / `--profile=` from argv
 * (compacting argc/argv in place
 * so argument-consuming frameworks never see them); a `--trace=` spec
 * is applied immediately, and an `--audit=` spec (`every-event`,
 * `on-switch` or `at-barrier`), a `--faults=` spec
 * (`drop=0.05,corrupt=0.02,...`, see parseFaultSpec), or a `--topo=`
 * spec (`crossbar`, `mesh:WxH`, `torus:WxH`, see parseTopologySpec)
 * is applied to
 * the next System constructed in this process. `--shards=N|auto` is
 * reported in RunOptions for the caller to place into
 * SystemConfig::shards (resolveShards maps `auto` to the host's core
 * count). Other arguments are left untouched.
 */
RunOptions parseRunOptions(int &argc, char **argv);

/**
 * The shard count a run should use: `auto` resolves to
 * min(nodes, hardware threads), an explicit N is clamped to the node
 * count, 0 stays 0 (legacy single queue).
 */
unsigned resolveShards(const RunOptions &opts, unsigned nodes);

/**
 * The number of CPU cores actually available to this process: the
 * affinity-mask population on Linux (honest under taskset/cgroup
 * pinning), std::thread::hardware_concurrency elsewhere; at least 1.
 */
unsigned hostCoreCount();

/** Write sys.dumpStatsJson to opts.statsJsonPath if one was given. */
void writeStatsJson(System &sys, const RunOptions &opts);

} // namespace shrimp::core

#endif // SHRIMP_CORE_SYSTEM_HH
