/**
 * @file
 * The user-level UDMA library: the exact software recipes Section 5
 * of the paper prescribes, written as awaitable helper routines for
 * simulated user programs.
 *
 *  - udmaInitiate: alignment-check code + the STORE/LOAD pair;
 *  - udmaStart:    initiate with retry on TRANSFERRING/INVALID (the
 *                  paper: "the user process may want to re-try its
 *                  two-instruction transfer initiation sequence");
 *  - udmaWait:     repeat the initiating LOAD until MATCH clears;
 *  - udmaTransfer: arbitrary-size transfers split at page boundaries
 *                  ("An additional transfer may be required if a page
 *                  boundary is crossed", Section 8);
 *
 * plus the SHRIMP mapping control plane (receiver-side page export,
 * sender-side NIPT programming) and small polling utilities.
 */

#ifndef SHRIMP_CORE_UDMA_LIB_HH
#define SHRIMP_CORE_UDMA_LIB_HH

#include <cstdint>
#include <vector>

#include "dma/status.hh"
#include "os/user_context.hh"
#include "shrimp/network_interface.hh"
#include "sim/coro.hh"

namespace shrimp::core
{

/**
 * One transfer-initiation attempt: the page/alignment check software,
 * then STORE nbytes TO destAddr; LOAD status FROM srcAddr.
 * @return the decoded status word of the LOAD.
 */
sim::Task<dma::Status> udmaInitiate(os::UserContext &ctx,
                                    Addr dest_proxy_va,
                                    Addr src_proxy_va,
                                    std::uint32_t nbytes);

/**
 * Initiate with retry. Retries while the hardware reports
 * TRANSFERRING or INVALID (e.g. a context-switch Inval landed between
 * our STORE and LOAD) or a full Section 7 queue; gives up and returns
 * the status on any other device error.
 *
 * On success, status.remainingBytes is the page-clamped byte count the
 * hardware actually accepted.
 */
sim::Task<dma::Status> udmaStart(os::UserContext &ctx,
                                 Addr dest_proxy_va, Addr src_proxy_va,
                                 std::uint32_t nbytes);

/**
 * Wait for completion by repeating the initiating LOAD until the MATCH
 * flag clears (Section 5's completion-check recipe).
 */
sim::Task<std::uint64_t> udmaWait(os::UserContext &ctx,
                                  Addr src_proxy_va);

/**
 * Move @p nbytes from user memory at @p src_va to the device window
 * position @p dest_proxy_va of device @p device, splitting at page
 * boundaries on both sides and optionally waiting for the last piece.
 * @return the number of hardware transfers used.
 * @throws FatalError on an unrecoverable device error.
 */
sim::Task<std::uint64_t> udmaTransfer(os::UserContext &ctx,
                                      unsigned device,
                                      Addr dest_proxy_va, Addr src_va,
                                      std::uint64_t nbytes,
                                      bool wait_completion = true,
                                      Addr *last_src_proxy_out =
                                          nullptr);

/**
 * Device-to-memory counterpart (e.g. a disk read): STOREs name the
 * memory destination via PROXY(dst_va), LOADs name the device source.
 */
sim::Task<std::uint64_t> udmaTransferFromDevice(
    os::UserContext &ctx, unsigned device, Addr dst_va,
    Addr src_dev_proxy_va, std::uint64_t nbytes,
    bool wait_completion = true);

/** One piece of a gather send. */
struct GatherPiece
{
    Addr va = 0;
    std::uint32_t len = 0;
};

/**
 * Gather-scatter (Section 7): send several separate user-memory
 * pieces back-to-back into a contiguous device-window span, waiting
 * only for the last transfer. With a queued controller each piece
 * costs the paper's "two instructions per page in the best case";
 * with the basic controller the retry loop serializes them.
 * @return total hardware transfers used.
 */
sim::Task<std::uint64_t> udmaGather(os::UserContext &ctx,
                                    unsigned device,
                                    Addr dest_proxy_va,
                                    std::vector<GatherPiece> pieces,
                                    bool wait_completion = true);

/** Spin on a memory word until it holds @p expected. */
sim::Task<std::uint64_t> pollWord(os::UserContext &ctx, Addr va,
                                  std::uint64_t expected);

// --------------------------------------------------------------------
// SHRIMP mapping control plane (out-of-band setup, not the data path)
// --------------------------------------------------------------------

/**
 * Receiver side: export every page of [va, va+bytes) for incoming
 * network DMA (fault in, pin, mark dirty). Returns the physical
 * address of each page in order.
 */
sim::Task<std::vector<Addr>> sysExportRange(os::UserContext &ctx,
                                            Addr va,
                                            std::uint64_t bytes);

/**
 * Sender side: allocate a run of NIPT entries naming the given remote
 * physical pages on @p dst_node, and map the corresponding device
 * proxy pages into the caller.
 * @return the virtual address of the first mapped proxy page, 0 on
 *         failure.
 */
sim::Task<Addr> sysMapRemoteRange(os::UserContext &ctx, unsigned device,
                                  net::NetworkInterface &ni,
                                  NodeId dst_node,
                                  std::vector<Addr> dst_phys_pages);

/**
 * Bind one local page for automatic update (Section 9's other SHRIMP
 * strategy): ordinary stores to [local_va's page] are snooped by the
 * NI board and propagated to the remote physical page. The binding is
 * fixed (the kernel pins the local page), exactly the restriction the
 * paper notes for automatic update.
 * @return true on success.
 */
sim::Task<bool> sysMapAutoUpdate(os::UserContext &ctx,
                                 net::NetworkInterface &ni,
                                 Addr local_va, NodeId dst_node,
                                 Addr dst_phys_page);

} // namespace shrimp::core

#endif // SHRIMP_CORE_UDMA_LIB_HH
