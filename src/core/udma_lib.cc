#include "core/udma_lib.hh"

#include <algorithm>

#include "os/kernel.hh"

namespace shrimp::core
{

sim::Task<dma::Status>
udmaInitiate(os::UserContext &ctx, Addr dest_proxy_va, Addr src_proxy_va,
             std::uint32_t nbytes)
{
    // The SHRIMP library's alignment / page-boundary check around the
    // two-reference sequence (Section 8: initiation "includes the time
    // to perform the two-instruction initiation sequence and check
    // data alignment with regard to page boundaries").
    co_await ctx.compute(ctx.kernel().params().udmaInitiateSoftwareInstr);
    co_await ctx.store(dest_proxy_va, nbytes);
    std::uint64_t w = co_await ctx.load(src_proxy_va);
    co_return dma::Status::unpack(w);
}

sim::Task<dma::Status>
udmaStart(os::UserContext &ctx, Addr dest_proxy_va, Addr src_proxy_va,
          std::uint32_t nbytes)
{
    for (;;) {
        dma::Status st = co_await udmaInitiate(ctx, dest_proxy_va,
                                               src_proxy_va, nbytes);
        if (!st.initiationFailed)
            co_return st;
        // Real errors are returned to the caller: a BadLoad
        // (WRONG-SPACE) or any device error other than a momentarily
        // full Section 7 queue.
        bool real_error =
            st.wrongSpace
            || (st.deviceError != 0
                && st.deviceError != dma::device_error::queueFull);
        if (real_error)
            co_return st;
        // Otherwise the engine was busy, a context-switch Inval wiped
        // our STORE, or the queue was full — "the user process may
        // want to re-try its two-instruction transfer initiation
        // sequence" (Section 5).
    }
}

sim::Task<std::uint64_t>
udmaWait(os::UserContext &ctx, Addr src_proxy_va)
{
    std::uint64_t polls = 0;
    for (;;) {
        std::uint64_t w = co_await ctx.load(src_proxy_va);
        ++polls;
        if (!dma::loadSaysInFlight(w))
            co_return polls;
    }
}

namespace
{

/** Shared splitter for both directions. */
sim::Task<std::uint64_t>
transferLoop(os::UserContext &ctx, unsigned device, Addr mem_va,
             Addr other_proxy_va, std::uint64_t nbytes, bool to_device,
             bool wait_completion, Addr *last_src_proxy_out = nullptr)
{
    std::uint64_t transfers = 0;
    const std::uint32_t pb = ctx.pageBytes();
    Addr last_src_proxy = 0;
    while (nbytes > 0) {
        std::uint64_t chunk =
            std::min({nbytes, std::uint64_t(pb - mem_va % pb),
                      std::uint64_t(pb - other_proxy_va % pb)});
        Addr mem_proxy = ctx.proxyAddr(mem_va, device);
        Addr dest = to_device ? other_proxy_va : mem_proxy;
        Addr src = to_device ? mem_proxy : other_proxy_va;
        dma::Status st =
            co_await udmaStart(ctx, dest, src, std::uint32_t(chunk));
        if (st.initiationFailed || st.remainingBytes == 0) {
            fatal("udmaTransfer: device refused the transfer "
                  "(device error byte ",
                  unsigned(st.deviceError), ")");
        }
        std::uint32_t started = st.remainingBytes;
        mem_va += started;
        other_proxy_va += started;
        nbytes -= started;
        last_src_proxy = src;
        ++transfers;
    }
    if (last_src_proxy_out)
        *last_src_proxy_out = last_src_proxy;
    if (wait_completion && transfers > 0)
        co_await udmaWait(ctx, last_src_proxy);
    co_return transfers;
}

} // namespace

sim::Task<std::uint64_t>
udmaTransfer(os::UserContext &ctx, unsigned device, Addr dest_proxy_va,
             Addr src_va, std::uint64_t nbytes, bool wait_completion,
             Addr *last_src_proxy_out)
{
    return transferLoop(ctx, device, src_va, dest_proxy_va, nbytes,
                        true, wait_completion, last_src_proxy_out);
}

sim::Task<std::uint64_t>
udmaTransferFromDevice(os::UserContext &ctx, unsigned device,
                       Addr dst_va, Addr src_dev_proxy_va,
                       std::uint64_t nbytes, bool wait_completion)
{
    return transferLoop(ctx, device, dst_va, src_dev_proxy_va, nbytes,
                        false, wait_completion);
}

sim::Task<std::uint64_t>
udmaGather(os::UserContext &ctx, unsigned device, Addr dest_proxy_va,
           std::vector<GatherPiece> pieces, bool wait_completion)
{
    std::uint64_t transfers = 0;
    Addr last_src_proxy = 0;
    for (const auto &piece : pieces) {
        if (piece.len == 0)
            continue;
        // Each piece is itself page-split; no waiting between pieces
        // (the hardware queue absorbs them when present).
        transfers += co_await udmaTransfer(
            ctx, device, dest_proxy_va, piece.va, piece.len,
            /*wait_completion=*/false, &last_src_proxy);
        dest_proxy_va += piece.len;
    }
    if (wait_completion && transfers > 0)
        co_await udmaWait(ctx, last_src_proxy);
    co_return transfers;
}

sim::Task<std::uint64_t>
pollWord(os::UserContext &ctx, Addr va, std::uint64_t expected)
{
    std::uint64_t polls = 0;
    for (;;) {
        std::uint64_t w = co_await ctx.load(va);
        ++polls;
        if (w == expected)
            co_return polls;
    }
}

sim::Task<std::vector<Addr>>
sysExportRange(os::UserContext &ctx, Addr va, std::uint64_t bytes)
{
    SHRIMP_ASSERT(bytes > 0, "empty export");
    std::vector<Addr> pages;
    const std::uint32_t pb = ctx.pageBytes();
    Addr first = va - va % pb;
    Addr last = (va + bytes - 1) / pb * pb;
    for (Addr p = first; p <= last; p += pb) {
        std::uint64_t paddr = co_await ctx.syscall(
            [p](os::Kernel &k, os::Process &proc,
                os::SyscallControl &sc) {
                Tick lat = k.params().instrTicks(150);
                Addr pa = 0;
                sc.result = k.exportPage(proc, p, pa, lat)
                                ? pa
                                : ~std::uint64_t(0);
                sc.extraLatency = lat;
            });
        if (paddr == ~std::uint64_t(0))
            fatal("sysExportRange: export refused at va=", p);
        pages.push_back(paddr);
    }
    co_return pages;
}

sim::Task<Addr>
sysMapRemoteRange(os::UserContext &ctx, unsigned device,
                  net::NetworkInterface &ni, NodeId dst_node,
                  std::vector<Addr> dst_phys_pages)
{
    // The syscall body runs synchronously at issue time, so capturing
    // the parameter by reference is safe (and sidesteps a GCC 12
    // miscompile of move-captures inside co_await full-expressions).
    const std::vector<Addr> &pages = dst_phys_pages;
    std::function<void(os::Kernel &, os::Process &, os::SyscallControl &)>
        body = [&ni, device, dst_node, &pages](os::Kernel &k,
                                               os::Process &p,
                                               os::SyscallControl &sc) {
            sc.result = 0;
            if (pages.empty())
                return;
            std::size_t first = ni.nipt().allocateRun(pages.size());
            if (first == net::Nipt::numEntries)
                return;
            std::uint32_t pb = k.layout().pageBytes();
            for (std::size_t i = 0; i < pages.size(); ++i)
                ni.nipt().set(first + i, dst_node, pages[i] / pb);
            Tick lat =
                k.params().instrTicks(100.0 * double(pages.size()));
            sc.result = k.mapDeviceProxy(p, device, first,
                                         pages.size(), true, lat);
            sc.extraLatency = lat;
        };
    std::uint64_t base = co_await ctx.syscall(std::move(body));
    co_return Addr(base);
}

sim::Task<bool>
sysMapAutoUpdate(os::UserContext &ctx, net::NetworkInterface &ni,
                 Addr local_va, NodeId dst_node, Addr dst_phys_page)
{
    std::function<void(os::Kernel &, os::Process &, os::SyscallControl &)>
        body = [&ni, local_va, dst_node, dst_phys_page](
                   os::Kernel &k, os::Process &p,
                   os::SyscallControl &sc) {
            // Automatic update relies on a fixed source-destination
            // binding: pin the local page so its frame cannot move.
            Tick lat = k.params().instrTicks(200);
            Addr paddr = 0;
            if (!k.exportPage(p, local_va, paddr, lat)) {
                sc.result = 0;
                sc.extraLatency = lat;
                return;
            }
            Addr page_base = paddr - paddr % k.layout().pageBytes();
            ni.mapAutoUpdate(page_base, dst_node,
                             dst_phys_page / k.layout().pageBytes());
            sc.result = 1;
            sc.extraLatency = lat;
        };
    std::uint64_t ok = co_await ctx.syscall(std::move(body));
    co_return ok != 0;
}

} // namespace shrimp::core
