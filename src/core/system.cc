#include "core/system.hh"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <ostream>
#include <thread>

#ifdef __linux__
#include <sched.h>
#endif

#include "check/monitor.hh"
#include "sim/flight_recorder.hh"
#include "sim/json.hh"
#include "sim/span.hh"
#include "sim/trace.hh"

namespace shrimp::core
{

namespace
{

/**
 * Audit spec from `--audit=` awaiting the next System construction
 * (parseRunOptions runs before the System exists in every main).
 */
std::string g_pendingAuditSpec;

/**
 * Fault spec from `--faults=` awaiting the next System construction
 * (same pattern as the audit spec above).
 */
std::string g_pendingFaultSpec;

/**
 * Topology spec from `--topo=` awaiting the next System construction
 * in this process (same lifecycle as the audit/fault specs above).
 */
std::string g_pendingTopoSpec;

/**
 * Honour SHRIMP_TRACE=dma,vm,os,ni,bus,xfer (or "all"): enable those
 * trace categories on stderr. Lets every example and bench be traced
 * without recompilation.
 */
void
applyTraceEnv()
{
    const char *env = std::getenv("SHRIMP_TRACE");
    if (!env || !*env)
        return;
    if (!trace::applySpec(env, &std::cerr))
        std::cerr << "SHRIMP_TRACE: unknown category in '" << env
                  << "' (want dma,vm,os,ni,bus,xfer,net.fault or "
                     "all)\n";
}

} // namespace

Node::Node(System &sys, NodeId id, const SystemConfig &cfg,
           sim::EventQueue &eq)
    : id_(id)
{
    const auto &params = sys.params();
    const auto &layout = sys.layout();

    memory_ = std::make_unique<mem::PhysicalMemory>(
        cfg.node.memBytes, params.pageBytes);
    ioBus_ = std::make_unique<bus::IoBus>(eq, params);
    mmu_ = std::make_unique<vm::Mmu>(layout);
    kernel_ = std::make_unique<os::Kernel>(eq, params, layout,
                                           *memory_, *ioBus_, *mmu_);

    for (unsigned slot = 0; slot < cfg.node.devices.size(); ++slot) {
        const DeviceConfig &dc = cfg.node.devices[slot];
        slotKinds_.push_back(dc.kind);
        controllers_.emplace_back(nullptr);
        drivers_.emplace_back(nullptr);

        if (dc.kind == DeviceKind::FifoNic) {
            devices_.emplace_back(nullptr);
            fifoNic_ = std::make_unique<baseline::FifoNic>(
                eq, params, id, *ioBus_, sys.fifoFabric(), slot,
                params.pageBytes);
            kernel_->registerDeviceWindow(
                slot, fifoNic_->proxyExtentBytes());
            continue;
        }

        std::unique_ptr<dma::UdmaDevice> udev;
        switch (dc.kind) {
          case DeviceKind::ShrimpNi: {
            auto ni = std::make_unique<net::NetworkInterface>(
                eq, params, id, *memory_, *ioBus_, sys.net(),
                params.pageBytes);
            ni->setRouter(sys.engine());
            ni_ = ni.get();
            udev = std::move(ni);
            break;
          }
          case DeviceKind::FrameBuffer: {
            auto fb = std::make_unique<dev::FrameBuffer>(dc.fbWidth,
                                                         dc.fbHeight);
            fb_ = fb.get();
            udev = std::move(fb);
            break;
          }
          case DeviceKind::Disk: {
            auto disk =
                std::make_unique<dev::Disk>(params, dc.diskBytes);
            disk_ = disk.get();
            udev = std::move(disk);
            break;
          }
          case DeviceKind::StreamSink: {
            auto sink = std::make_unique<dev::StreamSink>(dc.sinkBytes);
            sink_ = sink.get();
            udev = std::move(sink);
            break;
          }
          case DeviceKind::FifoNic:
            break; // handled above
        }

        if (dc.driver == DriverKind::Udma) {
            controllers_[slot] = std::make_unique<dma::UdmaController>(
                eq, params, layout, *memory_, *ioBus_, *udev, slot,
                dc.queueDepth);
            kernel_->attachController(controllers_[slot].get());
            if (cfg.nodes > 1) {
                // Per-node span timelines (and Perfetto tracks).
                controllers_[slot]->setSpanOwner(
                    "node" + std::to_string(id) + ".udma"
                    + std::to_string(slot));
            }
        } else {
            drivers_[slot] =
                std::make_unique<baseline::TraditionalDmaDriver>(
                    eq, params, *memory_, *ioBus_, *udev);
        }
        devices_.push_back(std::move(udev));
    }

    // The SHRIMP board snoops the memory bus for automatic update.
    if (ni_) {
        auto *ni = ni_;
        kernel_->addStoreSnooper([ni](Addr paddr, std::uint64_t value) {
            return ni->snoopStore(paddr, value);
        });
    }
}

Node::~Node() = default;

dma::UdmaController *
Node::controller(unsigned device)
{
    return device < controllers_.size() ? controllers_[device].get()
                                        : nullptr;
}

baseline::TraditionalDmaDriver *
Node::tradDriver(unsigned device)
{
    return device < drivers_.size() ? drivers_[device].get() : nullptr;
}

int
Node::deviceIndexOf(DeviceKind kind) const
{
    for (unsigned i = 0; i < slotKinds_.size(); ++i) {
        if (slotKinds_[i] == kind)
            return int(i);
    }
    return -1;
}

/**
 * The wiring this System runs with. Mirrors the fault precedence: a
 * deliberately filled SystemConfig::topology wins; otherwise
 * SHRIMP_TOPO wins over a --topo= seen by parseRunOptions. A non-flat
 * grid that does not match the node count is a configuration error,
 * not something to silently pad: routing math indexes the grid.
 */
static sim::TopologyConfig
resolvedTopology(const SystemConfig &cfg)
{
    sim::TopologyConfig topo = cfg.topology;
    if (!topo.specified) {
        const char *tenv = std::getenv("SHRIMP_TOPO");
        std::string tspec = tenv && *tenv ? tenv : g_pendingTopoSpec;
        if (!tspec.empty())
            sim::parseTopologySpec(tspec, topo, &std::cerr);
    }
    if (!topo.flat() && topo.gridNodes() != cfg.nodes) {
        fatal("topology ", topo.describe(), " wires ",
              topo.gridNodes(), " nodes but the system has ",
              cfg.nodes);
    }
    return topo;
}

System::System(const SystemConfig &cfg)
    : cfg_(cfg),
      layout_(cfg.node.memBytes, cfg.params.pageBytes,
              std::max<unsigned>(1, unsigned(cfg.node.devices.size()))),
      topo_(resolvedTopology(cfg_)), net_(eq_, cfg_.params, topo_),
      fifoFabric_(eq_, cfg_.params, topo_)
{
    if (cfg.nodes == 0)
        fatal("a system needs at least one node");
    applyTraceEnv();
    eq_.setFlightLabel("shared");

    if (cfg_.shards > 0) {
        for (const DeviceConfig &dc : cfg_.node.devices) {
            if (dc.kind == DeviceKind::FifoNic) {
                fatal("the FIFO-NIC baseline reads peer state "
                      "synchronously and cannot run sharded; drop "
                      "--shards or the FifoNic device");
            }
        }
        // The synchronization horizon comes from the interconnect:
        // nothing crosses nodes faster than the smallest packet's
        // injection serialization plus the backplane hop — per hop of
        // the dimension-order route, so on a mesh/torus the per-pair
        // floor scales with distance (DESIGN.md §10, §14). The engine
        // folds the per-pair floors into its shard-pair lookahead
        // matrix; multi-hop forwarding re-posts at every intermediate
        // node, so each individual post only needs the adjacent-pair
        // floor, which the fold always covers.
        unsigned shards = std::min(cfg_.shards, cfg_.nodes);
        engine_ = std::make_unique<sim::ShardedEngine>(
            cfg_.nodes, shards,
            sim::ShardedEngine::PairLookahead(
                [this](NodeId src, NodeId dst) {
                    return net_.minDeliveryLatency(src, dst);
                }));
    }

    for (unsigned i = 0; i < cfg.nodes; ++i)
        nodes_.push_back(
            std::make_unique<Node>(*this, i, cfg_, nodeEq(i)));

    // Fault injection: a deliberately filled SystemConfig::faults
    // wins; otherwise SHRIMP_FAULTS wins over a --faults= seen by
    // parseRunOptions (mirroring the audit precedence below).
    net::FaultConfig fcfg = cfg_.faults;
    if (!fcfg.specified) {
        const char *fenv = std::getenv("SHRIMP_FAULTS");
        std::string fspec = fenv && *fenv ? fenv : g_pendingFaultSpec;
        if (!fspec.empty())
            net::parseFaultSpec(fspec, fcfg, &std::cerr);
    }
    if (fcfg.specified)
        net_.setFaults(fcfg);

    // SHRIMP_AUDIT wins over a --audit= seen by parseRunOptions.
    const char *env = std::getenv("SHRIMP_AUDIT");
    std::string spec = env && *env ? env : g_pendingAuditSpec;
    if (!spec.empty() && !enableAudit(spec)) {
        std::cerr << "audit: unknown mode '" << spec
                  << "' (want every-event, on-switch, at-barrier or "
                     "off)\n";
    }
}

System::~System() = default;

bool
System::enableAudit(const std::string &spec, bool fail_fast)
{
    audit::Mode mode;
    if (!audit::parseMode(spec, mode))
        return false;
    if (engine_)
        engine_->setBarrierHook({});
    auditor_.reset();
    if (mode == audit::Mode::Off)
        return true;
    if (engine_) {
        // Per-event hooks would fire concurrently on worker threads
        // and read other shards' state mid-window; audit where the
        // world is quiescent instead.
        mode = audit::Mode::AtBarrier;
        auditor_ = std::make_unique<audit::Monitor>(*this, mode,
                                                    fail_fast);
        engine_->setBarrierHook(
            [this] { auditor_->auditNow("window-barrier"); });
        return true;
    }
    if (mode == audit::Mode::AtBarrier) {
        // No barriers without the sharded engine; the closest
        // legacy equivalent is the context-switch audit.
        std::cerr << "audit: at-barrier needs --shards > 0; "
                     "auditing on-switch instead\n";
        mode = audit::Mode::OnSwitch;
    }
    auditor_ = std::make_unique<audit::Monitor>(*this, mode,
                                                fail_fast);
    return true;
}

void
System::dumpStats(std::ostream &os)
{
    os << "sim.ticks " << simNow() << "\n";
    os << "sim.events " << simEvents() << "\n";
    os << "net.topology " << topo_.describe() << "\n";
    os << "net.bytesRouted " << net_.bytesRouted() << "\n";
    {
        net::FaultCounters f = net_.faults().totals();
        os << "net.fault.decisions " << f.decisions << "\n";
        os << "net.fault.dropped " << f.dropped << "\n";
        os << "net.fault.corrupted " << f.corrupted << "\n";
        os << "net.fault.duplicated " << f.duplicated << "\n";
        os << "net.fault.delayed " << f.delayed << "\n";
        os << "net.fault.downDropped " << f.downDropped << "\n";
    }
    for (auto &np : nodes_) {
        Node &n = *np;
        std::string p = "node" + std::to_string(n.id()) + ".";
        auto &k = n.kernel();
        k.statGroup().dump(os, p);
        os << p << "swap.pageWrites "
           << k.backingStore().pageWrites() << "\n";
        os << p << "swap.pageReads " << k.backingStore().pageReads()
           << "\n";
        n.ioBus().statGroup().dump(os, p);
        os << p << "tlb.hits " << n.mmu().tlb().hits() << "\n";
        os << p << "tlb.misses " << n.mmu().tlb().misses() << "\n";
        for (auto *c : k.controllers()) {
            c->statGroup().dump(os, p);
            c->engineStatGroup().dump(
                os, p + c->statGroup().name() + ".");
        }
        if (auto *ni = n.ni())
            ni->statGroup().dump(os, p);
    }
}

void
System::dumpStatsJson(std::ostream &os)
{
    sim::JsonWriter w(os);
    w.beginObject();
    w.key("sim");
    w.beginObject();
    w.field("ticks", simNow());
    w.field("events", simEvents());
    w.endObject();
    w.key("net");
    w.beginObject();
    w.field("topology", topo_.describe());
    w.field("bytesRouted", net_.bytesRouted());
    {
        net::FaultCounters f = net_.faults().totals();
        w.key("fault");
        w.beginObject();
        w.field("decisions", f.decisions);
        w.field("dropped", f.dropped);
        w.field("corrupted", f.corrupted);
        w.field("duplicated", f.duplicated);
        w.field("delayed", f.delayed);
        w.field("downDropped", f.downDropped);
        w.endObject();
    }
    w.endObject();
    w.key("nodes");
    w.beginArray();
    for (auto &np : nodes_) {
        Node &n = *np;
        auto &k = n.kernel();
        w.beginObject();
        w.field("id", std::uint64_t(n.id()));
        stats::JsonDumper d(w);
        k.statGroup().accept(d);
        w.key("swap");
        w.beginObject();
        w.field("pageWrites", k.backingStore().pageWrites());
        w.field("pageReads", k.backingStore().pageReads());
        w.endObject();
        n.ioBus().statGroup().accept(d);
        w.key("tlb");
        w.beginObject();
        w.field("hits", n.mmu().tlb().hits());
        w.field("misses", n.mmu().tlb().misses());
        w.endObject();
        for (auto *c : k.controllers()) {
            c->statGroup().accept(d);
            c->engineStatGroup().accept(d, c->statGroup().name() + ".");
        }
        if (auto *ni = n.ni())
            ni->statGroup().accept(d);
        w.endObject();
    }
    w.endArray();
    w.key("spans");
    span::registry().dumpJson(w, /*includeSpans=*/false);
    w.endObject();
    w.finish();
}

RunOptions
parseRunOptions(int &argc, char **argv)
{
    RunOptions opts;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--stats-json=", 0) == 0) {
            opts.statsJsonPath = arg.substr(std::strlen("--stats-json="));
            if (opts.statsJsonPath.empty()) {
                std::cerr << "--stats-json: empty path\n";
                opts.ok = false;
            }
            continue;
        }
        if (arg.rfind("--trace=", 0) == 0) {
            opts.traceSpec = arg.substr(std::strlen("--trace="));
            if (!trace::applySpec(opts.traceSpec, &std::cerr)) {
                std::cerr << "--trace: unknown category in '"
                          << opts.traceSpec
                          << "' (want dma,vm,os,ni,bus,xfer,net.fault "
                             "or all)\n";
                opts.ok = false;
            }
            continue;
        }
        if (arg.rfind("--faults=", 0) == 0) {
            std::string spec = arg.substr(std::strlen("--faults="));
            if (!net::parseFaultSpec(spec, opts.faults, &std::cerr)) {
                opts.ok = false;
            } else {
                g_pendingFaultSpec = spec;
            }
            continue;
        }
        if (arg.rfind("--topo=", 0) == 0) {
            std::string spec = arg.substr(std::strlen("--topo="));
            if (!sim::parseTopologySpec(spec, opts.topology,
                                        &std::cerr)) {
                opts.ok = false;
            } else {
                g_pendingTopoSpec = spec;
            }
            continue;
        }
        if (arg.rfind("--audit=", 0) == 0) {
            opts.auditSpec = arg.substr(std::strlen("--audit="));
            audit::Mode mode;
            if (!audit::parseMode(opts.auditSpec, mode)) {
                std::cerr << "--audit: unknown mode '" << opts.auditSpec
                          << "' (want every-event, on-switch, "
                             "at-barrier or off)\n";
                opts.ok = false;
            } else {
                g_pendingAuditSpec = opts.auditSpec;
            }
            continue;
        }
        if (arg.rfind("--profile=", 0) == 0) {
            opts.profilePath = arg.substr(std::strlen("--profile="));
            if (opts.profilePath.empty()) {
                std::cerr << "--profile: empty path\n";
                opts.ok = false;
            } else {
                // A profiled run is a diagnostic run: make failures
                // produce their flight-recorder post-mortem too.
                sim::FlightRecorder::setDumpOnPanic(true);
            }
            continue;
        }
        if (arg.rfind("--shards=", 0) == 0) {
            std::string spec = arg.substr(std::strlen("--shards="));
            if (spec == "auto") {
                opts.shardsAuto = true;
            } else {
                char *end = nullptr;
                unsigned long n = std::strtoul(spec.c_str(), &end, 10);
                if (spec.empty() || (end && *end)) {
                    std::cerr << "--shards: want a count or 'auto', "
                                 "got '" << spec << "'\n";
                    opts.ok = false;
                } else {
                    opts.shards = unsigned(n);
                }
            }
            continue;
        }
        argv[out++] = argv[i];
    }
    argc = out;
    // SHRIMP_TOPO fallback has to resolve *here*, not only inside
    // resolvedTopology(): workloads that pin their SystemConfig
    // topology from these options (ring.cc sets specified=true so a
    // default-constructed config stays crossbar regardless of the
    // environment) would otherwise never see the env var at all.
    if (!opts.topology.specified) {
        const char *tenv = std::getenv("SHRIMP_TOPO");
        if (tenv && *tenv
            && !sim::parseTopologySpec(tenv, opts.topology,
                                       &std::cerr))
            opts.ok = false;
    }
    return opts;
}

unsigned
hostCoreCount()
{
#ifdef __linux__
    cpu_set_t mask;
    if (sched_getaffinity(0, sizeof mask, &mask) == 0) {
        const int n = CPU_COUNT(&mask);
        if (n > 0)
            return unsigned(n);
    }
#endif
    return std::max(1u, std::thread::hardware_concurrency());
}

unsigned
resolveShards(const RunOptions &opts, unsigned nodes)
{
    if (opts.shardsAuto)
        return std::min(nodes, hostCoreCount());
    return std::min(opts.shards, nodes);
}

void
writeStatsJson(System &sys, const RunOptions &opts)
{
    if (opts.statsJsonPath.empty())
        return;
    std::ofstream out(opts.statsJsonPath);
    if (!out) {
        std::cerr << "cannot write " << opts.statsJsonPath << "\n";
        return;
    }
    sys.dumpStatsJson(out);
}

Tick
System::runUntilAllDone(Tick limit)
{
    auto all_done = [this] {
        for (auto &n : nodes_) {
            if (!n->kernel().allProcessesDone())
                return false;
        }
        return true;
    };
    Tick t = runUntil(all_done, limit);
    for (auto &n : nodes_)
        n->kernel().rethrowProcessFailures();
    return t;
}

} // namespace shrimp::core
