#include "core/system.hh"

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <ostream>

#include "sim/trace.hh"

namespace shrimp::core
{

namespace
{

/**
 * Honour SHRIMP_TRACE=dma,vm,os,ni,bus (or "all"): enable those
 * trace categories on stderr. Lets every example and bench be traced
 * without recompilation.
 */
void
applyTraceEnv()
{
    const char *env = std::getenv("SHRIMP_TRACE");
    if (!env || !*env)
        return;
    trace::setSink(&std::cerr);
    std::string spec(env);
    auto want = [&](const char *name) {
        return spec == "all"
               || spec.find(name) != std::string::npos;
    };
    if (want("dma"))
        trace::enable(trace::Category::Dma);
    if (want("vm"))
        trace::enable(trace::Category::Vm);
    if (want("os"))
        trace::enable(trace::Category::Os);
    if (want("ni"))
        trace::enable(trace::Category::Ni);
    if (want("bus"))
        trace::enable(trace::Category::Bus);
}

} // namespace

Node::Node(System &sys, NodeId id, const SystemConfig &cfg) : id_(id)
{
    const auto &params = sys.params();
    const auto &layout = sys.layout();

    memory_ = std::make_unique<mem::PhysicalMemory>(
        cfg.node.memBytes, params.pageBytes);
    ioBus_ = std::make_unique<bus::IoBus>(sys.eq(), params);
    mmu_ = std::make_unique<vm::Mmu>(layout);
    kernel_ = std::make_unique<os::Kernel>(sys.eq(), params, layout,
                                           *memory_, *ioBus_, *mmu_);

    for (unsigned slot = 0; slot < cfg.node.devices.size(); ++slot) {
        const DeviceConfig &dc = cfg.node.devices[slot];
        slotKinds_.push_back(dc.kind);
        controllers_.emplace_back(nullptr);
        drivers_.emplace_back(nullptr);

        if (dc.kind == DeviceKind::FifoNic) {
            devices_.emplace_back(nullptr);
            fifoNic_ = std::make_unique<baseline::FifoNic>(
                sys.eq(), params, id, *ioBus_, sys.fifoFabric(), slot,
                params.pageBytes);
            kernel_->registerDeviceWindow(
                slot, fifoNic_->proxyExtentBytes());
            continue;
        }

        std::unique_ptr<dma::UdmaDevice> udev;
        switch (dc.kind) {
          case DeviceKind::ShrimpNi: {
            auto ni = std::make_unique<net::NetworkInterface>(
                sys.eq(), params, id, *memory_, *ioBus_, sys.net(),
                params.pageBytes);
            ni_ = ni.get();
            udev = std::move(ni);
            break;
          }
          case DeviceKind::FrameBuffer: {
            auto fb = std::make_unique<dev::FrameBuffer>(dc.fbWidth,
                                                         dc.fbHeight);
            fb_ = fb.get();
            udev = std::move(fb);
            break;
          }
          case DeviceKind::Disk: {
            auto disk =
                std::make_unique<dev::Disk>(params, dc.diskBytes);
            disk_ = disk.get();
            udev = std::move(disk);
            break;
          }
          case DeviceKind::StreamSink: {
            auto sink = std::make_unique<dev::StreamSink>(dc.sinkBytes);
            sink_ = sink.get();
            udev = std::move(sink);
            break;
          }
          case DeviceKind::FifoNic:
            break; // handled above
        }

        if (dc.driver == DriverKind::Udma) {
            controllers_[slot] = std::make_unique<dma::UdmaController>(
                sys.eq(), params, layout, *memory_, *ioBus_, *udev, slot,
                dc.queueDepth);
            kernel_->attachController(controllers_[slot].get());
        } else {
            drivers_[slot] =
                std::make_unique<baseline::TraditionalDmaDriver>(
                    sys.eq(), params, *memory_, *ioBus_, *udev);
        }
        devices_.push_back(std::move(udev));
    }

    // The SHRIMP board snoops the memory bus for automatic update.
    if (ni_) {
        auto *ni = ni_;
        kernel_->addStoreSnooper([ni](Addr paddr, std::uint64_t value) {
            return ni->snoopStore(paddr, value);
        });
    }
}

Node::~Node() = default;

dma::UdmaController *
Node::controller(unsigned device)
{
    return device < controllers_.size() ? controllers_[device].get()
                                        : nullptr;
}

baseline::TraditionalDmaDriver *
Node::tradDriver(unsigned device)
{
    return device < drivers_.size() ? drivers_[device].get() : nullptr;
}

int
Node::deviceIndexOf(DeviceKind kind) const
{
    for (unsigned i = 0; i < slotKinds_.size(); ++i) {
        if (slotKinds_[i] == kind)
            return int(i);
    }
    return -1;
}

System::System(const SystemConfig &cfg)
    : cfg_(cfg),
      layout_(cfg.node.memBytes, cfg.params.pageBytes,
              std::max<unsigned>(1, unsigned(cfg.node.devices.size()))),
      net_(eq_, cfg_.params), fifoFabric_(eq_, cfg_.params)
{
    if (cfg.nodes == 0)
        fatal("a system needs at least one node");
    applyTraceEnv();
    for (unsigned i = 0; i < cfg.nodes; ++i)
        nodes_.push_back(std::make_unique<Node>(*this, i, cfg_));
}

System::~System() = default;

void
System::dumpStats(std::ostream &os)
{
    os << "sim.ticks " << eq_.now() << "\n";
    os << "sim.events " << eq_.eventsExecuted() << "\n";
    os << "net.bytesRouted " << net_.bytesRouted() << "\n";
    for (auto &np : nodes_) {
        Node &n = *np;
        std::string p = "node" + std::to_string(n.id()) + ".";
        auto &k = n.kernel();
        os << p << "kernel.contextSwitches " << k.contextSwitches()
           << "\n";
        os << p << "kernel.pageFaults " << k.pageFaults() << "\n";
        os << p << "kernel.proxyFaults " << k.proxyFaults() << "\n";
        os << p << "kernel.proxyWriteUpgrades "
           << k.proxyWriteUpgrades() << "\n";
        os << p << "kernel.evictions " << k.evictions() << "\n";
        os << p << "kernel.evictionI4Skips " << k.evictionI4Skips()
           << "\n";
        os << p << "kernel.processesKilled " << k.processesKilled()
           << "\n";
        os << p << "kernel.freeFrames " << k.freeFrames() << "\n";
        os << p << "swap.pageWrites "
           << k.backingStore().pageWrites() << "\n";
        os << p << "swap.pageReads " << k.backingStore().pageReads()
           << "\n";
        os << p << "bus.bursts " << n.ioBus().burstCount() << "\n";
        os << p << "bus.words " << n.ioBus().wordCount() << "\n";
        os << p << "bus.busyTicks " << n.ioBus().busyTicks() << "\n";
        os << p << "tlb.hits " << n.mmu().tlb().hits() << "\n";
        os << p << "tlb.misses " << n.mmu().tlb().misses() << "\n";
        for (auto *c : k.controllers()) {
            std::string cp =
                p + "udma" + std::to_string(c->deviceIndex()) + ".";
            os << cp << "transfersStarted " << c->transfersStarted()
               << "\n";
            os << cp << "statusLoads " << c->statusLoads() << "\n";
            os << cp << "badLoads " << c->badLoads() << "\n";
            os << cp << "invalsApplied " << c->invalsApplied()
               << "\n";
            os << cp << "queueRefusals " << c->queueRefusals()
               << "\n";
            os << cp << "engine.bytesMoved "
               << c->engine().bytesMoved() << "\n";
            os << cp << "engine.stalls " << c->engine().stallEvents()
               << "\n";
        }
        if (auto *ni = n.ni()) {
            os << p << "ni.messagesSent " << ni->messagesSent()
               << "\n";
            os << p << "ni.messagesDelivered "
               << ni->messagesDelivered() << "\n";
            os << p << "ni.bytesDelivered " << ni->bytesDelivered()
               << "\n";
            os << p << "ni.autoUpdatesSent " << ni->autoUpdatesSent()
               << "\n";
            os << p << "ni.autoUpdatesCombined "
               << ni->autoUpdatesCombined() << "\n";
        }
    }
}

Tick
System::runUntilAllDone(Tick limit)
{
    Tick t = eq_.runUntil(
        [this] {
            for (auto &n : nodes_) {
                if (!n->kernel().allProcessesDone())
                    return false;
            }
            return true;
        },
        limit);
    for (auto &n : nodes_)
        n->kernel().rethrowProcessFailures();
    return t;
}

} // namespace shrimp::core
