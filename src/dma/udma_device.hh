/**
 * @file
 * The device side of a DMA transfer.
 *
 * A UdmaDevice is anything that can be the device endpoint of a UDMA
 * (or traditional DMA) transfer: the SHRIMP network interface, a frame
 * buffer, a disk. The DMA engine moves data in chunks; the device
 * exercises flow control by bounding how much it will currently push
 * or pull, and pokes the engine when it can make progress again.
 *
 * Device proxy addresses are interpreted by the device ("the precise
 * interpretation of addresses in device proxy space is device
 * specific" — paper Section 4): the engine passes the offset within
 * the device proxy window through untouched.
 */

#ifndef SHRIMP_DMA_UDMA_DEVICE_HH
#define SHRIMP_DMA_UDMA_DEVICE_HH

#include <cstdint>
#include <functional>
#include <string>

#include "sim/types.hh"

namespace shrimp::dma
{

/** Device endpoint interface for DMA transfers. */
class UdmaDevice
{
  public:
    virtual ~UdmaDevice() = default;

    /** Debug name. */
    virtual std::string deviceName() const = 0;

    /**
     * Validate a transfer request before it starts. Returns a
     * device-specific error byte (device_error::none to accept).
     *
     * @param to_device True for memory->device.
     * @param dev_offset Offset within the device proxy window.
     * @param nbytes Requested (already page-clamped) byte count.
     */
    virtual std::uint8_t validateTransfer(bool to_device, Addr dev_offset,
                                          std::uint32_t nbytes) = 0;

    /**
     * Bytes from @p dev_offset to the device's own transfer boundary
     * (e.g. the NIPT proxy-page end). The hardware clamps optimistic
     * user requests here, like the SHRIMP board does for page
     * boundaries (paper Section 8).
     */
    virtual std::uint64_t deviceBoundary(Addr dev_offset) const = 0;

    /**
     * Flow control, device as destination: how many of @p want bytes
     * the device can take right now (0 = stall).
     */
    virtual std::uint32_t pushCapacity(Addr dev_offset,
                                       std::uint32_t want) = 0;

    /** Deliver @p len bytes to the device (len <= last pushCapacity). */
    virtual void devicePush(Addr dev_offset, const std::uint8_t *data,
                            std::uint32_t len) = 0;

    /**
     * Flow control, device as source: how many of @p want bytes the
     * device can supply right now (0 = stall).
     */
    virtual std::uint32_t pullAvailable(Addr dev_offset,
                                        std::uint32_t want) = 0;

    /** Take @p len bytes from the device (len <= last pullAvailable). */
    virtual void devicePull(Addr dev_offset, std::uint8_t *out,
                            std::uint32_t len) = 0;

    /**
     * Register the engine's stall-recovery callback. The device calls
     * it whenever pushCapacity/pullAvailable may have grown.
     */
    virtual void setEngineWakeup(std::function<void()> wakeup) = 0;

    /** Lifecycle notifications (header construction hooks, stats). */
    virtual void
    transferStarting(bool to_device, Addr dev_offset, std::uint32_t nbytes)
    {
        (void)to_device;
        (void)dev_offset;
        (void)nbytes;
    }

    virtual void
    transferFinished(bool to_device, Addr dev_offset, std::uint32_t nbytes)
    {
        (void)to_device;
        (void)dev_offset;
        (void)nbytes;
    }

    /**
     * Extra engine start latency this device imposes (e.g. the SHRIMP
     * NIPT lookup and packet header construction).
     */
    virtual Tick startLatency(bool to_device, Addr dev_offset) const
    {
        (void)to_device;
        (void)dev_offset;
        return 0;
    }

    /**
     * Size of the meaningful device proxy window. The kernel refuses
     * sysMapDeviceProxy requests beyond this extent.
     */
    virtual std::uint64_t proxyExtentBytes() const = 0;

    /**
     * Device policy hook for granting a proxy mapping (paper Section
     * 4: "The system call decides whether to grant permission").
     */
    virtual bool
    allowProxyMap(std::uint64_t first_page, std::uint64_t n_pages,
                  bool writable) const
    {
        (void)first_page;
        (void)n_pages;
        (void)writable;
        return true;
    }
};

} // namespace shrimp::dma

#endif // SHRIMP_DMA_UDMA_DEVICE_HH
