/**
 * @file
 * The classic DMA transfer engine (paper Figure 1).
 *
 * SOURCE/DESTINATION/COUNT registers and a transfer state machine that
 * streams data between physical memory and a device over the I/O bus
 * in burst-mode chunks, with device flow control. The engine is used
 * unchanged by both the UDMA controller (which is "a small extension
 * to the traditional DMA controller") and the traditional
 * kernel-initiated DMA baseline — which for gather transfers programs
 * a scatter/gather segment list, standing in for the page-list
 * descriptor the kernel builds.
 */

#ifndef SHRIMP_DMA_DMA_ENGINE_HH
#define SHRIMP_DMA_DMA_ENGINE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "bus/io_bus.hh"
#include "dma/udma_device.hh"
#include "mem/physical_memory.hh"
#include "sim/event_queue.hh"
#include "sim/params.hh"
#include "sim/stats.hh"

namespace shrimp::dma
{

/** One physically contiguous piece of the memory side of a transfer. */
struct Segment
{
    Addr memAddr = 0;
    std::uint32_t len = 0;
};

/** A programmed transfer. */
struct TransferDesc
{
    /** True: memory -> device. False: device -> memory. */
    bool toDevice = true;

    /** Memory side, as one or more physical segments. */
    std::vector<Segment> segments;

    /** Device side: starting offset in the device proxy window. */
    Addr devOffset = 0;

    /**
     * The physical proxy addresses the initiating references named,
     * kept for the status word's MATCH comparison. Zero when the
     * transfer was kernel-initiated (traditional baseline).
     */
    Addr srcProxyAddr = 0;
    Addr dstProxyAddr = 0;

    /** Invoked (once) when the last byte has been moved. */
    std::function<void()> onComplete;

    std::uint32_t
    totalBytes() const
    {
        std::uint32_t n = 0;
        for (const auto &s : segments)
            n += s.len;
        return n;
    }
};

/** The transfer state machine of Figure 1. */
class DmaEngine
{
  public:
    DmaEngine(sim::EventQueue &eq, const sim::MachineParams &params,
              mem::PhysicalMemory &memory, bus::IoBus &io_bus,
              UdmaDevice &device, std::uint32_t chunk_bytes = 256);

    /** True while a transfer is in progress. */
    bool busy() const { return busy_; }

    /**
     * Program the registers and start the transfer state machine.
     * Checked error if already busy — the UDMA controller and the
     * kernel driver both guarantee mutual exclusion above this layer.
     */
    void start(TransferDesc desc);

    /**
     * Abort the running transfer (the Section 5 extension the paper
     * suggests "for dealing with memory system errors"): the engine
     * stops after any chunk already on the bus and does NOT invoke
     * onComplete. Bytes already moved stay moved.
     * @return false if the engine was idle.
     */
    bool abort();

    /** Transfers cancelled via abort(). */
    std::uint64_t transfersAborted() const
    {
        return std::uint64_t(aborted_.value());
    }

    /** COUNT register: bytes not yet transferred. */
    std::uint32_t remaining() const { return left_; }

    /** The active descriptor (nullptr when idle). */
    const TransferDesc *active() const { return busy_ ? &desc_ : nullptr; }

    /**
     * Register-consistency query for the kernel's invariant I4: does
     * the active transfer involve the physical memory page based at
     * @p page_base? Conservative: the whole programmed range counts
     * as busy until completion, mirroring a kernel that reads the
     * SOURCE/DESTINATION registers and declines to reason about how
     * far the transfer has advanced.
     */
    bool pageBusy(Addr page_base) const;

    std::uint64_t transfersCompleted() const
    {
        return std::uint64_t(completed_.value());
    }
    std::uint64_t bytesMoved() const
    {
        return std::uint64_t(bytes_.value());
    }
    std::uint64_t stallEvents() const
    {
        return std::uint64_t(stalls_.value());
    }

    /** End-to-end transfer latencies (us) for completed transfers. */
    const stats::Histogram &transferLatency() const { return xferUs_; }

    /** The engine's registered stats ("engine.*"). */
    const stats::StatGroup &statGroup() const { return statGroup_; }

  private:
    void step();
    void doChunk(std::uint32_t n);
    void finish();

    /** Current memory-side position. */
    Addr
    memPtr() const
    {
        return desc_.segments[segIdx_].memAddr + segOff_;
    }

    /** Bytes left in the current segment. */
    std::uint32_t
    segLeft() const
    {
        return desc_.segments[segIdx_].len - segOff_;
    }

    void advanceMem(std::uint32_t n);

    sim::EventQueue &eq_;
    const sim::MachineParams &params_;
    mem::PhysicalMemory &memory_;
    bus::IoBus &ioBus_;
    UdmaDevice &device_;
    std::uint32_t chunkBytes_;

    bool busy_ = false;
    bool chunkInFlight_ = false;
    bool stalled_ = false;
    TransferDesc desc_;
    std::size_t segIdx_ = 0;
    std::uint32_t segOff_ = 0;
    Addr devPtr_ = 0;
    std::uint32_t left_ = 0;
    std::vector<std::uint8_t> buf_;

    stats::Scalar completed_;
    stats::Scalar bytes_;
    stats::Scalar stalls_;
    stats::Scalar aborted_;
    /** Completed-transfer latency, microseconds. */
    stats::Histogram xferUs_{0, 1024, 32};
    /** Ticks spent with a transfer programmed (for the bandwidth
     *  formula; includes aborted time). */
    stats::Scalar busyTicks_;
    /** bytesMoved / busy time, MB/s, evaluated at dump. */
    stats::Formula bandwidth_;
    stats::StatGroup statGroup_{"engine"};
    Tick xferStart_ = 0;
    /** Generation counter: chunk events from a previous (aborted)
     *  transfer must not touch the new one. */
    std::uint64_t generation_ = 0;
};

} // namespace shrimp::dma

#endif // SHRIMP_DMA_DMA_ENGINE_HH
