/**
 * @file
 * The UDMA status word returned by every proxy-space LOAD
 * (paper Section 5, "Status Returned by Proxy LOADs").
 *
 * Layout (low to high):
 *   bit 0        INITIATION    zero iff this access started a transfer
 *   bit 1        TRANSFERRING  engine is in the Transferring state
 *   bit 2        INVALID       engine is in the Idle state
 *   bit 3        MATCH         Transferring and the referenced address
 *                              equals the base address of the transfer
 *                              in progress (or of a queued request,
 *                              with the Section 7 queueing extension)
 *   bit 4        WRONG_SPACE   this access was a BadLoad
 *   bits 8..15   device-specific error byte
 *   bits 16..39  REMAINING_BYTES (clamped transfer size / remaining)
 */

#ifndef SHRIMP_DMA_STATUS_HH
#define SHRIMP_DMA_STATUS_HH

#include <cstdint>

namespace shrimp::dma
{

namespace status_bits
{
constexpr std::uint64_t initiation = 1ull << 0;
constexpr std::uint64_t transferring = 1ull << 1;
constexpr std::uint64_t invalid = 1ull << 2;
constexpr std::uint64_t match = 1ull << 3;
constexpr std::uint64_t wrongSpace = 1ull << 4;
constexpr unsigned deviceErrorShift = 8;
constexpr std::uint64_t deviceErrorMask = 0xffull << deviceErrorShift;
constexpr unsigned remainingShift = 16;
constexpr std::uint64_t remainingMask = 0xffffffull << remainingShift;
} // namespace status_bits

/** Device-specific error byte values shared across our devices. */
namespace device_error
{
constexpr std::uint8_t none = 0;
constexpr std::uint8_t alignment = 1 << 0; ///< not 4-byte aligned
constexpr std::uint8_t queueFull = 1 << 1; ///< Section 7 queue refusal
constexpr std::uint8_t range = 1 << 2;     ///< beyond device extent
constexpr std::uint8_t direction = 1 << 3; ///< unsupported direction
} // namespace device_error

/** Structured view of a status word. */
struct Status
{
    bool initiationFailed = true; ///< INITIATION bit (0 = started)
    bool transferring = false;
    bool invalid = false;
    bool match = false;
    bool wrongSpace = false;
    std::uint8_t deviceError = 0;
    std::uint32_t remainingBytes = 0;

    /** Pack into the bus data word. */
    std::uint64_t
    pack() const
    {
        using namespace status_bits;
        std::uint64_t w = 0;
        if (initiationFailed)
            w |= initiation;
        if (transferring)
            w |= status_bits::transferring;
        if (invalid)
            w |= status_bits::invalid;
        if (match)
            w |= status_bits::match;
        if (wrongSpace)
            w |= status_bits::wrongSpace;
        w |= (std::uint64_t(deviceError) << deviceErrorShift)
             & deviceErrorMask;
        w |= (std::uint64_t(remainingBytes) << remainingShift)
             & remainingMask;
        return w;
    }

    /** Unpack from the bus data word. */
    static Status
    unpack(std::uint64_t w)
    {
        using namespace status_bits;
        Status s;
        s.initiationFailed = w & initiation;
        s.transferring = w & status_bits::transferring;
        s.invalid = w & status_bits::invalid;
        s.match = w & status_bits::match;
        s.wrongSpace = w & status_bits::wrongSpace;
        s.deviceError =
            std::uint8_t((w & deviceErrorMask) >> deviceErrorShift);
        s.remainingBytes =
            std::uint32_t((w & remainingMask) >> remainingShift);
        return s;
    }
};

/** True iff a LOAD's status word says it started a transfer. */
inline bool
loadStartedTransfer(std::uint64_t status_word)
{
    return (status_word & status_bits::initiation) == 0;
}

/** True iff the polled transfer is still in flight (MATCH set). */
inline bool
loadSaysInFlight(std::uint64_t status_word)
{
    return (status_word & status_bits::match) != 0;
}

} // namespace shrimp::dma

#endif // SHRIMP_DMA_STATUS_HH
