#include "dma/dma_engine.hh"

namespace shrimp::dma
{

DmaEngine::DmaEngine(sim::EventQueue &eq, const sim::MachineParams &params,
                     mem::PhysicalMemory &memory, bus::IoBus &io_bus,
                     UdmaDevice &device, std::uint32_t chunk_bytes)
    : eq_(eq), params_(params), memory_(memory), ioBus_(io_bus),
      device_(device), chunkBytes_(chunk_bytes), buf_(chunk_bytes)
{
    SHRIMP_ASSERT(chunk_bytes > 0, "zero chunk size");
    device_.setEngineWakeup([this] {
        if (busy_ && stalled_ && !chunkInFlight_) {
            stalled_ = false;
            step();
        }
    });

    bandwidth_ = [this] {
        double us = ticksToUs(Tick(busyTicks_.value()));
        return us > 0 ? bytes_.value() / us : 0.0;
    };
    statGroup_.addScalar("transfersCompleted", &completed_,
                         "transfers run to completion");
    statGroup_.addScalar("bytesMoved", &bytes_, "payload bytes moved");
    statGroup_.addScalar("stalls", &stalls_,
                         "device flow-control stall events");
    statGroup_.addScalar("transfersAborted", &aborted_,
                         "transfers cancelled via abort");
    statGroup_.addHistogram("xfer_us", &xferUs_,
                            "completed-transfer latency (us)");
    statGroup_.addFormula("bandwidth_mb_s", &bandwidth_,
                          "bytes moved per busy microsecond");
}

void
DmaEngine::start(TransferDesc desc)
{
    SHRIMP_ASSERT(!busy_, "DMA engine started while busy");
    SHRIMP_ASSERT(!desc.segments.empty(), "transfer with no segments");
    for (const auto &s : desc.segments)
        SHRIMP_ASSERT(s.len > 0, "zero-length segment");

    desc_ = std::move(desc);
    busy_ = true;
    xferStart_ = eq_.now();
    stalled_ = false;
    chunkInFlight_ = false;
    segIdx_ = 0;
    segOff_ = 0;
    devPtr_ = desc_.devOffset;
    left_ = desc_.totalBytes();

    Tick lat = params_.dmaStart()
               + device_.startLatency(desc_.toDevice, desc_.devOffset);
    device_.transferStarting(desc_.toDevice, desc_.devOffset, left_);
    std::uint64_t gen = generation_;
    eq_.scheduleIn(lat, "dma.start",
                   [this, gen] {
                       if (gen == generation_ && busy_)
                           step();
                   },
                   sim::EventPriority::DeviceCompletion);
}

bool
DmaEngine::abort()
{
    if (!busy_)
        return false;
    // Invalidate outstanding chunk events and stop the machine; the
    // device is told the (truncated) transfer is over so it can
    // close any open packet state.
    ++generation_;
    busy_ = false;
    chunkInFlight_ = false;
    stalled_ = false;
    ++aborted_;
    busyTicks_ += double(eq_.now() - xferStart_);
    device_.transferFinished(desc_.toDevice, desc_.devOffset,
                             desc_.totalBytes() - left_);
    return true;
}

void
DmaEngine::advanceMem(std::uint32_t n)
{
    segOff_ += n;
    if (segOff_ == desc_.segments[segIdx_].len && segIdx_ + 1
            < desc_.segments.size()) {
        ++segIdx_;
        segOff_ = 0;
    }
}

void
DmaEngine::step()
{
    if (left_ == 0) {
        finish();
        return;
    }

    std::uint32_t want =
        std::min({chunkBytes_, left_, segLeft()});
    std::uint32_t n;
    if (desc_.toDevice) {
        n = std::min(want, device_.pushCapacity(devPtr_, want));
    } else {
        n = std::min(want, device_.pullAvailable(devPtr_, want));
    }
    if (n == 0) {
        // Device flow control: wait for the wakeup callback.
        stalled_ = true;
        ++stalls_;
        return;
    }

    chunkInFlight_ = true;
    Tick done = ioBus_.burstTransfer(n);
    std::uint64_t gen = generation_;
    eq_.schedule(done, "dma.chunk",
                 [this, n, gen] {
                     if (gen == generation_)
                         doChunk(n);
                 },
                 sim::EventPriority::DeviceCompletion);
}

void
DmaEngine::doChunk(std::uint32_t n)
{
    chunkInFlight_ = false;
    if (desc_.toDevice) {
        memory_.readBytes(memPtr(), buf_.data(), n);
        device_.devicePush(devPtr_, buf_.data(), n);
    } else {
        device_.devicePull(devPtr_, buf_.data(), n);
        memory_.writeBytes(memPtr(), buf_.data(), n);
    }
    advanceMem(n);
    devPtr_ += n;
    left_ -= n;
    bytes_ += double(n);
    step();
}

void
DmaEngine::finish()
{
    busy_ = false;
    ++completed_;
    xferUs_.sample(ticksToUs(eq_.now() - xferStart_));
    busyTicks_ += double(eq_.now() - xferStart_);
    device_.transferFinished(desc_.toDevice, desc_.devOffset,
                             desc_.totalBytes());
    if (desc_.onComplete) {
        // Move out first: the callback commonly starts the next
        // transfer, which overwrites desc_.
        auto cb = std::move(desc_.onComplete);
        cb();
    }
}

bool
DmaEngine::pageBusy(Addr page_base) const
{
    if (!busy_)
        return false;
    Addr page_end = page_base + memory_.pageBytes();
    for (const auto &s : desc_.segments) {
        if (s.memAddr < page_end && s.memAddr + s.len > page_base)
            return true;
    }
    return false;
}

} // namespace shrimp::dma
