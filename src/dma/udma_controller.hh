/**
 * @file
 * The UDMA controller (paper Figures 4 and 5).
 *
 * Sits between the I/O bus and a classic DMA engine. It recognizes
 * physical proxy-space bus cycles, applies PROXY^-1 to memory-proxy
 * addresses, and runs the three-state initiation machine:
 *
 *      Idle --Store--> DestLoaded --Load--> Transferring --done--> Idle
 *
 * with the additional events Inval (STORE of a non-positive byte
 * count; DestLoaded -> Idle) and BadLoad (LOAD from the same proxy
 * region kind as the latched DESTINATION; DestLoaded -> Idle with the
 * WRONG-SPACE flag).
 *
 * Note on the initiation order: per Section 3 and Figure 3 the STORE
 * names the *destination* (latching DESTINATION and COUNT — hence the
 * state name DestLoaded) and the LOAD names the *source* and starts
 * the transfer. (The OCR of the paper's Section 5 swaps the register
 * names; see DESIGN.md.)
 *
 * The controller is deliberately stateless with respect to processes:
 * it cannot see who issued a cycle. Protection comes entirely from
 * the MMU check that happened before the cycle reached the bus, plus
 * the kernel's context-switch Inval (invariant I1).
 *
 * With queue_depth > 0 the Section 7 extension is enabled: completed
 * (STORE, LOAD) pairs are queued while the engine is busy, refused
 * only when the queue is full, and per-page reference counters support
 * the kernel's I4 query without pinning.
 */

#ifndef SHRIMP_DMA_UDMA_CONTROLLER_HH
#define SHRIMP_DMA_UDMA_CONTROLLER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>

#include "bus/io_bus.hh"
#include "dma/dma_engine.hh"
#include "dma/status.hh"
#include "dma/udma_device.hh"
#include "sim/stats.hh"
#include "vm/layout.hh"

namespace shrimp::dma
{

/** The state machine of Figure 5 plus the Section 7 queue. */
class UdmaController : public bus::ProxyClient
{
  public:
    /** Architectural state (derived; see state()). */
    enum class State
    {
        Idle,
        DestLoaded,
        Transferring,
    };

    /**
     * @param device_index This device's slot in the address layout.
     * @param queue_depth 0 = basic (paper Sections 3-6); >0 enables
     *        the Section 7 hardware request queue of that many
     *        entries.
     * @param system_queue_depth Depth of the Section 7 "higher
     *        priority queue reserved for the system": kernel-submitted
     *        requests that jump ahead of all queued user requests.
     */
    UdmaController(sim::EventQueue &eq, const sim::MachineParams &params,
                   const vm::AddressLayout &layout,
                   mem::PhysicalMemory &memory, bus::IoBus &io_bus,
                   UdmaDevice &device, unsigned device_index,
                   std::uint32_t queue_depth = 0,
                   std::uint32_t system_queue_depth = 4);

    /**
     * Rename the owner attached to this controller's transfer spans
     * (default "udma<slot>"). Multi-node systems qualify it with the
     * node ("node3.udma0") so span timelines — and the Perfetto
     * tracks TraceSink builds from them — distinguish nodes. Stats
     * group naming is unaffected (the dump layer adds node prefixes
     * itself).
     */
    void setSpanOwner(std::string owner)
    {
        ownerName_ = std::move(owner);
    }

    /**
     * Kernel-priority request (Section 7's two-queue design): the
     * kernel programs a transfer directly — e.g. paging I/O — and it
     * is serviced before any queued user request. Returns false if
     * the system queue is full.
     */
    bool systemRequest(bool to_device, Addr mem_addr, Addr dev_offset,
                       std::uint32_t count,
                       std::function<void()> on_complete = {});

    /**
     * Kernel-only: force Transferring -> Idle, cancelling the running
     * transfer (the Section 5 extension "for dealing with memory
     * system errors that the DMA hardware cannot handle
     * transparently"). Queued requests are unaffected and the next
     * one starts immediately.
     * @return false if no transfer was running.
     */
    bool abortTransfer();

    std::uint64_t transfersAborted() const
    {
        return std::uint64_t(aborts_.value());
    }

    // ProxyClient interface (bus cycles).
    std::uint64_t proxyLoad(const vm::Decoded &decoded,
                            Addr paddr) override;
    void proxyStore(const vm::Decoded &decoded, Addr paddr,
                    std::int64_t value) override;

    /**
     * Hardware Inval: what the kernel's context-switch code triggers
     * with its single STORE of a negative byte count (invariant I1).
     * Clears a partially-initiated sequence; never disturbs a running
     * transfer or queued requests.
     */
    void inval();

    /** Derived architectural state. */
    State
    state() const
    {
        if (engine_.busy() || !queue_.empty() || !systemQueue_.empty())
            return State::Transferring;
        return pending_.valid ? State::DestLoaded : State::Idle;
    }

    /**
     * Invariant-I4 query: is this physical memory page involved in the
     * running transfer or any queued request? (The paper's
     * "reference-count register" / associative queue search.)
     */
    bool pageBusy(Addr page_base) const;

    /** Section 7 per-page reference count (active + queued). */
    std::uint32_t pageRefCount(Addr page_base) const;

    /**
     * Real memory page latched in a pending DESTINATION register, or
     * maxTick-like sentinel if none / destination is a device. The
     * kernel may inval() to clear it before remapping (Section 6, I4).
     */
    bool destLoadedPage(Addr &page_base_out) const;

    // ------------------------------------------- invariant auditing
    /**
     * Install the kernel's owner probe: called at every latching
     * STORE to record which process issued it. Debug bookkeeping for
     * the invariant auditor only — the architectural state machine
     * never reads it (the controller cannot see who owns a cycle).
     */
    void setOwnerProbe(std::function<Pid()> probe)
    {
        ownerProbe_ = std::move(probe);
    }

    /** Pid tagged on the latched destination (invalidPid if idle or
     *  untagged). */
    Pid
    latchOwnerPid() const
    {
        return pending_.valid ? pending_.ownerPid : invalidPid;
    }

    /** Per-page reference counts of the running + queued transfers
     *  (page base -> count); the auditor's I4 view. */
    const std::map<Addr, std::uint32_t> &
    busyPages() const
    {
        return pageRefs_;
    }

    /** Observer fired after every transfer completion (auditing). */
    void setCompletionObserver(std::function<void()> fn)
    {
        completionObserver_ = std::move(fn);
    }

    unsigned deviceIndex() const { return deviceIndex_; }
    UdmaDevice &device() { return device_; }
    const UdmaDevice &device() const { return device_; }
    std::uint32_t queueDepth() const { return queueDepth_; }
    std::size_t queuedRequests() const { return queue_.size(); }
    std::size_t queuedSystemRequests() const
    {
        return systemQueue_.size();
    }
    const DmaEngine &engine() const { return engine_; }

    // Statistics.
    std::uint64_t transfersStarted() const
    {
        return std::uint64_t(started_.value());
    }
    std::uint64_t badLoads() const
    {
        return std::uint64_t(badLoads_.value());
    }
    std::uint64_t invalsApplied() const
    {
        return std::uint64_t(invals_.value());
    }
    std::uint64_t queueRefusals() const
    {
        return std::uint64_t(refusals_.value());
    }
    std::uint64_t statusLoads() const
    {
        return std::uint64_t(statusLoads_.value());
    }

    /** The controller's registered stats ("udmaN.*"). */
    const stats::StatGroup &statGroup() const { return statGroup_; }

    /** The engine's registered stats ("engine.*"). */
    const stats::StatGroup &engineStatGroup() const
    {
        return engine_.statGroup();
    }

    /** Span id of the currently latched destination (0 if none). */
    std::uint64_t pendingSpanId() const
    {
        return pending_.valid ? pending_.spanId : 0;
    }

  private:
    /** A latched (STORE) destination awaiting its LOAD. */
    struct PendingDest
    {
        bool valid = false;
        Addr paddr = 0;
        vm::Decoded decoded;
        std::uint32_t count = 0;
        /** Lifecycle span opened at the latch. */
        std::uint64_t spanId = 0;
        Tick latchTick = 0;
        /** Issuing process per the owner probe (audit only). */
        Pid ownerPid = invalidPid;
    };

    /** A fully-specified transfer request. */
    struct Request
    {
        bool toDevice = true;
        Addr memAddr = 0;
        Addr devOffset = 0;
        std::uint32_t count = 0;
        Addr srcProxy = 0;
        Addr dstProxy = 0;
        std::uint64_t spanId = 0;
        Tick latchTick = 0;
        /** Kernel completion callback (system requests only). */
        std::function<void()> onDone;
    };

    /**
     * Try to turn (pending_, load) into a transfer. Fills the status
     * word fields that depend on the outcome.
     */
    void tryInitiate(const vm::Decoded &decoded, Addr paddr, Status &st);

    void startRequest(const Request &req);
    void engineDone();
    void serviceNextRequest();
    bool matchesInFlight(Addr paddr) const;
    void addPageRefs(const Request &req, int delta);

    sim::EventQueue &eq_;
    const sim::MachineParams &params_;
    const vm::AddressLayout &layout_;
    DmaEngine engine_;
    UdmaDevice &device_;
    unsigned deviceIndex_;
    std::uint32_t queueDepth_;

    PendingDest pending_;
    std::deque<Request> queue_;
    std::deque<Request> systemQueue_;
    std::uint32_t systemQueueDepth_;
    Request inFlight_;
    bool inFlightValid_ = false;
    std::map<Addr, std::uint32_t> pageRefs_;

    stats::Scalar started_;
    stats::Scalar aborts_;
    stats::Scalar badLoads_;
    stats::Scalar invals_;
    stats::Scalar refusals_;
    stats::Scalar statusLoads_;
    /** Latch (STORE) to transfer start, including queue wait (us). */
    stats::Histogram initiateUs_{0, 256, 16};
    std::string ownerName_;
    stats::StatGroup statGroup_;

    /** Audit bookkeeping (see setOwnerProbe / setCompletionObserver). */
    std::function<Pid()> ownerProbe_;
    std::function<void()> completionObserver_;
};

} // namespace shrimp::dma

#endif // SHRIMP_DMA_UDMA_CONTROLLER_HH
