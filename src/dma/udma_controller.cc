#include "dma/udma_controller.hh"

#include "sim/span.hh"
#include "sim/trace.hh"

namespace shrimp::dma
{

UdmaController::UdmaController(sim::EventQueue &eq,
                               const sim::MachineParams &params,
                               const vm::AddressLayout &layout,
                               mem::PhysicalMemory &memory,
                               bus::IoBus &io_bus, UdmaDevice &device,
                               unsigned device_index,
                               std::uint32_t queue_depth,
                               std::uint32_t system_queue_depth)
    : eq_(eq), params_(params), layout_(layout),
      engine_(eq, params, memory, io_bus, device),
      device_(device), deviceIndex_(device_index),
      queueDepth_(queue_depth), systemQueueDepth_(system_queue_depth),
      ownerName_("udma" + std::to_string(device_index)),
      statGroup_(ownerName_)
{
    io_bus.attach(device_index, this);

    statGroup_.addScalar("transfersStarted", &started_,
                         "transfers handed to the engine");
    statGroup_.addScalar("statusLoads", &statusLoads_,
                         "proxy LOAD cycles (status reads)");
    statGroup_.addScalar("badLoads", &badLoads_,
                         "LOADs from the wrong proxy space");
    statGroup_.addScalar("invalsApplied", &invals_,
                         "Inval events that cleared a latch");
    statGroup_.addScalar("queueRefusals", &refusals_,
                         "requests refused with a full queue");
    statGroup_.addScalar("transfersAborted", &aborts_,
                         "transfers cancelled by the kernel");
    statGroup_.addHistogram("initiate_us", &initiateUs_,
                            "latch-to-start latency incl. queue wait (us)");
}

bool
UdmaController::systemRequest(bool to_device, Addr mem_addr,
                              Addr dev_offset, std::uint32_t count,
                              std::function<void()> on_complete)
{
    SHRIMP_ASSERT(count > 0, "empty system request");
    Request req;
    req.toDevice = to_device;
    req.memAddr = mem_addr;
    req.devOffset = dev_offset;
    req.count = count;
    req.onDone = std::move(on_complete);
    if (engine_.busy() && systemQueue_.size() >= systemQueueDepth_)
        return false;
    // Kernel-initiated transfers have no STORE/LOAD pair; the span
    // opens and starts at submission.
    req.spanId = span::registry().open(eq_.now(), ownerName_, count);
    req.latchTick = eq_.now();
    span::registry().start(eq_.now(), req.spanId, to_device);
    if (!engine_.busy()) {
        startRequest(req);
        return true;
    }
    addPageRefs(req, +1);
    systemQueue_.push_back(std::move(req));
    return true;
}

void
UdmaController::proxyStore(const vm::Decoded &decoded, Addr paddr,
                           std::int64_t value)
{
    SHRIMP_ASSERT(decoded.space == vm::Space::MemProxy
                      || decoded.space == vm::Space::DevProxy,
                  "non-proxy cycle routed to UDMA controller");
    if (value <= 0) {
        // Inval event: a non-positive (invalid) nbytes.
        inval();
        return;
    }
    if (queueDepth_ == 0 && engine_.busy()) {
        // Basic hardware: a Store in the Transferring state causes no
        // state transition and the registers are in use; the cycle is
        // absorbed. The user's follow-up LOAD will report
        // TRANSFERRING and the process retries (Section 5).
        return;
    }
    if (pending_.valid && pending_.spanId) {
        // A newer STORE overwrites the latched destination.
        span::registry().close(eq_.now(), pending_.spanId,
                               span::Outcome::Replaced);
    }
    pending_.valid = true;
    pending_.paddr = paddr;
    pending_.decoded = decoded;
    // COUNT register width bounds the request; page clamping happens
    // at initiation.
    pending_.count = std::uint32_t(
        std::min<std::int64_t>(value, 0xffffff));
    pending_.latchTick = eq_.now();
    pending_.ownerPid = ownerProbe_ ? ownerProbe_() : invalidPid;
    pending_.spanId =
        span::registry().open(eq_.now(), ownerName_, pending_.count);
}

void
UdmaController::inval()
{
    if (pending_.valid) {
        if (pending_.spanId)
            span::registry().close(eq_.now(), pending_.spanId,
                                   span::Outcome::Inval);
        pending_ = PendingDest();
        ++invals_;
        trace::log(eq_.now(), trace::Category::Dma, "udma", deviceIndex_,
                   ": Inval cleared a latched destination");
    }
    // A running transfer and queued requests are unaffected: "Once
    // started, a UDMA transfer continues regardless of whether the
    // process that started it is de-scheduled."
}

std::uint64_t
UdmaController::proxyLoad(const vm::Decoded &decoded, Addr paddr)
{
    SHRIMP_ASSERT(decoded.space == vm::Space::MemProxy
                      || decoded.space == vm::Space::DevProxy,
                  "non-proxy cycle routed to UDMA controller");
    ++statusLoads_;

    Status st;
    st.initiationFailed = true;

    bool initiated = false;
    if (pending_.valid && (queueDepth_ > 0 || !engine_.busy())) {
        tryInitiate(decoded, paddr, st);
        initiated = !st.initiationFailed;
    }

    // Flags reflecting the state *after* any transition, per the
    // paper's flag definitions.
    State s = state();
    st.transferring = s == State::Transferring;
    st.invalid = s == State::Idle;
    if (s == State::Transferring && matchesInFlight(paddr))
        st.match = true;
    if (initiated) {
        // REMAINING-BYTES of the just-accepted request: the page-
        // clamped count, which user software uses to advance its
        // pointers for the follow-up transfer (Section 8).
        // tryInitiate already stored it.
    } else if (engine_.busy()) {
        st.remainingBytes = engine_.remaining();
    } else if (pending_.valid) {
        st.remainingBytes = pending_.count;
    }
    return st.pack();
}

void
UdmaController::tryInitiate(const vm::Decoded &decoded, Addr paddr,
                            Status &st)
{
    // BadLoad: source in the same proxy region kind as the latched
    // destination => memory-to-memory or device-to-device, which the
    // basic UDMA device does not support. DestLoaded -> Idle.
    if (decoded.space == pending_.decoded.space) {
        if (pending_.spanId)
            span::registry().close(eq_.now(), pending_.spanId,
                                   span::Outcome::BadLoad);
        pending_ = PendingDest();
        st.wrongSpace = true;
        ++badLoads_;
        trace::log(eq_.now(), trace::Category::Dma, "udma", deviceIndex_,
                   ": BadLoad (same proxy region), back to Idle");
        return;
    }

    Request req;
    req.toDevice = pending_.decoded.space == vm::Space::DevProxy;
    req.srcProxy = paddr;
    req.dstProxy = pending_.paddr;
    req.spanId = pending_.spanId;
    req.latchTick = pending_.latchTick;

    Addr mem_addr, dev_offset;
    if (req.toDevice) {
        mem_addr = decoded.offset;        // LOAD named the memory source
        dev_offset = pending_.decoded.offset;
    } else {
        mem_addr = pending_.decoded.offset; // STORE named the memory dest
        dev_offset = decoded.offset;
    }
    req.memAddr = mem_addr;
    req.devOffset = dev_offset;

    // Optimistic page clamping, as in the SHRIMP implementation: the
    // hardware truncates at the first page boundary on either side;
    // user software issues a follow-up transfer if it asked for more.
    std::uint64_t clamp = pending_.count;
    clamp = std::min(clamp, layout_.bytesToPageEnd(mem_addr));
    clamp = std::min(clamp, device_.deviceBoundary(dev_offset));
    req.count = std::uint32_t(clamp);

    std::uint8_t err =
        device_.validateTransfer(req.toDevice, dev_offset, req.count);
    if (err != device_error::none) {
        if (req.spanId)
            span::registry().close(eq_.now(), req.spanId,
                                   span::Outcome::DeviceError);
        pending_ = PendingDest();
        st.deviceError = err;
        return;
    }

    if (!engine_.busy()) {
        pending_ = PendingDest();
        st.initiationFailed = false;
        st.remainingBytes = req.count;
        span::registry().start(eq_.now(), req.spanId, req.toDevice,
                               req.count);
        startRequest(req);
        return;
    }

    // Engine busy: Section 7 queueing.
    if (queue_.size() < queueDepth_) {
        pending_ = PendingDest();
        span::registry().start(eq_.now(), req.spanId, req.toDevice,
                               req.count);
        queue_.push_back(req);
        addPageRefs(req, +1);
        st.initiationFailed = false;
        st.remainingBytes = req.count;
        return;
    }

    // Queue full: the request is refused; the latched destination is
    // retained so the user can retry the LOAD alone.
    st.deviceError = device_error::queueFull;
    ++refusals_;
}

void
UdmaController::startRequest(const Request &req)
{
    inFlight_ = req;
    inFlightValid_ = true;
    addPageRefs(req, +1);
    ++started_;
    initiateUs_.sample(ticksToUs(eq_.now() - req.latchTick));
    trace::log(eq_.now(), trace::Category::Dma, "udma", deviceIndex_,
               ": start ", req.toDevice ? "mem->dev" : "dev->mem",
               " mem=", req.memAddr, " dev=", req.devOffset,
               " count=", req.count);

    TransferDesc desc;
    desc.toDevice = req.toDevice;
    desc.segments = {Segment{req.memAddr, req.count}};
    desc.devOffset = req.devOffset;
    desc.srcProxyAddr = req.srcProxy;
    desc.dstProxyAddr = req.dstProxy;
    desc.onComplete = [this] { engineDone(); };
    engine_.start(std::move(desc));
}

void
UdmaController::engineDone()
{
    SHRIMP_ASSERT(inFlightValid_, "completion with no in-flight request");
    addPageRefs(inFlight_, -1);
    inFlightValid_ = false;
    if (inFlight_.spanId)
        span::registry().close(eq_.now(), inFlight_.spanId,
                               span::Outcome::Completed);
    auto done_cb = std::move(inFlight_.onDone);
    serviceNextRequest();
    if (done_cb)
        done_cb();
    if (completionObserver_)
        completionObserver_();
}

void
UdmaController::serviceNextRequest()
{
    // The system queue has strict priority over user requests
    // (Section 7's two-queue design).
    if (!systemQueue_.empty()) {
        Request next = std::move(systemQueue_.front());
        systemQueue_.pop_front();
        addPageRefs(next, -1);
        startRequest(next);
    } else if (!queue_.empty()) {
        Request next = std::move(queue_.front());
        queue_.pop_front();
        // The queued request already holds a reference; startRequest
        // adds the in-flight one, so drop the queue's.
        addPageRefs(next, -1);
        startRequest(next);
    }
}

bool
UdmaController::abortTransfer()
{
    if (!engine_.busy())
        return false;
    engine_.abort();
    SHRIMP_ASSERT(inFlightValid_, "abort with no in-flight request");
    addPageRefs(inFlight_, -1);
    inFlightValid_ = false;
    if (inFlight_.spanId)
        span::registry().close(eq_.now(), inFlight_.spanId,
                               span::Outcome::Aborted);
    ++aborts_;
    trace::log(eq_.now(), trace::Category::Dma, "udma", deviceIndex_,
               ": transfer aborted by the kernel");
    serviceNextRequest();
    return true;
}

bool
UdmaController::matchesInFlight(Addr paddr) const
{
    if (inFlightValid_
            && (paddr == inFlight_.srcProxy || paddr == inFlight_.dstProxy))
        return true;
    for (const auto &req : queue_) {
        if (paddr == req.srcProxy || paddr == req.dstProxy)
            return true;
    }
    return false;
}

void
UdmaController::addPageRefs(const Request &req, int delta)
{
    Addr first = layout_.pageBase(req.memAddr);
    Addr last = layout_.pageBase(req.memAddr + req.count - 1);
    for (Addr page = first; page <= last; page += layout_.pageBytes()) {
        auto &cnt = pageRefs_[page];
        if (delta > 0) {
            cnt += std::uint32_t(delta);
        } else {
            SHRIMP_ASSERT(cnt >= std::uint32_t(-delta),
                          "page refcount underflow");
            cnt -= std::uint32_t(-delta);
            if (cnt == 0)
                pageRefs_.erase(page);
        }
    }
}

bool
UdmaController::pageBusy(Addr page_base) const
{
    return pageRefCount(page_base) > 0;
}

std::uint32_t
UdmaController::pageRefCount(Addr page_base) const
{
    auto it = pageRefs_.find(page_base);
    return it == pageRefs_.end() ? 0 : it->second;
}

bool
UdmaController::destLoadedPage(Addr &page_base_out) const
{
    if (pending_.valid && pending_.decoded.space == vm::Space::MemProxy) {
        page_base_out = layout_.pageBase(pending_.decoded.offset);
        return true;
    }
    return false;
}

} // namespace shrimp::dma
