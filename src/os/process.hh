/**
 * @file
 * A simulated user process: an address space plus a coroutine body.
 */

#ifndef SHRIMP_OS_PROCESS_HH
#define SHRIMP_OS_PROCESS_HH

#include <coroutine>
#include <cstdint>
#include <string>
#include <vector>

#include <functional>
#include <memory>

#include "os/user_op.hh"
#include "sim/coro.hh"
#include "sim/types.hh"
#include "vm/page_table.hh"

namespace shrimp::os
{

class Kernel;
class OpAwaitable;
class UserContext;

/**
 * A user program: a coroutine body taking the process's context. The
 * Process owns this callable for its whole life, because a coroutine
 * created from a lambda stores only a *reference* to the closure —
 * the closure object (and hence the captures) must outlive the frame.
 */
using UserProgram = std::function<sim::ProcTask(UserContext &)>;

/** Scheduler states. */
enum class ProcState
{
    Embryo,  ///< created, never run
    Ready,   ///< runnable, waiting for the CPU
    Running, ///< owns the CPU
    Blocked, ///< waiting for an event (e.g. a kernel DMA interrupt)
    Zombie,  ///< exited (or killed); kept for inspection
};

/** A virtual memory region granted to the process. */
struct VmRegion
{
    Addr base = 0;
    std::uint64_t len = 0;
    bool writable = true;
};

/** One simulated process. */
class Process
{
  public:
    Process(Kernel &kernel, Pid pid, std::string name);
    ~Process();

    Process(const Process &) = delete;
    Process &operator=(const Process &) = delete;

    Pid pid() const { return pid_; }
    const std::string &name() const { return name_; }
    ProcState state() const { return state_; }
    bool killed() const { return killed_; }
    const std::string &killReason() const { return killReason_; }

    vm::PageTable &pageTable() { return pageTable_; }
    const vm::PageTable &pageTable() const { return pageTable_; }

    /** The region containing @p va, or nullptr. */
    const VmRegion *
    regionFor(Addr va) const
    {
        for (const auto &r : regions_) {
            if (va >= r.base && va < r.base + r.len)
                return &r;
        }
        return nullptr;
    }

    /** Ticks this process has spent as the running process. */
    Tick cpuTicks() const { return cpuTicks_; }

    /** Times this process was preempted by quantum expiry. */
    std::uint64_t preemptions() const { return preemptions_; }

    /** Propagate any exception out of the process body (tests). */
    void rethrowIfFailed() const { task_.rethrowIfFailed(); }

    /** True once the coroutine body has run to completion. */
    bool exited() const { return task_.valid() && task_.done(); }

  private:
    friend class Kernel;
    friend class OpAwaitable;
    friend class UserContext;

    Kernel &kernel_;
    Pid pid_;
    std::string name_;
    ProcState state_ = ProcState::Embryo;
    vm::PageTable pageTable_;
    std::vector<VmRegion> regions_;
    Addr nextRegionBase_ = 0x10000;

    std::unique_ptr<UserContext> ctx_;
    UserProgram program_;
    sim::ProcTask task_;
    bool started_ = false;
    std::coroutine_handle<> resumePoint_;
    UserOp *pendingOp_ = nullptr;

    bool killed_ = false;
    std::string killReason_;
    /** A wake() arrived before the block took effect (the classic
     *  sleep/wakeup race); consume it instead of blocking. */
    bool wakePending_ = false;

    Tick cpuTicks_ = 0;
    Tick lastDispatch_ = 0;
    std::uint64_t preemptions_ = 0;
};

} // namespace shrimp::os

#endif // SHRIMP_OS_PROCESS_HH
