/**
 * @file
 * Proxy-translation cache for the UDMA initiation path.
 *
 * The paper's whole point is that initiating a transfer is two user
 * memory references — PROXY(v) stores — so the simulator's hot path is
 * translating those proxy virtual addresses over and over. This cache
 * memoizes PROXY(v) -> PTE on the kernel's issue path, skipping the
 * MMU's TLB probe and page-table walk for repeat references.
 *
 * It is a model-level (host-side) cache: a hit is architecturally
 * equivalent to a warm TLB hit and charges no extra simulated time.
 *
 * Coherence contract (invariant I2): entries point at PTE nodes inside
 * the owning process's page table (node-based storage, so the pointers
 * are stable across unrelated inserts). Permission bits are re-read on
 * every hit, so in-place PTE mutations (I3 write-protect, write
 * upgrades) need no invalidation. The only hazard is PTE *removal*:
 * the kernel invalidates the cache on exactly the paths that remove
 * proxy PTEs — the I2 shootdown (Kernel::invalidateProxyMappings) and
 * process-memory release. The invariant auditor cross-checks every
 * entry against the page table by pointer equality, and the
 * no-tcache-shootdown seeded mutation demonstrates the counterexample.
 */

#ifndef SHRIMP_OS_PROXY_TCACHE_HH
#define SHRIMP_OS_PROXY_TCACHE_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>

#include "sim/types.hh"
#include "vm/page_table.hh"

namespace shrimp::os
{

/** Direct-mapped (pid, vpn) -> PTE cache; see the file comment. */
class ProxyTranslationCache
{
  public:
    /** One cached translation; pte == nullptr means empty. */
    struct Entry
    {
        Pid pid = invalidPid;
        std::uint64_t vpn = 0;
        vm::Pte *pte = nullptr;
    };

    /** Direct-mapped size; power of two. */
    static constexpr std::size_t numEntries = 256;

    /**
     * Probe for (pid, vpn). Returns the cached PTE only if it is
     * present, valid, user-accessible, and writable when @p is_write —
     * permission bits are re-read from the PTE on every hit, so
     * in-place downgrades (I3 write-protect) take effect immediately.
     * Counts a hit only when it returns non-null; misses are counted
     * by insert(), so memory (non-proxy) traffic never dilutes the
     * hit rate.
     */
    vm::Pte *
    lookup(Pid pid, std::uint64_t vpn, bool is_write)
    {
        Entry &e = slots_[index(pid, vpn)];
        if (e.pte && e.pid == pid && e.vpn == vpn && e.pte->valid
                && e.pte->user && (!is_write || e.pte->writable)) {
            ++hits_;
            return e.pte;
        }
        return nullptr;
    }

    /** Record a translation the slow path just resolved. */
    void
    insert(Pid pid, std::uint64_t vpn, vm::Pte *pte)
    {
        ++misses_;
        slots_[index(pid, vpn)] = Entry{pid, vpn, pte};
    }

    /** Drop (pid, vpn) — the PTE is about to be removed (I2). */
    void
    invalidate(Pid pid, std::uint64_t vpn)
    {
        Entry &e = slots_[index(pid, vpn)];
        if (e.pte && e.pid == pid && e.vpn == vpn)
            e.pte = nullptr;
    }

    /** Drop every entry of one process (exit/kill). */
    void
    invalidatePid(Pid pid)
    {
        for (Entry &e : slots_) {
            if (e.pid == pid)
                e.pte = nullptr;
        }
    }

    /** Drop everything. */
    void
    clear()
    {
        for (Entry &e : slots_)
            e.pte = nullptr;
    }

    /** Visit every occupied entry (invariant auditing). */
    void
    forEach(const std::function<void(const Entry &)> &fn) const
    {
        for (const Entry &e : slots_) {
            if (e.pte)
                fn(e);
        }
    }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

  private:
    static std::size_t
    index(Pid pid, std::uint64_t vpn)
    {
        // Cheap mix; pid in the high bits so processes sharing vpn
        // ranges don't collide systematically.
        std::uint64_t h = vpn ^ (std::uint64_t(pid) << 7);
        h ^= h >> 11;
        return std::size_t(h) & (numEntries - 1);
    }

    std::array<Entry, numEntries> slots_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace shrimp::os

#endif // SHRIMP_OS_PROXY_TCACHE_HH
