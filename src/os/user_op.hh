/**
 * @file
 * The operations a simulated user program can perform.
 *
 * Every operation is awaited from inside a process coroutine; the
 * suspension points are exactly where context switches may occur, so
 * the paper's atomicity concern (a switch between the initiating STORE
 * and LOAD) is directly expressible and testable.
 */

#ifndef SHRIMP_OS_USER_OP_HH
#define SHRIMP_OS_USER_OP_HH

#include <cstdint>
#include <functional>

#include "sim/types.hh"

namespace shrimp::os
{

class Kernel;
class Process;

/** Result handed back to the coroutine by await_resume. */
struct OpResult
{
    /** Loaded value (loads and some syscalls). */
    std::uint64_t value = 0;
};

/** Control block a syscall implementation fills in. */
struct SyscallControl
{
    /** Extra kernel-time latency beyond the trap cost. */
    Tick extraLatency = 0;
    /** Return value delivered to the user. */
    std::uint64_t result = 0;
    /** If true, the process blocks; a later wake() delivers result2. */
    bool blocks = false;
};

/** One user-level operation. */
struct UserOp
{
    enum class Kind
    {
        Load,    ///< 64-bit load from a virtual address
        Store,   ///< 64-bit store to a virtual address
        Compute, ///< retire N instructions (cached work)
        Yield,   ///< voluntarily give up the CPU
        Syscall, ///< trap into the kernel
    };

    Kind kind = Kind::Compute;
    Addr vaddr = 0;
    std::uint64_t value = 0; ///< store datum / instruction count
    /** Syscall body, run in kernel context at dispatch time. */
    std::function<void(Kernel &, Process &, SyscallControl &)> syscall;

    OpResult result;
};

} // namespace shrimp::os

#endif // SHRIMP_OS_USER_OP_HH
