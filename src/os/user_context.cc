#include "os/user_context.hh"

#include "os/kernel.hh"
#include "os/process.hh"

namespace shrimp::os
{

void
OpAwaitable::await_suspend(std::coroutine_handle<> h)
{
    proc_.kernel_.issueOp(proc_, &op_, h);
}

OpAwaitable
UserContext::sysAllocMemory(std::uint64_t bytes, bool writable)
{
    return syscall(
        [bytes, writable](Kernel &k, Process &p, SyscallControl &sc) {
            sc.extraLatency = k.params().instrTicks(120);
            sc.result = k.allocRegion(p, bytes, writable);
        });
}

OpAwaitable
UserContext::sysMapDeviceProxy(unsigned device, std::uint64_t first_page,
                               std::uint64_t n_pages, bool writable)
{
    return syscall([device, first_page, n_pages, writable](
                       Kernel &k, Process &p, SyscallControl &sc) {
        Tick lat = 0;
        sc.result = k.mapDeviceProxy(p, device, first_page, n_pages,
                                     writable, lat);
        sc.extraLatency = lat;
    });
}

Addr
UserContext::proxyAddr(Addr va, unsigned device) const
{
    return kernel_.layout().proxy(va, device);
}

std::uint32_t
UserContext::pageBytes() const
{
    return kernel_.layout().pageBytes();
}

} // namespace shrimp::os
