#include "os/process.hh"

#include "os/user_context.hh"

namespace shrimp::os
{

Process::Process(Kernel &kernel, Pid pid, std::string name)
    : kernel_(kernel), pid_(pid), name_(std::move(name))
{}

// Out of line so unique_ptr<UserContext> sees the complete type.
Process::~Process() = default;

} // namespace shrimp::os
