/**
 * @file
 * The per-node operating system kernel.
 *
 * Implements exactly the support the paper's Section 6 asks of the OS,
 * on top of a conventional process/VM substrate:
 *
 *  - I1 (atomicity): the context-switch path issues a hardware Inval
 *    (one STORE of a negative byte count) to every UDMA controller, so
 *    a partially-initiated (STORE without LOAD) sequence can never be
 *    completed by another process.
 *  - I2 (mapping consistency): memory-proxy mappings are created on
 *    demand by the page-fault handler, only when the corresponding
 *    real mapping is valid, and are invalidated whenever the real
 *    mapping changes (page-out, exit).
 *  - I3 (content consistency): a proxy page is writable only if its
 *    real page is dirty; a write fault on a read-only proxy page marks
 *    the real page dirty and upgrades the proxy mapping; cleaning a
 *    page write-protects the proxy mapping again.
 *  - I4 (register consistency): the pageout path queries every UDMA
 *    controller (registers + Section 7 queue/reference counts) and
 *    never evicts a page involved in a transfer; a latched-but-unfired
 *    DESTINATION is cleared with an Inval, as the paper allows.
 *
 * The kernel also provides the services the *traditional* DMA baseline
 * needs — per-page translation, pinning, scatter list construction,
 * blocking, and interrupt wakeups — so the baseline's cost structure
 * (syscall + translate + pin + descriptor + interrupt + unpin) is
 * built from the same primitives.
 */

#ifndef SHRIMP_OS_KERNEL_HH
#define SHRIMP_OS_KERNEL_HH

#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bus/io_bus.hh"
#include "dma/udma_controller.hh"
#include "mem/backing_store.hh"
#include "mem/physical_memory.hh"
#include "os/process.hh"
#include "os/proxy_tcache.hh"
#include "os/user_context.hh"
#include "os/user_op.hh"
#include "sim/coro.hh"
#include "sim/event_queue.hh"
#include "sim/params.hh"
#include "sim/stats.hh"
#include "vm/mmu.hh"

namespace shrimp::os
{

/**
 * Kernel events the invariant auditor can hook (check/monitor.hh).
 * Fired synchronously at the points where the Section 6 invariants
 * must hold: after a context switch, after a page fault is repaired,
 * after a page-out, and (via the controller's completion observer)
 * after a DMA completion.
 */
enum class KernelEvent
{
    ContextSwitch,
    PageFault,
    PageOut,
    DmaComplete,
};

const char *kernelEventName(KernelEvent ev);

/**
 * Seeded-mutation knobs for the invariant checker: each switch
 * disables exactly one of the kernel actions that maintain a Section 6
 * invariant, so the auditor and the model checker can demonstrate the
 * corresponding counterexample. All default off; production code never
 * sets them.
 */
struct MutationKnobs
{
    /** I1: do not Inval controllers on a context switch. */
    bool skipInvalOnSwitch = false;
    /** I2: leave proxy mappings standing when the real page goes. */
    bool skipProxyShootdown = false;
    /** I3: do not write-protect proxy mappings when cleaning. */
    bool skipProxyWriteProtect = false;
    /** I4: evict pages even while a transfer references them. */
    bool ignoreI4PageBusy = false;
    /** I2: leave proxy-translation-cache entries standing when the
     *  proxy PTE they point at is shot down. */
    bool skipTcacheShootdown = false;

    bool
    any() const
    {
        return skipInvalOnSwitch || skipProxyShootdown
               || skipProxyWriteProtect || ignoreI4PageBusy
               || skipTcacheShootdown;
    }
};

/**
 * Which of the paper's two content-consistency schemes the kernel
 * runs (Section 6, "Maintaining I3").
 */
enum class I3Policy
{
    /** The main scheme: a proxy page is writable only while the real
     *  page is dirty; cleaning write-protects the proxy. */
    WriteProtectProxy,
    /** The paper's alternative: proxy pages carry their own dirty
     *  bits and a page counts as dirty "if either vmem_page or
     *  PROXY(vmem_page) is dirty" — simpler invariant, more paging
     *  code. */
    ProxyDirtyBits,
};

/** The kernel of one node. */
class Kernel
{
  public:
    Kernel(sim::EventQueue &eq, const sim::MachineParams &params,
           const vm::AddressLayout &layout, mem::PhysicalMemory &memory,
           bus::IoBus &io_bus, vm::Mmu &mmu);
    ~Kernel();

    Kernel(const Kernel &) = delete;
    Kernel &operator=(const Kernel &) = delete;

    // ------------------------------------------------- configuration
    /** Register a UDMA controller for Inval/I4 interactions. */
    void attachController(dma::UdmaController *ctrl);

    /**
     * Register a bus snooper invoked (functionally) on every memory
     * store the CPU performs — how the SHRIMP board's automatic
     * update captures writes to bound pages. Returns true if the
     * store was captured (for statistics only; the store always also
     * hits memory).
     */
    using StoreSnooper = std::function<bool(Addr, std::uint64_t)>;
    void
    addStoreSnooper(StoreSnooper fn)
    {
        snoopers_.push_back(std::move(fn));
    }

    /**
     * Register a mappable device-proxy window for a non-UDMA device
     * (e.g. the memory-mapped FIFO NIC baseline). UDMA controllers
     * get their window registered by attachController.
     */
    void registerDeviceWindow(
        unsigned device, std::uint64_t extent_bytes,
        std::function<bool(std::uint64_t, std::uint64_t, bool)> allow =
            {});

    const std::vector<dma::UdmaController *> &
    controllers() const
    {
        return controllers_;
    }

    /** Select the Section 6 content-consistency scheme (set before
     *  any proxy mappings exist). */
    void setI3Policy(I3Policy p) { i3Policy_ = p; }
    I3Policy i3Policy() const { return i3Policy_; }

    /** Seeded-mutation knobs (invariant checker only; see
     *  MutationKnobs). */
    void setMutations(const MutationKnobs &m) { mutations_ = m; }
    const MutationKnobs &mutations() const { return mutations_; }

    /**
     * Install the invariant-audit hook, fired synchronously at every
     * KernelEvent point. One slot; pass an empty function to detach.
     */
    using AuditHook = std::function<void(KernelEvent)>;
    void setAuditHook(AuditHook hook) { auditHook_ = std::move(hook); }

    // ---------------------------------------------- process lifecycle
    /** Create a process; it becomes runnable immediately. */
    Process &spawn(std::string name, UserProgram program);

    /** Look up a process. */
    Process *findProcess(Pid pid);

    /** True when every spawned process has exited or been killed. */
    bool allProcessesDone() const;

    /** Rethrow the first failure captured in any process body. */
    void rethrowProcessFailures() const;

    // --------------------------------------------------- CPU interface
    /** Called by OpAwaitable::await_suspend; drives everything. */
    void issueOp(Process &proc, UserOp *op, std::coroutine_handle<> h);

    /** The currently running process (nullptr if the CPU is idle). */
    Process *running() const { return running_; }

    /**
     * The process on whose behalf the CPU is acting right now: the
     * running process, or the actor of a synchronous
     * performUserAccess. Controllers use this (via their owner probe)
     * to tag latched destinations for the invariant auditor.
     */
    Process *
    actor() const
    {
        return actorOverride_ ? actorOverride_ : running_;
    }

    /** Wake a Blocked process (keeps the syscall's result value). */
    void wake(Process &proc);

    /** Wake a Blocked process, overwriting its syscall result. */
    void wakeWithResult(Process &proc, std::uint64_t result);

    // ------------------------------------------------ syscall services
    /** Region allocation (named syscall body). */
    Addr allocRegion(Process &proc, std::uint64_t bytes, bool writable);

    /** Device-proxy mapping (named syscall body). Returns base va. */
    Addr mapDeviceProxy(Process &proc, unsigned device,
                        std::uint64_t first_page, std::uint64_t n_pages,
                        bool writable, Tick &lat);

    /**
     * Traditional-DMA support: translate a user range into physical
     * segments, faulting pages in as needed. Returns false (and kills
     * nothing) if the range is not fully accessible.
     */
    bool buildDmaSegments(Process &proc, Addr va, std::uint32_t nbytes,
                          bool for_write,
                          std::vector<dma::Segment> &out, Tick &lat);

    /** Pin/unpin every frame backing [va, va+nbytes). */
    bool pinRange(Process &proc, Addr va, std::uint32_t nbytes,
                  Tick &lat);
    void unpinRange(Process &proc, Addr va, std::uint32_t nbytes);

    /**
     * Export a page for incoming network DMA: fault it in, pin it,
     * mark it dirty, and return its physical address. Used by the
     * SHRIMP mapping control plane.
     */
    bool exportPage(Process &proc, Addr va, Addr &paddr_out, Tick &lat);

    // --------------------------------------------------- page daemon
    /**
     * Clean one page (write to backing store, clear dirty,
     * write-protect its proxy mappings). Refuses — returning false —
     * if a DMA involving the page is in progress (the paper's race
     * rule in Section 6, "Maintaining I3").
     */
    bool cleanPage(Process &proc, Addr va, Tick &lat);

    /**
     * Force one frame eviction (as if under memory pressure). Returns
     * true if a victim was found. Respects I2/I3/I4.
     */
    bool evictOneFrame(Tick &lat);

    /** Number of free physical frames. */
    std::size_t freeFrames() const { return freeFrames_.size(); }

    // ----------------------------------------- backdoor (tests/bench)
    /** Untimed functional write into a process's address space. */
    void pokeBytes(Process &proc, Addr va, const void *src,
                   std::uint64_t len);

    /** Untimed functional read from a process's address space. */
    void peekBytes(Process &proc, Addr va, void *dst, std::uint64_t len);

    // -------------------------------- model-checker CPU (tools/tests)
    /** Outcome of one synchronous user access. */
    struct UserAccess
    {
        bool ok = false;     ///< the access completed
        bool killed = false; ///< the fault path killed the process
        std::uint64_t value = 0; ///< loaded value (loads only)
    };

    /**
     * Perform one user LOAD/STORE synchronously and untimed, running
     * the full MMU-translate / fault-repair / proxy-dispatch path of
     * issueOp. The process must be the current address space (use
     * modelSwitchTo). This is how tools/udma_model_check drives
     * arbitrary STORE/LOAD interleavings without the scheduler.
     */
    UserAccess performUserAccess(Process &proc, Addr va, bool is_write,
                                 std::uint64_t value = 0);

    /**
     * Architectural essentials of a context switch, synchronously:
     * the per-controller Inval STOREs (invariant I1) and the address
     * space activation. Scheduler bookkeeping (queues, quanta) is not
     * touched; checker/test use only.
     */
    void modelSwitchTo(Process &proc);

    /**
     * Page the frame backing (proc, va) out right now, as the page
     * daemon would under memory pressure targeting this page.
     * Respects pins and invariant I4 exactly like evictOneFrame;
     * returns false if the page is not resident or must stay.
     */
    bool evictPage(Process &proc, Addr va, Tick &lat);

    /** Visit every process, in pid order (auditing). */
    void forEachProcess(const std::function<void(Process &)> &fn);

    /** Frame bookkeeping for replacement and I4. */
    struct FrameInfo
    {
        bool used = false;
        Pid pid = invalidPid;
        std::uint64_t vpn = 0;
        std::uint32_t pinCount = 0;
    };

    /** Read-only frame-table view (auditing). */
    const FrameInfo &
    frameInfo(std::uint64_t frame) const
    {
        return frames_.at(frame);
    }

    /** Clock-hand position of the replacement scan (state hashing). */
    std::size_t clockHand() const { return clockHand_; }

    // ------------------------------------------------------ accessors
    sim::EventQueue &eq() { return eq_; }
    /** The proxy-translation cache on the UDMA initiation path. */
    const ProxyTranslationCache &proxyTcache() const { return tcache_; }
    const sim::MachineParams &params() const { return params_; }
    const vm::AddressLayout &layout() const { return layout_; }
    mem::PhysicalMemory &memory() { return memory_; }
    bus::IoBus &ioBus() { return ioBus_; }
    vm::Mmu &mmu() { return mmu_; }
    mem::BackingStore &backingStore() { return backing_; }

    // ------------------------------------------------------ statistics
    std::uint64_t contextSwitches() const
    {
        return std::uint64_t(switches_.value());
    }
    std::uint64_t pageFaults() const
    {
        return std::uint64_t(memFaults_.value());
    }
    std::uint64_t proxyFaults() const
    {
        return std::uint64_t(proxyFaults_.value());
    }
    std::uint64_t proxyWriteUpgrades() const
    {
        return std::uint64_t(proxyUpgrades_.value());
    }
    std::uint64_t evictions() const
    {
        return std::uint64_t(evictions_.value());
    }
    std::uint64_t evictionI4Skips() const
    {
        return std::uint64_t(i4Skips_.value());
    }
    std::uint64_t processesKilled() const
    {
        return std::uint64_t(kills_.value());
    }

    /** I1: context-switch Inval STOREs issued to controllers. */
    std::uint64_t i1Invals() const
    {
        return std::uint64_t(i1Invals_.value());
    }
    /** I2: proxy PTEs removed because the real mapping changed. */
    std::uint64_t i2Shootdowns() const
    {
        return std::uint64_t(i2Shootdowns_.value());
    }
    /** I3: proxy write faults that marked the real page dirty. */
    std::uint64_t i3DirtyFaults() const
    {
        return std::uint64_t(i3DirtyFaults_.value());
    }

    /** Fault-handler latency samples (us). */
    const stats::Histogram &faultLatency() const { return faultUs_; }

    /** The kernel's registered stats ("kernel.*"). */
    const stats::StatGroup &statGroup() const { return statGroup_; }

  private:
    /** What to do with the process once its op's latency elapses. */
    enum class After
    {
        Resume,
        Yield,
        Block,
        Kill,
    };

    struct FaultOutcome
    {
        Tick latency = 0;
        bool killed = false;
    };

    void opDone(Process &proc, After after);
    void dispatch();
    void resumeProcess(Process &proc);
    void onProcessExit(Process &proc);
    void finalizeKill(Process &proc);
    void requeue(Process &proc);
    void cancelQuantum();
    void armQuantum(Process &proc);

    FaultOutcome handleFault(Process &proc, Addr va, bool is_write,
                             vm::Fault fault);
    FaultOutcome handleMemFault(Process &proc, Addr va, bool is_write,
                                vm::Fault fault);
    FaultOutcome handleProxyFault(Process &proc, Addr va,
                                  unsigned device, Addr real_va,
                                  bool is_write, vm::Fault fault);

    /** Fault a real page in (demand-zero or swap-in). */
    bool ensureResident(Process &proc, Addr va, bool for_write,
                        Tick &lat);

    /** Allocate a frame, evicting if necessary. */
    bool allocFrame(Pid pid, std::uint64_t vpn, std::uint64_t &frame,
                    Tick &lat);

    /** Evict a specific frame (already chosen). */
    void evictFrame(std::uint64_t frame, Tick &lat);

    /** Is this physical page involved in any controller's transfers? */
    bool pageBusyAnywhere(Addr page_base) const;

    /** Remove the proxy mappings of (proc, real vpn) for all devices
     *  — invariant I2. */
    void invalidateProxyMappings(Process &proc, std::uint64_t real_vpn);

    /** Write-protect the proxy mappings of (proc, real vpn) — I3. */
    void writeProtectProxyMappings(Process &proc,
                                   std::uint64_t real_vpn);

    /** Is the page dirty under the active I3 policy (real dirty bit,
     *  or any proxy dirty bit under ProxyDirtyBits)? */
    bool pageConsideredDirty(Process &proc, std::uint64_t real_vpn,
                             const vm::Pte &real_pte) const;

    /** Clear every dirty indication for the page (after cleaning). */
    void clearPageDirty(Process &proc, std::uint64_t real_vpn,
                        vm::Pte &real_pte);

    void releaseProcessMemory(Process &proc);

    void killProcess(Process &proc, std::string reason);

    /** Fire the invariant-audit hook, if one is installed. */
    void
    fireAuditHook(KernelEvent ev)
    {
        if (auditHook_)
            auditHook_(ev);
    }

    sim::EventQueue &eq_;
    const sim::MachineParams &params_;
    const vm::AddressLayout &layout_;
    mem::PhysicalMemory &memory_;
    bus::IoBus &ioBus_;
    vm::Mmu &mmu_;
    mem::BackingStore backing_;

    std::vector<dma::UdmaController *> controllers_;
    std::vector<StoreSnooper> snoopers_;
    I3Policy i3Policy_ = I3Policy::WriteProtectProxy;
    ProxyTranslationCache tcache_;
    MutationKnobs mutations_;
    AuditHook auditHook_;
    /** Actor of an in-progress performUserAccess (else nullptr). */
    Process *actorOverride_ = nullptr;

    struct DeviceWindow
    {
        std::uint64_t extentBytes = 0;
        std::function<bool(std::uint64_t, std::uint64_t, bool)> allow;
    };
    std::map<unsigned, DeviceWindow> windows_;

    std::map<Pid, std::unique_ptr<Process>> procs_;
    Pid nextPid_ = 1;
    std::deque<Process *> readyQueue_;
    Process *running_ = nullptr;
    bool dispatchPending_ = false;
    bool preemptPending_ = false;
    sim::EventHandle quantumEvent_;

    std::vector<FrameInfo> frames_;
    std::vector<std::uint64_t> freeFrames_;
    std::size_t clockHand_ = 0;

    stats::Scalar switches_;
    stats::Scalar memFaults_;
    stats::Scalar proxyFaults_;
    stats::Scalar proxyUpgrades_;
    stats::Scalar evictions_;
    stats::Scalar i4Skips_;
    stats::Scalar kills_;
    /** Invariant-event counters (Section 6). */
    stats::Scalar i1Invals_;
    stats::Scalar i2Shootdowns_;
    stats::Scalar i3DirtyFaults_;
    /** Fault-handler latency, microseconds. */
    stats::Histogram faultUs_{0, 64, 16};
    stats::Formula freeFramesNow_;
    stats::StatGroup statGroup_{"kernel"};
};

} // namespace shrimp::os

#endif // SHRIMP_OS_KERNEL_HH
