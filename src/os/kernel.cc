#include "os/kernel.hh"

#include <algorithm>

#include "sim/trace.hh"

namespace shrimp::os
{

const char *
kernelEventName(KernelEvent ev)
{
    switch (ev) {
      case KernelEvent::ContextSwitch: return "context-switch";
      case KernelEvent::PageFault: return "page-fault";
      case KernelEvent::PageOut: return "page-out";
      case KernelEvent::DmaComplete: return "dma-complete";
    }
    return "?";
}

Kernel::Kernel(sim::EventQueue &eq, const sim::MachineParams &params,
               const vm::AddressLayout &layout,
               mem::PhysicalMemory &memory, bus::IoBus &io_bus,
               vm::Mmu &mmu)
    : eq_(eq), params_(params), layout_(layout), memory_(memory),
      ioBus_(io_bus), mmu_(mmu), backing_(layout.pageBytes()),
      frames_(memory.frames())
{
    freeFrames_.reserve(memory.frames());
    // Hand frames out low-to-high for reproducibility.
    for (std::uint64_t f = memory.frames(); f > 0; --f)
        freeFrames_.push_back(f - 1);

    freeFramesNow_ = [this] { return double(freeFrames_.size()); };
    statGroup_.addScalar("contextSwitches", &switches_,
                         "dispatches of a new process");
    statGroup_.addScalar("pageFaults", &memFaults_,
                         "real-memory page faults");
    statGroup_.addScalar("proxyFaults", &proxyFaults_,
                         "memory-proxy page faults");
    statGroup_.addScalar("proxyWriteUpgrades", &proxyUpgrades_,
                         "I3 write-upgrade faults");
    statGroup_.addScalar("evictions", &evictions_, "frames evicted");
    statGroup_.addScalar("evictionI4Skips", &i4Skips_,
                         "eviction victims skipped for I4");
    statGroup_.addScalar("processesKilled", &kills_,
                         "processes killed by the kernel");
    statGroup_.addScalar("i1_invals", &i1Invals_,
                         "I1 context-switch Inval STOREs");
    statGroup_.addScalar("i2_shootdowns", &i2Shootdowns_,
                         "I2 proxy-mapping shootdowns");
    statGroup_.addScalar("i3_dirty_faults", &i3DirtyFaults_,
                         "I3 proxy write faults dirtying the real page");
    statGroup_.addHistogram("fault_us", &faultUs_,
                            "fault-handler latency (us)");
    statGroup_.addFormula("freeFrames", &freeFramesNow_,
                          "free physical frames");
}

Kernel::~Kernel() = default;

void
Kernel::attachController(dma::UdmaController *ctrl)
{
    SHRIMP_ASSERT(ctrl, "null controller");
    controllers_.push_back(ctrl);
    // Debug-only owner tagging for the invariant auditor: record which
    // process issued the latching STORE. The architectural controller
    // stays process-blind (protection still comes from the MMU + I1).
    ctrl->setOwnerProbe([this] {
        Process *p = actor();
        return p ? p->pid() : invalidPid;
    });
    const dma::UdmaDevice &dev = ctrl->device();
    registerDeviceWindow(
        ctrl->deviceIndex(), dev.proxyExtentBytes(),
        [&dev](std::uint64_t first, std::uint64_t n, bool writable) {
            return dev.allowProxyMap(first, n, writable);
        });
}

void
Kernel::registerDeviceWindow(
    unsigned device, std::uint64_t extent_bytes,
    std::function<bool(std::uint64_t, std::uint64_t, bool)> allow)
{
    windows_[device] = DeviceWindow{extent_bytes, std::move(allow)};
}

// --------------------------------------------------------------------
// Process lifecycle
// --------------------------------------------------------------------

Process &
Kernel::spawn(std::string name, UserProgram program)
{
    Pid pid = nextPid_++;
    auto owned = std::make_unique<Process>(*this, pid, std::move(name));
    Process &proc = *owned;
    procs_.emplace(pid, std::move(owned));

    proc.ctx_ = std::make_unique<UserContext>(*this, proc);
    // The process must own the program object: the coroutine frame
    // references the closure's captures rather than copying them.
    proc.program_ = std::move(program);
    proc.task_ = proc.program_(*proc.ctx_);
    proc.task_.setOnDone([this, &proc] { onProcessExit(proc); });
    proc.state_ = ProcState::Ready;
    readyQueue_.push_back(&proc);
    dispatch();
    return proc;
}

Process *
Kernel::findProcess(Pid pid)
{
    auto it = procs_.find(pid);
    return it == procs_.end() ? nullptr : it->second.get();
}

bool
Kernel::allProcessesDone() const
{
    for (const auto &[pid, p] : procs_) {
        if (p->state() != ProcState::Zombie)
            return false;
    }
    return true;
}

void
Kernel::rethrowProcessFailures() const
{
    for (const auto &[pid, p] : procs_)
        p->rethrowIfFailed();
}

// --------------------------------------------------------------------
// The CPU: op issue and completion
// --------------------------------------------------------------------

void
Kernel::issueOp(Process &proc, UserOp *op, std::coroutine_handle<> h)
{
    SHRIMP_ASSERT(running_ == &proc,
                  "op issued by a process that does not own the CPU");
    proc.resumePoint_ = h;
    proc.pendingOp_ = op;

    Tick lat = 0;
    After after = After::Resume;
    std::function<void()> functional;

    switch (op->kind) {
      case UserOp::Kind::Compute:
        lat = params_.instrTicks(double(op->value));
        break;

      case UserOp::Kind::Yield:
        lat = params_.instrTicks(10);
        after = After::Yield;
        break;

      case UserOp::Kind::Syscall: {
        lat = params_.instrTicks(params_.syscallInstr);
        SyscallControl sc;
        op->syscall(*this, proc, sc);
        lat += sc.extraLatency;
        op->result.value = sc.result;
        if (proc.killed_)
            after = After::Kill;
        else if (sc.blocks)
            after = After::Block;
        break;
      }

      case UserOp::Kind::Load:
      case UserOp::Kind::Store: {
        bool is_write = op->kind == UserOp::Kind::Store;
        std::uint64_t vpn = layout_.pageOf(op->vaddr);
        vm::TranslateResult tr;
        vm::Pte *cpte = tcache_.lookup(proc.pid_, vpn, is_write);
        if (cpte) {
            // Proxy-translation cache hit: architecturally a warm TLB
            // hit (no extra latency); lookup() already checked the
            // permission bits against the live PTE.
            cpte->referenced = true;
            if (is_write)
                cpte->dirty = true;
            tr.paddr = cpte->frameAddr + layout_.pageOffset(op->vaddr);
            tr.tlbHit = true;
        } else {
            int attempts = 0;
            for (;;) {
                tr = mmu_.translate(op->vaddr, is_write);
                if (!tr.tlbHit)
                    lat += params_.instrTicks(params_.tlbMissCycles);
                if (tr.ok())
                    break;
                auto out =
                    handleFault(proc, op->vaddr, is_write, tr.fault);
                faultUs_.sample(ticksToUs(out.latency));
                fireAuditHook(KernelEvent::PageFault);
                lat += out.latency;
                if (out.killed) {
                    after = After::Kill;
                    break;
                }
                SHRIMP_ASSERT(++attempts < 8,
                              "page-fault livelock at va=", op->vaddr);
            }
        }
        if (after == After::Kill)
            break;

        auto dec = layout_.decode(tr.paddr);
        if (!cpte && dec.space != vm::Space::Memory) {
            // Memoize the proxy translation the slow path resolved.
            if (vm::Pte *pte = proc.pageTable_.lookup(vpn))
                tcache_.insert(proc.pid_, vpn, pte);
        }
        if (dec.space == vm::Space::Memory) {
            lat += params_.memAccess();
            Addr pa = tr.paddr;
            if (is_write) {
                std::uint64_t v = op->value;
                functional = [this, pa, v] {
                    memory_.write<std::uint64_t>(pa, v);
                    // Bus snoopers (automatic update) see the store.
                    for (auto &snoop : snoopers_)
                        (void)snoop(pa, v);
                };
            } else {
                functional = [this, pa, op] {
                    op->result.value =
                        memory_.read<std::uint64_t>(pa);
                };
            }
        } else {
            // Proxy space: an uncached reference across the I/O bus,
            // decoded by the owning UDMA controller.
            bus::ProxyClient *client = ioBus_.client(dec.device);
            if (!client) {
                killProcess(proc, "proxy access to unattached device");
                after = After::Kill;
                break;
            }
            Tick fin =
                ioBus_.acquireAt(eq_.now() + lat, params_.ioAccess());
            lat = fin - eq_.now();
            Addr pa = tr.paddr;
            if (is_write) {
                auto v = std::int64_t(op->value);
                functional = [client, dec, pa, v] {
                    client->proxyStore(dec, pa, v);
                };
            } else {
                functional = [client, dec, pa, op] {
                    op->result.value = client->proxyLoad(dec, pa);
                };
            }
        }
        break;
      }
    }

    eq_.scheduleIn(
        lat, "cpu.op",
        [this, &proc, functional = std::move(functional), after] {
            if (functional)
                functional();
            opDone(proc, after);
        },
        sim::EventPriority::CpuResume);
}

void
Kernel::opDone(Process &proc, After after)
{
    SHRIMP_ASSERT(running_ == &proc,
                  "op completion for a non-running process");

    auto account = [this, &proc] {
        proc.cpuTicks_ += eq_.now() - proc.lastDispatch_;
    };

    switch (after) {
      case After::Kill:
        account();
        finalizeKill(proc);
        running_ = nullptr;
        cancelQuantum();
        dispatch();
        return;

      case After::Block:
        account();
        if (proc.wakePending_) {
            // The wake raced ahead of the block; stay runnable.
            proc.wakePending_ = false;
            requeue(proc);
        } else {
            proc.state_ = ProcState::Blocked;
        }
        running_ = nullptr;
        cancelQuantum();
        dispatch();
        return;

      case After::Yield:
        account();
        requeue(proc);
        running_ = nullptr;
        cancelQuantum();
        dispatch();
        return;

      case After::Resume:
        if (preemptPending_) {
            preemptPending_ = false;
            ++proc.preemptions_;
            account();
            requeue(proc);
            running_ = nullptr;
            cancelQuantum();
            dispatch();
            return;
        }
        auto h = std::exchange(proc.resumePoint_, {});
        SHRIMP_ASSERT(h, "no resume point");
        h.resume();
        return;
    }
}

void
Kernel::dispatch()
{
    if (running_ || dispatchPending_ || readyQueue_.empty())
        return;
    Process *next = readyQueue_.front();
    readyQueue_.pop_front();
    dispatchPending_ = true;
    ++switches_;
    trace::log(eq_.now(), trace::Category::Os, "switch to ",
               next->name(), " (pid ", next->pid(), ")");

    Tick lat = params_.instrTicks(params_.contextSwitchInstr);
    // Invariant I1: invalidate any partially-initiated UDMA sequence
    // with a single STORE (of a negative nbytes) per controller.
    if (!mutations_.skipInvalOnSwitch) {
        for (auto *c : controllers_) {
            c->inval();
            ++i1Invals_;
            lat += params_.ioAccess();
        }
    }
    mmu_.activate(&next->pageTable_);
    fireAuditHook(KernelEvent::ContextSwitch);

    eq_.scheduleIn(
        lat, "kernel.dispatch",
        [this, next] {
            dispatchPending_ = false;
            running_ = next;
            next->state_ = ProcState::Running;
            next->lastDispatch_ = eq_.now();
            armQuantum(*next);
            resumeProcess(*next);
        },
        sim::EventPriority::CpuResume);
}

void
Kernel::resumeProcess(Process &proc)
{
    if (!proc.started_) {
        proc.started_ = true;
        proc.task_.resume();
    } else {
        auto h = std::exchange(proc.resumePoint_, {});
        SHRIMP_ASSERT(h, "resuming process with no suspension point");
        h.resume();
    }
}

void
Kernel::onProcessExit(Process &proc)
{
    // Runs inside the coroutine's final suspend.
    if (running_ == &proc) {
        proc.cpuTicks_ += eq_.now() - proc.lastDispatch_;
        running_ = nullptr;
        cancelQuantum();
    }
    proc.state_ = ProcState::Zombie;
    releaseProcessMemory(proc);
    dispatch();
}

void
Kernel::finalizeKill(Process &proc)
{
    ++kills_;
    proc.state_ = ProcState::Zombie;
    releaseProcessMemory(proc);
    warn("process ", proc.name_, " (pid ", proc.pid_,
         ") killed: ", proc.killReason_);
}

void
Kernel::killProcess(Process &proc, std::string reason)
{
    trace::log(eq_.now(), trace::Category::Os, "kill ", proc.name(),
               ": ", reason);
    proc.killed_ = true;
    proc.killReason_ = std::move(reason);
}

void
Kernel::requeue(Process &proc)
{
    proc.state_ = ProcState::Ready;
    readyQueue_.push_back(&proc);
}

void
Kernel::wake(Process &proc)
{
    if (proc.state_ != ProcState::Blocked) {
        // Interrupt completed before the blocking syscall finished
        // descending: record the wake so the block is skipped.
        proc.wakePending_ = true;
        return;
    }
    requeue(proc);
    dispatch();
}

void
Kernel::wakeWithResult(Process &proc, std::uint64_t result)
{
    SHRIMP_ASSERT(proc.pendingOp_, "no pending op to deliver result to");
    proc.pendingOp_->result.value = result;
    wake(proc);
}

void
Kernel::cancelQuantum()
{
    if (quantumEvent_.valid()) {
        eq_.deschedule(quantumEvent_);
        quantumEvent_ = sim::EventHandle();
    }
}

void
Kernel::armQuantum(Process &proc)
{
    cancelQuantum();
    quantumEvent_ = eq_.scheduleIn(
        params_.quantum(), "kernel.quantum", [this, &proc] {
            quantumEvent_ = sim::EventHandle();
            if (running_ != &proc)
                return;
            if (!readyQueue_.empty())
                preemptPending_ = true;
            else
                armQuantum(proc);
        });
}

// --------------------------------------------------------------------
// Fault handling: invariants I2 and I3
// --------------------------------------------------------------------

Kernel::FaultOutcome
Kernel::handleFault(Process &proc, Addr va, bool is_write,
                    vm::Fault fault)
{
    auto dec = layout_.decode(va);
    switch (dec.space) {
      case vm::Space::Memory:
        return handleMemFault(proc, va, is_write, fault);

      case vm::Space::MemProxy:
        ++proxyFaults_;
        return handleProxyFault(proc, va, dec.device, dec.offset,
                                is_write, fault);

      case vm::Space::DevProxy: {
        FaultOutcome out;
        out.latency = params_.instrTicks(params_.pageFaultInstr);
        out.killed = true;
        killProcess(proc, fault == vm::Fault::Protection
                              ? "write to read-only device proxy page"
                              : "access to unmapped device proxy page");
        return out;
      }

      case vm::Space::Invalid:
      default: {
        FaultOutcome out;
        out.latency = params_.instrTicks(params_.pageFaultInstr);
        out.killed = true;
        killProcess(proc, "access to an address-space hole");
        return out;
      }
    }
}

Kernel::FaultOutcome
Kernel::handleMemFault(Process &proc, Addr va, bool is_write,
                       vm::Fault fault)
{
    ++memFaults_;
    trace::log(eq_.now(), trace::Category::Vm, proc.name(),
               " memory fault at va=", va,
               is_write ? " (write)" : " (read)");
    FaultOutcome out;
    out.latency = params_.instrTicks(params_.pageFaultInstr);

    const VmRegion *region = proc.regionFor(va);
    if (!region) {
        out.killed = true;
        killProcess(proc, "segmentation fault");
        return out;
    }
    if (fault == vm::Fault::Protection) {
        // Regions are mapped with their full permissions, so a
        // protection fault here is a genuine violation.
        out.killed = true;
        killProcess(proc, "write to read-only page");
        return out;
    }
    if (!ensureResident(proc, va, is_write, out.latency)) {
        out.killed = true;
        killProcess(proc, "out of memory");
        return out;
    }
    return out;
}

Kernel::FaultOutcome
Kernel::handleProxyFault(Process &proc, Addr va, unsigned device,
                         Addr real_va, bool is_write, vm::Fault fault)
{
    FaultOutcome out;
    out.latency = params_.instrTicks(params_.pageFaultInstr);
    trace::log(eq_.now(), trace::Category::Vm, proc.name(),
               " proxy fault at va=", va, " real=", real_va,
               is_write ? " (write)" : " (read)");

    const VmRegion *region = proc.regionFor(real_va);
    if (!region) {
        // The kernel treats this like an illegal access to vmem_page
        // (Section 6: "will normally cause a core dump").
        out.killed = true;
        killProcess(proc, "proxy access to unmapped memory");
        return out;
    }

    std::uint64_t real_vpn = layout_.pageOf(real_va);
    std::uint64_t proxy_vpn = layout_.pageOf(va);
    vm::Pte *real_pte = proc.pageTable_.lookup(real_vpn);

    if (fault == vm::Fault::Protection) {
        // A STORE to a read-only proxy page: the I3 upgrade path.
        // "The kernel enables writes to PROXY(vmem_page) so the user's
        // transfer can take place; the kernel also marks vmem_page as
        // dirty to maintain I3."
        if (!region->writable) {
            out.killed = true;
            killProcess(proc, "proxy write to read-only memory");
            return out;
        }
        SHRIMP_ASSERT(real_pte && real_pte->valid,
                      "I2 violated: proxy mapping without real mapping");
        real_pte->dirty = true;
        ++i3DirtyFaults_;
        vm::Pte *proxy_pte = proc.pageTable_.lookup(proxy_vpn);
        SHRIMP_ASSERT(proxy_pte && proxy_pte->valid, "proxy PTE vanished");
        if (mmu_.activeTable() == &proc.pageTable_)
            mmu_.invalidatePage(proxy_vpn);
        proxy_pte->writable = true;
        ++proxyUpgrades_;
        return out;
    }

    // NotPresent: create the proxy mapping on demand (I2). Three
    // cases based on the state of vmem_page (Section 6).
    if (!real_pte || !real_pte->valid) {
        // vmem_page is valid but not in core: page it in first.
        if (!ensureResident(proc, real_va, false, out.latency)) {
            out.killed = true;
            killProcess(proc, "out of memory (proxy page-in)");
            return out;
        }
        real_pte = proc.pageTable_.lookup(real_vpn);
        SHRIMP_ASSERT(real_pte && real_pte->valid, "page-in failed");
    }

    if (is_write) {
        if (!region->writable) {
            out.killed = true;
            killProcess(proc, "proxy write to read-only memory");
            return out;
        }
        // Main scheme (I3): mark the real page dirty before granting
        // a writable proxy mapping. Under the alternative scheme the
        // proxy PTE's own dirty bit carries the information instead.
        if (i3Policy_ == I3Policy::WriteProtectProxy) {
            real_pte->dirty = true;
            ++i3DirtyFaults_;
        }
    }

    vm::Pte proxy_pte;
    proxy_pte.frameAddr = layout_.proxy(real_pte->frameAddr, device);
    proxy_pte.valid = true;
    proxy_pte.user = true;
    if (i3Policy_ == I3Policy::ProxyDirtyBits) {
        // Alternative scheme: proxy pages are writable whenever the
        // region is; their own (MMU-managed) dirty bits make the
        // page count as dirty instead.
        proxy_pte.writable = region->writable;
    } else {
        // Main scheme (I3): the proxy page may be writable only if
        // the real page is dirty (and the region is writable at all).
        proxy_pte.writable = region->writable && real_pte->dirty;
    }
    if (mmu_.activeTable() == &proc.pageTable_)
        mmu_.invalidatePage(proxy_vpn);
    proc.pageTable_.install(proxy_vpn, proxy_pte);
    return out;
}

bool
Kernel::ensureResident(Process &proc, Addr va, bool for_write,
                       Tick &lat)
{
    (void)for_write;
    std::uint64_t vpn = layout_.pageOf(va);
    vm::Pte *pte = proc.pageTable_.lookup(vpn);
    if (pte && pte->valid)
        return true;

    const VmRegion *region = proc.regionFor(va);
    if (!region)
        return false;

    std::uint64_t frame;
    if (!allocFrame(proc.pid_, vpn, frame, lat))
        return false;
    Addr fa = memory_.frameAddr(frame);

    if (backing_.contains(proc.pid_, vpn)) {
        std::vector<std::uint8_t> buf(layout_.pageBytes());
        backing_.load(proc.pid_, vpn, buf.data());
        memory_.writeBytes(fa, buf.data(), buf.size());
        lat += params_.swapPage();
    } else {
        memory_.zeroFrame(frame);
        lat += params_.instrTicks(64); // zero-fill cost
    }

    vm::Pte new_pte;
    new_pte.frameAddr = fa;
    new_pte.valid = true;
    new_pte.writable = region->writable;
    new_pte.user = true;
    new_pte.dirty = false;
    if (mmu_.activeTable() == &proc.pageTable_)
        mmu_.invalidatePage(vpn);
    proc.pageTable_.install(vpn, new_pte);

    frames_[frame] = FrameInfo{true, proc.pid_, vpn, 0};
    return true;
}

// --------------------------------------------------------------------
// Frame allocation and the page daemon: invariant I4
// --------------------------------------------------------------------

bool
Kernel::allocFrame(Pid pid, std::uint64_t vpn, std::uint64_t &frame,
                   Tick &lat)
{
    if (freeFrames_.empty()) {
        if (!evictOneFrame(lat))
            return false;
    }
    SHRIMP_ASSERT(!freeFrames_.empty(), "eviction freed nothing");
    frame = freeFrames_.back();
    freeFrames_.pop_back();
    frames_[frame] = FrameInfo{true, pid, vpn, 0};
    return true;
}

bool
Kernel::pageBusyAnywhere(Addr page_base) const
{
    for (const auto *c : controllers_) {
        if (c->pageBusy(page_base))
            return true;
    }
    return false;
}

bool
Kernel::evictOneFrame(Tick &lat)
{
    if (frames_.empty())
        return false;
    std::size_t max_scan = 2 * frames_.size();
    for (std::size_t scanned = 0; scanned < max_scan; ++scanned) {
        clockHand_ = (clockHand_ + 1) % frames_.size();
        FrameInfo &f = frames_[clockHand_];
        if (!f.used || f.pinCount > 0)
            continue;
        Process *owner = findProcess(f.pid);
        if (!owner)
            continue;
        vm::Pte *pte = owner->pageTable_.lookup(f.vpn);
        SHRIMP_ASSERT(pte && pte->valid, "frame table out of sync");
        if (pte->referenced) {
            // Second chance.
            pte->referenced = false;
            continue;
        }
        Addr fa = memory_.frameAddr(clockHand_);
        // Invariant I4: a page latched in a pending DESTINATION
        // register may be freed with an Inval event (Section 6); a
        // page involved in a running or queued transfer is skipped.
        for (auto *c : controllers_) {
            Addr dl;
            if (c->destLoadedPage(dl) && dl == fa)
                c->inval();
        }
        if (!mutations_.ignoreI4PageBusy && pageBusyAnywhere(fa)) {
            ++i4Skips_;
            continue;
        }
        evictFrame(clockHand_, lat);
        return true;
    }
    return false;
}

bool
Kernel::evictPage(Process &proc, Addr va, Tick &lat)
{
    vm::Pte *pte = proc.pageTable_.lookup(layout_.pageOf(va));
    if (!pte || !pte->valid)
        return false;
    std::uint64_t frame = memory_.frameOf(pte->frameAddr);
    if (frames_[frame].pinCount > 0)
        return false;
    Addr fa = memory_.frameAddr(frame);
    for (auto *c : controllers_) {
        Addr dl;
        if (c->destLoadedPage(dl) && dl == fa)
            c->inval();
    }
    if (!mutations_.ignoreI4PageBusy && pageBusyAnywhere(fa)) {
        ++i4Skips_;
        return false;
    }
    evictFrame(frame, lat);
    return true;
}

void
Kernel::evictFrame(std::uint64_t frame, Tick &lat)
{
    FrameInfo &f = frames_[frame];
    Process *owner = findProcess(f.pid);
    SHRIMP_ASSERT(owner, "evicting frame with no owner");
    vm::Pte *pte = owner->pageTable_.lookup(f.vpn);
    SHRIMP_ASSERT(pte && pte->valid, "evicting unmapped frame");
    Addr fa = memory_.frameAddr(frame);

    if (pageConsideredDirty(*owner, f.vpn, *pte)) {
        // Clean: write the page to backing store.
        std::vector<std::uint8_t> buf(layout_.pageBytes());
        memory_.readBytes(fa, buf.data(), buf.size());
        backing_.store(f.pid, f.vpn, buf.data());
        lat += params_.swapPage();
    }

    // Invariant I2: the proxy mappings die with the real mapping.
    if (!mutations_.skipProxyShootdown)
        invalidateProxyMappings(*owner, f.vpn);

    if (mmu_.activeTable() == &owner->pageTable_)
        mmu_.invalidatePage(f.vpn);
    owner->pageTable_.remove(f.vpn);

    trace::log(eq_.now(), trace::Category::Vm, "evict frame ", frame,
               " (pid ", f.pid, " vpn ", f.vpn, ")");
    f = FrameInfo{};
    freeFrames_.push_back(frame);
    ++evictions_;
    lat += params_.instrTicks(120); // pageout bookkeeping
    fireAuditHook(KernelEvent::PageOut);
}

void
Kernel::invalidateProxyMappings(Process &proc, std::uint64_t real_vpn)
{
    for (auto *c : controllers_) {
        unsigned d = c->deviceIndex();
        std::uint64_t proxy_vpn =
            layout_.memProxyBase(d) / layout_.pageBytes() + real_vpn;
        if (proc.pageTable_.lookup(proxy_vpn)) {
            if (mmu_.activeTable() == &proc.pageTable_)
                mmu_.invalidatePage(proxy_vpn);
            // The translation cache holds a pointer into the page
            // table; drop it before the PTE node goes away.
            if (!mutations_.skipTcacheShootdown)
                tcache_.invalidate(proc.pid_, proxy_vpn);
            proc.pageTable_.remove(proxy_vpn);
            ++i2Shootdowns_;
        }
    }
}

bool
Kernel::pageConsideredDirty(Process &proc, std::uint64_t real_vpn,
                            const vm::Pte &real_pte) const
{
    if (real_pte.dirty)
        return true;
    if (i3Policy_ != I3Policy::ProxyDirtyBits)
        return false;
    // Alternative scheme: "the kernel considers vmem_page dirty if
    // either vmem_page or PROXY(vmem_page) is dirty."
    for (auto *c : controllers_) {
        unsigned d = c->deviceIndex();
        std::uint64_t proxy_vpn =
            layout_.memProxyBase(d) / layout_.pageBytes() + real_vpn;
        const vm::Pte *pte = proc.pageTable_.lookup(proxy_vpn);
        if (pte && pte->valid && pte->dirty)
            return true;
    }
    return false;
}

void
Kernel::clearPageDirty(Process &proc, std::uint64_t real_vpn,
                       vm::Pte &real_pte)
{
    real_pte.dirty = false;
    if (i3Policy_ != I3Policy::ProxyDirtyBits)
        return;
    for (auto *c : controllers_) {
        unsigned d = c->deviceIndex();
        std::uint64_t proxy_vpn =
            layout_.memProxyBase(d) / layout_.pageBytes() + real_vpn;
        if (vm::Pte *pte = proc.pageTable_.lookup(proxy_vpn))
            pte->dirty = false;
    }
}

void
Kernel::writeProtectProxyMappings(Process &proc, std::uint64_t real_vpn)
{
    for (auto *c : controllers_) {
        unsigned d = c->deviceIndex();
        std::uint64_t proxy_vpn =
            layout_.memProxyBase(d) / layout_.pageBytes() + real_vpn;
        if (vm::Pte *pte = proc.pageTable_.lookup(proxy_vpn)) {
            if (mmu_.activeTable() == &proc.pageTable_)
                mmu_.invalidatePage(proxy_vpn);
            pte->writable = false;
        }
    }
}

bool
Kernel::cleanPage(Process &proc, Addr va, Tick &lat)
{
    std::uint64_t vpn = layout_.pageOf(va);
    vm::Pte *pte = proc.pageTable_.lookup(vpn);
    if (!pte || !pte->valid)
        return false;
    Addr page_base = layout_.pageBase(pte->frameAddr);
    // The Section 6 race rule: never clear the dirty bit while a DMA
    // transfer to the page is in progress.
    if (pageBusyAnywhere(page_base))
        return false;
    if (pageConsideredDirty(proc, vpn, *pte)) {
        std::vector<std::uint8_t> buf(layout_.pageBytes());
        memory_.readBytes(page_base, buf.data(), buf.size());
        backing_.store(proc.pid_, vpn, buf.data());
        clearPageDirty(proc, vpn, *pte);
        lat += params_.swapPage();
    }
    // Invariant I3 (main scheme only): cleaning write-protects the
    // proxy mapping so the next proxy write re-marks the page dirty.
    if (i3Policy_ == I3Policy::WriteProtectProxy
            && !mutations_.skipProxyWriteProtect)
        writeProtectProxyMappings(proc, vpn);
    return true;
}

void
Kernel::releaseProcessMemory(Process &proc)
{
    for (std::uint64_t frame = 0; frame < frames_.size(); ++frame) {
        if (frames_[frame].used && frames_[frame].pid == proc.pid_) {
            frames_[frame] = FrameInfo{};
            freeFrames_.push_back(frame);
        }
    }
    if (mmu_.activeTable() == &proc.pageTable_)
        mmu_.activate(nullptr);
    tcache_.invalidatePid(proc.pid_);
    backing_.dropProcess(proc.pid_);
}

// --------------------------------------------------------------------
// Syscall services
// --------------------------------------------------------------------

Addr
Kernel::allocRegion(Process &proc, std::uint64_t bytes, bool writable)
{
    std::uint64_t pb = layout_.pageBytes();
    std::uint64_t len = (bytes + pb - 1) / pb * pb;
    Addr base = proc.nextRegionBase_;
    // One guard page between regions.
    proc.nextRegionBase_ = base + len + pb;
    if (proc.nextRegionBase_ > vm::AddressLayout::regionStride)
        fatal("virtual address space exhausted for ", proc.name());
    proc.regions_.push_back(VmRegion{base, len, writable});
    return base;
}

Addr
Kernel::mapDeviceProxy(Process &proc, unsigned device,
                       std::uint64_t first_page, std::uint64_t n_pages,
                       bool writable, Tick &lat)
{
    auto wit = windows_.find(device);
    if (wit == windows_.end() || n_pages == 0)
        return 0;

    const DeviceWindow &win = wit->second;
    std::uint64_t pb = layout_.pageBytes();
    if ((first_page + n_pages) * pb > win.extentBytes)
        return 0;
    if (win.allow && !win.allow(first_page, n_pages, writable))
        return 0;

    Addr vbase = layout_.devProxyBase(device) + first_page * pb;
    for (std::uint64_t i = 0; i < n_pages; ++i) {
        std::uint64_t vpn = layout_.pageOf(vbase) + i;
        vm::Pte pte;
        pte.frameAddr = layout_.devProxyBase(device)
                        + (first_page + i) * pb;
        pte.valid = true;
        pte.writable = writable;
        pte.user = true;
        if (mmu_.activeTable() == &proc.pageTable_)
            mmu_.invalidatePage(vpn);
        proc.pageTable_.install(vpn, pte);
        lat += params_.instrTicks(60);
    }
    return vbase;
}

bool
Kernel::buildDmaSegments(Process &proc, Addr va, std::uint32_t nbytes,
                         bool for_write, std::vector<dma::Segment> &out,
                         Tick &lat)
{
    if (nbytes == 0)
        return false;
    Addr cur = va;
    std::uint32_t left = nbytes;
    while (left > 0) {
        const VmRegion *r = proc.regionFor(cur);
        if (!r || (for_write && !r->writable))
            return false;
        if (!ensureResident(proc, cur, for_write, lat))
            return false;
        vm::Pte *pte = proc.pageTable_.lookup(layout_.pageOf(cur));
        SHRIMP_ASSERT(pte && pte->valid, "resident page vanished");
        if (for_write) {
            // The kernel knows about this DMA and marks the target
            // dirty itself (the traditional path of Section 6).
            pte->dirty = true;
        }
        std::uint32_t chunk = std::uint32_t(
            std::min<std::uint64_t>(left, layout_.bytesToPageEnd(cur)));
        Addr pa = pte->frameAddr + layout_.pageOffset(cur);
        if (!out.empty()
                && out.back().memAddr + out.back().len == pa) {
            out.back().len += chunk;
        } else {
            out.push_back(dma::Segment{pa, chunk});
        }
        lat += params_.instrTicks(params_.dmaTranslateInstrPerPage);
        cur += chunk;
        left -= chunk;
    }
    return true;
}

bool
Kernel::pinRange(Process &proc, Addr va, std::uint32_t nbytes,
                 Tick &lat)
{
    if (nbytes == 0)
        return false;
    Addr first = layout_.pageBase(va);
    Addr last = layout_.pageBase(va + nbytes - 1);
    std::vector<std::uint64_t> pinned;
    for (Addr p = first; p <= last; p += layout_.pageBytes()) {
        if (!ensureResident(proc, p, false, lat))
            break;
        vm::Pte *pte = proc.pageTable_.lookup(layout_.pageOf(p));
        if (!pte || !pte->valid)
            break;
        std::uint64_t frame = memory_.frameOf(pte->frameAddr);
        ++frames_[frame].pinCount;
        pinned.push_back(frame);
        lat += params_.instrTicks(params_.dmaPinInstrPerPage);
    }
    std::uint64_t need = (last - first) / layout_.pageBytes() + 1;
    if (pinned.size() != need) {
        for (auto frame : pinned)
            --frames_[frame].pinCount;
        return false;
    }
    return true;
}

void
Kernel::unpinRange(Process &proc, Addr va, std::uint32_t nbytes)
{
    if (nbytes == 0)
        return;
    Addr first = layout_.pageBase(va);
    Addr last = layout_.pageBase(va + nbytes - 1);
    for (Addr p = first; p <= last; p += layout_.pageBytes()) {
        vm::Pte *pte = proc.pageTable_.lookup(layout_.pageOf(p));
        SHRIMP_ASSERT(pte && pte->valid, "unpinning unmapped page");
        std::uint64_t frame = memory_.frameOf(pte->frameAddr);
        SHRIMP_ASSERT(frames_[frame].pinCount > 0, "pin underflow");
        --frames_[frame].pinCount;
    }
}

bool
Kernel::exportPage(Process &proc, Addr va, Addr &paddr_out, Tick &lat)
{
    if (!ensureResident(proc, va, true, lat))
        return false;
    vm::Pte *pte = proc.pageTable_.lookup(layout_.pageOf(va));
    SHRIMP_ASSERT(pte && pte->valid, "exported page not resident");
    std::uint64_t frame = memory_.frameOf(pte->frameAddr);
    ++frames_[frame].pinCount;
    // Incoming network DMA bypasses the receiver's MMU, so the kernel
    // marks the page dirty up front (the SHRIMP arrangement: I3 is
    // unnecessary because receive pages are exported explicitly).
    pte->dirty = true;
    paddr_out = pte->frameAddr + layout_.pageOffset(va);
    return true;
}

// --------------------------------------------------------------------
// The model checker's synchronous CPU (tools/udma_model_check, tests)
// --------------------------------------------------------------------

void
Kernel::forEachProcess(const std::function<void(Process &)> &fn)
{
    for (auto &[pid, p] : procs_)
        fn(*p);
}

void
Kernel::modelSwitchTo(Process &proc)
{
    ++switches_;
    trace::log(eq_.now(), trace::Category::Os, "model switch to ",
               proc.name(), " (pid ", proc.pid(), ")");
    if (!mutations_.skipInvalOnSwitch) {
        for (auto *c : controllers_) {
            c->inval();
            ++i1Invals_;
        }
    }
    mmu_.activate(&proc.pageTable_);
    fireAuditHook(KernelEvent::ContextSwitch);
}

Kernel::UserAccess
Kernel::performUserAccess(Process &proc, Addr va, bool is_write,
                          std::uint64_t value)
{
    UserAccess res;
    if (proc.killed_ || proc.state_ == ProcState::Zombie) {
        res.killed = true;
        return res;
    }
    SHRIMP_ASSERT(mmu_.activeTable() == &proc.pageTable_,
                  "performUserAccess needs the process's address space "
                  "active (modelSwitchTo first)");

    actorOverride_ = &proc;
    std::uint64_t vpn = layout_.pageOf(va);
    vm::TranslateResult tr;
    vm::Pte *cpte = tcache_.lookup(proc.pid_, vpn, is_write);
    if (cpte) {
        cpte->referenced = true;
        if (is_write)
            cpte->dirty = true;
        tr.paddr = cpte->frameAddr + layout_.pageOffset(va);
        tr.tlbHit = true;
    } else {
        int attempts = 0;
        for (;;) {
            tr = mmu_.translate(va, is_write);
            if (tr.ok())
                break;
            auto out = handleFault(proc, va, is_write, tr.fault);
            faultUs_.sample(ticksToUs(out.latency));
            fireAuditHook(KernelEvent::PageFault);
            if (out.killed) {
                actorOverride_ = nullptr;
                res.killed = true;
                return res;
            }
            SHRIMP_ASSERT(++attempts < 8, "page-fault livelock at va=",
                          va);
        }
    }

    auto dec = layout_.decode(tr.paddr);
    if (!cpte && dec.space != vm::Space::Memory) {
        if (vm::Pte *pte = proc.pageTable_.lookup(vpn))
            tcache_.insert(proc.pid_, vpn, pte);
    }
    if (dec.space == vm::Space::Memory) {
        if (is_write) {
            memory_.write<std::uint64_t>(tr.paddr, value);
            for (auto &snoop : snoopers_)
                (void)snoop(tr.paddr, value);
        } else {
            res.value = memory_.read<std::uint64_t>(tr.paddr);
        }
    } else {
        bus::ProxyClient *client = ioBus_.client(dec.device);
        if (!client) {
            killProcess(proc, "proxy access to unattached device");
            actorOverride_ = nullptr;
            res.killed = true;
            return res;
        }
        if (is_write)
            client->proxyStore(dec, tr.paddr, std::int64_t(value));
        else
            res.value = client->proxyLoad(dec, tr.paddr);
    }
    actorOverride_ = nullptr;
    res.ok = true;
    return res;
}

// --------------------------------------------------------------------
// Backdoor access for tests and benchmarks (untimed)
// --------------------------------------------------------------------

void
Kernel::pokeBytes(Process &proc, Addr va, const void *src,
                  std::uint64_t len)
{
    const auto *bytes = static_cast<const std::uint8_t *>(src);
    Tick scratch = 0;
    while (len > 0) {
        if (!ensureResident(proc, va, true, scratch))
            panic("pokeBytes outside an allocated region, va=", va);
        vm::Pte *pte = proc.pageTable_.lookup(layout_.pageOf(va));
        pte->dirty = true;
        std::uint64_t chunk =
            std::min<std::uint64_t>(len, layout_.bytesToPageEnd(va));
        memory_.writeBytes(pte->frameAddr + layout_.pageOffset(va),
                           bytes, chunk);
        bytes += chunk;
        va += chunk;
        len -= chunk;
    }
}

void
Kernel::peekBytes(Process &proc, Addr va, void *dst, std::uint64_t len)
{
    auto *bytes = static_cast<std::uint8_t *>(dst);
    Tick scratch = 0;
    while (len > 0) {
        if (!ensureResident(proc, va, false, scratch))
            panic("peekBytes outside an allocated region, va=", va);
        vm::Pte *pte = proc.pageTable_.lookup(layout_.pageOf(va));
        std::uint64_t chunk =
            std::min<std::uint64_t>(len, layout_.bytesToPageEnd(va));
        memory_.readBytes(pte->frameAddr + layout_.pageOffset(va),
                          bytes, chunk);
        bytes += chunk;
        va += chunk;
        len -= chunk;
    }
}

} // namespace shrimp::os
