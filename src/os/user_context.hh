/**
 * @file
 * The API simulated user programs use: awaitable loads, stores,
 * computation, and syscalls, plus address helpers.
 *
 * A user program is written as:
 *
 *   sim::ProcTask program(os::UserContext &ctx) {
 *       co_await ctx.store(dest_proxy_va, nbytes);      // STORE
 *       auto st = co_await ctx.load(src_proxy_va);      // LOAD
 *       ...
 *   }
 *
 * — the two-reference UDMA initiation is literally two awaited memory
 * references, protection-checked by the simulated MMU.
 */

#ifndef SHRIMP_OS_USER_CONTEXT_HH
#define SHRIMP_OS_USER_CONTEXT_HH

#include <coroutine>
#include <cstdint>
#include <functional>
#include <utility>

#include "os/user_op.hh"
#include "sim/types.hh"

namespace shrimp::os
{

class Kernel;
class Process;

/** Awaitable wrapper around one UserOp. */
class OpAwaitable
{
  public:
    OpAwaitable(Process &proc, UserOp op)
        : proc_(proc), op_(std::move(op))
    {}

    bool await_ready() const noexcept { return false; }

    void await_suspend(std::coroutine_handle<> h);

    std::uint64_t await_resume() const { return op_.result.value; }

  private:
    Process &proc_;
    UserOp op_;
};

/** Per-process handle for issuing simulated operations. */
class UserContext
{
  public:
    UserContext(Kernel &kernel, Process &proc)
        : kernel_(kernel), proc_(proc)
    {}

    // ------------------------------------------------ basic operations
    /** 64-bit load; returns the loaded value (a status word for proxy
     *  addresses). */
    OpAwaitable
    load(Addr va)
    {
        UserOp op;
        op.kind = UserOp::Kind::Load;
        op.vaddr = va;
        return OpAwaitable(proc_, std::move(op));
    }

    /** 64-bit store. */
    OpAwaitable
    store(Addr va, std::uint64_t value)
    {
        UserOp op;
        op.kind = UserOp::Kind::Store;
        op.vaddr = va;
        op.value = value;
        return OpAwaitable(proc_, std::move(op));
    }

    /** Retire @p instructions of (cached) computation. */
    OpAwaitable
    compute(std::uint64_t instructions)
    {
        UserOp op;
        op.kind = UserOp::Kind::Compute;
        op.value = instructions;
        return OpAwaitable(proc_, std::move(op));
    }

    /** Voluntarily yield the CPU. */
    OpAwaitable
    yield()
    {
        UserOp op;
        op.kind = UserOp::Kind::Yield;
        return OpAwaitable(proc_, std::move(op));
    }

    /** Trap into the kernel with an arbitrary service body. */
    OpAwaitable
    syscall(std::function<void(Kernel &, Process &, SyscallControl &)> fn)
    {
        UserOp op;
        op.kind = UserOp::Kind::Syscall;
        op.syscall = std::move(fn);
        return OpAwaitable(proc_, std::move(op));
    }

    // -------------------------------------------------- named syscalls
    /**
     * Allocate a demand-paged virtual memory region.
     * @return the region's base virtual address.
     */
    OpAwaitable sysAllocMemory(std::uint64_t bytes, bool writable = true);

    /**
     * Map @p n_pages of device @p device's proxy window, starting at
     * device proxy page @p first_page, into this process.
     * @return the virtual address of the first mapped proxy page
     *         (0 on refusal).
     */
    OpAwaitable sysMapDeviceProxy(unsigned device,
                                  std::uint64_t first_page,
                                  std::uint64_t n_pages, bool writable);

    // ------------------------------------------------- address helpers
    /** PROXY(): virtual address -> virtual memory-proxy address. */
    Addr proxyAddr(Addr va, unsigned device) const;

    /** Page size of the machine. */
    std::uint32_t pageBytes() const;

    Kernel &kernel() { return kernel_; }
    Process &process() { return proc_; }

  private:
    Kernel &kernel_;
    Process &proc_;
};

} // namespace shrimp::os

#endif // SHRIMP_OS_USER_CONTEXT_HH
