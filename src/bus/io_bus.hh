/**
 * @file
 * The node's I/O bus (EISA in the SHRIMP prototype).
 *
 * Two roles:
 *  - timing: a single shared resource; every transaction (CPU uncached
 *    I/O reference, DMA burst) occupies the bus for its duration and
 *    transactions serialize — this is what makes burst-mode DMA beat
 *    processor-generated single-word transfers for long messages
 *    (paper Section 9);
 *  - routing: physical proxy-space accesses are decoded and delivered
 *    to the owning UDMA controller.
 */

#ifndef SHRIMP_BUS_IO_BUS_HH
#define SHRIMP_BUS_IO_BUS_HH

#include <cstdint>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/params.hh"
#include "sim/stats.hh"
#include "vm/layout.hh"

namespace shrimp::bus
{

/**
 * Interface implemented by UDMA controllers: receives proxy-space bus
 * cycles. The controller cannot see which process issued the cycle —
 * protection came earlier, from the MMU (paper Section 4).
 */
class ProxyClient
{
  public:
    virtual ~ProxyClient() = default;

    /**
     * A LOAD bus cycle to a proxy address.
     * @param decoded The classified physical address.
     * @param paddr The full physical address.
     * @return The status word driven back on the data bus.
     */
    virtual std::uint64_t proxyLoad(const vm::Decoded &decoded,
                                    Addr paddr) = 0;

    /**
     * A STORE bus cycle to a proxy address. @p value is the stored
     * datum interpreted as a signed byte count (negative = Inval).
     */
    virtual void proxyStore(const vm::Decoded &decoded, Addr paddr,
                            std::int64_t value) = 0;
};

/** The shared I/O bus of one node. */
class IoBus
{
  public:
    IoBus(sim::EventQueue &eq, const sim::MachineParams &params)
        : eq_(eq), params_(params)
    {
        statGroup_.addScalar("bursts", &bursts_,
                             "burst-mode DMA transactions");
        statGroup_.addScalar("words", &words_,
                             "single-word (PIO) transactions");
        statGroup_.addScalar("busyTicks", &busyTicks_,
                             "ticks the bus was occupied");
        statGroup_.addHistogram("burst_bytes", &burstBytes_,
                                "burst-mode transaction sizes (bytes)");
    }

    /** Attach the proxy client for device index @p device. */
    void
    attach(unsigned device, ProxyClient *client)
    {
        if (clients_.size() <= device)
            clients_.resize(device + 1, nullptr);
        SHRIMP_ASSERT(!clients_[device], "device slot already attached");
        clients_[device] = client;
    }

    /** The client owning device index @p device (nullptr if none). */
    ProxyClient *
    client(unsigned device) const
    {
        return device < clients_.size() ? clients_[device] : nullptr;
    }

    /**
     * Occupy the bus for @p duration ticks starting no earlier than
     * now; transactions serialize. Returns the completion tick.
     */
    Tick
    acquire(Tick duration)
    {
        return acquireAt(eq_.now(), duration);
    }

    /** As acquire(), but the transaction cannot start before
     *  @p earliest (e.g. the CPU reaches the bus only then). */
    Tick
    acquireAt(Tick earliest, Tick duration)
    {
        Tick start = std::max({eq_.now(), earliest, freeAt_});
        busyTicks_ += double(duration);
        freeAt_ = start + duration;
        return freeAt_;
    }

    /** Completion tick of a burst-mode DMA transfer of @p bytes. */
    Tick
    burstTransfer(std::uint64_t bytes)
    {
        ++bursts_;
        burstBytes_.sample(double(bytes));
        return acquire(params_.eisaBurst(bytes));
    }

    /** As burstTransfer(), but starting no earlier than @p earliest
     *  (e.g. after a DMA engine's start latency). */
    Tick
    burstTransferAt(Tick earliest, std::uint64_t bytes)
    {
        ++bursts_;
        burstBytes_.sample(double(bytes));
        return acquireAt(earliest, params_.eisaBurst(bytes));
    }

    /** Completion tick of one single-word (PIO) transaction. */
    Tick
    wordTransaction()
    {
        ++words_;
        return acquire(params_.eisaWord());
    }

    /** Earliest tick at which the bus is free. */
    Tick freeAt() const { return freeAt_; }

    double busyTicks() const { return busyTicks_.value(); }
    std::uint64_t burstCount() const
    {
        return std::uint64_t(bursts_.value());
    }
    std::uint64_t wordCount() const
    {
        return std::uint64_t(words_.value());
    }

    /** The bus's registered stats ("bus.*"). */
    const stats::StatGroup &statGroup() const { return statGroup_; }

  private:
    sim::EventQueue &eq_;
    const sim::MachineParams &params_;
    Tick freeAt_ = 0;
    std::vector<ProxyClient *> clients_;
    stats::Scalar busyTicks_;
    stats::Scalar bursts_;
    stats::Scalar words_;
    /** Burst sizes: DMA chunking is visible here (256-byte chunks). */
    stats::Histogram burstBytes_{0, 4096, 16};
    stats::StatGroup statGroup_{"bus"};
};

} // namespace shrimp::bus

#endif // SHRIMP_BUS_IO_BUS_HH
