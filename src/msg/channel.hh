/**
 * @file
 * User-level message passing over UDMA (paper Section 8: "The network
 * interface supports efficient, protected, user-level message passing
 * based on the UDMA mechanism").
 *
 * A Channel is a one-way, single-producer/single-consumer ring of
 * fixed-size slots living in the *receiver's* exported memory:
 *
 *   slot i: [ payload (slotBytes-16) ][ len : 8 ][ seq : 8 ]
 *
 * The sender deliberately-updates the payload first and the header
 * last, so the receiver's poll on the seq word cannot observe a
 * partially-arrived message (the NI delivers a transfer's bytes in
 * order). Flow control runs the other way on SHRIMP's *other*
 * mechanism: the receiver's consumed-count is bound by automatic
 * update to a credit word in the sender's memory, so acknowledging
 * costs the receiver one ordinary store.
 *
 * Everything after the one-time setup is user-level: no syscalls on
 * the send or receive path.
 */

#ifndef SHRIMP_MSG_CHANNEL_HH
#define SHRIMP_MSG_CHANNEL_HH

#include <cstdint>
#include <vector>

#include "os/user_context.hh"
#include "shrimp/network_interface.hh"
#include "sim/coro.hh"

namespace shrimp::msg
{

/**
 * Host-side rendezvous for channel setup. In a real system this is a
 * name service; here the two processes share the object out of band
 * (setup only — never on the data path).
 */
struct ChannelRendezvous
{
    /** Geometry (set by the creator before either side starts). */
    std::uint32_t slotBytes = 4096;
    std::uint32_t slots = 8;

    /** Receiver -> sender: the exported ring pages. */
    std::vector<Addr> dataPages;
    bool dataExported = false;

    /** Sender -> receiver: the physical page of the credit word. */
    Addr creditPagePaddr = 0;
    bool creditExported = false;

    std::uint32_t payloadCapacity() const { return slotBytes - 16; }
    std::uint64_t ringBytes() const
    {
        return std::uint64_t(slotBytes) * slots;
    }
};

/** The sending end. Construct inside the sender process's coroutine. */
class SenderChannel
{
  public:
    SenderChannel(os::UserContext &ctx, unsigned ni_device,
                  net::NetworkInterface &ni, NodeId peer)
        : ctx_(ctx), dev_(ni_device), ni_(ni), peer_(peer)
    {}

    /**
     * Complete the handshake: export the credit word, wait for the
     * receiver's ring, map it. Spins (simulated) while waiting.
     * @return false on mapping failure.
     */
    sim::Task<bool> connect(ChannelRendezvous &rv);

    /**
     * Send one message of @p len bytes from user memory at @p src_va.
     * Blocks (spinning on the credit word) while the ring is full.
     * @return false if len exceeds the slot payload capacity.
     */
    sim::Task<bool> send(Addr src_va, std::uint32_t len);

    std::uint64_t messagesSent() const { return seq_; }

    /** Messages in flight (unacknowledged). */
    sim::Task<std::uint64_t> unacked();

  private:
    os::UserContext &ctx_;
    unsigned dev_;
    net::NetworkInterface &ni_;
    NodeId peer_;

    std::uint32_t slotBytes_ = 0;
    std::uint32_t slots_ = 0;
    Addr ringProxy_ = 0;  ///< proxy va of slot 0 on the sender
    Addr headerBuf_ = 0;  ///< 16-byte staging buffer (user memory)
    Addr creditVa_ = 0;   ///< local word the receiver auto-updates
    std::uint64_t seq_ = 0;
};

/** The receiving end. Construct inside the receiver's coroutine. */
class ReceiverChannel
{
  public:
    ReceiverChannel(os::UserContext &ctx, unsigned ni_device,
                    net::NetworkInterface &ni, NodeId peer)
        : ctx_(ctx), dev_(ni_device), ni_(ni), peer_(peer)
    {}

    /**
     * Allocate and export the ring, wait for the sender's credit
     * word, and bind the automatic-update acknowledgment path.
     */
    sim::Task<bool> bind(ChannelRendezvous &rv);

    /**
     * Receive one message: poll the next slot, copy the payload into
     * @p dst_va (up to @p max_len), acknowledge, return the length.
     */
    sim::Task<std::uint32_t> recv(Addr dst_va, std::uint32_t max_len);

    /**
     * Zero-copy variant: wait for the next message and return the
     * ring address of its payload (valid until the next ackLast()).
     */
    sim::Task<Addr> recvZeroCopy(std::uint32_t &len_out);

    /** Acknowledge the message returned by recvZeroCopy. */
    sim::Task<std::uint64_t> ackLast();

    std::uint64_t messagesReceived() const { return rseq_; }

  private:
    os::UserContext &ctx_;
    unsigned dev_;
    net::NetworkInterface &ni_;
    NodeId peer_;

    std::uint32_t slotBytes_ = 0;
    std::uint32_t slots_ = 0;
    Addr ringVa_ = 0;
    Addr creditMirror_ = 0; ///< local page bound by automatic update
    std::uint64_t rseq_ = 0;
};

} // namespace shrimp::msg

#endif // SHRIMP_MSG_CHANNEL_HH
