/**
 * @file
 * Collective operations over user-level UDMA channels: a full-mesh
 * Communicator with barrier, broadcast and all-reduce — the kind of
 * library the SHRIMP project layered over deliberate update to run
 * real parallel programs, with zero syscalls on any data path.
 */

#ifndef SHRIMP_MSG_COLLECTIVE_HH
#define SHRIMP_MSG_COLLECTIVE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "msg/channel.hh"

namespace shrimp::msg
{

/** Rendezvous for a full mesh of channels among @p size ranks. */
struct CommRendezvous
{
    explicit CommRendezvous(unsigned size_, std::uint32_t slots = 4,
                            std::uint32_t slot_bytes = 4096)
        : size(size_),
          ch(size_, std::vector<ChannelRendezvous>(size_))
    {
        for (auto &row : ch) {
            for (auto &c : row) {
                c.slots = slots;
                c.slotBytes = slot_bytes;
            }
        }
    }

    unsigned size;
    /** ch[i][j]: the channel carrying i's messages to j. */
    std::vector<std::vector<ChannelRendezvous>> ch;
};

/** One rank's view of the communicator. */
class Communicator
{
  public:
    Communicator(os::UserContext &ctx, unsigned ni_device,
                 net::NetworkInterface &ni, NodeId rank,
                 CommRendezvous &rv)
        : ctx_(ctx), dev_(ni_device), ni_(ni), rank_(rank), rv_(rv)
    {}

    unsigned rank() const { return rank_; }
    unsigned size() const { return rv_.size; }

    /**
     * Build the mesh. Every rank must call this; pairwise ordering
     * (lower rank connects first) makes the handshakes deadlock-free.
     */
    sim::Task<bool> setup();

    /** Dissemination barrier: returns once all ranks have entered. */
    sim::Task<void> barrier();

    /**
     * Broadcast @p len bytes at @p va from @p root to every rank
     * (chunked if larger than a slot).
     */
    sim::Task<void> broadcast(unsigned root, Addr va,
                              std::uint32_t len);

    /** All-reduce (sum): every rank contributes; all get the total. */
    sim::Task<std::uint64_t> allReduceSum(std::uint64_t value);

    /** Point-to-point through the mesh. */
    sim::Task<bool> sendTo(unsigned peer, Addr va, std::uint32_t len);
    sim::Task<std::uint32_t> recvFrom(unsigned peer, Addr va,
                                      std::uint32_t max_len);

  private:
    os::UserContext &ctx_;
    unsigned dev_;
    net::NetworkInterface &ni_;
    unsigned rank_;
    CommRendezvous &rv_;

    std::vector<std::unique_ptr<SenderChannel>> tx_;   // per peer
    std::vector<std::unique_ptr<ReceiverChannel>> rx_; // per peer
    Addr scratch_ = 0;
};

} // namespace shrimp::msg

#endif // SHRIMP_MSG_COLLECTIVE_HH
