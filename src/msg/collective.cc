#include "msg/collective.hh"

#include "os/kernel.hh"

namespace shrimp::msg
{

sim::Task<bool>
Communicator::setup()
{
    const unsigned n = rv_.size;
    SHRIMP_ASSERT(rank_ < n, "rank out of range");
    tx_.resize(n);
    rx_.resize(n);
    scratch_ = co_await ctx_.sysAllocMemory(2 * ctx_.pageBytes());

    // Pairwise-ordered handshakes: for each pair (a, b) with a < b,
    // a connects its sender first while b binds its receiver first.
    // Both ends export before they wait, and every rank visits pairs
    // in the same (min, max) order, so no cycle of waits can form.
    for (unsigned peer = 0; peer < n; ++peer) {
        if (peer == rank_)
            continue;
        tx_[peer] = std::make_unique<SenderChannel>(ctx_, dev_, ni_,
                                                    peer);
        rx_[peer] = std::make_unique<ReceiverChannel>(ctx_, dev_, ni_,
                                                      peer);
        if (rank_ < peer) {
            if (!co_await tx_[peer]->connect(rv_.ch[rank_][peer]))
                co_return false;
            if (!co_await rx_[peer]->bind(rv_.ch[peer][rank_]))
                co_return false;
        } else {
            if (!co_await rx_[peer]->bind(rv_.ch[peer][rank_]))
                co_return false;
            if (!co_await tx_[peer]->connect(rv_.ch[rank_][peer]))
                co_return false;
        }
    }
    co_return true;
}

sim::Task<bool>
Communicator::sendTo(unsigned peer, Addr va, std::uint32_t len)
{
    SHRIMP_ASSERT(peer < rv_.size && peer != rank_ && tx_[peer],
                  "bad peer");
    co_return co_await tx_[peer]->send(va, len);
}

sim::Task<std::uint32_t>
Communicator::recvFrom(unsigned peer, Addr va, std::uint32_t max_len)
{
    SHRIMP_ASSERT(peer < rv_.size && peer != rank_ && rx_[peer],
                  "bad peer");
    co_return co_await rx_[peer]->recv(va, max_len);
}

sim::Task<void>
Communicator::barrier()
{
    // Dissemination barrier: log2(n) rounds of token exchange.
    const unsigned n = rv_.size;
    for (unsigned hop = 1; hop < n; hop *= 2) {
        unsigned to = (rank_ + hop) % n;
        unsigned from = (rank_ + n - (hop % n)) % n;
        co_await ctx_.store(scratch_, 0xBA44 + hop);
        co_await tx_[to]->send(scratch_, 8);
        (void)co_await rx_[from]->recv(scratch_ + ctx_.pageBytes(), 8);
    }
    co_return;
}

sim::Task<void>
Communicator::broadcast(unsigned root, Addr va, std::uint32_t len)
{
    const unsigned n = rv_.size;
    const std::uint32_t cap =
        rv_.ch[0][0].payloadCapacity() & ~std::uint32_t(7);
    if (rank_ == root) {
        for (std::uint32_t off = 0; off < len; off += cap) {
            std::uint32_t chunk = std::min(cap, len - off);
            for (unsigned peer = 0; peer < n; ++peer) {
                if (peer == root)
                    continue;
                co_await tx_[peer]->send(va + off, chunk);
            }
        }
    } else {
        for (std::uint32_t off = 0; off < len; off += cap) {
            std::uint32_t chunk = std::min(cap, len - off);
            (void)co_await rx_[root]->recv(va + off, chunk);
        }
    }
    co_return;
}

sim::Task<std::uint64_t>
Communicator::allReduceSum(std::uint64_t value)
{
    const unsigned n = rv_.size;
    constexpr unsigned root = 0;
    std::uint64_t sum = value;
    if (rank_ == root) {
        for (unsigned peer = 1; peer < n; ++peer) {
            (void)co_await rx_[peer]->recv(scratch_, 8);
            sum += co_await ctx_.load(scratch_);
        }
        co_await ctx_.store(scratch_, sum);
        for (unsigned peer = 1; peer < n; ++peer)
            co_await tx_[peer]->send(scratch_, 8);
    } else {
        co_await ctx_.store(scratch_, value);
        co_await tx_[root]->send(scratch_, 8);
        (void)co_await rx_[root]->recv(scratch_ + 8, 8);
        sum = co_await ctx_.load(scratch_ + 8);
    }
    co_return sum;
}

} // namespace shrimp::msg
