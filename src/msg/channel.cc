#include "msg/channel.hh"

#include "core/udma_lib.hh"
#include "os/kernel.hh"

namespace shrimp::msg
{

// --------------------------------------------------------------------
// SenderChannel
// --------------------------------------------------------------------

sim::Task<bool>
SenderChannel::connect(ChannelRendezvous &rv)
{
    slotBytes_ = rv.slotBytes;
    slots_ = rv.slots;

    // Export the credit word's page so the receiver can bind it for
    // automatic update; initialize it to "nothing consumed".
    creditVa_ = co_await ctx_.sysAllocMemory(ctx_.pageBytes());
    co_await ctx_.store(creditVa_, 0);
    auto pages =
        co_await core::sysExportRange(ctx_, creditVa_, 8);
    rv.creditPagePaddr = pages.front();
    rv.creditExported = true;

    // A small staging buffer for the 16-byte slot header.
    headerBuf_ = co_await ctx_.sysAllocMemory(ctx_.pageBytes());
    co_await ctx_.store(headerBuf_, 0);

    // Wait for the receiver's ring, then map it through the NIPT.
    while (!rv.dataExported)
        co_await ctx_.compute(500);
    std::vector<Addr> ring_pages = rv.dataPages;
    ringProxy_ = co_await core::sysMapRemoteRange(
        ctx_, dev_, ni_, peer_, std::move(ring_pages));
    co_return ringProxy_ != 0;
}

sim::Task<std::uint64_t>
SenderChannel::unacked()
{
    std::uint64_t consumed = co_await ctx_.load(creditVa_);
    co_return seq_ - consumed;
}

sim::Task<bool>
SenderChannel::send(Addr src_va, std::uint32_t len)
{
    if (len > slotBytes_ - 16 || ringProxy_ == 0)
        co_return false;

    // Flow control: spin on the credit word the receiver keeps
    // updated via automatic update (one ordinary local load).
    for (;;) {
        std::uint64_t consumed = co_await ctx_.load(creditVa_);
        if (seq_ - consumed < slots_)
            break;
    }

    Addr slot = ringProxy_ + (seq_ % slots_) * slotBytes_;

    // Payload first...
    if (len > 0) {
        co_await core::udmaTransfer(ctx_, dev_, slot, src_va, len,
                                    /*wait_completion=*/true);
    }
    // ...then the header, whose trailing seq word is the receiver's
    // arrival signal. Written via a 16-byte deliberate update from
    // the staging buffer.
    co_await ctx_.store(headerBuf_, len);
    co_await ctx_.store(headerBuf_ + 8, seq_ + 1);
    co_await core::udmaTransfer(ctx_, dev_,
                                slot + slotBytes_ - 16, headerBuf_,
                                16, /*wait_completion=*/true);
    ++seq_;
    co_return true;
}

// --------------------------------------------------------------------
// ReceiverChannel
// --------------------------------------------------------------------

sim::Task<bool>
ReceiverChannel::bind(ChannelRendezvous &rv)
{
    slotBytes_ = rv.slotBytes;
    slots_ = rv.slots;

    // The ring itself, exported for the sender's deliberate updates.
    ringVa_ = co_await ctx_.sysAllocMemory(rv.ringBytes());
    rv.dataPages =
        co_await core::sysExportRange(ctx_, ringVa_, rv.ringBytes());
    rv.dataExported = true;

    // The acknowledgment path: a local mirror page whose stores the
    // NI snoops and propagates into the sender's credit word.
    creditMirror_ = co_await ctx_.sysAllocMemory(ctx_.pageBytes());
    while (!rv.creditExported)
        co_await ctx_.compute(500);
    bool ok = co_await core::sysMapAutoUpdate(
        ctx_, ni_, creditMirror_, peer_, rv.creditPagePaddr);
    co_return ok;
}

sim::Task<Addr>
ReceiverChannel::recvZeroCopy(std::uint32_t &len_out)
{
    Addr slot = ringVa_ + (rseq_ % slots_) * slotBytes_;
    // Wait for this slot's sequence number.
    co_await core::pollWord(ctx_, slot + slotBytes_ - 8, rseq_ + 1);
    len_out =
        std::uint32_t(co_await ctx_.load(slot + slotBytes_ - 16));
    co_return slot;
}

sim::Task<std::uint64_t>
ReceiverChannel::ackLast()
{
    ++rseq_;
    // One ordinary store; the automatic-update snooper does the rest.
    co_await ctx_.store(creditMirror_, rseq_);
    co_return rseq_;
}

sim::Task<std::uint32_t>
ReceiverChannel::recv(Addr dst_va, std::uint32_t max_len)
{
    std::uint32_t len = 0;
    Addr slot = co_await recvZeroCopy(len);
    std::uint32_t n = std::min(len, max_len);
    // Word-by-word copy out of the ring (user-level loads/stores).
    for (std::uint32_t off = 0; off < n; off += 8) {
        std::uint64_t w = co_await ctx_.load(slot + off);
        co_await ctx_.store(dst_va + off, w);
    }
    co_await ackLast();
    co_return len;
}

} // namespace shrimp::msg
