/**
 * @file
 * A graphics frame buffer as a UDMA device.
 *
 * The paper's running example of device proxy space: "if the device is
 * a graphics frame-buffer, a device address might specify a pixel."
 * Device proxy offset = byte offset into the frame buffer; supports
 * both memory->device (blit) and device->memory (readback) transfers.
 */

#ifndef SHRIMP_DEV_FRAME_BUFFER_HH
#define SHRIMP_DEV_FRAME_BUFFER_HH

#include <cstdint>
#include <cstring>
#include <vector>

#include "dma/status.hh"
#include "dma/udma_device.hh"
#include "sim/logging.hh"

namespace shrimp::dev
{

/** A linear RGBA8888 frame buffer. */
class FrameBuffer : public dma::UdmaDevice
{
  public:
    FrameBuffer(std::uint32_t width, std::uint32_t height)
        : width_(width), height_(height),
          pixels_(std::size_t(width) * height * 4, 0)
    {}

    std::uint32_t width() const { return width_; }
    std::uint32_t height() const { return height_; }

    /** Direct pixel access for tests/examples (host-side). */
    std::uint32_t
    pixel(std::uint32_t x, std::uint32_t y) const
    {
        SHRIMP_ASSERT(x < width_ && y < height_, "pixel out of range");
        std::uint32_t v;
        std::memcpy(&v, &pixels_[(std::size_t(y) * width_ + x) * 4], 4);
        return v;
    }

    std::string deviceName() const override { return "framebuffer"; }

    std::uint8_t
    validateTransfer(bool to_device, Addr dev_offset,
                     std::uint32_t nbytes) override
    {
        (void)to_device;
        if (dev_offset % 4 != 0 || nbytes % 4 != 0)
            return dma::device_error::alignment;
        if (dev_offset + nbytes > pixels_.size())
            return dma::device_error::range;
        return dma::device_error::none;
    }

    std::uint64_t
    deviceBoundary(Addr dev_offset) const override
    {
        // A frame buffer has no internal transfer boundary: anything
        // up to the end of VRAM goes.
        if (dev_offset >= pixels_.size())
            return 1; // force a range error in validate
        return pixels_.size() - dev_offset;
    }

    std::uint32_t
    pushCapacity(Addr dev_offset, std::uint32_t want) override
    {
        (void)dev_offset;
        return want; // VRAM accepts at bus speed
    }

    void
    devicePush(Addr dev_offset, const std::uint8_t *data,
               std::uint32_t len) override
    {
        SHRIMP_ASSERT(dev_offset + len <= pixels_.size(), "blit overrun");
        std::memcpy(&pixels_[dev_offset], data, len);
    }

    std::uint32_t
    pullAvailable(Addr dev_offset, std::uint32_t want) override
    {
        (void)dev_offset;
        return want;
    }

    void
    devicePull(Addr dev_offset, std::uint8_t *out,
               std::uint32_t len) override
    {
        SHRIMP_ASSERT(dev_offset + len <= pixels_.size(),
                      "readback overrun");
        std::memcpy(out, &pixels_[dev_offset], len);
    }

    void
    setEngineWakeup(std::function<void()> wakeup) override
    {
        (void)wakeup; // never stalls
    }

    std::uint64_t proxyExtentBytes() const override
    {
        return pixels_.size();
    }

  private:
    std::uint32_t width_;
    std::uint32_t height_;
    std::vector<std::uint8_t> pixels_;
};

} // namespace shrimp::dev

#endif // SHRIMP_DEV_FRAME_BUFFER_HH
