/**
 * @file
 * A pure data sink/source device for channel benchmarks (stands in for
 * a HIPPI-class channel endpoint: accepts bytes at bus speed, discards
 * them, and can source a repeating pattern).
 */

#ifndef SHRIMP_DEV_STREAM_SINK_HH
#define SHRIMP_DEV_STREAM_SINK_HH

#include <cstdint>

#include "dma/status.hh"
#include "dma/udma_device.hh"

namespace shrimp::dev
{

/** An infinite-extent byte sink/source. */
class StreamSink : public dma::UdmaDevice
{
  public:
    explicit StreamSink(std::uint64_t extent_bytes = std::uint64_t(1)
                                                     << 30)
        : extent_(extent_bytes)
    {}

    std::string deviceName() const override { return "stream-sink"; }

    std::uint8_t
    validateTransfer(bool to_device, Addr dev_offset,
                     std::uint32_t nbytes) override
    {
        (void)to_device;
        if (dev_offset % 4 != 0 || nbytes % 4 != 0)
            return dma::device_error::alignment;
        if (dev_offset + nbytes > extent_)
            return dma::device_error::range;
        return dma::device_error::none;
    }

    std::uint64_t
    deviceBoundary(Addr dev_offset) const override
    {
        return dev_offset < extent_ ? extent_ - dev_offset : 1;
    }

    std::uint32_t
    pushCapacity(Addr, std::uint32_t want) override
    {
        return want;
    }

    void
    devicePush(Addr, const std::uint8_t *, std::uint32_t len) override
    {
        bytesAccepted_ += len;
    }

    std::uint32_t
    pullAvailable(Addr, std::uint32_t want) override
    {
        return want;
    }

    void
    devicePull(Addr dev_offset, std::uint8_t *out,
               std::uint32_t len) override
    {
        for (std::uint32_t i = 0; i < len; ++i)
            out[i] = std::uint8_t((dev_offset + i) & 0xff);
        bytesSourced_ += len;
    }

    void setEngineWakeup(std::function<void()>) override {}

    std::uint64_t proxyExtentBytes() const override { return extent_; }

    std::uint64_t bytesAccepted() const { return bytesAccepted_; }
    std::uint64_t bytesSourced() const { return bytesSourced_; }

  private:
    std::uint64_t extent_;
    std::uint64_t bytesAccepted_ = 0;
    std::uint64_t bytesSourced_ = 0;
};

} // namespace shrimp::dev

#endif // SHRIMP_DEV_STREAM_SINK_HH
