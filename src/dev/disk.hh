/**
 * @file
 * A block storage device as a UDMA device.
 *
 * The paper: "If the device is a disk, a device address might name a
 * block." Device proxy offset = byte offset into the disk; a block is
 * one page. Reads (device->memory) exercise the I3 content-consistency
 * invariant: the destination memory page must be dirty before the
 * proxy STORE that names it succeeds.
 *
 * Timing: a per-request seek+rotation latency is charged through
 * startLatency(); the media transfer itself is modelled as
 * speed-matched to the I/O bus through the drive's track buffer.
 */

#ifndef SHRIMP_DEV_DISK_HH
#define SHRIMP_DEV_DISK_HH

#include <cstdint>
#include <cstring>
#include <vector>

#include "dma/status.hh"
#include "dma/udma_device.hh"
#include "sim/logging.hh"
#include "sim/params.hh"

namespace shrimp::dev
{

/** A simple fixed-latency disk. */
class Disk : public dma::UdmaDevice
{
  public:
    Disk(const sim::MachineParams &params, std::uint64_t capacity_bytes,
         std::uint32_t block_bytes = 4096)
        : params_(params), blockBytes_(block_bytes),
          image_(capacity_bytes, 0)
    {
        if (capacity_bytes % block_bytes != 0)
            fatal("disk capacity not a multiple of the block size");
    }

    std::uint64_t capacity() const { return image_.size(); }
    std::uint32_t blockBytes() const { return blockBytes_; }

    /** Host-side image access for tests/examples. */
    void
    writeImage(std::uint64_t offset, const void *src, std::uint64_t len)
    {
        SHRIMP_ASSERT(offset + len <= image_.size(), "image overrun");
        std::memcpy(&image_[offset], src, len);
    }

    void
    readImage(std::uint64_t offset, void *dst, std::uint64_t len) const
    {
        SHRIMP_ASSERT(offset + len <= image_.size(), "image overrun");
        std::memcpy(dst, &image_[offset], len);
    }

    std::string deviceName() const override { return "disk"; }

    std::uint8_t
    validateTransfer(bool to_device, Addr dev_offset,
                     std::uint32_t nbytes) override
    {
        (void)to_device;
        if (dev_offset % 4 != 0 || nbytes % 4 != 0)
            return dma::device_error::alignment;
        if (dev_offset + nbytes > image_.size())
            return dma::device_error::range;
        return dma::device_error::none;
    }

    std::uint64_t
    deviceBoundary(Addr dev_offset) const override
    {
        // Transfers do not cross a block boundary.
        if (dev_offset >= image_.size())
            return 1;
        return blockBytes_ - dev_offset % blockBytes_;
    }

    Tick
    startLatency(bool to_device, Addr dev_offset) const override
    {
        (void)to_device;
        (void)dev_offset;
        return params_.diskAccess(); // seek + rotation
    }

    std::uint32_t
    pushCapacity(Addr dev_offset, std::uint32_t want) override
    {
        (void)dev_offset;
        return want;
    }

    void
    devicePush(Addr dev_offset, const std::uint8_t *data,
               std::uint32_t len) override
    {
        SHRIMP_ASSERT(dev_offset + len <= image_.size(), "write overrun");
        std::memcpy(&image_[dev_offset], data, len);
        ++writes_;
    }

    std::uint32_t
    pullAvailable(Addr dev_offset, std::uint32_t want) override
    {
        (void)dev_offset;
        return want;
    }

    void
    devicePull(Addr dev_offset, std::uint8_t *out,
               std::uint32_t len) override
    {
        SHRIMP_ASSERT(dev_offset + len <= image_.size(), "read overrun");
        std::memcpy(out, &image_[dev_offset], len);
        ++reads_;
    }

    void
    setEngineWakeup(std::function<void()> wakeup) override
    {
        (void)wakeup; // the track buffer never stalls the engine
    }

    std::uint64_t proxyExtentBytes() const override
    {
        return image_.size();
    }

    std::uint64_t blockReads() const { return reads_; }
    std::uint64_t blockWrites() const { return writes_; }

  private:
    const sim::MachineParams &params_;
    std::uint32_t blockBytes_;
    std::vector<std::uint8_t> image_;
    std::uint64_t reads_ = 0;
    std::uint64_t writes_ = 0;
};

} // namespace shrimp::dev

#endif // SHRIMP_DEV_DISK_HH
