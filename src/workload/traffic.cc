#include "workload/traffic.hh"

namespace shrimp::workload
{

const char *
patternName(Pattern p)
{
    switch (p) {
      case Pattern::NearestNeighbor:
        return "nearest-neighbor";
      case Pattern::UniformRandom:
        return "uniform-random";
      case Pattern::Hotspot:
        return "hotspot";
      case Pattern::Transpose:
        return "transpose";
      case Pattern::Bursty:
        return "bursty";
      case Pattern::Incast:
        return "incast";
      case Pattern::Bisection:
        return "bisection";
    }
    return "?";
}

} // namespace shrimp::workload
