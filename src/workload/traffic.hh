/**
 * @file
 * Synthetic traffic generators for multi-node experiments, in the
 * tradition of interconnect studies: deterministic per-seed
 * destination streams for the classic patterns.
 *
 *  - NearestNeighbor: node i always sends to (i+1) mod n (ring);
 *  - UniformRandom:   uniformly random non-self destination;
 *  - Hotspot:         a fraction of traffic converges on one node,
 *                     the rest is uniform (exposes the receiver's
 *                     EISA bus as the bottleneck, as on real SHRIMP);
 *  - Transpose:       node i sends to (n-1-i) (a fixed permutation);
 *  - Bursty:          nearest-neighbor destinations, but an on/off
 *                     duty cycle the caller can query for pacing;
 *  - Incast:          every node sends to the hot node (which itself
 *                     sends to its right neighbour) — the pure
 *                     convergence case a mesh funnels through the hot
 *                     node's four ejection links;
 *  - Bisection:       node i sends to (i + n/2) mod n — every message
 *                     crosses the bisection, the classic
 *                     link-bandwidth stress on a mesh or torus.
 */

#ifndef SHRIMP_WORKLOAD_TRAFFIC_HH
#define SHRIMP_WORKLOAD_TRAFFIC_HH

#include <cstdint>
#include <string>

#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/types.hh"

namespace shrimp::workload
{

enum class Pattern
{
    NearestNeighbor,
    UniformRandom,
    Hotspot,
    Transpose,
    Bursty,
    Incast,
    Bisection,
};

/** Human-readable pattern name (for table rows). */
const char *patternName(Pattern p);

/** Configuration shared by all nodes of one experiment. */
struct TrafficConfig
{
    Pattern pattern = Pattern::UniformRandom;
    unsigned nodes = 4;
    std::uint32_t messageBytes = 4096;
    unsigned messagesPerNode = 32;
    std::uint64_t seed = 1;
    /** Hotspot: fraction of messages aimed at the hot node. */
    double hotspotFraction = 0.7;
    NodeId hotspotNode = 0;
    /** Bursty: fraction of the time the source is "on". */
    double dutyCycle = 0.5;
    std::uint32_t burstLength = 4;
};

/** One node's deterministic destination/pacing stream. */
class TrafficGenerator
{
  public:
    TrafficGenerator(const TrafficConfig &cfg, NodeId self)
        : cfg_(cfg), self_(self),
          rng_(cfg.seed * 0x9E3779B97F4A7C15ULL + self + 1)
    {
        SHRIMP_ASSERT(cfg.nodes >= 2, "traffic needs >= 2 nodes");
        SHRIMP_ASSERT(self < cfg.nodes, "bad self id");
    }

    /** The next message's destination (never self). */
    NodeId
    nextDestination()
    {
        switch (cfg_.pattern) {
          case Pattern::NearestNeighbor:
          case Pattern::Bursty:
            return (self_ + 1) % cfg_.nodes;

          case Pattern::Transpose: {
            NodeId d = cfg_.nodes - 1 - self_;
            // The middle node of an odd-sized transpose pairs with
            // its neighbour instead of itself.
            return d == self_ ? (self_ + 1) % cfg_.nodes : d;
          }

          case Pattern::Incast:
            return self_ == cfg_.hotspotNode
                       ? (self_ + 1) % cfg_.nodes
                       : cfg_.hotspotNode;

          case Pattern::Bisection: {
            NodeId d = (self_ + cfg_.nodes / 2) % cfg_.nodes;
            // Odd n: the halfway shift can land on self for no node,
            // but guard anyway (n/2 == 0 only if n == 1, asserted).
            return d == self_ ? (self_ + 1) % cfg_.nodes : d;
          }

          case Pattern::Hotspot: {
            if (self_ != cfg_.hotspotNode
                    && rng_.chance(cfg_.hotspotFraction)) {
                return cfg_.hotspotNode;
            }
            return uniformNonSelf();
          }

          case Pattern::UniformRandom:
          default:
            return uniformNonSelf();
        }
    }

    /**
     * Bursty pacing: true if the source should send now, advancing
     * the on/off state machine one message slot.
     */
    bool
    sendNow()
    {
        if (cfg_.pattern != Pattern::Bursty)
            return true;
        if (slotInBurst_ == 0)
            burstOn_ = rng_.chance(cfg_.dutyCycle);
        slotInBurst_ = (slotInBurst_ + 1) % cfg_.burstLength;
        return burstOn_;
    }

  private:
    NodeId
    uniformNonSelf()
    {
        NodeId d = NodeId(rng_.below(cfg_.nodes - 1));
        return d >= self_ ? d + 1 : d;
    }

    TrafficConfig cfg_;
    NodeId self_;
    sim::Random rng_;
    bool burstOn_ = true;
    std::uint32_t slotInBurst_ = 0;
};

} // namespace shrimp::workload

#endif // SHRIMP_WORKLOAD_TRAFFIC_HH
