#include "workload/ring.hh"

#include <chrono>
#include <string>
#include <vector>

#include "core/system.hh"
#include "msg/channel.hh"
#include "sim/profiler.hh"

namespace shrimp::workload
{

namespace
{

/** FNV-1a, folding counters into the run digest. */
struct Fnv
{
    std::uint64_t h = 0xcbf29ce484222325ull;

    void
    mix(std::uint64_t v)
    {
        for (unsigned i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 0x100000001b3ull;
        }
    }
};

} // namespace

RingResult
runRing(const RingConfig &cfg)
{
    using namespace shrimp::core;

    SHRIMP_ASSERT(cfg.nodes >= 2, "ring needs >= 2 nodes");

    SystemConfig scfg;
    scfg.nodes = cfg.nodes;
    scfg.shards = cfg.shards;
    scfg.node.memBytes = cfg.memBytes;
    scfg.params.quantumUs = cfg.quantumUs;
    scfg.node.devices.push_back(DeviceConfig{});
    // Always install the caller's fault config (specified = true), so
    // a default-constructed RingConfig is genuinely fault-free even
    // when the process saw --faults= or SHRIMP_FAULTS.
    scfg.faults = cfg.faults;
    scfg.faults.specified = true;
    // Same deliberateness for the wiring: the caller's topology always
    // wins over SHRIMP_TOPO / --topo= seen by the surrounding main.
    scfg.topology = cfg.topology;
    scfg.topology.specified = true;
    System sys(scfg);

    if (cfg.profiler && sys.engine())
        sys.engine()->setProfiler(cfg.profiler);

    const unsigned nodes = cfg.nodes;

    // The traffic topology as a link list: ring streams n -> n+1,
    // hotspot streams every n >= 1 into node 0 (N-1 credit windows
    // converging on one receive FIFO — the congestion stress case).
    struct Link
    {
        unsigned src;
        unsigned dst;
    };
    std::vector<Link> links;
    if (cfg.hotspot) {
        for (unsigned n = 1; n < nodes; ++n)
            links.push_back(Link{n, 0});
    } else {
        for (unsigned n = 0; n < nodes; ++n)
            links.push_back(Link{n, (n + 1) % nodes});
    }
    const unsigned nlinks = unsigned(links.size());

    std::vector<msg::ChannelRendezvous> rv(nlinks);
    for (auto &r : rv) {
        SHRIMP_ASSERT(cfg.recordBytes <= r.payloadCapacity(),
                      "record larger than a channel slot");
    }

    // Host-shared, but written only under runSetup (sequential) or by
    // exactly one node's shard (its own slot), so the data phase is
    // race-free.
    std::vector<Tick> linkStarted(nlinks, 0);
    std::vector<Tick> linkDone(nlinks, 0);
    unsigned ready = 0;

    for (unsigned li = 0; li < nlinks; ++li) {
        auto *src_node = &sys.node(links[li].src);
        auto *dst_node = &sys.node(links[li].dst);
        NodeId src_id = links[li].src;
        NodeId dst_id = links[li].dst;

        // Receiver half of this link, on its destination node.
        dst_node->kernel().spawn(
            "recv" + std::to_string(li),
            [&, dst_node, src_id, li](os::UserContext &ctx)
                -> sim::ProcTask {
                msg::ReceiverChannel ch(ctx, 0, *dst_node->ni(),
                                        src_id);
                if (!co_await ch.bind(rv[li]))
                    fatal("bind failed on link ", li);
                ++ready;
                for (unsigned r = 0; r < cfg.records; ++r) {
                    std::uint32_t len = 0;
                    (void)co_await ch.recvZeroCopy(len);
                    co_await ch.ackLast();
                }
                linkDone[li] = ctx.kernel().eq().now();
            });

        // Sender half of this link, on its source node.
        src_node->kernel().spawn(
            "send" + std::to_string(li),
            [&, src_node, dst_id, li](os::UserContext &ctx)
                -> sim::ProcTask {
                msg::SenderChannel ch(ctx, 0, *src_node->ni(), dst_id);
                if (!co_await ch.connect(rv[li]))
                    fatal("connect failed on link ", li);
                Addr buf = co_await ctx.sysAllocMemory(cfg.recordBytes);
                for (Addr off = 0; off < cfg.recordBytes; off += 4096)
                    co_await ctx.store(buf + off, li);
                ++ready;
                linkStarted[li] = ctx.kernel().eq().now();
                for (unsigned r = 0; r < cfg.records; ++r)
                    co_await ch.send(buf, cfg.recordBytes);
            });
    }

    // Phase 1: channel setup, sequential canonical order (the only
    // phase whose events read host state across nodes).
    sys.runSetup([&] { return ready == 2 * nlinks; }, cfg.limit);

    // Phase 2: the timed, parallel data phase.
    if (cfg.profiler)
        cfg.profiler->beginRun();
    // shrimp-lint: allow(D1) host wall time for the speedup report only; never feeds sim state
    auto wall0 = std::chrono::steady_clock::now();
    sys.runUntilAllDone(cfg.limit);
    sys.run(cfg.limit); // drain trailing credit/delivery events
    // shrimp-lint: allow(D1) host wall time for the speedup report only; never feeds sim state
    auto wall1 = std::chrono::steady_clock::now();
    if (cfg.profiler)
        cfg.profiler->endRun();

    RingResult res;
    res.hostSec =
        std::chrono::duration<double>(wall1 - wall0).count();
    res.simTicks = sys.simNow();
    res.simEvents = sys.simEvents();
    res.bytesRouted = sys.net().bytesRouted();
    if (auto *eng = sys.engine()) {
        res.crossPosts = eng->crossPosts();
        res.windows = eng->windows();
    }

    res.faults = sys.net().faults().totals();
    res.linksTotal = nlinks;

    // Per-node start/done ticks derived from the links: a node's
    // start is its sender link's first record (each node sends on at
    // most one link in both topologies); a node is done only when
    // every link it receives on has seen all its records.
    std::vector<Tick> started(nodes, 0);
    std::vector<Tick> done(nodes, 0);
    std::vector<bool> allDone(nodes, true);
    std::vector<bool> receives(nodes, false);
    for (unsigned li = 0; li < nlinks; ++li) {
        started[links[li].src] = linkStarted[li];
        receives[links[li].dst] = true;
        if (linkDone[li] == 0)
            allDone[links[li].dst] = false;
        else if (linkDone[li] > done[links[li].dst])
            done[links[li].dst] = linkDone[li];
        if (linkDone[li] != 0)
            ++res.linksDone;
    }
    for (unsigned n = 0; n < nodes; ++n) {
        if (!allDone[n])
            done[n] = 0;
        // Send-only nodes (hotspot) never count: completion there is
        // linksDone == linksTotal, not a per-receiver-node property.
        if (receives[n] && done[n] != 0)
            ++res.nodesDone;
    }

    Fnv fnv;
    fnv.mix(res.simTicks);
    fnv.mix(res.simEvents);
    fnv.mix(res.bytesRouted);
    Fnv data;
    for (unsigned n = 0; n < nodes; ++n) {
        auto &node = sys.node(n);
        auto *ni = node.ni();
        res.messagesDelivered += ni->messagesDelivered();
        res.bytesDelivered += ni->bytesDelivered();
        res.contextSwitches += node.kernel().contextSwitches();
        res.retransmits += ni->retransmits();
        res.fastRetransmits += ni->fastRetransmits();
        res.timeouts += ni->timeouts();
        res.acksSent += ni->acksSent();
        res.rxDupDropped += ni->rxDuplicatesDropped();
        res.rxCorruptDropped += ni->rxCorruptDropped();
        res.rxOooBuffered += ni->rxOutOfOrderBuffered();
        res.ecnMarked += ni->ecnMarked();
        res.cwndCuts += ni->cwndCuts();
        res.rescueSpurious += ni->rescueSpurious();
        for (const auto &f : ni->txFlowDebug()) {
            if (f.unackedChunks == 0)
                continue;
            res.chunksUnacked += f.unackedChunks;
            res.lostFlows.push_back(
                "node" + std::to_string(n) + " -> node"
                + std::to_string(f.dst) + ": "
                + std::to_string(f.unackedChunks)
                + " chunks unacked (next seq "
                + std::to_string(f.nextSeq) + ", cum acked "
                + std::to_string(f.cumAcked) + ", "
                + std::to_string(f.sackedChunks)
                + " sacked, cwnd " + std::to_string(f.cwnd)
                + (f.inRecovery ? ", in RTO recovery)" : ")"));
        }
        data.mix(ni->rxDataDigest());

        fnv.mix(started[n]);
        fnv.mix(done[n]);
        fnv.mix(ni->messagesSent());
        fnv.mix(ni->messagesDelivered());
        fnv.mix(ni->bytesDelivered());
        fnv.mix(ni->lastDeliveryTick());
        fnv.mix(node.kernel().contextSwitches());
        fnv.mix(ni->retransmits());
        fnv.mix(ni->fastRetransmits());
        fnv.mix(ni->timeouts());
        fnv.mix(ni->acksSent());
        fnv.mix(ni->rxDuplicatesDropped());
        fnv.mix(ni->rxCorruptDropped());
        fnv.mix(ni->rxOutOfOrderBuffered());
        fnv.mix(ni->ecnMarked());
        fnv.mix(ni->cwndCuts());
        fnv.mix(ni->rescueSpurious());
        fnv.mix(ni->rxDataDigest());
    }
    res.dataDigest = data.h;
    fnv.mix(res.faults.decisions);
    fnv.mix(res.faults.dropped);
    fnv.mix(res.faults.corrupted);
    fnv.mix(res.faults.duplicated);
    fnv.mix(res.faults.delayed);
    fnv.mix(res.faults.downDropped);
    res.digest = fnv.h;

    for (unsigned li = 0; li < nlinks; ++li) {
        Tick dt = linkDone[li] > linkStarted[li]
                      ? linkDone[li] - linkStarted[li]
                      : 0;
        if (dt == 0)
            continue;
        double us = ticksToUs(dt);
        res.aggregateMbS += cfg.records * double(cfg.recordBytes)
                            / us * 1e6 / (1 << 20);
    }
    if (cfg.onSystemDone)
        cfg.onSystemDone(sys);
    return res;
}

} // namespace shrimp::workload
