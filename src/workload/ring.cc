#include "workload/ring.hh"

#include <chrono>
#include <string>
#include <vector>

#include "core/system.hh"
#include "msg/channel.hh"
#include "sim/profiler.hh"

namespace shrimp::workload
{

namespace
{

/** FNV-1a, folding counters into the run digest. */
struct Fnv
{
    std::uint64_t h = 0xcbf29ce484222325ull;

    void
    mix(std::uint64_t v)
    {
        for (unsigned i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 0x100000001b3ull;
        }
    }
};

} // namespace

RingResult
runRing(const RingConfig &cfg)
{
    using namespace shrimp::core;

    SHRIMP_ASSERT(cfg.nodes >= 2, "ring needs >= 2 nodes");

    SystemConfig scfg;
    scfg.nodes = cfg.nodes;
    scfg.shards = cfg.shards;
    scfg.node.memBytes = cfg.memBytes;
    scfg.params.quantumUs = cfg.quantumUs;
    scfg.node.devices.push_back(DeviceConfig{});
    // Always install the caller's fault config (specified = true), so
    // a default-constructed RingConfig is genuinely fault-free even
    // when the process saw --faults= or SHRIMP_FAULTS.
    scfg.faults = cfg.faults;
    scfg.faults.specified = true;
    System sys(scfg);

    if (cfg.profiler && sys.engine())
        sys.engine()->setProfiler(cfg.profiler);

    const unsigned nodes = cfg.nodes;
    std::vector<msg::ChannelRendezvous> rv(nodes);
    for (auto &r : rv) {
        SHRIMP_ASSERT(cfg.recordBytes <= r.payloadCapacity(),
                      "record larger than a channel slot");
    }

    // Host-shared, but written only under runSetup (sequential) or by
    // exactly one node's shard (its own slot), so the data phase is
    // race-free.
    std::vector<Tick> started(nodes, 0);
    std::vector<Tick> done(nodes, 0);
    unsigned ready = 0;

    for (unsigned n = 0; n < nodes; ++n) {
        auto *me = &sys.node(n);
        auto *right = &sys.node((n + 1) % nodes);

        // Receiver half: accept from the left neighbour.
        me->kernel().spawn(
            "recv" + std::to_string(n),
            [&, me, n](os::UserContext &ctx) -> sim::ProcTask {
                NodeId left = (n + nodes - 1) % nodes;
                msg::ReceiverChannel ch(ctx, 0, *me->ni(), left);
                if (!co_await ch.bind(rv[left]))
                    fatal("bind failed on node ", n);
                ++ready;
                for (unsigned r = 0; r < cfg.records; ++r) {
                    std::uint32_t len = 0;
                    (void)co_await ch.recvZeroCopy(len);
                    co_await ch.ackLast();
                }
                done[n] = ctx.kernel().eq().now();
            });

        // Sender half: stream to the right neighbour.
        me->kernel().spawn(
            "send" + std::to_string(n),
            [&, me, right, n](os::UserContext &ctx) -> sim::ProcTask {
                msg::SenderChannel ch(ctx, 0, *me->ni(), right->id());
                if (!co_await ch.connect(rv[n]))
                    fatal("connect failed on node ", n);
                Addr buf = co_await ctx.sysAllocMemory(cfg.recordBytes);
                for (Addr off = 0; off < cfg.recordBytes; off += 4096)
                    co_await ctx.store(buf + off, n);
                ++ready;
                started[n] = ctx.kernel().eq().now();
                for (unsigned r = 0; r < cfg.records; ++r)
                    co_await ch.send(buf, cfg.recordBytes);
            });
    }

    // Phase 1: channel setup, sequential canonical order (the only
    // phase whose events read host state across nodes).
    sys.runSetup([&] { return ready == 2 * nodes; }, cfg.limit);

    // Phase 2: the timed, parallel data phase.
    if (cfg.profiler)
        cfg.profiler->beginRun();
    // shrimp-lint: allow(D1) host wall time for the speedup report only; never feeds sim state
    auto wall0 = std::chrono::steady_clock::now();
    sys.runUntilAllDone(cfg.limit);
    sys.run(cfg.limit); // drain trailing credit/delivery events
    // shrimp-lint: allow(D1) host wall time for the speedup report only; never feeds sim state
    auto wall1 = std::chrono::steady_clock::now();
    if (cfg.profiler)
        cfg.profiler->endRun();

    RingResult res;
    res.hostSec =
        std::chrono::duration<double>(wall1 - wall0).count();
    res.simTicks = sys.simNow();
    res.simEvents = sys.simEvents();
    res.bytesRouted = sys.net().bytesRouted();
    if (auto *eng = sys.engine()) {
        res.crossPosts = eng->crossPosts();
        res.windows = eng->windows();
    }

    res.faults = sys.net().faults().totals();

    Fnv fnv;
    fnv.mix(res.simTicks);
    fnv.mix(res.simEvents);
    fnv.mix(res.bytesRouted);
    Fnv data;
    for (unsigned n = 0; n < nodes; ++n) {
        auto &node = sys.node(n);
        auto *ni = node.ni();
        res.messagesDelivered += ni->messagesDelivered();
        res.bytesDelivered += ni->bytesDelivered();
        res.contextSwitches += node.kernel().contextSwitches();
        res.retransmits += ni->retransmits();
        res.timeouts += ni->timeouts();
        res.acksSent += ni->acksSent();
        res.rxDupDropped += ni->rxDuplicatesDropped();
        res.rxCorruptDropped += ni->rxCorruptDropped();
        res.rxOooDropped += ni->rxOutOfOrderDropped();
        if (done[n] != 0)
            ++res.nodesDone;
        for (const auto &f : ni->txFlowDebug()) {
            if (f.unackedChunks == 0)
                continue;
            res.chunksUnacked += f.unackedChunks;
            res.lostFlows.push_back(
                "node" + std::to_string(n) + " -> node"
                + std::to_string(f.dst) + ": "
                + std::to_string(f.unackedChunks)
                + " chunks unacked (next seq "
                + std::to_string(f.nextSeq) + ", cum acked "
                + std::to_string(f.cumAcked) + ")");
        }
        data.mix(ni->rxDataDigest());

        fnv.mix(started[n]);
        fnv.mix(done[n]);
        fnv.mix(ni->messagesSent());
        fnv.mix(ni->messagesDelivered());
        fnv.mix(ni->bytesDelivered());
        fnv.mix(ni->lastDeliveryTick());
        fnv.mix(node.kernel().contextSwitches());
        fnv.mix(ni->retransmits());
        fnv.mix(ni->timeouts());
        fnv.mix(ni->acksSent());
        fnv.mix(ni->rxDuplicatesDropped());
        fnv.mix(ni->rxCorruptDropped());
        fnv.mix(ni->rxOutOfOrderDropped());
        fnv.mix(ni->rxDataDigest());
    }
    res.dataDigest = data.h;
    fnv.mix(res.faults.decisions);
    fnv.mix(res.faults.dropped);
    fnv.mix(res.faults.corrupted);
    fnv.mix(res.faults.duplicated);
    fnv.mix(res.faults.delayed);
    fnv.mix(res.faults.downDropped);
    res.digest = fnv.h;

    for (unsigned n = 0; n < nodes; ++n) {
        unsigned left = (n + nodes - 1) % nodes;
        Tick dt = done[n] > started[left] ? done[n] - started[left]
                                          : 0;
        if (dt == 0)
            continue;
        double us = ticksToUs(dt);
        res.aggregateMbS += cfg.records * double(cfg.recordBytes)
                            / us * 1e6 / (1 << 20);
    }
    if (cfg.onSystemDone)
        cfg.onSystemDone(sys);
    return res;
}

} // namespace shrimp::workload
