/**
 * @file
 * The multi-node ring-traffic workload behind bench/multinode_traffic
 * and the shard-determinism tests: N nodes in a ring, every node
 * simultaneously streaming fixed-size records to its right neighbour
 * through a user-level msg::Channel (deliberate-update payloads,
 * automatic-update credits), generalizing the paper's four-processor
 * prototype run to any node count.
 *
 * The run has two phases. Channel setup rendezvouses through
 * host-shared ChannelRendezvous objects, so it executes under
 * System::runSetup — sequential, in the canonical global event order,
 * identical for any shard count. The data phase that follows is
 * entirely node-local plus NI traffic, so it runs under the parallel
 * engine (or the legacy queue) and is the part the caller times.
 *
 * RingResult::digest folds every per-node counter into one FNV-1a
 * value, so "bit-identical across shard counts" is one integer
 * comparison.
 */

#ifndef SHRIMP_WORKLOAD_RING_HH
#define SHRIMP_WORKLOAD_RING_HH

#include <cstdint>

#include "sim/types.hh"

namespace shrimp::workload
{

/** One ring-traffic experiment. */
struct RingConfig
{
    unsigned nodes = 4;
    unsigned records = 64;
    /** Per-record payload; must fit one channel slot (<= 4080). */
    std::uint32_t recordBytes = 4080;
    /** SystemConfig::shards: 0 = legacy shared event queue. */
    unsigned shards = 0;
    /** Fine quantum so each node's sender/receiver pair pipelines. */
    double quantumUs = 200.0;
    std::uint64_t memBytes = std::uint64_t(8) << 20;
    Tick limit = Tick(300) * tickSec;
};

/** What one run produced (simulated time plus host wall time). */
struct RingResult
{
    // --- simulated-time outputs: must be bit-identical across
    //     shard counts for the same config.
    Tick simTicks = 0;
    std::uint64_t simEvents = 0;
    std::uint64_t bytesRouted = 0;
    std::uint64_t messagesDelivered = 0;
    std::uint64_t bytesDelivered = 0;
    std::uint64_t contextSwitches = 0;
    /** FNV-1a over every per-node counter and the totals above. */
    std::uint64_t digest = 0;
    double aggregateMbS = 0;

    // --- host-side outputs: vary run to run.
    /** Wall seconds spent in the timed data phase. */
    double hostSec = 0;

    // --- sharded-engine introspection (0 in legacy mode).
    std::uint64_t crossPosts = 0;
    std::uint64_t windows = 0;
};

/** Build the system, run both phases, and report. */
RingResult runRing(const RingConfig &cfg);

} // namespace shrimp::workload

#endif // SHRIMP_WORKLOAD_RING_HH
