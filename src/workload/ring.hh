/**
 * @file
 * The multi-node traffic workload behind bench/multinode_traffic and
 * the shard-determinism tests: N nodes streaming fixed-size records
 * through user-level msg::Channels (deliberate-update payloads,
 * automatic-update credits), generalizing the paper's four-processor
 * prototype run to any node count. Two topologies: the default ring
 * (every node streams to its right neighbour) and hotspot (every
 * node streams to node 0 — the congestion-control stress case, where
 * N-1 credit windows converge on one receiver FIFO).
 *
 * The run has two phases. Channel setup rendezvouses through
 * host-shared ChannelRendezvous objects, so it executes under
 * System::runSetup — sequential, in the canonical global event order,
 * identical for any shard count. The data phase that follows is
 * entirely node-local plus NI traffic, so it runs under the parallel
 * engine (or the legacy queue) and is the part the caller times.
 *
 * RingResult::digest folds every per-node counter into one FNV-1a
 * value, so "bit-identical across shard counts" is one integer
 * comparison.
 */

#ifndef SHRIMP_WORKLOAD_RING_HH
#define SHRIMP_WORKLOAD_RING_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "shrimp/fault.hh"
#include "sim/params.hh"
#include "sim/types.hh"

namespace shrimp::core
{
class System;
} // namespace shrimp::core

namespace shrimp::sim
{
class ShardProfiler;
} // namespace shrimp::sim

namespace shrimp::workload
{

/** One ring-traffic experiment. */
struct RingConfig
{
    unsigned nodes = 4;
    /**
     * Hotspot topology: every node n >= 1 streams its records to
     * node 0 instead of around the ring. Node 0 only receives.
     */
    bool hotspot = false;
    unsigned records = 64;
    /** Per-record payload; must fit one channel slot (<= 4080). */
    std::uint32_t recordBytes = 4080;
    /** SystemConfig::shards: 0 = legacy shared event queue. */
    unsigned shards = 0;
    /** Fine quantum so each node's sender/receiver pair pipelines. */
    double quantumUs = 200.0;
    std::uint64_t memBytes = std::uint64_t(8) << 20;
    Tick limit = Tick(300) * tickSec;
    /**
     * Backplane fault injection. Always installed with
     * specified = true, so an in-process reference run with a
     * default-constructed config really is fault-free even when the
     * surrounding main saw `--faults=` or SHRIMP_FAULTS.
     */
    net::FaultConfig faults;
    /**
     * Backplane wiring (crossbar default, or mesh/torus — must match
     * `nodes` when non-flat). Always passed through to SystemConfig,
     * so an in-process reference run with a default-constructed
     * config really is a crossbar even under SHRIMP_TOPO / --topo=.
     */
    sim::TopologyConfig topology;
    /**
     * Optional time-budget profiler: attached to the sharded engine
     * (no-op in legacy mode) and begun/ended around the timed data
     * phase, so setup never pollutes the budget.
     */
    sim::ShardProfiler *profiler = nullptr;
    /**
     * Called with the live System after the run's counters are
     * collected, just before it is destroyed — the hook benches use
     * to capture per-component stats (the System does not survive
     * runRing's return).
     */
    std::function<void(core::System &)> onSystemDone;
};

/** What one run produced (simulated time plus host wall time). */
struct RingResult
{
    // --- simulated-time outputs: must be bit-identical across
    //     shard counts for the same config.
    Tick simTicks = 0;
    std::uint64_t simEvents = 0;
    std::uint64_t bytesRouted = 0;
    std::uint64_t messagesDelivered = 0;
    std::uint64_t bytesDelivered = 0;
    std::uint64_t contextSwitches = 0;
    /** FNV-1a over every per-node counter and the totals above. */
    std::uint64_t digest = 0;
    double aggregateMbS = 0;

    // --- reliability outputs (also folded into digest).
    std::uint64_t retransmits = 0;
    /** SACK-scoreboard fast retransmits (subset of retransmits). */
    std::uint64_t fastRetransmits = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t acksSent = 0;
    std::uint64_t rxDupDropped = 0;
    std::uint64_t rxCorruptDropped = 0;
    /** Out-of-order chunks resequenced (never dropped anymore). */
    std::uint64_t rxOooBuffered = 0;
    /** Acks sent with the ECN (receive-FIFO overcommit) mark. */
    std::uint64_t ecnMarked = 0;
    /** Congestion-window halvings across all sender flows. */
    std::uint64_t cwndCuts = 0;
    /** Rescue retransmits the ack scoreboard later proved unneeded. */
    std::uint64_t rescueSpurious = 0;
    /** Merged interconnect fault counters (what the links did). */
    net::FaultCounters faults;
    /**
     * Digest of the payload bytes every receiver drained into memory
     * (per-source flows, sequence order). Unlike `digest`, which folds
     * timing-sensitive counters, this matches between a fault-free run
     * and a faulty run that recovered every byte exactly once.
     */
    std::uint64_t dataDigest = 0;

    // --- completion accounting (the lost-completion trace).
    /** Nodes all of whose receive links saw every record. */
    unsigned nodesDone = 0;
    /** Traffic links in the topology (ring: N, hotspot: N-1). */
    unsigned linksTotal = 0;
    /** Links whose receiver saw every record. */
    unsigned linksDone = 0;
    /** Chunks still sitting in sender retransmit buffers at the end. */
    std::uint64_t chunksUnacked = 0;
    /** Human-readable unfinished flows ("node0 -> node1: ..."). */
    std::vector<std::string> lostFlows;

    // --- host-side outputs: vary run to run.
    /** Wall seconds spent in the timed data phase. */
    double hostSec = 0;

    // --- sharded-engine introspection (0 in legacy mode).
    std::uint64_t crossPosts = 0;
    std::uint64_t windows = 0;
};

/** Build the system, run both phases, and report. */
RingResult runRing(const RingConfig &cfg);

} // namespace shrimp::workload

#endif // SHRIMP_WORKLOAD_RING_HH
