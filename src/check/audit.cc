#include "check/audit.hh"

#include <sstream>

#include "core/system.hh"

namespace shrimp::audit
{

const char *
invariantName(Invariant inv)
{
    switch (inv) {
      case Invariant::I1Atomicity: return "I1";
      case Invariant::I2Mapping: return "I2";
      case Invariant::I3Content: return "I3";
      case Invariant::I4Registers: return "I4";
    }
    return "I?";
}

std::string
describe(const Violation &v)
{
    std::ostringstream os;
    os << invariantName(v.invariant) << " node" << v.node;
    if (v.pid != invalidPid)
        os << " pid" << v.pid;
    if (v.device >= 0)
        os << " dev" << v.device;
    os << " addr=0x" << std::hex << v.addr << std::dec << ": "
       << v.detail;
    return os.str();
}

namespace
{

/** Violation under construction, bound to one node. */
struct Reporter
{
    NodeId node;
    std::vector<Violation> &out;

    void
    add(Invariant inv, Pid pid, int device, Addr addr,
        const std::string &detail)
    {
        Violation v;
        v.invariant = inv;
        v.node = node;
        v.pid = pid;
        v.device = device;
        v.addr = addr;
        v.detail = detail;
        out.push_back(std::move(v));
    }
};

/**
 * I2/I3 over one process's page table: every valid proxy PTE must
 * shadow a valid real PTE of the same process (I2), and a writable
 * memory-proxy PTE implies the real page is dirty under the
 * WriteProtectProxy policy (I3).
 */
void
checkProcessTables(os::Kernel &kernel, os::Process &proc, Reporter &rep)
{
    const vm::AddressLayout &layout = kernel.layout();
    const Pid pid = proc.pid();
    vm::PageTable &pt = proc.pageTable();

    pt.forEach([&](std::uint64_t vpn, vm::Pte &pte) {
        if (!pte.valid)
            return;
        Addr va = Addr(vpn) * layout.pageBytes();
        vm::Decoded vdec = layout.decode(va);
        if (vdec.space == vm::Space::Invalid) {
            rep.add(Invariant::I2Mapping, pid, -1, va,
                    "valid PTE for a hole in the address map");
            return;
        }
        if (vdec.space == vm::Space::Memory) {
            // Real mapping: the frame must be owned by (pid, vpn).
            vm::Decoded fdec = layout.decode(pte.frameAddr);
            if (fdec.space != vm::Space::Memory
                    || pte.frameAddr >= layout.memBytes()) {
                rep.add(Invariant::I2Mapping, pid, -1, va,
                        "real PTE points outside physical memory");
                return;
            }
            std::uint64_t frame = layout.pageOf(pte.frameAddr);
            const auto &fi = kernel.frameInfo(frame);
            if (!fi.used || fi.pid != pid || fi.vpn != vpn) {
                rep.add(Invariant::I2Mapping, pid, -1, va,
                        "real PTE's frame not owned by this (pid, vpn) "
                        "in the frame table");
            }
            return;
        }

        const int dev = int(vdec.device);
        if (vdec.space == vm::Space::DevProxy) {
            // Device-proxy mapping: must target the same device's
            // device proxy window in physical space.
            vm::Decoded fdec = layout.decode(pte.frameAddr);
            if (fdec.space != vm::Space::DevProxy
                    || fdec.device != vdec.device) {
                rep.add(Invariant::I2Mapping, pid, dev, va,
                        "device-proxy PTE does not target the device's "
                        "proxy window");
            }
            return;
        }

        // Memory-proxy mapping (I2 proper): find the real PTE it
        // shadows. The virtual proxy page of real va R is PROXY(R),
        // so decode() already recovered R in vdec.offset.
        Addr real_va = vdec.offset;
        std::uint64_t real_vpn = layout.pageOf(real_va);
        const vm::Pte *real = pt.lookup(real_vpn);
        if (!real || !real->valid) {
            rep.add(Invariant::I2Mapping, pid, dev, va,
                    "valid memory-proxy PTE with no valid real PTE "
                    "(stale after page-out?)");
            return;
        }
        Addr expect = layout.proxy(real->frameAddr, vdec.device);
        if (pte.frameAddr != expect) {
            rep.add(Invariant::I2Mapping, pid, dev, va,
                    "memory-proxy PTE frame is not PROXY(real frame)");
            return;
        }
        if (pte.user != real->user) {
            rep.add(Invariant::I2Mapping, pid, dev, va,
                    "memory-proxy PTE user bit differs from real PTE");
        }
        if (pte.writable && !real->writable) {
            rep.add(Invariant::I2Mapping, pid, dev, va,
                    "memory-proxy PTE writable but real PTE is not");
        }

        // I3 (WriteProtectProxy): writable proxy => real page dirty.
        // Under ProxyDirtyBits the proxy carries its own dirty bit and
        // the page counts dirty if either bit is set, so writability
        // over a clean page is architecturally fine there.
        if (kernel.i3Policy() == os::I3Policy::WriteProtectProxy
                && pte.writable && !real->dirty) {
            rep.add(Invariant::I3Content, pid, dev, va,
                    "writable memory-proxy PTE over a clean real page");
        }
    });
}

/**
 * Frame-table reverse check (I2): every used frame is mapped by a
 * valid real PTE of its recorded owner, at the recorded vpn, pointing
 * back at the frame.
 */
void
checkFrameTable(os::Kernel &kernel, Reporter &rep)
{
    const vm::AddressLayout &layout = kernel.layout();
    std::uint64_t nframes = layout.memBytes() / layout.pageBytes();
    for (std::uint64_t frame = 0; frame < nframes; ++frame) {
        const auto &fi = kernel.frameInfo(frame);
        if (!fi.used)
            continue;
        Addr frame_base = Addr(frame) * layout.pageBytes();
        os::Process *owner = kernel.findProcess(fi.pid);
        if (!owner) {
            rep.add(Invariant::I2Mapping, fi.pid, -1, frame_base,
                    "used frame owned by a nonexistent process");
            continue;
        }
        const vm::Pte *pte = owner->pageTable().lookup(fi.vpn);
        if (!pte || !pte->valid || pte->frameAddr != frame_base) {
            rep.add(Invariant::I2Mapping, fi.pid, -1, frame_base,
                    "used frame not mapped back by its owner's PTE");
        }
    }
}

/**
 * I1: a latched DESTINATION/COUNT must belong to the process whose
 * address space is active. I4: every page referenced by a running or
 * queued transfer — and any latched real-memory DESTINATION page —
 * must still be resident.
 */
void
checkControllers(os::Kernel &kernel, vm::Mmu &mmu, Reporter &rep)
{
    const vm::AddressLayout &layout = kernel.layout();

    // Identify the process owning the active address space.
    Pid active_pid = invalidPid;
    if (vm::PageTable *table = mmu.activeTable()) {
        kernel.forEachProcess([&](os::Process &p) {
            if (&p.pageTable() == table)
                active_pid = p.pid();
        });
    }

    for (dma::UdmaController *ctrl : kernel.controllers()) {
        const int dev = int(ctrl->deviceIndex());

        Pid owner = ctrl->latchOwnerPid();
        if (owner != invalidPid && active_pid != invalidPid
                && owner != active_pid) {
            rep.add(Invariant::I1Atomicity, owner, dev, 0,
                    "latched DESTINATION issued by pid"
                        + std::to_string(owner)
                        + " survived a switch to pid"
                        + std::to_string(active_pid)
                        + " (missed Inval)");
        }

        for (const auto &[page_base, refs] : ctrl->busyPages()) {
            std::uint64_t frame = layout.pageOf(page_base);
            if (page_base >= layout.memBytes()
                    || !kernel.frameInfo(frame).used) {
                rep.add(Invariant::I4Registers, invalidPid, dev,
                        page_base,
                        "transfer references a non-resident page ("
                            + std::to_string(refs) + " refs)");
            }
        }

        Addr dest_page = 0;
        if (ctrl->destLoadedPage(dest_page)
                && (dest_page >= layout.memBytes()
                    || !kernel.frameInfo(layout.pageOf(dest_page))
                            .used)) {
            rep.add(Invariant::I4Registers, owner, dev, dest_page,
                    "latched DESTINATION names a non-resident page "
                    "(evicted without Inval)");
        }
    }
}

/**
 * Proxy-translation-cache coherence (I2): every cached entry must
 * point at exactly the PTE node the owner's page table holds for that
 * vpn. Compared by pointer identity — never dereferenced — so a stale
 * entry left behind by a missed shootdown (the no-tcache-shootdown
 * mutation) is detected without touching freed memory.
 */
void
checkTranslationCache(os::Kernel &kernel, Reporter &rep)
{
    const vm::AddressLayout &layout = kernel.layout();
    kernel.proxyTcache().forEach(
        [&](const os::ProxyTranslationCache::Entry &e) {
            Addr va = Addr(e.vpn) * layout.pageBytes();
            os::Process *owner = kernel.findProcess(e.pid);
            if (!owner) {
                rep.add(Invariant::I2Mapping, e.pid, -1, va,
                        "translation-cache entry for a nonexistent "
                        "process");
                return;
            }
            if (owner->pageTable().lookup(e.vpn) != e.pte) {
                rep.add(Invariant::I2Mapping, e.pid, -1, va,
                        "stale proxy-translation-cache entry: cached "
                        "PTE is not the page table's PTE (missed "
                        "shootdown)");
            }
        });
}

} // namespace

void
checkNode(core::Node &node, std::vector<Violation> &out)
{
    Reporter rep{node.id(), out};
    os::Kernel &kernel = node.kernel();
    kernel.forEachProcess([&](os::Process &p) {
        if (p.state() == os::ProcState::Zombie)
            return;
        checkProcessTables(kernel, p, rep);
    });
    checkFrameTable(kernel, rep);
    checkControllers(kernel, node.mmu(), rep);
    checkTranslationCache(kernel, rep);
}

std::vector<Violation>
checkAll(core::System &sys)
{
    std::vector<Violation> out;
    for (unsigned i = 0; i < sys.nodeCount(); ++i)
        checkNode(sys.node(i), out);
    return out;
}

} // namespace shrimp::audit
