/**
 * @file
 * The invariant auditor: executable forms of the paper's Section 6
 * invariants I1-I4.
 *
 * Given a System (or one Node), cross-checks the *global* state —
 * page tables, frame table, MMU, and every UDMA controller — and
 * returns a structured list of violations. The predicates, mapped to
 * the paper's wording (see DESIGN.md §8):
 *
 *  - I1 (atomicity): "a STORE/LOAD pair must be issued atomically with
 *    respect to other processes' initiation pairs". Checked as: any
 *    latched DESTINATION/COUNT in a controller was issued by the
 *    process whose page table is currently active in the MMU. A latch
 *    surviving a context switch is exactly the missed-Inval hole.
 *  - I2 (mapping consistency): "proxy space mappings must be
 *    consistent with the real mappings". Checked as: every valid
 *    memory-proxy PTE points at PROXY(frame) of a valid real PTE of
 *    the same process, with identical permissions modulo the dirty-
 *    driven writability of I3, and the real frame is owned by that
 *    (proc, vpn) in the kernel's frame table.
 *  - I3 (content consistency): "a page is writable through the proxy
 *    space only if the page is dirty" (WriteProtectProxy policy).
 *    Checked as: every writable memory-proxy PTE maps a real page
 *    considered dirty under the kernel's active I3 policy.
 *  - I4 (register consistency): "the contents of the UDMA controller
 *    registers must be consistent with the translations". Checked as:
 *    every page referenced by an in-flight or queued transfer is
 *    resident (frame in use), and a latched real-memory DESTINATION
 *    page is still resident.
 *
 * All checks are read-only and untimed; they can run after any event.
 */

#ifndef SHRIMP_CHECK_AUDIT_HH
#define SHRIMP_CHECK_AUDIT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace shrimp::core
{
class Node;
class System;
} // namespace shrimp::core

namespace shrimp::audit
{

/** The paper's Section 6 invariants. */
enum class Invariant
{
    I1Atomicity,
    I2Mapping,
    I3Content,
    I4Registers,
};

/** Short name: "I1", "I2", "I3", "I4". */
const char *invariantName(Invariant inv);

/** One broken predicate, with enough context to debug it. */
struct Violation
{
    Invariant invariant = Invariant::I1Atomicity;
    /** Node the violation was found on. */
    NodeId node = 0;
    /** Offending process (invalidPid when not attributable). */
    Pid pid = invalidPid;
    /** Device slot involved (-1 when none). */
    int device = -1;
    /** Address most relevant to the violation (va or page base). */
    Addr addr = 0;
    /** Human-readable predicate that failed. */
    std::string detail;
};

/** "I2 node0 pid3 dev1 va=0x...: <detail>" */
std::string describe(const Violation &v);

/** Audit one node; appends violations to @p out. */
void checkNode(core::Node &node, std::vector<Violation> &out);

/** Audit every node of the system. Empty result = all invariants hold. */
std::vector<Violation> checkAll(core::System &sys);

} // namespace shrimp::audit

#endif // SHRIMP_CHECK_AUDIT_HH
