#include "check/monitor.hh"

#include <iostream>

#include "core/system.hh"

namespace shrimp::audit
{

namespace
{

/** Cap on retained violations; the count keeps running past it. */
constexpr std::size_t maxRetained = 256;
/** Cap on violations echoed to stderr in non-fail-fast mode. */
constexpr std::uint64_t maxWarnings = 16;

} // namespace

bool
parseMode(const std::string &spec, Mode &out)
{
    if (spec == "off") {
        out = Mode::Off;
        return true;
    }
    if (spec == "on-switch") {
        out = Mode::OnSwitch;
        return true;
    }
    if (spec == "every-event") {
        out = Mode::EveryEvent;
        return true;
    }
    if (spec == "at-barrier") {
        out = Mode::AtBarrier;
        return true;
    }
    return false;
}

const char *
modeName(Mode m)
{
    switch (m) {
      case Mode::Off: return "off";
      case Mode::OnSwitch: return "on-switch";
      case Mode::EveryEvent: return "every-event";
      case Mode::AtBarrier: return "at-barrier";
    }
    return "?";
}

Monitor::Monitor(core::System &sys, Mode mode, bool fail_fast)
    : sys_(sys), mode_(mode), failFast_(fail_fast)
{
    // AtBarrier installs no per-event hooks: the sharded engine calls
    // auditNow from its barrier hook, when all shards are quiescent.
    if (mode_ == Mode::Off || mode_ == Mode::AtBarrier)
        return;
    const bool every = mode_ == Mode::EveryEvent;
    for (unsigned i = 0; i < sys_.nodeCount(); ++i) {
        os::Kernel &k = sys_.node(i).kernel();
        k.setAuditHook([this, every](os::KernelEvent ev) {
            if (!every && ev != os::KernelEvent::ContextSwitch)
                return;
            auditNow(os::kernelEventName(ev));
        });
        if (every) {
            for (dma::UdmaController *c : k.controllers()) {
                c->setCompletionObserver([this] {
                    auditNow(os::kernelEventName(
                        os::KernelEvent::DmaComplete));
                });
            }
        }
    }
}

Monitor::~Monitor()
{
    if (mode_ == Mode::Off || mode_ == Mode::AtBarrier)
        return;
    for (unsigned i = 0; i < sys_.nodeCount(); ++i) {
        os::Kernel &k = sys_.node(i).kernel();
        k.setAuditHook({});
        if (mode_ == Mode::EveryEvent) {
            for (dma::UdmaController *c : k.controllers())
                c->setCompletionObserver({});
        }
    }
}

void
Monitor::auditNow(const char *why)
{
    ++audits_;
    std::vector<Violation> found = checkAll(sys_);
    if (!found.empty())
        record(why, std::move(found));
}

void
Monitor::record(const char *why, std::vector<Violation> found)
{
    for (const Violation &v : found) {
        ++violationCount_;
        if (violationCount_ <= maxWarnings || failFast_) {
            std::cerr << "audit[" << why << "]: " << describe(v)
                      << "\n";
        } else if (violationCount_ == maxWarnings + 1) {
            std::cerr << "audit: further violations suppressed\n";
        }
        if (violations_.size() < maxRetained)
            violations_.push_back(v);
    }
    if (failFast_) {
        // Build the message before the vector argument can be moved
        // from (function argument evaluation order is unspecified).
        std::string what = "invariant audit failed at '"
                           + std::string(why) + "': "
                           + describe(found.front());
        throw ViolationError(std::move(what), std::move(found));
    }
}

} // namespace shrimp::audit
