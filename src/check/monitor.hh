/**
 * @file
 * Continuous invariant monitoring: wires audit::checkAll into the
 * kernel's audit hooks so a running simulation is cross-checked at
 * every Section 6 maintenance point (context switch, page fault,
 * page-out, DMA completion) — or at context switches only, the cheap
 * mode that still catches every I1 hole.
 *
 * Enabled per run with `--audit=every-event|on-switch` (threaded
 * through core::parseRunOptions) or the SHRIMP_AUDIT environment
 * variable, and programmatically with System::enableAudit.
 */

#ifndef SHRIMP_CHECK_MONITOR_HH
#define SHRIMP_CHECK_MONITOR_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/audit.hh"

namespace shrimp::core
{
class System;
} // namespace shrimp::core

namespace shrimp::audit
{

/** How often the monitor audits. */
enum class Mode
{
    Off,
    /** Audit after context switches only (the I1 window). */
    OnSwitch,
    /** Audit after every kernel event and DMA completion. */
    EveryEvent,
    /**
     * Audit only at sharded-engine window barriers, where every
     * shard is quiescent and cross-shard state is consistent. The
     * only mode usable with --shards > 0: the per-event hooks would
     * run concurrently from worker threads and read other shards'
     * state mid-window. System::enableAudit coerces the other modes
     * to this one when sharded and wires the barrier hook.
     */
    AtBarrier,
};

/** "off", "on-switch", "every-event", "at-barrier" -> Mode;
 *  false on junk. */
bool parseMode(const std::string &spec, Mode &out);

const char *modeName(Mode m);

/** Thrown by a fail-fast monitor on the first violation. */
class ViolationError : public std::runtime_error
{
  public:
    ViolationError(std::string what, std::vector<Violation> violations)
        : std::runtime_error(std::move(what)),
          violations_(std::move(violations))
    {}

    const std::vector<Violation> &violations() const
    {
        return violations_;
    }

  private:
    std::vector<Violation> violations_;
};

/**
 * Installs itself into every node's kernel audit hook and every UDMA
 * controller's completion observer; detaches on destruction. One
 * monitor per System.
 */
class Monitor
{
  public:
    /**
     * @param fail_fast Throw ViolationError on the first violating
     *        audit instead of recording and continuing.
     */
    Monitor(core::System &sys, Mode mode, bool fail_fast = false);
    ~Monitor();

    Monitor(const Monitor &) = delete;
    Monitor &operator=(const Monitor &) = delete;

    Mode mode() const { return mode_; }

    /** Audits performed. */
    std::uint64_t audits() const { return audits_; }

    /** Violations seen across all audits (retention is capped). */
    std::uint64_t violationCount() const { return violationCount_; }

    /** The retained violations (first few hundred). */
    const std::vector<Violation> &violations() const
    {
        return violations_;
    }

    /** Run one audit now, independent of any hook. */
    void auditNow(const char *why);

  private:
    void record(const char *why, std::vector<Violation> found);

    core::System &sys_;
    Mode mode_;
    bool failFast_;
    std::uint64_t audits_ = 0;
    std::uint64_t violationCount_ = 0;
    std::vector<Violation> violations_;
};

} // namespace shrimp::audit

#endif // SHRIMP_CHECK_MONITOR_HH
