/**
 * @file
 * Simulated physical memory: a flat, frame-granular byte store.
 *
 * Every node owns one PhysicalMemory. The kernel's frame allocator and
 * the DMA engines address it with physical byte addresses in
 * [0, size()). Timing is charged by the callers (CPU, bus, DMA
 * engines); this class is purely functional state.
 */

#ifndef SHRIMP_MEM_PHYSICAL_MEMORY_HH
#define SHRIMP_MEM_PHYSICAL_MEMORY_HH

#include <cstdint>
#include <cstring>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace shrimp::mem
{

/** Flat simulated DRAM. */
class PhysicalMemory
{
  public:
    /**
     * @param bytes Total memory size; must be a multiple of @p
     *        page_bytes.
     * @param page_bytes Frame size (the VM page size).
     */
    PhysicalMemory(std::uint64_t bytes, std::uint32_t page_bytes)
        : pageBytes_(page_bytes), data_(bytes, 0)
    {
        if (page_bytes == 0 || bytes % page_bytes != 0)
            fatal("physical memory size ", bytes,
                  " is not a multiple of the page size ", page_bytes);
    }

    std::uint64_t size() const { return data_.size(); }
    std::uint32_t pageBytes() const { return pageBytes_; }
    std::uint64_t frames() const { return size() / pageBytes_; }

    /** Raw byte access for DMA engines and the CPU's data path. */
    void
    readBytes(Addr addr, void *dst, std::uint64_t len) const
    {
        checkRange(addr, len);
        std::memcpy(dst, data_.data() + addr, len);
    }

    void
    writeBytes(Addr addr, const void *src, std::uint64_t len)
    {
        checkRange(addr, len);
        std::memcpy(data_.data() + addr, src, len);
    }

    /** Typed scalar access (little-endian host layout). */
    template <typename T>
    T
    read(Addr addr) const
    {
        T v;
        readBytes(addr, &v, sizeof(T));
        return v;
    }

    template <typename T>
    void
    write(Addr addr, T v)
    {
        writeBytes(addr, &v, sizeof(T));
    }

    /** Zero one whole frame (used for demand-zero pages). */
    void
    zeroFrame(std::uint64_t frame)
    {
        SHRIMP_ASSERT(frame < frames(), "bad frame");
        std::memset(data_.data() + frame * pageBytes_, 0, pageBytes_);
    }

    /** Base physical address of a frame. */
    Addr frameAddr(std::uint64_t frame) const { return frame * pageBytes_; }

    /** Frame containing a physical address. */
    std::uint64_t frameOf(Addr addr) const { return addr / pageBytes_; }

  private:
    void
    checkRange(Addr addr, std::uint64_t len) const
    {
        if (addr > data_.size() || len > data_.size() - addr)
            panic("physical access out of range: addr=", addr,
                  " len=", len, " size=", data_.size());
    }

    std::uint32_t pageBytes_;
    std::vector<std::uint8_t> data_;
};

} // namespace shrimp::mem

#endif // SHRIMP_MEM_PHYSICAL_MEMORY_HH
