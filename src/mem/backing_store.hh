/**
 * @file
 * Swap space for paged-out virtual pages.
 *
 * The kernel's page daemon writes (cleans) dirty pages here and reads
 * them back on a page-in fault. Keyed by (pid, virtual page number).
 * Purely functional; the kernel charges swap latency.
 */

#ifndef SHRIMP_MEM_BACKING_STORE_HH
#define SHRIMP_MEM_BACKING_STORE_HH

#include <cstdint>
#include <map>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace shrimp::mem
{

/** Per-node swap area. */
class BackingStore
{
  public:
    explicit BackingStore(std::uint32_t page_bytes)
        : pageBytes_(page_bytes)
    {}

    /** True if a page image exists for (pid, vpn). */
    bool
    contains(Pid pid, std::uint64_t vpn) const
    {
        return pages_.count(Key{pid, vpn}) != 0;
    }

    /** Store a page image, replacing any previous version. */
    void
    store(Pid pid, std::uint64_t vpn, const std::uint8_t *data)
    {
        auto &img = pages_[Key{pid, vpn}];
        img.assign(data, data + pageBytes_);
        ++writes_;
    }

    /** Load a page image. Checked error if absent. */
    void
    load(Pid pid, std::uint64_t vpn, std::uint8_t *out) const
    {
        auto it = pages_.find(Key{pid, vpn});
        if (it == pages_.end())
            panic("backing store miss pid=", pid, " vpn=", vpn);
        std::copy(it->second.begin(), it->second.end(), out);
        ++reads_;
    }

    /** Discard all images belonging to a process (exit). */
    void
    dropProcess(Pid pid)
    {
        for (auto it = pages_.begin(); it != pages_.end();) {
            if (it->first.pid == pid)
                it = pages_.erase(it);
            else
                ++it;
        }
    }

    std::uint64_t pageWrites() const { return writes_; }
    std::uint64_t pageReads() const { return reads_; }

  private:
    struct Key
    {
        Pid pid;
        std::uint64_t vpn;

        bool
        operator<(const Key &o) const
        {
            return pid != o.pid ? pid < o.pid : vpn < o.vpn;
        }
    };

    std::uint32_t pageBytes_;
    std::map<Key, std::vector<std::uint8_t>> pages_;
    mutable std::uint64_t writes_ = 0;
    mutable std::uint64_t reads_ = 0;
};

} // namespace shrimp::mem

#endif // SHRIMP_MEM_BACKING_STORE_HH
