/**
 * @file
 * A small parallel program on the four-node SHRIMP prototype: a
 * block-distributed dot product. Rank 0 broadcasts one vector, each
 * rank computes its partial sum over its own block, and an all-reduce
 * combines the partials — every byte of communication is user-level
 * UDMA (deliberate-update payloads, automatic-update credits),
 * synchronized with dissemination barriers.
 */

#include <cstdio>
#include <vector>

#include "core/system.hh"
#include "msg/collective.hh"

using namespace shrimp;
using namespace shrimp::core;

int
main(int argc, char **argv)
{
    auto runOpts = core::parseRunOptions(argc, argv);
    if (!runOpts.ok)
        return 2;

    constexpr unsigned nodes = 4;
    constexpr std::uint32_t elems = 4096; // 32 KB vector of u64
    constexpr std::uint32_t bytes = elems * 8;

    SystemConfig cfg;
    cfg.nodes = nodes;
    cfg.node.memBytes = 8 << 20;
    cfg.params.quantumUs = 500.0;
    cfg.node.devices.push_back(DeviceConfig{});
    System sys(cfg);

    msg::CommRendezvous rv(nodes);
    std::vector<std::uint64_t> results(nodes, 0);
    Tick t_start = 0, t_end = 0;

    for (unsigned r = 0; r < nodes; ++r) {
        auto *node = &sys.node(r);
        node->kernel().spawn(
            "rank" + std::to_string(r),
            [&, r, node](os::UserContext &ctx) -> sim::ProcTask {
                msg::Communicator comm(ctx, 0, *node->ni(), r, rv);
                if (!co_await comm.setup())
                    fatal("mesh setup failed on rank ", r);

                Addr vec = co_await ctx.sysAllocMemory(bytes);
                if (r == 0) {
                    // Root owns the data: v[i] = i+1.
                    std::vector<std::uint64_t> data(elems);
                    for (std::uint32_t i = 0; i < elems; ++i)
                        data[i] = i + 1;
                    ctx.kernel().pokeBytes(ctx.process(), vec,
                                           data.data(), bytes);
                    t_start = ctx.kernel().eq().now();
                }
                co_await comm.broadcast(0, vec, bytes);
                co_await comm.barrier();

                // Each rank sums its contiguous block.
                std::uint32_t per = elems / nodes;
                std::uint64_t partial = 0;
                for (std::uint32_t i = r * per; i < (r + 1) * per;
                     ++i) {
                    partial += co_await ctx.load(vec + i * 8);
                    if (i % 64 == 0)
                        co_await ctx.compute(32); // "work"
                }
                results[r] = co_await comm.allReduceSum(partial);
                co_await comm.barrier();
                if (r == 0)
                    t_end = ctx.kernel().eq().now();
            });
    }

    sys.runUntilAllDone(Tick(600) * tickSec);
    sys.run();

    std::uint64_t expect = std::uint64_t(elems) * (elems + 1) / 2;
    bool all_agree = true;
    for (unsigned r = 0; r < nodes; ++r)
        all_agree = all_agree && results[r] == expect;
    std::printf("sum(1..%u) = %llu on every rank: %s\n", elems,
                (unsigned long long)results[0],
                all_agree && results[0] == expect ? "CORRECT"
                                                  : "WRONG");
    std::printf("broadcast + compute + allreduce + barriers: %.0f us "
                "on %u nodes\n",
                ticksToUs(t_end - t_start), nodes);
    std::printf("network carried %llu bytes; every one initiated "
                "from user level\n",
                (unsigned long long)sys.net().bytesRouted());
    core::writeStatsJson(sys, runOpts);
    return 0;
}
