/**
 * @file
 * User-level message passing built entirely on the paper's two SHRIMP
 * mechanisms: a producer streams records to a consumer through a
 * ring-buffer channel whose payloads travel by *deliberate update*
 * (two-reference UDMA sends) and whose flow-control credits travel
 * back by *automatic update* (one snooped store per acknowledgment).
 *
 * After the one-time setup there is not a single system call on the
 * data path in either direction — the paper's whole point.
 */

#include <cstdio>

#include "core/system.hh"
#include "msg/channel.hh"

using namespace shrimp;
using namespace shrimp::core;

int
main(int argc, char **argv)
{
    auto runOpts = core::parseRunOptions(argc, argv);
    if (!runOpts.ok)
        return 2;

    SystemConfig cfg;
    cfg.nodes = 2;
    cfg.node.memBytes = 8 << 20;
    cfg.node.devices.push_back(DeviceConfig{});
    System sys(cfg);

    auto &prod = sys.node(0);
    auto &cons = sys.node(1);
    msg::ChannelRendezvous rv;
    rv.slots = 8;

    constexpr int records = 64;
    constexpr std::uint32_t recordBytes = 1024;

    std::uint64_t checksum_sent = 0;
    std::uint64_t checksum_recv = 0;
    Tick first_send = 0, last_recv = 0;

    prod.kernel().spawn("producer", [&](os::UserContext &ctx)
                                        -> sim::ProcTask {
        msg::SenderChannel ch(ctx, 0, *prod.ni(), cons.id());
        if (!co_await ch.connect(rv))
            fatal("channel connect failed");
        Addr buf = co_await ctx.sysAllocMemory(recordBytes);
        first_send = ctx.kernel().eq().now();
        for (int r = 0; r < records; ++r) {
            for (std::uint32_t off = 0; off < recordBytes; off += 8) {
                std::uint64_t word =
                    (std::uint64_t(r) << 32) | off;
                checksum_sent += word;
                co_await ctx.store(buf + off, word);
            }
            co_await ch.send(buf, recordBytes);
        }
        std::printf("producer: %d records sent, %llu unacked at "
                    "finish\n",
                    records,
                    (unsigned long long)co_await ch.unacked());
    });

    cons.kernel().spawn("consumer", [&](os::UserContext &ctx)
                                        -> sim::ProcTask {
        msg::ReceiverChannel ch(ctx, 0, *cons.ni(), prod.id());
        if (!co_await ch.bind(rv))
            fatal("channel bind failed");
        for (int r = 0; r < records; ++r) {
            std::uint32_t len = 0;
            Addr payload = co_await ch.recvZeroCopy(len);
            for (std::uint32_t off = 0; off < len; off += 8)
                checksum_recv += co_await ctx.load(payload + off);
            co_await ch.ackLast();
        }
        last_recv = ctx.kernel().eq().now();
    });

    sys.runUntilAllDone(Tick(120) * tickSec);
    sys.run();

    double us = ticksToUs(last_recv - first_send);
    std::printf("consumer: %d x %u B in %.0f us = %.2f MB/s, "
                "checksums %s\n",
                records, recordBytes, us,
                records * double(recordBytes) / us * 1e6 / (1 << 20),
                checksum_sent == checksum_recv ? "MATCH" : "MISMATCH");
    std::printf("credits: %llu automatic updates "
                "(%llu combined) carried every acknowledgment\n",
                (unsigned long long)cons.ni()->autoUpdatesSent(),
                (unsigned long long)cons.ni()->autoUpdatesCombined());
    core::writeStatsJson(sys, runOpts);
    return 0;
}
