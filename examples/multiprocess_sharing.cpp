/**
 * @file
 * "A UDMA device can be used concurrently by an arbitrary number of
 * untrusting processes without compromising protection" (paper
 * Section 1).
 *
 * Four unrelated processes share one frame buffer behind one UDMA
 * controller, each blitting its own pattern into its own quadrant
 * band, while the scheduler context-switches between them (issuing
 * the I1 Inval each time). A fifth, buggy process tries to DMA from
 * memory it never mapped and is killed by the ordinary VM protection;
 * everyone else is unaffected.
 */

#include <cstdio>
#include <vector>

#include "core/system.hh"
#include "core/udma_lib.hh"

using namespace shrimp;
using namespace shrimp::core;

int
main(int argc, char **argv)
{
    auto runOpts = core::parseRunOptions(argc, argv);
    if (!runOpts.ok)
        return 2;

    SystemConfig cfg;
    cfg.nodes = 1;
    cfg.node.memBytes = 16 << 20;
    cfg.params.quantumUs = 100.0; // switch aggressively
    DeviceConfig fb;
    fb.kind = DeviceKind::FrameBuffer;
    fb.fbWidth = 256;
    fb.fbHeight = 64; // 64 KB, 16 pages
    cfg.node.devices.push_back(fb);
    System sys(cfg);
    auto &node = sys.node(0);

    constexpr unsigned workers = 4;
    constexpr std::uint32_t pb = 4096;
    constexpr std::uint64_t band_pages = 4; // 16 KB band each

    for (unsigned w = 0; w < workers; ++w) {
        node.kernel().spawn(
            "worker" + std::to_string(w),
            [&, w](os::UserContext &ctx) -> sim::ProcTask {
                Addr buf =
                    co_await ctx.sysAllocMemory(band_pages * pb);
                std::uint64_t pattern =
                    0x1111111111111111ull * (w + 1);
                for (Addr off = 0; off < band_pages * pb; off += 8)
                    co_await ctx.store(buf + off, pattern);
                // Each worker may only map its own band of the frame
                // buffer; the VM system enforces the rest.
                Addr win = co_await ctx.sysMapDeviceProxy(
                    0, w * band_pages, band_pages, true);
                for (std::uint64_t p = 0; p < band_pages; ++p) {
                    co_await udmaTransfer(ctx, 0, win + p * pb,
                                          buf + p * pb, pb, true);
                    co_await ctx.yield(); // mix the schedule up
                }
            });
    }

    // The rogue: stores a byte count, then tries to name an unmapped
    // proxy source. The MMU faults; the kernel kills it.
    auto &rogue = node.kernel().spawn(
        "rogue", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr win = co_await ctx.sysMapDeviceProxy(0, 0, 1, true);
            co_await ctx.store(win, 4096); // DestLoaded...
            // ...but the source names memory we never allocated.
            co_await ctx.load(ctx.proxyAddr(0x700000, 0));
            std::printf("rogue: THIS SHOULD NEVER PRINT\n");
        });

    sys.runUntilAllDone();

    std::printf("rogue killed: %s (%s)\n",
                rogue.killed() ? "yes" : "NO",
                rogue.killReason().c_str());

    // Every worker's band carries exactly its pattern.
    auto *fbdev = node.frameBuffer();
    bool ok = true;
    for (unsigned w = 0; w < workers; ++w) {
        std::uint32_t expect =
            std::uint32_t(0x1111111111111111ull * (w + 1));
        for (std::uint64_t p = 0; p < band_pages; ++p) {
            std::uint32_t px = fbdev->pixel(
                ((w * band_pages + p) * pb / 4) % 256,
                std::uint32_t((w * band_pages + p) * pb / 4 / 256));
            if (px != expect)
                ok = false;
        }
    }
    std::printf("all four bands intact despite sharing + context "
                "switches: %s\n",
                ok ? "OK" : "FAILED");
    std::printf("context switches: %llu, controller Invals applied: "
                "%llu, transfers: %llu\n",
                (unsigned long long)node.kernel().contextSwitches(),
                (unsigned long long)
                    node.controller(0)->invalsApplied(),
                (unsigned long long)
                    node.controller(0)->transfersStarted());
    core::writeStatsJson(sys, runOpts);
    return 0;
}
