/**
 * @file
 * UDMA with a block device: demonstrates that the mechanism "can be
 * used with a wide variety of I/O devices including ... data storage
 * devices such as disks" (paper Section 1), and in particular the
 * device-to-memory direction that invariant I3 exists for:
 *
 *  - a disk *write* is a memory->device UDMA (LOAD names the memory
 *    source);
 *  - a disk *read* is a device->memory UDMA (STORE names the memory
 *    destination via its proxy address, which requires the
 *    destination page to be dirty — the kernel's proxy-write fault
 *    upgrades it, exactly as Section 6 prescribes).
 *
 * The example prints the kernel's fault counters so the I3 upgrade is
 * visible, and verifies the data round-trips.
 */

#include <cstdio>
#include <cstring>

#include "core/system.hh"
#include "core/udma_lib.hh"

using namespace shrimp;
using namespace shrimp::core;

int
main(int argc, char **argv)
{
    auto runOpts = core::parseRunOptions(argc, argv);
    if (!runOpts.ok)
        return 2;

    SystemConfig cfg;
    cfg.nodes = 1;
    cfg.node.memBytes = 8 << 20;
    DeviceConfig disk;
    disk.kind = DeviceKind::Disk;
    disk.diskBytes = 1 << 20;
    cfg.node.devices.push_back(disk);
    System sys(cfg);
    auto &node = sys.node(0);

    node.kernel().spawn("dbwriter", [&](os::UserContext &ctx)
                                        -> sim::ProcTask {
        const std::uint32_t pb = ctx.pageBytes();
        Addr buf = co_await ctx.sysAllocMemory(2 * pb);
        // A "database record" in page 0.
        for (unsigned i = 0; i < pb / 8; ++i)
            co_await ctx.store(buf + i * 8, 0xAB00000000000000ull | i);

        // Map disk blocks 4..5 (block == page) into our window.
        Addr dwin = co_await ctx.sysMapDeviceProxy(0, 4, 2, true);

        // ---- Write page 0 of the buffer to disk block 4. ----
        Tick t0 = ctx.kernel().eq().now();
        co_await udmaTransfer(ctx, 0, dwin, buf, pb, true);
        Tick t1 = ctx.kernel().eq().now();
        std::printf("disk write: 4 KB in %.0f us (seek+burst)\n",
                    ticksToUs(t1 - t0));

        // ---- Read it back into the second (fresh) page. ----
        // The destination proxy page gets its mapping on demand; the
        // kernel marks the real page dirty before granting a writable
        // proxy mapping (I3's creation path).
        Tick t2 = ctx.kernel().eq().now();
        co_await udmaTransferFromDevice(ctx, 0, buf + pb, dwin, pb,
                                        true);
        Tick t3 = ctx.kernel().eq().now();
        std::printf("disk read:  4 KB in %.0f us\n",
                    ticksToUs(t3 - t2));

        // ---- The full I3 cycle: clean, then read again. ----
        // The pageout daemon "cleans" the destination page (writes it
        // to backing store, clears its dirty bit, write-protects its
        // proxy mapping). The next disk read's proxy STORE then takes
        // a protection fault, and the kernel upgrades: marks the page
        // dirty again and re-enables the proxy write — Section 6's
        // "Maintaining I3" path, end to end.
        co_await ctx.syscall([buf, pb](os::Kernel &k, os::Process &p,
                                       os::SyscallControl &sc) {
            Tick lat = 0;
            bool ok = k.cleanPage(p, buf + pb, lat);
            sc.extraLatency = lat;
            sc.result = ok ? 0 : 1;
        });
        std::uint64_t upgrades_before =
            ctx.kernel().proxyWriteUpgrades();
        co_await udmaTransferFromDevice(ctx, 0, buf + pb, dwin, pb,
                                        true);
        std::printf("after cleaning, re-read triggered %llu I3 "
                    "proxy-write upgrade(s)\n",
                    (unsigned long long)(ctx.kernel()
                                             .proxyWriteUpgrades()
                                         - upgrades_before));

        // Verify the round trip with user-level loads.
        bool ok = true;
        for (unsigned i = 0; i < pb / 8; i += 64) {
            std::uint64_t v = co_await ctx.load(buf + pb + i * 8);
            if (v != (0xAB00000000000000ull | i))
                ok = false;
        }
        std::printf("round-trip verify: %s\n", ok ? "OK" : "FAILED");
    });

    sys.runUntilAllDone();
    auto *d = node.disk();
    std::printf("disk: %llu block reads, %llu block writes\n",
                (unsigned long long)d->blockReads(),
                (unsigned long long)d->blockWrites());
    std::printf("kernel: %llu proxy faults, %llu I3 write upgrades\n",
                (unsigned long long)node.kernel().proxyFaults(),
                (unsigned long long)node.kernel().proxyWriteUpgrades());
    core::writeStatsJson(sys, runOpts);
    return 0;
}
