/**
 * @file
 * Two-node SHRIMP message passing with deliberate update (paper
 * Section 8): a ping-pong latency measurement followed by a one-way
 * bandwidth run, all driven from user level.
 *
 * The receive buffers are exported and mapped through the NIPT once
 * (the out-of-band control plane); after that, every message is just
 * the two-reference UDMA initiation — no kernel involvement.
 */

#include <cstdio>
#include <vector>

#include "core/system.hh"
#include "core/udma_lib.hh"

using namespace shrimp;
using namespace shrimp::core;

namespace
{

struct Mailbox
{
    std::vector<Addr> pages;
    Addr va = 0;
    bool ready = false;
};

} // namespace

int
main(int argc, char **argv)
{
    auto runOpts = core::parseRunOptions(argc, argv);
    if (!runOpts.ok)
        return 2;

    SystemConfig cfg;
    cfg.nodes = 2;
    cfg.node.memBytes = 8 << 20;
    cfg.node.devices.push_back(DeviceConfig{}); // ShrimpNi, UDMA
    System sys(cfg);

    auto &a = sys.node(0);
    auto &b = sys.node(1);

    Mailbox box_a, box_b; // receive windows on each node
    constexpr unsigned pingPongs = 32;
    constexpr std::uint64_t bwBytes = 256 << 10;
    constexpr std::uint32_t pb = 4096;

    // Node A: initiator. Ping-pongs a 64-byte message, then streams
    // bwBytes to B.
    a.kernel().spawn("node-a", [&](os::UserContext &ctx)
                                   -> sim::ProcTask {
        Addr rx = co_await ctx.sysAllocMemory(pb);
        box_a.va = rx;
        box_a.pages = co_await sysExportRange(ctx, rx, pb);
        box_a.ready = true;
        Addr tx = co_await ctx.sysAllocMemory(pb);
        while (!box_b.ready)
            co_await ctx.compute(500);
        Addr remote = co_await sysMapRemoteRange(ctx, 0, *a.ni(),
                                                 b.id(), box_b.pages);

        // Ping-pong: write a sequence number, wait for the echo.
        Tick t0 = ctx.kernel().eq().now();
        for (std::uint64_t i = 1; i <= pingPongs; ++i) {
            co_await ctx.store(tx, i);
            co_await ctx.store(tx + 56, i); // completion sentinel
            co_await udmaTransfer(ctx, 0, remote, tx, 64, true);
            co_await pollWord(ctx, rx + 56, i); // wait for the echo
        }
        Tick t1 = ctx.kernel().eq().now();
        std::printf("ping-pong: %u round trips, %.2f us each\n",
                    pingPongs, ticksToUs(t1 - t0) / pingPongs);

        // Bandwidth: stream a large buffer one page at a time through
        // the one mapped remote page (ring of size 1 for simplicity).
        Addr big = co_await ctx.sysAllocMemory(bwBytes);
        for (Addr off = 0; off < bwBytes; off += pb)
            co_await ctx.store(big + off, off);
        Tick t2 = ctx.kernel().eq().now();
        for (Addr off = 0; off < bwBytes; off += pb)
            co_await udmaTransfer(ctx, 0, remote, big + off, pb, true);
        Tick t3 = ctx.kernel().eq().now();
        double us = ticksToUs(t3 - t2);
        std::printf("bandwidth: %llu KB in %.0f us = %.2f MB/s\n",
                    (unsigned long long)(bwBytes >> 10), us,
                    double(bwBytes) / us * 1e6 / (1 << 20));
        // Tell B we are done (sentinel in the first word).
        co_await ctx.store(tx, ~0ull);
        co_await ctx.store(tx + 56, ~0ull);
        co_await udmaTransfer(ctx, 0, remote, tx, 64, true);
    });

    // Node B: echo server.
    b.kernel().spawn("node-b", [&](os::UserContext &ctx)
                                   -> sim::ProcTask {
        Addr rx = co_await ctx.sysAllocMemory(pb);
        box_b.va = rx;
        box_b.pages = co_await sysExportRange(ctx, rx, pb);
        box_b.ready = true;
        Addr tx = co_await ctx.sysAllocMemory(pb);
        while (!box_a.ready)
            co_await ctx.compute(500);
        Addr remote = co_await sysMapRemoteRange(ctx, 0, *b.ni(),
                                                 a.id(), box_a.pages);

        for (std::uint64_t i = 1;; ++i) {
            // Wait for round i's sentinel or the final "done" marker.
            std::uint64_t w;
            do {
                w = co_await ctx.load(rx + 56);
            } while (w != i && w != ~0ull);
            std::uint64_t word = co_await ctx.load(rx);
            if (w == ~0ull || word == ~0ull)
                break; // A finished the bandwidth phase
            // Echo the sequence number back.
            co_await ctx.store(tx, word);
            co_await ctx.store(tx + 56, i);
            co_await udmaTransfer(ctx, 0, remote, tx, 64, true);
        }
        std::printf("node B: echo server done, %llu messages "
                    "delivered to B in total\n",
                    (unsigned long long)b.ni()->messagesDelivered());
    });

    sys.runUntilAllDone(Tick(120) * tickSec);
    sys.run();
    std::printf("network: %llu bytes routed over the backplane\n",
                (unsigned long long)sys.net().bytesRouted());
    core::writeStatsJson(sys, runOpts);
    return 0;
}
