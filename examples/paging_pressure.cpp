/**
 * @file
 * UDMA under memory pressure: "does not require DMA memory pages to
 * be pinned" (paper Section 1).
 *
 * A tiny-memory node runs a process whose working set exceeds
 * physical memory while it streams UDMA transfers to a frame buffer.
 * The pageout daemon evicts pages (invalidating their proxy mappings,
 * invariant I2; skipping any page the controller reports busy,
 * invariant I4), the process refaults transparently (swap-in +
 * on-demand proxy remapping), and every transfer still delivers the
 * right bytes.
 */

#include <cstdio>
#include <vector>

#include "core/system.hh"
#include "core/udma_lib.hh"

using namespace shrimp;
using namespace shrimp::core;

int
main(int argc, char **argv)
{
    auto runOpts = core::parseRunOptions(argc, argv);
    if (!runOpts.ok)
        return 2;

    SystemConfig cfg;
    cfg.nodes = 1;
    cfg.node.memBytes = 64 << 10; // 16 frames only!
    DeviceConfig fb;
    fb.kind = DeviceKind::FrameBuffer;
    fb.fbWidth = 256;
    fb.fbHeight = 256; // 256 KB frame buffer
    cfg.node.devices.push_back(fb);
    System sys(cfg);
    auto &node = sys.node(0);

    constexpr std::uint32_t pb = 4096;
    constexpr unsigned pages = 32; // 128 KB working set, 2x memory

    node.kernel().spawn("streamer", [&](os::UserContext &ctx)
                                        -> sim::ProcTask {
        Addr buf = co_await ctx.sysAllocMemory(pages * pb);
        Addr win =
            co_await ctx.sysMapDeviceProxy(0, 0, pages, true);

        // Touch every page with its own tag (forces paging).
        for (unsigned p = 0; p < pages; ++p)
            co_await ctx.store(buf + p * pb,
                               0xFEED000000000000ull | p);

        // Now stream each page to its frame-buffer slot. Many source
        // pages were evicted in the meantime; the proxy LOAD refaults
        // them back in (Section 6's three-case fault handler).
        for (unsigned p = 0; p < pages; ++p) {
            co_await udmaTransfer(ctx, 0, win + p * pb, buf + p * pb,
                                  pb, true);
        }

        // Verify through user-level loads (may refault again).
        bool ok = true;
        for (unsigned p = 0; p < pages; ++p) {
            std::uint64_t v = co_await ctx.load(buf + p * pb);
            if (v != (0xFEED000000000000ull | p))
                ok = false;
        }
        std::printf("working set intact after paging: %s\n",
                    ok ? "OK" : "FAILED");
    });

    sys.runUntilAllDone(Tick(600) * tickSec);

    // Each frame-buffer slot carries its page's tag.
    auto *fbdev = node.frameBuffer();
    bool ok = true;
    for (unsigned p = 0; p < pages; ++p) {
        std::uint32_t idx = p * (pb / 4);
        std::uint32_t px = fbdev->pixel(idx % 256, idx / 256);
        if (px != (0xFEED000000000000ull | p) % 0x100000000ull)
            ok = false;
    }
    std::printf("frame buffer contents correct: %s\n",
                ok ? "OK" : "FAILED");
    std::printf("evictions: %llu, I4 skips: %llu, swap writes: %llu, "
                "swap reads: %llu, proxy faults: %llu\n",
                (unsigned long long)node.kernel().evictions(),
                (unsigned long long)node.kernel().evictionI4Skips(),
                (unsigned long long)
                    node.kernel().backingStore().pageWrites(),
                (unsigned long long)
                    node.kernel().backingStore().pageReads(),
                (unsigned long long)node.kernel().proxyFaults());
    core::writeStatsJson(sys, runOpts);
    return 0;
}
