/**
 * @file
 * Quickstart: the smallest complete UDMA program.
 *
 * Builds a one-node machine with a frame buffer behind a UDMA
 * controller, runs one user process that
 *   1. allocates a buffer and fills it,
 *   2. maps the frame buffer's device proxy window,
 *   3. starts a DMA with the paper's two-reference sequence
 *      (via the user-level library), and
 *   4. polls for completion with a single LOAD,
 * then prints what happened and how long each step took.
 */

#include <cstdio>

#include "core/system.hh"
#include "core/udma_lib.hh"

using namespace shrimp;
using namespace shrimp::core;

int
main(int argc, char **argv)
{
    auto runOpts = core::parseRunOptions(argc, argv);
    if (!runOpts.ok)
        return 2;

    SystemConfig cfg;
    cfg.nodes = 1;
    cfg.node.memBytes = 8 << 20;
    DeviceConfig fb;
    fb.kind = DeviceKind::FrameBuffer;
    fb.fbWidth = 320;
    fb.fbHeight = 240;
    cfg.node.devices.push_back(fb);

    System sys(cfg);
    auto &node = sys.node(0);

    node.kernel().spawn("quickstart", [&](os::UserContext &ctx)
                                          -> sim::ProcTask {
        // 1. An ordinary user buffer; stores go through the MMU.
        Addr buf = co_await ctx.sysAllocMemory(4096);
        for (unsigned i = 0; i < 512; ++i)
            co_await ctx.store(buf + i * 8, 0x00FF00FF00FF00FFull);

        // 2. Map the first 4 KB of the frame buffer's proxy window.
        Addr fbwin = co_await ctx.sysMapDeviceProxy(/*device=*/0,
                                                    /*first_page=*/0,
                                                    /*n_pages=*/1,
                                                    /*writable=*/true);

        // 3. One protected, user-level DMA: two memory references.
        //    The first initiation is cold: it takes the on-demand
        //    proxy-mapping page faults (Section 6). Steady state is
        //    the paper's 2.8 us.
        Tick t0 = ctx.kernel().eq().now();
        dma::Status st = co_await udmaStart(
            ctx, /*dest=*/fbwin, /*src=*/ctx.proxyAddr(buf, 0),
            /*nbytes=*/4096);
        Tick t1 = ctx.kernel().eq().now();
        std::printf("cold initiation: started=%s clamped_bytes=%u "
                    "(%.2f us, includes proxy-mapping faults)\n",
                    st.initiationFailed ? "no" : "yes",
                    st.remainingBytes, ticksToUs(t1 - t0));

        // 4. Completion: repeat the LOAD until MATCH clears.
        std::uint64_t polls =
            co_await udmaWait(ctx, ctx.proxyAddr(buf, 0));
        Tick t2 = ctx.kernel().eq().now();
        std::printf("transfer complete after %llu polls "
                    "(%.2f us total for 4 KB -> %.2f MB/s)\n",
                    (unsigned long long)polls, ticksToUs(t2 - t0),
                    4096.0 / ticksToUs(t2 - t0) * 1e6 / (1 << 20));

        // 5. Steady state: mappings are warm now.
        Tick t3 = ctx.kernel().eq().now();
        co_await udmaStart(ctx, fbwin, ctx.proxyAddr(buf, 0), 4096);
        Tick t4 = ctx.kernel().eq().now();
        std::printf("warm initiation: %.2f us (paper: ~2.8 us)\n",
                    ticksToUs(t4 - t3));
        co_await udmaWait(ctx, ctx.proxyAddr(buf, 0));
    });

    sys.runUntilAllDone();

    // Host-side check: the pixels really landed.
    auto *fbdev = node.frameBuffer();
    std::printf("framebuffer pixel(0,0) = 0x%08x (expect 0x00ff00ff)\n",
                fbdev->pixel(0, 0));
    std::printf("kernel: %llu page faults, %llu proxy faults, "
                "%llu context switches\n",
                (unsigned long long)node.kernel().pageFaults(),
                (unsigned long long)node.kernel().proxyFaults(),
                (unsigned long long)node.kernel().contextSwitches());
    core::writeStatsJson(sys, runOpts);
    return 0;
}
