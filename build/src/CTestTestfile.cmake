# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("mem")
subdirs("vm")
subdirs("bus")
subdirs("os")
subdirs("dma")
subdirs("shrimp")
subdirs("dev")
subdirs("baseline")
subdirs("core")
subdirs("msg")
subdirs("workload")
