
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/fifo_nic.cc" "src/CMakeFiles/shrimp_sim.dir/baseline/fifo_nic.cc.o" "gcc" "src/CMakeFiles/shrimp_sim.dir/baseline/fifo_nic.cc.o.d"
  "/root/repo/src/baseline/traditional_dma.cc" "src/CMakeFiles/shrimp_sim.dir/baseline/traditional_dma.cc.o" "gcc" "src/CMakeFiles/shrimp_sim.dir/baseline/traditional_dma.cc.o.d"
  "/root/repo/src/core/system.cc" "src/CMakeFiles/shrimp_sim.dir/core/system.cc.o" "gcc" "src/CMakeFiles/shrimp_sim.dir/core/system.cc.o.d"
  "/root/repo/src/core/udma_lib.cc" "src/CMakeFiles/shrimp_sim.dir/core/udma_lib.cc.o" "gcc" "src/CMakeFiles/shrimp_sim.dir/core/udma_lib.cc.o.d"
  "/root/repo/src/dma/dma_engine.cc" "src/CMakeFiles/shrimp_sim.dir/dma/dma_engine.cc.o" "gcc" "src/CMakeFiles/shrimp_sim.dir/dma/dma_engine.cc.o.d"
  "/root/repo/src/dma/udma_controller.cc" "src/CMakeFiles/shrimp_sim.dir/dma/udma_controller.cc.o" "gcc" "src/CMakeFiles/shrimp_sim.dir/dma/udma_controller.cc.o.d"
  "/root/repo/src/msg/channel.cc" "src/CMakeFiles/shrimp_sim.dir/msg/channel.cc.o" "gcc" "src/CMakeFiles/shrimp_sim.dir/msg/channel.cc.o.d"
  "/root/repo/src/msg/collective.cc" "src/CMakeFiles/shrimp_sim.dir/msg/collective.cc.o" "gcc" "src/CMakeFiles/shrimp_sim.dir/msg/collective.cc.o.d"
  "/root/repo/src/os/kernel.cc" "src/CMakeFiles/shrimp_sim.dir/os/kernel.cc.o" "gcc" "src/CMakeFiles/shrimp_sim.dir/os/kernel.cc.o.d"
  "/root/repo/src/os/process.cc" "src/CMakeFiles/shrimp_sim.dir/os/process.cc.o" "gcc" "src/CMakeFiles/shrimp_sim.dir/os/process.cc.o.d"
  "/root/repo/src/os/user_context.cc" "src/CMakeFiles/shrimp_sim.dir/os/user_context.cc.o" "gcc" "src/CMakeFiles/shrimp_sim.dir/os/user_context.cc.o.d"
  "/root/repo/src/shrimp/network_interface.cc" "src/CMakeFiles/shrimp_sim.dir/shrimp/network_interface.cc.o" "gcc" "src/CMakeFiles/shrimp_sim.dir/shrimp/network_interface.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/shrimp_sim.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/shrimp_sim.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/logging.cc" "src/CMakeFiles/shrimp_sim.dir/sim/logging.cc.o" "gcc" "src/CMakeFiles/shrimp_sim.dir/sim/logging.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/CMakeFiles/shrimp_sim.dir/sim/stats.cc.o" "gcc" "src/CMakeFiles/shrimp_sim.dir/sim/stats.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/CMakeFiles/shrimp_sim.dir/sim/trace.cc.o" "gcc" "src/CMakeFiles/shrimp_sim.dir/sim/trace.cc.o.d"
  "/root/repo/src/workload/traffic.cc" "src/CMakeFiles/shrimp_sim.dir/workload/traffic.cc.o" "gcc" "src/CMakeFiles/shrimp_sim.dir/workload/traffic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
