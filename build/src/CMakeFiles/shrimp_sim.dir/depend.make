# Empty dependencies file for shrimp_sim.
# This may be replaced when dependencies are built.
