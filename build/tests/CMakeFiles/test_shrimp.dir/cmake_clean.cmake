file(REMOVE_RECURSE
  "CMakeFiles/test_shrimp.dir/shrimp/auto_update_test.cc.o"
  "CMakeFiles/test_shrimp.dir/shrimp/auto_update_test.cc.o.d"
  "CMakeFiles/test_shrimp.dir/shrimp/interconnect_test.cc.o"
  "CMakeFiles/test_shrimp.dir/shrimp/interconnect_test.cc.o.d"
  "CMakeFiles/test_shrimp.dir/shrimp/ni_test.cc.o"
  "CMakeFiles/test_shrimp.dir/shrimp/ni_test.cc.o.d"
  "CMakeFiles/test_shrimp.dir/shrimp/nipt_test.cc.o"
  "CMakeFiles/test_shrimp.dir/shrimp/nipt_test.cc.o.d"
  "test_shrimp"
  "test_shrimp.pdb"
  "test_shrimp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shrimp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
