# Empty compiler generated dependencies file for test_shrimp.
# This may be replaced when dependencies are built.
