
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/vm/layout_test.cc" "tests/CMakeFiles/test_vm.dir/vm/layout_test.cc.o" "gcc" "tests/CMakeFiles/test_vm.dir/vm/layout_test.cc.o.d"
  "/root/repo/tests/vm/mmu_test.cc" "tests/CMakeFiles/test_vm.dir/vm/mmu_test.cc.o" "gcc" "tests/CMakeFiles/test_vm.dir/vm/mmu_test.cc.o.d"
  "/root/repo/tests/vm/page_table_test.cc" "tests/CMakeFiles/test_vm.dir/vm/page_table_test.cc.o" "gcc" "tests/CMakeFiles/test_vm.dir/vm/page_table_test.cc.o.d"
  "/root/repo/tests/vm/tlb_test.cc" "tests/CMakeFiles/test_vm.dir/vm/tlb_test.cc.o" "gcc" "tests/CMakeFiles/test_vm.dir/vm/tlb_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/shrimp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
