file(REMOVE_RECURSE
  "CMakeFiles/test_dev.dir/dev/devices_test.cc.o"
  "CMakeFiles/test_dev.dir/dev/devices_test.cc.o.d"
  "test_dev"
  "test_dev.pdb"
  "test_dev[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
