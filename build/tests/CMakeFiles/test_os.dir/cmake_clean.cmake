file(REMOVE_RECURSE
  "CMakeFiles/test_os.dir/os/i3_policy_test.cc.o"
  "CMakeFiles/test_os.dir/os/i3_policy_test.cc.o.d"
  "CMakeFiles/test_os.dir/os/invariants_test.cc.o"
  "CMakeFiles/test_os.dir/os/invariants_test.cc.o.d"
  "CMakeFiles/test_os.dir/os/kernel_test.cc.o"
  "CMakeFiles/test_os.dir/os/kernel_test.cc.o.d"
  "CMakeFiles/test_os.dir/os/paging_fuzz_test.cc.o"
  "CMakeFiles/test_os.dir/os/paging_fuzz_test.cc.o.d"
  "CMakeFiles/test_os.dir/os/paging_test.cc.o"
  "CMakeFiles/test_os.dir/os/paging_test.cc.o.d"
  "CMakeFiles/test_os.dir/os/user_context_test.cc.o"
  "CMakeFiles/test_os.dir/os/user_context_test.cc.o.d"
  "test_os"
  "test_os.pdb"
  "test_os[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
