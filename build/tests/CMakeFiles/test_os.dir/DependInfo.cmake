
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/os/i3_policy_test.cc" "tests/CMakeFiles/test_os.dir/os/i3_policy_test.cc.o" "gcc" "tests/CMakeFiles/test_os.dir/os/i3_policy_test.cc.o.d"
  "/root/repo/tests/os/invariants_test.cc" "tests/CMakeFiles/test_os.dir/os/invariants_test.cc.o" "gcc" "tests/CMakeFiles/test_os.dir/os/invariants_test.cc.o.d"
  "/root/repo/tests/os/kernel_test.cc" "tests/CMakeFiles/test_os.dir/os/kernel_test.cc.o" "gcc" "tests/CMakeFiles/test_os.dir/os/kernel_test.cc.o.d"
  "/root/repo/tests/os/paging_fuzz_test.cc" "tests/CMakeFiles/test_os.dir/os/paging_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/test_os.dir/os/paging_fuzz_test.cc.o.d"
  "/root/repo/tests/os/paging_test.cc" "tests/CMakeFiles/test_os.dir/os/paging_test.cc.o" "gcc" "tests/CMakeFiles/test_os.dir/os/paging_test.cc.o.d"
  "/root/repo/tests/os/user_context_test.cc" "tests/CMakeFiles/test_os.dir/os/user_context_test.cc.o" "gcc" "tests/CMakeFiles/test_os.dir/os/user_context_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/shrimp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
