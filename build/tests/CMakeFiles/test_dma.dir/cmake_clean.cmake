file(REMOVE_RECURSE
  "CMakeFiles/test_dma.dir/dma/abort_test.cc.o"
  "CMakeFiles/test_dma.dir/dma/abort_test.cc.o.d"
  "CMakeFiles/test_dma.dir/dma/controller_fuzz_test.cc.o"
  "CMakeFiles/test_dma.dir/dma/controller_fuzz_test.cc.o.d"
  "CMakeFiles/test_dma.dir/dma/controller_test.cc.o"
  "CMakeFiles/test_dma.dir/dma/controller_test.cc.o.d"
  "CMakeFiles/test_dma.dir/dma/engine_test.cc.o"
  "CMakeFiles/test_dma.dir/dma/engine_test.cc.o.d"
  "CMakeFiles/test_dma.dir/dma/priority_queue_test.cc.o"
  "CMakeFiles/test_dma.dir/dma/priority_queue_test.cc.o.d"
  "CMakeFiles/test_dma.dir/dma/status_test.cc.o"
  "CMakeFiles/test_dma.dir/dma/status_test.cc.o.d"
  "test_dma"
  "test_dma.pdb"
  "test_dma[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
