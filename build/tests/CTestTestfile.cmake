# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_vm[1]_include.cmake")
include("/root/repo/build/tests/test_bus[1]_include.cmake")
include("/root/repo/build/tests/test_os[1]_include.cmake")
include("/root/repo/build/tests/test_dma[1]_include.cmake")
include("/root/repo/build/tests/test_shrimp[1]_include.cmake")
include("/root/repo/build/tests/test_dev[1]_include.cmake")
include("/root/repo/build/tests/test_baseline[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_msg[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
