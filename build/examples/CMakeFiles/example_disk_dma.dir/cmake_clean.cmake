file(REMOVE_RECURSE
  "CMakeFiles/example_disk_dma.dir/disk_dma.cpp.o"
  "CMakeFiles/example_disk_dma.dir/disk_dma.cpp.o.d"
  "example_disk_dma"
  "example_disk_dma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_disk_dma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
