# Empty compiler generated dependencies file for example_disk_dma.
# This may be replaced when dependencies are built.
