# Empty dependencies file for example_parallel_reduce.
# This may be replaced when dependencies are built.
