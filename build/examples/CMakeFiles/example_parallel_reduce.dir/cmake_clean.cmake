file(REMOVE_RECURSE
  "CMakeFiles/example_parallel_reduce.dir/parallel_reduce.cpp.o"
  "CMakeFiles/example_parallel_reduce.dir/parallel_reduce.cpp.o.d"
  "example_parallel_reduce"
  "example_parallel_reduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_parallel_reduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
