# Empty dependencies file for example_multiprocess_sharing.
# This may be replaced when dependencies are built.
