file(REMOVE_RECURSE
  "CMakeFiles/example_multiprocess_sharing.dir/multiprocess_sharing.cpp.o"
  "CMakeFiles/example_multiprocess_sharing.dir/multiprocess_sharing.cpp.o.d"
  "example_multiprocess_sharing"
  "example_multiprocess_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_multiprocess_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
