file(REMOVE_RECURSE
  "CMakeFiles/example_message_passing.dir/message_passing.cpp.o"
  "CMakeFiles/example_message_passing.dir/message_passing.cpp.o.d"
  "example_message_passing"
  "example_message_passing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_message_passing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
