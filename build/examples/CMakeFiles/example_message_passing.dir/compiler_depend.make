# Empty compiler generated dependencies file for example_message_passing.
# This may be replaced when dependencies are built.
