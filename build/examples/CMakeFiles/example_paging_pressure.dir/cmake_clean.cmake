file(REMOVE_RECURSE
  "CMakeFiles/example_paging_pressure.dir/paging_pressure.cpp.o"
  "CMakeFiles/example_paging_pressure.dir/paging_pressure.cpp.o.d"
  "example_paging_pressure"
  "example_paging_pressure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_paging_pressure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
