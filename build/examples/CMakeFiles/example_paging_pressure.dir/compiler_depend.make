# Empty compiler generated dependencies file for example_paging_pressure.
# This may be replaced when dependencies are built.
