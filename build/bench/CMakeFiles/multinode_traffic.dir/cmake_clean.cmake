file(REMOVE_RECURSE
  "CMakeFiles/multinode_traffic.dir/multinode_traffic.cc.o"
  "CMakeFiles/multinode_traffic.dir/multinode_traffic.cc.o.d"
  "multinode_traffic"
  "multinode_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multinode_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
