# Empty compiler generated dependencies file for multinode_traffic.
# This may be replaced when dependencies are built.
