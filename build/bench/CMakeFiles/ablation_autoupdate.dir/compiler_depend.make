# Empty compiler generated dependencies file for ablation_autoupdate.
# This may be replaced when dependencies are built.
