file(REMOVE_RECURSE
  "CMakeFiles/ablation_autoupdate.dir/ablation_autoupdate.cc.o"
  "CMakeFiles/ablation_autoupdate.dir/ablation_autoupdate.cc.o.d"
  "ablation_autoupdate"
  "ablation_autoupdate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_autoupdate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
