file(REMOVE_RECURSE
  "CMakeFiles/table_initiation_cost.dir/table_initiation_cost.cc.o"
  "CMakeFiles/table_initiation_cost.dir/table_initiation_cost.cc.o.d"
  "table_initiation_cost"
  "table_initiation_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_initiation_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
