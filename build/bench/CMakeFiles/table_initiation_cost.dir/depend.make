# Empty dependencies file for table_initiation_cost.
# This may be replaced when dependencies are built.
