file(REMOVE_RECURSE
  "CMakeFiles/multinode_patterns.dir/multinode_patterns.cc.o"
  "CMakeFiles/multinode_patterns.dir/multinode_patterns.cc.o.d"
  "multinode_patterns"
  "multinode_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multinode_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
