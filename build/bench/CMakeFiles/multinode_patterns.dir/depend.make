# Empty dependencies file for multinode_patterns.
# This may be replaced when dependencies are built.
