file(REMOVE_RECURSE
  "CMakeFiles/table_half_power.dir/table_half_power.cc.o"
  "CMakeFiles/table_half_power.dir/table_half_power.cc.o.d"
  "table_half_power"
  "table_half_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_half_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
