# Empty compiler generated dependencies file for table_half_power.
# This may be replaced when dependencies are built.
