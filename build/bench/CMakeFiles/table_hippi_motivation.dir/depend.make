# Empty dependencies file for table_hippi_motivation.
# This may be replaced when dependencies are built.
