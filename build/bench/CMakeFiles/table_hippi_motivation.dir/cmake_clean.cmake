file(REMOVE_RECURSE
  "CMakeFiles/table_hippi_motivation.dir/table_hippi_motivation.cc.o"
  "CMakeFiles/table_hippi_motivation.dir/table_hippi_motivation.cc.o.d"
  "table_hippi_motivation"
  "table_hippi_motivation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_hippi_motivation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
