file(REMOVE_RECURSE
  "CMakeFiles/ablation_pio_crossover.dir/ablation_pio_crossover.cc.o"
  "CMakeFiles/ablation_pio_crossover.dir/ablation_pio_crossover.cc.o.d"
  "ablation_pio_crossover"
  "ablation_pio_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pio_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
