# Empty dependencies file for micro_udma.
# This may be replaced when dependencies are built.
