file(REMOVE_RECURSE
  "CMakeFiles/micro_udma.dir/micro_udma.cc.o"
  "CMakeFiles/micro_udma.dir/micro_udma.cc.o.d"
  "micro_udma"
  "micro_udma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_udma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
