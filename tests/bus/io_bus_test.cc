/**
 * @file
 * Unit tests for the shared I/O bus: serialization timing and proxy
 * routing.
 */

#include <gtest/gtest.h>

#include "bus/io_bus.hh"
#include "sim/event_queue.hh"
#include "sim/params.hh"

using namespace shrimp;
using namespace shrimp::bus;

namespace
{

struct RecordingClient : ProxyClient
{
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::int64_t lastValue = 0;
    Addr lastAddr = 0;

    std::uint64_t
    proxyLoad(const vm::Decoded &, Addr paddr) override
    {
        ++loads;
        lastAddr = paddr;
        return 0x77;
    }

    void
    proxyStore(const vm::Decoded &, Addr paddr,
               std::int64_t value) override
    {
        ++stores;
        lastAddr = paddr;
        lastValue = value;
    }
};

struct BusFixture : ::testing::Test
{
    sim::EventQueue eq;
    sim::MachineParams params;
    IoBus bus{eq, params};
};

} // namespace

TEST_F(BusFixture, AcquireSerializesTransactions)
{
    Tick t1 = bus.acquire(100);
    Tick t2 = bus.acquire(50);
    EXPECT_EQ(t1, 100u);
    EXPECT_EQ(t2, 150u) << "second transaction queues behind the first";
    EXPECT_EQ(bus.freeAt(), 150u);
}

TEST_F(BusFixture, AcquireAfterIdleStartsAtNow)
{
    bus.acquire(100);
    eq.schedule(500, "x", [] {});
    eq.run();
    Tick t = bus.acquire(10);
    EXPECT_EQ(t, 510u);
}

TEST_F(BusFixture, AcquireAtHonorsEarliest)
{
    Tick t = bus.acquireAt(1000, 10);
    EXPECT_EQ(t, 1010u);
    // A later transaction still queues behind it.
    EXPECT_EQ(bus.acquire(10), 1020u);
}

TEST_F(BusFixture, BurstTimingMatchesBandwidth)
{
    Tick t = bus.burstTransfer(2300); // 2300 B at 23 MB/s = 100 us
    EXPECT_NEAR(double(t), 100.0 * tickUs, double(tickNs));
    EXPECT_EQ(bus.burstCount(), 1u);
}

TEST_F(BusFixture, WordTransactionTiming)
{
    Tick t = bus.wordTransaction();
    EXPECT_EQ(t, Tick(params.eisaWordNs * tickNs));
    EXPECT_EQ(bus.wordCount(), 1u);
}

TEST_F(BusFixture, BusyTicksAccumulate)
{
    bus.acquire(100);
    bus.acquire(200);
    EXPECT_DOUBLE_EQ(bus.busyTicks(), 300.0);
}

TEST_F(BusFixture, AttachAndRoute)
{
    RecordingClient c0, c2;
    bus.attach(0, &c0);
    bus.attach(2, &c2);
    EXPECT_EQ(bus.client(0), &c0);
    EXPECT_EQ(bus.client(1), nullptr);
    EXPECT_EQ(bus.client(2), &c2);
    EXPECT_EQ(bus.client(99), nullptr);
}

TEST_F(BusFixture, DoubleAttachPanics)
{
    RecordingClient c;
    bus.attach(0, &c);
    EXPECT_THROW(bus.attach(0, &c), PanicError);
}
