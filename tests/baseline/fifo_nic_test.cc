/**
 * @file
 * Unit tests for the memory-mapped FIFO NIC baseline (Section 9).
 */

#include <gtest/gtest.h>

#include "core/system.hh"

using namespace shrimp;
using namespace shrimp::core;
using baseline::FifoNic;

namespace
{

SystemConfig
fifoConfig(unsigned nodes = 2)
{
    SystemConfig cfg;
    cfg.nodes = nodes;
    cfg.node.memBytes = 4 << 20;
    DeviceConfig d;
    d.kind = DeviceKind::FifoNic;
    cfg.node.devices.push_back(d);
    return cfg;
}

} // namespace

TEST(FifoNic, WordsFlowBetweenNodes)
{
    System sys(fifoConfig());
    std::vector<std::uint64_t> got;
    bool recv_ready = false;

    sys.node(1).kernel().spawn(
        "recv", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr win = co_await ctx.sysMapDeviceProxy(0, 0, 2, true);
            recv_ready = true;
            while (got.size() < 4) {
                std::uint64_t avail =
                    co_await ctx.load(win + FifoNic::regRxAvail);
                for (std::uint64_t i = 0; i < avail; ++i) {
                    got.push_back(
                        co_await ctx.load(win + FifoNic::regRxData));
                }
            }
        });

    sys.node(0).kernel().spawn(
        "send", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr win = co_await ctx.sysMapDeviceProxy(0, 0, 2, true);
            while (!recv_ready)
                co_await ctx.compute(500);
            co_await ctx.store(win + FifoNic::regDestNode, 1);
            Addr tx = win + ctx.pageBytes();
            for (std::uint64_t w = 10; w < 14; ++w)
                co_await ctx.store(tx, w);
        });

    sys.runUntilAllDone(Tick(10) * tickSec);
    EXPECT_EQ(got, (std::vector<std::uint64_t>{10, 11, 12, 13}));
    EXPECT_EQ(sys.node(0).fifoNic()->wordsSent(), 4u);
    EXPECT_EQ(sys.node(1).fifoNic()->wordsReceived(), 4u);
}

TEST(FifoNic, StatusRegistersReflectState)
{
    System sys(fifoConfig());
    std::uint64_t space = 0, avail_empty = ~0ull, pop_empty = ~0ull;
    sys.node(0).kernel().spawn(
        "p", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr win = co_await ctx.sysMapDeviceProxy(0, 0, 2, true);
            space = co_await ctx.load(win + FifoNic::regTxSpace);
            avail_empty = co_await ctx.load(win + FifoNic::regRxAvail);
            pop_empty = co_await ctx.load(win + FifoNic::regRxData);
        });
    sys.runUntilAllDone();
    sim::MachineParams p;
    EXPECT_EQ(space, p.niFifoBytes / 8);
    EXPECT_EQ(avail_empty, 0u);
    EXPECT_EQ(pop_empty, 0u) << "popping an empty FIFO returns 0";
}

TEST(FifoNic, ProtectedByVmLikeAnyDeviceWindow)
{
    System sys(fifoConfig());
    auto &bad = sys.node(0).kernel().spawn(
        "bad", [&](os::UserContext &ctx) -> sim::ProcTask {
            // Never mapped the window.
            auto base = ctx.kernel().layout().devProxyBase(0);
            co_await ctx.store(base + FifoNic::regDestNode, 1);
            ADD_FAILURE() << "unreachable";
        });
    sys.runUntilAllDone();
    EXPECT_TRUE(bad.killed());
}

TEST(FifoNic, PerWordCostIsOneBusTransaction)
{
    // 64 words = 64 uncached stores; wall time must scale with the
    // word count (the Section 9 argument for why DMA wins at size).
    System sys(fifoConfig());
    Tick elapsed = 0;
    bool recv_ready = false;
    sys.node(1).kernel().spawn(
        "recv", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr win = co_await ctx.sysMapDeviceProxy(0, 0, 2, true);
            (void)win;
            recv_ready = true;
        });
    sys.node(0).kernel().spawn(
        "send", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr win = co_await ctx.sysMapDeviceProxy(0, 0, 2, true);
            while (!recv_ready)
                co_await ctx.compute(500);
            co_await ctx.store(win + FifoNic::regDestNode, 1);
            Tick t0 = ctx.kernel().eq().now();
            for (int w = 0; w < 64; ++w)
                co_await ctx.store(win + ctx.pageBytes(), w);
            elapsed = ctx.kernel().eq().now() - t0;
        });
    sys.runUntilAllDone(Tick(10) * tickSec);
    sim::MachineParams p;
    EXPECT_GE(elapsed, 64 * p.ioAccess());
    EXPECT_LE(elapsed, 64 * p.ioAccess() * 3);
}
