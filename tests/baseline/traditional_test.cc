/**
 * @file
 * Unit tests for the traditional kernel-initiated DMA baseline
 * (paper Section 2).
 */

#include <gtest/gtest.h>

#include "core/system.hh"

using namespace shrimp;
using namespace shrimp::core;
using Mode = baseline::TraditionalDmaDriver::Mode;

namespace
{

SystemConfig
sinkConfig()
{
    SystemConfig cfg;
    cfg.nodes = 1;
    cfg.node.memBytes = 4 << 20;
    DeviceConfig d;
    d.kind = DeviceKind::StreamSink;
    d.driver = DriverKind::Traditional;
    cfg.node.devices.push_back(d);
    return cfg;
}

/** Issue one sys_dma from a spawned process; returns the rc. */
std::uint64_t
runOneDma(System &sys, bool to_device, std::uint32_t bytes, Mode mode,
          Addr *va_out = nullptr)
{
    auto *driver = sys.node(0).tradDriver(0);
    std::uint64_t rc = ~0ull;
    sys.node(0).kernel().spawn(
        "p", [&, driver](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(64 << 10);
            if (va_out)
                *va_out = buf;
            for (Addr off = 0; off < bytes; off += 4096)
                co_await ctx.store(buf + off, off + 1);
            rc = co_await ctx.syscall(
                [&, driver, buf](os::Kernel &k, os::Process &pr,
                                 os::SyscallControl &sc) {
                    driver->requestDma(k, pr, sc, to_device, buf, 0,
                                       bytes, mode);
                });
        });
    sys.runUntilAllDone(Tick(60) * tickSec);
    return rc;
}

} // namespace

TEST(TraditionalDma, TransferCompletesAndWakes)
{
    System sys(sinkConfig());
    auto rc = runOneDma(sys, true, 4096, Mode::PinPages);
    EXPECT_EQ(rc, baseline::TraditionalDmaDriver::resultOk);
    EXPECT_EQ(sys.node(0).streamSink()->bytesAccepted(), 4096u);
    EXPECT_EQ(sys.node(0).tradDriver(0)->requestsCompleted(), 1u);
    EXPECT_EQ(sys.node(0).tradDriver(0)->interrupts(), 1u);
}

TEST(TraditionalDma, DeviceToMemoryMarksPagesDirtyViaKernel)
{
    System sys(sinkConfig());
    Addr va = 0;
    auto rc = runOneDma(sys, false, 4096, Mode::PinPages, &va);
    EXPECT_EQ(rc, baseline::TraditionalDmaDriver::resultOk);
    // The sink's deterministic pattern must have landed.
    auto *p = sys.node(0).kernel().findProcess(1);
    ASSERT_NE(p, nullptr);
    std::uint8_t first = 0;
    sys.node(0).kernel().peekBytes(*p, va, &first, 1);
    EXPECT_EQ(first, 0);
    std::uint8_t at17 = 0;
    sys.node(0).kernel().peekBytes(*p, va + 17, &at17, 1);
    EXPECT_EQ(at17, 17);
}

TEST(TraditionalDma, BadRangeRefusedWithoutBlocking)
{
    System sys(sinkConfig());
    auto *driver = sys.node(0).tradDriver(0);
    std::uint64_t rc = ~0ull;
    sys.node(0).kernel().spawn(
        "p", [&, driver](os::UserContext &ctx) -> sim::ProcTask {
            rc = co_await ctx.syscall(
                [&, driver](os::Kernel &k, os::Process &pr,
                            os::SyscallControl &sc) {
                    driver->requestDma(k, pr, sc, true, 0xDEAD000, 0,
                                       4096, Mode::PinPages);
                });
        });
    sys.runUntilAllDone();
    EXPECT_EQ(rc, baseline::TraditionalDmaDriver::resultBadRange);
    EXPECT_EQ(sys.node(0).tradDriver(0)->requestsCompleted(), 0u);
}

TEST(TraditionalDma, DeviceErrorPropagates)
{
    System sys(sinkConfig());
    auto *driver = sys.node(0).tradDriver(0);
    std::uint64_t rc = ~0ull;
    sys.node(0).kernel().spawn(
        "p", [&, driver](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(4096);
            co_await ctx.store(buf, 1);
            rc = co_await ctx.syscall(
                [&, driver, buf](os::Kernel &k, os::Process &pr,
                                 os::SyscallControl &sc) {
                    // Unaligned device offset.
                    driver->requestDma(k, pr, sc, true, buf, 2, 4096,
                                       Mode::PinPages);
                });
        });
    sys.runUntilAllDone();
    EXPECT_EQ(rc, baseline::TraditionalDmaDriver::resultDeviceError);
}

TEST(TraditionalDma, WriteIntoReadOnlyRegionRefused)
{
    System sys(sinkConfig());
    auto *driver = sys.node(0).tradDriver(0);
    std::uint64_t rc = ~0ull;
    sys.node(0).kernel().spawn(
        "p", [&, driver](os::UserContext &ctx) -> sim::ProcTask {
            Addr ro = co_await ctx.sysAllocMemory(4096, false);
            (void)co_await ctx.load(ro);
            rc = co_await ctx.syscall(
                [&, driver, ro](os::Kernel &k, os::Process &pr,
                                os::SyscallControl &sc) {
                    driver->requestDma(k, pr, sc, false, ro, 0, 4096,
                                       Mode::PinPages);
                });
        });
    sys.runUntilAllDone();
    EXPECT_EQ(rc, baseline::TraditionalDmaDriver::resultBadRange);
}

TEST(TraditionalDma, QueuesConcurrentRequests)
{
    System sys(sinkConfig());
    auto *driver = sys.node(0).tradDriver(0);
    int completions = 0;
    for (int i = 0; i < 3; ++i) {
        sys.node(0).kernel().spawn(
            "p" + std::to_string(i),
            [&, driver](os::UserContext &ctx) -> sim::ProcTask {
                Addr buf = co_await ctx.sysAllocMemory(4096);
                co_await ctx.store(buf, 1);
                std::uint64_t rc = co_await ctx.syscall(
                    [&, driver, buf](os::Kernel &k, os::Process &pr,
                                     os::SyscallControl &sc) {
                        driver->requestDma(k, pr, sc, true, buf, 0,
                                           4096, Mode::PinPages);
                    });
                EXPECT_EQ(rc, 0u);
                ++completions;
            });
    }
    sys.runUntilAllDone(Tick(60) * tickSec);
    EXPECT_EQ(completions, 3);
    EXPECT_EQ(sys.node(0).streamSink()->bytesAccepted(), 3u * 4096);
}

TEST(TraditionalDma, BounceBufferModeCompletes)
{
    System sys(sinkConfig());
    auto rc = runOneDma(sys, true, 8192, Mode::BounceBuffer);
    EXPECT_EQ(rc, baseline::TraditionalDmaDriver::resultOk);
    EXPECT_EQ(sys.node(0).streamSink()->bytesAccepted(), 8192u);
}

TEST(TraditionalDma, PinModeSlowerThanUdmaInitiation)
{
    // The whole point of the paper, as a regression test: traditional
    // end-to-end time minus engine time exceeds UDMA's two-reference
    // initiation by an order of magnitude.
    System sys(sinkConfig());
    Tick t0 = sys.eq().now();
    runOneDma(sys, true, 4096, Mode::PinPages);
    Tick total = sys.eq().now() - t0;
    sim::MachineParams p;
    Tick engine = p.dmaStart() + p.eisaBurst(4096);
    Tick overhead = total - engine;
    Tick udma_initiation =
        2 * p.ioAccess() + p.instrTicks(p.udmaInitiateSoftwareInstr);
    EXPECT_GT(overhead, 5 * udma_initiation);
}
