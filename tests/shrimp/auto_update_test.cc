/**
 * @file
 * Tests for the automatic-update strategy (paper Section 9): stores
 * to a bound page are snooped by the NI and propagate to the remote
 * node; unbound pages are unaffected; contiguous stores combine.
 */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "core/udma_lib.hh"

using namespace shrimp;
using namespace shrimp::core;

namespace
{

SystemConfig
niConfig()
{
    SystemConfig cfg;
    cfg.nodes = 2;
    cfg.node.memBytes = 4 << 20;
    cfg.node.devices.push_back(DeviceConfig{});
    return cfg;
}

} // namespace

TEST(AutoUpdate, SnoopedStoresReachRemoteMemory)
{
    System sys(niConfig());
    auto &send = sys.node(0);
    auto &recv = sys.node(1);

    struct Shared
    {
        std::vector<Addr> rxPages;
        bool exported = false;
        Addr rxVa = 0;
    } shared;

    recv.kernel().spawn(
        "receiver", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(4096);
            shared.rxVa = buf;
            shared.rxPages = co_await sysExportRange(ctx, buf, 4096);
            shared.exported = true;
            // Wait for the last update to arrive.
            co_await pollWord(ctx, buf + 64, 0xAA03);
        });

    send.kernel().spawn(
        "sender", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(4096);
            while (!shared.exported)
                co_await ctx.compute(500);
            bool ok = co_await sysMapAutoUpdate(
                ctx, *send.ni(), buf, recv.id(), shared.rxPages[0]);
            EXPECT_TRUE(ok);
            // Ordinary stores; no explicit send of any kind.
            co_await ctx.store(buf + 0, 0xAA01);
            co_await ctx.store(buf + 8, 0xAA02);
            co_await ctx.store(buf + 64, 0xAA03);
        });

    sys.runUntilAllDone(Tick(30) * tickSec);
    sys.run();

    auto *proc = recv.kernel().findProcess(1);
    std::uint64_t v = 0;
    recv.kernel().peekBytes(*proc, shared.rxVa + 0, &v, 8);
    EXPECT_EQ(v, 0xAA01u);
    recv.kernel().peekBytes(*proc, shared.rxVa + 8, &v, 8);
    EXPECT_EQ(v, 0xAA02u);
    EXPECT_GE(send.ni()->autoUpdatesSent(), 1u);
    // The store to +8 lands right behind the store to +0: combined.
    EXPECT_GE(send.ni()->autoUpdatesCombined(), 1u);
}

TEST(AutoUpdate, UnboundPagesAreNotSnooped)
{
    System sys(niConfig());
    auto &send = sys.node(0);
    send.kernel().spawn(
        "p", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(4096);
            co_await ctx.store(buf, 0x1234);
        });
    sys.runUntilAllDone();
    EXPECT_EQ(send.ni()->autoUpdatesSent(), 0u);
    EXPECT_EQ(send.ni()->messagesSent(), 0u);
}

TEST(AutoUpdate, UnmapStopsPropagation)
{
    System sys(niConfig());
    auto &send = sys.node(0);
    auto &recv = sys.node(1);

    struct Shared
    {
        std::vector<Addr> rxPages;
        bool exported = false;
    } shared;

    recv.kernel().spawn(
        "receiver", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(4096);
            shared.rxPages = co_await sysExportRange(ctx, buf, 4096);
            shared.exported = true;
        });

    send.kernel().spawn(
        "sender", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(4096);
            while (!shared.exported)
                co_await ctx.compute(500);
            co_await sysMapAutoUpdate(ctx, *send.ni(), buf, recv.id(),
                                      shared.rxPages[0]);
            co_await ctx.store(buf, 1);
            // Kernel revokes the binding.
            co_await ctx.syscall([&](os::Kernel &k, os::Process &p,
                                     os::SyscallControl &sc) {
                (void)sc;
                auto *pte = p.pageTable().lookup(
                    k.layout().pageOf(buf));
                Addr page =
                    pte->frameAddr
                    - pte->frameAddr % k.layout().pageBytes();
                send.ni()->unmapAutoUpdate(page);
            });
            co_await ctx.store(buf + 8, 2); // must NOT propagate
        });

    sys.runUntilAllDone(Tick(30) * tickSec);
    sys.run();
    EXPECT_EQ(send.ni()->autoUpdatesSent(), 1u);
}

TEST(AutoUpdate, SnoopDuringRunningTransferDoesNotCorruptIt)
{
    // Regression test: while the UDMA engine is mid-transfer (its
    // message open in the NI), a second process's snooped store
    // appends an automatic-update packet to the same outgoing queue.
    // The engine must keep filling *its* message and both payloads
    // must arrive intact.
    System sys(niConfig());
    auto &send = sys.node(0);
    auto &recv = sys.node(1);
    sys.node(0).kernel(); // (silence unused warnings in some builds)

    struct Shared
    {
        std::vector<Addr> rxPages;
        bool exported = false;
        Addr rxVa = 0;
    } shared;

    recv.kernel().spawn(
        "receiver", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(2 * 4096);
            shared.rxVa = buf;
            shared.rxPages =
                co_await sysExportRange(ctx, buf, 2 * 4096);
            shared.exported = true;
            co_await pollWord(ctx, buf + 4096 - 8, 0xD0D0);
            co_await pollWord(ctx, buf + 4096, 0xA0A0);
        });

    bool dma_started = false;
    send.kernel().spawn(
        "dma-proc", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(4096);
            for (unsigned i = 0; i < 512; ++i)
                co_await ctx.store(buf + i * 8,
                                   i == 511 ? 0xD0D0 : i);
            while (!shared.exported)
                co_await ctx.compute(500);
            std::vector<Addr> page0(1, shared.rxPages[0]);
            Addr proxy = co_await sysMapRemoteRange(
                ctx, 0, *send.ni(), recv.id(), std::move(page0));
            dma::Status st = co_await udmaStart(
                ctx, proxy, ctx.proxyAddr(buf, 0), 4096);
            EXPECT_FALSE(st.initiationFailed);
            dma_started = true;
            co_await ctx.yield(); // let the snooping process run NOW
            co_await udmaWait(ctx, ctx.proxyAddr(buf, 0));
        });

    send.kernel().spawn(
        "auto-proc", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr mine = co_await ctx.sysAllocMemory(4096);
            while (!shared.exported)
                co_await ctx.compute(500);
            co_await sysMapAutoUpdate(ctx, *send.ni(), mine,
                                      recv.id(), shared.rxPages[1]);
            while (!dma_started)
                co_await ctx.compute(200);
            // The 4 KB transfer is in flight right now.
            co_await ctx.store(mine, 0xA0A0);
        });

    sys.runUntilAllDone(Tick(60) * tickSec);
    sys.run();

    auto *proc = recv.kernel().findProcess(1);
    std::uint64_t w = 0;
    recv.kernel().peekBytes(*proc, shared.rxVa + 80, &w, 8);
    EXPECT_EQ(w, 10u) << "DMA payload intact";
    recv.kernel().peekBytes(*proc, shared.rxVa + 4096, &w, 8);
    EXPECT_EQ(w, 0xA0A0u) << "auto update landed on its own page";
}

TEST(AutoUpdate, CoexistsWithDeliberateUpdate)
{
    // Both strategies on the same NI: an auto-update binding plus a
    // deliberate-update (UDMA) send; both arrive.
    System sys(niConfig());
    auto &send = sys.node(0);
    auto &recv = sys.node(1);

    struct Shared
    {
        std::vector<Addr> rxPages;
        bool exported = false;
        Addr rxVa = 0;
    } shared;

    recv.kernel().spawn(
        "receiver", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr buf = co_await ctx.sysAllocMemory(2 * 4096);
            shared.rxVa = buf;
            shared.rxPages =
                co_await sysExportRange(ctx, buf, 2 * 4096);
            shared.exported = true;
            co_await pollWord(ctx, buf, 0x11);        // auto page
            co_await pollWord(ctx, buf + 4096, 0x22); // deliberate page
        });

    send.kernel().spawn(
        "sender", [&](os::UserContext &ctx) -> sim::ProcTask {
            Addr abuf = co_await ctx.sysAllocMemory(4096);
            Addr dbuf = co_await ctx.sysAllocMemory(4096);
            co_await ctx.store(dbuf, 0x22);
            while (!shared.exported)
                co_await ctx.compute(500);
            co_await sysMapAutoUpdate(ctx, *send.ni(), abuf, recv.id(),
                                      shared.rxPages[0]);
            std::vector<Addr> page2(1, shared.rxPages[1]);
            Addr proxy = co_await sysMapRemoteRange(
                ctx, 0, *send.ni(), recv.id(), std::move(page2));
            co_await ctx.store(abuf, 0x11); // automatic
            co_await udmaTransfer(ctx, 0, proxy, dbuf, 64, true);
        });

    sys.runUntilAllDone(Tick(30) * tickSec);
    sys.run();
    EXPECT_GE(send.ni()->autoUpdatesSent(), 1u);
    EXPECT_GE(recv.ni()->messagesDelivered(), 2u);
}
