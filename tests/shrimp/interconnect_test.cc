/**
 * @file
 * Unit tests for the backplane interconnect.
 */

#include <gtest/gtest.h>

#include "bus/io_bus.hh"
#include "mem/physical_memory.hh"
#include "shrimp/network_interface.hh"

using namespace shrimp;
using namespace shrimp::net;

namespace
{

struct NetFixture : ::testing::Test
{
    sim::EventQueue eq;
    sim::MachineParams params;
    Interconnect net{eq, params};
};

} // namespace

TEST_F(NetFixture, UnknownNodePanics)
{
    EXPECT_THROW(net.ni(3), PanicError);
    EXPECT_FALSE(net.hasNode(3));
}

TEST_F(NetFixture, AttachAndLookup)
{
    mem::PhysicalMemory mem(1 << 20, 4096);
    bus::IoBus bus(eq, params);
    NetworkInterface ni(eq, params, 5, mem, bus, net, 4096);
    EXPECT_TRUE(net.hasNode(5));
    EXPECT_EQ(net.ni(5), &ni);
}

TEST_F(NetFixture, DoubleAttachPanics)
{
    mem::PhysicalMemory mem(1 << 20, 4096);
    bus::IoBus bus(eq, params);
    NetworkInterface ni(eq, params, 5, mem, bus, net, 4096);
    EXPECT_THROW(net.attach(5, &ni), PanicError);
}

TEST_F(NetFixture, LinkSerializesPerSource)
{
    Tick t1 = net.acquireLink(0, 2000); // 2000 B at 200 MB/s = 10 us
    Tick t2 = net.acquireLink(0, 2000);
    EXPECT_NEAR(double(t1), 10.0 * tickUs, double(tickNs));
    EXPECT_NEAR(double(t2), 20.0 * tickUs, double(tickNs));
}

TEST_F(NetFixture, DistinctSourcesDoNotSerialize)
{
    Tick t1 = net.acquireLink(0, 2000);
    Tick t2 = net.acquireLink(1, 2000);
    EXPECT_EQ(t1, t2) << "a crossbar: each node has its own link";
}

TEST_F(NetFixture, TracksRoutedBytes)
{
    net.acquireLink(0, 100);
    net.acquireLink(1, 250);
    EXPECT_EQ(net.bytesRouted(), 350u);
}

TEST_F(NetFixture, HopLatencyFromParams)
{
    EXPECT_EQ(net.hopLatency(), Tick(params.linkLatencyNs * tickNs));
}
