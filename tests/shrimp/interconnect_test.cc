/**
 * @file
 * Unit tests for the backplane interconnect: attach/lookup and
 * per-link arbitration on the crossbar, dimension-order routing on
 * mesh and torus wirings, the distance-scaled minDeliveryLatency
 * floor, and — as a property test — the lookahead contract the
 * sharded engine trusts: every cross-node post (data chunks, acks,
 * device-proxy deliveries, forwarded hops) lands at least
 * minDeliveryLatency(src, dst) in the sender's future, on every
 * topology, even under delay/duplicate faults.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "bus/io_bus.hh"
#include "mem/physical_memory.hh"
#include "shrimp/network_interface.hh"
#include "sim/sharded.hh"

using namespace shrimp;
using namespace shrimp::net;

namespace
{

sim::TopologyConfig
parseTopo(const std::string &spec)
{
    sim::TopologyConfig topo;
    EXPECT_TRUE(sim::parseTopologySpec(spec, topo, nullptr))
        << "bad spec " << spec;
    return topo;
}

struct NetFixture : ::testing::Test
{
    sim::EventQueue eq;
    sim::MachineParams params;
    Interconnect net{eq, params};
    mem::PhysicalMemory mem{1 << 20, 4096};
    bus::IoBus bus{eq, params};
    std::vector<std::unique_ptr<NetworkInterface>> nis;

    /** Attach NIs for nodes [0, n) (the ctor self-attaches). */
    void
    attachNodes(unsigned n)
    {
        for (unsigned i = 0; i < n; ++i)
            nis.push_back(std::make_unique<NetworkInterface>(
                eq, params, i, mem, bus, net, 4096));
    }
};

} // namespace

TEST_F(NetFixture, UnknownNodePanics)
{
    EXPECT_THROW(net.ni(3), PanicError);
    EXPECT_FALSE(net.hasNode(3));
}

TEST_F(NetFixture, AttachAndLookup)
{
    NetworkInterface ni(eq, params, 5, mem, bus, net, 4096);
    EXPECT_TRUE(net.hasNode(5));
    EXPECT_EQ(net.ni(5), &ni);
}

TEST_F(NetFixture, DoubleAttachPanics)
{
    NetworkInterface ni(eq, params, 5, mem, bus, net, 4096);
    EXPECT_THROW(net.attach(5, &ni), PanicError);
}

TEST_F(NetFixture, AcquireLinkFromUnattachedNodePanics)
{
    // The link vectors are sized in attach() only: a runtime grow
    // would be a data race under shards, so acquireLink must refuse
    // rather than resize.
    EXPECT_THROW(net.acquireLink(0, 2000), PanicError);
    attachNodes(1);
    EXPECT_NO_THROW(net.acquireLink(0, 2000));
    EXPECT_THROW(net.acquireLink(1, 2000), PanicError);
}

TEST_F(NetFixture, LinkSerializesPerSource)
{
    attachNodes(1);
    Tick t1 = net.acquireLink(0, 2000); // 2000 B at 200 MB/s = 10 us
    Tick t2 = net.acquireLink(0, 2000);
    EXPECT_NEAR(double(t1), 10.0 * tickUs, double(tickNs));
    EXPECT_NEAR(double(t2), 20.0 * tickUs, double(tickNs));
}

TEST_F(NetFixture, DistinctSourcesDoNotSerialize)
{
    attachNodes(2);
    Tick t1 = net.acquireLink(0, 2000);
    Tick t2 = net.acquireLink(1, 2000);
    EXPECT_EQ(t1, t2) << "a crossbar: each node has its own link";
}

TEST_F(NetFixture, TracksRoutedBytes)
{
    attachNodes(2);
    net.acquireLink(0, 100);
    net.acquireLink(1, 250);
    EXPECT_EQ(net.bytesRouted(), 350u);
}

TEST_F(NetFixture, HopLatencyFromParams)
{
    EXPECT_EQ(net.hopLatency(), Tick(params.linkLatencyNs * tickNs));
}

// ------------------------------------------------- topology parsing

TEST(TopologySpec, ParsesAllKinds)
{
    sim::TopologyConfig t;
    EXPECT_TRUE(sim::parseTopologySpec("crossbar", t, nullptr));
    EXPECT_TRUE(t.flat());
    EXPECT_TRUE(t.specified);

    EXPECT_TRUE(sim::parseTopologySpec("mesh:4x4", t, nullptr));
    EXPECT_FALSE(t.flat());
    EXPECT_EQ(t.dimX, 4u);
    EXPECT_EQ(t.dimY, 4u);
    EXPECT_EQ(t.gridNodes(), 16u);
    EXPECT_EQ(t.describe(), "mesh:4x4");

    EXPECT_TRUE(sim::parseTopologySpec("torus:8x2", t, nullptr));
    EXPECT_EQ(t.kind, sim::TopologyConfig::Kind::Torus);
    EXPECT_EQ(t.gridNodes(), 16u);
    EXPECT_EQ(t.describe(), "torus:8x2");
}

TEST(TopologySpec, RejectsMalformedSpecs)
{
    sim::TopologyConfig t;
    for (const char *bad : {"", "mesh", "mesh:", "mesh:4", "mesh:4x",
                            "mesh:0x4", "mesh:1x1", "mesh:4x4x4",
                            "ring:4x4", "torus:ax4"}) {
        EXPECT_FALSE(sim::parseTopologySpec(bad, t, nullptr))
            << "accepted '" << bad << "'";
    }
}

// ------------------------------------------------- routing geometry

TEST(Routing, DistanceIsSymmetricOnEveryTopology)
{
    for (const char *spec : {"mesh:4x4", "torus:4x4", "mesh:8x2",
                             "torus:8x2"}) {
        sim::TopologyConfig topo = parseTopo(spec);
        const unsigned n = topo.gridNodes();
        for (NodeId a = 0; a < n; ++a)
            for (NodeId b = 0; b < n; ++b)
                EXPECT_EQ(topo.hops(a, b), topo.hops(b, a))
                    << spec << " " << a << "<->" << b;
    }
}

TEST(Routing, DimensionOrderPathXThenY)
{
    // 4x4 mesh, row-major: node 10 is (x=2, y=2). From node 0 the
    // dimension-order route corrects X first (0 -> 1 -> 2), then Y
    // (2 -> 6 -> 10).
    sim::TopologyConfig topo = parseTopo("mesh:4x4");
    EXPECT_EQ(topo.hops(0, 10), 4u);
    std::vector<NodeId> path;
    NodeId at = 0;
    while (at != 10) {
        at = topo.nextHop(at, 10);
        path.push_back(at);
        ASSERT_LE(path.size(), 8u) << "route does not converge";
    }
    EXPECT_EQ(path, (std::vector<NodeId>{1, 2, 6, 10}));
}

TEST(Routing, EveryHopIsAdjacentAndConverges)
{
    for (const char *spec : {"mesh:4x4", "torus:4x4"}) {
        sim::TopologyConfig topo = parseTopo(spec);
        const unsigned n = topo.gridNodes();
        for (NodeId src = 0; src < n; ++src) {
            for (NodeId dst = 0; dst < n; ++dst) {
                NodeId at = src;
                unsigned steps = 0;
                while (at != dst) {
                    NodeId next = topo.nextHop(at, dst);
                    EXPECT_EQ(topo.hops(at, next), 1u)
                        << spec << ": " << at << " -> " << next
                        << " is not one hop";
                    at = next;
                    ASSERT_LE(++steps, n)
                        << spec << ": " << src << " -> " << dst
                        << " does not converge";
                }
                if (src != dst) {
                    EXPECT_EQ(steps, topo.hops(src, dst))
                        << spec << ": " << src << " -> " << dst;
                }
            }
        }
    }
}

TEST(Routing, TorusWrapsAroundWhereTheMeshWalks)
{
    sim::TopologyConfig mesh = parseTopo("mesh:4x4");
    sim::TopologyConfig torus = parseTopo("torus:4x4");
    // Edge to edge along X: three mesh hops, one torus wrap.
    EXPECT_EQ(mesh.hops(0, 3), 3u);
    EXPECT_EQ(torus.hops(0, 3), 1u);
    EXPECT_EQ(torus.nextHop(0, 3), 3u);
    // Corner to corner: 6 mesh hops, 2 torus wraps.
    EXPECT_EQ(mesh.hops(0, 15), 6u);
    EXPECT_EQ(torus.hops(0, 15), 2u);
    // The torus never does worse than the mesh.
    for (NodeId a = 0; a < 16; ++a)
        for (NodeId b = 0; b < 16; ++b)
            EXPECT_LE(torus.hops(a, b), mesh.hops(a, b));
}

TEST(Routing, MinDeliveryLatencyScalesWithDistance)
{
    sim::EventQueue eq;
    sim::MachineParams params;
    Interconnect flat{eq, params};
    Interconnect meshNet{eq, params, parseTopo("mesh:4x4")};
    // One hop costs the header serialization plus the hop latency.
    const Tick one = flat.minDeliveryLatency(0, 1);
    EXPECT_EQ(meshNet.minDeliveryLatency(0, 1), one);
    EXPECT_EQ(meshNet.minDeliveryLatency(0, 10), 4 * one);
    EXPECT_EQ(meshNet.minDeliveryLatency(0, 15), 6 * one);
    // The self-send floor never collapses to zero (the engine's
    // lookahead fold would otherwise deadlock a shard on itself).
    EXPECT_EQ(meshNet.minDeliveryLatency(3, 3), one);
}

TEST(Routing, MeshDirectionLinksArbitrateIndependently)
{
    sim::EventQueue eq;
    sim::MachineParams params;
    Interconnect net{eq, params, parseTopo("mesh:4x4")};
    mem::PhysicalMemory mem{1 << 20, 4096};
    bus::IoBus bus{eq, params};
    std::vector<std::unique_ptr<NetworkInterface>> nis;
    for (unsigned i = 0; i < 16; ++i)
        nis.push_back(std::make_unique<NetworkInterface>(
            eq, params, i, mem, bus, net, 4096));

    // Node 5 is interior: -X=4, +X=6, -Y=1, +Y=9 are four distinct
    // physical links and must not serialize against each other...
    Tick east = net.acquireLink(5, 6, 2000, 0);
    Tick west = net.acquireLink(5, 4, 2000, 0);
    Tick north = net.acquireLink(5, 1, 2000, 0);
    Tick south = net.acquireLink(5, 9, 2000, 0);
    EXPECT_EQ(east, west);
    EXPECT_EQ(east, north);
    EXPECT_EQ(east, south);
    // ...while a second transfer on the same direction queues behind
    // the first.
    Tick east2 = net.acquireLink(5, 6, 2000, 0);
    EXPECT_EQ(east2, 2 * east);
    // Each acquisition counted its bytes once.
    EXPECT_EQ(net.bytesRouted(), 5u * 2000u);
}

// ------------------------------------- the lookahead-floor property
//
// The contract the sharded engine sizes its lookahead matrix from:
// every cross-node post lands >= minDeliveryLatency(src, dst) in the
// sender's future. Interpose a NodeRouter that checks the bound for
// every post the NIs make, then drive real transport traffic — data
// chunks through the NIPT device proxy, acks riding back, multi-hop
// forwards — under delay and duplicate faults (which may only push
// arrivals later, never earlier).

namespace
{

class FloorCheckRouter : public sim::NodeRouter
{
  public:
    FloorCheckRouter(sim::EventQueue &eq, Interconnect &net)
        : eq_(eq), net_(net)
    {}

    void
    post(NodeId src, NodeId dst, Tick when, const char *name,
         sim::EventCallback fn, sim::EventPriority prio) override
    {
        ++posts_;
        if (src != dst) {
            const Tick floor = net_.minDeliveryLatency(src, dst);
            EXPECT_GE(when, eq_.now() + floor)
                << name << " from node " << src << " to node " << dst
                << " lands only " << (when - eq_.now())
                << " ticks out (floor " << floor << ")";
            if (when < eq_.now() + floor)
                ++violations_;
        }
        eq_.schedule(when, name, std::move(fn), prio);
    }

    std::uint64_t posts() const { return posts_; }
    std::uint64_t violations() const { return violations_; }

  private:
    sim::EventQueue &eq_;
    Interconnect &net_;
    std::uint64_t posts_ = 0;
    std::uint64_t violations_ = 0;
};

/** Drive one deliberate-update message src -> dst and check arrival. */
void
runFloorProperty(const std::string &spec, NodeId src, NodeId dst)
{
    SCOPED_TRACE(spec);
    sim::EventQueue eq;
    sim::MachineParams params;
    sim::TopologyConfig topo;
    if (spec != "crossbar")
        topo = parseTopo(spec);
    Interconnect net{eq, params, topo};

    FloorCheckRouter router(eq, net);

    const unsigned n = topo.flat() ? 16 : topo.gridNodes();
    mem::PhysicalMemory mem{1 << 22, 4096};
    bus::IoBus bus{eq, params};
    std::vector<std::unique_ptr<NetworkInterface>> nis;
    for (unsigned i = 0; i < n; ++i) {
        nis.push_back(std::make_unique<NetworkInterface>(
            eq, params, i, mem, bus, net, 4096));
        nis.back()->setRouter(&router);
    }

    // Delay and duplicate faults: both may only move arrivals later.
    FaultConfig fc;
    ASSERT_TRUE(
        parseFaultSpec("delay=0.3,dup=0.2,seed=11", fc, nullptr));
    net.setFaults(fc);

    NetworkInterface &tx = *nis[src];
    NetworkInterface &rx = *nis[dst];

    const std::uint32_t bytes = 4096;
    tx.nipt().set(0, dst, 16);
    ASSERT_EQ(tx.validateTransfer(true, 0, bytes), 0);
    tx.transferStarting(true, 0, bytes);
    std::vector<std::uint8_t> data(bytes);
    for (std::uint32_t i = 0; i < bytes; ++i)
        data[i] = std::uint8_t(i * 13 + 1);
    std::uint32_t pushed = 0;
    while (pushed < bytes) {
        std::uint32_t cap = tx.pushCapacity(pushed, bytes - pushed);
        if (cap == 0) {
            ASSERT_TRUE(eq.step()) << "deadlock while pushing";
            continue;
        }
        tx.devicePush(pushed, data.data() + pushed, cap);
        pushed += cap;
    }
    tx.transferFinished(true, 0, bytes);
    eq.run();

    EXPECT_EQ(rx.messagesDelivered(), 1u);
    for (std::uint32_t i = 0; i < bytes; ++i)
        ASSERT_EQ(mem.read<std::uint8_t>(16 * 4096 + i),
                  std::uint8_t(i * 13 + 1))
            << "payload byte " << i;
    EXPECT_GT(router.posts(), 0u)
        << "no cross-node posts: the property was never exercised";
    EXPECT_EQ(router.violations(), 0u);
}

} // namespace

TEST(LookaheadFloor, HoldsOnCrossbar) { runFloorProperty("crossbar", 0, 10); }

TEST(LookaheadFloor, HoldsOnMeshMultiHop)
{
    // 0 -> 10 is a 4-hop dimension-order route: every forwarded leg
    // must respect its own adjacent-pair floor.
    runFloorProperty("mesh:4x4", 0, 10);
}

TEST(LookaheadFloor, HoldsOnTorusWraparound)
{
    // 0 -> 15 wraps both axes on the torus (2 hops).
    runFloorProperty("torus:4x4", 0, 15);
}
