/**
 * @file
 * Unit tests for the SHRIMP network interface: device-interface
 * semantics, packetization, flow control, and receive-side DMA.
 */

#include <gtest/gtest.h>

#include "bus/io_bus.hh"
#include "mem/physical_memory.hh"
#include "shrimp/network_interface.hh"

using namespace shrimp;
using namespace shrimp::net;

namespace
{

struct NiPair : ::testing::Test
{
    sim::EventQueue eq;
    sim::MachineParams params;
    Interconnect net{eq, params};
    mem::PhysicalMemory memA{1 << 20, 4096};
    mem::PhysicalMemory memB{1 << 20, 4096};
    bus::IoBus busA{eq, params};
    bus::IoBus busB{eq, params};
    NetworkInterface niA{eq, params, 0, memA, busA, net, 4096};
    NetworkInterface niB{eq, params, 1, memB, busB, net, 4096};

    /** Drive niA as the engine would: start a transfer and push. */
    void
    sendMessage(std::size_t nipt_idx, std::uint32_t bytes,
                std::uint8_t seed)
    {
        Addr dev_off = nipt_idx * 4096;
        ASSERT_EQ(niA.validateTransfer(true, dev_off, bytes), 0);
        niA.transferStarting(true, dev_off, bytes);
        std::vector<std::uint8_t> data(bytes);
        for (std::uint32_t i = 0; i < bytes; ++i)
            data[i] = std::uint8_t(seed + i);
        std::uint32_t pushed = 0;
        while (pushed < bytes) {
            std::uint32_t cap =
                niA.pushCapacity(dev_off + pushed, bytes - pushed);
            if (cap == 0) {
                ASSERT_TRUE(eq.step()) << "deadlock while pushing";
                continue;
            }
            niA.devicePush(dev_off + pushed, data.data() + pushed,
                           cap);
            pushed += cap;
        }
        niA.transferFinished(true, dev_off, bytes);
    }
};

} // namespace

TEST_F(NiPair, ValidatesDirectionAlignmentAndNipt)
{
    niA.nipt().set(0, 1, 16);
    EXPECT_EQ(niA.validateTransfer(true, 0, 256), 0);
    EXPECT_EQ(niA.validateTransfer(false, 0, 256),
              dma::device_error::direction)
        << "deliberate update is memory-to-device only";
    EXPECT_EQ(niA.validateTransfer(true, 2, 256),
              dma::device_error::alignment);
    EXPECT_EQ(niA.validateTransfer(true, 0, 255),
              dma::device_error::alignment);
    EXPECT_EQ(niA.validateTransfer(true, 4096, 256),
              dma::device_error::range)
        << "NIPT entry 1 is not programmed";
}

TEST_F(NiPair, BoundaryIsTheProxyPage)
{
    EXPECT_EQ(niA.deviceBoundary(0), 4096u);
    EXPECT_EQ(niA.deviceBoundary(100), 3996u);
    EXPECT_EQ(niA.deviceBoundary(4095), 1u);
}

TEST_F(NiPair, ExtentCovers32kPages)
{
    EXPECT_EQ(niA.proxyExtentBytes(), 32768ull * 4096);
}

TEST_F(NiPair, AllowProxyMapRequiresProgrammedEntries)
{
    niA.nipt().set(3, 1, 7);
    EXPECT_TRUE(niA.allowProxyMap(3, 1, true));
    EXPECT_FALSE(niA.allowProxyMap(3, 2, true));
}

TEST_F(NiPair, DeliversMessageIntoRemotePhysicalMemory)
{
    niA.nipt().set(0, /*node=*/1, /*page=*/16); // B's page 16
    sendMessage(0, 1024, 7);
    eq.run();
    for (std::uint32_t i = 0; i < 1024; ++i) {
        ASSERT_EQ(memB.read<std::uint8_t>(16 * 4096 + i),
                  std::uint8_t(7 + i));
    }
    EXPECT_EQ(niA.messagesSent(), 1u);
    EXPECT_EQ(niB.messagesDelivered(), 1u);
    EXPECT_EQ(niB.bytesDelivered(), 1024u);
}

TEST_F(NiPair, OffsetWithinPageIsPreserved)
{
    niA.nipt().set(0, 1, 16);
    Addr dev_off = 512; // offset 512 into NIPT page 0
    niA.transferStarting(true, dev_off, 8);
    std::uint8_t data[8] = {9, 8, 7, 6, 5, 4, 3, 2};
    niA.devicePush(dev_off, data, 8);
    niA.transferFinished(true, dev_off, 8);
    eq.run();
    EXPECT_EQ(memB.read<std::uint8_t>(16 * 4096 + 512), 9);
    EXPECT_EQ(memB.read<std::uint8_t>(16 * 4096 + 519), 2);
}

TEST_F(NiPair, MultipleMessagesArriveInOrder)
{
    niA.nipt().set(0, 1, 16);
    niA.nipt().set(1, 1, 17);
    sendMessage(0, 256, 1);
    sendMessage(1, 256, 101);
    eq.run();
    EXPECT_EQ(memB.read<std::uint8_t>(16 * 4096), 1);
    EXPECT_EQ(memB.read<std::uint8_t>(17 * 4096), 101);
    EXPECT_EQ(niB.messagesDelivered(), 2u);
}

TEST_F(NiPair, DeliveryCallbackCarriesTimestamps)
{
    niA.nipt().set(0, 1, 16);
    Delivery seen;
    niB.setDeliveryCallback([&](const Delivery &d) { seen = d; });
    Tick before = eq.now();
    sendMessage(0, 512, 3);
    eq.run();
    EXPECT_EQ(seen.srcNode, 0u);
    EXPECT_GT(seen.deliveredTick, before);
    EXPECT_GE(seen.deliveredTick, seen.senderStartTick);
}

TEST_F(NiPair, EndToEndLatencyIncludesPipelineStages)
{
    niA.nipt().set(0, 1, 16);
    Tick delivered = 0;
    niB.setDeliveryCallback(
        [&](const Delivery &d) { delivered = d.deliveredTick; });
    sendMessage(0, 256, 3);
    eq.run();
    // At least: link transfer + hop latency + rx dma start + rx burst
    // + completion visibility.
    Tick floor = params.linkTransfer(256) + params.linkLatency()
                 + params.rxDmaStart() + params.eisaBurst(256)
                 + params.rxCompletion();
    EXPECT_GE(delivered, floor);
}

TEST_F(NiPair, TxFifoBackpressuresWhenReceiverStalls)
{
    // Shrink the FIFOs so a 4 KB message cannot fit at once.
    // pushCapacity must clamp, and progress resumes as the pump
    // drains.
    niA.nipt().set(0, 1, 16);
    std::uint32_t cap0 = niA.pushCapacity(0, 1 << 20);
    EXPECT_EQ(cap0, params.niFifoBytes) << "empty FIFO accepts its size";
    niA.transferStarting(true, 0, 2 * params.niFifoBytes);
    std::vector<std::uint8_t> chunk(params.niFifoBytes, 0xEE);
    niA.devicePush(0, chunk.data(), params.niFifoBytes);
    EXPECT_EQ(niA.pushCapacity(0, 1024), 0u) << "FIFO full";
    // Let the pump drain a little; capacity must reappear.
    while (niA.pushCapacity(0, 1024) == 0) {
        ASSERT_TRUE(eq.step()) << "pump made no progress";
    }
    SUCCEED();
}

TEST_F(NiPair, RxSideUsesReceiversBus)
{
    niA.nipt().set(0, 1, 16);
    std::uint64_t bursts_before = busB.burstCount();
    sendMessage(0, 1024, 5);
    eq.run();
    EXPECT_GT(busB.burstCount(), bursts_before)
        << "receive-side EISA DMA shares the receiver's I/O bus";
    EXPECT_EQ(busA.burstCount(), 0u)
        << "this test bypassed A's engine, so A's bus stays quiet";
}
