/**
 * @file
 * Unit tests for the selective-repeat transport primitives
 * (shrimp/transport.hh) and for the recovery behaviour they drive in
 * the NI: SACK bitmap round-trips, the Jacobson RTT estimator
 * converging onto a steady path, the AIMD slow-start/halving state
 * machine, and — on a real two-NI world — a dropped chunk being
 * repaired by dup-ack fast retransmit before the retransmit timer
 * ever fires (and by the timer once fast retransmit is mutated away).
 */

#include <gtest/gtest.h>

#include <vector>

#include "bus/io_bus.hh"
#include "mem/physical_memory.hh"
#include "shrimp/fault.hh"
#include "shrimp/network_interface.hh"
#include "shrimp/transport.hh"

using namespace shrimp;
using namespace shrimp::net;

// ------------------------------------------------------------- SACK

TEST(Sack, EncodeDecodeRoundTrip)
{
    // cum = 10; 10..12 accepted in order, 15 and 40 buffered OOO.
    std::uint64_t bits = sackEncode(10, 13, {15, 40});
    std::vector<std::uint64_t> seqs = sackDecode(10, bits);
    EXPECT_EQ(seqs, (std::vector<std::uint64_t>{10, 11, 12, 15, 40}));
}

TEST(Sack, EmptyWindowEncodesToZero)
{
    EXPECT_EQ(sackEncode(7, 7, {}), 0u);
    EXPECT_TRUE(sackDecode(7, 0).empty());
}

TEST(Sack, SeqsOutsideTheWindowAreDropped)
{
    // 9 is below cum, 10+64 is past the bitmap: neither survives.
    std::uint64_t bits = sackEncode(10, 10, {9, 10 + sackWindow, 11});
    EXPECT_EQ(sackDecode(10, bits),
              (std::vector<std::uint64_t>{11}));
}

TEST(Sack, FullWindowRoundTrips)
{
    std::vector<std::uint64_t> all;
    for (unsigned i = 0; i < sackWindow; ++i)
        all.push_back(100 + i);
    std::uint64_t bits = sackEncode(100, 100, all);
    EXPECT_EQ(bits, ~std::uint64_t(0));
    EXPECT_EQ(sackDecode(100, bits), all);
}

// ----------------------------------------------------- RTT estimator

TEST(RttEstimator, FirstSampleSeedsSrttAndRttvar)
{
    RttEstimator e;
    EXPECT_FALSE(e.valid);
    e.sample(800);
    EXPECT_TRUE(e.valid);
    EXPECT_EQ(e.srtt, 800u);
    EXPECT_EQ(e.rttvar, 400u);
}

TEST(RttEstimator, ConvergesOntoASteadyPath)
{
    RttEstimator e;
    e.sample(4000); // wildly wrong first impression
    for (int i = 0; i < 100; ++i)
        e.sample(500);
    // srtt decays geometrically toward the true 500-tick path and
    // rttvar toward zero, so the implied RTO approaches the floor.
    EXPECT_NEAR(double(e.srtt), 500.0, 25.0);
    EXPECT_LT(e.rttvar, 50u);
    EXPECT_LT(e.rto(0, 1000000), 700u);
}

TEST(RttEstimator, RtoTracksVariance)
{
    RttEstimator jittery, steady;
    for (int i = 0; i < 50; ++i) {
        steady.sample(1000);
        jittery.sample(i % 2 ? 1800 : 200); // same mean, huge swings
    }
    EXPECT_GT(jittery.rto(0, 1u << 30), steady.rto(0, 1u << 30))
        << "srtt + 4 rttvar must widen with path variance";
}

TEST(RttEstimator, RtoClampsIntoTheConfiguredBand)
{
    RttEstimator e;
    e.sample(10);
    EXPECT_EQ(e.rto(5000, 320000), 5000u) << "floor applies";
    RttEstimator slow;
    slow.sample(1000000);
    EXPECT_EQ(slow.rto(5000, 320000), 320000u) << "ceiling applies";
}

// ------------------------------------------------- congestion window

TEST(CongestionWindow, OpensAtTheFullCreditWindow)
{
    CongestionWindow w;
    w.init(256, 8192);
    EXPECT_EQ(w.cwnd, 8192u);
    EXPECT_EQ(w.ssthresh, 8192u);
    EXPECT_FALSE(w.inSlowStart())
        << "a healthy flow starts wide open, not in slow start";
}

TEST(CongestionWindow, LossHalvesFlightWithAFloor)
{
    CongestionWindow w;
    w.init(256, 8192);
    w.onLoss(8192);
    EXPECT_EQ(w.cwnd, 4096u);
    EXPECT_EQ(w.ssthresh, 4096u);
    w.onLoss(600); // half of a tiny flight would be under the floor
    EXPECT_EQ(w.cwnd, 512u) << "floor is two chunks";
    EXPECT_EQ(w.ssthresh, 512u);
}

TEST(CongestionWindow, RtoCollapsesToTwoChunks)
{
    CongestionWindow w;
    w.init(256, 8192);
    w.onRto(8192);
    EXPECT_EQ(w.cwnd, 512u)
        << "two chunks, so the scoreboard keeps a dup-ack source";
    EXPECT_EQ(w.ssthresh, 4096u);
    EXPECT_TRUE(w.inSlowStart());
}

TEST(CongestionWindow, SlowStartDoublesThenTurnsLinear)
{
    CongestionWindow w;
    w.init(256, 8192);
    w.onRto(8192); // cwnd 512, ssthresh 4096
    // Slow start: byte-counting growth, one acked byte = one byte of
    // window, until ssthresh.
    w.onAck(512);
    EXPECT_EQ(w.cwnd, 1024u);
    w.onAck(1024);
    EXPECT_EQ(w.cwnd, 2048u);
    w.onAck(2048);
    EXPECT_EQ(w.cwnd, 4096u);
    EXPECT_FALSE(w.inSlowStart());
    // Congestion avoidance: about one chunk per cwnd of acked bytes.
    w.onAck(4096);
    EXPECT_EQ(w.cwnd, 4096u + 256u);
}

TEST(CongestionWindow, NeverGrowsPastTheCreditCap)
{
    CongestionWindow w;
    w.init(256, 8192);
    w.onLoss(8192);
    for (int i = 0; i < 1000; ++i)
        w.onAck(8192);
    EXPECT_EQ(w.cwnd, 8192u)
        << "credits bound the flight; cwnd above them is meaningless";
}

// ------------------------------------- recovery on a two-NI world

namespace
{

/**
 * Two NIs on a backplane whose node0 -> node1 direction is dead for
 * the first few microseconds of the run: the head of the message is
 * dropped on the wire, everything behind it arrives out of order,
 * and the sender's scoreboard has to repair the hole.
 */
struct TransportPair : ::testing::Test
{
    sim::EventQueue eq;
    sim::MachineParams params;
    Interconnect net{eq, params};
    mem::PhysicalMemory memA{1 << 20, 4096};
    mem::PhysicalMemory memB{1 << 20, 4096};
    bus::IoBus busA{eq, params};
    bus::IoBus busB{eq, params};
    NetworkInterface niA{eq, params, 0, memA, busA, net, 4096};
    NetworkInterface niB{eq, params, 1, memB, busB, net, 4096};

    void
    installDownWindow(bool disable_fast_retransmit)
    {
        FaultConfig cfg;
        ASSERT_TRUE(parseFaultSpec("down=0-1@0-3", cfg, nullptr));
        cfg.disableFastRetransmit = disable_fast_retransmit;
        net.setFaults(cfg);
    }

    /** Stream one deliberate update through niA as the engine would. */
    void
    sendMessage(std::uint32_t bytes)
    {
        niA.nipt().set(0, 1, 16);
        ASSERT_EQ(niA.validateTransfer(true, 0, bytes), 0);
        niA.transferStarting(true, 0, bytes);
        std::vector<std::uint8_t> data(bytes);
        for (std::uint32_t i = 0; i < bytes; ++i)
            data[i] = std::uint8_t(i * 7 + 3);
        std::uint32_t pushed = 0;
        while (pushed < bytes) {
            std::uint32_t cap =
                niA.pushCapacity(pushed, bytes - pushed);
            if (cap == 0) {
                ASSERT_TRUE(eq.step()) << "deadlock while pushing";
                continue;
            }
            niA.devicePush(pushed, data.data() + pushed, cap);
            pushed += cap;
        }
        niA.transferFinished(true, 0, bytes);
        eq.run();
        for (std::uint32_t i = 0; i < bytes; ++i) {
            ASSERT_EQ(memB.read<std::uint8_t>(16 * 4096 + i),
                      std::uint8_t(i * 7 + 3))
                << "payload byte " << i << " corrupted or lost";
        }
        EXPECT_EQ(niB.messagesDelivered(), 1u);
    }
};

} // namespace

TEST_F(TransportPair, DupAcksRepairTheHoleBeforeTheTimer)
{
    installDownWindow(/*disable_fast_retransmit=*/false);
    sendMessage(4096);
    EXPECT_GT(net.faults().totals().downDropped, 0u)
        << "the window never hit traffic; the test proves nothing";
    EXPECT_GT(niB.rxOutOfOrderBuffered(), 0u)
        << "chunks behind the hole must be buffered, not dropped";
    EXPECT_GE(niA.fastRetransmits(), 1u);
    EXPECT_EQ(niA.timeouts(), 0u)
        << "the scoreboard must beat the retransmit timer";

    // The new TxFlow state surfaces through the debug view.
    auto flows = niA.txFlowDebug();
    ASSERT_EQ(flows.size(), 1u);
    EXPECT_EQ(flows[0].dst, 1u);
    EXPECT_EQ(flows[0].unackedChunks, 0u);
    EXPECT_GT(flows[0].cwnd, 0u);
    EXPECT_GT(flows[0].srttUs, 0.0);
}

TEST_F(TransportPair, TimerStillRecoversWithFastRetransmitMutedAway)
{
    installDownWindow(/*disable_fast_retransmit=*/true);
    sendMessage(4096);
    EXPECT_GT(net.faults().totals().downDropped, 0u);
    EXPECT_EQ(niA.fastRetransmits(), 0u);
    EXPECT_GE(niA.timeouts(), 1u)
        << "with the scoreboard muted only the RTO can recover";
}

TEST_F(TransportPair, DelayReorderingDoesNotTriggerSpuriousRescues)
{
    // A heavily delay-faulted link reorders data chunks without losing
    // any: per-chunk extraDelay lets later chunks overtake earlier
    // ones on the same wire. The old rescue heuristic read "3 SACKs
    // after a resend while it stays unSACKed" as proof the resend was
    // lost — on a reordered link that proof is false and every false
    // positive is a wasted wire copy. The rescue guard must wait out
    // a round trip instead of trusting the serials alone.
    // delay-us stays under the 50 us RTO floor so the delayed acks
    // never read as flow silence — reordering is the only signal.
    FaultConfig cfg;
    ASSERT_TRUE(parseFaultSpec("delay=0.5,delay-us=30,seed=9", cfg,
                               nullptr));
    net.setFaults(cfg);
    sendMessage(4096);
    EXPECT_GT(net.faults().totals().delayed, 0u)
        << "no chunk was delayed; the test proves nothing";
    EXPECT_GT(niB.rxOutOfOrderBuffered(), 0u)
        << "delays that never reorder prove nothing either";
    EXPECT_EQ(niA.rescueSpurious(), 0u)
        << "reordering alone must not fire rescue retransmits";
    // First-round dup-ack false positives are inherent to reordering
    // (the scoreboard cannot tell late from lost), but each hole may
    // be charged at most once: a spurious fast retransmit must never
    // snowball into rescue resends of the same chunk.
    EXPECT_LE(niA.retransmits(), niA.fastRetransmits())
        << "only the scoreboard should have fired, never the timer";
    EXPECT_EQ(niA.timeouts(), 0u)
        << "acks kept flowing; the silence detector must not fire";
}
